package albatross_test

import (
	"fmt"

	"albatross"
)

// ExampleNewNode runs the smallest end-to-end gateway: one pod, Poisson
// traffic, deterministic results.
func ExampleNewNode() {
	node, err := albatross.NewNode(albatross.NodeConfig{Seed: 1})
	if err != nil {
		panic(err)
	}
	flows := albatross.GenerateFlows(1000, 10, 1)
	pod, err := node.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{
			Name: "gw0", Service: albatross.VPCVPC,
			DataCores: 2, CtrlCores: 1,
		},
		Flows: albatross.ServiceFlows(flows, 0),
	})
	if err != nil {
		panic(err)
	}
	src := &albatross.Source{
		Flows:         flows,
		Rate:          albatross.ConstantRate(100000),
		Deterministic: true,
		Sink:          pod.Sink(),
	}
	if err := src.Start(node.Engine); err != nil {
		panic(err)
	}
	node.RunFor(10 * albatross.Millisecond)
	src.Stop()
	node.RunFor(albatross.Millisecond)

	stats := pod.PLB.Stats()
	fmt.Printf("delivered %d of %d packets, disorder %.0f\n",
		pod.Tx, pod.Rx, stats.DisorderRate())
	// Output: delivered 1000 of 1000 packets, disorder 0
}

// ExampleDefaultLimiterConfig shows the two-stage rate limiter clamping a
// tenant that blasts far past its share.
func ExampleDefaultLimiterConfig() {
	lc := albatross.DefaultLimiterConfig()
	lc.Stage1Rate = 100000 // 100 Kpps coarse
	lc.Stage2Rate = 25000  // 25 Kpps fine for marked overflow
	node, err := albatross.NewNode(albatross.NodeConfig{Seed: 1, Limiter: &lc})
	if err != nil {
		panic(err)
	}
	flows := albatross.GenerateFlows(100, 1, 2) // one tenant (VNI 0)
	pod, err := node.AddPod(albatross.PodConfig{
		Spec:  albatross.PodSpec{Name: "gw0", Service: albatross.VPCVPC, DataCores: 2, CtrlCores: 1},
		Flows: albatross.ServiceFlows(flows, 0),
	})
	if err != nil {
		panic(err)
	}
	// Offer 4x the tenant's 125 Kpps limit.
	src := &albatross.Source{Flows: flows, Rate: albatross.ConstantRate(500000),
		Deterministic: true, Sink: pod.Sink()}
	if err := src.Start(node.Engine); err != nil {
		panic(err)
	}
	node.RunFor(albatross.Second)
	passFrac := float64(pod.Rx-pod.NICDrops) / float64(pod.Rx)
	fmt.Printf("tenant clamped to ~%.0f%% of offered\n", passFrac*100)
	// Output: tenant clamped to ~25% of offered
}
