package albatross_test

import (
	"fmt"

	"albatross"
)

// ExampleNewNode runs the smallest end-to-end gateway: one pod, Poisson
// traffic, deterministic results.
func ExampleNewNode() {
	node, err := albatross.NewNode(albatross.NodeConfig{Seed: 1})
	if err != nil {
		panic(err)
	}
	flows := albatross.GenerateFlows(1000, 10, 1)
	pod, err := node.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{
			Name: "gw0", Service: albatross.VPCVPC,
			DataCores: 2, CtrlCores: 1,
		},
		Flows: albatross.ServiceFlows(flows, 0),
	})
	if err != nil {
		panic(err)
	}
	src := &albatross.Source{
		Flows:         flows,
		Rate:          albatross.ConstantRate(100000),
		Deterministic: true,
		Sink:          pod.Sink(),
	}
	if err := src.Start(node.Engine); err != nil {
		panic(err)
	}
	node.RunFor(10 * albatross.Millisecond)
	src.Stop()
	node.RunFor(albatross.Millisecond)

	stats := pod.PLB.Stats()
	fmt.Printf("delivered %d of %d packets, disorder %.0f\n",
		pod.Tx, pod.Rx, stats.DisorderRate())
	// Output: delivered 1000 of 1000 packets, disorder 0
}

// ExampleDefaultLimiterConfig shows the two-stage rate limiter clamping a
// tenant that blasts far past its share.
func ExampleDefaultLimiterConfig() {
	lc := albatross.DefaultLimiterConfig()
	lc.Stage1Rate = 100000 // 100 Kpps coarse
	lc.Stage2Rate = 25000  // 25 Kpps fine for marked overflow
	node, err := albatross.NewNode(albatross.NodeConfig{Seed: 1, Limiter: &lc})
	if err != nil {
		panic(err)
	}
	flows := albatross.GenerateFlows(100, 1, 2) // one tenant (VNI 0)
	pod, err := node.AddPod(albatross.PodConfig{
		Spec:  albatross.PodSpec{Name: "gw0", Service: albatross.VPCVPC, DataCores: 2, CtrlCores: 1},
		Flows: albatross.ServiceFlows(flows, 0),
	})
	if err != nil {
		panic(err)
	}
	// Offer 4x the tenant's 125 Kpps limit.
	src := &albatross.Source{Flows: flows, Rate: albatross.ConstantRate(500000),
		Deterministic: true, Sink: pod.Sink()}
	if err := src.Start(node.Engine); err != nil {
		panic(err)
	}
	node.RunFor(albatross.Second)
	passFrac := float64(pod.Rx-pod.NICDrops) / float64(pod.Rx)
	fmt.Printf("tenant clamped to ~%.0f%% of offered\n", passFrac*100)
	// Output: tenant clamped to ~25% of offered
}

// ExampleNew is the options-form quickstart (mirrors examples/quickstart):
// New(WithSeed(1)) is equivalent to NewNode(NodeConfig{Seed: 1}).
func ExampleNew() {
	node, err := albatross.New(albatross.WithSeed(1))
	if err != nil {
		panic(err)
	}
	flows := albatross.GenerateFlows(1000, 10, 1)
	pod, err := node.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{Name: "gw0", Service: albatross.VPCInternet,
			DataCores: 2, CtrlCores: 1},
		Flows: albatross.ServiceFlows(flows, 0),
	})
	if err != nil {
		panic(err)
	}
	src := &albatross.Source{Flows: flows, Rate: albatross.ConstantRate(100000),
		Deterministic: true, Sink: pod.Sink()}
	if err := src.Start(node.Engine); err != nil {
		panic(err)
	}
	node.RunFor(10 * albatross.Millisecond)
	src.Stop()
	node.RunFor(albatross.Millisecond)
	fmt.Printf("delivered %d of %d\n", pod.Tx, pod.Rx)
	// Output: delivered 1000 of 1000
}

// ExampleNew_heavyHitter mirrors examples/heavyhitter: one flow past a
// core's capacity saturates its RSS core but is absorbed under PLB.
func ExampleNew_heavyHitter() {
	run := func(mode int) float64 {
		m := albatross.ModeRSS
		if mode == 1 {
			m = albatross.ModePLB
		}
		node, err := albatross.New(albatross.WithSeed(1))
		if err != nil {
			panic(err)
		}
		flows := albatross.GenerateFlows(1000, 10, 1)
		pod, err := node.AddPod(albatross.PodConfig{
			Spec: albatross.PodSpec{Name: "gw0", Service: albatross.VPCVPC,
				DataCores: 2, CtrlCores: 1, Mode: m},
			Flows: albatross.ServiceFlows(flows, 0),
		})
		if err != nil {
			panic(err)
		}
		// One flow at ~3 Mpps: far past one core, within two.
		src := &albatross.Source{Flows: flows[:1], Rate: albatross.ConstantRate(3e6),
			Seed: 2, Sink: pod.Sink()}
		if err := src.Start(node.Engine); err != nil {
			panic(err)
		}
		node.RunFor(20 * albatross.Millisecond)
		src.Stop()
		node.RunFor(albatross.Millisecond)
		return float64(pod.QueueDrops+pod.PLBDrops) / float64(pod.Rx) * 100
	}
	rssLoss, plbLoss := run(0), run(1)
	fmt.Printf("rss loses >10%%: %v, plb loses <0.1%%: %v\n", rssLoss > 10, plbLoss < 0.1)
	// Output: rss loses >10%: true, plb loses <0.1%: true
}

// ExampleWithFaultPlan mirrors examples/faultdrill: a scheduled core
// failure is absorbed by spray-mask eviction with bounded loss.
func ExampleWithFaultPlan() {
	plan := (&albatross.FaultPlan{}).
		CoreFail(5*albatross.Millisecond, 0, 1, 5*albatross.Millisecond)
	node, err := albatross.New(albatross.WithSeed(7), albatross.WithFaultPlan(plan))
	if err != nil {
		panic(err)
	}
	flows := albatross.GenerateFlows(1000, 10, 7)
	pod, err := node.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{Name: "gw0", Service: albatross.VPCVPC,
			DataCores: 4, CtrlCores: 1, Mode: albatross.ModePLB},
		Flows: albatross.ServiceFlows(flows, 0),
	})
	if err != nil {
		panic(err)
	}
	src := &albatross.Source{Flows: flows, Rate: albatross.ConstantRate(1e6),
		Seed: 8, Sink: pod.Sink()}
	if err := src.Start(node.Engine); err != nil {
		panic(err)
	}
	node.RunFor(20 * albatross.Millisecond)
	src.Stop()
	node.RunFor(albatross.Millisecond)

	fmt.Printf("faults fired: %d\n", len(node.FaultLog()))
	fmt.Printf("loss bounded: %v, core restored: %v\n",
		pod.FaultLost <= 1025, pod.PLB.CoreUp(1))
	// Output:
	// faults fired: 1
	// loss bounded: true, core restored: true
}

// ExampleNewCluster mirrors examples/clusterupgrade at toy scale: a
// 3-node ECMP cluster gray-upgrades one member under live traffic. The
// route is withdrawn before the pods drain (make-before-break), so the
// upgrade is lossless: every packet the switch sprayed is emitted.
func ExampleNewCluster() {
	plan := (&albatross.FaultPlan{}).
		NodeDrain(10*albatross.Millisecond, 1, 20*albatross.Millisecond)
	cl, err := albatross.NewCluster(
		albatross.WithSeed(1),
		albatross.WithNodes(3),
		albatross.WithFaultPlan(plan),
	)
	if err != nil {
		panic(err)
	}
	flows := albatross.GenerateFlows(1000, 10, 1)
	if err := cl.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{Name: "gw", Service: albatross.VPCVPC,
			DataCores: 2, CtrlCores: 1, Mode: albatross.ModePLB},
		Flows: albatross.ServiceFlows(flows, 0),
	}); err != nil {
		panic(err)
	}
	src := &albatross.Source{Flows: flows, Rate: albatross.ConstantRate(200000),
		Deterministic: true, Sink: cl.Sink()}
	if err := src.Start(cl.Engine); err != nil {
		panic(err)
	}
	cl.RunFor(50 * albatross.Millisecond)
	src.Stop()
	cl.RunFor(5 * albatross.Millisecond)

	var tx uint64
	for _, m := range cl.Members() {
		for _, pr := range m.Node.Pods() {
			tx += pr.Tx
		}
	}
	m := cl.Members()[1]
	fmt.Printf("nodes=%d drains=%d restarts=%d\n",
		len(cl.Members()), m.Drains, m.Node.Pods()[0].Restarts)
	fmt.Printf("lossless upgrade: %v\n",
		tx == cl.Sprayed && cl.Drops == 0 && cl.Blackholed() == 0)
	// Output:
	// nodes=3 drains=1 restarts=1
	// lossless upgrade: true
}

// ExampleNode_EnableUplink mirrors examples/bgpproxy in the virtual-time
// model: a long uplink flap is detected by BFD, a short one is absorbed.
func ExampleNode_EnableUplink() {
	node, err := albatross.New(albatross.WithSeed(1))
	if err != nil {
		panic(err)
	}
	if _, err := node.EnableUplink(true); err != nil {
		panic(err)
	}
	if err := node.InjectBGPFlap(400 * albatross.Millisecond); err != nil {
		panic(err)
	}
	node.RunFor(2 * albatross.Second)
	if err := node.InjectBGPFlap(100 * albatross.Millisecond); err != nil {
		panic(err)
	}
	node.RunFor(albatross.Second)
	st := node.Uplink().Stats()
	fmt.Printf("flaps=%d detections=%d absorbed=%d route-up=%v\n",
		st.Flaps, st.Detections, st.Absorbed, node.Uplink().RouteUp())
	// Output: flaps=2 detections=1 absorbed=1 route-up=true
}

// ExamplePodRuntime_InjectProbe mirrors examples/telemetry: Zoonet-style
// probes decompose a packet's latency by pipeline stage.
func ExamplePodRuntime_InjectProbe() {
	node, err := albatross.New(albatross.WithSeed(11))
	if err != nil {
		panic(err)
	}
	flows := albatross.GenerateFlows(1000, 10, 11)
	pod, err := node.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{Name: "gw0", Service: albatross.VPCVPC,
			DataCores: 2, CtrlCores: 1},
		Flows: albatross.ServiceFlows(flows, 0),
	})
	if err != nil {
		panic(err)
	}
	probes := 0
	pod.InjectProbe(flows[0], func(r albatross.ProbeResult) {
		if !r.Dropped && r.Total > 0 && r.Total == r.NICIngress+r.QueueWait+r.Service+r.NICEgress {
			probes++
		}
	})
	node.RunFor(albatross.Millisecond)
	fmt.Printf("probes with consistent stage breakdown: %d\n", probes)
	// Output: probes with consistent stage breakdown: 1
}

// ExampleNode_Close shows the lifecycle contract: Stop drains a pod and
// frees its capacity for reuse; Close stops everything.
func ExampleNode_Close() {
	node, err := albatross.New(albatross.WithSeed(1))
	if err != nil {
		panic(err)
	}
	flows := albatross.GenerateFlows(100, 10, 1)
	add := func(name string) *albatross.PodRuntime {
		p, err := node.AddPod(albatross.PodConfig{
			Spec: albatross.PodSpec{Name: name, Service: albatross.VPCVPC,
				DataCores: 2, CtrlCores: 1},
			Flows: albatross.ServiceFlows(flows, 0),
		})
		if err != nil {
			panic(err)
		}
		return p
	}
	gw0 := add("gw0")
	if err := gw0.Stop(); err != nil { // drain, then release cores and queues
		panic(err)
	}
	gw1 := add("gw1") // reuses the freed capacity
	if err := node.Close(); err != nil {
		panic(err)
	}
	fmt.Printf("gw0=%s gw1=%s\n", gw0.State(), gw1.State())
	// Output: gw0=stopped gw1=stopped
}
