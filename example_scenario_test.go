package albatross_test

import (
	"errors"
	"fmt"
	"strings"

	"albatross"
)

// ExampleLoadScenario parses a declarative gameday scenario and runs it,
// letting the assertions block judge the outcome instead of hand-written
// harness code.
func ExampleLoadScenario() {
	doc := `
name: two-node-drill
duration: 10ms
fleet:
  nodes: 2
workload:
  flows: 500
  tenants: 10
  rate: 2e5
events:
  - at: 4ms
    action: inject_failure
    fault: node-crash
    node: 1
    duration: 100ms
assertions:
  - type: conservation
  - type: remap_bound
`
	s, err := albatross.LoadScenario([]byte(doc))
	if err != nil {
		panic(err)
	}
	res, err := s.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d events, %d assertions, pass=%v\n",
		s.Name, len(s.Events), len(res.Checks), res.OK())
	// Output:
	// two-node-drill: 1 events, 2 assertions, pass=true
}

// ExampleLoadScenario_strict shows that unknown keys are load-time errors
// wrapping ErrBadConfig, with the offending line in the message.
func ExampleLoadScenario_strict() {
	doc := "name: oops\nduration: 5ms\nworkload:\n  flows: 10\n  rate: 1e5\n  zipff: 1.1\n"
	_, err := albatross.LoadScenario([]byte(doc))
	fmt.Println(errors.Is(err, albatross.ErrBadConfig))
	fmt.Println(strings.Contains(err.Error(), "line 6"))
	// Output:
	// true
	// true
}

// ExampleScenario_Apply layers CLI-style overrides over a loaded scenario
// without editing the file.
func ExampleScenario_Apply() {
	s, err := albatross.LoadScenario([]byte(
		"name: base\nduration: 5ms\nfleet:\n  nodes: 2\nworkload:\n  flows: 100\n  rate: 1e5\n"))
	if err != nil {
		panic(err)
	}
	nodes := 8
	bigger := s.Apply(albatross.ScenarioOverrides{Nodes: &nodes})
	fmt.Println(s.Fleet.Nodes, bigger.Fleet.Nodes)
	// Output:
	// 2 8
}
