// Command albatross-bench regenerates the tables and figures of the
// Albatross paper's evaluation (§6) on the simulation substrate and checks
// each result's shape against the paper.
//
// Usage:
//
//	albatross-bench               # run every experiment at full scale
//	albatross-bench -quick        # reduced scale (seconds, not minutes)
//	albatross-bench -exp fig8,tab3
//	albatross-bench -list
//
// The process exits nonzero if any shape check fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"albatross/internal/eval"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		quick   = flag.Bool("quick", false, "reduced scale for fast runs")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range eval.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []eval.Experiment
	if *expFlag == "all" {
		selected = eval.Experiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := eval.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := eval.Config{Seed: *seed, Quick: *quick}
	failed := 0
	for _, e := range selected {
		start := time.Now()
		r := e.Run(cfg)
		fmt.Println(r)
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if !r.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed shape checks\n", failed)
		os.Exit(1)
	}
	fmt.Printf("all %d experiments passed their shape checks\n", len(selected))
}
