// Command albatross-bench regenerates the tables and figures of the
// Albatross paper's evaluation (§6) on the simulation substrate and checks
// each result's shape against the paper.
//
// Usage:
//
//	albatross-bench                  # run every experiment at full scale
//	albatross-bench -quick           # reduced scale (seconds, not minutes)
//	albatross-bench -exp fig8,tab3
//	albatross-bench -parallel 4      # worker-pool over independent experiments
//	albatross-bench -json out.json   # machine-readable per-experiment record
//	albatross-bench -list
//
// Experiments run concurrently across -parallel workers (default: all
// CPUs); each owns its own engine and seeded generator, and results print
// in the same order regardless of parallelism, so stdout is byte-identical
// to a serial run. Per-experiment timings go to stderr (they are the only
// run-dependent output). The process exits nonzero if any shape check
// fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"albatross/internal/eval"
	"albatross/internal/metrics"
)

// jsonRecord is the -json per-experiment entry for tracking the perf
// trajectory across commits.
type jsonRecord struct {
	ID           string   `json:"id"`
	Title        string   `json:"title"`
	WallMS       float64  `json:"wall_ms"`
	Passed       bool     `json:"passed"`
	FailedChecks []string `json:"failed_checks,omitempty"`
	Volatile     bool     `json:"volatile,omitempty"`
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		quick    = flag.Bool("quick", false, "reduced scale for fast runs")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		parallel = flag.Int("parallel", runtime.NumCPU(), "experiment worker-pool size")
		jsonOut  = flag.String("json", "", "write per-experiment wall time and pass/fail to this file")
		metOut   = flag.String("metrics", "", "write the metrics snapshots of experiments that take one to this JSON file")
	)
	flag.Parse()

	if *list {
		for _, e := range eval.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []eval.Experiment
	if *expFlag == "all" {
		selected = eval.Experiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := eval.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := eval.Config{Seed: *seed, Quick: *quick}
	start := time.Now()
	recs := eval.RunAll(selected, cfg, *parallel)
	total := time.Since(start)

	failed := 0
	jrecs := make([]jsonRecord, 0, len(recs))
	for _, rec := range recs {
		fmt.Println(rec.Result)
		fmt.Fprintf(os.Stderr, "(%s in %v)\n\n", rec.Exp.ID, rec.Wall.Round(time.Millisecond))
		if !rec.Result.Passed() {
			failed++
		}
		jrecs = append(jrecs, jsonRecord{
			ID:           rec.Exp.ID,
			Title:        rec.Exp.Title,
			WallMS:       float64(rec.Wall.Microseconds()) / 1e3,
			Passed:       rec.Result.Passed(),
			FailedChecks: rec.Result.FailedChecks(),
			Volatile:     rec.Exp.Volatile,
		})
	}
	fmt.Fprintf(os.Stderr, "total wall time %v with %d worker(s)\n", total.Round(time.Millisecond), *parallel)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(jrecs, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding -json output: %v\n", err)
			os.Exit(2)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
			os.Exit(2)
		}
	}

	if *metOut != "" {
		type metRecord struct {
			ID      string            `json:"id"`
			Metrics *metrics.Snapshot `json:"metrics"`
		}
		mrecs := make([]metRecord, 0, len(recs))
		for _, rec := range recs {
			if rec.Result.Metrics != nil {
				mrecs = append(mrecs, metRecord{ID: rec.Exp.ID, Metrics: rec.Result.Metrics})
			}
		}
		data, err := json.MarshalIndent(mrecs, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding -metrics output: %v\n", err)
			os.Exit(2)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*metOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *metOut, err)
			os.Exit(2)
		}
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed shape checks\n", failed)
		os.Exit(1)
	}
	fmt.Printf("all %d experiments passed their shape checks\n", len(selected))
}
