// Command bgp-proxy runs Albatross's BGP proxy over real TCP sockets: GW
// pods connect to it with iBGP and it maintains a single eBGP session to
// the uplink switch (paper §5, Fig. 7), reference-counting VIP
// advertisements across pods.
//
// Modes:
//
//	bgp-proxy -upstream host:179 -listen :1790 -as 64512 -switch-as 65000
//	    Production shape: dial the switch, accept pod sessions.
//
//	bgp-proxy -demo
//	    Self-contained demo on loopback: starts a mock switch, the proxy,
//	    and four pods; each pod advertises a shared VIP plus its own
//	    prefix; one pod is killed to show the withdraw path.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"albatross/internal/bgp"
	"albatross/internal/packet"
)

func main() {
	var (
		demo     = flag.Bool("demo", false, "run the self-contained loopback demo")
		upstream = flag.String("upstream", "", "switch address to dial for the eBGP session")
		listen   = flag.String("listen", ":1790", "address to accept pod iBGP sessions on")
		localAS  = flag.Uint("as", 64512, "proxy (and pod) AS number")
		switchAS = flag.Uint("switch-as", 65000, "uplink switch AS number")
		routerID = flag.Uint("router-id", 0xaa000001, "proxy BGP router ID")
	)
	flag.Parse()

	if *demo {
		if err := runDemo(); err != nil {
			fmt.Fprintln(os.Stderr, "demo:", err)
			os.Exit(1)
		}
		return
	}

	if *upstream == "" {
		fmt.Fprintln(os.Stderr, "need -upstream (or -demo)")
		os.Exit(2)
	}
	upConn, err := net.Dial("tcp", *upstream)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dial switch:", err)
		os.Exit(1)
	}
	proxy, err := bgp.NewProxy(upConn, uint16(*localAS), uint16(*switchAS), uint32(*routerID))
	if err != nil {
		fmt.Fprintln(os.Stderr, "upstream session:", err)
		os.Exit(1)
	}
	fmt.Printf("eBGP session established to %s (AS %d)\n", *upstream, *switchAS)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Printf("accepting pod iBGP sessions on %s (AS %d)\n", *listen, *localAS)
	for {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, "accept:", err)
			os.Exit(1)
		}
		go func(c net.Conn) {
			if _, err := proxy.ServePod(c); err != nil {
				fmt.Fprintf(os.Stderr, "pod %v: %v\n", c.RemoteAddr(), err)
				return
			}
			fmt.Printf("pod session established from %v (pods=%d)\n",
				c.RemoteAddr(), proxy.PodCount())
		}(conn)
	}
}

func runDemo() error {
	// Mock uplink switch on loopback.
	swLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer swLn.Close()
	sw := bgp.NewSwitch(65000, 0xffff0001)
	go func() {
		for {
			c, err := swLn.Accept()
			if err != nil {
				return
			}
			if _, err := sw.AcceptPeer(c); err != nil {
				fmt.Println("switch: rejected peer:", err)
			}
		}
	}()

	// Proxy dials the switch.
	upConn, err := net.Dial("tcp", swLn.Addr().String())
	if err != nil {
		return err
	}
	proxy, err := bgp.NewProxy(upConn, 64512, 65000, 0xaa000001)
	if err != nil {
		return err
	}
	fmt.Printf("proxy: eBGP up to switch at %v\n", swLn.Addr())

	// Proxy's pod listener.
	podLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer podLn.Close()
	go func() {
		for {
			c, err := podLn.Accept()
			if err != nil {
				return
			}
			go proxy.ServePod(c)
		}
	}()

	// Four GW pods dial the proxy over iBGP and advertise routes.
	vip := bgp.Prefix{Addr: packet.IPv4Addr{203, 0, 113, 0}, Len: 24}
	var pods []*bgp.Speaker
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", podLn.Addr().String())
		if err != nil {
			return err
		}
		sp := bgp.NewSpeaker(conn, bgp.SpeakerConfig{
			AS: 64512, RouterID: uint32(100 + i), PeerAS: 64512,
		})
		if err := sp.Start(); err != nil {
			return fmt.Errorf("pod %d: %w", i, err)
		}
		own := bgp.Prefix{Addr: packet.IPv4Addr{198, 51, 100, byte(i * 16)}, Len: 28}
		if err := sp.Announce([]bgp.Prefix{vip, own}, nil); err != nil {
			return err
		}
		pods = append(pods, sp)
		fmt.Printf("pod %d: iBGP up, advertised %v and %v\n", i, vip, own)
	}

	waitRoutes := func(want int, what string) {
		for i := 0; i < 500; i++ {
			if sw.RIB().Len() == want {
				fmt.Printf("switch RIB: %d prefixes after %s (peers=%d)\n",
					sw.RIB().Len(), what, sw.PeerCount())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		fmt.Printf("switch RIB: %d prefixes (expected %d) after %s\n",
			sw.RIB().Len(), want, what)
	}
	// 1 shared VIP + 4 per-pod prefixes, but only ONE switch peer.
	waitRoutes(5, "initial advertisement")
	fmt.Printf("Fig.7 effect: 4 pods, switch sees %d BGP peer(s)\n", sw.PeerCount())

	// Kill pod 3: its own prefix is withdrawn; the shared VIP survives.
	fmt.Println("killing pod 3 ...")
	pods[3].Close()
	waitRoutes(4, "pod 3 death")

	for _, p := range sw.RIB().Prefixes() {
		rt, _ := sw.RIB().Best(p)
		fmt.Printf("  route %v via AS path %v\n", p, rt.Attrs.ASPath)
	}

	for _, sp := range pods[:3] {
		sp.Close()
	}
	proxy.Close()
	sw.Close()
	fmt.Println("demo complete")
	return nil
}
