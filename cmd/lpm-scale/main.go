// Command lpm-scale demonstrates the Tab. 6 capacity claim literally:
// install >10M LPM routes (clustered the way production VXLAN routing
// tables cluster) into the DRAM-backed trie, then measure lookup
// throughput and memory. Sailfish's SRAM holds 0.2M.
//
//	lpm-scale                # 10M routes (needs ~2GB RAM, ~30s)
//	lpm-scale -routes 2e6    # smaller machines
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"albatross/internal/lpm"
	"albatross/internal/sim"
)

func main() {
	var (
		routes    = flag.Float64("routes", 10e6, "routes to install")
		perSubnet = flag.Int("per-subnet", 200, "/32 hosts per /24 subnet (clustering)")
		probes    = flag.Int("probes", 2_000_000, "lookup probes to time")
		seed      = flag.Uint64("seed", 1, "rng seed")
	)
	flag.Parse()

	target := int(*routes)
	t := lpm.New()
	rng := sim.NewRand(*seed)

	fmt.Printf("installing %d clustered routes (%d x /32 per /24 + the /24 itself)...\n",
		target, *perSubnet)
	start := time.Now()
	var subnets []uint32
	for subnet := 0; t.Len() < target; subnet++ {
		// Spread subnets across 10.0.0.0/8 and 172.16.0.0/12 style space.
		base := uint32(0x0a000000) + uint32(subnet)<<8
		if err := t.Insert(base, 24, uint32(subnet)); err != nil {
			fmt.Println("insert:", err)
			return
		}
		subnets = append(subnets, base)
		for h := 0; h < *perSubnet && t.Len() < target; h++ {
			host := base | uint32(1+rng.Intn(254))
			if err := t.Insert(host, 32, uint32(t.Len())); err != nil {
				fmt.Println("insert:", err)
				return
			}
		}
	}
	insertDur := time.Since(start)

	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)

	fmt.Printf("installed   %d routes in %v (%.0f routes/s)\n",
		t.Len(), insertDur.Round(time.Millisecond),
		float64(t.Len())/insertDur.Seconds())
	fmt.Printf("trie        %d nodes, modelled %0.1f MB, process heap %0.1f MB\n",
		t.NodeCount(), float64(t.MemoryBytes())/1e6, float64(ms.HeapAlloc)/1e6)
	fmt.Printf("bytes/route %.0f (modelled)\n", float64(t.MemoryBytes())/float64(t.Len()))

	// Lookup throughput over random addresses biased into the installed
	// space (as gateway traffic is).
	addrs := make([]uint32, 1<<16)
	for i := range addrs {
		base := subnets[rng.Intn(len(subnets))]
		addrs[i] = base | uint32(rng.Intn(256))
	}
	hits := 0
	start = time.Now()
	for i := 0; i < *probes; i++ {
		if _, ok := t.Lookup(addrs[i&(1<<16-1)]); ok {
			hits++
		}
	}
	lookupDur := time.Since(start)
	fmt.Printf("lookups     %d in %v (%.1f M lookups/s, %.0f%% resolved)\n",
		*probes, lookupDur.Round(time.Millisecond),
		float64(*probes)/lookupDur.Seconds()/1e6,
		float64(hits)/float64(*probes)*100)

	fmt.Printf("\nTab. 6: Sailfish holds 0.2M LPM rules in SRAM; this trie holds %.1fM in DRAM.\n",
		float64(t.Len())/1e6)
}
