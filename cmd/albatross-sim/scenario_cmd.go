package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"albatross"
)

// runScenarioCmd implements `albatross-sim run [overrides] scenario.yaml`:
// load, apply flag overrides, execute, print the deterministic report, and
// exit 1 when any assertion fails. Override flags mirror the legacy flat
// flags; an unset flag keeps the scenario file's value.
func runScenarioCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: albatross-sim run [overrides] scenario.yaml")
		fmt.Fprintln(os.Stderr, "\nOverrides (unset flags keep the scenario file's values):")
		fs.PrintDefaults()
	}
	var (
		seed     = fs.Uint64("seed", 0, "override scenario seed")
		nodes    = fs.Int("nodes", 0, "override fleet.nodes")
		shards   = fs.Int("shards", 0, "override fleet.shards (0 = auto; report stays byte-identical at any value)")
		flows    = fs.Int("flows", 0, "override workload.flows")
		rate     = fs.Float64("rate", 0, "override workload.rate (packets/second)")
		duration = fs.Duration("duration", 0, "override scenario duration")
		cacheMB  = fs.Int("cache-mb", 0, "override fleet.cache_mb")
		backend  = fs.String("backend", "", "override fleet.backend (session | othello)")
		burst    = fs.Int("burst", 0, "override fleet.burst (0/1 = per-packet path)")
		report   = fs.Bool("report", false, "override observability.report (print the full cluster report)")
		metrics  = fs.String("metrics-out", "", "override observability.metrics_out")
		outcome  = fs.String("outcome-out", "", "override observability.outcome_out")
		record   = fs.String("record", "", "override observability.record")
		dump     = fs.String("trace-dump", "", "override observability.trace_dump")
		replay   = fs.String("replay", "", "override workload.replay (trace file to replay)")
		snapshot = fs.Duration("snapshot-every", 0, "override observability.snapshot_every (timeline sampling period)")
		series   = fs.String("series-out", "", "override observability.series_out (write timeline to PREFIX.csv and PREFIX.json)")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}

	s, err := albatross.LoadScenarioFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var ov albatross.ScenarioOverrides
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			ov.Seed = seed
		case "nodes":
			ov.Nodes = nodes
		case "shards":
			ov.Shards = shards
		case "flows":
			ov.Flows = flows
		case "rate":
			ov.Rate = rate
		case "duration":
			d := albatross.Duration(duration.Nanoseconds())
			ov.Duration = &d
		case "cache-mb":
			ov.CacheMB = cacheMB
		case "backend":
			ov.Backend = backend
		case "burst":
			ov.Burst = burst
		case "report":
			ov.Report = report
		case "metrics-out":
			ov.MetricsOut = metrics
		case "outcome-out":
			ov.OutcomeOut = outcome
		case "record":
			ov.Record = record
		case "trace-dump":
			ov.TraceDump = dump
		case "replay":
			ov.Replay = replay
		case "snapshot-every":
			d := albatross.Duration(snapshot.Nanoseconds())
			ov.SnapshotEvery = &d
		case "series-out":
			ov.SeriesOut = series
		}
	})

	wall := time.Now()
	res, err := s.Apply(ov).Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The report is the entire stdout: byte-identical across repeat runs
	// and shard counts. Wall time goes to stderr.
	fmt.Print(res.Report)
	fmt.Fprintf(os.Stderr, "  wall time   %v\n", time.Since(wall).Round(time.Millisecond))
	if !res.OK() {
		os.Exit(1)
	}
}

// validateScenarioCmd implements `albatross-sim validate scenario.yaml...`:
// load-check every file, report per-file verdicts, exit 1 on any failure.
func validateScenarioCmd(args []string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: albatross-sim validate scenario.yaml...")
	}
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}
	bad := 0
	for _, path := range fs.Args() {
		s, err := albatross.LoadScenarioFile(path)
		if err != nil {
			fmt.Printf("%s: INVALID\n  %v\n", path, err)
			bad++
			continue
		}
		fmt.Printf("%s: OK (%s: %d node(s), %d event(s), %d assertion(s))\n",
			path, s.Name, s.Fleet.Nodes, len(s.Events), len(s.Assertions))
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// replayDiffSubCmd implements `albatross-sim replay-diff [-shards N] A B`,
// the subcommand form of the legacy -replay-diff A,B flag.
func replayDiffSubCmd(args []string) {
	fs := flag.NewFlagSet("replay-diff", flag.ExitOnError)
	shards := fs.Int("shards", 0, "unused; accepted for symmetry with run")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: albatross-sim replay-diff A B  (outcome reports from -outcome-out)")
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	runReplayDiffCmd(fs.Arg(0)+","+fs.Arg(1), *shards)
}
