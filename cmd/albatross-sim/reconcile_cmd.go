package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"albatross"
)

// reconcileCmd implements `albatross-sim reconcile`: the control-plane
// runner. Two modes:
//
//	albatross-sim reconcile scenario.yaml
//	    Execute a scenario whose fleet is driven by the desired-state
//	    reconciler (the file's spec: block, or -spec FILE). Prints the
//	    deterministic report — including the timed reconcile step log —
//	    and exits 1 when any assertion fails or the reconciler did not
//	    converge cleanly.
//
//	albatross-sim reconcile -plan -spec spec.yaml -nodes 3
//	    Dry run: diff the desired state against a freshly deployed fleet
//	    of N members and print the unsequenced plan without running any
//	    traffic. Also works with a scenario file in place of -nodes.
func reconcileCmd(args []string) {
	fs := flag.NewFlagSet("reconcile", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: albatross-sim reconcile [-plan] [-spec FILE] [scenario.yaml]")
		fmt.Fprintln(os.Stderr, "       albatross-sim reconcile -plan -spec FILE -nodes N")
		fmt.Fprintln(os.Stderr)
		fs.PrintDefaults()
	}
	var (
		specPath = fs.String("spec", "", "standalone desired-state file; replaces the scenario's spec: block")
		plan     = fs.Bool("plan", false, "dry run: print the reconcile plan against a fresh fleet, don't run traffic")
		nodes    = fs.Int("nodes", 0, "fleet width for -plan without a scenario file")
		seed     = fs.Uint64("seed", 1, "simulation seed for -plan without a scenario file")
	)
	fs.Parse(args)
	if fs.NArg() > 1 {
		fs.Usage()
		os.Exit(2)
	}

	var s *albatross.Scenario
	if fs.NArg() == 1 {
		var err error
		s, err = albatross.LoadScenarioFile(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
	}
	var spec *albatross.ReconcileSpec
	if *specPath != "" {
		var err error
		spec, err = albatross.LoadSpecFile(*specPath)
		if err != nil {
			fatal(err)
		}
	}
	if s != nil {
		if spec != nil {
			s.Spec = spec
			if err := s.Validate(); err != nil {
				fatal(fmt.Errorf("%s with -spec %s: %w", fs.Arg(0), *specPath, err))
			}
		}
		if s.Spec == nil {
			fatal(fmt.Errorf("%s has no spec: block; add one or pass -spec FILE", fs.Arg(0)))
		}
	}

	if *plan {
		width := *nodes
		sd := *seed
		if s != nil {
			width, sd = s.Fleet.Nodes, s.Seed
			spec = s.Spec
		}
		if spec == nil || width <= 0 {
			fmt.Fprintln(os.Stderr, "reconcile -plan needs a scenario file, or -spec FILE with -nodes N")
			os.Exit(2)
		}
		printPlan(spec, width, sd)
		return
	}

	if s == nil {
		fs.Usage()
		os.Exit(2)
	}
	wall := time.Now()
	res, err := s.Run()
	if err != nil {
		fatal(err)
	}
	// The report is the entire stdout: byte-identical across repeat runs
	// and shard counts. Wall time goes to stderr.
	fmt.Print(res.Report)
	fmt.Fprintf(os.Stderr, "  wall time   %v\n", time.Since(wall).Round(time.Millisecond))
	if !res.OK() {
		os.Exit(1)
	}
}

// printPlan deploys a bare fleet of width members, attaches the reconciler,
// and prints the unsequenced diff. Nothing runs: the plan is the
// desired-vs-fresh delta, in member order, before any rate limiting.
func printPlan(spec *albatross.ReconcileSpec, width int, seed uint64) {
	c, err := albatross.NewCluster(
		albatross.WithNodes(width),
		albatross.WithSeed(seed),
		albatross.WithSpec(spec),
	)
	if err != nil {
		fatal(err)
	}
	r, ok := c.Controller().(*albatross.Reconciler)
	if !ok {
		fatal(fmt.Errorf("internal: cluster controller is not a reconciler"))
	}
	steps := r.Plan()
	fmt.Printf("reconcile plan: %d member(s) observed, %d desired, interval %v\n",
		width, len(spec.Members), r.Interval())
	if len(steps) == 0 {
		fmt.Println("  in sync: no steps")
		return
	}
	for _, st := range steps {
		line := fmt.Sprintf("node=%d %s", st.Node, st.Action)
		if st.Detail != "" {
			line += " " + st.Detail
		}
		fmt.Printf("  %s\n", line)
	}
	fmt.Printf("  %d step(s); at one step per tick the fleet converges in ~%v\n",
		len(steps), albatross.Duration(len(steps))*r.Interval())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
