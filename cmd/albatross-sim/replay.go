package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"albatross"
)

// runReplayDiffCmd is the -replay-diff A,B mode: load two outcome report
// files (written by -outcome-out), print their structural diff, and exit
// nonzero when they differ — the gameday-drill assertion as a shell
// one-liner. When -shards > 1 is also given, differing node lines are
// labeled with the shard engine that owned them in the sharded run.
func runReplayDiffCmd(spec string, shards int) {
	pathA, pathB, ok := strings.Cut(spec, ",")
	if !ok {
		fmt.Fprintln(os.Stderr, "-replay-diff wants two outcome files: A,B")
		os.Exit(2)
	}
	a, err := os.ReadFile(pathA)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	b, err := os.ReadFile(pathB)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	d := albatross.DiffOutcomes(pathA, string(a), pathB, string(b))
	d.AnnotateShards(shards)
	fmt.Print(d.String())
	if !d.Empty() {
		os.Exit(1)
	}
}

// armTriggers applies the operator flight-recorder trigger flags to one pod.
func armTriggers(pr *albatross.PodRuntime, lat time.Duration, vni int, faultWin bool) {
	fr := pr.Flight()
	if lat > 0 {
		fr.TriggerLatencyOver(albatross.Duration(lat.Nanoseconds()))
	}
	if vni >= 0 {
		fr.TriggerVNI(uint32(vni))
	}
	if faultWin {
		fr.TriggerFaultWindow()
	}
}

// journeyJSON is the on-disk form of one committed packet journey.
type journeyJSON struct {
	Pod    string            `json:"pod"`
	VNI    uint32            `json:"vni"`
	Flow   string            `json:"flow"`
	Bytes  int               `json:"bytes"`
	T0NS   int64             `json:"t0_ns"`
	EndNS  int64             `json:"end_ns"`
	Reason string            `json:"reason"`
	Core   int32             `json:"core"`
	ViaPLB bool              `json:"via_plb"`
	PSN    uint16            `json:"psn,omitempty"`
	OrdQ   uint8             `json:"ordq,omitempty"`
	Steps  []journeyStepJSON `json:"steps"`
}

type journeyStepJSON struct {
	Stage   string `json:"stage"`
	Verdict string `json:"verdict"`
	EnterNS int64  `json:"enter_ns"`
	LeaveNS int64  `json:"leave_ns"`
}

// dumpJourneys writes every committed flight-recorder journey of the given
// pods to prefix.journeys.json, in pod order then commit order — stable
// across repeat runs at a fixed seed.
func dumpJourneys(prefix string, pods map[string]*albatross.PodRuntime, order []string) error {
	names := albatross.StageNames()
	out := []journeyJSON{}
	for _, label := range order {
		pr := pods[label]
		for _, j := range pr.Flight().Journeys() {
			jj := journeyJSON{
				Pod:    label,
				VNI:    j.Flow.VNI,
				Flow:   j.Flow.Tuple.String(),
				Bytes:  j.Bytes,
				T0NS:   int64(j.T0),
				EndNS:  int64(j.End),
				Reason: j.Reason.String(),
				Core:   j.Core,
				ViaPLB: j.ViaPLB,
			}
			if j.ViaPLB {
				jj.PSN, jj.OrdQ = j.PSN, j.OrdQ
			}
			for _, s := range j.Steps[:j.NSteps] {
				jj.Steps = append(jj.Steps, journeyStepJSON{
					Stage:   names[s.Stage],
					Verdict: s.Verdict.String(),
					EnterNS: int64(s.Enter),
					LeaveNS: int64(s.Leave),
				})
			}
			out = append(out, jj)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(prefix+".journeys.json", append(data, '\n'), 0o644)
}

// serveMetrics blocks serving the frozen post-run snapshot at
// http://addr/metrics (Prometheus text) and /metrics.json, plus the
// sampled timeline at /series (CSV) and /series.json when tl is non-nil
// — scrape targets for ad-hoc inspection, entirely off the (already
// finished) simulation.
func serveMetrics(addr string, snap *albatross.MetricsSnapshot, tl *albatross.Timeline) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", albatross.MetricsHandler(func() *albatross.MetricsSnapshot { return snap }))
	mux.Handle("/metrics.json", albatross.MetricsJSONHandler(func() *albatross.MetricsSnapshot { return snap }))
	mux.Handle("/series", albatross.SeriesHandler(func() *albatross.Timeline { return tl }))
	mux.Handle("/series.json", albatross.SeriesJSONHandler(func() *albatross.Timeline { return tl }))
	fmt.Fprintf(os.Stderr, "  serving metrics at http://%s/metrics (ctrl-c to stop)\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
