package main

import (
	"fmt"
	"os"
	"time"

	"albatross"
)

// clusterRun carries the parsed flags into the multi-node path.
type clusterRun struct {
	opts       []albatross.Option
	podCfg     albatross.PodConfig
	svcName    string
	cores      int
	flows      int
	tenants    int
	rate       float64
	duration   time.Duration
	seed       uint64
	autoFB     bool
	report     bool
	hasFaults  bool
	metricsOut string
}

// runCluster is the -nodes > 1 path: N servers behind consistent-hash
// ECMP, one shared engine, traffic sprayed at the switch. All summary
// output is deterministic for a fixed seed (wall time goes to stderr).
func runCluster(cr clusterRun) {
	cl, err := albatross.NewCluster(cr.opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := cl.AddPod(cr.podCfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if cr.autoFB {
		for _, m := range cl.Members() {
			m.Node.Pods()[0].EnableAutoFallback(0, 0)
		}
	}

	wf := albatross.GenerateFlows(cr.flows, cr.tenants, cr.seed)
	src := &albatross.Source{
		Flows: wf,
		Rate:  albatross.ConstantRate(cr.rate),
		Seed:  cr.seed + 1,
		Sink:  cl.Sink(),
	}
	if err := src.Start(cl.Engine); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	wall := time.Now()
	cl.RunFor(albatross.Duration(cr.duration.Nanoseconds()))
	src.Stop()
	cl.RunFor(albatross.Millisecond) // drain in-flight packets

	secs := cr.duration.Seconds()
	members := cl.Members()
	fmt.Printf("albatross-sim: %d-node cluster, %s %v pods, %d cores each, %d flows, offered %.2f Mpps for %v (virtual)\n",
		len(members), cr.svcName, cr.podCfg.Spec.Mode, cr.cores, cr.flows, cr.rate/1e6, cr.duration)
	fmt.Printf("  ecmp        sprayed=%d remapped=%d switch-drops=%d blackholed=%d\n",
		cl.Sprayed, cl.Remapped, cl.Drops, cl.Blackholed())

	var totTx uint64
	for _, m := range members {
		pr := m.Node.Pods()[0]
		totTx += pr.Tx
		fmt.Printf("  node%-2d      [%s] rx=%d tx=%d drops: nic=%d queue=%d plb=%d acl=%d | p50=%.1fµs p99=%.1fµs disorder=%.2e\n",
			m.Index, m.State(), pr.Rx, pr.Tx,
			pr.NICDrops, pr.QueueDrops, pr.PLBDrops, pr.ServiceDrop,
			float64(pr.Latency.Quantile(0.50))/1000,
			float64(pr.Latency.Quantile(0.99))/1000,
			pr.DisorderRate())
	}
	fmt.Printf("  cluster tx  %12d pkts (%.2f Mpps)\n", totTx, float64(totTx)/secs/1e6)

	if cr.hasFaults {
		fmt.Println("  faults:")
		for _, e := range cl.FaultLog() {
			fmt.Printf("    %s\n", e)
		}
	}
	fmt.Fprintf(os.Stderr, "  wall time   %v\n", time.Since(wall).Round(time.Millisecond))
	if cr.report {
		fmt.Println()
		fmt.Print(cl.Report())
	}
	if cr.metricsOut != "" {
		if err := writeMetrics(cr.metricsOut, cl.Metrics()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  metrics     %s.prom %s.json\n", cr.metricsOut, cr.metricsOut)
	}
}
