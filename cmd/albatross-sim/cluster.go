package main

import (
	"fmt"
	"os"
	"time"

	"albatross"
)

// clusterRun carries the parsed flags into the multi-node path.
type clusterRun struct {
	opts       []albatross.Option
	podCfg     albatross.PodConfig
	svcName    string
	cores      int
	flows      int
	tenants    int
	rate       float64
	duration   time.Duration
	seed       uint64
	autoFB     bool
	report     bool
	hasFaults  bool
	metricsOut string

	recordOut   string
	replayIn    string
	outcomeOut  string
	traceDump   string
	metricsAddr string
	seriesOut   string
	trigLat     time.Duration
	trigVNI     int
	trigFault   bool
}

// runCluster is the -nodes > 1 path: N servers behind consistent-hash
// ECMP, one shared engine, traffic sprayed at the switch. All summary
// output is deterministic for a fixed seed (wall time goes to stderr).
func runCluster(cr clusterRun) {
	cl, err := albatross.NewCluster(cr.opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := cl.AddPod(cr.podCfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if cr.autoFB {
		for _, m := range cl.Members() {
			m.Node.Pods()[0].EnableAutoFallback(0, 0)
		}
	}
	for _, m := range cl.Members() {
		armTriggers(m.Node.Pods()[0], cr.trigLat, cr.trigVNI, cr.trigFault)
	}

	sink := cl.Sink()
	var rec *albatross.TraceRecorder
	if cr.recordOut != "" {
		rec = albatross.NewTraceRecorder(cl.Engine)
		rec.SetMeta(cr.seed, len(cl.Members()), "albatross-sim cluster run")
		sink = cl.RecordingSink(rec)
	}

	wall := time.Now()
	if cr.replayIn != "" {
		tr, err := albatross.ReadTraceFile(cr.replayIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rp, err := albatross.ReplayTraceInto(cl.Engine, tr, sink)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cl.RunFor(albatross.Duration(cr.duration.Nanoseconds()))
		cl.RunFor(albatross.Millisecond) // drain in-flight packets
		if !rp.Done() {
			fmt.Fprintf(os.Stderr, "warning: replay injected %d of %d events; raise -duration\n",
				rp.Injected, len(tr.Events))
		}
	} else {
		wf := albatross.GenerateFlows(cr.flows, cr.tenants, cr.seed)
		src, err := albatross.NewSource(
			albatross.WithFlows(wf),
			albatross.WithRate(albatross.ConstantRate(cr.rate)),
			albatross.WithSourceSeed(cr.seed+1),
			albatross.WithSink(sink),
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := src.Start(cl.Engine); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cl.RunFor(albatross.Duration(cr.duration.Nanoseconds()))
		src.Stop()
		cl.RunFor(albatross.Millisecond) // drain in-flight packets
	}

	secs := cr.duration.Seconds()
	members := cl.Members()
	fmt.Printf("albatross-sim: %d-node cluster, %s %v pods, %d cores each, %d flows, offered %.2f Mpps for %v (virtual)\n",
		len(members), cr.svcName, cr.podCfg.Spec.Mode, cr.cores, cr.flows, cr.rate/1e6, cr.duration)
	fmt.Printf("  ecmp        sprayed=%d remapped=%d switch-drops=%d blackholed=%d\n",
		cl.Sprayed, cl.Remapped, cl.Drops, cl.Blackholed())

	var totTx uint64
	for _, m := range members {
		pr := m.Node.Pods()[0]
		totTx += pr.Tx
		fmt.Printf("  node%-2d      [%s] rx=%d tx=%d drops: nic=%d queue=%d plb=%d acl=%d | p50=%.1fµs p99=%.1fµs disorder=%.2e\n",
			m.Index, m.State(), pr.Rx, pr.Tx,
			pr.NICDrops, pr.QueueDrops, pr.PLBDrops, pr.ServiceDrop,
			float64(pr.Latency.Quantile(0.50))/1000,
			float64(pr.Latency.Quantile(0.99))/1000,
			pr.DisorderRate())
	}
	fmt.Printf("  cluster tx  %12d pkts (%.2f Mpps)\n", totTx, float64(totTx)/secs/1e6)

	// Execution-strategy telemetry goes to stderr only: stdout stays
	// byte-identical at any shard count (sharding is a pure speedup).
	wallD := time.Since(wall)
	fmt.Fprintf(os.Stderr, "  shards      %d engine shard(s) over %d nodes; wall %v, %.2f Mpps wall-rate\n",
		cl.Shards(), len(members), wallD.Round(time.Millisecond),
		float64(cl.Sprayed)/wallD.Seconds()/1e6)

	if cr.hasFaults {
		fmt.Println("  faults:")
		for _, e := range cl.FaultLog() {
			fmt.Printf("    %s\n", e)
		}
	}
	fmt.Fprintf(os.Stderr, "  wall time   %v\n", time.Since(wall).Round(time.Millisecond))
	if cr.report {
		fmt.Println()
		fmt.Print(cl.Report())
	}
	if cr.metricsOut != "" {
		if err := writeMetrics(cr.metricsOut, cl.Metrics()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  metrics     %s.prom %s.json\n", cr.metricsOut, cr.metricsOut)
	}
	if rec != nil {
		if err := rec.Trace().WriteFile(cr.recordOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  trace       %d events -> %s (+ .json sidecar)\n", rec.Events(), cr.recordOut)
	}
	if cr.seriesOut != "" {
		tl := cl.Timeline()
		if tl == nil {
			fmt.Fprintln(os.Stderr, "-series-out needs -snapshot-every > 0 to sample a timeline")
			os.Exit(1)
		}
		if err := writeSeries(cr.seriesOut, tl); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  series      %s.csv %s.json (%d ticks)\n", cr.seriesOut, cr.seriesOut, tl.Len())
	}
	if cr.outcomeOut != "" {
		if err := os.WriteFile(cr.outcomeOut, []byte(cl.Outcome()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  outcome     %s\n", cr.outcomeOut)
	}
	if cr.traceDump != "" {
		pods := map[string]*albatross.PodRuntime{}
		order := []string{}
		var committed uint64
		for _, m := range members {
			label := fmt.Sprintf("node%d/gw0", m.Index)
			pods[label] = m.Node.Pods()[0]
			order = append(order, label)
			committed += m.Node.Pods()[0].Flight().Committed()
		}
		if err := dumpJourneys(cr.traceDump, pods, order); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  journeys    %d committed -> %s.journeys.json\n", committed, cr.traceDump)
	}
	if cr.metricsAddr != "" {
		serveMetrics(cr.metricsAddr, cl.Metrics(), cl.Timeline())
	}
}

// writeSeries exports one sampled timeline as both CSV and JSON. Both
// files are byte-identical across repeat runs, shard counts, and burst
// sizes at a fixed seed.
func writeSeries(prefix string, tl *albatross.Timeline) error {
	if err := os.WriteFile(prefix+".csv", []byte(tl.CSV()), 0o644); err != nil {
		return err
	}
	j, err := tl.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(prefix+".json", j, 0o644)
}
