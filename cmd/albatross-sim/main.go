// Command albatross-sim runs Albatross gateway simulations — a workbench
// for exploring the platform outside the canned paper experiments.
//
// The primary entry point is the declarative scenario runner:
//
//	albatross-sim run scenarios/node-crash.yaml
//	albatross-sim validate scenarios/*.yaml
//	albatross-sim replay-diff outcome-a.txt outcome-b.txt
//	albatross-sim reconcile scenarios/reconcile-canary.yaml
//
// A scenario file declares the fleet, workload, timed fault script, and an
// assertions block; `run` executes it and exits non-zero when an assertion
// fails. Legacy flat-flag mode is preserved: invoking albatross-sim without
// a subcommand behaves exactly as before, and each flag's --help text names
// the scenario field it maps to.
//
//	albatross-sim -service vpc-internet -mode plb -cores 8 -flows 100000 \
//	              -rate 4e6 -duration 500ms -limiter
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"albatross"
	"albatross/internal/packet"
)

var serviceNames = map[string]albatross.ServiceType{
	"vpc-vpc":          albatross.VPCVPC,
	"vpc-internet":     albatross.VPCInternet,
	"vpc-idc":          albatross.VPCIDC,
	"vpc-cloudservice": albatross.VPCCloudService,
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "run":
			runScenarioCmd(os.Args[2:])
			return
		case "validate":
			validateScenarioCmd(os.Args[2:])
			return
		case "replay-diff":
			replayDiffSubCmd(os.Args[2:])
			return
		case "reconcile":
			reconcileCmd(os.Args[2:])
			return
		case "help", "--help":
			printTopUsage(os.Stdout)
			fmt.Fprintln(os.Stdout, "\nLegacy flat-flag mode (no subcommand):")
			flag.CommandLine.SetOutput(os.Stdout)
			legacyFlags()
			flag.PrintDefaults()
			return
		}
	}
	legacyMain()
}

// printTopUsage lists the subcommands; the legacy flags are appended by
// the caller.
func printTopUsage(w *os.File) {
	fmt.Fprint(w, `Usage:
  albatross-sim run [overrides] scenario.yaml     execute a declarative gameday scenario
  albatross-sim validate scenario.yaml...         load-check scenarios without running them
  albatross-sim replay-diff [-shards N] A B       compare two outcome reports (exit 1 on diff)
  albatross-sim reconcile [-plan] scenario.yaml   run (or -plan: dry-run) a desired-state reconcile drill
  albatross-sim [flags]                           legacy flat-flag single run

Each legacy flag's help names the scenario field it maps to, e.g.
-cores 8 is "fleet.cores: 8" in a scenario file.
`)
}

// legacyFlags registers the flat-flag surface on the global FlagSet. Each
// usage string ends with the scenario field the flag maps onto — the
// migration path from flag soup to a committed scenario file.
func legacyFlags() *legacyArgs {
	a := &legacyArgs{}
	a.svcName = flag.String("service", "vpc-vpc", "gateway service: vpc-vpc | vpc-internet | vpc-idc | vpc-cloudservice [scenario: fleet.service]")
	a.modeName = flag.String("mode", "plb", "load balancing: plb | rss [scenario: fleet.mode]")
	a.cores = flag.Int("cores", 8, "data cores for the pod [scenario: fleet.cores]")
	a.flows = flag.Int("flows", 100000, "concurrent flows [scenario: workload.flows]")
	a.tenants = flag.Int("tenants", 1000, "tenant count (VNIs) [scenario: workload.tenants]")
	a.rate = flag.Float64("rate", 2e6, "offered packets/second [scenario: workload.rate]")
	a.duration = flag.Duration("duration", 200*time.Millisecond, "virtual run time [scenario: duration]")
	a.seed = flag.Uint64("seed", 1, "simulation seed [scenario: seed]")
	a.limiter = flag.Bool("limiter", false, "enable tenant overload rate limiting [scenario: fleet.limiter]")
	a.denied = flag.Float64("acl-denied", 0, "fraction of flows ACL-denied (0..1) [scenario: workload.acl_denied]")
	a.report = flag.Bool("report", false, "print the full node report at the end [scenario: observability.report]")
	a.pcapOut = flag.String("pcap", "", "write a sample of generated traffic (first 1000 packets) to this pcap file [scenario: n/a, flag only]")
	a.autoFB = flag.Bool("autofallback", false, "arm the reorder-timeout watchdog that falls back PLB->RSS [scenario: fleet.auto_fallback]")
	a.nodes = flag.Int("nodes", 1, "gateway servers; >1 deploys a cluster behind consistent-hash ECMP [scenario: fleet.nodes]")
	a.shards = flag.Int("shards", 0, "engine shards for a cluster: 0 = auto (min(GOMAXPROCS, nodes)), 1 = single shared engine; stdout is byte-identical at any value [scenario: fleet.shards]")
	a.cacheMB = flag.Int("cache-mb", 0, "per-NUMA L3 cache model size in MiB (0 = model default 100; shrink for 1000-node fleets) [scenario: fleet.cache_mb]")
	a.backend = flag.String("backend", "", "node flow-table backend steering flows to pods: session | othello (empty = legacy first-pod) [scenario: fleet.backend]")
	a.burst = flag.Int("burst", 0, "burst-batched dispatch size; >1 shares one NIC event per burst, 0/1 = per-packet path [scenario: fleet.burst]")
	a.metrics = flag.String("metrics-out", "", "write the final metrics snapshot to PREFIX.prom and PREFIX.json [scenario: observability.metrics_out]")
	a.recordOut = flag.String("record", "", "record the injection schedule to this trace file (plus a .json header sidecar) [scenario: observability.record]")
	a.replayIn = flag.String("replay", "", "replay a trace file instead of generating traffic (-rate is ignored; -duration still bounds the run) [scenario: workload.replay]")
	a.replayDiff = flag.String("replay-diff", "", "compare two outcome report files A,B (from -outcome-out); exits 1 when they differ [subcommand: replay-diff A B]")
	a.outcomeOut = flag.String("outcome-out", "", "write the per-node outcome report to this file (works from 1 node up) [scenario: observability.outcome_out]")
	a.traceDump = flag.String("trace-dump", "", "write committed flight-recorder journeys to PREFIX.journeys.json [scenario: observability.trace_dump]")
	a.metricsAddr = flag.String("metrics-listen", "", "after the run, serve the frozen metrics snapshot at http://ADDR/metrics (blocks) [scenario: n/a, flag only]")
	a.snapshotEvery = flag.Duration("snapshot-every", 0, "sample a telemetry timeline every this much virtual time (cluster path; 0 disables) [scenario: observability.snapshot_every]")
	a.seriesOut = flag.String("series-out", "", "write the sampled timeline to PREFIX.csv and PREFIX.json (implies cluster path; needs -snapshot-every) [scenario: observability.series_out]")
	a.traceSample = flag.Int("trace-sample", 0, "flight-record every Nth packet (0 disables; -trace-dump and trigger flags default it to 64) [scenario: observability.trace_sample]")
	a.trigLat = flag.Duration("trace-latency-over", 0, "flight-recorder trigger: commit journeys slower than this end to end [scenario: observability.trace_latency_over]")
	a.trigVNI = flag.Int("trace-vni", -1, "flight-recorder trigger: commit journeys of this tenant VNI [scenario: observability.trace_vni]")
	a.trigFault = flag.Bool("trace-fault-window", false, "flight-recorder trigger: commit journeys overlapping a fault activation window [scenario: observability.trace_fault_window]")
	flag.Var(&a.ff, "fault", "inject a fault, repeatable: kind@time[,k=v...] e.g. corefail@20ms,core=2,dur=10ms (see cmd/albatross-sim/faults.go) [scenario: events]")
	return a
}

// legacyArgs holds the parsed flat-flag surface.
type legacyArgs struct {
	svcName, modeName                            *string
	cores, flows, tenants                        *int
	rate, denied                                 *float64
	duration                                     *time.Duration
	seed                                         *uint64
	limiter, report, autoFB, trigFault           *bool
	pcapOut, metrics, recordOut, replayIn        *string
	replayDiff, outcomeOut, traceDump, backend   *string
	metricsAddr, seriesOut                       *string
	nodes, shards, cacheMB, traceSample, trigVNI *int
	burst                                        *int
	trigLat, snapshotEvery                       *time.Duration
	ff                                           faultFlag
}

func legacyMain() {
	a := legacyFlags()
	flag.Usage = func() {
		printTopUsage(os.Stderr)
		fmt.Fprintln(os.Stderr, "\nLegacy flat-flag mode (no subcommand):")
		flag.PrintDefaults()
	}
	flag.Parse()
	svcName, modeName, cores, flows := a.svcName, a.modeName, a.cores, a.flows
	tenants, rate, duration, seed := a.tenants, a.rate, a.duration, a.seed
	limiter, denied, report, pcapOut := a.limiter, a.denied, a.report, a.pcapOut
	autoFB, nodes, shards, cacheMB := a.autoFB, a.nodes, a.shards, a.cacheMB
	metrics, recordOut, replayIn := a.metrics, a.recordOut, a.replayIn
	replayDiff, outcomeOut, traceDump := a.replayDiff, a.outcomeOut, a.traceDump
	metricsAddr, traceSample := a.metricsAddr, a.traceSample
	trigLat, trigVNI, trigFault := a.trigLat, a.trigVNI, a.trigFault
	ff := &a.ff

	if *replayDiff != "" {
		runReplayDiffCmd(*replayDiff, *shards)
		return
	}

	svc, ok := serviceNames[strings.ToLower(*svcName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown service %q\n", *svcName)
		os.Exit(2)
	}
	mode := albatross.ModePLB
	if strings.EqualFold(*modeName, "rss") {
		mode = albatross.ModeRSS
	}

	opts := []albatross.Option{albatross.WithSeed(*seed)}
	if *limiter {
		opts = append(opts, albatross.WithLimiter(albatross.DefaultLimiterConfig()))
	}
	if *cacheMB > 0 {
		opts = append(opts, albatross.WithCache(albatross.CacheConfig{
			SizeBytes: *cacheMB << 20, Ways: 16, LineBytes: 64,
		}))
	}
	if len(ff.plan.Faults) > 0 {
		opts = append(opts, albatross.WithFaultPlan(&ff.plan))
	}
	if *a.backend != "" {
		opts = append(opts, albatross.WithFlowBackend(*a.backend))
	}
	if *a.burst > 1 {
		opts = append(opts, albatross.WithBurst(*a.burst))
	}

	sample := *traceSample
	if sample == 0 && (*traceDump != "" || *trigLat > 0 || *trigVNI >= 0 || *trigFault) {
		sample = 64
	}
	podCfg := func() albatross.PodConfig {
		wf := albatross.GenerateFlows(*flows, *tenants, *seed)
		return albatross.PodConfig{
			Spec: albatross.PodSpec{
				Name: "gw0", Service: svc,
				DataCores: *cores, CtrlCores: 2, Mode: mode,
			},
			Flows:            albatross.ServiceFlows(wf, *denied),
			TraceSampleEvery: sample,
		}
	}

	// A cluster deployment handles any node count ≥ 1; single-node runs
	// that need the outcome artifact or timeline sampling go through it
	// too, so -outcome-out / -snapshot-every work without -nodes > 1.
	if *nodes > 1 || *outcomeOut != "" || *a.snapshotEvery > 0 || *a.seriesOut != "" {
		clOpts := append(opts, albatross.WithNodes(*nodes), albatross.WithShards(*shards))
		if *a.snapshotEvery > 0 {
			clOpts = append(clOpts, albatross.WithSnapshotEvery(albatross.Duration(a.snapshotEvery.Nanoseconds())))
		}
		runCluster(clusterRun{
			opts:    clOpts,
			podCfg:  podCfg(),
			svcName: *svcName, cores: *cores, flows: *flows,
			tenants: *tenants, rate: *rate, duration: *duration, seed: *seed,
			autoFB: *autoFB, report: *report, hasFaults: len(ff.plan.Faults) > 0,
			metricsOut: *metrics,
			recordOut:  *recordOut, replayIn: *replayIn, outcomeOut: *outcomeOut,
			traceDump: *traceDump, metricsAddr: *metricsAddr, seriesOut: *a.seriesOut,
			trigLat: *trigLat, trigVNI: *trigVNI, trigFault: *trigFault,
		})
		return
	}

	node, err := albatross.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	wf := albatross.GenerateFlows(*flows, *tenants, *seed)
	pod, err := node.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{
			Name: "gw0", Service: svc,
			DataCores: *cores, CtrlCores: 2, Mode: mode,
		},
		Flows: albatross.ServiceFlows(wf, *denied),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *autoFB {
		pod.EnableAutoFallback(0, 0)
	}
	armTriggers(pod, *trigLat, *trigVNI, *trigFault)

	sink := pod.Sink()
	var capture *pcapCapture
	if *pcapOut != "" {
		var err error
		capture, err = newPcapCapture(*pcapOut, 1000)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		inner := sink
		node2 := node
		sink = func(f albatross.Flow, bytes int) {
			capture.record(node2.Engine.Now(), f, bytes)
			inner(f, bytes)
		}
	}
	var rec *albatross.TraceRecorder
	if *recordOut != "" {
		rec = albatross.NewTraceRecorder(node.Engine)
		rec.SetMeta(*seed, 1, "albatross-sim single-node run")
		sink = rec.WrapSink(sink)
	}

	wall := time.Now()
	if *replayIn != "" {
		tr, err := albatross.ReadTraceFile(*replayIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rp, err := albatross.ReplayTraceInto(node.Engine, tr, sink)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		node.RunFor(albatross.Duration(duration.Nanoseconds()))
		node.RunFor(albatross.Millisecond) // drain in-flight packets
		if !rp.Done() {
			fmt.Fprintf(os.Stderr, "warning: replay injected %d of %d events; raise -duration\n",
				rp.Injected, len(tr.Events))
		}
	} else {
		src, err := albatross.NewSource(
			albatross.WithFlows(wf),
			albatross.WithRate(albatross.ConstantRate(*rate)),
			albatross.WithSourceSeed(*seed+1),
			albatross.WithSink(sink),
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := src.Start(node.Engine); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		node.RunFor(albatross.Duration(duration.Nanoseconds()))
		src.Stop()
		node.RunFor(albatross.Millisecond) // drain in-flight packets
	}

	secs := duration.Seconds()
	fmt.Printf("albatross-sim: %s %v pod, %d cores, %d flows, offered %.2f Mpps for %v (virtual)\n",
		*svcName, mode, *cores, *flows, *rate/1e6, *duration)
	fmt.Printf("  rx          %12d pkts (%.2f Mpps)\n", pod.Rx, float64(pod.Rx)/secs/1e6)
	fmt.Printf("  tx          %12d pkts (%.2f Mpps)\n", pod.Tx, float64(pod.Tx)/secs/1e6)
	fmt.Printf("  drops: nic=%d queue=%d plb=%d acl=%d\n",
		pod.NICDrops, pod.QueueDrops, pod.PLBDrops, pod.ServiceDrop)
	fmt.Printf("  latency     p50=%.1fµs p99=%.1fµs p99.9=%.1fµs max=%.1fµs\n",
		float64(pod.Latency.Quantile(0.50))/1000,
		float64(pod.Latency.Quantile(0.99))/1000,
		float64(pod.Latency.Quantile(0.999))/1000,
		float64(pod.Latency.Max())/1000)
	if pod.PLB != nil {
		s := pod.PLB.Stats()
		fmt.Printf("  plb         in-order=%d best-effort=%d disorder=%.2e hol=%d timeout=%d dropflag=%d\n",
			s.EmittedInOrder, s.EmittedBestEffort, s.DisorderRate(),
			s.HOLEvents, s.TimeoutReleases, s.DropFlagReleases)
	}
	if len(ff.plan.Faults) > 0 {
		printFaultSummary(node, pod)
	}
	// Wall time goes to stderr: stdout stays byte-identical across repeat
	// runs at a fixed seed.
	fmt.Fprintf(os.Stderr, "  wall time   %v\n", time.Since(wall).Round(time.Millisecond))
	if capture != nil {
		if err := capture.close(); err != nil {
			fmt.Fprintln(os.Stderr, "pcap:", err)
		} else {
			fmt.Printf("  pcap        %d packets -> %s\n", capture.n, *pcapOut)
		}
	}
	if *report {
		fmt.Println()
		fmt.Print(node.Report())
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, node.Metrics()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  metrics     %s.prom %s.json\n", *metrics, *metrics)
	}
	if rec != nil {
		if err := rec.Trace().WriteFile(*recordOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  trace       %d events -> %s (+ .json sidecar)\n", rec.Events(), *recordOut)
	}
	if *traceDump != "" {
		if err := dumpJourneys(*traceDump, map[string]*albatross.PodRuntime{"gw0": pod}, []string{"gw0"}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  journeys    %d committed -> %s.journeys.json\n", pod.Flight().Committed(), *traceDump)
	}
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, node.Metrics(), nil)
	}
}

// writeMetrics exports one snapshot as both Prometheus text exposition and
// JSON. Both files are byte-identical across repeat runs at a fixed seed.
func writeMetrics(prefix string, snap *albatross.MetricsSnapshot) error {
	if err := os.WriteFile(prefix+".prom", []byte(snap.Prometheus()), 0o644); err != nil {
		return err
	}
	j, err := snap.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(prefix+".json", j, 0o644)
}

// pcapCapture writes the first maxPkts generated packets, re-materialized
// as real VXLAN wire bytes, to a pcap file readable by tcpdump/Wireshark.
type pcapCapture struct {
	f       *os.File
	w       *packet.PcapWriter
	builder *packet.Builder
	max     int
	n       int
}

func newPcapCapture(path string, maxPkts int) (*pcapCapture, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &pcapCapture{
		f:       f,
		w:       packet.NewPcapWriter(f, 0),
		builder: packet.NewBuilder(2048),
		max:     maxPkts,
	}, nil
}

func (c *pcapCapture) record(now albatross.Time, f albatross.Flow, bytes int) {
	if c.n >= c.max {
		return
	}
	payload := bytes - 110
	if payload < 0 {
		payload = 0
	}
	if payload > 8500 {
		payload = 8500
	}
	frame := packet.BuildVXLANPacket(c.builder, &packet.VXLANSpec{
		OuterSrcMAC:  packet.MAC{0x02, 0, 0, 0, 0, 1},
		OuterDstMAC:  packet.MAC{0x02, 0, 0, 0, 0, 2},
		OuterSrc:     packet.IPv4Addr{100, 64, 0, 1},
		OuterDst:     packet.IPv4Addr{100, 64, 0, 2},
		OuterSrcPort: uint16(40000 + c.n%20000),
		VNI:          f.VNI,
		InnerSrc:     f.Tuple.Src,
		InnerDst:     f.Tuple.Dst,
		InnerProto:   f.Tuple.Proto,
		InnerSPort:   f.Tuple.SPort,
		InnerDPort:   f.Tuple.DPort,
		PayloadLen:   payload,
	})
	if err := c.w.WritePacket(time.Duration(now), frame); err == nil {
		c.n++
	}
}

func (c *pcapCapture) close() error { return c.f.Close() }
