// Command albatross-sim runs one configurable Albatross gateway simulation
// and prints a throughput/latency summary — a workbench for exploring the
// platform outside the canned paper experiments.
//
// Example:
//
//	albatross-sim -service vpc-internet -mode plb -cores 8 -flows 100000 \
//	              -rate 4e6 -duration 500ms -limiter
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"albatross"
	"albatross/internal/packet"
)

var serviceNames = map[string]albatross.ServiceType{
	"vpc-vpc":          albatross.VPCVPC,
	"vpc-internet":     albatross.VPCInternet,
	"vpc-idc":          albatross.VPCIDC,
	"vpc-cloudservice": albatross.VPCCloudService,
}

func main() {
	var (
		svcName  = flag.String("service", "vpc-vpc", "gateway service: vpc-vpc | vpc-internet | vpc-idc | vpc-cloudservice")
		modeName = flag.String("mode", "plb", "load balancing: plb | rss")
		cores    = flag.Int("cores", 8, "data cores for the pod")
		flows    = flag.Int("flows", 100000, "concurrent flows")
		tenants  = flag.Int("tenants", 1000, "tenant count (VNIs)")
		rate     = flag.Float64("rate", 2e6, "offered packets/second")
		duration = flag.Duration("duration", 200*time.Millisecond, "virtual run time")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		limiter  = flag.Bool("limiter", false, "enable tenant overload rate limiting")
		denied   = flag.Float64("acl-denied", 0, "fraction of flows ACL-denied (0..1)")
		report   = flag.Bool("report", false, "print the full node report at the end")
		pcapOut  = flag.String("pcap", "", "write a sample of generated traffic (first 1000 packets) to this pcap file")
		autoFB   = flag.Bool("autofallback", false, "arm the reorder-timeout watchdog that falls back PLB->RSS")
		nodes    = flag.Int("nodes", 1, "gateway servers; >1 deploys a cluster behind consistent-hash ECMP")
		shards   = flag.Int("shards", 0, "engine shards for a cluster: 0 = auto (min(GOMAXPROCS, nodes)), 1 = single shared engine; stdout is byte-identical at any value")
		cacheMB  = flag.Int("cache-mb", 0, "per-NUMA L3 cache model size in MiB (0 = model default 100; shrink for 1000-node fleets)")
		metrics  = flag.String("metrics-out", "", "write the final metrics snapshot to PREFIX.prom and PREFIX.json")

		recordOut   = flag.String("record", "", "record the injection schedule to this trace file (plus a .json header sidecar)")
		replayIn    = flag.String("replay", "", "replay a trace file instead of generating traffic (-rate is ignored; -duration still bounds the run)")
		replayDiff  = flag.String("replay-diff", "", "compare two outcome report files A,B (from -outcome-out); exits 1 when they differ")
		outcomeOut  = flag.String("outcome-out", "", "write the per-node outcome report to this file (requires -nodes > 1)")
		traceDump   = flag.String("trace-dump", "", "write committed flight-recorder journeys to PREFIX.journeys.json")
		metricsAddr = flag.String("metrics-listen", "", "after the run, serve the frozen metrics snapshot at http://ADDR/metrics (blocks)")
		traceSample = flag.Int("trace-sample", 0, "flight-record every Nth packet (0 disables; -trace-dump and trigger flags default it to 64)")
		trigLat     = flag.Duration("trace-latency-over", 0, "flight-recorder trigger: commit journeys slower than this end to end")
		trigVNI     = flag.Int("trace-vni", -1, "flight-recorder trigger: commit journeys of this tenant VNI")
		trigFault   = flag.Bool("trace-fault-window", false, "flight-recorder trigger: commit journeys overlapping a fault activation window")
	)
	var ff faultFlag
	flag.Var(&ff, "fault", "inject a fault, repeatable: kind@time[,k=v...] e.g. corefail@20ms,core=2,dur=10ms (see cmd/albatross-sim/faults.go)")
	flag.Parse()

	if *replayDiff != "" {
		runReplayDiffCmd(*replayDiff, *shards)
		return
	}
	if *outcomeOut != "" && *nodes <= 1 {
		fmt.Fprintln(os.Stderr, "-outcome-out needs a cluster: pass -nodes > 1")
		os.Exit(2)
	}

	svc, ok := serviceNames[strings.ToLower(*svcName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown service %q\n", *svcName)
		os.Exit(2)
	}
	mode := albatross.ModePLB
	if strings.EqualFold(*modeName, "rss") {
		mode = albatross.ModeRSS
	}

	opts := []albatross.Option{albatross.WithSeed(*seed)}
	if *limiter {
		opts = append(opts, albatross.WithLimiter(albatross.DefaultLimiterConfig()))
	}
	if *cacheMB > 0 {
		opts = append(opts, albatross.WithCache(albatross.CacheConfig{
			SizeBytes: *cacheMB << 20, Ways: 16, LineBytes: 64,
		}))
	}
	if len(ff.plan.Faults) > 0 {
		opts = append(opts, albatross.WithFaultPlan(&ff.plan))
	}

	sample := *traceSample
	if sample == 0 && (*traceDump != "" || *trigLat > 0 || *trigVNI >= 0 || *trigFault) {
		sample = 64
	}
	podCfg := func() albatross.PodConfig {
		wf := albatross.GenerateFlows(*flows, *tenants, *seed)
		return albatross.PodConfig{
			Spec: albatross.PodSpec{
				Name: "gw0", Service: svc,
				DataCores: *cores, CtrlCores: 2, Mode: mode,
			},
			Flows:            albatross.ServiceFlows(wf, *denied),
			TraceSampleEvery: sample,
		}
	}

	if *nodes > 1 {
		runCluster(clusterRun{
			opts:    append(opts, albatross.WithNodes(*nodes), albatross.WithShards(*shards)),
			podCfg:  podCfg(),
			svcName: *svcName, cores: *cores, flows: *flows,
			tenants: *tenants, rate: *rate, duration: *duration, seed: *seed,
			autoFB: *autoFB, report: *report, hasFaults: len(ff.plan.Faults) > 0,
			metricsOut: *metrics,
			recordOut:  *recordOut, replayIn: *replayIn, outcomeOut: *outcomeOut,
			traceDump: *traceDump, metricsAddr: *metricsAddr,
			trigLat: *trigLat, trigVNI: *trigVNI, trigFault: *trigFault,
		})
		return
	}

	node, err := albatross.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	wf := albatross.GenerateFlows(*flows, *tenants, *seed)
	pod, err := node.AddPod(albatross.PodConfig{
		Spec: albatross.PodSpec{
			Name: "gw0", Service: svc,
			DataCores: *cores, CtrlCores: 2, Mode: mode,
		},
		Flows: albatross.ServiceFlows(wf, *denied),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *autoFB {
		pod.EnableAutoFallback(0, 0)
	}
	armTriggers(pod, *trigLat, *trigVNI, *trigFault)

	sink := pod.Sink()
	var capture *pcapCapture
	if *pcapOut != "" {
		var err error
		capture, err = newPcapCapture(*pcapOut, 1000)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		inner := sink
		node2 := node
		sink = func(f albatross.Flow, bytes int) {
			capture.record(node2.Engine.Now(), f, bytes)
			inner(f, bytes)
		}
	}
	var rec *albatross.TraceRecorder
	if *recordOut != "" {
		rec = albatross.NewTraceRecorder(node.Engine)
		rec.SetMeta(*seed, 1, "albatross-sim single-node run")
		sink = rec.WrapSink(sink)
	}

	wall := time.Now()
	if *replayIn != "" {
		tr, err := albatross.ReadTraceFile(*replayIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rp, err := albatross.ReplayTraceInto(node.Engine, tr, sink)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		node.RunFor(albatross.Duration(duration.Nanoseconds()))
		node.RunFor(albatross.Millisecond) // drain in-flight packets
		if !rp.Done() {
			fmt.Fprintf(os.Stderr, "warning: replay injected %d of %d events; raise -duration\n",
				rp.Injected, len(tr.Events))
		}
	} else {
		src, err := albatross.NewSource(
			albatross.WithFlows(wf),
			albatross.WithRate(albatross.ConstantRate(*rate)),
			albatross.WithSourceSeed(*seed+1),
			albatross.WithSink(sink),
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := src.Start(node.Engine); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		node.RunFor(albatross.Duration(duration.Nanoseconds()))
		src.Stop()
		node.RunFor(albatross.Millisecond) // drain in-flight packets
	}

	secs := duration.Seconds()
	fmt.Printf("albatross-sim: %s %v pod, %d cores, %d flows, offered %.2f Mpps for %v (virtual)\n",
		*svcName, mode, *cores, *flows, *rate/1e6, *duration)
	fmt.Printf("  rx          %12d pkts (%.2f Mpps)\n", pod.Rx, float64(pod.Rx)/secs/1e6)
	fmt.Printf("  tx          %12d pkts (%.2f Mpps)\n", pod.Tx, float64(pod.Tx)/secs/1e6)
	fmt.Printf("  drops: nic=%d queue=%d plb=%d acl=%d\n",
		pod.NICDrops, pod.QueueDrops, pod.PLBDrops, pod.ServiceDrop)
	fmt.Printf("  latency     p50=%.1fµs p99=%.1fµs p99.9=%.1fµs max=%.1fµs\n",
		float64(pod.Latency.Quantile(0.50))/1000,
		float64(pod.Latency.Quantile(0.99))/1000,
		float64(pod.Latency.Quantile(0.999))/1000,
		float64(pod.Latency.Max())/1000)
	if pod.PLB != nil {
		s := pod.PLB.Stats()
		fmt.Printf("  plb         in-order=%d best-effort=%d disorder=%.2e hol=%d timeout=%d dropflag=%d\n",
			s.EmittedInOrder, s.EmittedBestEffort, s.DisorderRate(),
			s.HOLEvents, s.TimeoutReleases, s.DropFlagReleases)
	}
	if len(ff.plan.Faults) > 0 {
		printFaultSummary(node, pod)
	}
	// Wall time goes to stderr: stdout stays byte-identical across repeat
	// runs at a fixed seed.
	fmt.Fprintf(os.Stderr, "  wall time   %v\n", time.Since(wall).Round(time.Millisecond))
	if capture != nil {
		if err := capture.close(); err != nil {
			fmt.Fprintln(os.Stderr, "pcap:", err)
		} else {
			fmt.Printf("  pcap        %d packets -> %s\n", capture.n, *pcapOut)
		}
	}
	if *report {
		fmt.Println()
		fmt.Print(node.Report())
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics, node.Metrics()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  metrics     %s.prom %s.json\n", *metrics, *metrics)
	}
	if rec != nil {
		if err := rec.Trace().WriteFile(*recordOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  trace       %d events -> %s (+ .json sidecar)\n", rec.Events(), *recordOut)
	}
	if *traceDump != "" {
		if err := dumpJourneys(*traceDump, map[string]*albatross.PodRuntime{"gw0": pod}, []string{"gw0"}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  journeys    %d committed -> %s.journeys.json\n", pod.Flight().Committed(), *traceDump)
	}
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, node.Metrics())
	}
}

// writeMetrics exports one snapshot as both Prometheus text exposition and
// JSON. Both files are byte-identical across repeat runs at a fixed seed.
func writeMetrics(prefix string, snap *albatross.MetricsSnapshot) error {
	if err := os.WriteFile(prefix+".prom", []byte(snap.Prometheus()), 0o644); err != nil {
		return err
	}
	j, err := snap.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(prefix+".json", j, 0o644)
}

// pcapCapture writes the first maxPkts generated packets, re-materialized
// as real VXLAN wire bytes, to a pcap file readable by tcpdump/Wireshark.
type pcapCapture struct {
	f       *os.File
	w       *packet.PcapWriter
	builder *packet.Builder
	max     int
	n       int
}

func newPcapCapture(path string, maxPkts int) (*pcapCapture, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &pcapCapture{
		f:       f,
		w:       packet.NewPcapWriter(f, 0),
		builder: packet.NewBuilder(2048),
		max:     maxPkts,
	}, nil
}

func (c *pcapCapture) record(now albatross.Time, f albatross.Flow, bytes int) {
	if c.n >= c.max {
		return
	}
	payload := bytes - 110
	if payload < 0 {
		payload = 0
	}
	if payload > 8500 {
		payload = 8500
	}
	frame := packet.BuildVXLANPacket(c.builder, &packet.VXLANSpec{
		OuterSrcMAC:  packet.MAC{0x02, 0, 0, 0, 0, 1},
		OuterDstMAC:  packet.MAC{0x02, 0, 0, 0, 0, 2},
		OuterSrc:     packet.IPv4Addr{100, 64, 0, 1},
		OuterDst:     packet.IPv4Addr{100, 64, 0, 2},
		OuterSrcPort: uint16(40000 + c.n%20000),
		VNI:          f.VNI,
		InnerSrc:     f.Tuple.Src,
		InnerDst:     f.Tuple.Dst,
		InnerProto:   f.Tuple.Proto,
		InnerSPort:   f.Tuple.SPort,
		InnerDPort:   f.Tuple.DPort,
		PayloadLen:   payload,
	})
	if err := c.w.WritePacket(time.Duration(now), frame); err == nil {
		c.n++
	}
}

func (c *pcapCapture) close() error { return c.f.Close() }
