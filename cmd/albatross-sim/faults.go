package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"albatross"
)

// faultFlag collects repeated -fault specs into a FaultPlan.
//
// Spec grammar (comma-separated key=value after "kind@at"):
//
//	corestall@20ms,core=2,factor=100,dur=5ms
//	corefail@20ms,core=2,dur=10ms
//	podcrash@30ms,pod=0,restart=20ms
//	poddrain@30ms,pod=0,restart=20ms
//	reorderstress@10ms,queue=0,dur=5ms,hold=1,clamp=0
//	rxloss@10ms,core=1,prob=0.5,dur=5ms
//	bgpflap@100ms,dur=500ms
//	nodecrash@30ms,node=1,dur=500ms       (cluster runs, -nodes > 1)
//	nodedrain@30ms,node=1,dur=100ms
//	uplinkwithdraw@30ms,node=0,dur=100ms
//
// Times use Go duration syntax and are virtual (relative to node start).
// The "@time" part may be omitted ("-fault nodecrash"): the fault fires at
// t=0 with the kind's defaults.
type faultFlag struct {
	specs []string
	plan  albatross.FaultPlan
}

func (f *faultFlag) String() string { return strings.Join(f.specs, " ") }

func (f *faultFlag) Set(spec string) error {
	kind, at, kv, err := splitFaultSpec(spec)
	if err != nil {
		return err
	}
	pod := kv.intOr("pod", 0)
	switch kind {
	case "corestall":
		f.plan.CoreStall(at, pod, kv.intOr("core", 0), kv.floatOr("factor", 10), kv.durOr("dur", 5*albatross.Millisecond))
	case "corefail":
		f.plan.CoreFail(at, pod, kv.intOr("core", 0), kv.durOr("dur", 10*albatross.Millisecond))
	case "podcrash":
		f.plan.PodCrash(at, pod, kv.durOr("restart", 0))
	case "poddrain":
		f.plan.PodDrain(at, pod, kv.durOr("restart", 0))
	case "reorderstress":
		f.plan.ReorderStress(at, pod, kv.intOr("queue", 0), kv.durOr("dur", 5*albatross.Millisecond),
			kv.intOr("hold", 1) != 0, kv.intOr("clamp", 0))
	case "rxloss":
		f.plan.RxLoss(at, pod, kv.intOr("core", 0), kv.floatOr("prob", 0.5), kv.durOr("dur", 5*albatross.Millisecond))
	case "bgpflap":
		f.plan.BGPFlap(at, kv.durOr("dur", 500*albatross.Millisecond))
	case "nodecrash":
		f.plan.NodeCrash(at, kv.intOr("node", 0), kv.durOr("dur", 500*albatross.Millisecond))
	case "nodedrain":
		f.plan.NodeDrain(at, kv.intOr("node", 0), kv.durOr("dur", 100*albatross.Millisecond))
	case "uplinkwithdraw":
		f.plan.UplinkWithdraw(at, kv.intOr("node", 0), kv.durOr("dur", 100*albatross.Millisecond))
	default:
		return fmt.Errorf("unknown fault kind %q (corestall|corefail|podcrash|poddrain|reorderstress|rxloss|bgpflap|nodecrash|nodedrain|uplinkwithdraw)", kind)
	}
	if err := f.plan.Validate(); err != nil {
		f.plan.Faults = f.plan.Faults[:len(f.plan.Faults)-1]
		return fmt.Errorf("fault %q: %v", spec, err)
	}
	f.specs = append(f.specs, spec)
	return nil
}

type faultKVs map[string]string

func splitFaultSpec(spec string) (kind string, at albatross.Duration, kv faultKVs, err error) {
	parts := strings.Split(spec, ",")
	head := strings.SplitN(parts[0], "@", 2)
	kind = strings.ToLower(head[0])
	if kind == "" {
		return "", 0, nil, fmt.Errorf("fault %q: want kind[@time][,k=v...]", spec)
	}
	var d time.Duration
	if len(head) == 2 {
		d, err = time.ParseDuration(head[1])
		if err != nil {
			return "", 0, nil, fmt.Errorf("fault %q: bad time: %v", spec, err)
		}
	}
	kv = faultKVs{}
	for _, p := range parts[1:] {
		eq := strings.SplitN(p, "=", 2)
		if len(eq) != 2 || eq[0] == "" {
			return "", 0, nil, fmt.Errorf("fault %q: bad key=value %q", spec, p)
		}
		kv[strings.ToLower(eq[0])] = eq[1]
	}
	return kind, albatross.Duration(d.Nanoseconds()), kv, nil
}

func (kv faultKVs) intOr(key string, def int) int {
	if v, ok := kv[key]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func (kv faultKVs) floatOr(key string, def float64) float64 {
	if v, ok := kv[key]; ok {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

func (kv faultKVs) durOr(key string, def albatross.Duration) albatross.Duration {
	if v, ok := kv[key]; ok {
		if d, err := time.ParseDuration(v); err == nil {
			return albatross.Duration(d.Nanoseconds())
		}
	}
	return def
}

// printFaultSummary reports the fired-fault log and every degradation
// counter the fault layer maintains.
func printFaultSummary(node *albatross.Node, pod *albatross.PodRuntime) {
	fmt.Println("  faults:")
	for _, e := range node.FaultLog() {
		fmt.Printf("    %s\n", e)
	}
	fmt.Printf("  degradation: faultlost=%d rxlost=%d redirected=%d crashdrops=%d restarts=%d fallbacks=%d\n",
		pod.FaultLost, pod.RxLost, pod.Redirected, pod.CrashDrops, pod.Restarts, pod.Fallbacks)
	if up := node.Uplink(); up != nil {
		st := up.Stats()
		fmt.Printf("  uplink:      flaps=%d detections=%d absorbed=%d blackholed=%d proxied=%d detect=%.1fms\n",
			st.Flaps, st.Detections, st.Absorbed, node.Blackholed, node.Proxied,
			float64(st.LastDetectNS)/1e6)
	}
}
