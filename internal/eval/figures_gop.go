package eval

import (
	"fmt"

	"albatross/internal/cachesim"
	"albatross/internal/core"
	"albatross/internal/gop"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

func init() {
	register("fig13", "Tenant burst without overload rate limiting", func(c Config) *Result {
		return runTenantOverload(c, false)
	})
	register("fig14", "Tenant burst with two-stage overload rate limiting", func(c Config) *Result {
		return runTenantOverload(c, true)
	})
}

// runTenantOverload reproduces Fig. 13/14, scaled 1:100 in time and rate
// from the paper's setup: four tenants at 4/3/2/1 Mpps against a 20 Mpps
// pod; at t=15s the dominant tenant bursts to 34 Mpps. Here all rates are
// expressed relative to the measured pod capacity C: initial offers
// 0.2/0.15/0.1/0.05 C, the burst takes tenant 1 to 1.7 C, and the meters
// are 0.4 C (stage 1) + 0.1 C (stage 2) = 0.5 C per tenant.
func runTenantOverload(cfg Config, withGOP bool) *Result {
	id := "fig13"
	title := "Tenant rates WITHOUT overload rate limiting"
	if withGOP {
		id = "fig14"
		title = "Tenant rates WITH two-stage overload rate limiting"
	}
	r := &Result{ID: id, Title: title}

	// Tenants 1-4 each bring enough flows that even a single tenant's
	// working set exceeds the L3 (so the burst cannot ride a warm cache).
	tenantFlows := make([][]workload.Flow, 4)
	var allFlows []service.Flow
	for i := 0; i < 4; i++ {
		fl := workload.GenerateFlows(20000, 1, cfg.Seed+uint64(i+1))
		for j := range fl {
			fl[j].VNI = uint32(i + 1)
		}
		tenantFlows[i] = fl
		allFlows = append(allFlows, workload.ServiceFlows(fl, 0)...)
	}

	// Measure pod capacity on a throwaway node with the same population.
	probe, err := core.NewNode(core.NodeConfig{Seed: cfg.Seed,
		Cache: cachesim.Config{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64}})
	if err != nil {
		panic(err)
	}
	prCap, err := probe.AddPod(core.PodConfig{
		Spec:  pod.Spec{Name: "probe", Service: service.VPCVPC, DataCores: 2, CtrlCores: 1},
		Flows: allFlows, MemoryMult: 8,
	})
	if err != nil {
		panic(err)
	}
	capacity := prCap.SaturationMpps(allFlows, 20000) * 1e6 // pps

	var limiter *gop.Config
	if withGOP {
		lc := gop.DefaultConfig()
		lc.Stage1Rate = 0.4 * capacity
		lc.Stage2Rate = 0.1 * capacity
		lc.SampleOneIn = 0 // isolate the metering behaviour, as in Fig. 14
		limiter = &lc
	}
	n, err := core.NewNode(core.NodeConfig{Seed: cfg.Seed,
		Cache:   cachesim.Config{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64},
		Limiter: limiter,
	})
	if err != nil {
		panic(err)
	}

	pr, err := n.AddPod(core.PodConfig{
		Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 2, CtrlCores: 1, Mode: pod.ModePLB},
		Flows: allFlows, MemoryMult: 8, QueueDepth: 512,
	})
	if err != nil {
		panic(err)
	}

	stepAt := sim.Time(1500 * sim.Millisecond)
	total := 3 * sim.Second
	if cfg.Quick {
		stepAt = sim.Time(600 * sim.Millisecond)
		total = 1200 * sim.Millisecond
	}
	offered := []workload.RateFn{
		workload.StepRate(0.20*capacity, 1.70*capacity, stepAt),
		workload.ConstantRate(0.15 * capacity),
		workload.ConstantRate(0.10 * capacity),
		workload.ConstantRate(0.05 * capacity),
	}
	for i := 0; i < 4; i++ {
		src := sourceFor(cfg, uint64(50+i), tenantFlows[i], offered[i], pr.Sink())
		if err := src.Start(n.Engine); err != nil {
			panic(err)
		}
	}

	// Sample delivered per-tenant rates in windows.
	window := 100 * sim.Millisecond
	series := make([]*stats.Series, 4)
	for i := range series {
		series[i] = &stats.Series{}
	}
	prev := make([]uint64, 5)
	for now := sim.Duration(0); now < total; now += window {
		n.RunFor(window)
		for i := 0; i < 4; i++ {
			cur := pr.TxPerTenant[uint32(i+1)]
			rate := float64(cur-prev[i+1]) / window.Seconds()
			series[i].Append(n.Engine.Now().Seconds(), rate/capacity)
			prev[i+1] = cur
		}
	}

	table := stats.NewTable("t (s)", "T1 (xC)", "T2 (xC)", "T3 (xC)", "T4 (xC)")
	for i := 0; i < series[0].Len(); i++ {
		table.AddRow(fmt.Sprintf("%.1f", series[0].T[i]),
			series[0].V[i], series[1].V[i], series[2].V[i], series[3].V[i])
	}
	r.Table = table
	r.notef("C = measured pod capacity (%.0f Kpps); paper C = 20 Mpps", capacity/1e3)

	// Post-step delivery ratios (last 3 windows).
	postRatio := func(i int, offeredFrac float64) float64 {
		n := series[i].Len()
		sum := 0.0
		for k := n - 3; k < n; k++ {
			sum += series[i].V[k]
		}
		return sum / 3 / offeredFrac
	}

	if withGOP {
		// Fig. 14: tenant 1 capped near 0.5C; others unharmed.
		t1 := postRatio(0, 1.70)
		r.check("tenant 1 rate-limited in the NIC", t1 < 0.40,
			"delivered %.2f of offered burst", t1)
		t1Abs := postRatio(0, 1.0) // delivered as fraction of C
		r.check("tenant 1 capped at ~0.5C", t1Abs > 0.35 && t1Abs < 0.65,
			"delivered %.2fC, meters total 0.5C", t1Abs)
		for i, frac := range []float64{0.15, 0.10, 0.05} {
			ratio := postRatio(i+1, frac)
			r.check(fmt.Sprintf("tenant %d unaffected", i+2), ratio > 0.90,
				"delivered %.2f of offered", ratio)
		}
	} else {
		// Fig. 13: everyone suffers ~50% loss after the burst.
		fracs := []float64{1.70, 0.15, 0.10, 0.05}
		for i, frac := range fracs {
			ratio := postRatio(i, frac)
			r.check(fmt.Sprintf("tenant %d suffers indiscriminate loss", i+1),
				ratio < 0.80, "delivered %.2f of offered", ratio)
		}
		// Pre-step: everyone fine (inspect window just before the step).
		idx := int(sim.Duration(stepAt)/window) - 2
		pre1 := series[1].V[idx] / 0.15
		r.check("tenants healthy before the burst", pre1 > 0.9,
			"tenant 2 delivered %.2f of offered pre-step", pre1)
	}
	return r
}
