package eval

import (
	"math"

	"albatross/internal/cachesim"
	"albatross/internal/flowtable"
	"albatross/internal/rss"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

func init() {
	register("fig4", "PLB vs RSS per-core performance", runFig4)
	register("fig5", "L3 cache hit rate: PLB vs RSS", runFig5)
}

// perfProbe measures the mean per-packet cost of the VPC-Internet service
// under a given access pattern over nCores cores sharing one L3.
//
// PLB: every core sees a uniformly random flow each packet (spray).
// RSS: each core sees only its own hash-partition of the flows, and cores
// interleave round-robin (as hardware time-multiplexes the shared L3).
func perfProbe(cfg Config, nCores int, plbMode bool, probes int) (nsPerPkt float64, hitRate float64) {
	nFlows, cacheB, _ := scale(cfg)
	wf := workload.GenerateFlows(nFlows, 100000, cfg.Seed)
	sf := workload.ServiceFlows(wf, 0)

	cache := cachesim.New(cachesim.Config{SizeBytes: cacheB, Ways: 16, LineBytes: 64})
	svc, err := service.New(service.Config{
		Type:  service.VPCInternet,
		Cache: cache,
		Addrs: flowtable.NewAddrSpace(),
	})
	if err != nil {
		panic(err)
	}
	svc.Populate(sf)

	// RSS partition: flows per core by Toeplitz hash, exactly as the NIC
	// would spread them.
	var perCore [][]int
	if !plbMode {
		eng, _ := rss.NewEngine(nCores, 128)
		perCore = make([][]int, nCores)
		for i, f := range wf {
			q := eng.Queue(f.Tuple)
			perCore[q] = append(perCore[q], i)
		}
	}

	r := sim.NewRand(cfg.Seed ^ 0xF16)

	probe := func(measure bool) sim.Duration {
		var total sim.Duration
		for i := 0; i < probes; i++ {
			coreID := i % nCores
			var fi int
			if plbMode {
				fi = r.Intn(len(wf))
			} else {
				flows := perCore[coreID]
				if len(flows) == 0 {
					continue
				}
				// Concurrent flows' packets interleave randomly within the
				// core's hash partition.
				fi = flows[r.Intn(len(flows))]
			}
			res := svc.Process(wf[fi].Tuple, wf[fi].VNI)
			if measure {
				total += res.Cost
			}
		}
		return total
	}

	probe(false) // warm-up
	cache.ResetStats()
	total := probe(true)
	return float64(total) / float64(probes), cache.HitRate()
}

func runFig4(cfg Config) *Result {
	r := &Result{ID: "fig4", Title: "Per-core performance, PLB vs RSS (VPC-Internet, 500K flows)"}
	probes := 60000
	if !cfg.Quick {
		probes = 400000
	}
	table := stats.NewTable("Cores", "RSS Mpps/core", "PLB Mpps/core", "Gap %")
	coreCounts := []int{1, 20, 40}
	if cfg.Quick {
		coreCounts = []int{1, 4, 8}
	}
	maxGap := 0.0
	for _, nc := range coreCounts {
		rssNS, _ := perfProbe(cfg, nc, false, probes)
		plbNS, _ := perfProbe(cfg, nc, true, probes)
		rssMpps := 1e3 / rssNS
		plbMpps := 1e3 / plbNS
		gap := (rssMpps - plbMpps) / rssMpps * 100
		if math.Abs(gap) > maxGap {
			maxGap = math.Abs(gap)
		}
		table.AddRow(nc, rssMpps, plbMpps, gap)
	}
	r.Table = table
	// Paper: <1% difference. Allow 3% for the scaled model.
	r.check("PLB within 3% of RSS", maxGap < 3.0, "max gap %.2f%%", maxGap)
	r.notef("the gap stays small because both modes thrash the shared L3 (see fig5)")
	return r
}

func runFig5(cfg Config) *Result {
	r := &Result{ID: "fig5", Title: "L3 cache hit rate comparison (VPC-Internet)"}
	probes := 60000
	if !cfg.Quick {
		probes = 400000
	}
	nc := 8
	if !cfg.Quick {
		nc = 40
	}
	_, rssHit := perfProbe(cfg, nc, false, probes)
	_, plbHit := perfProbe(cfg, nc, true, probes)

	table := stats.NewTable("Mode", "L3 hit rate %")
	table.AddRow("RSS", rssHit*100)
	table.AddRow("PLB", plbHit*100)
	r.Table = table

	// Paper: 30-45% hit rate in both modes, nearly identical.
	r.check("hit rate in paper band (25-55%)",
		rssHit > 0.25 && rssHit < 0.55 && plbHit > 0.25 && plbHit < 0.55,
		"RSS %.1f%%, PLB %.1f%%", rssHit*100, plbHit*100)
	diff := math.Abs(rssHit - plbHit)
	r.check("modes within 5 points", diff < 0.05,
		"|%.1f%% - %.1f%%| = %.1f pts", rssHit*100, plbHit*100, diff*100)
	r.notef("tables span %d flows x ~1.4KB state vs a %dMB L3: thrashing either way", 500000, 100)
	return r
}
