package eval

import (
	"bytes"
	"strings"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
	"albatross/internal/workload/trace"
)

func init() {
	register("replaydiff", "Trace record/replay as a regression oracle: seed-invariant outcomes, crash diff confined to the detection window", runReplayDiff)
}

// runReplayDiff exercises the record → save → replay → diff loop the
// gameday-drill story needs. One live 3-node cluster run is recorded into
// a trace, serialized, and read back; the same schedule is then replayed
// against fresh clusters under three different seeds (the per-node outcome
// reports must be byte-identical — with service jitter disabled the
// schedule alone determines every outcome) and against a cluster with a
// NodeCrash fault plan (the diff against healthy must touch only the
// crashed node's lines, the cluster ECMP totals, and the metrics checksum
// — i.e. the BFD detection-window delta — never a survivor's lines or any
// conservation residual).
func runReplayDiff(cfg Config) *Result {
	r := &Result{ID: "replaydiff", Title: "Trace replay across seeds and fault plans (record → save → replay → diff)"}

	const nodes = 3
	nFlows, rate := 4000, 8e5
	if cfg.Quick {
		nFlows, rate = 1200, 2e5
	}
	trafficLen := 40 * sim.Millisecond
	// Crash mid-traffic; BFD's detection window (≤ 4 × 50ms probes) ends
	// *after* the traffic does, so the entire crash loss is detection-window
	// blackhole — no remap, and survivors never see a single extra packet.
	crashAt := 15 * sim.Millisecond
	// Run every cluster to the same virtual instant, past BFD detection so
	// the withdrawal shows in the dead node's uplink line.
	totalLen := 300 * sim.Millisecond

	wf := workload.GenerateFlows(nFlows, 100, cfg.Seed)
	podCfg := core.PodConfig{
		Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: pod.ModePLB},
		Flows: workload.ServiceFlows(wf, 0),
		// Replay outcomes must be a function of the schedule alone:
		// disable the lognormal service jitter (the only per-packet RNG
		// draw), so replaying one trace under different node seeds cannot
		// diverge.
		JitterSigma:      -1,
		TraceSampleEvery: 64,
	}

	// Record: a live cluster run with the ingress sink wrapped.
	recCl, err := cluster.New(cluster.Config{Nodes: nodes, Seed: cfg.Seed})
	if err != nil {
		panic(err)
	}
	if err := recCl.AddPod(podCfg); err != nil {
		panic(err)
	}
	rec := trace.NewRecorder(recCl.Engine)
	rec.SetMeta(cfg.Seed, nodes, "replaydiff gameday drill")
	src := sourceFor(cfg, 1, wf, workload.ConstantRate(rate), recCl.RecordingSink(rec))
	if err := src.Start(recCl.Engine); err != nil {
		panic(err)
	}
	recCl.RunFor(trafficLen)
	src.Stop()
	recCl.RunFor(totalLen - trafficLen)
	recordedOutcome := recCl.Outcome()

	// Save → load: the replays below run from the deserialized artifact,
	// so the byte-identity checks cover the wire format too.
	var buf bytes.Buffer
	if err := rec.Trace().Write(&buf); err != nil {
		panic(err)
	}
	savedBytes := buf.Len()
	tr, err := trace.Read(&buf)
	if err != nil {
		panic(err)
	}

	replay := func(seed uint64, plan *faults.Plan) (*cluster.Cluster, string) {
		cl, err := cluster.New(cluster.Config{Nodes: nodes, Seed: seed, Faults: plan})
		if err != nil {
			panic(err)
		}
		if err := cl.AddPod(podCfg); err != nil {
			panic(err)
		}
		rp, err := cl.ReplayTrace(tr)
		if err != nil {
			panic(err)
		}
		cl.RunFor(totalLen)
		if !rp.Done() {
			panic("replaydiff: trace replay did not complete")
		}
		return cl, cl.Outcome()
	}

	healthyCl, healthy := replay(cfg.Seed, nil)
	_, seedB := replay(cfg.Seed+1000, nil)
	_, seedC := replay(cfg.Seed+2000, nil)

	plan := (&faults.Plan{}).NodeCrash(crashAt, 1, 2*sim.Second)
	crashCl, crashed := replay(cfg.Seed, plan)
	d := trace.Diff("healthy", healthy, "crash", crashed)

	// Classify the diff: the only lines allowed to move are the crashed
	// node's own, the cluster ECMP totals, and the metrics checksum.
	allowedKey := func(k string) bool {
		return k == "cluster/traffic" || k == "metrics/fnv64a" || strings.HasPrefix(k, "node1/")
	}
	disallowed := []string{}
	conserveMoved := false
	for _, k := range d.ChangedKeys() {
		if !allowedKey(k) {
			disallowed = append(disallowed, k)
		}
		if strings.Contains(k, "/conserve/") {
			conserveMoved = true
		}
	}

	// Quantify the crash delta for the loss-attribution check.
	var crashTx, crashDrops, crashFault uint64
	for _, m := range crashCl.Members() {
		for _, pr := range m.Node.Pods() {
			crashTx += pr.Tx
			crashDrops += pr.NICDrops + pr.QueueDrops + pr.PLBDrops + pr.ServiceDrop + pr.RxLost + pr.CrashDrops
			crashFault += pr.FaultLost
		}
	}

	table := stats.NewTable("Replay", "Sprayed", "Blackholed", "Switch drops", "Outcome bytes")
	table.AddRow("recorded run", recCl.Sprayed, recCl.Blackholed(), recCl.Drops, len(recordedOutcome))
	table.AddRow("healthy (seed)", healthyCl.Sprayed, healthyCl.Blackholed(), healthyCl.Drops, len(healthy))
	table.AddRow("healthy (seed+1000)", healthyCl.Sprayed, 0, healthyCl.Drops, len(seedB))
	table.AddRow("node-crash plan", crashCl.Sprayed, crashCl.Blackholed(), crashCl.Drops, len(crashed))
	r.Table = table
	r.Metrics = healthyCl.Metrics()
	r.notef("trace: %d events over %v, %d bytes on the wire (%d distinct flows)",
		len(tr.Events), tr.Span(), savedBytes, tr.Header.Flows)
	r.notef("crash diff: %d changed keys, %d one-sided; all confined to node1/cluster/metrics lines",
		len(d.Changed), len(d.OnlyA)+len(d.OnlyB))

	r.check("recorded schedule is non-trivial", len(tr.Events) > 1000,
		"recorded %d events", len(tr.Events))
	r.check("replay reproduces the recorded run byte-for-byte", healthy == recordedOutcome,
		"outcome reports differ between the live recorded run and its replay")
	r.check("outcomes byte-identical across 3 replay seeds",
		healthy == seedB && healthy == seedC,
		"outcome reports differ across seeds (len %d/%d/%d)", len(healthy), len(seedB), len(seedC))
	r.check("crash replay diverges from healthy", !d.Empty(),
		"node-crash replay produced an identical outcome report")
	r.check("crash diff confined to the detection-window lines", len(disallowed) == 0,
		"unexpected diff keys: %v", disallowed)
	r.check("no conservation residual moved under the crash", !conserveMoved,
		"a /conserve/ line changed between healthy and crash replays")
	r.check("crash loss is detection-window blackhole",
		crashCl.Blackholed() > 0 && healthyCl.Blackholed() == 0 && crashCl.Remapped == healthyCl.Remapped,
		"blackholed=%d healthy-blackholed=%d remapped %d vs %d",
		crashCl.Blackholed(), healthyCl.Blackholed(), crashCl.Remapped, healthyCl.Remapped)
	accounted := crashTx + crashDrops + crashFault + crashCl.Blackholed() + crashCl.Drops
	r.check("cluster-wide conservation holds under the crash replay", crashCl.Sprayed == accounted,
		"sprayed=%d accounted=%d", crashCl.Sprayed, accounted)
	return r
}
