package eval

import (
	"fmt"
	"hash/fnv"

	"albatross/internal/cachesim"
	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

func init() {
	register("regionscale", "Region-scale sharded cluster: 1000 nodes, Zipf flows, byte-identical at any shard count", runRegionScale)
}

// regionRun is one complete fixed-seed cluster run at a given shard count.
type regionRun struct {
	label      string
	outcome    string
	prom       string
	sprayed    uint64
	tx         uint64
	blackholed uint64
	remapped   int
	remapFrac  float64
	conserved  bool
	fromDead   int
	ontoDead   int
}

// runRegionScale scales the cluster model to region size — 1000 gateway
// nodes at full scale, a Zipf-popular flow population in the millions with
// only a subset installed in the service tables (the rest ride the
// miss-heavy slow path, exactly as a region's long tail does) — and proves
// the sharded-execution tentpole on it: a NodeCrash remaps at most 2/N of
// the flows, every sprayed packet is accounted for, and the outcome report
// and Prometheus export are byte-identical at shards=1, 4, and 8 and across
// a repeat run.
func runRegionScale(cfg Config) *Result {
	r := &Result{ID: "regionscale", Title: "Region-scale sharded cluster determinism and failover"}

	nodes, nFlows, installed, rate := 1000, 2_000_000, 50_000, 2e6
	if cfg.Quick {
		nodes, nFlows, installed, rate = 32, 20_000, 4_000, 5e5
	}
	// The owner snapshot at the end of the run must be past BFD detection
	// (DetectMult × TxInterval ≤ 200ms after the 30ms crash).
	duration := 300 * sim.Millisecond
	const crashed = 1
	crashAt := 30 * sim.Millisecond

	wf := workload.GenerateFlows(nFlows, 1000, cfg.Seed)

	run := func(shards int, label string) regionRun {
		plan := (&faults.Plan{}).NodeCrash(crashAt, crashed, sim.Second)
		cl, err := cluster.New(cluster.Config{
			Nodes: nodes,
			Seed:  cfg.Seed,
			// A region-scale fleet cannot carry the default 100MB L3 model
			// per NUMA domain; 1MB keeps construction linear in nodes while
			// the cache path still exercises hits, misses, and evictions.
			Node:   core.NodeConfig{Cache: cachesim.Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64}},
			Faults: plan,
			Shards: shards,
		})
		if err != nil {
			panic(err)
		}
		if err := cl.AddPod(core.PodConfig{
			Spec: pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: pod.ModePLB},
			// Only the hot head of the Zipf population is installed; the
			// tail takes the table-miss slow path and is still accounted.
			Flows: workload.ServiceFlows(wf[:installed], 0),
		}); err != nil {
			panic(err)
		}

		owners := func() []int {
			out := make([]int, len(wf))
			for i, f := range wf {
				_, out[i] = cl.Route(f)
			}
			return out
		}
		before := owners()

		src := sourceFor(cfg, 1, wf, workload.ConstantRate(rate), cl.Sink(), workload.WithZipf(1.1))
		if err := src.Start(cl.Engine); err != nil {
			panic(err)
		}
		// Crash at 30ms, BFD detection within its probe window; the node
		// stays down for the rest of the run, so the final owner map is the
		// steady failover assignment.
		cl.RunFor(duration)
		src.Stop()
		cl.RunFor(5 * sim.Millisecond)
		failover := owners()

		rr := regionRun{
			label:      label,
			outcome:    cl.Outcome(),
			prom:       cl.Metrics().Prometheus(),
			sprayed:    cl.Sprayed,
			blackholed: cl.Blackholed(),
		}
		var otherDrops, faultLost uint64
		for _, m := range cl.Members() {
			for _, pr := range m.Node.Pods() {
				rr.tx += pr.Tx
				otherDrops += pr.NICDrops + pr.QueueDrops + pr.PLBDrops + pr.ServiceDrop + pr.RxLost + pr.CrashDrops
				faultLost += pr.FaultLost
			}
		}
		rr.conserved = rr.sprayed == rr.tx+otherDrops+faultLost+rr.blackholed+cl.Drops
		for i := range wf {
			if failover[i] != before[i] {
				rr.remapped++
				if before[i] == crashed {
					rr.fromDead++
				}
				if failover[i] == crashed {
					rr.ontoDead++
				}
			}
		}
		rr.remapFrac = float64(rr.remapped) / float64(len(wf))
		return rr
	}

	runs := []regionRun{
		run(1, "shards=1"),
		run(4, "shards=4"),
		run(8, "shards=8"),
		run(8, "shards=8 (repeat)"),
	}
	base := runs[0]

	hash := func(s string) string {
		h := fnv.New64a()
		h.Write([]byte(s))
		return fmt.Sprintf("%016x", h.Sum64())
	}
	table := stats.NewTable("Run", "Sprayed", "Tx", "Blackholed", "Outcome FNV-64a", "Identical")
	identicalAll := true
	for _, rr := range runs {
		same := rr.outcome == base.outcome && rr.prom == base.prom
		identicalAll = identicalAll && same
		table.AddRow(rr.label, rr.sprayed, rr.tx, rr.blackholed, hash(rr.outcome), same)
	}
	r.Table = table
	r.notef("%d nodes, %d Zipf flows (%d installed, tail on the slow path), %.1f Mpps for %v; node %d crashed at %v",
		nodes, nFlows, installed, rate/1e6, duration, crashed, crashAt)
	r.notef("remap: %d/%d flows = %.4f (2/N bound %.4f), from-dead=%d onto-dead=%d",
		base.remapped, nFlows, base.remapFrac, 2.0/float64(nodes), base.fromDead, base.ontoDead)

	r.check("outcome and metrics byte-identical at shards=1/4/8 and across repeat runs",
		identicalAll, "a sharded run diverged from the shared-engine bytes")
	r.check("NodeCrash remaps only the dead node's flows, within the 2/N consistent-hash bound",
		base.remapped > 0 && base.remapFrac <= 2.0/float64(nodes) &&
			base.fromDead == base.remapped && base.ontoDead == 0,
		"remapped=%d frac=%.4f bound=%.4f fromDead=%d ontoDead=%d",
		base.remapped, base.remapFrac, 2.0/float64(nodes), base.fromDead, base.ontoDead)
	r.check("cluster-wide packet conservation is exact in every run",
		base.conserved && runs[1].conserved && runs[2].conserved && runs[3].conserved,
		"sprayed packets not fully accounted across tx/drops/fault-lost/blackholed")
	r.check("loss confined to the crashed node's BFD detection window",
		base.blackholed > 0 && float64(base.blackholed) <= 2*0.2*rate/float64(nodes)+1,
		"blackholed=%d bound=%.0f", base.blackholed, 2*0.2*rate/float64(nodes)+1)
	return r
}
