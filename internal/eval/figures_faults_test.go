package eval

import "testing"

// TestFaultExperimentsPassAndRepeat runs each fault-injection experiment
// twice at quick scale: every shape check must pass, and the rendered
// report must be byte-identical across repetitions — the determinism
// contract extended to fault runs.
func TestFaultExperimentsPassAndRepeat(t *testing.T) {
	for _, id := range []string{"faultcore", "faultpod", "faulthol", "faultbgp", "clusterfail"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		if e.Volatile {
			t.Fatalf("%s marked volatile; fault runs must be deterministic", id)
		}
		cfg := Config{Seed: 1, Quick: true}
		first := e.Run(cfg)
		if !first.Passed() {
			t.Fatalf("%s failed: %v\n%s", id, first.FailedChecks(), first.String())
		}
		second := e.Run(cfg)
		if first.String() != second.String() {
			t.Fatalf("%s not byte-identical across repeated runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
				id, first.String(), second.String())
		}
	}
}
