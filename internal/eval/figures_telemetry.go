package eval

import (
	"fmt"

	"albatross/internal/core"
	"albatross/internal/nicsim"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

func init() {
	register("stagelat", "Per-stage latency breakdown regenerated from pipeline residency histograms (Tab. 4 from the dataplane)", runStageLat)
}

// stageIndex resolves a stage label to its chain slot.
func stageIndex(name string) int {
	for i, s := range core.StageNames() {
		if s == name {
			return i
		}
	}
	panic("eval: unknown stage " + name)
}

// runStageLat regenerates the Tab. 4 per-module latency breakdown from the
// pipeline's own residency histograms rather than from injected probes: the
// same instrumentation that is always on in production serves the table.
// The run also proves the partition property — per-stage residencies sum
// EXACTLY to end-to-end latency — and the export determinism contract.
func runStageLat(cfg Config) *Result {
	r := &Result{ID: "stagelat", Title: "Per-stage latency from pipeline residency histograms"}

	runLen := 100 * sim.Millisecond
	if cfg.Quick {
		runLen = 20 * sim.Millisecond
	}

	run := func() (*core.Node, *core.PodRuntime) {
		n := faultNode(cfg, nil)
		wf := workload.GenerateFlows(2000, 100, cfg.Seed)
		pr := faultPod(n, "gw", 4, workload.ServiceFlows(wf, 0))
		src := sourceFor(cfg, 1, wf, workload.ConstantRate(1e6), pr.Sink())
		if err := src.Start(n.Engine); err != nil {
			panic(err)
		}
		n.RunFor(runLen)
		src.Stop()
		for i := 0; i < 100 && pr.Live() > 0; i++ {
			n.RunFor(sim.Millisecond)
		}
		return n, pr
	}
	n, pr := run()

	model := nicsim.DefaultLatencyModel()
	modelNS := map[string]int64{
		"nic-ingress": int64(model.IngressLatency(nicsim.ClassPLB)),
		"nic-egress":  int64(model.EgressLatency(nicsim.ClassPLB)),
	}

	resid := pr.StageResidency()
	table := stats.NewTable("Stage", "Count", "p50 (us)", "p99 (us)", "Mean (us)", "Model (us)")
	var sum int64
	for i, name := range core.StageNames() {
		h := resid[i]
		sum += h.Sum()
		modelCell := "-"
		if ns, ok := modelNS[name]; ok {
			modelCell = fmt.Sprintf("%.2f", float64(ns)/1000)
		}
		table.AddRow(name, h.Count(),
			float64(h.Quantile(0.5))/1000, float64(h.Quantile(0.99))/1000,
			h.Mean()/1000, modelCell)
	}
	r.Table = table
	r.Metrics = n.Metrics()
	r.notef("histogram relative error <= %.2f%%; end-to-end p50=%.2fus p99=%.2fus over %d packets",
		resid[0].RelativeError()*100,
		float64(pr.Latency.Quantile(0.5))/1000, float64(pr.Latency.Quantile(0.99))/1000, pr.Tx)

	// The NIC DMA stages are deterministic: the histograms must reproduce
	// Tab. 4's RX/TX pipeline sums exactly, not approximately.
	in := resid[stageIndex("nic-ingress")]
	r.check("nic-ingress residency == Tab. 4 RX pipeline sum (3.90us), exactly",
		in.Min() == in.Max() && in.Min() == modelNS["nic-ingress"],
		"[%d, %d]ns vs model %dns", in.Min(), in.Max(), modelNS["nic-ingress"])
	eg := resid[stageIndex("nic-egress")]
	r.check("nic-egress residency == Tab. 4 TX pipeline sum (4.17us), exactly",
		eg.Min() == eg.Max() && eg.Min() == modelNS["nic-egress"],
		"[%d, %d]ns vs model %dns", eg.Min(), eg.Max(), modelNS["nic-egress"])
	r.check("per-stage residencies partition end-to-end latency exactly",
		pr.Tx == pr.Rx && sum == pr.Latency.Sum(),
		"stage sum %dns vs latency sum %dns (tx=%d rx=%d)", sum, pr.Latency.Sum(), pr.Tx, pr.Rx)
	counts := true
	for i, c := range pr.Stages() {
		if resid[i].Count() != c.Out+c.Drops {
			counts = false
		}
	}
	r.check("every stage records one residency sample per packet", counts,
		"residency counts vs stage counters")

	// Determinism contract: an identical second run exports byte-identical
	// metrics (Prometheus and JSON).
	n2, _ := run()
	p1, p2 := r.Metrics.Prometheus(), n2.Metrics().Prometheus()
	j1, e1 := r.Metrics.JSON()
	j2, e2 := n2.Metrics().JSON()
	r.check("metrics export byte-identical across repeat runs",
		p1 == p2 && e1 == nil && e2 == nil && string(j1) == string(j2),
		"prom %dB vs %dB, json %dB vs %dB", len(p1), len(p2), len(j1), len(j2))
	return r
}
