package eval

import (
	"fmt"

	"albatross/internal/cachesim"
	"albatross/internal/core"
	"albatross/internal/lpm"
	"albatross/internal/nicsim"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

func init() {
	register("tab3", "Albatross throughput per gateway service", runTab3)
	register("tab4", "NIC pipeline per-module latency", runTab4)
	register("tab5", "NIC pipeline FPGA resource consumption", runTab5)
	register("tab6", "Albatross vs Sailfish comparison", runTab6)
}

// scale returns (flows, cacheBytes, dataCores) for the evaluation scale.
// The full configuration mirrors the paper (500K flows, ~100MB L3 per
// NUMA, 44 data cores per pod); quick mode shrinks everything
// proportionally so the cache-pressure regime is preserved.
func scale(cfg Config) (flows, cacheBytes, cores int) {
	if cfg.Quick {
		return 40000, 8 << 20, 4
	}
	return 500000, 100 << 20, 44
}

// paperTab3 is Tab. 3 of the paper (Mpps for 2x46-core pods).
var paperTab3 = map[service.Type]float64{
	service.VPCVPC:          128.8,
	service.VPCInternet:     81.6,
	service.VPCIDC:          119.4,
	service.VPCCloudService: 126.3,
}

func runTab3(cfg Config) *Result {
	r := &Result{ID: "tab3", Title: "Throughput per gateway service (2 pods, 88 data cores)"}
	nFlows, cacheB, cores := scale(cfg)

	wf := workload.GenerateFlows(nFlows, 100000, cfg.Seed)
	sf := workload.ServiceFlows(wf, 0)

	measured := map[service.Type]float64{}
	table := stats.NewTable("Service", "Paper Mpps", "Measured Mpps", "Paper/VPC-VPC", "Measured/VPC-VPC")

	for _, typ := range service.All {
		n, err := core.NewNode(core.NodeConfig{
			Seed:  cfg.Seed,
			Cache: cachesim.Config{SizeBytes: cacheB, Ways: 16, LineBytes: 64},
		})
		if err != nil {
			r.check("setup", false, "%v", err)
			return r
		}
		pr, err := n.AddPod(core.PodConfig{
			Spec:  pod.Spec{Name: "gw", Service: typ, DataCores: cores, CtrlCores: 2},
			Flows: sf,
		})
		if err != nil {
			r.check("setup", false, "%v", err)
			return r
		}
		// Warm the cache to steady state, then measure.
		pr.MeanServiceCost(sf, nFlows/2)
		perPod := pr.SaturationMpps(sf, nFlows)
		// Scale the measured per-core rate to the paper's 2x44 data cores.
		perCore := perPod / float64(cores)
		measured[typ] = perCore * 88
	}

	for _, typ := range service.All {
		table.AddRow(typ.String(), paperTab3[typ], measured[typ],
			paperTab3[typ]/paperTab3[service.VPCVPC],
			measured[typ]/measured[service.VPCVPC])
	}
	r.Table = table

	// Shape checks: VPC-Internet is the slowest by a clear margin; the
	// other three services sit within ~15% of each other, as in Tab. 3.
	slowest := service.VPCInternet
	for _, typ := range service.All {
		if measured[typ] < measured[slowest] {
			slowest = typ
		}
	}
	r.check("VPC-Internet slowest", slowest == service.VPCInternet,
		"slowest measured service = %v", slowest)

	ratio := measured[service.VPCInternet] / measured[service.VPCVPC]
	paperRatio := paperTab3[service.VPCInternet] / paperTab3[service.VPCVPC]
	r.check("Internet/VPC ratio", ratio > paperRatio-0.2 && ratio < paperRatio+0.2,
		"measured %.2f vs paper %.2f", ratio, paperRatio)

	for _, typ := range []service.Type{service.VPCIDC, service.VPCCloudService} {
		rel := measured[typ] / measured[service.VPCVPC]
		r.check(fmt.Sprintf("%v near VPC-VPC", typ), rel > 0.8 && rel <= 1.05,
			"ratio %.2f", rel)
	}
	r.notef("absolute Mpps depends on the calibrated memory model; the paper's testbed is a physical 2x48-core server")
	return r
}

func runTab4(cfg Config) *Result {
	r := &Result{ID: "tab4", Title: "NIC pipeline latency per module (µs)"}
	m := nicsim.DefaultLatencyModel()
	us := func(d sim.Duration) float64 { return d.Micros() }

	table := stats.NewTable("Module", "RX (µs)", "TX (µs)")
	table.AddRow("Basic Pipeline", us(m.Basic.RX), us(m.Basic.TX))
	table.AddRow("Overload Det.", us(m.OverloadDet.RX), us(m.OverloadDet.TX))
	table.AddRow("PLB", us(m.PLB.RX), us(m.PLB.TX))
	table.AddRow("DMA", us(m.DMA.RX), us(m.DMA.TX))
	table.AddRow("Sum", us(m.IngressLatency(nicsim.ClassPLB)), us(m.EgressLatency(nicsim.ClassPLB)))
	r.Table = table

	// Measured end-to-end check: one packet through an otherwise idle node
	// must see at least the NIC round trip.
	n, _ := core.NewNode(core.NodeConfig{Seed: cfg.Seed,
		Cache: cachesim.Config{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64}})
	wf := workload.GenerateFlows(16, 4, cfg.Seed)
	pr, _ := n.AddPod(core.PodConfig{
		Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 2, CtrlCores: 2},
		Flows: workload.ServiceFlows(wf, 0),
	})
	pr.Inject(wf[0], 256)
	n.RunFor(sim.Duration(sim.Millisecond))
	rt := m.RoundTrip(nicsim.ClassPLB)

	r.check("RX sum = 3.90µs", us(m.IngressLatency(nicsim.ClassPLB)) == 3.90,
		"%.2f", us(m.IngressLatency(nicsim.ClassPLB)))
	r.check("TX sum = 4.17µs", us(m.EgressLatency(nicsim.ClassPLB)) == 4.17,
		"%.2f", us(m.EgressLatency(nicsim.ClassPLB)))
	r.check("PLB+det overhead ≈ 0.5µs",
		us(m.OverloadDet.RX+m.PLB.RX+m.PLB.TX) == 0.50,
		"%.2f", us(m.OverloadDet.RX+m.PLB.RX+m.PLB.TX))
	r.check("packet latency >= NIC round trip", pr.Tx == 1 && pr.Latency.Min() >= int64(rt),
		"min latency %dns vs RT %dns", pr.Latency.Min(), int64(rt))
	r.check("DMA dominates", m.DMA.RX > m.Basic.RX+m.OverloadDet.RX+m.PLB.RX,
		"DMA RX %.2fµs", us(m.DMA.RX))
	return r
}

func runTab5(cfg Config) *Result {
	r := &Result{ID: "tab5", Title: "FPGA resource consumption per module (%)"}
	m := nicsim.DefaultResourceModel()
	table := stats.NewTable("Module", "LUT %", "BRAM %")
	for _, name := range []string{"basic", "overload", "plb", "dma"} {
		res := m.Modules[name]
		table.AddRow(name, res.LUTPct, res.BRAMPct)
	}
	s := m.Sum()
	table.AddRow("Sum", s.LUTPct, s.BRAMPct)
	r.Table = table

	r.check("LUT sum = 60.0%", s.LUTPct == 60.0, "%.1f", s.LUTPct)
	r.check("BRAM sum = 44.5%", s.BRAMPct == 44.5, "%.1f", s.BRAMPct)
	plbBytes := nicsim.PLBBRAMBytes(8, 4096)
	budget := int64(float64(m.TotalBRAMBits) * 0.05 / 8)
	r.check("PLB structures fit 5% BRAM", plbBytes <= budget,
		"%d B of %d B budget", plbBytes, budget)
	h := m.Headroom()
	r.check("headroom for future offloads", h.LUTPct >= 40 && h.BRAMPct >= 55,
		"LUT %.1f%%, BRAM %.1f%% free", h.LUTPct, h.BRAMPct)
	return r
}

func runTab6(cfg Config) *Result {
	r := &Result{ID: "tab6", Title: "Albatross vs Sailfish"}

	// LPM capacity: install clustered tenant routes the way production
	// VXLAN routing tables look, far beyond Sailfish's 0.2M.
	routes := 400000
	if cfg.Quick {
		routes = 150000
	}
	t := lpm.New()
	rng := sim.NewRand(cfg.Seed)
	inserted := 0
	for subnet := 0; inserted < routes; subnet++ {
		base := uint32(0x0a000000) + uint32(subnet)<<8
		if err := t.Insert(base, 24, uint32(subnet)); err == nil {
			inserted++
		}
		for h := 0; h < 200 && inserted < routes; h++ {
			host := base | uint32(1+rng.Intn(254))
			if err := t.Insert(host, 32, uint32(inserted)); err == nil {
				inserted++
			}
		}
	}
	bytesPerRoute := float64(t.MemoryBytes()) / float64(t.Len())
	// DRAM available to tables on an Albatross server (paper: 2x512GB,
	// several GB used per table); take a conservative 64GB budget.
	projectedCapacity := 64e9 / bytesPerRoute

	cost := pod.DefaultCostModel().Compare()
	table := stats.NewTable("Metric", "Sailfish", "Albatross", "Albatross* (roadmap)")
	table.AddRow("LPM rules", "0.2M", fmt.Sprintf(">%.0fM (projected)", projectedCapacity/1e6), ">10M")
	table.AddRow("Elasticity", "days", "10 seconds", "10 seconds")
	table.AddRow("Price/device", "1x", "2x", "2.4x")
	table.AddRow("Price/AZ", "32x", "16x", "9.6x")
	table.AddRow("Throughput", "3200 Gbps", "800 Gbps", "3200 Gbps")
	table.AddRow("Packet rate", "1800 Mpps", "~120 Mpps", "~480 Mpps")
	table.AddRow("Latency", "2 µs", "20 µs", "20 µs")
	r.Table = table

	r.notef("measured trie: %d routes, %.0f B/route, %d nodes",
		t.Len(), bytesPerRoute, t.NodeCount())
	r.check("installed routes exceed Sailfish capacity", t.Len() > 200000 || cfg.Quick,
		"%d routes installed in-memory", t.Len())
	r.check(">10M routes feasible in DRAM", projectedCapacity > 10e6,
		"projected %.0fM routes in 64GB", projectedCapacity/1e6)
	r.check("elasticity 10s vs days", pod.StartupTime == 10*sim.Second,
		"pod startup %v", pod.StartupTime)
	r.check("AZ cost halved", cost.CostReduction == 0.5, "%.0f%%", cost.CostReduction*100)

	// Functional spot-check on the big trie: an address inside the first
	// installed /24 must resolve.
	_, ok := t.Lookup(0x0a0000fe)
	r.check("big-trie lookup", ok, "lookup of 10.0.0.254 ok=%v", ok)
	return r
}
