package eval

import (
	"albatross/internal/core"
	"albatross/internal/nicsim"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

func init() {
	register("split", "Appendix A: header-payload split PCIe savings", runSplit)
	register("priority", "Protocol packet prioritization under saturation", runPriority)
	register("elasticity", "Container elasticity: scale-out under growing load", runElasticity)
	register("offload", "Future work: FPGA session offloading for stateful NFs", runOffload)
}

// runSplit quantifies the PCIe bandwidth saved by header-payload split
// across packet sizes, including the jumbo frames the appendix calls out.
func runSplit(cfg Config) *Result {
	r := &Result{ID: "split", Title: "Header-payload split: PCIe bytes per delivered packet"}

	run := func(split bool, pktBytes int) (pciePerPkt float64, delivered uint64, headerDrops uint64) {
		n := newTestNode(cfg)
		wf := workload.GenerateFlows(5000, 100, cfg.Seed)
		sf := workload.ServiceFlows(wf, 0)
		pr, err := n.AddPod(core.PodConfig{
			Spec:        pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1},
			Flows:       sf,
			HeaderSplit: split,
		})
		if err != nil {
			panic(err)
		}
		src := sourceFor(cfg, 9, wf, workload.ConstantRate(1e6), pr.Sink(),
			workload.WithPacketBytes(pktBytes))
		if err := src.Start(n.Engine); err != nil {
			panic(err)
		}
		n.RunFor(30 * sim.Millisecond)
		src.Stop()
		n.RunFor(sim.Duration(sim.Millisecond))
		if pr.Tx == 0 {
			return 0, 0, pr.HeaderDrops
		}
		return float64(pr.PCIeRxBytes+pr.PCIeTxBytes) / float64(pr.Tx), pr.Tx, pr.HeaderDrops
	}

	table := stats.NewTable("Packet size", "Full PCIe B/pkt", "Split PCIe B/pkt", "Savings %")
	sizes := []int{256, 1500, 8600} // 8600 ≈ jumbo frame (8500B payload)
	savings := map[int]float64{}
	for _, size := range sizes {
		fullB, fullTx, _ := run(false, size)
		splitB, splitTx, hd := run(true, size)
		if fullTx == 0 || splitTx == 0 {
			r.check("traffic delivered", false, "size %d: tx full=%d split=%d", size, fullTx, splitTx)
			return r
		}
		s := 1 - splitB/fullB
		savings[size] = s
		table.AddRow(size, fullB, splitB, s*100)
		if hd != 0 {
			r.notef("size %d: %d header drops", size, hd)
		}
	}
	r.Table = table

	r.check("jumbo frames save >90% PCIe bandwidth", savings[8600] > 0.90,
		"%.1f%%", savings[8600]*100)
	r.check("1500B packets save >80%", savings[1500] > 0.80,
		"%.1f%%", savings[1500]*100)
	r.check("small packets benefit less", savings[256] < savings[1500],
		"256B %.1f%% < 1500B %.1f%%", savings[256]*100, savings[1500]*100)
	// Sanity vs the analytic model.
	want := nicsim.PCIeSavings(8600, 126)
	r.check("measured jumbo savings match the model", savings[8600] > want-0.03 && savings[8600] < want+0.03,
		"measured %.3f vs model %.3f", savings[8600], want)
	return r
}

// runPriority shows the second GOP mechanism: BGP/BFD protocol packets ride
// dedicated priority queues, so saturating the dataplane cannot break
// control-plane peering (no BFD loss => no false link-down).
func runPriority(cfg Config) *Result {
	r := &Result{ID: "priority", Title: "Priority queues under dataplane saturation"}

	n := newTestNode(cfg)
	wf := workload.GenerateFlows(5000, 100, cfg.Seed)
	sf := workload.ServiceFlows(wf, 0)
	pr, err := n.AddPod(core.PodConfig{
		Spec:       pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 2, CtrlCores: 1},
		Flows:      sf,
		QueueDepth: 256,
	})
	if err != nil {
		panic(err)
	}
	capacity := pr.SaturationMpps(sf, 5000) * 1e6

	// Saturate the dataplane at 2x capacity.
	src := sourceFor(cfg, 10, wf, workload.ConstantRate(2*capacity), pr.Sink())
	src.Start(n.Engine)

	// BFD control packets every 10ms (paper: 3 lost probes = link down).
	bfdFlow := workload.Flow{Tuple: wf[0].Tuple}
	bfdFlow.Tuple.Proto = 17 // UDP
	bfdFlow.Tuple.DPort = 3784
	sent := 0
	var schedule func()
	schedule = func() {
		if sent >= 10 {
			return
		}
		sent++
		pr.Inject(bfdFlow, 66)
		n.Engine.After(10*sim.Millisecond, schedule)
	}
	schedule()
	n.RunFor(120 * sim.Millisecond)

	dataLossPct := float64(pr.QueueDrops+pr.PLBDrops) / float64(pr.Rx) * 100

	table := stats.NewTable("Class", "Sent", "Delivered", "Loss %")
	table.AddRow("BFD (priority)", sent, pr.PriorityTx, float64(sent-int(pr.PriorityTx))/float64(sent)*100)
	table.AddRow("Tenant data (PLB)", pr.Rx-pr.PriorityRx, pr.Tx, dataLossPct)
	r.Table = table

	r.check("dataplane saturated (data loss observed)", dataLossPct > 20,
		"%.1f%% data loss at 2x capacity", dataLossPct)
	r.check("zero BFD loss", pr.PriorityTx == uint64(sent),
		"%d/%d delivered", pr.PriorityTx, sent)
	r.check("fewer than 3 consecutive BFD losses", sent-int(pr.PriorityTx) < 3,
		"link stays up")
	return r
}

// runElasticity reproduces the §7 lesson: facing load growth approaching
// capacity, spin up a new GW pod in 10 seconds and shift traffic
// make-before-break. Delivery must keep up with the offered ramp.
func runElasticity(cfg Config) *Result {
	r := &Result{ID: "elasticity", Title: "10-second pod scale-out under growing load"}

	n := newTestNode(cfg)
	wf := workload.GenerateFlows(20000, 100, cfg.Seed)
	sf := workload.ServiceFlows(wf, 0)
	// The scale-out story spans tens of virtual seconds (the pod startup
	// time is a hard 10s), so throttle per-packet capacity with a heavy
	// memory multiplier to keep the event count tractable.
	memMult := 20.0
	if cfg.Quick {
		memMult = 60.0
	}
	mkPod := func(name string) *core.PodRuntime {
		p, err := n.AddPod(core.PodConfig{
			Spec:       pod.Spec{Name: name, Service: service.VPCVPC, DataCores: 2, CtrlCores: 1},
			Flows:      sf,
			MemoryMult: memMult,
		})
		if err != nil {
			panic(err)
		}
		return p
	}
	pr1 := mkPod("gw0")
	capacity := pr1.SaturationMpps(sf, 5000) * 1e6

	// Offered load ramps from 50% to 160% of one pod over 30 virtual
	// seconds (compressed from the production tens-of-minutes timescale).
	rampEnd := 30 * sim.Second
	rate := func(t sim.Time) float64 {
		f := 0.5 + 1.1*float64(t)/float64(rampEnd)
		if f > 1.6 {
			f = 1.6
		}
		return f * capacity
	}

	var pr2 *core.PodRuntime
	active := []*core.PodRuntime{pr1}
	rr := 0
	sink := func(f workload.Flow, bytes int) {
		// The uplink switch ECMPs across advertised pods.
		pr := active[rr%len(active)]
		rr++
		pr.Inject(f, bytes)
	}
	src := sourceFor(cfg, 11, wf, rate, sink)
	src.Start(n.Engine)

	// Watchdog: when offered load crosses 80% of capacity, request a new
	// pod; it becomes Ready after pod.StartupTime (10s) and only then
	// advertises its route (make-before-break, §7).
	var scaleOutAt, readyAt sim.Time
	var watch func()
	watch = func() {
		now := n.Engine.Now()
		if pr2 == nil && rate(now) > 0.8*capacity {
			scaleOutAt = now
			pr2 = mkPod("gw1")
			readyAt = pr2.Pod.ReadyAt
			n.Engine.At(readyAt, func() { active = append(active, pr2) })
			return
		}
		if pr2 == nil {
			n.Engine.After(100*sim.Millisecond, watch)
		}
	}
	watch()

	// Sample delivery in 2s windows.
	table := stats.NewTable("t (s)", "Offered (xC)", "Delivered (xC)", "Pods")
	var prevTx uint64
	worstPostReady := 1.0
	for now := sim.Duration(0); now < 40*sim.Second; now += 2 * sim.Second {
		n.RunFor(2 * sim.Second)
		tx := pr1.Tx
		if pr2 != nil {
			tx += pr2.Tx
		}
		delivered := float64(tx-prevTx) / 2 / capacity
		prevTx = tx
		offered := rate(n.Engine.Now()) / capacity
		table.AddRow(n.Engine.Now().Seconds(), offered, delivered, len(active))
		if readyAt > 0 && n.Engine.Now() > readyAt.Add(2*sim.Second) {
			if ratio := delivered / offered; ratio < worstPostReady {
				worstPostReady = ratio
			}
		}
	}
	r.Table = table

	r.check("scale-out triggered", pr2 != nil, "at t=%.1fs", scaleOutAt.Seconds())
	if pr2 != nil {
		r.check("pod ready in 10s", readyAt.Sub(scaleOutAt) == pod.StartupTime,
			"startup %v", readyAt.Sub(scaleOutAt))
		r.check("post-scale-out delivery keeps up", worstPostReady > 0.95,
			"worst delivered/offered = %.3f", worstPostReady)
		lost := pr1.QueueDrops + pr1.PLBDrops + pr2.QueueDrops + pr2.PLBDrops
		total := pr1.Rx + pr2.Rx
		r.check("overall loss small across the ramp", float64(lost)/float64(total) < 0.05,
			"%.2f%% lost", float64(lost)/float64(total)*100)
	}
	r.notef("physical gateway clusters need tens of days for the same capacity add (Tab. 6)")
	return r
}

// runOffload models the §7 future-work plan: offloading write-heavy
// session state to the FPGA removes the per-packet shared-state writes
// from the CPUs, restoring linear scaling for stateful NFs under PLB.
func runOffload(cfg Config) *Result {
	r := &Result{ID: "offload", Title: "FPGA session offloading for write-heavy stateful NFs"}

	// Per-packet cost model (ns): base service work + session update.
	// CPU-shared: the update bounces the session cache line across
	// writers (coherence penalty grows with core count).
	// FPGA-offloaded: the NIC owns the session; CPU cost drops the
	// update entirely (the FPGA handles it at line rate in the pipeline).
	const (
		baseNS      = 700.0
		updateNS    = 60.0
		coherenceNS = 45.0 // extra per additional writer sharing the line
	)
	table := stats.NewTable("Cores", "CPU shared (Mpps)", "FPGA offload (Mpps)", "Speedup")
	var speedup32 float64
	for _, cores := range []int{1, 2, 4, 8, 16, 32} {
		sharedCost := baseNS + updateNS + coherenceNS*float64(cores-1)
		offloadCost := baseNS
		shared := float64(cores) * 1e3 / sharedCost
		offload := float64(cores) * 1e3 / offloadCost
		table.AddRow(cores, shared, offload, offload/shared)
		if cores == 32 {
			speedup32 = offload / shared
		}
	}
	r.Table = table

	// FPGA budget: a session table for 1M concurrent sessions at 64B each
	// must fit the free BRAM+URAM headroom.
	res := nicsim.DefaultResourceModel()
	head := res.Headroom()
	sessionBits := int64(1_000_000) * 64 * 8
	fits := float64(sessionBits) < float64(res.TotalBRAMBits)*head.BRAMPct/100*40 // +URAM headroom factor
	r.check("offload restores >2x at 32 cores", speedup32 > 2, "%.1fx", speedup32)
	r.check("session table fits FPGA memory headroom", fits,
		"%d Mbit needed, %.0f%% BRAM free (plus URAM)", sessionBits>>20, head.BRAMPct)
	r.notef("cache-coherence collapse for write-heavy NFs is measured in the 'stateful' ablation")

	// Cross-check the cost model against the simulator: a VPC-Internet pod
	// (stateful) vs VPC-VPC (stateless) cost gap approximates updateNS.
	nQuick := newTestNode(cfg)
	wf := workload.GenerateFlows(10000, 100, cfg.Seed)
	sf := workload.ServiceFlows(wf, 0)
	inet, err := nQuick.AddPod(core.PodConfig{
		Spec:  pod.Spec{Name: "a", Service: service.VPCInternet, DataCores: 2, CtrlCores: 1},
		Flows: sf,
	})
	if err != nil {
		panic(err)
	}
	cost := inet.MeanServiceCost(sf, 5000)
	r.check("modelled base cost within 2x of simulated stateful service",
		float64(cost) > baseNS/2 && float64(cost) < baseNS*2,
		"simulated %.0fns vs modelled %.0fns", float64(cost), baseNS)
	return r
}
