package eval

import "testing"

// TestReplayDiffPassesAndRepeats runs the record→save→replay→diff
// experiment twice at quick scale: the shape checks (seed-invariant
// replay outcomes, crash diff confined to the detection window) must
// pass, and the rendered report must be byte-identical across runs.
func TestReplayDiffPassesAndRepeats(t *testing.T) {
	e, ok := Find("replaydiff")
	if !ok {
		t.Fatal("replaydiff not registered")
	}
	cfg := Config{Seed: 1, Quick: true}
	first := e.Run(cfg)
	if !first.Passed() {
		t.Fatalf("replaydiff failed: %v\n%s", first.FailedChecks(), first.String())
	}
	second := e.Run(cfg)
	if first.String() != second.String() {
		t.Fatalf("replaydiff not byte-identical across repeated runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			first.String(), second.String())
	}
}
