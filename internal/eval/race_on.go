//go:build race

package eval

// raceEnabled reports whether the race detector is instrumenting this
// build. Volatile wall-clock experiments assert on relative timings that
// the detector's per-access instrumentation distorts beyond their
// tolerances, so their tests skip under -race.
const raceEnabled = true
