package eval

import (
	"albatross/internal/cachesim"
	"albatross/internal/ring"
	"albatross/internal/sim"
	"albatross/internal/stats"
)

func init() {
	register("driver", "Ablation: PCIe descriptor count and mempool cache size", runDriver)
}

// runDriver reproduces the §4.1 item-4 production incidents: undersized
// PCIe descriptor rings drop bursts (feeding reorder-FIFO HOL), and a
// too-small DPDK_RTE_MEMPOOL_CACHE sends every allocation through the
// shared pool, adding per-packet latency.
func runDriver(cfg Config) *Result {
	r := &Result{ID: "driver", Title: "Driver tuning: descriptor rings and mempool caches"}

	// --- Descriptor ring depth vs burst loss -------------------------
	// A microburst delivers a 3000-packet line-rate burst while the core
	// drains at 1/3 line rate (the NIC-to-CPU speed mismatch during
	// bursts).
	burstLoss := func(depth int) float64 {
		rg, err := ring.New[int](depth)
		if err != nil {
			panic(err)
		}
		const burst = 3000
		dropped := 0
		for i := 0; i < burst; i++ {
			if !rg.Enqueue(i) {
				dropped++
			}
			if i%3 == 0 {
				rg.Dequeue() // consumer at 1/3 producer rate
			}
		}
		return float64(dropped) / burst * 100
	}

	ringTable := stats.NewTable("Ring depth", "Burst loss %")
	losses := map[int]float64{}
	for _, depth := range []int{256, 512, 1024, 2048, 4096} {
		losses[depth] = burstLoss(depth)
		ringTable.AddRow(depth, losses[depth])
	}
	r.Table = ringTable

	r.check("shallow rings drop bursts", losses[256] > 20,
		"%.1f%% loss at 256 descriptors", losses[256])
	r.check("deep rings absorb the burst", losses[4096] == 0,
		"%.1f%% loss at 4096 descriptors", losses[4096])
	mono := true
	prev := 1e9
	for _, d := range []int{256, 512, 1024, 2048, 4096} {
		if losses[d] > prev {
			mono = false
		}
		prev = losses[d]
	}
	r.check("loss monotone in ring depth", mono, "deeper is never worse")

	// --- Mempool cache size vs allocation overhead --------------------
	// Charge the measured shared-pool refill rate with a DRAM-class
	// round-trip cost (~200ns under contention) to get per-packet
	// allocation overhead.
	const refillNS = 200.0
	allocOverhead := func(cacheSize int) float64 {
		m, err := ring.NewMempool(8192, 4, cacheSize)
		if err != nil {
			panic(err)
		}
		var held [4][]uint32
		iters := 20000
		if cfg.Quick {
			iters = 5000
		}
		for i := 0; i < iters; i++ {
			core := i % 4
			for j := 0; j < 32; j++ {
				id, ok := m.Get(core)
				if !ok {
					panic("mempool exhausted")
				}
				held[core] = append(held[core], id)
			}
			for _, id := range held[core] {
				m.Put(core, id)
			}
			held[core] = held[core][:0]
		}
		return m.RefillRate() * refillNS
	}

	poolTable := stats.NewTable("Mempool cache", "Alloc overhead ns/pkt")
	overheads := map[int]float64{}
	for _, cs := range []int{0, 8, 64, 512} {
		overheads[cs] = allocOverhead(cs)
		poolTable.AddRow(cs, overheads[cs])
	}
	r.notef("mempool cache sweep:\n%s", poolTable.String())

	r.check("tiny cache adds tens of ns per packet", overheads[0] > 50,
		"%.0fns/pkt with no cache", overheads[0])
	r.check("well-sized cache near zero overhead", overheads[512] < 5,
		"%.1fns/pkt at 512 entries", overheads[512])

	// At 1Mpps/core, the no-cache overhead is a real fraction of the
	// per-packet budget — the paper saw it as "abnormal latency increase".
	frac := overheads[0] / 1000 * 100
	r.check("no-cache overhead material at 1Mpps", frac > 5,
		"%.1f%% of a 1µs packet budget", frac)
	return r
}

func init() {
	register("tuning", "Ablation: LLC prefetch on gateway access patterns", runTuning)
}

// runTuning examines one of the §4.2 platform knobs (CPU Turbo, DDIO, LLC
// Prefetch, Hyper-Threading): the LLC next-line prefetcher. Per-packet
// table lookups are random, so the prefetcher barely moves the needle —
// but control-plane sweeps (session aging, table reconciliation) are
// sequential and benefit enormously, which is why the knob stays on.
func runTuning(cfg Config) *Result {
	r := &Result{ID: "tuning", Title: "LLC next-line prefetch: random lookups vs sequential sweeps"}

	iters := 200000
	if cfg.Quick {
		iters = 60000
	}

	measure := func(prefetch bool, pattern string) float64 {
		c := cachesim.New(cachesim.Config{
			SizeBytes: 4 << 20, Ways: 16, LineBytes: 64, NextLinePrefetch: prefetch,
		})
		rng := sim.NewRand(cfg.Seed ^ 0x70)
		const region = 64 << 20 // 64MB of table memory vs 4MB cache
		for i := 0; i < iters; i++ {
			switch pattern {
			case "seq":
				// Control-plane sweep (session aging, reconciliation).
				c.Access(uint64(i)*64%region, 64)
			case "rand64":
				// Random single-line probes (hash-bucket headers).
				c.Access(uint64(rng.Intn(region/64))*64, 64)
			case "rand128":
				// Random lookups of 128B entries spanning two lines — the
				// gateway's long table entries.
				c.Access(uint64(rng.Intn(region/128))*128, 128)
			}
		}
		return c.HitRate()
	}

	table := stats.NewTable("Access pattern", "Prefetch off (hit %)", "Prefetch on (hit %)")
	results := map[string][2]float64{}
	for _, p := range []struct{ key, label string }{
		{"rand64", "Random single-line probes"},
		{"rand128", "Random 128B entry lookups"},
		{"seq", "Control-plane sweep (sequential)"},
	} {
		off := measure(false, p.key)
		on := measure(true, p.key)
		results[p.key] = [2]float64{off, on}
		table.AddRow(p.label, off*100, on*100)
	}
	r.Table = table

	r.check("prefetch transforms sequential sweeps",
		results["seq"][1] > results["seq"][0]+0.3,
		"%.1f%% -> %.1f%%", results["seq"][0]*100, results["seq"][1]*100)
	r.check("prefetch neutral for single-line random probes",
		results["rand64"][1] < results["rand64"][0]+0.05 &&
			results["rand64"][1] > results["rand64"][0]-0.05,
		"%.1f%% -> %.1f%%", results["rand64"][0]*100, results["rand64"][1]*100)
	r.check("prefetch covers intra-entry locality of long entries",
		results["rand128"][1] > results["rand128"][0]+0.2,
		"%.1f%% -> %.1f%% (second line of each entry prefetched)",
		results["rand128"][0]*100, results["rand128"][1]*100)
	r.notef("matches §4.2: worth tuning — the gateway's 'long table entries' make even the random per-packet path prefetch-sensitive")
	return r
}
