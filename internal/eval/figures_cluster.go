package eval

import (
	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

func init() {
	register("clusterfail", "Node crash in a 3-node ECMP cluster: bounded remap, detection-window loss, exact recovery", runClusterFail)
}

// runClusterFail crashes one node of a 3-node cluster mid-run and verifies
// the paper's cluster-failover contract: flows remap to survivors with the
// consistent-hash bound (≤ 2/N of all flows), loss is confined to the BFD
// detection window, surviving nodes keep per-flow order, and recovery
// restores the exact pre-crash ECMP assignment.
func runClusterFail(cfg Config) *Result {
	r := &Result{ID: "clusterfail", Title: "Node crash and failover in a 3-node ECMP cluster"}

	const nodes = 3
	nFlows, rate := 5000, 1e6
	if cfg.Quick {
		nFlows, rate = 1500, 2e5
	}
	crashAt := 30 * sim.Millisecond
	crashLen := 500 * sim.Millisecond

	plan := (&faults.Plan{}).NodeCrash(crashAt, 1, crashLen)
	cl, err := cluster.New(cluster.Config{Nodes: nodes, Seed: cfg.Seed, Faults: plan})
	if err != nil {
		panic(err)
	}
	wf := workload.GenerateFlows(nFlows, 100, cfg.Seed)
	if err := cl.AddPod(core.PodConfig{
		Spec:             pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: pod.ModePLB},
		Flows:            workload.ServiceFlows(wf, 0),
		TraceSampleEvery: 128, // flight-record the crash window's casualties
	}); err != nil {
		panic(err)
	}

	owners := func() []int {
		out := make([]int, len(wf))
		for i, f := range wf {
			_, out[i] = cl.Route(f)
		}
		return out
	}
	before := owners()

	src := sourceFor(cfg, 1, wf, workload.ConstantRate(rate), cl.Sink())
	if err := src.Start(cl.Engine); err != nil {
		panic(err)
	}

	// Crash at 30ms; BFD withdraws the route within its detection window
	// (≤ 4 probe intervals = 200ms). By 400ms the failover is steady.
	cl.RunFor(400 * sim.Millisecond)
	failover := owners()
	src.Stop()
	// Link back at 530ms; BFD recovers on the probe grid and the route
	// re-advertises 1s later (~1.63s absolute). Run past it and drain.
	cl.RunFor(1400 * sim.Millisecond)
	restored := owners()

	remapped, fromDead, ontoDead, restoredOK := 0, 0, 0, 0
	for i := range wf {
		if failover[i] != before[i] {
			remapped++
			if before[i] == 1 {
				fromDead++
			}
			if failover[i] == 1 {
				ontoDead++
			}
		}
		if restored[i] == before[i] {
			restoredOK++
		}
	}
	remapFrac := float64(remapped) / float64(len(wf))

	var tx, otherDrops, faultLost, disorderSum, deadJourneys, survivorJourneys uint64
	stagesBalanced := true
	// Survivor latency breakdown: merge per-stage residency across the
	// surviving nodes' pods (same precision, so Merge is exact).
	nStages := len(core.StageNames())
	survivorResid := make([]*stats.Histogram, nStages)
	for i := range survivorResid {
		survivorResid[i] = stats.NewHistogram(6)
	}
	for _, m := range cl.Members() {
		for _, pr := range m.Node.Pods() {
			tx += pr.Tx
			otherDrops += pr.NICDrops + pr.QueueDrops + pr.PLBDrops + pr.ServiceDrop + pr.RxLost + pr.CrashDrops
			faultLost += pr.FaultLost
			if m.Index != 1 {
				s := pr.PLB.Stats()
				disorderSum += s.EmittedBestEffort
				for i, h := range pr.StageResidency() {
					survivorResid[i].Merge(h)
				}
				survivorJourneys += pr.Flight().Committed()
			} else {
				deadJourneys = pr.Flight().Drops
			}
			if _, ok := stats.StageBalance(pr.Stages()); !ok {
				stagesBalanced = false
			}
		}
	}

	table := stats.NewTable("Node", "State", "ECMP Rx", "Pod Tx", "Blackholed", "FaultLost")
	for _, m := range cl.Members() {
		pr := m.Node.Pods()[0]
		table.AddRow(m.Index, m.State(), m.Rx, pr.Tx, m.Node.Blackholed, pr.FaultLost)
	}
	r.Table = table
	breakdown := stats.NewTable("Stage (survivors)", "Count", "p50 (us)", "p99 (us)")
	for i, name := range core.StageNames() {
		h := survivorResid[i]
		breakdown.AddRow(name, h.Count(),
			float64(h.Quantile(0.5))/1000, float64(h.Quantile(0.99))/1000)
	}
	r.Extras = append(r.Extras, breakdown)
	r.Metrics = cl.Metrics()
	r.notef("sprayed=%d remapped-pkts=%d switch-drops=%d blackholed=%d remap-frac=%.3f (flows)",
		cl.Sprayed, cl.Remapped, cl.Drops, cl.Blackholed(), remapFrac)
	r.notef("flight recorder: crashed node committed %d dropped journeys, survivors %d (loss lives at the switch, not inside surviving pipelines)",
		deadJourneys, survivorJourneys)

	r.check("remapped-flow fraction within consistent-hash bound (≤ 2/N)",
		remapped > 0 && remapFrac <= 2.0/nodes,
		"remapped %d/%d = %.3f, bound %.3f", remapped, len(wf), remapFrac, 2.0/nodes)
	r.check("only the dead node's flows remapped", fromDead == remapped && ontoDead == 0,
		"remapped=%d fromDead=%d ontoDead=%d", remapped, fromDead, ontoDead)
	r.check("loss confined to the BFD detection window",
		cl.Blackholed() > 0 && cl.Blackholed() <= uint64(2*0.2*rate/nodes),
		"blackholed=%d bound=%d", cl.Blackholed(), uint64(2*0.2*rate/nodes))
	r.check("per-flow order preserved on surviving nodes", disorderSum == 0,
		"best-effort emissions on survivors = %d", disorderSum)
	r.check("recovery restores the exact pre-crash assignment", restoredOK == len(wf),
		"restored %d/%d flows", restoredOK, len(wf))
	accounted := tx + otherDrops + faultLost + cl.Blackholed() + cl.Drops
	r.check("cluster-wide packet conservation", cl.Sprayed == accounted,
		"sprayed=%d accounted=%d", cl.Sprayed, accounted)
	r.check("per-stage counters balanced after drain", stagesBalanced,
		"a drained pipeline stage has In != Out+Drops")
	r.check("survivor NIC-stage residency stays at the healthy Tab. 4 values",
		survivorResid[stageIndex("nic-ingress")].Max() == int64(3900) &&
			survivorResid[stageIndex("nic-egress")].Max() == int64(4170),
		"nic-ingress max %dns, nic-egress max %dns",
		survivorResid[stageIndex("nic-ingress")].Max(), survivorResid[stageIndex("nic-egress")].Max())
	// The crash's loss is at the ToR (blackholed) and in the dead node's
	// in-flight contexts — never inside surviving pipelines. The survivors'
	// flight recorders sample continuously and must stay empty.
	r.check("survivors' flight recorders saw no drops or timeout releases",
		survivorJourneys == 0, "survivor journeys = %d", survivorJourneys)
	return r
}
