package eval

import (
	"strings"
	"testing"
)

// deterministicExperiments returns every registered experiment except the
// volatile ones (host wall-clock microbenchmarks), whose printed tables
// legitimately vary run to run.
func deterministicExperiments() []Experiment {
	var out []Experiment
	for _, e := range Experiments() {
		if !e.Volatile {
			out = append(out, e)
		}
	}
	return out
}

func renderAll(recs []RunRecord) string {
	var b strings.Builder
	for _, r := range recs {
		b.WriteString(r.Result.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestRunAllParallelMatchesSerial is the determinism contract: running the
// full quick-scale experiment suite across a worker pool must produce
// byte-identical reports to the serial run, because every experiment owns
// its engine and seeded generators and shares nothing mutable.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	exps := deterministicExperiments()
	cfg := Config{Seed: 1, Quick: true}

	serial := RunAll(exps, cfg, 1)
	parallel := RunAll(exps, cfg, 8)

	if len(serial) != len(exps) || len(parallel) != len(exps) {
		t.Fatalf("record counts: serial %d, parallel %d, want %d", len(serial), len(parallel), len(exps))
	}
	s, p := renderAll(serial), renderAll(parallel)
	if s == p {
		return
	}
	sl, pl := strings.Split(s, "\n"), strings.Split(p, "\n")
	for i := 0; i < len(sl) && i < len(pl); i++ {
		if sl[i] != pl[i] {
			t.Fatalf("parallel output diverges from serial at line %d:\nserial:   %q\nparallel: %q", i+1, sl[i], pl[i])
		}
	}
	t.Fatalf("parallel output length differs: serial %d lines, parallel %d lines", len(sl), len(pl))
}

// TestRunAllOrderAndParallelismClamp covers the harness plumbing on a tiny
// subset: results come back in input order and degenerate parallelism
// values are clamped rather than rejected.
func TestRunAllOrderAndParallelismClamp(t *testing.T) {
	var subset []Experiment
	for _, id := range []string{"tab5", "tab4", "fig15"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		subset = append(subset, e)
	}
	cfg := Config{Seed: 1, Quick: true}
	for _, par := range []int{0, 1, 16} {
		recs := RunAll(subset, cfg, par)
		if len(recs) != len(subset) {
			t.Fatalf("parallelism %d: got %d records, want %d", par, len(recs), len(subset))
		}
		for i, rec := range recs {
			if rec.Exp.ID != subset[i].ID {
				t.Fatalf("parallelism %d: record %d is %s, want %s", par, i, rec.Exp.ID, subset[i].ID)
			}
			if rec.Result == nil || rec.Result.ID != subset[i].ID {
				t.Fatalf("parallelism %d: record %d result mismatch", par, i)
			}
			if rec.Wall <= 0 {
				t.Fatalf("parallelism %d: record %d has non-positive wall time", par, i)
			}
		}
	}
}

// TestVolatileMarking pins which experiments opt out of the determinism
// contract; adding a wall-clock-measuring driver without marking it breaks
// TestRunAllParallelMatchesSerial flakily, so keep this list honest.
func TestVolatileMarking(t *testing.T) {
	want := map[string]bool{"meta": true, "stateful": true}
	for _, e := range Experiments() {
		if want[e.ID] != e.Volatile {
			t.Errorf("experiment %s: Volatile = %v, want %v", e.ID, e.Volatile, want[e.ID])
		}
	}
}
