package eval

import (
	"albatross/internal/core"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

func init() {
	register("isolation", "Pod isolation: overloading one pod must not break its neighbour", runIsolation)
}

// runIsolation checks the containerization promise of §5: GW pods share a
// server but own disjoint cores, NIC queues and reorder resources, so
// saturating pod A leaves pod B's loss at zero and its latency nearly
// untouched. The one *shared* resource in the model — the NUMA node's L3 —
// is also quantified (the paper's "multi-tenant service interference"
// concern from consolidations, §2.1).
func runIsolation(cfg Config) *Result {
	r := &Result{ID: "isolation", Title: "Neighbour overload: pod B under pod A's saturation"}

	run := func(overloadA bool) (bP99 float64, bLoss float64, aLoss float64) {
		n := newTestNode(cfg)
		wfA := workload.GenerateFlows(20000, 100, cfg.Seed)
		wfB := workload.GenerateFlows(20000, 100, cfg.Seed+1)
		// Both pods land on NUMA node 0 (first-fit) and share its L3.
		podA, err := n.AddPod(core.PodConfig{
			Spec:  pod.Spec{Name: "a", Service: service.VPCVPC, DataCores: 2, CtrlCores: 1},
			Flows: workload.ServiceFlows(wfA, 0), QueueDepth: 256,
		})
		if err != nil {
			panic(err)
		}
		podB, err := n.AddPod(core.PodConfig{
			Spec:  pod.Spec{Name: "b", Service: service.VPCVPC, DataCores: 2, CtrlCores: 1},
			Flows: workload.ServiceFlows(wfB, 0), QueueDepth: 256,
		})
		if err != nil {
			panic(err)
		}
		if podA.Pod.NUMANode != podB.Pod.NUMANode {
			panic("pods should share a NUMA node for this experiment")
		}
		capA := podA.SaturationMpps(workload.ServiceFlows(wfA, 0), 5000) * 1e6

		rateA := 0.2 * capA
		if overloadA {
			rateA = 2.5 * capA
		}
		srcA := sourceFor(cfg, 10, wfA, workload.ConstantRate(rateA), podA.Sink())
		srcA.Start(n.Engine)
		srcB := sourceFor(cfg, 11, wfB, workload.ConstantRate(0.2*capA), podB.Sink())
		srcB.Start(n.Engine)

		n.RunFor(60 * sim.Millisecond)

		bP99 = float64(podB.Latency.Quantile(0.99)) / 1000
		bLoss = float64(podB.QueueDrops+podB.PLBDrops) / float64(podB.Rx) * 100
		aLoss = float64(podA.QueueDrops+podA.PLBDrops) / float64(podA.Rx) * 100
		return
	}

	quietP99, quietLoss, _ := run(false)
	loudP99, loudLoss, aLoss := run(true)

	table := stats.NewTable("Scenario", "Pod B p99 (µs)", "Pod B loss %", "Pod A loss %")
	table.AddRow("A at 20% load", quietP99, quietLoss, 0.0)
	table.AddRow("A at 250% load (saturated)", loudP99, loudLoss, aLoss)
	r.Table = table

	r.check("pod A actually saturated", aLoss > 20, "A loses %.1f%%", aLoss)
	r.check("pod B loses nothing", loudLoss == 0 && quietLoss == 0,
		"B loss %.2f%% -> %.2f%%", quietLoss, loudLoss)
	// The shared L3 leaks a bounded amount of latency.
	r.check("pod B p99 within 50% of its quiet baseline", loudP99 < quietP99*1.5,
		"%.1fµs -> %.1fµs (shared-L3 interference only)", quietP99, loudP99)
	r.notef("pods own disjoint cores, RX queues and reorder FIFOs; the L3 is the only shared resource in the model")
	return r
}
