package eval

import (
	"strings"

	"albatross/internal/scenario"
	"albatross/internal/sim"
)

func init() {
	register("gameday", "Gameday drill expressed as a declarative scenario (DSL round trip)", runGameday)
}

// gamedayDoc is the clusterfail failover drill rewritten in the scenario
// DSL: the same fleet, fault, and paper claims, but as a committed
// document instead of harness code. The eval driver proves the two entry
// points agree — what internal/eval asserts in Go, a scenario file can
// assert declaratively.
const gamedayDoc = `
name: gameday-failover
description: "node crash on a 3-node fleet, claims held declaratively"
seed: 1
duration: 300ms

fleet:
  nodes: 3

workload:
  flows: 3000
  tenants: 100
  rate: 5e5

events:
  - at: 20ms
    action: inject_failure
    fault: node-crash
    node: 1
    duration: 250ms

assertions:
  - type: conservation
  - type: detection_window
    margin: 1.5
  - type: remap_bound
    factor: 2
  - type: max_loss
    fraction: 0.3
  - type: byte_identity
    runs: 2
    shards: [1, 3]
`

func runGameday(cfg Config) *Result {
	r := &Result{ID: "gameday", Title: "Declarative gameday drill: scenario DSL vs hand-written harness"}

	s, err := scenario.Load([]byte(gamedayDoc))
	if err != nil {
		panic(err)
	}
	ov := scenario.Overrides{Seed: &cfg.Seed}
	if cfg.Quick {
		flows, rate := 1000, 2e5
		dur := 250 * sim.Millisecond
		ov.Flows, ov.Rate, ov.Duration = &flows, &rate, &dur
	}
	res, err := s.Apply(ov).Run()
	if err != nil {
		panic(err)
	}

	// Surface the scenario's own assertion verdicts as eval checks: the
	// declarative layer carries the same claims clusterfail hand-codes.
	for _, c := range res.Checks {
		r.check("scenario/"+c.Assertion.Type, c.OK, "%s", c.Detail)
	}
	r.check("scenario/overall", res.OK(), "%d/%d declarative assertions held",
		res.Passed, res.Passed+res.Failed)
	for _, line := range strings.Split(strings.TrimRight(res.Report, "\n"), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "traffic") ||
			strings.HasPrefix(strings.TrimSpace(line), "latency") {
			r.notef("%s", strings.TrimSpace(line))
		}
	}
	return r
}
