package eval

import (
	"albatross/internal/cachesim"
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

func init() {
	register("faultcore", "Core failure: spray-mask eviction vs in-flight loss and recovery", runFaultCore)
	register("faultpod", "Pod crash vs gray upgrade: redirection, loss, restart", runFaultPod)
	register("faulthol", "Reorder stress: HOL under fault and the automatic RSS fallback", runFaultHOL)
	register("faultbgp", "BGP uplink flap: BFD detection, blackhole window, proxy recovery", runFaultBGP)
}

// faultNode builds a node with an optional armed fault plan.
func faultNode(cfg Config, plan *faults.Plan) *core.Node {
	n, err := core.NewNode(core.NodeConfig{
		Seed:   cfg.Seed,
		Cache:  cachesim.Config{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64},
		Faults: plan,
	})
	if err != nil {
		panic(err)
	}
	return n
}

func faultPod(n *core.Node, name string, cores int, sf []service.Flow) *core.PodRuntime {
	return faultPodCfg(n, name, cores, sf, nil)
}

// faultPodCfg is faultPod with a config hook (flight-recorder sampling etc).
func faultPodCfg(n *core.Node, name string, cores int, sf []service.Flow, mutate func(*core.PodConfig)) *core.PodRuntime {
	cfg := core.PodConfig{
		Spec:  pod.Spec{Name: name, Service: service.VPCVPC, DataCores: cores, CtrlCores: 1, Mode: pod.ModePLB},
		Flows: sf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	pr, err := n.AddPod(cfg)
	if err != nil {
		panic(err)
	}
	return pr
}

// runFaultCore fails one of four cores mid-run and reports the loss bound,
// the absence of a timeout storm (eviction releases in-flight reorder
// state immediately), and the disorder rate before/during/after.
func runFaultCore(cfg Config) *Result {
	r := &Result{ID: "faultcore", Title: "Core failure with spray-mask eviction"}

	plan := (&faults.Plan{}).
		CoreStall(20*sim.Millisecond, 0, 2, 100, 5*sim.Millisecond).
		CoreFail(21*sim.Millisecond, 0, 2, 10*sim.Millisecond)
	n := faultNode(cfg, plan)
	wf := workload.GenerateFlows(2000, 100, cfg.Seed)
	sf := workload.ServiceFlows(wf, 0)
	pr := faultPod(n, "gw", 4, sf)
	src := sourceFor(cfg, 1, wf, workload.ConstantRate(1e6), pr.Sink())
	if err := src.Start(n.Engine); err != nil {
		panic(err)
	}

	window := func(d sim.Duration) (dTO uint64, disorder float64) {
		s0 := pr.PLB.Stats()
		n.RunFor(d)
		s1 := pr.PLB.Stats()
		in := s1.EmittedInOrder - s0.EmittedInOrder
		be := s1.EmittedBestEffort - s0.EmittedBestEffort
		if in+be > 0 {
			disorder = float64(be) / float64(in+be)
		}
		return s1.TimeoutReleases - s0.TimeoutReleases, disorder
	}

	healthyTO, healthyDis := window(20 * sim.Millisecond) // plan fires at 20/21ms
	failTO, failDis := window(11 * sim.Millisecond)       // stall + dead window
	recTO, recDis := window(20 * sim.Millisecond)         // after recovery
	src.Stop()
	n.RunFor(5 * sim.Millisecond)
	s := pr.PLB.Stats()

	table := stats.NewTable("Window", "Timeout releases", "Disorder rate")
	table.AddRow("healthy (0-20ms)", healthyTO, healthyDis)
	table.AddRow("stall+fail (20-31ms)", failTO, failDis)
	table.AddRow("recovered (31-51ms)", recTO, recDis)
	r.Table = table
	r.notef("FaultLost=%d (bound %d), EvictedReleases=%d, up-cores=%d",
		pr.FaultLost, 1024+1, s.EvictedReleases, pr.PLB.UpCores())

	r.check("loss bounded by core queue depth+1", pr.FaultLost >= 1 && pr.FaultLost <= 1024+1,
		"FaultLost = %d", pr.FaultLost)
	r.check("eviction released in-flight reorder state", s.EvictedReleases >= 1,
		"EvictedReleases = %d", s.EvictedReleases)
	r.check("core restored to spray mask", pr.PLB.UpCores() == 4,
		"up cores = %d", pr.PLB.UpCores())
	r.check("disorder returns to baseline after recovery", recDis <= healthyDis+1e-3,
		"healthy %.4f vs recovered %.4f", healthyDis, recDis)
	accounted := pr.Tx + pr.NICDrops + pr.QueueDrops + pr.PLBDrops + pr.ServiceDrop + pr.FaultLost
	r.check("packet conservation holds across the fault", pr.Rx == accounted,
		"rx=%d accounted=%d", pr.Rx, accounted)
	return r
}

// runFaultPod compares an abrupt pod crash against the graceful gray
// upgrade, both with a sibling pod absorbing redirected tenants.
func runFaultPod(cfg Config) *Result {
	r := &Result{ID: "faultpod", Title: "Pod crash vs gray upgrade with sibling redirection"}

	type outcome struct {
		lost       uint64
		redirected uint64
		restarts   uint64
		sibTx      uint64
	}
	run := func(graceful bool) outcome {
		n := faultNode(cfg, nil)
		wf := workload.GenerateFlows(1000, 100, cfg.Seed)
		sf := workload.ServiceFlows(wf, 0)
		p0 := faultPod(n, "gw0", 4, sf)
		p1 := faultPod(n, "gw1", 4, sf)
		src := sourceFor(cfg, 1, wf, workload.ConstantRate(1e6), p0.Sink())
		if err := src.Start(n.Engine); err != nil {
			panic(err)
		}
		n.RunFor(10 * sim.Millisecond)
		if err := n.InjectPodCrash(0, graceful, 20*sim.Millisecond); err != nil {
			panic(err)
		}
		n.RunFor(40 * sim.Millisecond)
		src.Stop()
		n.RunFor(5 * sim.Millisecond)
		return outcome{lost: p0.FaultLost, redirected: p0.Redirected, restarts: p0.Restarts, sibTx: p1.Tx}
	}

	crash := run(false)
	drain := run(true)

	table := stats.NewTable("Scenario", "Packets lost", "Redirected", "Sibling Tx", "Restarts")
	table.AddRow("abrupt crash", crash.lost, crash.redirected, crash.sibTx, crash.restarts)
	table.AddRow("gray upgrade", drain.lost, drain.redirected, drain.sibTx, drain.restarts)
	r.Table = table

	r.check("crash loses only in-flight packets", crash.lost >= 1 && crash.lost <= 4*(1024+1),
		"lost = %d", crash.lost)
	r.check("gray upgrade loses nothing", drain.lost == 0, "lost = %d", drain.lost)
	r.check("tenants redirect to the sibling in both", crash.redirected > 0 && drain.redirected > 0 &&
		crash.sibTx > 0 && drain.sibTx > 0,
		"redirected %d/%d, sibling tx %d/%d", crash.redirected, drain.redirected, crash.sibTx, drain.sibTx)
	r.check("both pods restart", crash.restarts == 1 && drain.restarts == 1,
		"restarts = %d/%d", crash.restarts, drain.restarts)
	return r
}

// runFaultHOL stresses the reorder queues (every head waits out the full
// 100µs timeout) and shows the watchdog switching the pod to RSS.
func runFaultHOL(cfg Config) *Result {
	r := &Result{ID: "faulthol", Title: "Forced HOL blocking and automatic RSS fallback"}

	type outcome struct {
		dTO       uint64
		mode      pod.Mode
		fallbacks uint64
		tx        uint64
		reorderHi *stats.Histogram // reorder-stage residency
		journeys  []core.Journey   // committed flight-recorder journeys
		timeouts  uint64
		node      *core.Node
	}
	run := func(stress bool) outcome {
		n := faultNode(cfg, nil)
		wf := workload.GenerateFlows(1000, 100, cfg.Seed)
		sf := workload.ServiceFlows(wf, 0)
		pr := faultPodCfg(n, "gw", 4, sf, func(c *core.PodConfig) {
			c.TraceSampleEvery = 64 // dense sampling: this run studies tail journeys
		})
		pr.EnableAutoFallback(0, 0) // defaults: 1ms window, 5% timeout fraction
		src := sourceFor(cfg, 1, wf, workload.ConstantRate(1e6), pr.Sink())
		if err := src.Start(n.Engine); err != nil {
			panic(err)
		}
		n.RunFor(5 * sim.Millisecond)
		s0 := pr.PLB.Stats()
		if stress {
			nq := pr.PLB.Config().NumOrderQueues
			for q := 0; q < nq; q++ {
				if err := n.InjectReorderStress(0, q, 20*sim.Millisecond, true, 0); err != nil {
					panic(err)
				}
			}
		}
		n.RunFor(20 * sim.Millisecond)
		s1 := pr.PLB.Stats()
		src.Stop()
		n.RunFor(5 * sim.Millisecond)
		fr := pr.Flight()
		return outcome{
			dTO: s1.TimeoutReleases - s0.TimeoutReleases, mode: pr.Mode(),
			fallbacks: pr.Fallbacks, tx: pr.Tx,
			reorderHi: pr.StageResidency()[stageIndex("reorder")],
			journeys:  fr.Journeys(), timeouts: fr.Timeouts, node: n,
		}
	}

	h := run(false)
	s := run(true)

	table := stats.NewTable("Scenario", "Timeout releases (20ms)", "End mode", "Fallbacks", "Tx")
	table.AddRow("healthy", h.dTO, h.mode.String(), h.fallbacks, h.tx)
	table.AddRow("reorder stress", s.dTO, s.mode.String(), s.fallbacks, s.tx)
	r.Table = table

	// Latency breakdown from the pipeline's own residency histograms: the
	// stress shows up as reorder-stage parking time approaching the 100µs
	// bound, not as a diffuse end-to-end slowdown.
	breakdown := stats.NewTable("Scenario", "Reorder p50 (us)", "Reorder p99 (us)", "Timeout journeys")
	breakdown.AddRow("healthy",
		float64(h.reorderHi.Quantile(0.5))/1000, float64(h.reorderHi.Quantile(0.99))/1000, h.timeouts)
	breakdown.AddRow("reorder stress",
		float64(s.reorderHi.Quantile(0.5))/1000, float64(s.reorderHi.Quantile(0.99))/1000, s.timeouts)
	r.Extras = append(r.Extras, breakdown)
	r.Metrics = s.node.Metrics()
	if len(s.journeys) > 0 {
		r.notef("sample stressed journey:\n%s", s.journeys[len(s.journeys)-1].String())
	}

	r.check("healthy pod stays in PLB mode", h.mode == pod.ModePLB && h.fallbacks == 0,
		"mode %v, fallbacks %d", h.mode, h.fallbacks)
	r.check("stress forces a timeout storm", s.dTO > h.dTO*10+100,
		"healthy %d vs stressed %d", h.dTO, s.dTO)
	r.check("watchdog falls back to RSS", s.mode == pod.ModeRSS && s.fallbacks == 1,
		"mode %v, fallbacks %d", s.mode, s.fallbacks)
	r.check("traffic continues after fallback", s.tx > 0, "tx = %d", s.tx)
	r.check("stressed reorder residency p99 reaches the 100us timeout bound",
		s.reorderHi.Quantile(0.99) >= int64(90*sim.Microsecond),
		"stressed reorder p99 = %dns", s.reorderHi.Quantile(0.99))
	r.check("healthy reorder residency stays well below the bound",
		h.reorderHi.Quantile(0.99) < int64(50*sim.Microsecond),
		"healthy reorder p99 = %dns", h.reorderHi.Quantile(0.99))
	r.check("flight recorder captured timeout-release journeys under stress",
		s.timeouts > 0 && h.timeouts == 0 && len(s.journeys) > 0,
		"healthy %d vs stressed %d journeys", h.timeouts, s.timeouts)
	return r
}

// runFaultBGP flaps the uplink and measures the BFD detection latency, the
// blackhole window, and proxy-carried traffic, plus a sub-detection flap
// that must be absorbed.
func runFaultBGP(cfg Config) *Result {
	r := &Result{ID: "faultbgp", Title: "Uplink flap: BFD detection and proxy re-advertisement"}

	plan := (&faults.Plan{}).
		BGPFlap(100*sim.Millisecond, 500*sim.Millisecond). // long flap: detected
		BGPFlap(2*sim.Second, 100*sim.Millisecond)         // short flap: absorbed
	n := faultNode(cfg, plan)
	if _, err := n.EnableUplink(true); err != nil {
		panic(err)
	}
	wf := workload.GenerateFlows(500, 100, cfg.Seed)
	sf := workload.ServiceFlows(wf, 0)
	pr := faultPod(n, "gw", 4, sf)
	src := sourceFor(cfg, 1, wf, workload.ConstantRate(1e5), pr.Sink())
	if err := src.Start(n.Engine); err != nil {
		panic(err)
	}
	n.RunFor(3 * sim.Second)
	src.Stop()
	n.RunFor(5 * sim.Millisecond)

	st := n.Uplink().Stats()
	table := stats.NewTable("Metric", "Value")
	table.AddRow("flaps injected", st.Flaps)
	table.AddRow("BFD detections", st.Detections)
	table.AddRow("flaps absorbed (< detection window)", st.Absorbed)
	table.AddRow("detection latency (ms)", float64(st.LastDetectNS)/1e6)
	table.AddRow("blackholed packets", n.Blackholed)
	table.AddRow("proxied packets", n.Proxied)
	r.Table = table

	r.check("long flap detected once, short flap absorbed", st.Detections == 1 && st.Absorbed == 1,
		"detections %d, absorbed %d", st.Detections, st.Absorbed)
	// Detection needs DetectMult (3) consecutive missed 50ms probes and is
	// quantized to the probe grid, so latency lands within one probe
	// interval of 3x50ms depending on the flap's phase against the grid.
	r.check("detection latency within one probe of DetectMult x TxInterval",
		st.LastDetectNS >= 100*sim.Millisecond && st.LastDetectNS <= 200*sim.Millisecond,
		"latency %v", st.LastDetectNS)
	r.check("traffic blackholes only during the detection window, then proxies",
		n.Blackholed > 0 && n.Proxied > 0 && n.Blackholed < n.Proxied,
		"blackholed %d, proxied %d", n.Blackholed, n.Proxied)
	r.check("route re-advertised after the flap", n.Uplink().RouteUp() && n.Uplink().BFDUp(),
		"routeUp=%v bfdUp=%v", n.Uplink().RouteUp(), n.Uplink().BFDUp())
	return r
}
