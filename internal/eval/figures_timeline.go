package eval

import (
	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
	"albatross/internal/workload/trace"
)

func init() {
	register("timeline", "Virtual-time telemetry timeline: availability dip, BFD detection window, and convergence after a node crash", runTimeline)
}

// runTimeline regenerates the time-axis failover figure: a 3-node cluster's
// availability series sampled every 10ms of virtual time across a NodeCrash
// — flat at 1.0, a dip to ~(N-1)/N while the dead node blackholes traffic
// inside the BFD detection window, then recovery to 1.0 once the route is
// withdrawn and flows re-ECMP to survivors. The same series doubles as the
// determinism acceptance artifact: the CSV export must be byte-identical
// at shards 1↔4, dispatch burst 1↔8, and record↔replay.
func runTimeline(cfg Config) *Result {
	r := &Result{ID: "timeline", Title: "Failover trajectory on the virtual-time telemetry timeline"}

	const (
		nodes  = 3
		every  = 10 * sim.Millisecond
		runLen = 400 * sim.Millisecond
		// Crash at 40ms and stay down: the interesting trajectory is the
		// detection dip and the re-ECMP recovery, not the rejoin.
		crashAt = 40 * sim.Millisecond
		// BFD detection: DetectMult(3)+1 probe intervals of 50ms. The route
		// is withdrawn by crashAt+detect; give convergence one extra tick.
		detect = 200 * sim.Millisecond
	)
	nFlows, rate := 5000, 1e6
	if cfg.Quick {
		nFlows, rate = 1500, 2e5
	}

	wf := workload.GenerateFlows(nFlows, 100, cfg.Seed)
	podCfg := core.PodConfig{
		Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: pod.ModePLB},
		Flows: workload.ServiceFlows(wf, 0),
		// Burst > 1 forces the flight recorder off, so disable it everywhere:
		// the burst-identity comparison below is then exact.
		TraceSampleEvery: -1,
	}
	build := func(shards, burst int) *cluster.Cluster {
		cl, err := cluster.New(cluster.Config{
			Nodes:         nodes,
			Seed:          cfg.Seed,
			Node:          core.NodeConfig{Burst: burst},
			Faults:        (&faults.Plan{}).NodeCrash(crashAt, 1, 2*sim.Second),
			Shards:        shards,
			SnapshotEvery: every,
		})
		if err != nil {
			panic(err)
		}
		if err := cl.AddPod(podCfg); err != nil {
			panic(err)
		}
		return cl
	}

	// Base run (shards 1, per-packet dispatch), recorded into a trace so the
	// replay variant below re-drives the exact injection schedule.
	base := build(1, 0)
	rec := trace.NewRecorder(base.Engine)
	rec.SetMeta(cfg.Seed, nodes, "timeline failover figure")
	src := sourceFor(cfg, 1, wf, workload.ConstantRate(rate), base.RecordingSink(rec))
	if err := src.Start(base.Engine); err != nil {
		panic(err)
	}
	base.RunFor(runLen)
	src.Stop()
	baseCSV := base.Timeline().CSV()

	variant := func(shards, burst int) string {
		cl := build(shards, burst)
		vs := sourceFor(cfg, 1, wf, workload.ConstantRate(rate), cl.Sink())
		if err := vs.Start(cl.Engine); err != nil {
			panic(err)
		}
		cl.RunFor(runLen)
		vs.Stop()
		return cl.Timeline().CSV()
	}
	shardedCSV := variant(4, 0)
	burstCSV := variant(1, 8)

	replayCl := build(1, 0)
	rp, err := replayCl.ReplayTrace(rec.Trace())
	if err != nil {
		panic(err)
	}
	replayCl.RunFor(runLen)
	if !rp.Done() {
		panic("timeline: trace replay did not complete")
	}
	replayCSV := replayCl.Timeline().CSV()

	tl := base.Timeline()
	ticks := tl.Ticks()
	avail, _ := tl.Values("availability")
	elig, _ := tl.Values("albatross_cluster_eligible_members")
	blackholed, _ := tl.Values("albatross_cluster_blackholed_packets_total")

	// The figure: every second tick of the availability trajectory.
	table := stats.NewTable("t (ms)", "Availability", "Eligible", "Blackholed/tick")
	for i := range ticks {
		if i%2 == 1 {
			continue
		}
		table.AddRow(float64(ticks[i])/1e6, avail[i], elig[i], blackholed[i])
	}
	r.Table = table
	r.Metrics = base.Metrics()

	// Trajectory shape: per-tick classification against the crash script.
	var (
		preCrashDirty   = 0   // ticks before the crash with availability < 1.0
		dipMin          = 1.0 // worst availability inside the detection window
		strayBlackholes = 0   // blackholed packets outside [crash, withdrawal]
		convergedAt     = sim.Time(-1)
	)
	crashT := sim.Time(crashAt)
	withdrawal := sim.Time(crashAt + detect)
	for i, t := range ticks {
		tickStart := t.Add(-every)
		switch {
		case t <= crashT:
			if avail[i] != 1 {
				preCrashDirty++
			}
		case tickStart < withdrawal:
			if avail[i] < dipMin {
				dipMin = avail[i]
			}
		}
		if (t <= crashT || tickStart >= withdrawal) && blackholed[i] != 0 {
			strayBlackholes++
		}
		if avail[i] >= 0.999 {
			if convergedAt < 0 && t > crashT {
				convergedAt = t
			}
		} else if t > crashT {
			convergedAt = -1
		}
	}
	finalElig := elig[len(elig)-1]

	r.notef("crash at %v, BFD detection window %v (route withdrawn by %v); sprayed=%d blackholed=%d",
		crashAt, detect, withdrawal, base.Sprayed, base.Blackholed())
	r.notef("availability dip floor %.3f (expected ~%.3f while 1 of %d routes blackholes)",
		dipMin, float64(nodes-1)/nodes, nodes)

	r.check("timeline covers the full run", tl.Len() == int(runLen/every),
		"ticks=%d want %d", tl.Len(), int(runLen/every))
	r.check("availability flat at 1.0 before the crash", preCrashDirty == 0,
		"%d pre-crash tick(s) below 1.0", preCrashDirty)
	r.check("availability dips toward (N-1)/N inside the detection window",
		dipMin < 0.9 && dipMin > 0.5, "dip floor %.3f", dipMin)
	r.check("blackhole confined to the detection window", strayBlackholes == 0,
		"%d tick(s) outside [crash, withdrawal] recorded blackholed packets", strayBlackholes)
	r.check("availability converges back to 1.0 within one tick of withdrawal",
		convergedAt > 0 && convergedAt <= withdrawal.Add(every),
		"converged at t=%v, deadline %v", convergedAt, withdrawal.Add(every))
	r.check("route withdrawal shows on the eligible-members series at the detection tick",
		elig[0] == float64(nodes) && finalElig == float64(nodes-1),
		"eligible first=%v last=%v", elig[0], finalElig)
	r.check("series byte-identical at shards 1 vs 4", shardedCSV == baseCSV,
		"CSV exports %d vs %d bytes", len(baseCSV), len(shardedCSV))
	r.check("series byte-identical at burst 1 vs 8", burstCSV == baseCSV,
		"CSV exports %d vs %d bytes", len(baseCSV), len(burstCSV))
	r.check("series byte-identical record vs replay", replayCSV == baseCSV,
		"CSV exports %d vs %d bytes", len(baseCSV), len(replayCSV))
	return r
}
