package eval

import (
	"runtime"
	"sync"
	"time"

	"albatross/internal/cachesim"
	"albatross/internal/core"
	"albatross/internal/flowtable"
	"albatross/internal/gop"
	"albatross/internal/packet"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

func init() {
	register("memfreq", "Ablation: DRAM frequency 4800 vs 5600 MHz", runMemFreq)
	registerVolatile("meta", "Ablation: PLB meta at packet tail vs head", runMetaPlacement)
	registerVolatile("stateful", "Ablation: write-heavy vs write-light stateful NFs", runStateful)
	register("gopmem", "Ablation: two-stage rate limiter memory", runGopMem)
}

// runMemFreq reproduces the §4.2 lesson: raising memory frequency from
// 4800 to 5600 MHz improved gateway performance by ~8%.
func runMemFreq(cfg Config) *Result {
	r := &Result{ID: "memfreq", Title: "Gateway performance vs memory frequency"}
	wf := workload.GenerateFlows(30000, 100, cfg.Seed)
	sf := workload.ServiceFlows(wf, 0)

	measure := func(mhz float64) float64 {
		n, err := core.NewNode(core.NodeConfig{Seed: cfg.Seed,
			Cache: cachesim.Config{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64},
			Mem:   cachesim.DefaultLatency().WithDRAMFrequency(mhz),
		})
		if err != nil {
			panic(err)
		}
		pr, err := n.AddPod(core.PodConfig{
			Spec:  pod.Spec{Name: "gw", Service: service.VPCInternet, DataCores: 4, CtrlCores: 1},
			Flows: sf,
		})
		if err != nil {
			panic(err)
		}
		return pr.SaturationMpps(sf, 20000)
	}
	slow := measure(4800)
	fast := measure(5600)
	gain := (fast - slow) / slow

	table := stats.NewTable("DRAM", "Mpps (4 cores)", "Gain %")
	table.AddRow("4800 MHz", slow, 0.0)
	table.AddRow("5600 MHz", fast, gain*100)
	r.Table = table
	r.check("~8% improvement from faster memory", gain > 0.04 && gain < 0.14,
		"measured %.1f%%, paper ~8%%", gain*100)
	return r
}

// runMetaPlacement measures the real byte-shuffling cost of the two meta
// header placements from §7: appending at the packet tail (chosen) versus
// inserting at the head, which forces the packet body to shift/copy and
// cost the paper 33.6% of forwarding performance via mbuf copies.
func runMetaPlacement(cfg Config) *Result {
	r := &Result{ID: "meta", Title: "PLB meta header placement: tail append vs head insert"}

	const pktLen = 256
	iters := 100000
	if cfg.Quick {
		iters = 30000
	}
	meta := packet.Meta{PSN: 77, OrdQ: 2, PodID: 3, IngressNS: 1234567}
	pkt := make([]byte, pktLen, pktLen+packet.MetaLen)
	scratch := make([]byte, pktLen+packet.MetaLen)
	var m packet.Meta

	// Both paths do symmetric work (attach meta on ingress, detach on
	// egress); the head-insert variant additionally pays the body copies
	// that making/removing headroom forces. Each path is timed in
	// interleaved trials and the minimum is kept, so scheduler noise on a
	// shared host cannot invert the comparison.
	tailOnce := func() float64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			tagged := packet.AppendMeta(pkt[:pktLen], &meta)
			if _, err := packet.StripMeta(tagged, &m); err != nil {
				panic(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters)
	}
	headOnce := func() float64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			encoded := packet.AppendMeta(scratch[:0], &meta) // 16B meta at front
			copy(scratch[packet.MetaLen:], pkt)              // shift body to make headroom
			if _, err := packet.StripMeta(scratch[:packet.MetaLen+pktLen][pktLen:], &m); err == nil {
				_ = encoded
			}
			copy(scratch, scratch[packet.MetaLen:pktLen+packet.MetaLen]) // shift back
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters)
	}
	tailNS, headNS := 1e18, 1e18
	for trial := 0; trial < 5; trial++ {
		if v := tailOnce(); v < tailNS {
			tailNS = v
		}
		if v := headOnce(); v < headNS {
			headNS = v
		}
	}

	table := stats.NewTable("Placement", "ns/packet (256B)", "Relative")
	table.AddRow("tail append (chosen)", tailNS, 1.0)
	table.AddRow("head insert (copy)", headNS, headNS/tailNS)
	r.Table = table

	r.check("head insertion is slower", headNS > tailNS*1.2,
		"head %.1fns vs tail %.1fns", headNS, tailNS)
	r.notef("the paper measured a 33.6%% end-to-end forwarding hit from the extra copies; this isolates the per-packet copy cost")
	return r
}

// runStateful reproduces the §7 stateful-NF lesson: write-light NFs scale
// nearly linearly with cores, while write-heavy NFs (per-packet counter
// updates on shared state) degrade as cores are added because of lock and
// cache-coherence contention. We measure the real contention of the shared
// vs sharded tables under goroutines, and model the multi-core coherence
// curve explicitly.
func runStateful(cfg Config) *Result {
	r := &Result{ID: "stateful", Title: "Stateful NF scaling: shared vs per-core session state"}

	flows := workload.GenerateFlows(1024, 8, cfg.Seed)
	opsPerG := 200000
	if cfg.Quick {
		opsPerG = 50000
	}

	measure := func(goroutines int, shared bool) float64 {
		sh := flowtable.NewSharedSessionTable(0, 0)
		sd := flowtable.NewShardedSessionTable(goroutines, 0, 0)
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// Per-core local state: each worker owns its shard outright
				// (the table's contract — flows are pinned, state never
				// migrates), so the write path takes no lock at all.
				local := sd.Shard(g)
				for i := 0; i < opsPerG; i++ {
					f := flows[(i+g*31)&1023]
					if shared {
						sh.Touch(f.Tuple, 0, func(s *flowtable.Session) { s.Packets++ })
					} else {
						s := local.Lookup(f.Tuple, 0)
						if s == nil {
							s = local.Create(f.Tuple, 0)
						}
						s.Packets++
					}
				}
			}(g)
		}
		wg.Wait()
		total := float64(goroutines * opsPerG)
		return total / time.Since(start).Seconds() / 1e6 // Mops/s
	}

	table := stats.NewTable("Goroutines", "Shared Mops/s", "Sharded Mops/s")
	gs := []int{1, 2, 4}
	sharedAt := map[int]float64{}
	shardedAt := map[int]float64{}
	for _, g := range gs {
		sharedAt[g] = measure(g, true)
		shardedAt[g] = measure(g, false)
		table.AddRow(g, sharedAt[g], shardedAt[g])
	}
	r.Table = table

	if runtime.GOMAXPROCS(0) > 1 {
		// With real parallelism, the lock-free sharded table must win.
		r.check("sharded >= shared throughput at 4 workers",
			shardedAt[4] >= sharedAt[4]*0.95,
			"sharded %.2f vs shared %.2f Mops/s", shardedAt[4], sharedAt[4])
	} else {
		// Single-CPU host: goroutines serialize, so the shared lock is
		// never contended and the micro-benchmark only sanity-checks that
		// both mechanisms are in the same cost class.
		r.check("sharded within 2x of shared (no parallelism available)",
			shardedAt[4] >= sharedAt[4]*0.5,
			"sharded %.2f vs shared %.2f Mops/s on GOMAXPROCS=1", shardedAt[4], sharedAt[4])
	}
	r.notef("host has GOMAXPROCS=%d; true multi-core coherence collapse needs real cores", runtime.GOMAXPROCS(0))

	// Coherence model: per-packet cost on shared state grows by a
	// cache-line ping-pong penalty per extra writer, so aggregate
	// throughput flattens then falls; per-core local state scales linearly.
	model := stats.NewTable("Cores", "Write-heavy shared (rel)", "Write-light/local (rel)")
	base, coherence := 1.0, 0.45
	peak := 0.0
	last := 0.0
	for _, c := range []int{1, 2, 4, 8, 16, 32} {
		shared := float64(c) * base / (base + coherence*float64(c-1))
		local := float64(c)
		model.AddRow(c, shared, local)
		if shared > peak {
			peak = shared
		}
		last = shared
	}
	r.notef("coherence model:\n%s", model.String())
	r.check("modelled write-heavy scaling saturates", last < float64(32)*0.25,
		"32-core shared throughput %.1fx vs 32x ideal", last)
	r.check("model peak bounded", peak < 3.5, "peak %.2fx", peak)
	return r
}

func runGopMem(cfg Config) *Result {
	r := &Result{ID: "gopmem", Title: "Two-stage rate limiter SRAM budget"}
	l, err := gop.NewLimiter(gop.DefaultConfig())
	if err != nil {
		panic(err)
	}
	naive := gop.NaiveSRAMBytes(1_000_000)
	two := l.SRAMBytes()

	table := stats.NewTable("Scheme", "SRAM for 1M tenants", "Entries")
	table.AddRow("Per-tenant meters (naive)", naive, 1000000)
	table.AddRow("Two-stage (color+meter+pre)", two, 4096+4096+2*128)
	r.Table = table

	r.check(">200MB naive", naive >= 200e6, "%d bytes", naive)
	r.check("<=2MB two-stage", two <= 2<<20, "%d bytes", two)
	r.check("~100x reduction", naive/two >= 100, "%dx", naive/two)
	return r
}
