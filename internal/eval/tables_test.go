package eval

import "testing"

func runQuick(t *testing.T, id string) *Result {
	t.Helper()
	exp, ok := Find(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	r := exp.Run(Config{Seed: 1, Quick: true})
	if !r.Passed() {
		t.Fatalf("%s failed checks: %v\n%s", id, r.FailedChecks(), r)
	}
	return r
}

func TestTab3(t *testing.T) {
	r := runQuick(t, "tab3")
	if r.Table == nil {
		t.Fatal("no table")
	}
}

func TestTab4(t *testing.T) { runQuick(t, "tab4") }
func TestTab5(t *testing.T) { runQuick(t, "tab5") }
func TestTab6(t *testing.T) { runQuick(t, "tab6") }

func TestRegistrySorted(t *testing.T) {
	exps := Experiments()
	if len(exps) < 4 {
		t.Fatalf("registry has %d experiments", len(exps))
	}
	for i := 1; i < len(exps); i++ {
		if exps[i].ID < exps[i-1].ID {
			t.Fatal("registry not sorted")
		}
	}
	if _, ok := Find("definitely-not-there"); ok {
		t.Fatal("phantom experiment found")
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{ID: "x", Title: "t"}
	r.check("good", true, "ok")
	r.check("bad", false, "boom")
	r.notef("a note")
	out := r.String()
	for _, want := range []string{"PASS", "FAIL", "a note", "== x: t =="} {
		if !contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if r.Passed() {
		t.Fatal("Passed with failing check")
	}
	if len(r.FailedChecks()) != 1 {
		t.Fatal("FailedChecks count")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestFig4(t *testing.T) {
	r := runQuick(t, "fig4")
	t.Log("\n" + r.String())
}

func TestFig5(t *testing.T) {
	r := runQuick(t, "fig5")
	t.Log("\n" + r.String())
}

func TestFig8(t *testing.T)  { t.Log("\n" + runQuick(t, "fig8").String()) }
func TestFig9(t *testing.T)  { t.Log("\n" + runQuick(t, "fig9").String()) }
func TestFig10(t *testing.T) { t.Log("\n" + runQuick(t, "fig10").String()) }
func TestFig11(t *testing.T) { t.Log("\n" + runQuick(t, "fig11").String()) }
func TestFig12(t *testing.T) { t.Log("\n" + runQuick(t, "fig12").String()) }

func TestFig13(t *testing.T) { t.Log("\n" + runQuick(t, "fig13").String()) }
func TestFig14(t *testing.T) { t.Log("\n" + runQuick(t, "fig14").String()) }

func TestFig15(t *testing.T) { t.Log("\n" + runQuick(t, "fig15").String()) }
func TestFig16(t *testing.T) { t.Log("\n" + runQuick(t, "fig16").String()) }
func TestFig17(t *testing.T) { t.Log("\n" + runQuick(t, "fig17").String()) }
func TestFig7(t *testing.T)  { t.Log("\n" + runQuick(t, "fig7").String()) }

func TestMemFreq(t *testing.T) { t.Log("\n" + runQuick(t, "memfreq").String()) }

func TestMeta(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock timing assertions are unreliable under the race detector")
	}
	t.Log("\n" + runQuick(t, "meta").String())
}

func TestStateful(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock timing assertions are unreliable under the race detector")
	}
	t.Log("\n" + runQuick(t, "stateful").String())
}

func TestGopMem(t *testing.T) { t.Log("\n" + runQuick(t, "gopmem").String()) }

func TestSplit(t *testing.T)      { t.Log("\n" + runQuick(t, "split").String()) }
func TestPriority(t *testing.T)   { t.Log("\n" + runQuick(t, "priority").String()) }
func TestElasticity(t *testing.T) { t.Log("\n" + runQuick(t, "elasticity").String()) }
func TestOffload(t *testing.T)    { t.Log("\n" + runQuick(t, "offload").String()) }

func TestDriver(t *testing.T) { t.Log("\n" + runQuick(t, "driver").String()) }

func TestTuning(t *testing.T) { t.Log("\n" + runQuick(t, "tuning").String()) }

func TestOrdQ(t *testing.T) { t.Log("\n" + runQuick(t, "ordq").String()) }

func TestIsolation(t *testing.T) { t.Log("\n" + runQuick(t, "isolation").String()) }
