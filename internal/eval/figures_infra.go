package eval

import (
	"math"
	"time"

	"albatross/internal/bgp"
	"albatross/internal/cachesim"
	"albatross/internal/core"
	"albatross/internal/cpu"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

func init() {
	register("fig15", "AZ construction cost: legacy vs Albatross", runFig15)
	register("fig16", "Cross-NUMA vs intra-NUMA performance", runFig16)
	register("fig17", "Impact of automatic NUMA balancing at 90% load", runFig17)
	register("fig7", "BGP proxy: switch peer count and convergence", runFig7)
}

func runFig15(cfg Config) *Result {
	r := &Result{ID: "fig15", Title: "Availability-zone construction cost"}
	m := pod.DefaultCostModel()
	c := m.Compare()

	table := stats.NewTable("Metric", "Legacy (1st/2nd gen)", "Albatross")
	table.AddRow("Devices", c.LegacyGateways, c.AlbatrossServers)
	table.AddRow("Relative cost", c.LegacyCost, c.AlbatrossCost)
	table.AddRow("Power (W)", c.LegacyPowerW, c.AlbatrossPowerW)
	r.Table = table

	r.check("32 gateways onto 8 servers", c.LegacyGateways == 32 && c.AlbatrossServers == 8,
		"%d -> %d", c.LegacyGateways, c.AlbatrossServers)
	r.check("75% fewer devices", math.Abs(c.ServerReduction-0.75) < 1e-9,
		"%.0f%%", c.ServerReduction*100)
	r.check("50% cost reduction", math.Abs(c.CostReduction-0.5) < 1e-9,
		"%.0f%%", c.CostReduction*100)
	r.check("40% power reduction", math.Abs(c.PowerReduction-0.4) < 1e-9,
		"%.0f%% (12000W -> 7200W)", c.PowerReduction*100)
	return r
}

func runFig16(cfg Config) *Result {
	r := &Result{ID: "fig16", Title: "Cross/intra NUMA comparison"}

	wf := workload.GenerateFlows(30000, 100, cfg.Seed)
	sf := workload.ServiceFlows(wf, 0)
	measure := func(cross bool) float64 {
		n, err := core.NewNode(core.NodeConfig{Seed: cfg.Seed,
			Cache: cachesim.Config{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64}})
		if err != nil {
			panic(err)
		}
		pr, err := n.AddPod(core.PodConfig{
			Spec:      pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1},
			Flows:     sf,
			CrossNUMA: cross,
		})
		if err != nil {
			panic(err)
		}
		return pr.SaturationMpps(sf, 20000)
	}
	intra := measure(false)
	cross := measure(true)
	svcDegradation := (intra - cross) / intra

	// "Without any network service": only the instruction path matters, so
	// the degradation equals the compute penalty.
	pen := cpu.DefaultPenalties()
	noSvcDegradation := 1 - 1/pen.CrossCompute

	table := stats.NewTable("Workload", "Intra-NUMA", "Cross-NUMA", "Degradation %")
	table.AddRow("VPC-VPC (Mpps, 4 cores)", intra, cross, svcDegradation*100)
	table.AddRow("No service (relative)", 1.0, 1/pen.CrossCompute, noSvcDegradation*100)
	r.Table = table

	r.check("VPC-VPC degrades ~14% cross-NUMA", svcDegradation > 0.08 && svcDegradation < 0.22,
		"measured %.1f%%, paper 14%%", svcDegradation*100)
	r.check("no-service degrades ~3%", noSvcDegradation > 0.02 && noSvcDegradation < 0.04,
		"measured %.1f%%, paper 3%%", noSvcDegradation*100)
	return r
}

func runFig17(cfg Config) *Result {
	r := &Result{ID: "fig17", Title: "Latency at 90% load: numa_balancing on vs off"}

	run := func(balancing bool) (maxUS, p999US float64) {
		n, err := core.NewNode(core.NodeConfig{Seed: cfg.Seed,
			Cache: cachesim.Config{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64}})
		if err != nil {
			panic(err)
		}
		wf := workload.GenerateFlows(20000, 100, cfg.Seed)
		sf := workload.ServiceFlows(wf, 0)
		pr, err := n.AddPod(core.PodConfig{
			Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1},
			Flows: sf,
		})
		if err != nil {
			panic(err)
		}
		capacity := pr.SaturationMpps(sf, 5000) * 1e6
		if balancing {
			b := cpu.NewBalancer(n.Engine, pr.Cores, cfg.Seed+77)
			b.Interval = 20 * sim.Millisecond
			// Offered 90% load sustains ~75% measured utilization after
			// PLB/queueing overheads; the kernel migrates anything it
			// considers busy, so trigger above 60%.
			b.LoadThreshold = 0.6
			b.Start()
		}
		src := sourceFor(cfg, 6, wf, workload.ConstantRate(0.9*capacity), pr.Sink())
		src.Start(n.Engine)
		dur := 400 * sim.Millisecond
		if cfg.Quick {
			dur = 200 * sim.Millisecond
		}
		n.RunFor(dur)
		return float64(pr.Latency.Max()) / 1000, float64(pr.Latency.Quantile(0.999)) / 1000
	}

	offMax, offP999 := run(false)
	onMax, onP999 := run(true)

	table := stats.NewTable("numa_balancing", "p99.9 (µs)", "max (µs)")
	table.AddRow("enabled (default)", onP999, onMax)
	table.AddRow("disabled (fix)", offP999, offMax)
	r.Table = table

	r.check("balancing causes latency bursts", onMax > 3*offMax,
		"max %.0fµs vs %.0fµs", onMax, offMax)
	r.check("disabling removes the bursts", offMax < 500,
		"max %.0fµs without balancing", offMax)
	return r
}

func runFig7(cfg Config) *Result {
	r := &Result{ID: "fig7", Title: "BGP proxy: uplink switch peer pressure"}

	m := bgp.PeerMath{Servers: 32, PodsPerServer: 4, ProxiesPerSrv: 2}
	conv := bgp.DefaultConvergenceModel()
	direct := m.SwitchPeersDirect()
	proxied := m.SwitchPeersProxied()

	table := stats.NewTable("Scheme", "Switch BGP peers", "Within 64-peer limit", "Convergence after failure")
	table.AddRow("Per-pod eBGP (original)", direct, direct <= 64, conv.Converge(direct).Round(time.Second).String())
	table.AddRow("BGP proxy (dual)", proxied, proxied <= 64, conv.Converge(proxied).Round(time.Second).String())
	r.Table = table

	r.check("direct peering exceeds the safe threshold", direct > 64, "%d peers", direct)
	r.check("proxy fits the safe threshold", proxied <= 64, "%d peers", proxied)
	r.check("direct convergence degrades to tens of minutes",
		conv.Converge(direct) > 10*time.Minute, "%v", conv.Converge(direct).Round(time.Second))
	r.check("proxied convergence stays in seconds",
		conv.Converge(proxied) < 10*time.Second, "%v", conv.Converge(proxied).Round(time.Second))
	r.notef("peers per server drop from m=%d to %d via iBGP aggregation at the proxy pod",
		m.PodsPerServer, m.ProxiesPerSrv)
	r.notef("the live protocol path (OPEN/UPDATE/KEEPALIVE over TCP) is exercised by internal/bgp tests and examples/bgpproxy")
	return r
}
