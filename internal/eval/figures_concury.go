package eval

import (
	"fmt"

	"albatross/internal/cachesim"
	"albatross/internal/flowtable"
	"albatross/internal/packet"
	"albatross/internal/scenario"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

func init() {
	register("concury", "Concury comparison: stateless Othello steering vs a stateful session table", runConcury)
}

// concuryDoc drives the combined dataplane through churn: the othello
// backend steers flows on every node, burst-batched dispatch is on, a pod
// crashes and restarts, and the run must conserve packets and stay
// byte-identical across repeat runs and shard counts 1 and 4.
const concuryDoc = `
name: concury-cluster
description: "othello steering + burst dispatch, pod churn, shard identity"
seed: 1
duration: 40ms

fleet:
  nodes: 4
  pods: 2
  cores: 4
  backend: othello
  burst: 8

workload:
  flows: 3000
  tenants: 100
  rate: 5e5

events:
  - at: 8ms
    action: inject_failure
    fault: pod-crash
    node: 0
    pod: 1
    restart: 10ms

assertions:
  - type: conservation
  - type: expected_table
    pods: 2
    max_moved: 600
  - type: byte_identity
    runs: 2
    shards: [1, 4]
`

// runConcury reproduces the Concury argument for a stateless flow-table
// tier (PAPERS.md: "Concury: a scalable and loss-free L4 load balancer"):
//
//  1. Dataplane memory: a session table keeps a 128B record per flow and
//     thrashes the LLC once the flow count outgrows it; the Othello
//     classifier reads two 2B array cells that stay cache-resident. Both
//     backends serve the same lookup stream against the same cache model
//     and the per-packet memory cost is priced with DRAM/L3 latencies.
//  2. Update disruption: removing a pod from the pool may move only the
//     flows that were pinned to it — and restoring the pool moves none.
//  3. The full simulated cluster holds conservation and byte-identity at
//     shards 1 and 4 with the backend and burst dispatch enabled.
func runConcury(cfg Config) *Result {
	r := &Result{ID: "concury", Title: "Stateless Othello steering vs stateful session table (Concury)"}

	nflows, lookups, cacheMB := 200000, 1200000, 8
	if cfg.Quick {
		nflows, lookups, cacheMB = 20000, 120000, 1
	}
	const npods = 8
	pool := make([]int, npods)
	for i := range pool {
		pool[i] = i
	}

	flows := workload.GenerateFlows(nflows, 1000, cfg.Seed)
	sessB, err := flowtable.NewBackend("session", pool, flowtable.BackendConfig{
		Space: flowtable.NewAddrSpace(),
	})
	if err != nil {
		panic(err)
	}
	othB, err := flowtable.NewBackend("othello", pool, flowtable.BackendConfig{
		Seed: cfg.Seed, SizeHint: nflows,
	})
	if err != nil {
		panic(err)
	}

	// Pin every flow in both backends; on a healthy static pool the shared
	// AssignPod hash must make them agree flow for flow.
	assign := make([]int8, nflows)
	agree := 0
	for i, f := range flows {
		ps := flowtable.Select(sessB, f.Tuple, 0)
		po := flowtable.Select(othB, f.Tuple, 0)
		if ps == po {
			agree++
		}
		assign[i] = int8(po)
	}
	r.check("assignments-agree", agree == nflows,
		"session and othello agree on %d/%d flows of a healthy static pool", agree, nflows)

	// Dataplane memory cost: the same uniform lookup stream through two
	// identical cache models, session records vs Othello array cells. One
	// full pass warms both caches, the second is measured.
	sessTab := sessB.(interface {
		Table() *flowtable.SessionTable
	}).Table()
	othMap := othB.(interface{ Map() *flowtable.Othello }).Map()
	ccfg := cachesim.Config{SizeBytes: cacheMB << 20, Ways: 16, LineBytes: 64}
	cacheS, cacheO := cachesim.New(ccfg), cachesim.New(ccfg)
	lat := cachesim.DefaultLatency()
	const aBase, bBase = uint64(0x5a) << 40, uint64(0x5b) << 40
	touch := func(t packet.FiveTuple) {
		s := sessTab.Peek(t)
		cacheS.Access(s.Addr, 128)
		ia, ib := othMap.Slots(t)
		cacheO.Access(aBase+uint64(ia)*2, 2)
		cacheO.Access(bBase+uint64(ib)*2, 2)
	}
	rnd := sim.NewRand(cfg.Seed ^ 0xC0C0)
	stream := make([]int, lookups)
	for i := range stream {
		stream[i] = int(rnd.Uint64() % uint64(nflows))
	}
	for _, fi := range stream {
		touch(flows[fi].Tuple)
	}
	cacheS.ResetStats()
	cacheO.ResetStats()
	for _, fi := range stream {
		touch(flows[fi].Tuple)
	}
	nsS := lat.Cost(int(cacheS.Hits()), int(cacheS.Misses())) / float64(lookups)
	nsO := lat.Cost(int(cacheO.Hits()), int(cacheO.Misses())) / float64(lookups)
	ratio := nsS / nsO

	sessBytes := int64(sessTab.Len()) * 128 // sessions model 128B records
	table := stats.NewTable("Backend", "State bytes", "LLC hit rate", "Mem ns/pkt")
	table.AddRow("session", sessBytes, fmt.Sprintf("%.3f", cacheS.HitRate()), fmt.Sprintf("%.1f", nsS))
	table.AddRow("othello", othMap.ArrayBytes(), fmt.Sprintf("%.3f", cacheO.HitRate()), fmt.Sprintf("%.1f", nsO))
	r.Table = table
	r.notef("dataplane memory cost ratio session/othello = %sx on a %dMB LLC",
		fmt.Sprintf("%.2f", ratio), cacheMB)
	r.check("othello-cache-resident", cacheO.HitRate() > 0.9,
		"othello array hit rate %s (arrays %dB fit the cache)",
		fmt.Sprintf("%.3f", cacheO.HitRate()), othMap.ArrayBytes())
	r.check("session-thrashes", cacheS.HitRate() < cacheO.HitRate(),
		"session hit rate %s < othello %s (%dB of 128B records vs %dMB LLC)",
		fmt.Sprintf("%.3f", cacheS.HitRate()), fmt.Sprintf("%.3f", cacheO.HitRate()),
		sessBytes, cacheMB)
	r.check("throughput-ratio", ratio >= 1.5,
		"per-packet memory cost %s ns vs %s ns, ratio %sx >= 1.5x",
		fmt.Sprintf("%.1f", nsS), fmt.Sprintf("%.1f", nsO), fmt.Sprintf("%.2f", ratio))

	// Update disruption under pod churn: drop one pod, count moved flows.
	const dead = 3
	expected := 0
	for _, a := range assign {
		if a == dead {
			expected++
		}
	}
	shrunk := make([]int, 0, npods-1)
	for _, p := range pool {
		if p != dead {
			shrunk = append(shrunk, p)
		}
	}
	movedS := sessB.Update(shrunk)
	movedO := othB.Update(shrunk)
	rebuilds := othB.Stats().Rebuilds
	stable := 0
	for i, f := range flows {
		if assign[i] == dead {
			continue
		}
		if p, ok := othB.Lookup(f.Tuple, 0); ok && p == int(assign[i]) {
			stable++
		}
	}
	churn := stats.NewTable("Event", "session moved", "othello moved", "flows on dead pod")
	churn.AddRow("remove pod", movedS, movedO, expected)
	movedSBack := sessB.Update(pool)
	movedOBack := othB.Update(pool)
	churn.AddRow("restore pod", movedSBack, movedOBack, 0)
	r.Extras = append(r.Extras, churn)
	r.check("zero-disruption-update", movedO == expected && movedS == expected,
		"pool update moved exactly the dead pod's flows (othello %d, session %d, expected %d)",
		movedO, movedS, expected)
	r.check("survivors-pinned", stable == nflows-expected,
		"%d/%d flows on surviving pods kept their assignment", stable, nflows-expected)
	r.check("no-rebuild", rebuilds == 0,
		"othello pool update rewrote values in place (%d rebuilds)", rebuilds)
	r.check("restore-moves-none", movedOBack == 0 && movedSBack == 0,
		"restoring the pod moved no flows (othello %d, session %d)", movedOBack, movedSBack)

	// Full-cluster gate: conservation, expected-table convergence, and
	// byte-identity across shard counts with backend + burst enabled.
	s, err := scenario.Load([]byte(concuryDoc))
	if err != nil {
		panic(err)
	}
	ov := scenario.Overrides{Seed: &cfg.Seed}
	if cfg.Quick {
		qflows, qrate := 1500, 3e5
		ov.Flows, ov.Rate = &qflows, &qrate
	}
	res, err := s.Apply(ov).Run()
	if err != nil {
		panic(err)
	}
	for _, c := range res.Checks {
		r.check("cluster/"+c.Assertion.Type, c.OK, "%s", c.Detail)
	}
	return r
}
