package eval

import (
	"albatross/internal/cachesim"
	"albatross/internal/core"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

func init() {
	register("fig8", "Load balancing under a heavy hitter: RSS vs PLB", runFig8)
	register("fig9", "P99 latency vs gateway load: RSS vs PLB", runFig9)
	register("fig10", "Per-core utilization stddev in production: RSS vs PLB", runFig10)
	register("fig11", "PLB latency distribution across pod loads", runFig11)
	register("fig12", "HOL events with and without the active drop flag", runFig12)
}

// newTestNode builds a node with a small shared cache for the event-level
// experiments (the cache regime matters for fig4/5; here the dynamics do).
func newTestNode(cfg Config) *core.Node {
	n, err := core.NewNode(core.NodeConfig{
		Seed:  cfg.Seed,
		Cache: cachesim.Config{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64},
	})
	if err != nil {
		panic(err)
	}
	return n
}

// runFig8 sweeps a heavy hitter from 0 to ~130% of one core's capacity over
// 3 cores with 10% background load and reports per-core utilization and
// loss for both modes.
func runFig8(cfg Config) *Result {
	r := &Result{ID: "fig8", Title: "Heavy hitter sweep, 3 cores, 10% background"}

	type point struct {
		hhPct   float64
		maxU    float64
		minU    float64
		lossPct float64
	}
	// Single-core capacity at this scale (measured: ~1.9Mpps VPC-VPC).
	run := func(mode pod.Mode, hhFrac float64) point {
		n := newTestNode(cfg)
		wf := workload.GenerateFlows(20000, 100, cfg.Seed)
		sf := workload.ServiceFlows(wf, 0)
		pr, err := n.AddPod(core.PodConfig{
			Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 3, CtrlCores: 1, Mode: mode},
			Flows: sf,
		})
		if err != nil {
			panic(err)
		}
		coreCap := pr.SaturationMpps(sf, 5000) / 3 * 1e6 // pps per core, thrashing mix
		// The heavy hitter is a single flow, so its table entries stay
		// cache-hot: its single-core capacity is higher than the mixed-
		// traffic capacity. Size the sweep against the hot-flow cost so
		// "130% of a core" really overloads one core under RSS.
		hotCost := pr.MeanServiceCost(sf[:1], 500)
		hotCap := float64(sim.Second) / float64(hotCost)
		samplers := pr.UtilSamplers()

		bg := sourceFor(cfg, 1, wf, workload.ConstantRate(0.3*coreCap), pr.Sink())
		bg.Start(n.Engine)
		if hhFrac > 0 {
			hh := sourceFor(cfg, 2, wf[:1], workload.ConstantRate(hhFrac*hotCap), pr.Sink())
			hh.Start(n.Engine)
		}
		n.RunFor(60 * sim.Millisecond)

		var maxU, minU float64 = 0, 2
		for _, s := range samplers {
			u := s.Sample()
			if u > maxU {
				maxU = u
			}
			if u < minU {
				minU = u
			}
		}
		lost := pr.QueueDrops + pr.PLBDrops
		loss := float64(lost) / float64(pr.Rx) * 100
		return point{hhPct: hhFrac * 100, maxU: maxU, minU: minU, lossPct: loss}
	}

	table := stats.NewTable("HH % of core", "RSS max util", "RSS loss %", "PLB max util", "PLB min util", "PLB loss %")
	fracs := []float64{0, 0.5, 1.0, 1.3}
	var rss130, plb130 point
	for _, f := range fracs {
		rp := run(pod.ModeRSS, f)
		pp := run(pod.ModePLB, f)
		if f == 1.3 {
			rss130, plb130 = rp, pp
		}
		table.AddRow(rp.hhPct, rp.maxU, rp.lossPct, pp.maxU, pp.minU, pp.lossPct)
	}
	r.Table = table

	r.check("RSS overloads one core at 130%", rss130.maxU > 0.95 && rss130.lossPct > 1,
		"max util %.2f, loss %.1f%%", rss130.maxU, rss130.lossPct)
	r.check("PLB absorbs the heavy hitter", plb130.lossPct < 0.5,
		"loss %.2f%%", plb130.lossPct)
	r.check("PLB spreads load evenly", plb130.maxU-plb130.minU < 0.15,
		"util spread %.2f..%.2f", plb130.minU, plb130.maxU)
	return r
}

// runFig9 measures P99 latency across a load sweep with microburst traffic.
func runFig9(cfg Config) *Result {
	r := &Result{ID: "fig9", Title: "P99 latency vs load (microburst traffic)"}

	run := func(mode pod.Mode, load float64) int64 {
		n := newTestNode(cfg)
		wf := workload.GenerateFlows(20000, 100, cfg.Seed)
		sf := workload.ServiceFlows(wf, 0)
		pr, err := n.AddPod(core.PodConfig{
			Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: mode},
			Flows: sf,
		})
		if err != nil {
			panic(err)
		}
		capacity := pr.SaturationMpps(sf, 5000) * 1e6
		// Microbursts: 3x rate for 200µs every 2ms (mean factor ~1.2);
		// scale the base so the *average* offered load matches `load`.
		meanFactor := 1.0 + (3.0-1.0)*0.2/2.0
		base := load * capacity / meanFactor
		src := sourceFor(cfg, 3, wf,
			workload.Microburst(workload.ConstantRate(base), 3, 2*sim.Millisecond, 200*sim.Microsecond),
			pr.Sink())
		src.Start(n.Engine)
		dur := 80 * sim.Millisecond
		if cfg.Quick {
			dur = 40 * sim.Millisecond
		}
		n.RunFor(dur)
		return pr.Latency.Quantile(0.99)
	}

	table := stats.NewTable("Load %", "RSS p99 (µs)", "PLB p99 (µs)")
	loads := []float64{0.25, 0.50, 0.70, 0.85, 0.95}
	var lowSimilar bool = true
	var highPLBWins bool = true
	for _, load := range loads {
		rssP99 := run(pod.ModeRSS, load)
		plbP99 := run(pod.ModePLB, load)
		table.AddRow(load*100, float64(rssP99)/1000, float64(plbP99)/1000)
		if load <= 0.50 {
			// Below the crossover the two modes should be comparable
			// (within 2x either way).
			ratio := float64(plbP99) / float64(rssP99)
			if ratio > 2.0 || ratio < 0.5 {
				lowSimilar = false
			}
		}
		if load >= 0.85 {
			if plbP99 >= rssP99 {
				highPLBWins = false
			}
		}
	}
	r.Table = table
	r.check("similar latency at low load", lowSimilar, "loads <= 50%%")
	r.check("PLB p99 < RSS p99 above 75%% load", highPLBWins, "loads >= 85%%")
	return r
}

// runFig10 samples per-core utilization over time at ~20% average load with
// microbursts and reports the cross-core standard deviation.
func runFig10(cfg Config) *Result {
	r := &Result{ID: "fig10", Title: "Per-core utilization stddev over time (20% load)"}

	run := func(mode pod.Mode) *stats.Series {
		n := newTestNode(cfg)
		wf := workload.GenerateFlows(20000, 100, cfg.Seed)
		sf := workload.ServiceFlows(wf, 0)
		pr, err := n.AddPod(core.PodConfig{
			Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 8, CtrlCores: 1, Mode: mode},
			Flows: sf,
		})
		if err != nil {
			panic(err)
		}
		capacity := pr.SaturationMpps(sf, 5000) * 1e6
		// Micro-bursts hit a few flows hard: Zipf popularity makes each
		// burst concentrate on popular flows, which under RSS pile onto
		// single cores.
		src := sourceFor(cfg, 4, wf,
			workload.Microburst(workload.ConstantRate(0.18*capacity), 6, 5*sim.Millisecond, 300*sim.Microsecond),
			pr.Sink(), workload.WithZipf(1.1))
		src.Start(n.Engine)

		samplers := pr.UtilSamplers()
		perCore := make([]*stats.Series, len(samplers))
		for i := range perCore {
			perCore[i] = &stats.Series{}
		}
		// Sample every 1ms for 100ms.
		for step := 1; step <= 100; step++ {
			n.RunFor(sim.Duration(sim.Millisecond))
			tsec := n.Engine.Now().Seconds()
			for i, s := range samplers {
				perCore[i].Append(tsec, s.Sample())
			}
		}
		return stats.StddevAcross(perCore)
	}

	rssSD := run(pod.ModeRSS)
	plbSD := run(pod.ModePLB)

	table := stats.NewTable("Mode", "mean stddev", "max stddev")
	table.AddRow("RSS", rssSD.Mean(), rssSD.Max())
	table.AddRow("PLB", plbSD.Mean(), plbSD.Max())
	r.Table = table

	r.check("RSS stddev much higher than PLB", rssSD.Mean() > 3*plbSD.Mean(),
		"RSS %.4f vs PLB %.4f", rssSD.Mean(), plbSD.Mean())
	r.check("RSS fluctuates more", rssSD.Max() > plbSD.Max(),
		"max RSS %.4f vs PLB %.4f", rssSD.Max(), plbSD.Max())
	return r
}

// runFig11 reproduces the production latency distribution across four pods
// at different loads, including the exponential tail and ~1e-5 disorder.
func runFig11(cfg Config) *Result {
	r := &Result{ID: "fig11", Title: "PLB processing latency distribution (pods A-D)"}

	n := newTestNode(cfg)
	loads := map[string]float64{"A": 0.20, "B": 0.17, "C": 0.06, "D": 0.05}
	names := []string{"A", "B", "C", "D"}

	dur := 150 * sim.Millisecond
	if cfg.Quick {
		dur = 60 * sim.Millisecond
	}

	pods := map[string]*core.PodRuntime{}
	for i, name := range names {
		wf := workload.GenerateFlows(10000, 100, cfg.Seed+uint64(i))
		sf := workload.ServiceFlows(wf, 0)
		pr, err := n.AddPod(core.PodConfig{
			Spec:  pod.Spec{Name: name, Service: service.VPCVPC, DataCores: 4, CtrlCores: 1},
			Flows: sf,
			// Production jitter: heavier tail than the default, plus the
			// rare (already mitigated) slow-path excursions that produce
			// the ~1e-5 disorder rate.
			JitterSigma:  0.55,
			SlowPathProb: 2e-5,
			SlowPathCost: 150 * sim.Microsecond,
		})
		if err != nil {
			panic(err)
		}
		pods[name] = pr
		capacity := pr.SaturationMpps(sf, 5000) * 1e6
		src := sourceFor(cfg, uint64(100+i), wf,
			workload.Microburst(workload.ConstantRate(loads[name]*capacity), 4, 3*sim.Millisecond, 200*sim.Microsecond),
			pr.Sink())
		src.Start(n.Engine)
	}
	n.RunFor(dur)

	table := stats.NewTable("Pod", "Load %", "p50 (µs)", "p99 (µs)", "% < 30µs", "% in 30-100µs", "disorder rate")
	under30 := true
	for _, name := range names {
		pr := pods[name]
		h := pr.CPULatency
		f30 := 1 - h.FractionAbove(int64(30*sim.Microsecond))
		f30100 := h.FractionBetween(int64(30*sim.Microsecond), int64(100*sim.Microsecond))
		table.AddRow(name, loads[name]*100, float64(h.Quantile(0.5))/1000,
			float64(h.Quantile(0.99))/1000, f30*100, f30100*100, pr.DisorderRate())
		if f30 < 0.97 {
			under30 = false
		}
	}
	r.Table = table

	r.check(">=97%% of packets under 30µs", under30, "paper: >99%%")
	// Higher-load pods have a fatter 30-100µs band.
	fa := pods["A"].CPULatency.FractionBetween(int64(30*sim.Microsecond), int64(100*sim.Microsecond))
	fd := pods["D"].CPULatency.FractionBetween(int64(30*sim.Microsecond), int64(100*sim.Microsecond))
	r.check("high-load pod has fatter 30-100µs band", fa >= fd,
		"A %.4f%% vs D %.4f%%", fa*100, fd*100)
	// Disorder around 1e-5 (allow an order of magnitude either way; the
	// tail is sampled from few events at test scale).
	worst := 0.0
	for _, pr := range pods {
		if dr := pr.DisorderRate(); dr > worst {
			worst = dr
		}
	}
	r.check("disorder rate ~1e-5", worst < 1e-3, "worst %.2e", worst)
	return r
}

// runFig12 contrasts HOL events per second with the active drop flag on
// and off under ACL-dropping traffic.
func runFig12(cfg Config) *Result {
	r := &Result{ID: "fig12", Title: "HOL events/s: active drop flag on vs off"}

	run := func(disabled bool) (holPerSec float64, timeouts uint64) {
		n := newTestNode(cfg)
		wf := workload.GenerateFlows(10000, 100, cfg.Seed)
		sf := workload.ServiceFlows(wf, 0.001) // 0.1% of flows ACL-denied
		pr, err := n.AddPod(core.PodConfig{
			Spec:             pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1},
			Flows:            sf,
			DropFlagDisabled: disabled,
		})
		if err != nil {
			panic(err)
		}
		capacity := pr.SaturationMpps(sf, 5000) * 1e6
		src := sourceFor(cfg, 5, wf, workload.ConstantRate(0.5*capacity), pr.Sink())
		src.Start(n.Engine)
		dur := 100 * sim.Millisecond
		n.RunFor(dur)
		s := pr.PLB.Stats()
		return float64(s.TimeoutReleases) / dur.Seconds(), s.TimeoutReleases
	}

	onHOL, onTimeouts := run(false)
	offHOL, offTimeouts := run(true)

	table := stats.NewTable("Drop flag", "HOL occurrences/s", "timeout releases")
	table.AddRow("enabled", onHOL, onTimeouts)
	table.AddRow("disabled", offHOL, offTimeouts)
	r.Table = table

	r.check("drop flag removes timeout HOL", onTimeouts == 0,
		"%d timeout releases with flag on", onTimeouts)
	r.check("silent drops cause heavy HOL", offTimeouts > 100,
		"%d timeout releases with flag off", offTimeouts)
	reduction := offHOL - onHOL
	r.check("flag cuts dozens-hundreds of HOL/s", reduction > 50,
		"reduction %.0f HOL occurrences/s", reduction)
	r.notef("the magnitude scales with the ACL-drop rate; the paper's production plot shows dozens to hundreds per second")
	return r
}
