// Package eval contains one driver per table and figure of the paper's
// evaluation (§6) plus the ablations called out in DESIGN.md. Each driver
// runs a scaled scenario on the simulation substrate, prints the same rows
// or series the paper reports, and self-checks the *shape* of the result
// (who wins, by roughly what factor, where crossovers fall).
package eval

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"albatross/internal/metrics"
	"albatross/internal/stats"
)

// Config controls experiment scale.
type Config struct {
	Seed uint64
	// Quick shrinks scenarios for CI/test runs; the full scale is used by
	// cmd/albatross-bench.
	Quick bool
}

// Check is one shape assertion against the paper.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Result is an experiment's output.
type Result struct {
	ID    string
	Title string
	// Table is the regenerated table/series.
	Table *stats.Table
	// Extras are additional tables (e.g. a per-stage latency breakdown
	// accompanying the headline figure), rendered after Table.
	Extras []*stats.Table
	// Notes carry free-form observations (paper-vs-measured commentary).
	Notes []string
	// Checks are the shape assertions.
	Checks []Check
	// Metrics, when non-nil, is the experiment's final metrics snapshot
	// (exported by albatross-bench -metrics).
	Metrics *metrics.Snapshot
}

// Passed reports whether every check held.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// FailedChecks lists the names of failed checks.
func (r *Result) FailedChecks() []string {
	var out []string
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, fmt.Sprintf("%s (%s)", c.Name, c.Detail))
		}
	}
	return out
}

func (r *Result) check(name string, ok bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

func (r *Result) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Table != nil {
		b.WriteString(r.Table.String())
	}
	for _, t := range r.Extras {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "check [%s] %s: %s\n", status, c.Name, c.Detail)
	}
	return b.String()
}

// Experiment is a registered driver.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) *Result
	// Volatile marks drivers that measure real wall-clock time (host
	// microbenchmarks with time.Now or OS goroutines): their printed tables
	// vary run to run, so the determinism contract — identical output for
	// identical (seed, scale) — applies only to non-volatile experiments.
	Volatile bool
}

var registry []Experiment

func register(id, title string, run func(Config) *Result) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// registerVolatile registers a wall-clock-measuring driver.
func registerVolatile(id, title string, run func(Config) *Result) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run, Volatile: true})
}

// Experiments returns all registered experiments sorted by ID.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunRecord pairs an experiment with its result and wall-clock cost.
type RunRecord struct {
	Exp    Experiment
	Result *Result
	Wall   time.Duration
}

// RunAll executes exps across up to `parallelism` worker goroutines and
// returns records in the order the experiments were given, so a caller
// printing Result strings in slice order emits byte-identical output for
// any parallelism (volatile experiments excepted — they time the host).
//
// Determinism contract: each driver builds its own Engine and seeded Rand
// from cfg and shares nothing mutable, so experiments are independent and
// safe to run concurrently. Parallelism lives only here in the harness;
// a single engine is never driven from more than one goroutine.
func RunAll(exps []Experiment, cfg Config, parallelism int) []RunRecord {
	recs := make([]RunRecord, len(exps))
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > len(exps) {
		parallelism = len(exps)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(exps) {
					return
				}
				start := time.Now()
				r := exps[i].Run(cfg)
				recs[i] = RunRecord{Exp: exps[i], Result: r, Wall: time.Since(start)}
			}
		}()
	}
	wg.Wait()
	return recs
}
