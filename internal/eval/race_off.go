//go:build !race

package eval

// raceEnabled reports whether the race detector is instrumenting this
// build; see race_on.go.
const raceEnabled = false
