package eval

import (
	"albatross/internal/plb"
	"albatross/internal/sim"
	"albatross/internal/stats"
)

func init() {
	register("ordq", "Ablation: reorder queue count, the paper's C1/C2 tradeoff", runOrdQ)
}

// runOrdQ reproduces the §4.1 design discussion: with a fixed FPGA buffer,
// splitting it into more order-preserving queues shrinks each queue —
// reducing the heavy-hitter burst a single queue can absorb (C1) — while
// fewer queues concentrate HOL blocking: one stuck head stalls a larger
// share of traffic (C2). Albatross picks 1-8 queues per pod as the
// balance; this experiment measures both extremes directly on the real
// reorder engine.
func runOrdQ(cfg Config) *Result {
	r := &Result{ID: "ordq", Title: "Reorder queues: heavy-hitter tolerance (C1) vs HOL exposure (C2)"}

	const totalBuffer = 32768 // entries across all queues (fixed FPGA RAM)

	// --- C1: single-flow burst absorption ----------------------------
	// A heavy hitter bursts B packets into ONE flow (= one order queue)
	// while the CPU drains slowly. Queues beyond the hitter's are idle, so
	// only its own queue's depth matters.
	burstDrops := func(queues int) uint64 {
		e := sim.NewEngine()
		p, err := plb.New(e, plb.Config{
			NumOrderQueues: queues,
			QueueDepth:     totalBuffer / queues,
			Timeout:        100 * sim.Microsecond,
			NumCores:       8,
		}, func(plb.Emission) {})
		if err != nil {
			panic(err)
		}
		const burst = 24000
		for i := 0; i < burst; i++ {
			// Same flow hash: one queue takes the whole burst.
			if _, m, ok := p.Dispatch(42); ok {
				// CPU far behind: returns happen ~1ms later (past timeout,
				// so nothing frees the FIFO during the burst).
				m := m
				e.After(sim.Millisecond, func() { p.Return(nil, m) })
			}
		}
		e.Run()
		return p.Stats().DispatchDrops
	}

	// --- C2: HOL blast radius of a silent drop ------------------------
	// Uniform traffic across many flows; a fraction of packets is silently
	// lost at the CPU (never returned). Each loss HOL-blocks its queue
	// until the 100µs timeout; with more queues, the blast radius shrinks.
	holP99 := func(queues int) float64 {
		e := sim.NewEngine()
		lat := stats.NewLatencyHistogram()
		type pend struct {
			t0 sim.Time
		}
		var p *plb.PLB
		var err error
		p, err = plb.New(e, plb.Config{
			NumOrderQueues: queues,
			QueueDepth:     totalBuffer / queues,
			Timeout:        100 * sim.Microsecond,
			NumCores:       8,
		}, func(em plb.Emission) {
			if ctx, ok := em.Item.(*pend); ok && ctx != nil {
				lat.Record(int64(e.Now().Sub(ctx.t0)))
			}
		})
		if err != nil {
			panic(err)
		}
		rng := sim.NewRand(cfg.Seed ^ 0x0dd)
		n := 200000
		if cfg.Quick {
			n = 60000
		}
		for i := 0; i < n; i++ {
			i := i
			at := sim.Time(i) * sim.Time(500) // 2Mpps offered
			e.At(at, func() {
				flow := rng.Uint32()
				_, m, ok := p.Dispatch(flow)
				if !ok {
					return
				}
				if rng.Float64() < 0.001 {
					return // silent CPU loss: HOL until timeout
				}
				ctx := &pend{t0: e.Now()}
				e.After(5*sim.Microsecond, func() { p.Return(ctx, m) })
			})
		}
		e.Run()
		return float64(lat.Quantile(0.99)) / 1000 // µs
	}

	table := stats.NewTable("Queues", "Per-queue depth", "C1: burst drops (24K burst)", "C2: p99 µs (0.1% silent loss)")
	drops := map[int]uint64{}
	p99s := map[int]float64{}
	for _, q := range []int{1, 2, 4, 8} {
		drops[q] = burstDrops(q)
		p99s[q] = holP99(q)
		table.AddRow(q, totalBuffer/q, drops[q], p99s[q])
	}
	r.Table = table

	r.check("C1: fewer queues absorb bigger single-flow bursts",
		drops[1] == 0 && drops[8] > 10000,
		"1 queue drops %d, 8 queues drop %d", drops[1], drops[8])
	r.check("C1: drops monotone in queue count",
		drops[1] <= drops[2] && drops[2] <= drops[4] && drops[4] <= drops[8],
		"%d <= %d <= %d <= %d", drops[1], drops[2], drops[4], drops[8])
	r.check("C2: more queues shrink the HOL blast radius",
		p99s[8] < p99s[1],
		"p99 %0.1fµs (8 queues) < %0.1fµs (1 queue)", p99s[8], p99s[1])
	r.notef("Albatross allocates 1-8 queues per pod, proportional to cores — the balance between these extremes")
	return r
}
