package eval

import "albatross/internal/workload"

// sourceFor builds the standard experiment traffic source through the
// validated options constructor: a flow set, a rate, the canonical
// per-experiment seed offset (cfg.Seed + n, so concurrent sources in one
// experiment draw from disjoint RNG streams), and a sink. Extra options
// (packet size, Zipf skew) append after the canonical four. It replaces
// the ad-hoc &workload.Source{...} literals experiments used to spell by
// hand; a config error panics, matching the harness's setup convention.
func sourceFor(cfg Config, n uint64, flows []workload.Flow, rate workload.RateFn,
	sink func(workload.Flow, int), extra ...workload.Option) *workload.Source {
	opts := []workload.Option{
		workload.WithFlows(flows),
		workload.WithRate(rate),
		workload.WithSeed(cfg.Seed + n),
		workload.WithSink(sink),
	}
	src, err := workload.New(append(opts, extra...)...)
	if err != nil {
		panic(err)
	}
	return src
}
