package sim

import (
	"fmt"
	"sync"
	"testing"
)

// shardedHarness models the smallest owner: each shard holds one periodic
// timer (the stand-in for a node's probe grid), the control engine holds an
// arrival process, and arrivals are posted into per-shard mailboxes drained
// by an advance hook — the same protocol the cluster layer uses. Every
// execution is logged as "kind@t/shard" so runs can be compared exactly.
type shardedHarness struct {
	g    *ShardedEngine
	mail [][]Time
	next []int

	mu  sync.Mutex
	log []string
}

func newShardedHarness(shards int, period Duration) *shardedHarness {
	h := &shardedHarness{
		g:    NewShardedEngine(shards),
		mail: make([][]Time, shards),
		next: make([]int, shards),
	}
	for i := 0; i < shards; i++ {
		i := i
		eng := h.g.Shard(i)
		var tick func(any)
		tick = func(any) {
			h.record(fmt.Sprintf("tick@%d/%d", eng.Now(), i))
			eng.AfterArg(period, tick, nil)
		}
		eng.AfterArg(period, tick, nil)
	}
	h.g.SetAdvance(func(shard int, target Time) {
		eng := h.g.Shard(shard)
		for h.next[shard] < len(h.mail[shard]) {
			at := h.mail[shard][h.next[shard]]
			if at > target {
				break
			}
			h.next[shard]++
			eng.RunUntil(at)
			h.record(fmt.Sprintf("mail@%d/%d", at, shard))
		}
		eng.RunUntil(target)
	})
	return h
}

func (h *shardedHarness) record(s string) {
	h.mu.Lock()
	h.log = append(h.log, s)
	h.mu.Unlock()
}

func (h *shardedHarness) post(shard int, at Time) {
	h.mail[shard] = append(h.mail[shard], at)
}

// shardLog filters the interleaved log down to one shard's entries — the
// per-shard order is what determinism guarantees; the cross-shard
// interleaving in the slice is arbitrary (workers run in parallel).
func (h *shardedHarness) shardLog(shard int) []string {
	var out []string
	suffix := fmt.Sprintf("/%d", shard)
	for _, s := range h.log {
		if len(s) > len(suffix) && s[len(s)-len(suffix):] == suffix {
			out = append(out, s)
		}
	}
	return out
}

// TestShardedMailMergeOrder checks the core delivery invariant: each mailbox
// entry lands after every shard-local event at or before its timestamp, and
// entries with equal timestamps keep posting order.
func TestShardedMailMergeOrder(t *testing.T) {
	h := newShardedHarness(2, 100)
	// Control process: every 30ns post an arrival to shard 0 at control time.
	src := h.g.Control()
	var emit func(any)
	n := 0
	emit = func(any) {
		h.post(0, src.Now())
		n++
		if n < 10 {
			src.AfterArg(30, emit, nil)
		}
	}
	src.AfterArg(30, emit, nil)

	h.g.RunUntil(400)

	want := []string{
		"mail@30/0", "mail@60/0", "mail@90/0",
		"tick@100/0",
		"mail@120/0", "mail@150/0", "mail@180/0",
		"tick@200/0",
		"mail@210/0", "mail@240/0", "mail@270/0",
		"tick@300/0",
		"mail@300/0", // posted at t=300 by a control event: after the tick
		"tick@400/0",
	}
	got := h.shardLog(0)
	if len(got) != len(want) {
		t.Fatalf("shard 0 log = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shard 0 log[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	// Shard 1 got no mail: just its probe grid.
	if got := h.shardLog(1); len(got) != 4 {
		t.Fatalf("shard 1 log = %v, want 4 ticks", got)
	}
	if h.g.Now() != 400 {
		t.Fatalf("control clock = %v, want 400", h.g.Now())
	}
}

// TestShardedBoundaryTieOrder pins the epoch tie rule: a control event
// exactly at the boundary runs after the shard transition at that time, the
// legacy shared-engine order (the shard timer was armed earlier, so its
// sequence number is smaller).
func TestShardedBoundaryTieOrder(t *testing.T) {
	h := newShardedHarness(1, 100)
	h.g.SetBoundary(func() Time {
		// Next tick of the period-100 grid, computed from the horizon (the
		// time every shard has reached — the real owner derives this from
		// shard state, which is frozen at the horizon).
		return (h.g.horizon/100 + 1) * 100
	})
	src := h.g.Control()
	src.AtArg(100, func(any) { h.post(0, src.Now()) }, nil)
	h.g.RunUntil(150)

	want := []string{"tick@100/0", "mail@100/0"}
	got := h.shardLog(0)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("boundary tie order = %v, want %v", got, want)
	}
}

// TestShardedDeterministicAcrossShardCounts runs the same system at 1, 2,
// and 4 shards and requires identical per-component execution traces.
func TestShardedDeterministicAcrossShardCounts(t *testing.T) {
	run := func(shards int) map[int][]string {
		h := newShardedHarness(shards, 70)
		src := h.g.Control()
		n := 0
		var emit func(any)
		emit = func(any) {
			h.post(n%shards, src.Now())
			n++
			if n < 200 {
				src.AfterArg(13, emit, nil)
			}
		}
		src.AfterArg(13, emit, nil)
		h.g.SetChunk(500)
		h.g.RunUntil(3000)
		out := map[int][]string{}
		for i := 0; i < shards; i++ {
			out[i] = h.shardLog(i)
		}
		return out
	}
	// Component c at shard count k lives on shard c%k. Compare each
	// component's merged (tick, mail) stream across shard counts by
	// replaying the 1-shard run's posting pattern: with shards=1 all mail
	// lands on shard 0, so instead compare the k=2 and k=4 runs shard by
	// shard against a serial re-simulation — simplest exact check: the
	// k=2 run's shard 0 saw components {0}, and k=4's shards 0..3 split the
	// same posting sequence. Equality of per-shard logs between k=2 and
	// k=4 holds only for shards with identical component sets, so check
	// the invariants directly: mail total and tick counts.
	for _, k := range []int{1, 2, 4} {
		logs := run(k)
		mails, ticks := 0, 0
		for i := 0; i < k; i++ {
			for _, s := range logs[i] {
				if s[0] == 'm' {
					mails++
				} else {
					ticks++
				}
			}
		}
		if mails != 200 {
			t.Fatalf("k=%d delivered %d of 200 mails", k, mails)
		}
		if want := 42 * k; ticks != want {
			t.Fatalf("k=%d ran %d ticks, want %d", k, ticks, want)
		}
	}
}

// TestShardedSyncShards checks that SyncShards brings every shard exactly to
// the control clock (with pending mail delivered) and that the next epoch
// resumes cleanly.
func TestShardedSyncShards(t *testing.T) {
	h := newShardedHarness(2, 100)
	src := h.g.Control()
	src.AtArg(50, func(any) { h.post(1, src.Now()) }, nil)
	src.AtArg(130, func(any) {
		h.g.SyncShards()
		if got := h.g.Shard(0).Now(); got != 130 {
			t.Errorf("shard 0 clock after sync = %v, want 130", got)
		}
		if got := h.g.Shard(1).Now(); got != 130 {
			t.Errorf("shard 1 clock after sync = %v, want 130", got)
		}
	}, nil)
	h.g.RunUntil(250)

	want := []string{"mail@50/1", "tick@100/1", "tick@200/1"}
	got := h.shardLog(1)
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("shard 1 log = %v, want %v", got, want)
	}
}

// TestShardedStaleBoundaryPanics pins the protocol assertion: a boundary at
// or before the horizon means the owner's lookahead function went stale,
// which would stall the epoch loop forever — fail loudly instead.
func TestShardedStaleBoundaryPanics(t *testing.T) {
	g := NewShardedEngine(1)
	g.SetBoundary(func() Time { return 10 })
	g.RunUntil(10) // first epoch: boundary 10 > horizon 0, fine
	defer func() {
		if recover() == nil {
			t.Fatal("stale boundary did not panic")
		}
	}()
	g.RunUntil(20) // boundary 10 <= horizon 10: must panic
}

// TestShardedPendingConcurrent hammers Pending from a spectator goroutine
// while the epoch loop runs — the satellite-1 fix. Under -race this fails
// loudly if Pending still reads engine internals unsynchronized.
func TestShardedPendingConcurrent(t *testing.T) {
	h := newShardedHarness(4, 50)
	src := h.g.Control()
	n := 0
	var emit func(any)
	emit = func(any) {
		h.post(n%4, src.Now())
		n++
		if n < 5000 {
			src.AfterArg(7, emit, nil)
		}
	}
	src.AfterArg(7, emit, nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if h.g.Pending() < 0 {
					t.Error("negative pending count")
					return
				}
			}
		}
	}()
	h.g.RunUntil(50000)
	close(stop)
	wg.Wait()
	// All 4 probe grids stay armed forever: at least 4 live timers remain.
	if p := h.g.Pending(); p < 4 {
		t.Fatalf("pending after run = %d, want >= 4", p)
	}
}

// TestEngineNextEventTime covers the peek used by the epoch batch loop,
// including lazy-cancelled heap heads.
func TestEngineNextEventTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty engine reported a next event")
	}
	tm := e.AfterArg(10, func(any) {}, nil)
	e.AfterArg(20, func(any) {}, nil)
	if at, ok := e.NextEventTime(); !ok || at != 10 {
		t.Fatalf("next = %v,%v, want 10,true", at, ok)
	}
	tm.Stop()
	if at, ok := e.NextEventTime(); !ok || at != 20 {
		t.Fatalf("next after cancel = %v,%v, want 20,true", at, ok)
	}
	e.Step()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("drained engine reported a next event")
	}
}

// TestEnginePendingAtomicMirror checks the shared-mode mirror tracks the
// live count through schedule, cancel, and execution.
func TestEnginePendingAtomicMirror(t *testing.T) {
	e := NewEngine()
	a := e.AfterArg(10, func(any) {}, nil)
	e.markShared()
	if got := e.Pending(); got != 1 {
		t.Fatalf("pending after markShared = %d, want 1", got)
	}
	b := e.AfterArg(20, func(any) {}, nil)
	if got := e.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	a.Stop()
	if got := e.Pending(); got != 1 {
		t.Fatalf("pending after stop = %d, want 1", got)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("pending after run = %d, want 0", got)
	}
	_ = b
}
