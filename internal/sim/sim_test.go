package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO at %d: %v", i, v)
		}
	}
}

func TestEngineAfterChain(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(100, tick)
		}
	}
	e.After(100, tick)
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 1000 {
		t.Fatalf("clock = %v, want 1000", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := []Time{}
	for _, at := range []Time{100, 200, 300, 400} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(250)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 250 {
		t.Fatalf("clock = %v, want 250", e.Now())
	}
	e.RunUntil(1000)
	if len(fired) != 4 {
		t.Fatalf("fired %d events, want 4", len(fired))
	}
	// Clock advances to deadline even with an empty queue.
	if e.Now() != 1000 {
		t.Fatalf("clock = %v, want 1000", e.Now())
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(50, func() { n++ })
	e.At(150, func() { n++ })
	e.RunFor(100)
	if n != 1 || e.Now() != 100 {
		t.Fatalf("n=%d now=%v, want 1, 100", n, e.Now())
	}
	e.RunFor(100)
	if n != 2 || e.Now() != 200 {
		t.Fatalf("n=%d now=%v, want 2, 200", n, e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(100, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine()
	tm := e.At(10, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(10, func() { n++; e.Stop() })
	e.At(20, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("n = %d, want 1 (Stop should halt Run)", n)
	}
	e.Run()
	if n != 2 {
		t.Fatalf("n = %d, want 2 after resuming", n)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestDurationConversions(t *testing.T) {
	if FromStd(3*time.Microsecond) != 3*Microsecond {
		t.Error("FromStd mismatch")
	}
	if (2 * Millisecond).Std() != 2*time.Millisecond {
		t.Error("Std mismatch")
	}
	if (1500 * Microsecond).Seconds() != 0.0015 {
		t.Error("Seconds mismatch")
	}
	if (2500 * Nanosecond).Micros() != 2.5 {
		t.Error("Micros mismatch")
	}
	tm := Time(0).Add(5 * Second)
	if tm.Sub(Time(2*Second)) != 3*Second {
		t.Error("Sub mismatch")
	}
	if tm.Seconds() != 5 {
		t.Error("Time.Seconds mismatch")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverge")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds agree on %d/1000 draws", same)
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(7)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for i, c := range counts {
		if c < n/buckets*8/10 || c > n/buckets*12/10 {
			t.Fatalf("bucket %d count %d outside ±20%% of %d", i, c, n/buckets)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	mean := 50 * Microsecond
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean)) > 0.02*float64(mean) {
		t.Fatalf("Exp mean = %v, want ~%v", Duration(got), mean)
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(std-3) > 0.1 {
		t.Fatalf("Norm stddev = %v, want ~3", std)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(19)
	z := NewZipf(r, 1000, 1.1)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("Zipf not skewed: c0=%d c10=%d c100=%d", counts[0], counts[10], counts[100])
	}
	// Rank 0 should dominate: with s=1.1, n=1000 it holds >10% of mass.
	if counts[0] < n/10 {
		t.Fatalf("rank-0 count %d too low", counts[0])
	}
}

func TestZipfBoundsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		z := NewZipf(NewRand(seed), n, 1.0)
		for i := 0; i < 200; i++ {
			v := z.Next()
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for any schedule of (time, id) events, execution respects
// time-major, insertion-minor order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, tt := range times {
			at := Time(tt)
			seq := i
			e.At(at, func() { fired = append(fired, rec{at, seq}) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			prev, cur := fired[i-1], fired[i]
			if cur.at < prev.at {
				return false
			}
			if cur.at == prev.at && cur.seq < prev.seq {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerActive(t *testing.T) {
	e := NewEngine()
	var zero Timer
	if zero.Active() {
		t.Fatal("zero Timer reports active")
	}
	tm := e.At(10, func() {})
	if !tm.Active() {
		t.Fatal("pending timer not active")
	}
	tm.Stop()
	if tm.Active() {
		t.Fatal("stopped timer still active")
	}
	tm2 := e.At(20, func() {})
	e.Run()
	if tm2.Active() {
		t.Fatal("fired timer still active")
	}
}

// Pending must stay exact through the lazy-cancellation path: cancelled
// events linger in the heap until popped or compacted, but the live counter
// already excludes them.
func TestPendingWithLazyCancellation(t *testing.T) {
	e := NewEngine()
	timers := make([]Timer, 1000)
	for i := range timers {
		timers[i] = e.At(Time(1000+i), func() {})
	}
	if e.Pending() != 1000 {
		t.Fatalf("pending = %d, want 1000", e.Pending())
	}
	for i := 0; i < 600; i++ {
		timers[i].Stop()
	}
	if e.Pending() != 400 {
		t.Fatalf("pending = %d after cancelling 600, want 400", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain, want 0", e.Pending())
	}
}

// Cancelling everything must compact rather than grow the heap without
// bound, and the engine must keep working afterwards.
func TestCancellationStormCompacts(t *testing.T) {
	e := NewEngine()
	for round := 0; round < 100; round++ {
		timers := make([]Timer, 100)
		for i := range timers {
			timers[i] = e.At(Time(1_000_000+round), func() {})
		}
		for _, tm := range timers {
			if !tm.Stop() {
				t.Fatal("Stop on pending timer returned false")
			}
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
	n := 0
	e.At(2_000_000, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("event after storm did not fire")
	}
}

// The scheduling hot path must be allocation-free in steady state: events
// come from the engine pool, timers are value handles, and AfterArg carries
// the callback argument without a closure.
func TestAfterArgZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func(any) {}
	// Warm the event pool and heap capacity.
	for i := 0; i < 64; i++ {
		e.AfterArg(Duration(i), fn, nil)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.AfterArg(10, fn, nil)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("AfterArg+Step allocates %v per op, want 0", allocs)
	}
}

// After with a hoisted (not per-call) closure is also allocation-free: the
// func value converts to the event argument without boxing.
func TestAfterZeroAllocWithHoistedFn(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(Duration(i), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(10, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("After+Step allocates %v per op, want 0", allocs)
	}
}

// Schedule/cancel churn (the PLB timer pattern) must also be free of
// steady-state allocations even though cancelled events ride the heap.
func TestTimerChurnZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func(any) {}
	for i := 0; i < 256; i++ {
		e.AfterArg(Duration(i), fn, nil)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		tm := e.AfterArg(1000, fn, nil)
		tm.Stop()
		e.AfterArg(10, fn, nil)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule/cancel churn allocates %v per op, want 0", allocs)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(21)
	for _, n := range []int{1, 2, 3, 7, 10, 1000, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 100; j++ {
			e.At(Time(j), func() {})
		}
		e.Run()
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
