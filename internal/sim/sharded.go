package sim

import (
	"fmt"
	"sync"
)

// ShardedEngine runs one control engine plus N shard engines under a
// conservative parallel discrete-event protocol, producing byte-identical
// results at any shard count.
//
// The model: the owner partitions its simulated components across the shard
// engines so that shard-internal events never touch another shard's state.
// Everything that *couples* shards — workload arrival processes, fault
// injectors, cross-shard routing decisions — lives on the control engine.
// Execution proceeds in epochs:
//
//  1. Compute the lookahead horizon: the earliest future virtual time at
//     which any shard could change state visible to the control plane (the
//     owner's boundary function — for a cluster, the next possible BGP
//     route transition). Shard state is frozen below that horizon, so
//     control events strictly before it may read it without advancing the
//     shards.
//  2. Batch-execute control events up to the epoch target (min of horizon,
//     deadline, and a chunk cap that bounds mailbox growth). A control
//     event that must touch shard state directly (a fault injection) calls
//     SyncShards first, which serially advances every shard to the control
//     clock and invalidates the horizon.
//  3. Advance all shards in parallel to the epoch target. The owner's
//     advance function interleaves each shard's mailbox of buffered
//     cross-shard injections with its event loop in deterministic
//     (timestamp, control order) merge order.
//
// Tie order at the epoch boundary mirrors the single-engine semantics:
// shard-internal events at time T run before a control-plane injection at
// T, because shard events at T were armed at least one probe/service
// interval earlier and therefore carry smaller sequence numbers on the
// legacy shared engine.
type ShardedEngine struct {
	control *Engine
	shards  []*Engine

	// advance moves shard i to target, draining its mailbox in merge order.
	advance func(shard int, target Time)
	// boundary returns the earliest future cross-visible shard transition.
	boundary func() Time
	// chunk caps an epoch's length so mailboxes stay bounded even when the
	// horizon is far away (an all-healthy fleet has no upcoming transition).
	chunk Duration

	// horizon is the virtual time every shard has reached.
	horizon Time
	// invalid is set by SyncShards/Invalidate: the cached boundary is stale
	// (a control event mutated shard state) and must be recomputed.
	invalid bool
}

// DefaultShardChunk caps epoch length (and so per-epoch mailbox growth)
// when no cross-shard transition is on the horizon.
const DefaultShardChunk = 5 * Millisecond

// NewShardedEngine creates a control engine plus n shard engines. All n+1
// engines report Pending through atomic mirrors so progress is observable
// from any goroutine mid-run.
func NewShardedEngine(n int) *ShardedEngine {
	if n < 1 {
		panic(fmt.Sprintf("sim: ShardedEngine needs at least 1 shard, got %d", n))
	}
	g := &ShardedEngine{
		control: NewEngine(),
		shards:  make([]*Engine, n),
		chunk:   DefaultShardChunk,
	}
	g.control.markShared()
	for i := range g.shards {
		g.shards[i] = NewEngine()
		g.shards[i].markShared()
	}
	return g
}

// Control returns the control engine: the clock the owner's coordinator
// state lives on (workload sources, fault schedules, cross-shard routing).
func (g *ShardedEngine) Control() *Engine { return g.control }

// NumShards returns the shard count.
func (g *ShardedEngine) NumShards() int { return len(g.shards) }

// Shard returns shard i's engine.
func (g *ShardedEngine) Shard(i int) *Engine { return g.shards[i] }

// Now returns the control clock.
func (g *ShardedEngine) Now() Time { return g.control.Now() }

// Pending sums live queued events across the control and shard engines. It
// reads atomic mirrors, so it is safe from any goroutine mid-run.
func (g *ShardedEngine) Pending() int {
	n := g.control.Pending()
	for _, s := range g.shards {
		n += s.Pending()
	}
	return n
}

// SetAdvance installs the owner's shard-advance function. It is called once
// per shard per epoch — concurrently across shards, never concurrently for
// one shard — and must (a) deliver every buffered cross-shard injection
// with timestamp <= target in merge order, interleaved with RunUntil to the
// injection's timestamp, and (b) finish with RunUntil(target). Without one,
// shards advance with a bare RunUntil.
func (g *ShardedEngine) SetAdvance(fn func(shard int, target Time)) { g.advance = fn }

// SetBoundary installs the owner's lookahead-horizon function: the earliest
// future virtual time at which any shard's control-visible state could
// change (TimeMax when none). Without one the horizon is unbounded and
// epochs are paced by the chunk cap alone.
func (g *ShardedEngine) SetBoundary(fn func() Time) { g.boundary = fn }

// SetChunk caps epoch length; d <= 0 removes the cap.
func (g *ShardedEngine) SetChunk(d Duration) { g.chunk = d }

// Invalidate marks the cached lookahead horizon stale. Control-plane events
// that change shard timing (fault injections) must call it — SyncShards
// does so automatically.
func (g *ShardedEngine) Invalidate() { g.invalid = true }

// SyncShards serially advances every shard to the control clock and
// invalidates the horizon. A control event must call it before reading or
// mutating shard-owned state (node fault injection, pod lifecycle ops), so
// the mutation lands at exactly the control time with every earlier
// shard-local event already executed — the same interleaving the legacy
// shared engine produces.
func (g *ShardedEngine) SyncShards() {
	now := g.control.Now()
	if now < g.horizon {
		panic(fmt.Sprintf("sim: control clock %v behind shard horizon %v", now, g.horizon))
	}
	g.advanceAll(now, false)
	g.invalid = true
}

// nextBoundary recomputes the lookahead horizon and asserts progress: a
// boundary at or before the horizon would stall the epoch loop, and since
// every shard has already executed its events through the horizon it can
// only be a stale value — a bug in the owner's boundary function.
func (g *ShardedEngine) nextBoundary() Time {
	if g.boundary == nil {
		return TimeMax
	}
	b := g.boundary()
	if b <= g.horizon {
		panic(fmt.Sprintf("sim: boundary %v not ahead of shard horizon %v", b, g.horizon))
	}
	return b
}

// advanceAll moves every shard to target — in parallel at the epoch barrier,
// serially inside SyncShards (rare, and the control event needs the shards
// quiescent immediately after). target == horizon still drains mailboxes:
// control events processed at the horizon may have posted same-timestamp
// injections.
func (g *ShardedEngine) advanceAll(target Time, parallel bool) {
	if parallel && len(g.shards) > 1 {
		var wg sync.WaitGroup
		wg.Add(len(g.shards))
		for i := range g.shards {
			go func(i int) {
				defer wg.Done()
				g.advanceShard(i, target)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range g.shards {
			g.advanceShard(i, target)
		}
	}
	if target > g.horizon {
		g.horizon = target
	}
}

func (g *ShardedEngine) advanceShard(i int, target Time) {
	if g.advance != nil {
		g.advance(i, target)
		return
	}
	g.shards[i].RunUntil(target)
}

// RunUntil advances the whole system — control engine and all shards — to
// the deadline under the epoch protocol. Byte-identical to running the same
// components on one shared engine, at any shard count.
func (g *ShardedEngine) RunUntil(deadline Time) {
	for g.horizon < deadline {
		bound := g.nextBoundary()
		target := deadline
		if bound < target {
			target = bound
		}
		if g.chunk > 0 {
			if ce := g.horizon.Add(g.chunk); ce < target {
				target = ce
			}
		}
		// Batch control events up to the target. Events exactly at the
		// boundary wait for the next epoch: the shard transition at the
		// boundary executes first, matching the legacy tie order (the
		// transition's timer was armed earlier, so its sequence number is
		// smaller on a shared engine).
		for {
			t, ok := g.control.NextEventTime()
			if !ok || t > target || t >= bound {
				break
			}
			g.control.Step()
			if g.invalid {
				// The event mutated shard timing (fault injection): the
				// horizon may have moved closer. Re-shrink the target; all
				// events already executed are at or before the sync point,
				// so they remain valid.
				g.invalid = false
				bound = g.nextBoundary()
				if bound < target {
					target = bound
				}
			}
		}
		g.advanceAll(target, true)
	}
	// Control events exactly at the deadline (deadline == boundary case)
	// run after the shards arrive, then any same-timestamp injections they
	// posted are delivered so the run drains exactly like the shared
	// engine's inclusive RunUntil.
	g.control.RunUntil(deadline)
	g.advanceAll(deadline, true)
}

// RunFor advances the system by d virtual nanoseconds.
func (g *ShardedEngine) RunFor(d Duration) { g.RunUntil(g.control.Now().Add(d)) }
