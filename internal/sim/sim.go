// Package sim provides a deterministic discrete-event simulation engine.
//
// All Albatross timing experiments run on virtual time: an int64 nanosecond
// clock advanced by an event heap. Components schedule callbacks at absolute
// or relative virtual times; the engine executes them in (time, sequence)
// order so runs are fully deterministic for a given seed.
//
// The engine is intentionally single-goroutine: parallelism in the modelled
// system (CPU cores, pipeline stages) is expressed as concurrent *virtual*
// activities, not OS concurrency, which keeps experiments reproducible.
// Harness-level parallelism (internal/eval.RunAll) runs many engines side
// by side, one per experiment, never sharing one engine across goroutines.
//
// The scheduling hot path is allocation-free in steady state: events are
// recycled through a free list, the heap is a flat 4-ary array, timers are
// value handles validated by generation counters, and cancellation is lazy
// (dead events are dropped on pop, compacted only when they dominate the
// heap). Use AtArg/AfterArg with a non-capturing func and an arg to avoid
// the caller-side closure allocation that At/After require.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time package naming.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// TimeMax is the largest representable virtual time; boundary functions
// return it to mean "no upcoming transition".
const TimeMax = Time(math.MaxInt64)

// FromStd converts a time.Duration to a sim.Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Std converts a sim.Duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string { return time.Duration(d).String() }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the timestamp as floating-point seconds since start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback. Events are pooled: after firing or
// compaction they return to the engine's free list and are reused, with gen
// bumped so stale Timer handles cannot touch the reincarnation.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	fn   func(any)
	arg  any
	gen  uint32
	dead bool // cancelled; dropped lazily on pop or compaction
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now  Time
	seq  uint64
	heap []*event // flat 4-ary heap ordered by (at, seq)
	free []*event // recycled events
	live int      // heap entries not marked dead
	dead int      // heap entries marked dead (lazy cancellation debt)

	stopped bool
	// executed counts events processed; useful to detect livelock in tests.
	executed uint64

	// shared marks an engine attached to a ShardedEngine: every live-count
	// change is mirrored into pendingAtomic so Pending() can be read from
	// other goroutines (coordinator, monitors) without racing the shard
	// worker. Off the sharded path the mirror is never touched, so the
	// single-engine hot path pays one predicted-not-taken branch.
	shared        bool
	pendingAtomic atomic.Int64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events processed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// SchedSeq returns the sequence number the next scheduled event will get.
// Because seq increments on every AtArg/AfterArg, comparing SchedSeq across
// two points in a callback detects whether anything was scheduled in between
// — the burst dispatcher uses it to decide if an open burst can still absorb
// a packet without reordering against interleaved events.
func (e *Engine) SchedSeq() uint64 { return e.seq }

// Timer is a value handle to a scheduled event; it can be cancelled. The
// zero Timer is inert: Stop reports false. Handles stay valid after the
// event fires (Stop just reports false) because the generation counter
// detects the pooled event's reuse.
type Timer struct {
	e   *Engine
	ev  *event
	gen uint32
}

// Stop cancels the timer in O(1) by marking the event dead; the heap drops
// it lazily. It reports whether the event had not yet fired.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	t.ev.arg = nil // free the reference now; the shell stays queued
	t.e.live--
	if t.e.shared {
		t.e.pendingAtomic.Store(int64(t.e.live))
	}
	t.e.dead++
	t.e.maybeCompact()
	return true
}

// Active reports whether the timer is scheduled and not yet fired or
// stopped.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.dead
}

func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a popped event to the free list. Bumping gen invalidates
// outstanding Timer handles before the event is reused.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.arg = nil
	ev.dead = false
	e.free = append(e.free, ev)
}

// callNullary adapts a plain func() to the engine's func(any) calling
// convention; the closure itself is the arg, so no extra wrapper allocates.
func callNullary(arg any) { arg.(func())() }

// At schedules fn at absolute virtual time at. Scheduling in the past is an
// error in the model; it panics to surface bugs early.
func (e *Engine) At(at Time, fn func()) Timer {
	return e.AtArg(at, callNullary, fn)
}

// After schedules fn d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) Timer {
	return e.AfterArg(d, callNullary, fn)
}

// AtArg schedules fn(arg) at absolute virtual time at. With a non-capturing
// fn this amortizes to zero allocations: the event comes from the free list
// and the Timer handle is a value.
func (e *Engine) AtArg(at Time, fn func(any), arg any) Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := e.alloc()
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	ev.arg = arg
	e.seq++
	e.heap = append(e.heap, ev)
	e.siftUp(len(e.heap) - 1)
	e.live++
	if e.shared {
		e.pendingAtomic.Store(int64(e.live))
	}
	return Timer{e: e, ev: ev, gen: ev.gen}
}

// AfterArg schedules fn(arg) d nanoseconds from now. Negative d panics.
func (e *Engine) AfterArg(d Duration, fn func(any), arg any) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.AtArg(e.now.Add(d), fn, arg)
}

// less orders heap entries by (at, seq).
func (e *Engine) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	ev := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !e.less(ev, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ev := h[i]
	for {
		c := i<<2 + 1 // first of up to four children
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if e.less(h[j], h[min]) {
				min = j
			}
		}
		if !e.less(h[min], ev) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = ev
}

// pop removes and returns the minimum event (live or dead).
func (e *Engine) pop() *event {
	h := e.heap
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	e.heap = h[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return ev
}

// maybeCompact sweeps dead events out of the heap once they outnumber live
// ones (and there are enough to be worth a pass), bounding both memory and
// the dead-skip work on pop.
func (e *Engine) maybeCompact() {
	if e.dead <= 64 || e.dead <= e.live {
		return
	}
	w := 0
	for _, ev := range e.heap {
		if ev.dead {
			e.recycle(ev)
			continue
		}
		e.heap[w] = ev
		w++
	}
	for i := w; i < len(e.heap); i++ {
		e.heap[i] = nil
	}
	e.heap = e.heap[:w]
	e.dead = 0
	// Rebuild heap order bottom-up.
	for i := (w - 2) >> 2; i >= 0; i-- {
		e.siftDown(i)
	}
}

// Step executes the next pending event, advancing the clock. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := e.pop()
		if ev.dead {
			e.dead--
			e.recycle(ev)
			continue
		}
		e.live--
		if e.shared {
			e.pendingAtomic.Store(int64(e.live))
		}
		e.now = ev.at
		e.executed++
		fn, arg := ev.fn, ev.arg
		// Recycle before the callback so fn can reuse the slot when it
		// schedules follow-up work.
		e.recycle(ev)
		fn(arg)
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.heap) == 0 {
			break
		}
		next := e.heap[0]
		if next.dead {
			e.dead--
			e.recycle(e.pop())
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d virtual nanoseconds.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Stop halts Run/RunUntil after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of live queued events. It is O(1): the engine
// maintains the count across push/pop/cancel. On an engine attached to a
// ShardedEngine the count is read from an atomic mirror, so callers on
// other goroutines (progress monitors, the coordinator) never race the
// shard worker.
func (e *Engine) Pending() int {
	if e.shared {
		return int(e.pendingAtomic.Load())
	}
	return e.live
}

// markShared switches Pending() to the atomic mirror; called when the
// engine is attached to a ShardedEngine.
func (e *Engine) markShared() {
	e.shared = true
	e.pendingAtomic.Store(int64(e.live))
}

// NextEventTime returns the timestamp of the earliest live pending event,
// skipping (and reclaiming) cancelled shells at the heap root.
func (e *Engine) NextEventTime() (Time, bool) {
	for len(e.heap) > 0 {
		if ev := e.heap[0]; !ev.dead {
			return ev.at, true
		}
		e.dead--
		e.recycle(e.pop())
	}
	return 0, false
}

// Rand is a deterministic pseudo-random source for simulation components.
// It is a 64-bit SplitMix64/xorshift* generator: tiny, fast, and stable
// across Go releases (unlike math/rand's unexported algorithms, whose
// stream could change and silently alter committed experiment outputs).
type Rand struct {
	state uint64
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{state: seed}
	// Avoid the all-zero fixed point and decorrelate small seeds.
	r.state = splitmix64(&r.state)
	if r.state == 0 {
		r.state = 0x9e3779b97f4a7c15
	}
	return r
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits (xorshift64*).
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
//
// The draw uses Lemire's multiply-shift reduction — the high 64 bits of a
// 128-bit product — instead of `%`, keeping the hot path division-free.
// Bias is at most n/2^64, far below the old modulo reduction's n-dependent
// bias and invisible at any simulated scale.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	hi, _ := bits.Mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed duration with the given mean.
func (r *Rand) Exp(mean Duration) Duration {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return Duration(-float64(mean) * math.Log(u))
}

// Norm returns a normally distributed value (Box-Muller).
func (r *Rand) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// LogNormal returns a log-normally distributed value with the given
// parameters of the underlying normal distribution.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Perm fills a permutation of [0, n) deterministically (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws from a Zipf distribution over [0, n) with exponent s > 0 using
// inverse-CDF on a precomputed table. Build one with NewZipf.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf constructs a Zipf sampler over n ranks with exponent s.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next draws a rank in [0, n); rank 0 is the most popular.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
