// Package sim provides a deterministic discrete-event simulation engine.
//
// All Albatross timing experiments run on virtual time: an int64 nanosecond
// clock advanced by an event heap. Components schedule callbacks at absolute
// or relative virtual times; the engine executes them in (time, sequence)
// order so runs are fully deterministic for a given seed.
//
// The engine is intentionally single-goroutine: parallelism in the modelled
// system (CPU cores, pipeline stages) is expressed as concurrent *virtual*
// activities, not OS concurrency, which keeps experiments reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time package naming.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// FromStd converts a time.Duration to a sim.Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Std converts a sim.Duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string { return time.Duration(d).String() }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the timestamp as floating-point seconds since start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	fn   func()
	dead bool // cancelled
	idx  int  // heap index, -1 once popped
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	// Executed counts events processed; useful to detect livelock in tests.
	executed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events processed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Timer is a handle to a scheduled event; it can be cancelled.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the event had not yet fired.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead || t.ev.idx == -1 {
		return false
	}
	t.ev.dead = true
	return true
}

// At schedules fn at absolute virtual time at. Scheduling in the past is an
// error in the model; it panics to surface bugs early.
func (e *Engine) At(at Time, fn func()) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Step executes the next pending event, advancing the clock. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.events) == 0 {
			break
		}
		// Peek cheapest without popping dead events permanently out of order.
		next := e.events[0]
		if next.dead {
			heap.Pop(&e.events)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d virtual nanoseconds.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Stop halts Run/RunUntil after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of live queued events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Rand is a deterministic pseudo-random source for simulation components.
// It is a 64-bit SplitMix64/xorshift* generator: tiny, fast, and stable
// across Go releases (unlike math/rand's unexported algorithms, whose
// stream could change and silently alter committed experiment outputs).
type Rand struct {
	state uint64
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{state: seed}
	// Avoid the all-zero fixed point and decorrelate small seeds.
	r.state = splitmix64(&r.state)
	if r.state == 0 {
		r.state = 0x9e3779b97f4a7c15
	}
	return r
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits (xorshift64*).
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed duration with the given mean.
func (r *Rand) Exp(mean Duration) Duration {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return Duration(-float64(mean) * math.Log(u))
}

// Norm returns a normally distributed value (Box-Muller).
func (r *Rand) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// LogNormal returns a log-normally distributed value with the given
// parameters of the underlying normal distribution.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Perm fills a permutation of [0, n) deterministically (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws from a Zipf distribution over [0, n) with exponent s > 0 using
// inverse-CDF on a precomputed table. Build one with NewZipf.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf constructs a Zipf sampler over n ranks with exponent s.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next draws a rank in [0, n); rank 0 is the most popular.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
