// Package stats provides the measurement primitives used by every
// Albatross experiment: log-linear latency histograms with percentile
// extraction, streaming mean/variance accumulators, counters, and fixed
// time-series buffers for utilization traces.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Histogram is a log-linear histogram in the style of HdrHistogram: values
// are bucketed by their magnitude (power-of-two exponent) and a fixed number
// of linear sub-buckets per magnitude. It records int64 values (nanoseconds
// in most Albatross experiments) with bounded relative error.
type Histogram struct {
	subBits uint // sub-buckets per magnitude = 1<<subBits
	buckets []uint64
	count   uint64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram returns a histogram with 1<<subBits linear sub-buckets per
// power-of-two magnitude (relative error <= 1/2^subBits). subBits in [1, 12].
func NewHistogram(subBits uint) *Histogram {
	if subBits < 1 || subBits > 12 {
		panic(fmt.Sprintf("stats: subBits %d out of [1,12]", subBits))
	}
	// 64 magnitudes cover the full int64 range.
	return &Histogram{
		subBits: subBits,
		buckets: make([]uint64, 64<<subBits),
		min:     math.MaxInt64,
		max:     math.MinInt64,
	}
}

// NewLatencyHistogram returns the standard histogram used for latency
// measurements (256 sub-buckets, <0.4% relative error).
func NewLatencyHistogram() *Histogram { return NewHistogram(8) }

// index maps a non-negative value to its bucket index.
func (h *Histogram) index(v int64) int {
	if v < 0 {
		v = 0
	}
	sub := int64(1) << h.subBits
	if v < sub {
		return int(v)
	}
	// magnitude = position of the highest set bit above subBits.
	mag := 63 - bits.LeadingZeros64(uint64(v)) - int(h.subBits)
	subIdx := (v >> uint(mag)) & (sub - 1)
	return (mag+1)<<h.subBits + int(subIdx)
}

// lowerBound returns the smallest value that maps to bucket i.
func (h *Histogram) lowerBound(i int) int64 {
	sub := 1 << h.subBits
	if i < sub*2 {
		return int64(i)
	}
	mag := i>>h.subBits - 1
	subIdx := i & (sub - 1)
	return (int64(sub) + int64(subIdx)) << uint(mag)
}

// Record adds a value to the histogram. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	i := h.index(v)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordZero adds a zero-valued sample. It is Record(0) minus the bucket
// index computation — the fast path for synchronous pipeline stages, whose
// residency is always zero virtual time.
func (h *Histogram) RecordZero() {
	h.buckets[0]++
	h.count++
	if h.min > 0 {
		h.min = 0
	}
	if h.max < 0 {
		h.max = 0
	}
}

// RecordN adds n samples of the same value — one bucket-index computation
// for the whole batch. A burst of packets entering a stage at one virtual
// time shares a single residency value, so the burst path records it once.
func (h *Histogram) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	i := h.index(v)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i] += n
	h.count += n
	h.sum += v * int64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// SubBits returns the histogram's precision parameter (sub-buckets per
// magnitude = 1<<SubBits).
func (h *Histogram) SubBits() uint { return h.subBits }

// RelativeError returns the worst-case relative quantization error of a
// recorded value: 1/2^subBits.
func (h *Histogram) RelativeError() float64 { return 1 / float64(uint64(1)<<h.subBits) }

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest recorded value, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 when empty.
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the q-quantile (q in [0,1]). It returns 0
// when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			lb := h.lowerBound(i)
			if lb < h.min {
				lb = h.min
			}
			if lb > h.max {
				lb = h.max
			}
			return lb
		}
	}
	return h.max
}

// FractionAbove returns the fraction of recorded values strictly greater
// than v (within bucket resolution).
func (h *Histogram) FractionAbove(v int64) float64 {
	if h.count == 0 {
		return 0
	}
	idx := h.index(v)
	var above uint64
	for i := idx + 1; i < len(h.buckets); i++ {
		above += h.buckets[i]
	}
	return float64(above) / float64(h.count)
}

// FractionBetween returns the fraction of values in (lo, hi].
func (h *Histogram) FractionBetween(lo, hi int64) float64 {
	return h.FractionAbove(lo) - h.FractionAbove(hi)
}

// NumBuckets returns the length of the histogram's bucket array — the
// size a BucketSnapshot destination must have.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// BucketSnapshot copies the histogram's raw bucket counts into dst,
// growing it if needed, and returns the slice. A snapshot taken before a
// batch of Records and passed to DeltaCount/DeltaQuantile later yields
// statistics over exactly the samples recorded in between — the
// primitive behind per-tick timeline quantiles.
func (h *Histogram) BucketSnapshot(dst []uint64) []uint64 {
	if cap(dst) < len(h.buckets) {
		dst = make([]uint64, len(h.buckets))
	}
	dst = dst[:len(h.buckets)]
	copy(dst, h.buckets)
	return dst
}

// DeltaCount returns the number of samples recorded since prev, a bucket
// snapshot of this histogram taken earlier with BucketSnapshot.
func (h *Histogram) DeltaCount(prev []uint64) uint64 {
	if len(prev) != len(h.buckets) {
		panic(fmt.Sprintf("stats: bucket snapshot length %d != %d", len(prev), len(h.buckets)))
	}
	var total uint64
	for i, c := range h.buckets {
		total += c - prev[i]
	}
	return total
}

// DeltaQuantile estimates the q-quantile over the samples recorded since
// prev (an earlier BucketSnapshot of this histogram). It returns 0 when no
// samples were recorded in between. Values carry the histogram's bucket
// resolution; unlike Quantile there is no min/max clamp, because the delta
// window's extremes are not tracked.
func (h *Histogram) DeltaQuantile(q float64, prev []uint64) int64 {
	if len(prev) != len(h.buckets) {
		panic(fmt.Sprintf("stats: bucket snapshot length %d != %d", len(prev), len(h.buckets)))
	}
	var total uint64
	for i, c := range h.buckets {
		total += c - prev[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c - prev[i]
		if cum >= target {
			return h.lowerBound(i)
		}
	}
	return h.lowerBound(len(h.buckets) - 1)
}

// Merge adds all samples of other into h. Histograms must share subBits.
func (h *Histogram) Merge(other *Histogram) {
	if h.subBits != other.subBits {
		panic("stats: merging histograms with different precision")
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = math.MinInt64
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d p999=%d max=%d",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max())
}

// Welford is a streaming mean/variance accumulator (Welford's algorithm).
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records a sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// Series is an append-only time series of (t, v) points with summary
// helpers; used for utilization traces (Fig. 10) and rate plots (Fig. 13/14).
type Series struct {
	T []float64
	V []float64
}

// Append adds a point.
func (s *Series) Append(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.V) }

// Mean returns the mean of the values, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.V) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// Max returns the maximum value, or 0 when empty.
func (s *Series) Max() float64 {
	if len(s.V) == 0 {
		return 0
	}
	m := s.V[0]
	for _, v := range s.V[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Stddev returns the population standard deviation of the values.
func (s *Series) Stddev() float64 {
	if len(s.V) == 0 {
		return 0
	}
	mean := s.Mean()
	var sum float64
	for _, v := range s.V {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.V)))
}

// StddevAcross computes, pointwise, the standard deviation across several
// aligned series (e.g. per-core utilization) and returns it as a new series.
// All series must have the same length.
func StddevAcross(series []*Series) *Series {
	out := &Series{}
	if len(series) == 0 {
		return out
	}
	n := series[0].Len()
	for _, s := range series {
		if s.Len() != n {
			panic("stats: StddevAcross over misaligned series")
		}
	}
	for i := 0; i < n; i++ {
		var w Welford
		for _, s := range series {
			w.Add(s.V[i])
		}
		out.Append(series[0].T[i], w.Stddev())
	}
	return out
}

// Percentile returns the p-th percentile (p in [0,100]) of a float slice
// by sorting a copy (exact, for small sample sets).
func Percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	c := append([]float64(nil), vals...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Counter is a monotonically increasing event counter with a name.
type Counter struct {
	Name string
	N    uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.N++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.N += n }

// Table renders aligned text tables for experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < width[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
