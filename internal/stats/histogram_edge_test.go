package stats

import (
	"math"
	"testing"
)

// The metrics export path merges and quantiles histograms from arbitrary
// sources; these tests pin the edge behavior it leans on.

func TestHistogramMergeRejectsDifferentPrecision(t *testing.T) {
	h6, h8 := NewHistogram(6), NewHistogram(8)
	h8.Record(100)
	defer func() {
		if recover() == nil {
			t.Fatal("merging histograms with different subBits did not panic")
		}
	}()
	h6.Merge(h8)
}

func TestHistogramMergeEmptyKeepsMinMax(t *testing.T) {
	h := NewHistogram(8)
	h.Record(10)
	h.Record(1000)
	h.Merge(NewHistogram(8)) // merging an empty histogram must not disturb min/max
	if h.Min() != 10 || h.Max() != 1000 || h.Count() != 2 {
		t.Fatalf("after empty merge: min=%d max=%d count=%d", h.Min(), h.Max(), h.Count())
	}
	empty := NewHistogram(8)
	empty.Merge(h)
	if empty.Min() != 10 || empty.Max() != 1000 || empty.Count() != 2 {
		t.Fatalf("merge into empty: min=%d max=%d count=%d", empty.Min(), empty.Max(), empty.Count())
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(4)
	for _, q := range []float64{-1, 0, 0.5, 0.999, 1, 2} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %d, want 0", q, v)
		}
	}
	if h.RelativeError() != 1.0/16 {
		t.Fatalf("RelativeError = %v, want 1/16", h.RelativeError())
	}
	if h.SubBits() != 4 {
		t.Fatalf("SubBits = %d, want 4", h.SubBits())
	}
}

func TestHistogramTopBucketSaturates(t *testing.T) {
	h := NewHistogram(1)
	h.Record(math.MaxInt64) // must land in the last bucket, not index out of range
	h.Record(math.MaxInt64 - 1)
	if h.Count() != 2 || h.Max() != math.MaxInt64 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	// Both samples share the saturated bucket; the quantile reports the
	// bucket's lower bound clamped into [min, max] — never out of range.
	if q := h.Quantile(1); q < h.Min() || q > h.Max() {
		t.Fatalf("p100 = %d outside [min, max] = [%d, %d]", q, h.Min(), h.Max())
	}
	// A saturated top bucket must still merge cleanly.
	other := NewHistogram(1)
	other.Record(math.MaxInt64)
	h.Merge(other)
	if h.Count() != 3 {
		t.Fatalf("post-merge count = %d", h.Count())
	}
}

func TestHistogramRecordZeroMatchesRecord(t *testing.T) {
	a, b := NewHistogram(8), NewHistogram(8)
	a.Record(0)
	a.Record(0)
	a.Record(77)
	b.RecordZero()
	b.RecordZero()
	b.Record(77)
	if a.Count() != b.Count() || a.Sum() != b.Sum() || a.Min() != b.Min() || a.Max() != b.Max() {
		t.Fatalf("RecordZero diverges from Record(0): %v vs %v", a, b)
	}
	for q := 0.0; q <= 1.0; q += 0.25 {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("Quantile(%v): %d vs %d", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

// BenchmarkHistogramRecordZero measures the synchronous-stage fast path.
func BenchmarkHistogramRecordZero(b *testing.B) {
	h := NewHistogram(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.RecordZero()
	}
	if testing.AllocsPerRun(1000, h.RecordZero) != 0 {
		b.Fatal("Histogram.RecordZero allocates")
	}
}
