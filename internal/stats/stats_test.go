package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramQuantileExactSmallValues(t *testing.T) {
	// Values below 2^subBits are stored exactly.
	h := NewHistogram(8)
	for i := int64(0); i < 200; i++ {
		h.Record(i)
	}
	if q := h.Quantile(0.5); q < 98 || q > 101 {
		t.Fatalf("p50 = %d, want ~99", q)
	}
	if q := h.Quantile(0.99); q < 196 || q > 199 {
		t.Fatalf("p99 = %d, want ~198", q)
	}
	if q := h.Quantile(1.0); q != 199 {
		t.Fatalf("p100 = %d, want 199", q)
	}
	if q := h.Quantile(0.0); q != 0 {
		t.Fatalf("p0 = %d, want 0", q)
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram(8)
	vals := []int64{3, 300, 30_000, 3_000_000, 300_000_000, 30_000_000_000}
	for _, v := range vals {
		h := NewHistogram(8)
		h.Record(v)
		got := h.Quantile(0.5)
		relerr := math.Abs(float64(got-v)) / float64(v)
		if relerr > 1.0/256 {
			t.Fatalf("value %d quantized to %d (relerr %v)", v, got, relerr)
		}
		_ = h
	}
	_ = h
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatalf("negative record: min=%d count=%d", h.Min(), h.Count())
	}
}

func TestHistogramFractionAbove(t *testing.T) {
	h := NewHistogram(8)
	for i := 0; i < 90; i++ {
		h.Record(10)
	}
	for i := 0; i < 10; i++ {
		h.Record(200)
	}
	if f := h.FractionAbove(100); math.Abs(f-0.10) > 1e-9 {
		t.Fatalf("FractionAbove(100) = %v, want 0.10", f)
	}
	if f := h.FractionAbove(300); f != 0 {
		t.Fatalf("FractionAbove(300) = %v, want 0", f)
	}
	if f := h.FractionBetween(100, 250); math.Abs(f-0.10) > 1e-9 {
		t.Fatalf("FractionBetween = %v, want 0.10", f)
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a, b := NewHistogram(8), NewHistogram(8)
	for i := int64(0); i < 50; i++ {
		a.Record(i)
		b.Record(1000 + i)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != 1049 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	a.Reset()
	if a.Count() != 0 || a.Quantile(0.9) != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestHistogramMergePrecisionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched merge did not panic")
		}
	}()
	NewHistogram(8).Merge(NewHistogram(4))
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		h := NewHistogram(8)
		for _, v := range raw {
			h.Record(int64(v))
		}
		qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		prev := int64(-1)
		for _, q := range qs {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileVsExactProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(8)
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
			h.Record(int64(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.5, 0.9, 0.99} {
			idx := int(math.Ceil(q*float64(len(vals)))) - 1
			if idx < 0 {
				idx = 0
			}
			exact := vals[idx]
			got := h.Quantile(q)
			// Allow one sub-bucket of relative error plus slack for ties.
			tol := float64(exact)/128 + 2
			if math.Abs(float64(got-exact)) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSubBitsBounds(t *testing.T) {
	for _, bad := range []uint{0, 13} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("subBits=%d did not panic", bad)
				}
			}()
			NewHistogram(bad)
		}()
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.Stddev() != 0 {
		t.Fatal("empty Welford should be zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	if w.N() != 8 {
		t.Fatalf("n = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if math.Abs(w.Stddev()-2) > 1e-12 {
		t.Fatalf("stddev = %v", w.Stddev())
	}
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWelfordMatchesNaiveProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, v := range raw {
			d := float64(v) - mean
			m2 += d * d
		}
		naive := m2 / float64(len(raw))
		return math.Abs(w.Variance()-naive) <= 1e-6*(1+naive)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 || s.Stddev() != 0 {
		t.Fatal("empty series should be zero")
	}
	for i := 0; i < 5; i++ {
		s.Append(float64(i), float64(i*2))
	}
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Mean() != 4 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Max() != 8 {
		t.Fatalf("max = %v", s.Max())
	}
}

func TestStddevAcross(t *testing.T) {
	a := &Series{T: []float64{0, 1}, V: []float64{1, 10}}
	b := &Series{T: []float64{0, 1}, V: []float64{1, 20}}
	c := &Series{T: []float64{0, 1}, V: []float64{1, 30}}
	out := StddevAcross([]*Series{a, b, c})
	if out.Len() != 2 {
		t.Fatalf("len = %d", out.Len())
	}
	if out.V[0] != 0 {
		t.Fatalf("stddev at t0 = %v, want 0", out.V[0])
	}
	want := math.Sqrt(200.0 / 3.0)
	if math.Abs(out.V[1]-want) > 1e-9 {
		t.Fatalf("stddev at t1 = %v, want %v", out.V[1], want)
	}
}

func TestStddevAcrossEmpty(t *testing.T) {
	if StddevAcross(nil).Len() != 0 {
		t.Fatal("empty input should give empty output")
	}
}

func TestStddevAcrossMisalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("misaligned series did not panic")
		}
	}()
	StddevAcross([]*Series{
		{T: []float64{0}, V: []float64{1}},
		{T: []float64{0, 1}, V: []float64{1, 2}},
	})
}

func TestPercentile(t *testing.T) {
	vals := []float64{15, 20, 35, 40, 50}
	if p := Percentile(vals, 0); p != 15 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(vals, 100); p != 50 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(vals, 50); p != 35 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "drops"}
	c.Inc()
	c.Add(4)
	if c.N != 5 {
		t.Fatalf("counter = %d", c.N)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Service", "Mpps")
	tb.AddRow("VPC-VPC", 128.8)
	tb.AddRow("VPC-Internet", 81.6)
	out := tb.String()
	if !strings.Contains(out, "VPC-Internet") || !strings.Contains(out, "81.60") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	// Columns align: all rows equal width prefix before second column.
	if !strings.HasPrefix(lines[2], "VPC-VPC     ") {
		t.Fatalf("misaligned row: %q", lines[2])
	}
}

func TestHistogramString(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(100)
	if s := h.String(); !strings.Contains(s, "n=1") {
		t.Fatalf("String() = %q", s)
	}
}

// BenchmarkHistogramRecord guards the pipeline's per-stage recording cost:
// Record must stay allocation-free at any magnitude.
func BenchmarkHistogramRecord(b *testing.B) {
	h := NewLatencyHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i)%100000 + 1)
	}
	b.StopTimer()
	if testing.AllocsPerRun(1000, func() { h.Record(123456) }) != 0 {
		b.Fatal("Histogram.Record allocates")
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewLatencyHistogram()
	for i := int64(0); i < 1_000_000; i++ {
		h.Record(i % 65536)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

func TestHistogramBucketSnapshotDeltas(t *testing.T) {
	h := NewHistogram(5)
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	prev := h.BucketSnapshot(nil)
	if len(prev) != h.NumBuckets() {
		t.Fatalf("snapshot len %d != NumBuckets %d", len(prev), h.NumBuckets())
	}
	if got := h.DeltaCount(prev); got != 0 {
		t.Fatalf("delta count right after snapshot = %d, want 0", got)
	}
	if got := h.DeltaQuantile(0.99, prev); got != 0 {
		t.Fatalf("delta quantile over empty window = %d, want 0", got)
	}
	// Record a new batch whose values are far from the first batch: the
	// delta quantile must reflect only the new batch.
	for i := 0; i < 50; i++ {
		h.Record(1_000_000)
	}
	if got := h.DeltaCount(prev); got != 50 {
		t.Fatalf("delta count = %d, want 50", got)
	}
	q := h.DeltaQuantile(0.5, prev)
	if q < 900_000 || q > 1_100_000 {
		t.Fatalf("delta p50 = %d, want ~1e6 (old samples must not leak in)", q)
	}
	// The full-histogram quantile still sees both batches.
	if full := h.Quantile(0.5); full >= 900_000 {
		t.Fatalf("full p50 = %d, want < 900000 (dominated by first batch)", full)
	}
	// Reusing the destination slice must not allocate a fresh one.
	prev2 := h.BucketSnapshot(prev)
	if &prev2[0] != &prev[0] {
		t.Fatal("BucketSnapshot did not reuse the destination slice")
	}
	if got := h.DeltaCount(prev2); got != 0 {
		t.Fatalf("delta count after re-snapshot = %d, want 0", got)
	}
}

func TestHistogramDeltaLengthMismatchPanics(t *testing.T) {
	h := NewHistogram(5)
	h.Record(1)
	bad := make([]uint64, 3)
	for name, f := range map[string]func(){
		"DeltaCount":    func() { h.DeltaCount(bad) },
		"DeltaQuantile": func() { h.DeltaQuantile(0.5, bad) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched snapshot did not panic", name)
				}
			}()
			f()
		}()
	}
}
