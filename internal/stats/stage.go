package stats

import "fmt"

// StageCounter tracks packet conservation through one pipeline stage. A
// stage either passes a packet to the next stage (Out), drops it (Drops),
// or still holds it in flight (the difference). After a pipeline drains,
// In == Out + Drops must hold for every stage — the invariant the staged
// ingress pipeline's tests pin.
type StageCounter struct {
	Name string
	// In counts packets entering the stage.
	In uint64
	// Out counts packets the stage completed: advanced to the next stage,
	// or (for the last stage and early exits like the priority shortcut)
	// finished the pipeline.
	Out uint64
	// Drops counts packets the stage terminated: NIC rate limiting, queue
	// overflow, reorder-FIFO overflow, service denial, fault loss.
	Drops uint64
}

// InFlight returns the packets currently inside the stage (asynchronous
// stages: NIC DMA, CPU queues, the reorder engine).
func (c *StageCounter) InFlight() uint64 { return c.In - c.Out - c.Drops }

// Balanced reports the drained-pipeline invariant In == Out + Drops.
func (c *StageCounter) Balanced() bool { return c.In == c.Out+c.Drops }

// String renders the counter for stage tables.
func (c *StageCounter) String() string {
	return fmt.Sprintf("%s: in=%d out=%d drops=%d", c.Name, c.In, c.Out, c.Drops)
}

// StageBalance verifies the conservation invariant across a drained
// pipeline's counters and names the first unbalanced stage.
func StageBalance(counters []StageCounter) (string, bool) {
	for i := range counters {
		if !counters[i].Balanced() {
			return counters[i].String(), false
		}
	}
	return "", true
}

// StageTable renders per-stage counters as an aligned table.
func StageTable(counters []StageCounter) *Table {
	t := NewTable("Stage", "In", "Out", "Drops", "InFlight")
	for i := range counters {
		c := &counters[i]
		t.AddRow(c.Name, c.In, c.Out, c.Drops, c.InFlight())
	}
	return t
}
