package flowtable

import (
	"testing"

	"albatross/internal/packet"
	"albatross/internal/sim"
)

// testTuple derives a distinct deterministic five-tuple from (i, salt): i is
// encoded directly into Src so tuples are distinct, salt into Dst so
// different tests draw different key sets.
func testTuple(i int, salt uint64) packet.FiveTuple {
	m := splitmix64(uint64(i)*0x9e37 + salt)
	return packet.FiveTuple{
		Src:   packet.IPv4Addr{byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)},
		Dst:   packet.IPv4Addr{byte(m >> 24), byte(m >> 16), byte(m >> 8), byte(m)},
		Proto: 6,
		SPort: uint16(m >> 32),
		DPort: 443,
	}
}

func mustBackend(t *testing.T, name string, pool []int, cfg BackendConfig) Backend {
	t.Helper()
	b, err := NewBackend(name, pool, cfg)
	if err != nil {
		t.Fatalf("NewBackend(%s): %v", name, err)
	}
	return b
}

// On a healthy static pool the two backends must produce identical pod
// assignments for every flow, and assignments must be stable across repeat
// lookups — the property that makes `backend:` a pure performance knob in
// steady state.
func TestBackendsAgreeOnStaticPool(t *testing.T) {
	pool := []int{0, 1, 2, 3, 4, 5, 6, 7}
	sess := mustBackend(t, "session", pool, BackendConfig{})
	oth := mustBackend(t, "othello", pool, BackendConfig{Seed: 42})

	const flows = 5000
	first := make([]int, flows)
	now := sim.Time(0)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < flows; i++ {
			k := testTuple(i, 0xA11CE)
			ps := Select(sess, k, now)
			po := Select(oth, k, now)
			if ps != po {
				t.Fatalf("pass %d flow %d: session->%d othello->%d", pass, i, ps, po)
			}
			if want := AssignPod(pool, k); ps != want {
				t.Fatalf("flow %d: assigned %d, AssignPod says %d", i, ps, want)
			}
			if pass == 0 {
				first[i] = ps
			} else if ps != first[i] {
				t.Fatalf("flow %d moved %d->%d with no pool change", i, first[i], ps)
			}
			now = now.Add(100)
		}
	}
	if st := oth.Stats(); st.Inserts != flows || st.Hits != 2*flows {
		t.Fatalf("othello stats: %+v, want %d inserts / %d hits", st, flows, 2*flows)
	}
}

// The zero-disruption claim as a unit test: after a pool update that removes
// one pod, only the flows pinned to that pod move; every other flow keeps
// its exact assignment, on the control plane and on the stateless data plane.
func TestOthelloBackendZeroDisruptionUpdate(t *testing.T) {
	pool := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b := mustBackend(t, "othello", pool, BackendConfig{Seed: 7}).(*othelloBackend)

	const flows = 2000
	before := make(map[packet.FiveTuple]int, flows)
	for i := 0; i < flows; i++ {
		k := testTuple(i, 0xBEEF)
		before[k] = Select(b, k, 0)
	}
	onDead := 0
	for _, pod := range before {
		if pod == 3 {
			onDead++
		}
	}
	if onDead == 0 {
		t.Fatal("test needs flows on the removed pod")
	}

	newPool := []int{0, 1, 2, 4, 5, 6, 7}
	moved := b.Update(newPool)
	if moved != onDead {
		t.Fatalf("Update moved %d flows, want exactly the %d on pod 3", moved, onDead)
	}
	for k, pod := range before {
		got, ok := b.Lookup(k, 0)
		if !ok {
			t.Fatalf("flow %v lost its pinning across the update", k)
		}
		if pod == 3 {
			if got == 3 {
				t.Fatalf("flow %v still on removed pod 3", k)
			}
			continue
		}
		if got != pod {
			t.Fatalf("flow %v disrupted: %d->%d though pod %d survived", k, pod, got, pod)
		}
		// The data-plane arrays must agree with the control plane.
		if dp := int(b.Map().Get(k)); dp != got {
			t.Fatalf("flow %v: data-plane %d != control-plane %d", k, dp, got)
		}
	}
}

// The session backend, by contrast, loses pinnings under capacity pressure:
// re-hashing after eviction is the disruption mode Concury measures against.
func TestSessionBackendCapacityEviction(t *testing.T) {
	pool := []int{0, 1, 2, 3}
	b := mustBackend(t, "session", pool, BackendConfig{Capacity: 100}).(*sessionBackend)
	for i := 0; i < 500; i++ {
		Select(b, testTuple(i, 0xCAFE), sim.Time(i*100))
	}
	if st := b.Stats(); st.Evictions == 0 {
		t.Fatalf("expected capacity evictions, got %+v", st)
	}
	if b.Table().Len() != 100 {
		t.Fatalf("table holds %d sessions, capacity is 100", b.Table().Len())
	}
}

// Direct Othello unit test: inserts, in-place updates, removals and forced
// rebuilds all preserve Get(k) == value for every member key.
func TestOthelloPutGetRebuild(t *testing.T) {
	o := NewOthello(1, 0) // size hint 0 forces growth rebuilds
	const n = 4000
	want := make(map[packet.FiveTuple]uint16, n)
	for i := 0; i < n; i++ {
		k := testTuple(i, 0xD00D)
		v := uint16(splitmix64(uint64(i)) % 256)
		o.Put(k, v)
		want[k] = v
	}
	if o.Rebuilds == 0 {
		t.Fatal("expected at least one growth rebuild from a cold start")
	}
	verify := func() {
		t.Helper()
		for k, v := range want {
			if got := o.Get(k); got != v {
				t.Fatalf("Get(%v) = %d, want %d (rebuilds=%d)", k, got, v, o.Rebuilds)
			}
		}
		if o.Len() != len(want) {
			t.Fatalf("Len() = %d, want %d", o.Len(), len(want))
		}
	}
	verify()
	// In-place value updates (the pool-update path).
	for i := 0; i < n; i += 3 {
		k := testTuple(i, 0xD00D)
		want[k] ^= 0x5A
		o.Put(k, want[k])
	}
	verify()
	// Removals, then enough fresh inserts to force another rebuild.
	for i := 0; i < n; i += 5 {
		k := testTuple(i, 0xD00D)
		if !o.Remove(k) {
			t.Fatalf("Remove(%v) = false for member", k)
		}
		delete(want, k)
	}
	for i := n; i < 3*n; i++ {
		k := testTuple(i, 0xD00D)
		v := uint16(i % 512)
		o.Put(k, v)
		want[k] = v
	}
	verify()
}

// Keys returns the live keys in insertion order — the determinism contract
// rebuilds rely on.
func TestOthelloKeysOrder(t *testing.T) {
	o := NewOthello(3, 0)
	var ks []packet.FiveTuple
	for i := 0; i < 100; i++ {
		k := testTuple(i, 0xFACE)
		o.Put(k, uint16(i))
		ks = append(ks, k)
	}
	o.Remove(ks[10])
	o.Put(ks[10], 999) // re-insert goes to the back
	wantOrder := append(append(append([]packet.FiveTuple{}, ks[:10]...), ks[11:]...), ks[10])
	got := o.Keys()
	if len(got) != len(wantOrder) {
		t.Fatalf("Keys() len %d, want %d", len(got), len(wantOrder))
	}
	for i := range got {
		if got[i] != wantOrder[i] {
			t.Fatalf("Keys()[%d] = %v, want %v", i, got[i], wantOrder[i])
		}
	}
}

// FuzzOthello drives a random operation sequence (insert / update / remove /
// re-insert) against a model map and checks the core invariant after every
// step: the stateless lookup returns the control-plane value for every
// member — no false negatives, at any size, across rebuilds.
func FuzzOthello(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03}, uint64(1))
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00, 0xAA, 0x55}, uint64(99))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}, uint64(7))
	f.Fuzz(func(t *testing.T, ops []byte, seed uint64) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		o := NewOthello(seed, 0)
		model := make(map[packet.FiveTuple]uint16)
		for step, op := range ops {
			// Key universe of 64 keys so removes and re-inserts actually hit.
			k := testTuple(int(op&0x3F), seed)
			switch {
			case op&0xC0 == 0xC0 && len(model) > 0:
				o.Remove(k)
				delete(model, k)
			default:
				v := uint16(op) ^ uint16(step<<3)
				o.Put(k, v)
				model[k] = v
			}
			if o.Len() != len(model) {
				t.Fatalf("step %d: Len %d != model %d", step, o.Len(), len(model))
			}
			for mk, mv := range model {
				if !o.Contains(mk) {
					t.Fatalf("step %d: member %v reported absent", step, mk)
				}
				if got := o.Get(mk); got != mv {
					t.Fatalf("step %d: Get(%v) = %d, want %d", step, mk, got, mv)
				}
			}
		}
	})
}
