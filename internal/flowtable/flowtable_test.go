package flowtable

import (
	"sync"
	"testing"
	"testing/quick"

	"albatross/internal/packet"
	"albatross/internal/sim"
)

func tuple(i int) packet.FiveTuple {
	return packet.FiveTuple{
		Src:   packet.IPv4FromUint32(0x0a000000 + uint32(i)),
		Dst:   packet.IPv4Addr{10, 1, 0, 1},
		Proto: packet.IPProtocolTCP,
		SPort: uint16(1024 + i%60000),
		DPort: 443,
	}
}

func TestTableInsertLookupDelete(t *testing.T) {
	tb := NewTable("vm-nc", 256)
	if tb.Name() != "vm-nc" || tb.EntrySize() != 256 {
		t.Fatal("metadata wrong")
	}
	k := tuple(1)
	if tb.Lookup(k) != nil {
		t.Fatal("lookup on empty table")
	}
	e := tb.Insert(k, 42)
	if e.Value != 42 || e.SizeBytes != 256 {
		t.Fatalf("entry = %+v", e)
	}
	if got := tb.Lookup(k); got != e {
		t.Fatal("lookup mismatch")
	}
	// Replace keeps the address stable (same memory entry).
	e2 := tb.Insert(k, 43)
	if e2.Addr != e.Addr || e2.Value != 43 {
		t.Fatalf("replace changed address: %+v vs %+v", e2, e)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
	if !tb.Delete(k) || tb.Delete(k) {
		t.Fatal("delete semantics wrong")
	}
}

func TestTableAddressesDistinct(t *testing.T) {
	tb := NewTable("a", 128)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		e := tb.Insert(tuple(i), uint64(i))
		if seen[e.Addr] {
			t.Fatalf("address %#x reused", e.Addr)
		}
		seen[e.Addr] = true
	}
	if tb.MemoryBytes() != 1000*128 {
		t.Fatalf("memory = %d", tb.MemoryBytes())
	}
}

func TestTablesDoNotShareAddressSpace(t *testing.T) {
	a := NewTable("a", 64)
	b := NewTable("b", 64)
	ea := a.Insert(tuple(0), 1)
	eb := b.Insert(tuple(0), 1)
	if ea.Addr == eb.Addr {
		t.Fatal("tables share addresses")
	}
}

func TestTableDefaultEntrySize(t *testing.T) {
	tb := NewTable("x", 0)
	if tb.EntrySize() != 64 {
		t.Fatalf("default entry size = %d", tb.EntrySize())
	}
}

func TestSessionLifecycle(t *testing.T) {
	st := NewSessionTable(0, 100*sim.Microsecond)
	k := tuple(7)
	if st.Lookup(k, 0) != nil {
		t.Fatal("lookup on empty")
	}
	s := st.Create(k, 10)
	if s.State != StateNew || s.Created != 10 {
		t.Fatalf("session = %+v", s)
	}
	s.State = StateEstablished
	// Within idle window: refreshed.
	got := st.Lookup(k, 50)
	if got == nil || got.LastActive != 50 || got.State != StateEstablished {
		t.Fatalf("refresh failed: %+v", got)
	}
	// Past idle window: expired.
	if st.Lookup(k, 50+sim.Time(101*sim.Microsecond)) != nil {
		t.Fatal("expired session returned")
	}
	if st.Expirations != 1 {
		t.Fatalf("expirations = %d", st.Expirations)
	}
	if st.Len() != 0 {
		t.Fatalf("len = %d", st.Len())
	}
}

func TestSessionCapacityEviction(t *testing.T) {
	st := NewSessionTable(10, 0)
	for i := 0; i < 10; i++ {
		s := st.Create(tuple(i), sim.Time(i))
		s.State = StateEstablished
	}
	// Touch session 0 so it's most recent; oldest is now tuple(1).
	if st.Lookup(tuple(0), 100) == nil {
		t.Fatal("session 0 missing")
	}
	st.Create(tuple(99), 200)
	if st.Len() != 10 {
		t.Fatalf("len = %d, want 10", st.Len())
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
	if st.Lookup(tuple(1), 201) != nil {
		t.Fatal("LRU eviction removed wrong session (1 should be gone)")
	}
	if st.Lookup(tuple(0), 201) == nil {
		t.Fatal("recently used session evicted")
	}
}

func TestSessionExpireSweep(t *testing.T) {
	st := NewSessionTable(0, 50*sim.Microsecond)
	for i := 0; i < 20; i++ {
		st.Create(tuple(i), 0)
	}
	// Half stay active.
	for i := 0; i < 10; i++ {
		st.Lookup(tuple(i), sim.Time(40*sim.Microsecond))
	}
	n := st.Expire(sim.Time(60 * sim.Microsecond))
	if n != 10 {
		t.Fatalf("expired %d, want 10", n)
	}
	if st.Len() != 10 {
		t.Fatalf("len = %d", st.Len())
	}
	// Zero idle => Expire is a no-op.
	st2 := NewSessionTable(0, 0)
	st2.Create(tuple(0), 0)
	if st2.Expire(1<<40) != 0 {
		t.Fatal("no-idle table expired sessions")
	}
}

func TestSessionStateString(t *testing.T) {
	if StateNew.String() != "new" || StateEstablished.String() != "established" ||
		StateClosing.String() != "closing" || SessionState(9).String() != "invalid" {
		t.Fatal("state strings wrong")
	}
}

func TestSharedSessionTableTouch(t *testing.T) {
	sh := NewSharedSessionTable(0, 0)
	k := tuple(3)
	existed := sh.Touch(k, 0, func(s *Session) { s.Packets++ })
	if existed {
		t.Fatal("first touch reported existing")
	}
	existed = sh.Touch(k, 1, func(s *Session) { s.Packets++ })
	if !existed {
		t.Fatal("second touch reported new")
	}
	var pkts uint64
	sh.Touch(k, 2, func(s *Session) { pkts = s.Packets })
	if pkts != 2 {
		t.Fatalf("packets = %d", pkts)
	}
	if sh.Len() != 1 {
		t.Fatalf("len = %d", sh.Len())
	}
}

func TestSharedSessionTableConcurrent(t *testing.T) {
	sh := NewSharedSessionTable(0, 0)
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sh.Touch(tuple(i%50), 0, func(s *Session) {
					s.Packets++
					s.Bytes += 256
				})
			}
		}()
	}
	wg.Wait()
	if sh.Len() != 50 {
		t.Fatalf("len = %d, want 50", sh.Len())
	}
	var total uint64
	for i := 0; i < 50; i++ {
		sh.Touch(tuple(i), 0, func(s *Session) { total += s.Packets })
	}
	if total != goroutines*perG {
		t.Fatalf("total packets = %d, want %d", total, goroutines*perG)
	}
}

func TestShardedSessionTable(t *testing.T) {
	s := NewShardedSessionTable(4, 0, 0)
	if s.NumShards() != 4 {
		t.Fatalf("shards = %d", s.NumShards())
	}
	// Same flow always maps to the same shard.
	k := tuple(9)
	sh := s.ShardFor(k)
	for i := 0; i < 10; i++ {
		if s.ShardFor(k) != sh {
			t.Fatal("shard not stable")
		}
	}
	s.Touch(k, 0, nil)
	s.Touch(k, 1, func(sess *Session) { sess.Packets++ })
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Shard(sh).Len() != 1 {
		t.Fatal("session not in expected shard")
	}
}

func TestShardedSessionTableDistribution(t *testing.T) {
	s := NewShardedSessionTable(8, 0, 0)
	for i := 0; i < 8000; i++ {
		s.Touch(tuple(i), 0, nil)
	}
	for i := 0; i < 8; i++ {
		n := s.Shard(i).Len()
		if n < 700 || n > 1300 {
			t.Fatalf("shard %d has %d sessions, want ~1000", i, n)
		}
	}
}

func TestShardedMinimumOneShard(t *testing.T) {
	s := NewShardedSessionTable(0, 0, 0)
	if s.NumShards() != 1 {
		t.Fatalf("shards = %d, want 1", s.NumShards())
	}
}

func TestTouchSemanticsEquivalentProperty(t *testing.T) {
	// Shared and sharded tables agree on existence semantics for any
	// sequence of touches.
	f := func(keys []uint8) bool {
		sh := NewSharedSessionTable(0, 0)
		sd := NewShardedSessionTable(3, 0, 0)
		for i, k := range keys {
			a := sh.Touch(tuple(int(k)), sim.Time(i), nil)
			b := sd.Touch(tuple(int(k)), sim.Time(i), nil)
			if a != b {
				return false
			}
		}
		return sh.Len() == sd.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTableLookup(b *testing.B) {
	tb := NewTable("bench", 256)
	for i := 0; i < 100000; i++ {
		tb.Insert(tuple(i), uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tb.Lookup(tuple(i % 100000))
	}
}

func BenchmarkSharedTouch(b *testing.B) {
	sh := NewSharedSessionTable(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sh.Touch(tuple(i%1000), 0, func(s *Session) { s.Packets++ })
	}
}

func BenchmarkShardedTouch(b *testing.B) {
	sd := NewShardedSessionTable(8, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sd.Touch(tuple(i%1000), 0, func(s *Session) { s.Packets++ })
	}
}
