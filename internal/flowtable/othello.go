package flowtable

import (
	"math/bits"

	"albatross/internal/packet"
)

// Othello is a Concury-style minimal perfect hashing classifier (an "Othello
// map"): two arrays a and b of 16-bit values, two seeded hash functions, and
// the invariant value(key) = a[ha(key)] XOR b[hb(key)] for every key the
// control plane has inserted.
//
// The data-plane lookup (Get) is stateless and O(1): two independent array
// reads and one XOR, no per-flow record, no locks. All mutability lives on
// the control plane: keys form edges of a bipartite graph between the a- and
// b-vertices, the control plane keeps that graph acyclic, and setting a
// key's value flips one side of its tree component by the XOR delta — which
// preserves every other key's value exactly. That is the zero-disruption
// update property Concury claims for LB pool changes: flows not assigned to
// a removed pod keep their mapping bit-for-bit.
//
// When an insert would close a cycle (or a seed hashes two keys onto the
// same edge), the structure rebuilds with a fresh seed, growing the arrays
// as needed. Rebuilds re-insert keys in their original insertion order, so
// the structure is deterministic for a given seed and operation sequence.
//
// Not safe for concurrent use.
type Othello struct {
	seed   uint64
	ma, mb uint32 // power-of-two array sizes
	a, b   []uint16

	vals  map[packet.FiveTuple]uint16 // control-plane membership + values
	order []packet.FiveTuple          // insertion order (may hold removed keys)

	// Union-find over vertices (a-side [0,ma), b-side [ma,ma+mb)) tracks
	// acyclicity. Removals do not split components, so connectivity is
	// conservative: a stale union can only force a spurious rebuild, never
	// admit a cycle.
	parent []int32
	size   []int32

	adj     map[uint32][]packet.FiveTuple // vertex -> incident keys
	queue   []uint32                      // BFS scratch
	visited map[uint32]struct{}           // BFS scratch

	// Rebuilds counts full reseed-and-reinsert passes.
	Rebuilds uint64
}

// NewOthello creates an Othello map seeded deterministically. sizeHint
// pre-sizes the arrays for about that many keys (0 for the minimum).
func NewOthello(seed uint64, sizeHint int) *Othello {
	o := &Othello{
		seed:    splitmix64(seed),
		vals:    make(map[packet.FiveTuple]uint16),
		adj:     make(map[uint32][]packet.FiveTuple),
		visited: make(map[uint32]struct{}),
	}
	o.resize(sizeHint, 0)
	return o
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// tupleWords packs the 13-byte canonical five-tuple into two words so the
// seeded hash covers every bit (the unseeded FiveTuple.Hash is only 32 bits
// wide — two colliding keys there would collide under every reseed).
func tupleWords(k packet.FiveTuple) (uint64, uint64) {
	w0 := uint64(k.Src[0])<<56 | uint64(k.Src[1])<<48 | uint64(k.Src[2])<<40 | uint64(k.Src[3])<<32 |
		uint64(k.Dst[0])<<24 | uint64(k.Dst[1])<<16 | uint64(k.Dst[2])<<8 | uint64(k.Dst[3])
	w1 := uint64(k.Proto)<<32 | uint64(k.SPort)<<16 | uint64(k.DPort)
	return w0, w1
}

func (o *Othello) hashKey(k packet.FiveTuple) uint64 {
	w0, w1 := tupleWords(k)
	return splitmix64(splitmix64(w0^o.seed) ^ w1)
}

// vertices returns the key's endpoints as union-find vertex ids: the a-index
// and ma+b-index.
func (o *Othello) vertices(k packet.FiveTuple) (uint32, uint32) {
	h := o.hashKey(k)
	return uint32(h) & (o.ma - 1), o.ma + (uint32(h>>32) & (o.mb - 1))
}

// Get returns the data-plane value for key: two array reads and an XOR.
// It is defined for every key; for keys never inserted it returns whatever
// the arrays hold (the caller decides membership, as real Othello LBs do
// with a separate filter or by accepting any in-pool value).
func (o *Othello) Get(k packet.FiveTuple) uint16 {
	h := o.hashKey(k)
	return o.a[uint32(h)&(o.ma-1)] ^ o.b[uint32(h>>32)&(o.mb-1)]
}

// Slots returns the two array indices the data-plane lookup for key touches
// (for memory-model accounting in experiments).
func (o *Othello) Slots(k packet.FiveTuple) (uint32, uint32) {
	h := o.hashKey(k)
	return uint32(h) & (o.ma - 1), uint32(h>>32) & (o.mb - 1)
}

// Contains reports control-plane membership.
func (o *Othello) Contains(k packet.FiveTuple) bool {
	_, ok := o.vals[k]
	return ok
}

// ValueOf returns the control-plane value for key and whether it is a member.
func (o *Othello) ValueOf(k packet.FiveTuple) (uint16, bool) {
	v, ok := o.vals[k]
	return v, ok
}

// Len returns the number of member keys.
func (o *Othello) Len() int { return len(o.vals) }

// ArrayBytes returns the modelled data-plane footprint: 2 bytes per slot in
// each array. This is what makes the stateless backend cache-resident where
// 128-byte session entries are not.
func (o *Othello) ArrayBytes() int64 { return int64(o.ma+o.mb) * 2 }

// Seed returns the current seed (changes on rebuild).
func (o *Othello) Seed() uint64 { return o.seed }

// Keys returns the live keys in insertion order.
func (o *Othello) Keys() []packet.FiveTuple {
	out := make([]packet.FiveTuple, 0, len(o.vals))
	seen := make(map[packet.FiveTuple]struct{}, len(o.vals))
	for _, k := range o.order {
		if _, dup := seen[k]; dup {
			continue
		}
		if _, live := o.vals[k]; live {
			seen[k] = struct{}{}
			out = append(out, k)
		}
	}
	return out
}

// Put inserts key with the given value, or updates it in place. Existing
// keys keep their data-plane values untouched unless this key's own value
// changes (and then only this key's tree side flips).
func (o *Othello) Put(k packet.FiveTuple, val uint16) {
	if old, ok := o.vals[k]; ok {
		if old != val {
			o.updateVal(k, old, val)
		}
		return
	}
	if !o.tryInsert(k, val) {
		o.vals[k] = val
		o.order = append(o.order, k)
		o.rebuild()
		return
	}
	o.vals[k] = val
	o.order = append(o.order, k)
}

// Remove deletes key from the control plane, reporting whether it existed.
// The arrays are left as-is (a stateless lookup for a removed key returns a
// stale value until membership is consulted); connectivity bookkeeping stays
// conservative until the next rebuild.
func (o *Othello) Remove(k packet.FiveTuple) bool {
	if _, ok := o.vals[k]; !ok {
		return false
	}
	delete(o.vals, k)
	u, v := o.vertices(k)
	o.adj[u] = dropKey(o.adj[u], k)
	o.adj[v] = dropKey(o.adj[v], k)
	o.order = dropKey(o.order, k)
	return true
}

func dropKey(s []packet.FiveTuple, k packet.FiveTuple) []packet.FiveTuple {
	for i := range s {
		if s[i] == k {
			copy(s[i:], s[i+1:])
			return s[:len(s)-1]
		}
	}
	return s
}

// Reset drops all keys and reinitializes the arrays.
func (o *Othello) Reset() {
	n := 0
	o.vals = make(map[packet.FiveTuple]uint16)
	o.order = o.order[:0]
	o.resize(n, 0)
}

// tryInsert attempts to add a brand-new key as a graph edge. It returns
// false when the edge would close a cycle (including the multigraph case of
// two keys hashing to the same vertex pair), in which case the caller must
// rebuild with a fresh seed. It does NOT touch vals/order.
func (o *Othello) tryInsert(k packet.FiveTuple, val uint16) bool {
	u, v := o.vertices(k)
	ru, rv := o.find(u), o.find(v)
	if ru == rv {
		return false
	}
	if delta := val ^ o.a[u] ^ o.b[v-o.ma]; delta != 0 {
		// Flip the smaller component so a[u]^b[v] lands on val; every edge
		// inside the flipped component has both endpoints flipped, so all
		// existing values are preserved.
		if o.size[ru] <= o.size[rv] {
			o.flipComponent(u, delta)
		} else {
			o.flipComponent(v, delta)
		}
	}
	// Union by size.
	if o.size[ru] < o.size[rv] {
		ru, rv = rv, ru
	}
	o.parent[rv] = ru
	o.size[ru] += o.size[rv]
	o.adj[u] = append(o.adj[u], k)
	o.adj[v] = append(o.adj[v], k)
	return true
}

// updateVal changes an existing key's value by cutting its edge and flipping
// the b-side subtree by old^new. The graph is a forest, so excluding the
// edge itself splits the component in two; flipping one side changes exactly
// this key's XOR.
func (o *Othello) updateVal(k packet.FiveTuple, old, val uint16) {
	_, v := o.vertices(k)
	o.flipSubtree(v, k, old^val)
	o.vals[k] = val
}

// flipComponent XORs delta into every vertex reachable from start.
func (o *Othello) flipComponent(start uint32, delta uint16) {
	o.walkAndFlip(start, packet.FiveTuple{}, false, delta)
}

// flipSubtree XORs delta into every vertex reachable from start without
// traversing the excluded edge.
func (o *Othello) flipSubtree(start uint32, exclude packet.FiveTuple, delta uint16) {
	o.walkAndFlip(start, exclude, true, delta)
}

func (o *Othello) walkAndFlip(start uint32, exclude packet.FiveTuple, hasExclude bool, delta uint16) {
	o.queue = o.queue[:0]
	o.queue = append(o.queue, start)
	o.visited[start] = struct{}{}
	for i := 0; i < len(o.queue); i++ {
		x := o.queue[i]
		if x < o.ma {
			o.a[x] ^= delta
		} else {
			o.b[x-o.ma] ^= delta
		}
		for _, k2 := range o.adj[x] {
			if hasExclude && k2 == exclude {
				continue
			}
			u2, v2 := o.vertices(k2)
			next := u2
			if u2 == x {
				next = v2
			}
			if _, seen := o.visited[next]; !seen {
				o.visited[next] = struct{}{}
				o.queue = append(o.queue, next)
			}
		}
	}
	for _, x := range o.queue {
		delete(o.visited, x)
	}
}

// rebuild reseeds and re-inserts every live key in insertion order, growing
// the arrays every few failed attempts. Deterministic: seed evolution and
// key order depend only on the operation history.
func (o *Othello) rebuild() {
	o.Rebuilds++
	keys := o.Keys()
	for attempt := 0; ; attempt++ {
		o.seed = splitmix64(o.seed)
		o.resize(len(keys), attempt/4)
		ok := true
		for _, k := range keys {
			if !o.tryInsert(k, o.vals[k]) {
				ok = false
				break
			}
		}
		if ok {
			o.order = keys
			return
		}
	}
}

// resize (re)allocates the arrays and resets the graph bookkeeping for
// about n keys, with grow extra doublings. Both sides are sized to the next
// power of two above 1.5n, so the edge/vertex ratio stays ≤ 1/3 and a
// random seed is acyclic with high probability.
func (o *Othello) resize(n int, grow int) {
	target := n + n/2
	if target < 16 {
		target = 16
	}
	m := uint32(1) << uint(bits.Len(uint(target-1))+grow)
	o.ma, o.mb = m, m
	o.a = make([]uint16, m)
	o.b = make([]uint16, m)
	o.parent = make([]int32, 2*m)
	o.size = make([]int32, 2*m)
	for i := range o.parent {
		o.parent[i] = int32(i)
		o.size[i] = 1
	}
	o.adj = make(map[uint32][]packet.FiveTuple, n*2)
}

func (o *Othello) find(x uint32) int32 {
	i := int32(x)
	for o.parent[i] != i {
		o.parent[i] = o.parent[o.parent[i]] // path halving
		i = o.parent[i]
	}
	return i
}
