package flowtable

import (
	"fmt"

	"albatross/internal/packet"
	"albatross/internal/sim"
)

// Backend is a pluggable flow-table tier for packet-level load balancing:
// given a five-tuple, pick the pod that owns the flow, keeping flows pinned
// across lookups and — as far as the backend can — across pod pool changes.
//
// Two implementations mirror the Concury comparison: "session" routes every
// packet through a stateful session table (per-flow record, capacity
// eviction, idle expiry — the classic software-LB design), and "othello" is
// a Concury-style stateless classifier whose data plane is two array reads
// and an XOR, with zero-disruption pool updates.
//
// Both backends assign new flows with the same shared hash (AssignPod), so
// on a healthy static pool they make identical choices; they differ in how
// assignments survive churn.
type Backend interface {
	// Name returns the backend's registry name (metrics label).
	Name() string
	// Lookup returns the pod pinned for key, refreshing any liveness state.
	// ok=false means the backend holds no pinning for key.
	Lookup(key packet.FiveTuple, now sim.Time) (pod int, ok bool)
	// Insert pins key to a pod chosen by AssignPod over the current pool and
	// returns it, or -1 when the pool is empty (nothing is pinned then).
	Insert(key packet.FiveTuple, now sim.Time) int
	// Evict applies time-based expiry, returning the number of entries
	// dropped. Stateless backends return 0.
	Evict(now sim.Time) int
	// Update replaces the pod pool. Pinnings to surviving pods are kept;
	// pinnings to removed pods are re-assigned over the new pool (or dropped
	// when it is empty). It returns the number of flows whose pod changed.
	Update(pool []int) int
	// Pool returns the current pod pool (shared slice; do not mutate).
	Pool() []int
	// Stats returns cumulative backend counters.
	Stats() BackendStats
}

// BackendStats are the per-backend counters exported as metrics.
type BackendStats struct {
	Lookups   uint64 // pinning lookups
	Hits      uint64 // lookups that found a pinning
	Inserts   uint64 // new pinnings
	Evictions uint64 // pinnings lost to capacity eviction or idle expiry
	Moved     uint64 // pinnings re-assigned by pool updates
	Rebuilds  uint64 // full structure rebuilds (othello only)
}

// BackendNames lists the registered backend names.
func BackendNames() []string { return []string{"session", "othello"} }

// AssignPod is the shared new-flow assignment: a pure hash of the tuple over
// the pool. Every backend uses it for misses, which is what makes backends
// agree on healthy static pools. Returns -1 on an empty pool.
func AssignPod(pool []int, key packet.FiveTuple) int {
	if len(pool) == 0 {
		return -1
	}
	return pool[int(key.Hash()%uint32(len(pool)))]
}

// Select is the dataplane entry point: look up the pinning for key or create
// one. Returns -1 when the pool is empty.
func Select(b Backend, key packet.FiveTuple, now sim.Time) int {
	if pod, ok := b.Lookup(key, now); ok {
		return pod
	}
	return b.Insert(key, now)
}

// NewBackend constructs a backend by name over an initial pool. The session
// backend takes its capacity and idle timeout from cfg (zero values mean
// unbounded/never); the othello backend is seeded from cfg.Seed.
func NewBackend(name string, pool []int, cfg BackendConfig) (Backend, error) {
	switch name {
	case "session":
		b := &sessionBackend{
			st: NewSessionTableIn(cfg.Space, cfg.Capacity, cfg.Idle),
		}
		b.setPool(pool)
		return b, nil
	case "othello":
		b := &othelloBackend{o: NewOthello(cfg.Seed, cfg.SizeHint)}
		b.setPool(pool)
		return b, nil
	default:
		return nil, fmt.Errorf("flowtable: unknown backend %q (have %v)", name, BackendNames())
	}
}

// BackendConfig parameterizes NewBackend.
type BackendConfig struct {
	Capacity int          // session: max pinned flows (<=0 unbounded)
	Idle     sim.Duration // session: idle expiry (0 never)
	Seed     uint64       // othello: hash seed
	SizeHint int          // othello: expected flow count
	Space    *AddrSpace   // session: synthetic address space (nil = global)
}

// podSet answers pool membership in O(1) for the small dense pod-index
// pools nodes use.
type podSet struct {
	in []bool
}

func (p *podSet) set(pool []int) {
	for i := range p.in {
		p.in[i] = false
	}
	for _, idx := range pool {
		if idx < 0 {
			continue
		}
		for idx >= len(p.in) {
			p.in = append(p.in, false)
		}
		p.in[idx] = true
	}
}

func (p *podSet) has(idx int) bool {
	return idx >= 0 && idx < len(p.in) && p.in[idx]
}

// sessionBackend pins flows in a stateful session table: one 128-byte record
// per flow, capacity-bounded eviction, idle expiry. Evicted or expired flows
// lose their pinning and are re-hashed on the next packet — the disruption
// mode of classic software LBs under table pressure.
type sessionBackend struct {
	st    *SessionTable
	pool  []int
	live  podSet
	stats BackendStats
}

func (b *sessionBackend) Name() string { return "session" }

func (b *sessionBackend) setPool(pool []int) {
	b.pool = append(b.pool[:0], pool...)
	b.live.set(b.pool)
}

func (b *sessionBackend) Lookup(key packet.FiveTuple, now sim.Time) (int, bool) {
	b.stats.Lookups++
	s := b.st.Lookup(key, now)
	if s == nil {
		return -1, false
	}
	b.stats.Hits++
	pod := int(s.Pod)
	if !b.live.has(pod) {
		// Pinned pod left the pool between Updates; re-hash in place.
		pod = AssignPod(b.pool, key)
		if pod < 0 {
			b.st.Delete(key)
			return -1, false
		}
		s.Pod = int32(pod)
		b.stats.Moved++
	}
	return pod, true
}

func (b *sessionBackend) Insert(key packet.FiveTuple, now sim.Time) int {
	pod := AssignPod(b.pool, key)
	if pod < 0 {
		return -1
	}
	s := b.st.Create(key, now)
	s.Pod = int32(pod)
	b.stats.Inserts++
	return pod
}

func (b *sessionBackend) Evict(now sim.Time) int { return b.st.Expire(now) }

func (b *sessionBackend) Update(pool []int) int {
	b.setPool(pool)
	moved := 0
	if len(b.pool) == 0 {
		b.st.Range(func(s *Session) bool {
			b.st.Delete(s.Key)
			moved++
			return true
		})
	} else {
		b.st.Range(func(s *Session) bool {
			if !b.live.has(int(s.Pod)) {
				s.Pod = int32(AssignPod(b.pool, s.Key))
				moved++
			}
			return true
		})
	}
	b.stats.Moved += uint64(moved)
	return moved
}

func (b *sessionBackend) Pool() []int { return b.pool }

func (b *sessionBackend) Stats() BackendStats {
	st := b.stats
	st.Evictions = b.st.Evictions + b.st.Expirations
	return st
}

// Table exposes the underlying session table (experiments measure its
// memory behavior directly).
func (b *sessionBackend) Table() *SessionTable { return b.st }

// othelloBackend pins flows in an Othello map: the control plane records
// key→pod, the data plane is stateless. No capacity eviction, no idle
// expiry; pool updates move only the flows whose pod actually left.
type othelloBackend struct {
	o     *Othello
	pool  []int
	live  podSet
	stats BackendStats
}

func (b *othelloBackend) Name() string { return "othello" }

func (b *othelloBackend) setPool(pool []int) {
	b.pool = append(b.pool[:0], pool...)
	b.live.set(b.pool)
}

func (b *othelloBackend) Lookup(key packet.FiveTuple, now sim.Time) (int, bool) {
	b.stats.Lookups++
	if !b.o.Contains(key) {
		return -1, false
	}
	b.stats.Hits++
	pod := int(b.o.Get(key))
	if !b.live.has(pod) {
		pod = AssignPod(b.pool, key)
		if pod < 0 {
			b.o.Remove(key)
			return -1, false
		}
		b.o.Put(key, uint16(pod))
		b.stats.Moved++
	}
	return pod, true
}

func (b *othelloBackend) Insert(key packet.FiveTuple, now sim.Time) int {
	pod := AssignPod(b.pool, key)
	if pod < 0 {
		return -1
	}
	b.o.Put(key, uint16(pod))
	b.stats.Inserts++
	return pod
}

func (b *othelloBackend) Evict(now sim.Time) int { return 0 }

func (b *othelloBackend) Update(pool []int) int {
	b.setPool(pool)
	moved := 0
	if len(b.pool) == 0 {
		moved = b.o.Len()
		b.o.Reset()
	} else {
		for _, k := range b.o.Keys() {
			v, _ := b.o.ValueOf(k)
			if !b.live.has(int(v)) {
				b.o.Put(k, uint16(AssignPod(b.pool, k)))
				moved++
			}
		}
	}
	b.stats.Moved += uint64(moved)
	return moved
}

func (b *othelloBackend) Pool() []int { return b.pool }

func (b *othelloBackend) Stats() BackendStats {
	st := b.stats
	st.Rebuilds = b.o.Rebuilds
	return st
}

// Map exposes the underlying Othello structure (experiments measure its
// data-plane arrays directly).
func (b *othelloBackend) Map() *Othello { return b.o }
