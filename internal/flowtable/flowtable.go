// Package flowtable implements the exact-match flow and session tables the
// gateway dataplane uses: VM-NC mappings, SNAT sessions, connection state
// for stateful network functions.
//
// Entries carry a stable synthetic memory address so the cache simulator
// (internal/cachesim) can model which cache lines a lookup touches — the
// mechanism behind the paper's Fig. 4/5 observation that multi-GB tables
// make PLB and RSS equally cache-hostile.
//
// Two concurrency models mirror the paper's §7 stateful-NF lesson:
// SharedSessionTable (one lock, write-heavy NFs contend) and
// ShardedSessionTable (per-core local state, write-light NFs scale).
package flowtable

import (
	"sync"

	"albatross/internal/packet"
	"albatross/internal/sim"
)

// Entry is an exact-match table entry.
type Entry struct {
	Value uint64
	// Addr is a stable synthetic memory address for cache modelling. Every
	// entry occupies SizeBytes of "memory" starting at Addr.
	Addr uint64
	// SizeBytes models the entry footprint; cloud gateway entries are
	// "long, often hundreds of bytes" (paper §4.2).
	SizeBytes int
}

// Table is an exact-match table keyed by five-tuple. Not safe for
// concurrent use; wrap with a lock or shard per core.
//
// Storage is a linear-probing open-addressed array rather than a Go map:
// the packet path does three to six Lookup calls per packet, and an inline
// probe over (hash, key, entry) triples beats the runtime map's generic
// bucket walk by roughly 2x here. Deletes leave tombstones that are
// reclaimed on growth.
type Table struct {
	name      string
	entrySize int
	slots     []tableSlot
	mask      uint32
	count     int // live entries
	used      int // live + tombstones (probe-chain occupancy)
	nextAddr  uint64
	addrBase  uint64
}

type tableSlot struct {
	key   packet.FiveTuple
	hash  uint32
	state uint8 // slotEmpty, slotFull or slotDead
	entry *Entry
}

const (
	slotEmpty = iota
	slotFull
	slotDead // tombstone: probe chains continue through it
)

const tableMinSlots = 16

// addrStride spaces synthetic addresses so distinct tables never share
// cache lines in the model.
const addrStride = 1 << 40

// AddrSpace hands out non-overlapping synthetic address bases. Every
// deterministic simulation context (a core.Node, one experiment) should own
// its own space: bases then depend only on the context's creation order,
// never on what else ran earlier in the process or concurrently on other
// goroutines. The zero value is ready to use.
type AddrSpace struct {
	mu   sync.Mutex
	next uint64
}

// NewAddrSpace returns a fresh address space starting at the first stride.
func NewAddrSpace() *AddrSpace { return &AddrSpace{} }

func (a *AddrSpace) nextBase() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.next++
	return a.next * addrStride
}

// defaultAddrSpace backs the convenience constructors for standalone use;
// reproducible experiments must pass an explicit space instead.
var defaultAddrSpace AddrSpace

// NewTable creates an exact-match table whose entries model entrySize bytes
// of memory each, drawing its address base from the process-global space.
func NewTable(name string, entrySize int) *Table {
	return NewTableIn(nil, name, entrySize)
}

// NewTableIn is NewTable drawing from the given address space (nil falls
// back to the process-global one).
func NewTableIn(space *AddrSpace, name string, entrySize int) *Table {
	if entrySize <= 0 {
		entrySize = 64
	}
	if space == nil {
		space = &defaultAddrSpace
	}
	return &Table{
		name:      name,
		entrySize: entrySize,
		slots:     make([]tableSlot, tableMinSlots),
		mask:      tableMinSlots - 1,
		addrBase:  space.nextBase(),
	}
}

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

// Len returns the number of entries.
func (t *Table) Len() int { return t.count }

// EntrySize returns the modelled per-entry footprint in bytes.
func (t *Table) EntrySize() int { return t.entrySize }

// Insert adds or replaces an entry and returns it.
func (t *Table) Insert(key packet.FiveTuple, value uint64) *Entry {
	if t.used*4 >= len(t.slots)*3 {
		t.grow()
	}
	h := key.Hash()
	i := h & t.mask
	ins := -1 // first tombstone on the probe chain, if any
	for {
		s := &t.slots[i]
		switch s.state {
		case slotEmpty:
			e := &Entry{
				Value:     value,
				Addr:      t.addrBase + t.nextAddr*uint64(t.entrySize),
				SizeBytes: t.entrySize,
			}
			t.nextAddr++
			if ins >= 0 {
				s = &t.slots[ins] // reuse the tombstone
			} else {
				t.used++
			}
			s.key, s.hash, s.state, s.entry = key, h, slotFull, e
			t.count++
			return e
		case slotFull:
			if s.hash == h && s.key == key {
				s.entry.Value = value
				return s.entry
			}
		case slotDead:
			if ins < 0 {
				ins = int(i)
			}
		}
		i = (i + 1) & t.mask
	}
}

// Lookup returns the entry for key, or nil.
func (t *Table) Lookup(key packet.FiveTuple) *Entry {
	return t.LookupHash(key, key.Hash())
}

// LookupHash is Lookup with the caller-precomputed key.Hash() — service
// chains look the same tuple up in several tables and hash it once.
func (t *Table) LookupHash(key packet.FiveTuple, h uint32) *Entry {
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.state == slotEmpty {
			return nil
		}
		if s.state == slotFull && s.hash == h && s.key == key {
			return s.entry
		}
		i = (i + 1) & t.mask
	}
}

// WarmHash reads the head of hash h's probe chain without looking anything
// up — a host-cache prefetch for burst-batched callers (sum the return value
// into a sink so the load is not elided). No model state is touched.
func (t *Table) WarmHash(h uint32) uint64 {
	return uint64(t.slots[h&t.mask].hash)
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(key packet.FiveTuple) bool {
	h := key.Hash()
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.state == slotEmpty {
			return false
		}
		if s.state == slotFull && s.hash == h && s.key == key {
			s.state = slotDead
			s.entry = nil
			t.count--
			return true
		}
		i = (i + 1) & t.mask
	}
}

func (t *Table) grow() {
	// Double only when live entries dominate; a tombstone-heavy table
	// rehashes in place at the same size.
	size := len(t.slots)
	if t.count*2 >= size {
		size *= 2
	}
	old := t.slots
	t.slots = make([]tableSlot, size)
	t.mask = uint32(size - 1)
	t.used = t.count
	for oi := range old {
		s := &old[oi]
		if s.state != slotFull {
			continue
		}
		i := s.hash & t.mask
		for t.slots[i].state != slotEmpty {
			i = (i + 1) & t.mask
		}
		t.slots[i] = *s
	}
}

// MemoryBytes returns the modelled memory footprint of the table.
func (t *Table) MemoryBytes() int64 { return int64(t.count) * int64(t.entrySize) }

// SessionState is the lifecycle state of a stateful NF session.
type SessionState uint8

// Session states.
const (
	StateNew SessionState = iota
	StateEstablished
	StateClosing
)

func (s SessionState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateEstablished:
		return "established"
	case StateClosing:
		return "closing"
	default:
		return "invalid"
	}
}

// Session is per-flow NF state (e.g. an SNAT binding). Counters make the
// session "write-heavy" when updated per packet.
type Session struct {
	Key        packet.FiveTuple
	NATAddr    packet.IPv4Addr
	NATPort    uint16
	State      SessionState
	Packets    uint64
	Bytes      uint64
	Created    sim.Time
	LastActive sim.Time
	Addr       uint64 // synthetic address for cache modelling
	// Pod is the backend pod assignment when the session table serves as a
	// load-balancing Backend; unused (zero) on the NF state path.
	Pod int32
}

// SessionTable stores sessions with capacity-bounded LRU-ish eviction and
// idle expiry. Not safe for concurrent use.
type SessionTable struct {
	m        map[packet.FiveTuple]*Session
	capacity int
	idle     sim.Duration
	addrBase uint64
	nextAddr uint64

	// Evictions counts capacity evictions; Expirations counts idle expiry.
	Evictions   uint64
	Expirations uint64
}

// NewSessionTable creates a session table with the given capacity and idle
// timeout. capacity <= 0 means unbounded.
func NewSessionTable(capacity int, idle sim.Duration) *SessionTable {
	return NewSessionTableIn(nil, capacity, idle)
}

// NewSessionTableIn is NewSessionTable drawing its address base from the
// given address space (nil falls back to the process-global one).
func NewSessionTableIn(space *AddrSpace, capacity int, idle sim.Duration) *SessionTable {
	if space == nil {
		space = &defaultAddrSpace
	}
	return &SessionTable{
		m:        make(map[packet.FiveTuple]*Session),
		capacity: capacity,
		idle:     idle,
		addrBase: space.nextBase(),
	}
}

// Len returns the number of live sessions.
func (st *SessionTable) Len() int { return len(st.m) }

// Lookup returns the session for key and refreshes its activity timestamp,
// or nil if absent.
func (st *SessionTable) Lookup(key packet.FiveTuple, now sim.Time) *Session {
	s := st.m[key]
	if s == nil {
		return nil
	}
	if st.idle > 0 && now.Sub(s.LastActive) > st.idle {
		delete(st.m, key)
		st.Expirations++
		return nil
	}
	s.LastActive = now
	return s
}

// Create inserts a session for key, evicting the least-recently-active
// session if at capacity. It returns the new session.
func (st *SessionTable) Create(key packet.FiveTuple, now sim.Time) *Session {
	if st.capacity > 0 && len(st.m) >= st.capacity {
		st.evictOldest()
	}
	s := &Session{
		Key:        key,
		State:      StateNew,
		Created:    now,
		LastActive: now,
		Addr:       st.addrBase + st.nextAddr*128, // sessions model 128B entries
	}
	st.nextAddr++
	st.m[key] = s
	return s
}

func (st *SessionTable) evictOldest() {
	var oldest *Session
	for _, s := range st.m {
		// Break LastActive ties by insertion order (Addr is monotone in
		// creation) so eviction never depends on map iteration order.
		if oldest == nil || s.LastActive < oldest.LastActive ||
			(s.LastActive == oldest.LastActive && s.Addr < oldest.Addr) {
			oldest = s
		}
	}
	if oldest != nil {
		delete(st.m, oldest.Key)
		st.Evictions++
	}
}

// Range calls fn for every live session until fn returns false. Iteration
// order is unspecified (map order); callers needing determinism must make
// per-session decisions independent of order.
func (st *SessionTable) Range(fn func(*Session) bool) {
	for _, s := range st.m {
		if !fn(s) {
			return
		}
	}
}

// Peek returns the session for key without refreshing activity or
// applying idle expiry (management-plane access).
func (st *SessionTable) Peek(key packet.FiveTuple) *Session { return st.m[key] }

// Delete removes a session outright, reporting whether it existed.
func (st *SessionTable) Delete(key packet.FiveTuple) bool {
	if _, ok := st.m[key]; !ok {
		return false
	}
	delete(st.m, key)
	return true
}

// IdleFlows returns the keys of sessions idle longer than the table
// timeout at time now (without removing them).
func (st *SessionTable) IdleFlows(now sim.Time) []packet.FiveTuple {
	if st.idle <= 0 {
		return nil
	}
	var out []packet.FiveTuple
	for k, s := range st.m {
		if now.Sub(s.LastActive) > st.idle {
			out = append(out, k)
		}
	}
	return out
}

// Expire removes all sessions idle longer than the table timeout and
// returns the count removed.
func (st *SessionTable) Expire(now sim.Time) int {
	if st.idle <= 0 {
		return 0
	}
	n := 0
	for k, s := range st.m {
		if now.Sub(s.LastActive) > st.idle {
			delete(st.m, k)
			n++
		}
	}
	st.Expirations += uint64(n)
	return n
}

// SharedSessionTable is a lock-protected session table shared by all cores:
// the paper's "write-heavy NF with PLB" configuration where per-packet
// counter updates contend on one lock and one set of cache lines.
type SharedSessionTable struct {
	mu sync.Mutex
	st *SessionTable
}

// NewSharedSessionTable wraps a session table for concurrent use.
func NewSharedSessionTable(capacity int, idle sim.Duration) *SharedSessionTable {
	return &SharedSessionTable{st: NewSessionTable(capacity, idle)}
}

// Touch looks up or creates the session for key and applies fn under the
// table lock. It reports whether the session already existed.
func (sh *SharedSessionTable) Touch(key packet.FiveTuple, now sim.Time, fn func(*Session)) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.st.Lookup(key, now)
	existed := s != nil
	if s == nil {
		s = sh.st.Create(key, now)
	}
	if fn != nil {
		fn(s)
	}
	return existed
}

// Len returns the number of live sessions.
func (sh *SharedSessionTable) Len() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.st.Len()
}

// ShardedSessionTable keeps one session table per core — the paper's
// recommended transformation of shared state into local state for
// write-heavy NFs. Flows are pinned to shards by tuple hash so a flow's
// state never migrates (requires RSS-style flow affinity or core-group
// spraying).
type ShardedSessionTable struct {
	shards []*SessionTable
}

// NewShardedSessionTable creates n per-core shards.
func NewShardedSessionTable(n, capacityPerShard int, idle sim.Duration) *ShardedSessionTable {
	if n <= 0 {
		n = 1
	}
	s := &ShardedSessionTable{shards: make([]*SessionTable, n)}
	for i := range s.shards {
		s.shards[i] = NewSessionTable(capacityPerShard, idle)
	}
	return s
}

// ShardFor returns the shard index for a flow.
func (s *ShardedSessionTable) ShardFor(key packet.FiveTuple) int {
	return int(key.Hash() % uint32(len(s.shards)))
}

// Shard returns shard i.
func (s *ShardedSessionTable) Shard(i int) *SessionTable { return s.shards[i] }

// NumShards returns the shard count.
func (s *ShardedSessionTable) NumShards() int { return len(s.shards) }

// Touch looks up or creates the session in the flow's shard and applies fn.
// Unlike SharedSessionTable, no lock is taken: each shard is owned by one
// core. It reports whether the session already existed.
func (s *ShardedSessionTable) Touch(key packet.FiveTuple, now sim.Time, fn func(*Session)) bool {
	st := s.shards[s.ShardFor(key)]
	sess := st.Lookup(key, now)
	existed := sess != nil
	if sess == nil {
		sess = st.Create(key, now)
	}
	if fn != nil {
		fn(sess)
	}
	return existed
}

// Len returns the total number of live sessions across shards.
func (s *ShardedSessionTable) Len() int {
	n := 0
	for _, st := range s.shards {
		n += st.Len()
	}
	return n
}
