package faults

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"albatross/internal/errs"
	"albatross/internal/sim"
)

// recTarget records calls; each Inject* appends an op string.
type recTarget struct {
	ops  []string
	fail bool
}

func (r *recTarget) rec(op string) error {
	r.ops = append(r.ops, op)
	if r.fail {
		return errors.New("boom")
	}
	return nil
}

func (r *recTarget) InjectCoreStall(pod, core int, factor float64, d sim.Duration) error {
	return r.rec("stall")
}
func (r *recTarget) InjectCoreFail(pod, core int, d sim.Duration) error { return r.rec("fail") }
func (r *recTarget) InjectPodCrash(pod int, graceful bool, restartAfter sim.Duration) error {
	if graceful {
		return r.rec("drain")
	}
	return r.rec("crash")
}
func (r *recTarget) InjectReorderStress(pod, queue int, d sim.Duration, holdHeads bool, depthClamp int) error {
	return r.rec("stress")
}
func (r *recTarget) InjectRxLoss(pod, core int, prob float64, d sim.Duration) error {
	return r.rec("rxloss")
}
func (r *recTarget) InjectBGPFlap(d sim.Duration) error { return r.rec("flap") }

// recNodeTarget records node-level calls and resolves pod-level targets
// per member, modeling the cluster shape.
type recNodeTarget struct {
	ops   []string
	nodes []*recTarget
}

func (r *recNodeTarget) rec(op string, node int) error {
	r.ops = append(r.ops, fmt.Sprintf("%s@%d", op, node))
	return nil
}
func (r *recNodeTarget) InjectNodeFault(kind Kind, node int, d sim.Duration) error {
	switch kind {
	case KindNodeCrash:
		return r.rec("nodecrash", node)
	case KindNodeDrain:
		return r.rec("nodedrain", node)
	case KindUplinkWithdraw:
		return r.rec("withdraw", node)
	default:
		return errors.New("not a node kind")
	}
}
func (r *recNodeTarget) NodeAt(node int) (Target, error) {
	if node < 0 || node >= len(r.nodes) {
		return nil, errors.New("no such node")
	}
	return r.nodes[node], nil
}

func TestInjectorFiresPlanInOrder(t *testing.T) {
	eng := sim.NewEngine()
	tgt := &recTarget{}
	plan := (&Plan{}).
		CoreStall(1*sim.Millisecond, 0, 0, 10, 1*sim.Millisecond).
		CoreFail(2*sim.Millisecond, 0, 1, 0).
		PodCrash(3*sim.Millisecond, 0, 0).
		PodDrain(4*sim.Millisecond, 0, 0).
		ReorderStress(5*sim.Millisecond, 0, 0, 1*sim.Millisecond, true, 0).
		RxLoss(6*sim.Millisecond, 0, 0, 0.5, 1*sim.Millisecond).
		BGPFlap(7*sim.Millisecond, 100*sim.Millisecond)
	inj, err := NewInjector(eng, tgt, plan)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(10 * sim.Millisecond)

	want := []string{"stall", "fail", "crash", "drain", "stress", "rxloss", "flap"}
	if len(tgt.ops) != len(want) {
		t.Fatalf("ops = %v, want %v", tgt.ops, want)
	}
	for i := range want {
		if tgt.ops[i] != want[i] {
			t.Fatalf("ops[%d] = %q, want %q", i, tgt.ops[i], want[i])
		}
	}
	log := inj.Log()
	if len(log) != len(want) {
		t.Fatalf("log has %d events, want %d", len(log), len(want))
	}
	for i, e := range log {
		if e.Err != nil {
			t.Fatalf("event %d has error %v", i, e.Err)
		}
		wantAt := sim.Time(sim.Duration(i+1) * sim.Millisecond)
		if e.At != wantAt {
			t.Fatalf("event %d fired at %v, want %v", i, e.At, wantAt)
		}
	}
	if log[0].String() == "" {
		t.Fatal("empty event rendering")
	}
}

func TestInjectorRecordsTargetErrors(t *testing.T) {
	eng := sim.NewEngine()
	tgt := &recTarget{fail: true}
	inj, err := NewInjector(eng, tgt, (&Plan{}).BGPFlap(0, 1*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(1 * sim.Millisecond)
	log := inj.Log()
	if len(log) != 1 || log[0].Err == nil {
		t.Fatalf("expected one errored event, got %+v", log)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []*Plan{
		(&Plan{}).CoreStall(-1, 0, 0, 2, sim.Millisecond),           // negative At
		(&Plan{}).CoreStall(0, 0, 0, 0, sim.Millisecond),            // zero factor
		(&Plan{}).CoreStall(0, 0, 0, 2, 0),                          // no duration
		(&Plan{}).ReorderStress(0, 0, 0, sim.Millisecond, false, 0), // no effect
		(&Plan{}).RxLoss(0, 0, 0, 1.5, sim.Millisecond),             // prob > 1
		(&Plan{}).BGPFlap(0, 0),                                     // no duration
		{Faults: []Fault{{Kind: Kind(200)}}},                        // unknown kind
		{Faults: []Fault{{Kind: KindCoreFail, Pod: -1}}},            // negative index
	}
	for i, p := range bad {
		err := p.Validate()
		if err == nil {
			t.Fatalf("plan %d: expected validation error", i)
		}
		if !errors.Is(err, errs.BadConfig) {
			t.Fatalf("plan %d: error %v does not wrap errs.BadConfig", i, err)
		}
		if _, err2 := NewInjector(sim.NewEngine(), &recTarget{}, p); err2 == nil {
			t.Fatalf("plan %d: NewInjector accepted invalid plan", i)
		}
	}
	ok := (&Plan{}).
		CoreFail(0, 0, 0, 0).
		PodCrash(sim.Millisecond, 1, 0)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestNodeTargetRouting(t *testing.T) {
	eng := sim.NewEngine()
	tgt := &recNodeTarget{nodes: []*recTarget{{}, {}}}
	plan := (&Plan{}).
		NodeCrash(1*sim.Millisecond, 0, 10*sim.Millisecond).
		NodeDrain(2*sim.Millisecond, 1, 10*sim.Millisecond).
		UplinkWithdraw(3*sim.Millisecond, 0, 10*sim.Millisecond)
	// Pod-level faults against a NodeTarget resolve through NodeAt(Node).
	plan.Faults = append(plan.Faults,
		Fault{Kind: KindPodCrash, At: 4 * sim.Millisecond, Node: 1, Pod: 0},
		Fault{Kind: KindPodCrash, At: 5 * sim.Millisecond, Node: 7, Pod: 0}) // bad node
	inj, err := NewInjector(eng, tgt, plan)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(10 * sim.Millisecond)

	want := []string{"nodecrash@0", "nodedrain@1", "withdraw@0"}
	if fmt.Sprint(tgt.ops) != fmt.Sprint(want) {
		t.Fatalf("node ops = %v, want %v", tgt.ops, want)
	}
	if fmt.Sprint(tgt.nodes[1].ops) != fmt.Sprint([]string{"crash"}) {
		t.Fatalf("node 1 pod ops = %v, want [crash]", tgt.nodes[1].ops)
	}
	if len(tgt.nodes[0].ops) != 0 {
		t.Fatalf("node 0 got pod ops %v", tgt.nodes[0].ops)
	}
	log := inj.Log()
	if len(log) != 5 {
		t.Fatalf("log has %d events, want 5", len(log))
	}
	if log[4].Err == nil {
		t.Fatal("out-of-range NodeAt resolution did not surface as event error")
	}
	if s := log[0].String(); !strings.Contains(s, "node=0") {
		t.Fatalf("node event rendering %q lacks node index", s)
	}
}

func TestNodeKindsNeedNodeTarget(t *testing.T) {
	_, err := NewInjector(sim.NewEngine(), &recTarget{}, (&Plan{}).NodeCrash(0, 0, 0))
	if !errors.Is(err, errs.BadConfig) {
		t.Fatalf("expected BadConfig for node kind against pod-only target, got %v", err)
	}
	bad := []*Plan{
		(&Plan{}).NodeDrain(0, 0, 0),                       // no duration
		(&Plan{}).UplinkWithdraw(0, 0, 0),                  // no duration
		{Faults: []Fault{{Kind: KindNodeCrash, Node: -1}}}, // negative index
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, errs.BadConfig) {
			t.Fatalf("plan %d: expected BadConfig, got %v", i, err)
		}
	}
	if err := ((&Plan{}).NodeCrash(0, 2, 0)).Validate(); err != nil {
		t.Fatalf("permanent node crash rejected: %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindCoreStall, KindCoreFail, KindPodCrash, KindPodDrain,
		KindReorderStress, KindRxLoss, KindBGPFlap,
		KindNodeDrain, KindNodeCrash, KindUplinkWithdraw}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
}
