// Package faults is Albatross's deterministic fault-injection subsystem:
// a declarative fault Plan scheduled on the virtual-time engine against a
// Target (the node). Faults model the failure scenarios the paper's
// containerization story is built around — pod-level crashes and gray
// upgrades (§ "Containerized gateways"), sick cores, reorder-engine stress,
// RX DMA loss, and BGP uplink flaps with BFD detection (§4.3).
//
// Everything runs on virtual time: a Plan fired against the same node
// config and seed produces byte-identical traces across repetitions, the
// same contract the eval harness established for healthy runs. The package
// deliberately does not import internal/core; the node implements Target,
// so the dependency arrow points core → faults.
package faults

import (
	"fmt"

	"albatross/internal/errs"
	"albatross/internal/sim"
)

// Kind identifies a fault type.
type Kind uint8

// Fault kinds.
const (
	// KindCoreStall multiplies one core's service times by Factor for
	// Duration (a sick core: thermal throttling, a noisy neighbor, a
	// runaway numa_balancing).
	KindCoreStall Kind = iota
	// KindCoreFail takes one core offline for Duration (or permanently if
	// Duration is 0): its queued and in-service packets are lost, the PLB
	// evicts it from the spray mask and releases its in-flight reorder
	// state.
	KindCoreFail
	// KindPodCrash kills a pod abruptly: all cores fail, reorder state is
	// flushed, and the pod's tenants are redirected to a sibling pod until
	// the pod restarts Duration later (container restart).
	KindPodCrash
	// KindPodDrain is the gray-upgrade path: the pod stops accepting new
	// packets (tenants redirect to a sibling immediately), in-flight
	// packets drain normally, and the replacement pod takes over Duration
	// later. Zero packets are lost.
	KindPodDrain
	// KindReorderStress stresses one PLB order queue for Duration: forced
	// head-of-line blocking (HoldHeads) and/or FIFO depth clamping
	// (DepthClamp) to provoke overflow drops and timeout storms.
	KindReorderStress
	// KindRxLoss drops packets on one core's RX path with probability
	// Factor for Duration (DMA/queue corruption). Lost packets leave their
	// reorder FIFO entries behind — a realistic HOL source.
	KindRxLoss
	// KindBGPFlap takes the node's BGP uplink down for Duration. BFD
	// detects after DetectMult missed probes; traffic is blackholed during
	// detection, then rides the proxy re-advertisement until the session
	// re-establishes.
	KindBGPFlap
	// KindNodeDrain gray-upgrades a whole node: its route is withdrawn
	// administratively (make-before-break — the cluster re-ECMPs its flows
	// to survivors first, zero loss), its pods drain, and the node rejoins
	// Duration later. Requires a NodeTarget (the cluster).
	KindNodeDrain
	// KindNodeCrash kills a whole node abruptly: the uplink goes down (BFD
	// detects after the probe window, blackholing in-flight arrivals), every
	// pod crashes, and the cluster re-ECMPs the node's flows to survivors.
	// The node recovers Duration later (0 = never). Requires a NodeTarget.
	KindNodeCrash
	// KindUplinkWithdraw administratively withdraws one node's route for
	// Duration without touching its pods — the operator "drain the uplink"
	// action. Requires a NodeTarget.
	KindUplinkWithdraw
)

// String returns the kind's wire name.
func (k Kind) String() string {
	switch k {
	case KindCoreStall:
		return "core-stall"
	case KindCoreFail:
		return "core-fail"
	case KindPodCrash:
		return "pod-crash"
	case KindPodDrain:
		return "pod-drain"
	case KindReorderStress:
		return "reorder-stress"
	case KindRxLoss:
		return "rx-loss"
	case KindBGPFlap:
		return "bgp-flap"
	case KindNodeDrain:
		return "node-drain"
	case KindNodeCrash:
		return "node-crash"
	case KindUplinkWithdraw:
		return "uplink-withdraw"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Fault is one scheduled fault. Which fields matter depends on Kind.
type Fault struct {
	Kind Kind
	// At is the injection time, relative to when the injector is armed.
	At sim.Duration
	// Duration is the fault length; for KindPodCrash/KindPodDrain it is
	// the restart/upgrade time. 0 means "use the kind's default" where a
	// default exists (pod restart) or "permanent" (core failure).
	Duration sim.Duration
	// Node indexes the target node within a cluster (node-level kinds, and
	// pod-level kinds fired against a NodeTarget). Single-node targets
	// ignore it.
	Node int
	// Pod indexes the target pod (in deployment order).
	Pod int
	// Core indexes the target core within the pod.
	Core int
	// Queue indexes the target PLB order queue.
	Queue int
	// Factor is the stall service-time multiplier (KindCoreStall) or the
	// loss probability (KindRxLoss).
	Factor float64
	// HoldHeads and DepthClamp select the reorder-stress effects.
	HoldHeads  bool
	DepthClamp int
}

// Plan is an ordered fault schedule. The zero value is a valid empty plan;
// the builder methods append and return the plan for chaining.
type Plan struct {
	Faults []Fault
}

// CoreStall schedules a service-time blowup: pod/core runs factor× slower
// from at until at+d.
func (p *Plan) CoreStall(at sim.Duration, pod, core int, factor float64, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindCoreStall, At: at, Duration: d, Pod: pod, Core: core, Factor: factor})
	return p
}

// CoreFail schedules a core failure at at, recovering after d (0 = never).
func (p *Plan) CoreFail(at sim.Duration, pod, core int, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindCoreFail, At: at, Duration: d, Pod: pod, Core: core})
	return p
}

// PodCrash schedules an abrupt pod crash at at, restarting after d
// (0 = the container StartupTime default).
func (p *Plan) PodCrash(at sim.Duration, pod int, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindPodCrash, At: at, Duration: d, Pod: pod})
	return p
}

// PodDrain schedules a graceful gray-upgrade drain at at, completing after
// d (0 = the container StartupTime default).
func (p *Plan) PodDrain(at sim.Duration, pod int, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindPodDrain, At: at, Duration: d, Pod: pod})
	return p
}

// ReorderStress schedules PLB order-queue stress on pod/queue for d.
func (p *Plan) ReorderStress(at sim.Duration, pod, queue int, d sim.Duration, holdHeads bool, depthClamp int) *Plan {
	p.Faults = append(p.Faults, Fault{
		Kind: KindReorderStress, At: at, Duration: d, Pod: pod, Queue: queue,
		HoldHeads: holdHeads, DepthClamp: depthClamp,
	})
	return p
}

// RxLoss schedules RX-path loss with probability prob on pod/core for d.
func (p *Plan) RxLoss(at sim.Duration, pod, core int, prob float64, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindRxLoss, At: at, Duration: d, Pod: pod, Core: core, Factor: prob})
	return p
}

// BGPFlap schedules a BGP uplink flap of length d at at.
func (p *Plan) BGPFlap(at, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindBGPFlap, At: at, Duration: d})
	return p
}

// NodeDrain schedules a node-level gray upgrade at at: node leaves the
// ECMP group (make-before-break), drains, and rejoins after d.
func (p *Plan) NodeDrain(at sim.Duration, node int, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindNodeDrain, At: at, Duration: d, Node: node})
	return p
}

// NodeCrash schedules an abrupt node crash at at, recovering after d
// (0 = never).
func (p *Plan) NodeCrash(at sim.Duration, node int, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindNodeCrash, At: at, Duration: d, Node: node})
	return p
}

// UplinkWithdraw schedules an administrative route withdrawal on node for d.
func (p *Plan) UplinkWithdraw(at sim.Duration, node int, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindUplinkWithdraw, At: at, Duration: d, Node: node})
	return p
}

// Validate checks the plan's static shape (indices are checked against the
// live node at fire time, since pods may be added after the plan is built).
func (p *Plan) Validate() error {
	for i, f := range p.Faults {
		if f.At < 0 {
			return fmt.Errorf("faults: fault %d (%v): negative At %v: %w", i, f.Kind, f.At, errs.BadConfig)
		}
		if f.Duration < 0 {
			return fmt.Errorf("faults: fault %d (%v): negative Duration: %w", i, f.Kind, errs.BadConfig)
		}
		if f.Node < 0 || f.Pod < 0 || f.Core < 0 || f.Queue < 0 {
			return fmt.Errorf("faults: fault %d (%v): negative target index: %w", i, f.Kind, errs.BadConfig)
		}
		switch f.Kind {
		case KindCoreStall:
			if f.Factor <= 0 {
				return fmt.Errorf("faults: fault %d: stall factor %g must be positive: %w", i, f.Factor, errs.BadConfig)
			}
			if f.Duration == 0 {
				return fmt.Errorf("faults: fault %d: stall needs a duration: %w", i, errs.BadConfig)
			}
		case KindCoreFail, KindPodCrash, KindPodDrain:
			// Duration 0 is legal (permanent / default restart).
		case KindReorderStress:
			if f.Duration == 0 {
				return fmt.Errorf("faults: fault %d: reorder stress needs a duration: %w", i, errs.BadConfig)
			}
			if !f.HoldHeads && f.DepthClamp <= 0 {
				return fmt.Errorf("faults: fault %d: reorder stress selects no effect: %w", i, errs.BadConfig)
			}
		case KindRxLoss:
			if f.Factor <= 0 || f.Factor > 1 {
				return fmt.Errorf("faults: fault %d: loss probability %g out of (0,1]: %w", i, f.Factor, errs.BadConfig)
			}
			if f.Duration == 0 {
				return fmt.Errorf("faults: fault %d: rx loss needs a duration: %w", i, errs.BadConfig)
			}
		case KindBGPFlap:
			if f.Duration == 0 {
				return fmt.Errorf("faults: fault %d: flap needs a duration: %w", i, errs.BadConfig)
			}
		case KindNodeCrash:
			// Duration 0 is legal (permanent).
		case KindNodeDrain, KindUplinkWithdraw:
			if f.Duration == 0 {
				return fmt.Errorf("faults: fault %d: %v needs a duration: %w", i, f.Kind, errs.BadConfig)
			}
		default:
			return fmt.Errorf("faults: fault %d: unknown kind %d: %w", i, uint8(f.Kind), errs.BadConfig)
		}
	}
	return nil
}

// Target is what an injector drives for pod-level faults. internal/core's
// Node implements it; the indirection keeps this package free of a core
// dependency.
type Target interface {
	InjectCoreStall(pod, core int, factor float64, d sim.Duration) error
	InjectCoreFail(pod, core int, d sim.Duration) error
	InjectPodCrash(pod int, graceful bool, restartAfter sim.Duration) error
	InjectReorderStress(pod, queue int, d sim.Duration, holdHeads bool, depthClamp int) error
	InjectRxLoss(pod, core int, prob float64, d sim.Duration) error
	InjectBGPFlap(d sim.Duration) error
}

// NodeTarget is what an injector drives for node-level faults.
// internal/cluster's Cluster implements it. InjectNodeFault is the single
// entry point for every node-level kind (KindNodeCrash, KindNodeDrain,
// KindUplinkWithdraw); NodeAt resolves a member node's pod-level Target, so
// one cluster plan can mix node- and pod-level faults (Fault.Node selects
// the member for both).
type NodeTarget interface {
	InjectNodeFault(kind Kind, node int, d sim.Duration) error
	NodeAt(node int) (Target, error)
}

// Event is one injector log entry, recorded when a fault fires.
type Event struct {
	At    sim.Time // virtual fire time
	Fault Fault
	// Err is non-nil when the target rejected the fault (e.g. the plan
	// named a pod that was never deployed).
	Err error
}

// nodeKind reports whether k is a node-level fault kind.
func nodeKind(k Kind) bool {
	return k == KindNodeDrain || k == KindNodeCrash || k == KindUplinkWithdraw
}

// String renders the event for fault logs; the format is deterministic.
func (e Event) String() string {
	var s string
	if nodeKind(e.Fault.Kind) {
		s = fmt.Sprintf("t=%v inject %v node=%d", sim.Duration(e.At), e.Fault.Kind, e.Fault.Node)
	} else {
		s = fmt.Sprintf("t=%v inject %v pod=%d core=%d", sim.Duration(e.At), e.Fault.Kind, e.Fault.Pod, e.Fault.Core)
	}
	if e.Fault.Duration > 0 {
		s += fmt.Sprintf(" for %v", e.Fault.Duration)
	}
	if e.Err != nil {
		s += " ERROR: " + e.Err.Error()
	}
	return s
}

// Injector schedules a plan's faults on the engine and dispatches them to
// the target when they fire.
type Injector struct {
	engine *sim.Engine
	target Target     // pod-level target (nil when driving a pure NodeTarget)
	nodes  NodeTarget // node-level target (nil when driving a single node)
	events []Event
}

// firing boxes one scheduled fault for the arg-form engine callback.
type firing struct {
	inj   *Injector
	fault Fault
}

// NewInjector validates the plan and arms every fault at now+Fault.At.
// target must implement Target (a single node), NodeTarget (a cluster), or
// both. Against a NodeTarget, pod-level faults are resolved through
// NodeAt(Fault.Node) at fire time.
func NewInjector(engine *sim.Engine, target any, plan *Plan) (*Injector, error) {
	if engine == nil || target == nil {
		return nil, fmt.Errorf("faults: nil engine or target: %w", errs.BadConfig)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{engine: engine}
	inj.target, _ = target.(Target)
	inj.nodes, _ = target.(NodeTarget)
	if inj.target == nil && inj.nodes == nil {
		return nil, fmt.Errorf("faults: target %T implements neither Target nor NodeTarget: %w", target, errs.BadConfig)
	}
	for _, f := range plan.Faults {
		if nodeKind(f.Kind) && inj.nodes == nil {
			return nil, fmt.Errorf("faults: %v needs a NodeTarget, target is %T: %w", f.Kind, target, errs.BadConfig)
		}
		engine.AfterArg(f.At, fireFault, &firing{inj: inj, fault: f})
	}
	return inj, nil
}

// podTarget resolves the pod-level target for fault f.
func (inj *Injector) podTarget(f Fault) (Target, error) {
	if inj.target != nil {
		return inj.target, nil
	}
	return inj.nodes.NodeAt(f.Node)
}

func fireFault(arg any) {
	fr := arg.(*firing)
	inj, f := fr.inj, fr.fault
	var err error
	switch f.Kind {
	case KindNodeCrash, KindNodeDrain, KindUplinkWithdraw:
		err = inj.nodes.InjectNodeFault(f.Kind, f.Node, f.Duration)
	default:
		var t Target
		t, err = inj.podTarget(f)
		if err != nil {
			break
		}
		switch f.Kind {
		case KindCoreStall:
			err = t.InjectCoreStall(f.Pod, f.Core, f.Factor, f.Duration)
		case KindCoreFail:
			err = t.InjectCoreFail(f.Pod, f.Core, f.Duration)
		case KindPodCrash:
			err = t.InjectPodCrash(f.Pod, false, f.Duration)
		case KindPodDrain:
			err = t.InjectPodCrash(f.Pod, true, f.Duration)
		case KindReorderStress:
			err = t.InjectReorderStress(f.Pod, f.Queue, f.Duration, f.HoldHeads, f.DepthClamp)
		case KindRxLoss:
			err = t.InjectRxLoss(f.Pod, f.Core, f.Factor, f.Duration)
		case KindBGPFlap:
			err = t.InjectBGPFlap(f.Duration)
		}
	}
	inj.events = append(inj.events, Event{At: inj.engine.Now(), Fault: f, Err: err})
}

// Log returns the fired-fault log in fire order.
func (inj *Injector) Log() []Event { return inj.events }
