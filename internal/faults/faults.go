// Package faults is Albatross's deterministic fault-injection subsystem:
// a declarative fault Plan scheduled on the virtual-time engine against a
// Target (the node). Faults model the failure scenarios the paper's
// containerization story is built around — pod-level crashes and gray
// upgrades (§ "Containerized gateways"), sick cores, reorder-engine stress,
// RX DMA loss, and BGP uplink flaps with BFD detection (§4.3).
//
// Everything runs on virtual time: a Plan fired against the same node
// config and seed produces byte-identical traces across repetitions, the
// same contract the eval harness established for healthy runs. The package
// deliberately does not import internal/core; the node implements Target,
// so the dependency arrow points core → faults.
package faults

import (
	"fmt"

	"albatross/internal/errs"
	"albatross/internal/sim"
)

// Kind identifies a fault type.
type Kind uint8

// Fault kinds.
const (
	// KindCoreStall multiplies one core's service times by Factor for
	// Duration (a sick core: thermal throttling, a noisy neighbor, a
	// runaway numa_balancing).
	KindCoreStall Kind = iota
	// KindCoreFail takes one core offline for Duration (or permanently if
	// Duration is 0): its queued and in-service packets are lost, the PLB
	// evicts it from the spray mask and releases its in-flight reorder
	// state.
	KindCoreFail
	// KindPodCrash kills a pod abruptly: all cores fail, reorder state is
	// flushed, and the pod's tenants are redirected to a sibling pod until
	// the pod restarts Duration later (container restart).
	KindPodCrash
	// KindPodDrain is the gray-upgrade path: the pod stops accepting new
	// packets (tenants redirect to a sibling immediately), in-flight
	// packets drain normally, and the replacement pod takes over Duration
	// later. Zero packets are lost.
	KindPodDrain
	// KindReorderStress stresses one PLB order queue for Duration: forced
	// head-of-line blocking (HoldHeads) and/or FIFO depth clamping
	// (DepthClamp) to provoke overflow drops and timeout storms.
	KindReorderStress
	// KindRxLoss drops packets on one core's RX path with probability
	// Factor for Duration (DMA/queue corruption). Lost packets leave their
	// reorder FIFO entries behind — a realistic HOL source.
	KindRxLoss
	// KindBGPFlap takes the node's BGP uplink down for Duration. BFD
	// detects after DetectMult missed probes; traffic is blackholed during
	// detection, then rides the proxy re-advertisement until the session
	// re-establishes.
	KindBGPFlap
)

// String returns the kind's wire name.
func (k Kind) String() string {
	switch k {
	case KindCoreStall:
		return "core-stall"
	case KindCoreFail:
		return "core-fail"
	case KindPodCrash:
		return "pod-crash"
	case KindPodDrain:
		return "pod-drain"
	case KindReorderStress:
		return "reorder-stress"
	case KindRxLoss:
		return "rx-loss"
	case KindBGPFlap:
		return "bgp-flap"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Fault is one scheduled fault. Which fields matter depends on Kind.
type Fault struct {
	Kind Kind
	// At is the injection time, relative to when the injector is armed.
	At sim.Duration
	// Duration is the fault length; for KindPodCrash/KindPodDrain it is
	// the restart/upgrade time. 0 means "use the kind's default" where a
	// default exists (pod restart) or "permanent" (core failure).
	Duration sim.Duration
	// Pod indexes the target pod (in deployment order).
	Pod int
	// Core indexes the target core within the pod.
	Core int
	// Queue indexes the target PLB order queue.
	Queue int
	// Factor is the stall service-time multiplier (KindCoreStall) or the
	// loss probability (KindRxLoss).
	Factor float64
	// HoldHeads and DepthClamp select the reorder-stress effects.
	HoldHeads  bool
	DepthClamp int
}

// Plan is an ordered fault schedule. The zero value is a valid empty plan;
// the builder methods append and return the plan for chaining.
type Plan struct {
	Faults []Fault
}

// CoreStall schedules a service-time blowup: pod/core runs factor× slower
// from at until at+d.
func (p *Plan) CoreStall(at sim.Duration, pod, core int, factor float64, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindCoreStall, At: at, Duration: d, Pod: pod, Core: core, Factor: factor})
	return p
}

// CoreFail schedules a core failure at at, recovering after d (0 = never).
func (p *Plan) CoreFail(at sim.Duration, pod, core int, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindCoreFail, At: at, Duration: d, Pod: pod, Core: core})
	return p
}

// PodCrash schedules an abrupt pod crash at at, restarting after d
// (0 = the container StartupTime default).
func (p *Plan) PodCrash(at sim.Duration, pod int, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindPodCrash, At: at, Duration: d, Pod: pod})
	return p
}

// PodDrain schedules a graceful gray-upgrade drain at at, completing after
// d (0 = the container StartupTime default).
func (p *Plan) PodDrain(at sim.Duration, pod int, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindPodDrain, At: at, Duration: d, Pod: pod})
	return p
}

// ReorderStress schedules PLB order-queue stress on pod/queue for d.
func (p *Plan) ReorderStress(at sim.Duration, pod, queue int, d sim.Duration, holdHeads bool, depthClamp int) *Plan {
	p.Faults = append(p.Faults, Fault{
		Kind: KindReorderStress, At: at, Duration: d, Pod: pod, Queue: queue,
		HoldHeads: holdHeads, DepthClamp: depthClamp,
	})
	return p
}

// RxLoss schedules RX-path loss with probability prob on pod/core for d.
func (p *Plan) RxLoss(at sim.Duration, pod, core int, prob float64, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindRxLoss, At: at, Duration: d, Pod: pod, Core: core, Factor: prob})
	return p
}

// BGPFlap schedules a BGP uplink flap of length d at at.
func (p *Plan) BGPFlap(at, d sim.Duration) *Plan {
	p.Faults = append(p.Faults, Fault{Kind: KindBGPFlap, At: at, Duration: d})
	return p
}

// Validate checks the plan's static shape (indices are checked against the
// live node at fire time, since pods may be added after the plan is built).
func (p *Plan) Validate() error {
	for i, f := range p.Faults {
		if f.At < 0 {
			return fmt.Errorf("faults: fault %d (%v): negative At %v: %w", i, f.Kind, f.At, errs.BadConfig)
		}
		if f.Duration < 0 {
			return fmt.Errorf("faults: fault %d (%v): negative Duration: %w", i, f.Kind, errs.BadConfig)
		}
		if f.Pod < 0 || f.Core < 0 || f.Queue < 0 {
			return fmt.Errorf("faults: fault %d (%v): negative target index: %w", i, f.Kind, errs.BadConfig)
		}
		switch f.Kind {
		case KindCoreStall:
			if f.Factor <= 0 {
				return fmt.Errorf("faults: fault %d: stall factor %g must be positive: %w", i, f.Factor, errs.BadConfig)
			}
			if f.Duration == 0 {
				return fmt.Errorf("faults: fault %d: stall needs a duration: %w", i, errs.BadConfig)
			}
		case KindCoreFail, KindPodCrash, KindPodDrain:
			// Duration 0 is legal (permanent / default restart).
		case KindReorderStress:
			if f.Duration == 0 {
				return fmt.Errorf("faults: fault %d: reorder stress needs a duration: %w", i, errs.BadConfig)
			}
			if !f.HoldHeads && f.DepthClamp <= 0 {
				return fmt.Errorf("faults: fault %d: reorder stress selects no effect: %w", i, errs.BadConfig)
			}
		case KindRxLoss:
			if f.Factor <= 0 || f.Factor > 1 {
				return fmt.Errorf("faults: fault %d: loss probability %g out of (0,1]: %w", i, f.Factor, errs.BadConfig)
			}
			if f.Duration == 0 {
				return fmt.Errorf("faults: fault %d: rx loss needs a duration: %w", i, errs.BadConfig)
			}
		case KindBGPFlap:
			if f.Duration == 0 {
				return fmt.Errorf("faults: fault %d: flap needs a duration: %w", i, errs.BadConfig)
			}
		default:
			return fmt.Errorf("faults: fault %d: unknown kind %d: %w", i, uint8(f.Kind), errs.BadConfig)
		}
	}
	return nil
}

// Target is what an injector drives. internal/core's Node implements it;
// the indirection keeps this package free of a core dependency.
type Target interface {
	InjectCoreStall(pod, core int, factor float64, d sim.Duration) error
	InjectCoreFail(pod, core int, d sim.Duration) error
	InjectPodCrash(pod int, graceful bool, restartAfter sim.Duration) error
	InjectReorderStress(pod, queue int, d sim.Duration, holdHeads bool, depthClamp int) error
	InjectRxLoss(pod, core int, prob float64, d sim.Duration) error
	InjectBGPFlap(d sim.Duration) error
}

// Event is one injector log entry, recorded when a fault fires.
type Event struct {
	At    sim.Time // virtual fire time
	Fault Fault
	// Err is non-nil when the target rejected the fault (e.g. the plan
	// named a pod that was never deployed).
	Err error
}

// String renders the event for fault logs; the format is deterministic.
func (e Event) String() string {
	s := fmt.Sprintf("t=%v inject %v pod=%d core=%d", sim.Duration(e.At), e.Fault.Kind, e.Fault.Pod, e.Fault.Core)
	if e.Fault.Duration > 0 {
		s += fmt.Sprintf(" for %v", e.Fault.Duration)
	}
	if e.Err != nil {
		s += " ERROR: " + e.Err.Error()
	}
	return s
}

// Injector schedules a plan's faults on the engine and dispatches them to
// the target when they fire.
type Injector struct {
	engine *sim.Engine
	target Target
	events []Event
}

// firing boxes one scheduled fault for the arg-form engine callback.
type firing struct {
	inj   *Injector
	fault Fault
}

// NewInjector validates the plan and arms every fault at now+Fault.At.
func NewInjector(engine *sim.Engine, target Target, plan *Plan) (*Injector, error) {
	if engine == nil || target == nil {
		return nil, fmt.Errorf("faults: nil engine or target: %w", errs.BadConfig)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{engine: engine, target: target}
	for _, f := range plan.Faults {
		engine.AfterArg(f.At, fireFault, &firing{inj: inj, fault: f})
	}
	return inj, nil
}

func fireFault(arg any) {
	fr := arg.(*firing)
	inj, f := fr.inj, fr.fault
	var err error
	switch f.Kind {
	case KindCoreStall:
		err = inj.target.InjectCoreStall(f.Pod, f.Core, f.Factor, f.Duration)
	case KindCoreFail:
		err = inj.target.InjectCoreFail(f.Pod, f.Core, f.Duration)
	case KindPodCrash:
		err = inj.target.InjectPodCrash(f.Pod, false, f.Duration)
	case KindPodDrain:
		err = inj.target.InjectPodCrash(f.Pod, true, f.Duration)
	case KindReorderStress:
		err = inj.target.InjectReorderStress(f.Pod, f.Queue, f.Duration, f.HoldHeads, f.DepthClamp)
	case KindRxLoss:
		err = inj.target.InjectRxLoss(f.Pod, f.Core, f.Factor, f.Duration)
	case KindBGPFlap:
		err = inj.target.InjectBGPFlap(f.Duration)
	}
	inj.events = append(inj.events, Event{At: inj.engine.Now(), Fault: f, Err: err})
}

// Log returns the fired-fault log in fire order.
func (inj *Injector) Log() []Event { return inj.events }
