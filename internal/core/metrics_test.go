package core

import (
	"testing"

	"albatross/internal/metrics"
	"albatross/internal/pod"
	"albatross/internal/sim"
)

func TestNodeMetricsSnapshot(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(1000, 1)
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)
	runStageTraffic(t, n, pr, wf, 20*sim.Millisecond)

	snap := n.Metrics()
	podL := []metrics.Label{metrics.L("pod", "gw"), metrics.L("slot", "0")}
	rx, ok := snap.Find("albatross_pod_rx_packets_total", podL...)
	if !ok || rx.Value != float64(pr.Rx) {
		t.Fatalf("rx metric = %+v ok=%v, want %d", rx, ok, pr.Rx)
	}
	lat, ok := snap.Find("albatross_pod_latency_ns", podL...)
	if !ok || lat.Hist == nil || lat.Hist.Count != pr.Latency.Count() {
		t.Fatalf("latency metric = %+v ok=%v", lat, ok)
	}
	// Per-stage residency series exist for every stage and agree with the
	// pipeline's own histograms.
	resid := pr.StageResidency()
	for i, name := range StageNames() {
		sv, ok := snap.Find("albatross_stage_residency_ns",
			append(podL, metrics.L("stage", name))...)
		if !ok || sv.Hist == nil {
			t.Fatalf("missing residency series for stage %q", name)
		}
		if sv.Hist.Count != resid[i].Count() || sv.Hist.Sum != resid[i].Sum() {
			t.Fatalf("stage %q metric count=%d sum=%d, histogram count=%d sum=%d",
				name, sv.Hist.Count, sv.Hist.Sum, resid[i].Count(), resid[i].Sum())
		}
	}
	if sv, ok := snap.Find("albatross_stage_packets_total",
		append(podL, metrics.L("stage", "nic-egress"), metrics.L("event", "out"))...); !ok ||
		sv.Value != float64(pr.Tx) {
		t.Fatalf("egress out metric = %+v ok=%v, want %d", sv, ok, pr.Tx)
	}
}

func TestNodeMetricsDeterministic(t *testing.T) {
	run := func() (string, string) {
		n := smallNode(t, nil)
		wf, sf := wflows(1000, 1)
		pr := addPod(t, n, pod.ModePLB, 4, sf, nil)
		runStageTraffic(t, n, pr, wf, 20*sim.Millisecond)
		snap := n.Metrics()
		j, err := snap.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return snap.Prometheus(), string(j)
	}
	p1, j1 := run()
	p2, j2 := run()
	if p1 != p2 {
		t.Fatal("Prometheus export differs between identical runs")
	}
	if j1 != j2 {
		t.Fatal("JSON export differs between identical runs")
	}
	if p1 == "" || j1 == "" {
		t.Fatal("empty export")
	}
}
