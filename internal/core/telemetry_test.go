package core

import (
	"strings"
	"testing"

	"albatross/internal/nicsim"
	"albatross/internal/pod"
	"albatross/internal/sim"
	"albatross/internal/workload"
)

// assertResidencyCounts checks the histogram/counter contract: every stage
// records exactly one residency sample per packet that left it, by any
// verdict (Out or Drop).
func assertResidencyCounts(t *testing.T, pr *PodRuntime) {
	t.Helper()
	st := pr.Stages()
	for i, h := range pr.StageResidency() {
		if want := st[i].Out + st[i].Drops; h.Count() != want {
			t.Fatalf("stage %q residency count %d != out+drops %d", st[i].Name, h.Count(), want)
		}
	}
}

func TestStageResidencyPartitionsLatency(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(2000, 1)
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)
	runStageTraffic(t, n, pr, wf, 50*sim.Millisecond)
	if pr.Tx == 0 || pr.Tx != pr.Rx {
		t.Fatalf("need a drop-free run: tx=%d rx=%d", pr.Tx, pr.Rx)
	}
	assertResidencyCounts(t, pr)

	// Stage enter times are contiguous (each stage enters the instant the
	// previous one leaves) and Record keeps exact int64 sums, so with no
	// drops the per-stage residencies partition end-to-end latency EXACTLY.
	var sum int64
	for _, h := range pr.StageResidency() {
		sum += h.Sum()
	}
	if sum != pr.Latency.Sum() {
		t.Fatalf("stage residency sum %d != latency sum %d", sum, pr.Latency.Sum())
	}

	// The NIC DMA stages are deterministic: every PLB data packet spends
	// exactly the Tab. 4 model latency there, so min == max == the model.
	model := nicsim.DefaultLatencyModel()
	resid := pr.StageResidency()
	if in := resid[stageIngress]; in.Min() != in.Max() || in.Min() != int64(model.IngressLatency(nicsim.ClassPLB)) {
		t.Fatalf("nic-ingress residency [%d,%d], want exactly %d",
			in.Min(), in.Max(), int64(model.IngressLatency(nicsim.ClassPLB)))
	}
	if eg := resid[stageEgress]; eg.Min() != eg.Max() || eg.Min() != int64(model.EgressLatency(nicsim.ClassPLB)) {
		t.Fatalf("nic-egress residency [%d,%d], want exactly %d",
			eg.Min(), eg.Max(), int64(model.EgressLatency(nicsim.ClassPLB)))
	}
	// The CPU stage holds queue wait + service time: strictly positive.
	if cpu := resid[stageCPU]; cpu.Min() <= 0 || cpu.Count() != pr.Tx {
		t.Fatalf("cpu residency min=%d count=%d (tx=%d)", cpu.Min(), cpu.Count(), pr.Tx)
	}
	// Synchronous stages occupy zero virtual time.
	for _, i := range []int{stageClassify, stageGOP, stageDispatch} {
		if h := resid[i]; h.Max() != 0 {
			t.Fatalf("sync stage %d residency max = %d, want 0", i, h.Max())
		}
	}
}

func TestFlightRecorderCapturesDrops(t *testing.T) {
	n := smallNode(t, nil)
	wf := workload.GenerateFlows(1000, 10, 9)
	sf := workload.ServiceFlows(wf, 0.2) // 20% ACL-denied
	pr := addPod(t, n, pod.ModePLB, 4, sf, func(c *PodConfig) {
		c.TraceSampleEvery = 1 // trace every packet
		c.TraceRing = 16
	})
	runStageTraffic(t, n, pr, wf, 20*sim.Millisecond)

	fr := pr.Flight()
	if fr.Sampled != pr.Rx {
		t.Fatalf("sampled %d != rx %d at every=1", fr.Sampled, pr.Rx)
	}
	if fr.Drops == 0 {
		t.Fatal("ACL drops occurred but no dropped journeys were recorded")
	}
	if fr.Drops != pr.ServiceDrop {
		t.Fatalf("journey drops %d != service drops %d", fr.Drops, pr.ServiceDrop)
	}
	// After drain every sampled journey was finished exactly once.
	if fr.Drops+fr.Timeouts+fr.Discarded != fr.Sampled {
		t.Fatalf("journey accounting: %d+%d+%d != %d",
			fr.Drops, fr.Timeouts, fr.Discarded, fr.Sampled)
	}
	js := fr.Journeys()
	if len(js) != 16 {
		t.Fatalf("ring retained %d journeys, want full ring of 16 (committed %d)",
			len(js), fr.Committed())
	}
	for _, j := range js {
		if j.Reason != JourneyDropped {
			t.Fatalf("unexpected reason %v", j.Reason)
		}
		if j.NSteps == 0 {
			t.Fatal("journey with no steps")
		}
		last := j.Steps[j.NSteps-1]
		if last.Verdict != StepDrop || last.Stage != int8(stageCPU) {
			t.Fatalf("ACL drop journey ends %v at stage %d, want drop at cpu", last.Verdict, last.Stage)
		}
		if !j.ViaPLB || j.Core < 0 {
			t.Fatalf("PLB journey missing dispatch detail: viaPLB=%v core=%d", j.ViaPLB, j.Core)
		}
		if j.End < j.T0 {
			t.Fatalf("journey ends before it starts: %v < %v", j.End, j.T0)
		}
		s := j.String()
		if !strings.Contains(s, "dropped") || !strings.Contains(s, "cpu") {
			t.Fatalf("journey rendering missing detail:\n%s", s)
		}
	}
	assertResidencyCounts(t, pr)
}

func TestFlightRecorderCapturesTimeoutReleases(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(1000, 9)
	pr := addPod(t, n, pod.ModePLB, 4, sf, func(c *PodConfig) {
		c.TraceSampleEvery = 1
	})
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e6), Seed: 10, Sink: pr.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(10 * sim.Millisecond)
	// Forced HOL: hold every order-queue head past the reorder timeout, so
	// returned packets are released best-effort (timeout releases).
	for q := 0; q < pr.Pod.ReorderQueues; q++ {
		if err := n.InjectReorderStress(0, q, 5*sim.Millisecond, true, 0); err != nil {
			t.Fatal(err)
		}
	}
	n.RunFor(20 * sim.Millisecond)
	drainPod(t, n, pr, src)

	fr := pr.Flight()
	if fr.Timeouts == 0 {
		t.Fatal("HOL run produced no timeout-release journeys")
	}
	var sawTimeout bool
	for _, j := range fr.Journeys() {
		if j.Reason != JourneyTimeoutRelease {
			continue
		}
		sawTimeout = true
		last := j.Steps[j.NSteps-1]
		// Timeout-released packets still complete through egress.
		if last.Verdict != StepExit || last.Stage != int8(stageEgress) {
			t.Fatalf("timeout journey ends %v at stage %d, want exit at nic-egress",
				last.Verdict, last.Stage)
		}
	}
	if !sawTimeout {
		t.Fatal("ring retained no timeout-release journeys")
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(500, 1)
	pr := addPod(t, n, pod.ModePLB, 4, sf, func(c *PodConfig) {
		c.TraceSampleEvery = -1
	})
	runStageTraffic(t, n, pr, wf, 10*sim.Millisecond)
	fr := pr.Flight()
	if fr.Sampled != 0 || len(fr.Journeys()) != 0 {
		t.Fatalf("disabled recorder sampled %d journeys", fr.Sampled)
	}
}

func TestFlightRecorderDeterministic(t *testing.T) {
	run := func() []string {
		n := smallNode(t, nil)
		wf := workload.GenerateFlows(1000, 10, 9)
		sf := workload.ServiceFlows(wf, 0.2)
		pr := addPod(t, n, pod.ModePLB, 4, sf, func(c *PodConfig) {
			c.TraceSampleEvery = 8
		})
		runStageTraffic(t, n, pr, wf, 20*sim.Millisecond)
		var out []string
		for _, j := range pr.Flight().Journeys() {
			out = append(out, j.String())
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no journeys recorded")
	}
	if len(a) != len(b) {
		t.Fatalf("journey counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("journey %d differs between identical runs:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}
