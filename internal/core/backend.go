package core

import (
	"albatross/internal/flowtable"
	"albatross/internal/workload"
)

// Node-level flow steering: when NodeConfig.FlowBackend names a backend,
// Node.Ingress consults it to pick the pod for each flow instead of the
// legacy first-pod path. The backend's pool tracks the node's Active pods by
// slot index and is refreshed on every lifecycle transition (deploy, crash,
// restart, stop); the stateless Othello backend remaps only the flows whose
// pod left the pool — the Concury zero-disruption property — while the
// session backend re-hashes them on their next lookup.

// Backend returns the node's flow-table backend (nil when NodeConfig left
// FlowBackend empty).
func (n *Node) Backend() flowtable.Backend { return n.backend }

// refreshBackendPool rebuilds the backend's pod pool from the current
// lifecycle states. Flows whose pod left the pool are remapped (counted in
// BackendMoved); everything else keeps its assignment bit-for-bit.
func (n *Node) refreshBackendPool() {
	if n.backend == nil {
		return
	}
	pool := make([]int, 0, len(n.pods))
	for i, pr := range n.pods {
		if pr.state == podActive {
			pool = append(pool, i)
		}
	}
	n.BackendMoved += uint64(n.backend.Update(pool))
}

// Ingress injects one packet through the node's flow-table backend: the flow
// is looked up (inserting on miss) and the packet enters the chosen pod.
// Without a backend — or before any pod is deployed — this is exactly the
// legacy pods[0].Inject path, byte for byte.
func (n *Node) Ingress(f workload.Flow, bytes int) {
	if len(n.pods) == 0 {
		return
	}
	if n.backend == nil {
		n.pods[0].Inject(f, bytes)
		return
	}
	pod := flowtable.Select(n.backend, f.Tuple, n.Engine.Now())
	if pod < 0 || pod >= len(n.pods) {
		// Empty pool (every pod down): fall back to slot 0, whose lifecycle
		// gates count the loss or redirect.
		pod = 0
	}
	n.pods[pod].Inject(f, bytes)
}

// IngressSink adapts Ingress to a workload.Source sink.
func (n *Node) IngressSink() func(workload.Flow, int) {
	return func(f workload.Flow, bytes int) { n.Ingress(f, bytes) }
}

// SetFlowBackend swaps the node's flow-table backend in place — the rolling
// config update the control plane applies member by member. The new backend
// starts empty (established flows re-insert on their next lookup, exactly
// like a gateway pod config rollout) with the pool rebuilt from current pod
// lifecycle states. name "" removes the backend, restoring the legacy
// first-pod path. A no-op when the name already matches.
func (n *Node) SetFlowBackend(name string) error {
	if name == n.cfg.FlowBackend {
		return nil
	}
	if name == "" {
		n.backend = nil
		n.cfg.FlowBackend = ""
		return nil
	}
	b, err := flowtable.NewBackend(name, nil, flowtable.BackendConfig{
		Seed:  n.cfg.Seed ^ 0xF10B,
		Space: n.addrs,
	})
	if err != nil {
		return err
	}
	n.backend = b
	n.cfg.FlowBackend = name
	n.refreshBackendPool()
	return nil
}

// FlowBackendName returns the active backend's configured name ("" when the
// node runs the legacy first-pod path).
func (n *Node) FlowBackendName() string { return n.cfg.FlowBackend }
