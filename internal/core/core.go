// Package core assembles the full Albatross node: the FPGA NIC pipeline
// (classification, overload protection, PLB dispatch/reorder, per-module
// latencies), GW pods placed on the dual-NUMA server, per-pod gateway
// services with cache-driven costs, and CPU cores — all driven by the
// virtual-time engine.
//
// The packet path mirrors Fig. 1: ingress NIC pipeline (pkt_dir
// classification + tenant overload rate limiting) → PLB spray or RSS hash
// → CPU core RX queue → gateway service processing → TX back through
// plb_reorder → egress NIC pipeline.
package core

import (
	"fmt"
	"math"

	"albatross/internal/bgp"
	"albatross/internal/cachesim"
	"albatross/internal/cpu"
	"albatross/internal/errs"
	"albatross/internal/faults"
	"albatross/internal/flowtable"
	"albatross/internal/gop"
	"albatross/internal/nicsim"
	"albatross/internal/packet"
	"albatross/internal/plb"
	"albatross/internal/pod"
	"albatross/internal/rss"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

// NodeConfig parameterizes an Albatross server.
type NodeConfig struct {
	Seed uint64
	// Engine, when non-nil, drives the node on a shared external engine —
	// the multi-node cluster case, where N nodes advance on one virtual
	// clock. Nil creates a private engine.
	Engine *sim.Engine
	// Server describes the hardware (zero value: production dual-NUMA).
	Server pod.ServerConfig
	// Cache is the per-NUMA L3 geometry (zero value: DefaultL3).
	Cache cachesim.Config
	// Mem prices cache hits/misses (zero value: DDR5-4800).
	Mem cachesim.MemLatency
	// NIC is the pipeline latency model (zero value: Tab. 4).
	NIC nicsim.LatencyModel
	// Limiter enables gateway overload protection when non-nil.
	Limiter *gop.Config
	// Faults, when non-nil, arms a deterministic fault-injection schedule
	// against this node (see internal/faults). Fault times are relative to
	// node creation.
	Faults *faults.Plan
	// FlowBackend selects the node-level flow-table backend steering
	// Node.Ingress traffic across pods ("session" or "othello"; see
	// internal/flowtable.BackendNames). Empty leaves Ingress on the legacy
	// first-pod path.
	FlowBackend string
	// Burst > 1 enables burst-batched dispatch (see burst.go): same-instant
	// injections share one arrival event per Burst packets and complete via
	// arithmetic admission + one per-pod drain event. Burst <= 1 keeps the
	// legacy per-packet event path bit-for-bit. Burst > 1 disables the
	// flight recorder.
	Burst int
}

// Node is one Albatross server.
type Node struct {
	Engine  *sim.Engine
	Server  *pod.Server
	Limiter *gop.Limiter

	cfg    NodeConfig
	caches []*cachesim.Cache
	pods   []*PodRuntime
	// addrs is the node-private synthetic address space: table addresses
	// depend only on deployment order within this node, never on what else
	// the process created, so identical configs replay identically.
	addrs *flowtable.AddrSpace

	// injector drives NodeConfig.Faults (nil when no plan was armed).
	injector *faults.Injector
	// uplink models the node's BGP session to the ToR switch; nil until
	// EnableUplink, InstallUplink, or the first BGP fault. Either the pure
	// SimSession timing model or a ProxiedSession over the real proxy
	// fabric. uplinkProxy enables the sibling proxy re-advertisement
	// (make-before-break failover).
	uplink      bgp.Uplink
	uplinkProxy bool
	closed      bool

	// Blackholed counts packets lost at the switch while the uplink was
	// down but not yet withdrawn (or withdrawn with no proxy); Proxied
	// counts packets that arrived via the proxy path during an outage.
	Blackholed uint64
	Proxied    uint64

	// backend steers Node.Ingress traffic across active pods (see
	// backend.go); nil without NodeConfig.FlowBackend. BackendMoved counts
	// flows remapped by pool updates (pod lifecycle changes).
	backend      flowtable.Backend
	BackendMoved uint64
}

// NewNode creates a node.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Server.Topology.Nodes == 0 {
		cfg.Server = pod.DefaultServerConfig()
	}
	if cfg.Cache.SizeBytes == 0 {
		cfg.Cache = cachesim.DefaultL3()
	}
	if cfg.Mem == (cachesim.MemLatency{}) {
		cfg.Mem = cachesim.DefaultLatency()
	}
	if cfg.NIC == (nicsim.LatencyModel{}) {
		cfg.NIC = nicsim.DefaultLatencyModel()
	}
	server, err := pod.NewServer(cfg.Server)
	if err != nil {
		return nil, err
	}
	engine := cfg.Engine
	if engine == nil {
		engine = sim.NewEngine()
	}
	n := &Node{
		Engine: engine,
		Server: server,
		cfg:    cfg,
		addrs:  flowtable.NewAddrSpace(),
	}
	for i := 0; i < cfg.Server.Topology.Nodes; i++ {
		n.caches = append(n.caches, cachesim.New(cfg.Cache))
	}
	if cfg.Limiter != nil {
		n.Limiter, err = gop.NewLimiter(*cfg.Limiter)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Faults != nil {
		n.injector, err = faults.NewInjector(n.Engine, n, cfg.Faults)
		if err != nil {
			return nil, err
		}
	}
	if cfg.FlowBackend != "" {
		n.backend, err = flowtable.NewBackend(cfg.FlowBackend, nil, flowtable.BackendConfig{
			Seed:  cfg.Seed ^ 0xF10B,
			Space: n.addrs,
		})
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Cache returns NUMA node i's L3 model.
func (n *Node) Cache(i int) *cachesim.Cache { return n.caches[i] }

// Pods returns the deployed pod runtimes.
func (n *Node) Pods() []*PodRuntime { return n.pods }

// RunFor advances virtual time.
func (n *Node) RunFor(d sim.Duration) { n.Engine.RunFor(d) }

// PodConfig describes a gateway pod deployment.
type PodConfig struct {
	Spec pod.Spec
	// Flows the pod's tables must know (its tenant state).
	Flows []service.Flow
	// QueueDepth is the per-core RX queue (default 1024 packets).
	QueueDepth int
	// DropFlagDisabled turns off the active drop flag (Fig. 12 ablation):
	// CPU-side drops become silent and HOL-block the reorder FIFO.
	DropFlagDisabled bool
	// CrossNUMA applies the cross-NUMA penalties to the pod's service
	// (Fig. 16 ablation; placement itself stays intra-node).
	CrossNUMA bool
	// JitterSigma is the lognormal sigma applied to service times, modeling
	// the "complex software stack" latency jitter (default 0.25).
	JitterSigma float64
	// SlowPathProb injects rare slow-path excursions of SlowPathCost
	// (paper §4.1 item 3: corner-case code branches). Default 0.
	SlowPathProb float64
	SlowPathCost sim.Duration
	// MemoryMult scales memory latency (memory-frequency ablation).
	MemoryMult float64
	// HeaderSplit enables header-payload-split delivery (appendix §A):
	// only headers cross PCIe; payloads wait in the NIC payload buffer
	// until egress reassembly.
	HeaderSplit bool
	// PayloadBufferBytes sizes the NIC payload buffer for split mode
	// (default 64MB). Undersizing it forces header drops on late returns.
	PayloadBufferBytes int64
	// TraceSampleEvery samples every Nth injected packet into the flight
	// recorder (counter-based, deterministic). 0 uses the default (1024);
	// negative disables tracing entirely.
	TraceSampleEvery int
	// TraceRing bounds retained journeys (default 64).
	TraceRing int
}

// Flight-recorder defaults: sample one packet in 1024 and retain the last
// 64 eventful journeys (drops and timeout releases).
const (
	defaultTraceSample = 1024
	defaultTraceRing   = 64
)

// headerSplitBytes is the PCIe transfer size for a split packet: parsed
// headers (outer Ethernet/IPv4/UDP/VXLAN + inner stack, ~110B) plus the
// PLB meta trailer.
const headerSplitBytes = 110 + packet.MetaLen

// pktCtx follows one packet through the pod. Data-path contexts are pooled
// on the PodRuntime: Inject takes one from the free list and every terminal
// point of the packet's life (drop, egress completion) returns it. Probe
// contexts are allocated fresh and never pooled (they are rare and their
// completion runs user callbacks that may retain them).
type pktCtx struct {
	pr      *PodRuntime
	flow    workload.Flow
	bytes   int
	t0      sim.Time
	meta    packet.Meta
	cost    sim.Duration
	drop    bool
	class   nicsim.Class
	queueAt sim.Time
	core    int32    // core chosen by the dispatch stage
	stage   int8     // pipeline chain slot currently holding the packet
	enterAt sim.Time // when the packet entered its current stage
	fh      uint32   // cached flow.Tuple.Hash(); valid only when fhOK
	fhOK    bool
	viaPLB  bool
	split   bool
	payID   uint64
	probe   *probeState
	// trace is the packet's flight-recorder journey; nil for unsampled
	// packets (the common case — one nil check per stage).
	trace *Journey
}

// PodRuntime is a deployed pod's dataplane.
type PodRuntime struct {
	node       *Node
	Pod        *pod.Pod
	Svc        *service.Service
	Cores      []*cpu.Core
	PLB        *plb.PLB
	RSS        *rss.Engine
	Classifier *nicsim.Classifier

	cfg     PodConfig
	rng     *sim.Rand
	mode    pod.Mode // current mode; may change via FallbackToRSS
	pipe    Pipeline // the staged ingress chain (see pipeline.go)
	flight  *FlightRecorder
	payload *nicsim.PayloadBuffer
	nextPay uint64

	// Lifecycle (see the state machine in faultops.go). live counts
	// data-path contexts in flight; redirect receives this pod's traffic
	// while it is draining or crashed.
	state    podState
	live     int
	redirect *PodRuntime

	// rxLoss models per-core RX DMA loss (InjectRxLoss): while the
	// engine's time is before rxLossUntil[core], dispatched packets are
	// lost with probability rxLossProb[core]. nil until first armed.
	rxLossUntil []sim.Time
	rxLossProb  []float64

	// ctxFree recycles pktCtx values; cpuDoneFn is onCPUDone bound once so
	// Enqueue calls do not allocate a method-value closure per packet.
	ctxFree   []*pktCtx
	cpuDoneFn func(any)

	// Burst-batched dispatch state (see burst.go); idle when burst <= 1.
	// openBurst is indexed by traffic class; pend holds each core's
	// struct-of-arrays queue of admitted members awaiting the drain event.
	burst      int
	openBurst  [3]*burst
	burstFree  []*burst
	pend       []corePend
	headF      []sim.Time // per-core merge head finish (TimeMax when idle)
	headSeq    []uint64   // admission seq of each merge head
	pending    int
	admitSeq   uint64
	drainArmed bool

	// Latency is the end-to-end (wire to wire) latency histogram.
	Latency *stats.Histogram
	// CPULatency covers dispatch to CPU-return (the Fig. 11 processing
	// latency).
	CPULatency *stats.Histogram

	// Counters.
	Rx          uint64
	Tx          uint64
	NICDrops    uint64 // tenant overload rate limiting
	QueueDrops  uint64 // core RX queue overflow
	PLBDrops    uint64 // reorder FIFO full at dispatch
	ServiceDrop uint64 // ACL/service drops
	PriorityRx  uint64
	PriorityTx  uint64

	// TxPerTenant counts egress packets per VNI.
	TxPerTenant map[uint32]uint64

	// PCIe accounting (bytes DMA'd between NIC and CPU).
	PCIeRxBytes uint64
	PCIeTxBytes uint64
	// HeaderDrops counts split-mode headers whose payload was evicted.
	HeaderDrops uint64
	// Fallbacks counts PLB->RSS mode switches.
	Fallbacks uint64

	// Fault/degradation counters.
	FaultLost  uint64 // packets discarded by core failure or pod crash
	RxLost     uint64 // packets lost to injected RX-path loss
	Redirected uint64 // packets redirected to the sibling pod
	CrashDrops uint64 // packets lost while crashed with no sibling
	Restarts   uint64 // crash restarts + gray upgrades completed
}

// AddPod places and wires a gateway pod. It is usable any time before
// Close, including after a PodRuntime.Stop has freed server capacity.
func (n *Node) AddPod(cfg PodConfig) (*PodRuntime, error) {
	if n.closed {
		return nil, fmt.Errorf("core: AddPod on closed node: %w", errs.Closed)
	}
	p, err := n.Server.Place(cfg.Spec, n.Engine.Now())
	if err != nil {
		return nil, err
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.JitterSigma == 0 {
		cfg.JitterSigma = 0.25
	}
	memMult := cfg.MemoryMult
	if memMult == 0 {
		memMult = 1
	}
	computeMult := 1.0
	if cfg.CrossNUMA {
		pen := cpu.DefaultPenalties()
		memMult *= pen.CrossMemory
		computeMult = pen.CrossCompute
	}
	svc, err := service.New(service.Config{
		Type:        cfg.Spec.Service,
		Cache:       n.caches[p.NUMANode],
		Latency:     n.cfg.Mem,
		MemoryMult:  memMult,
		ComputeMult: computeMult,
		Addrs:       n.addrs,
	})
	if err != nil {
		return nil, err
	}
	svc.Populate(cfg.Flows)

	pr := &PodRuntime{
		node:        n,
		Pod:         p,
		Svc:         svc,
		Classifier:  nicsim.DefaultClassifier(),
		cfg:         cfg,
		rng:         sim.NewRand(n.cfg.Seed ^ uint64(p.ID)<<32 ^ 0xA1BA),
		mode:        cfg.Spec.Mode,
		pipe:        newPipeline(cfg.Spec.Mode),
		Latency:     stats.NewLatencyHistogram(),
		CPULatency:  stats.NewLatencyHistogram(),
		TxPerTenant: make(map[uint32]uint64),
	}
	pr.cpuDoneFn = pr.onCPUDone
	traceEvery := cfg.TraceSampleEvery
	switch {
	case traceEvery == 0:
		traceEvery = defaultTraceSample
	case traceEvery < 0:
		traceEvery = 0 // disabled
	}
	if n.cfg.Burst > 1 {
		// Burst mode: per-packet journeys assume per-packet events.
		traceEvery = 0
		pr.burst = n.cfg.Burst
		pr.pipe.stages[stageIngress] = burstIngressStage{}
		pr.pend = make([]corePend, cfg.Spec.DataCores)
		pr.headF = make([]sim.Time, cfg.Spec.DataCores)
		pr.headSeq = make([]uint64, cfg.Spec.DataCores)
		for i := range pr.headF {
			pr.headF[i] = sim.TimeMax
		}
	}
	pr.flight = newFlightRecorder(traceEvery, cfg.TraceRing)
	if cfg.HeaderSplit {
		pr.payload = nicsim.NewPayloadBuffer(cfg.PayloadBufferBytes)
	}
	for i := 0; i < cfg.Spec.DataCores; i++ {
		pr.Cores = append(pr.Cores, cpu.NewCore(n.Engine, p.CoreIDs[i], cfg.QueueDepth))
	}

	switch cfg.Spec.Mode {
	case pod.ModePLB:
		pcfg := plb.DefaultConfig(p.ID, cfg.Spec.DataCores)
		pcfg.NumOrderQueues = p.ReorderQueues
		if pr.payload != nil {
			pcfg.PayloadRetained = func(m packet.Meta, now sim.Time) bool {
				return pr.payload.Has(payloadID(m))
			}
		}
		pr.PLB, err = plb.New(n.Engine, pcfg, pr.onEmission)
		if err != nil {
			return nil, err
		}
	case pod.ModeRSS:
		pr.RSS, err = rss.NewEngine(cfg.Spec.DataCores, 128)
		if err != nil {
			return nil, err
		}
	}
	n.pods = append(n.pods, pr)
	n.refreshBackendPool()
	return pr, nil
}

// payloadID derives the payload-buffer key from a PLB meta header.
func payloadID(m packet.Meta) uint64 {
	return uint64(m.PSN)<<48 ^ uint64(m.OrdQ)<<40 ^ uint64(m.IngressNS)&0xffffffffff
}

// Mode returns the pod's current load-balancing mode.
func (pr *PodRuntime) Mode() pod.Mode { return pr.mode }

// FallbackToRSS dynamically switches the pod from PLB to RSS mode (paper
// §4.1 item 5: the last-resort HOL remediation) by swapping the dispatch
// stage of the ingress chain. New packets are hashed by flow; packets
// already in flight keep their chain positions and drain through the
// reorder engine.
func (pr *PodRuntime) FallbackToRSS() error {
	if pr.mode == pod.ModeRSS {
		return nil
	}
	if pr.RSS == nil {
		eng, err := rss.NewEngine(len(pr.Cores), 128)
		if err != nil {
			return err
		}
		pr.RSS = eng
	}
	pr.mode = pod.ModeRSS
	pr.pipe.stages[stageDispatch] = rssDispatchStage{}
	pr.Fallbacks++
	return nil
}

// Sink adapts the pod to a workload.Source sink.
func (pr *PodRuntime) Sink() func(workload.Flow, int) {
	return func(f workload.Flow, bytes int) { pr.Inject(f, bytes) }
}

// getCtx takes a context from the pool (or allocates the pool's first).
func (pr *PodRuntime) getCtx() *pktCtx {
	pr.live++
	if n := len(pr.ctxFree); n > 0 {
		c := pr.ctxFree[n-1]
		pr.ctxFree[n-1] = nil
		pr.ctxFree = pr.ctxFree[:n-1]
		return c
	}
	return &pktCtx{}
}

// putCtx recycles a data-path context at the end of a packet's life. Every
// terminal point of the packet — sync drops inside Process, async drops,
// egress completion — funnels through here, so this is where a sampled
// journey closes: a trace that never reached exitHere died in ctx.stage.
func (pr *PodRuntime) putCtx(c *pktCtx) {
	if c.trace != nil {
		j := c.trace
		j.Core = c.core
		j.PSN = c.meta.PSN
		j.OrdQ = c.meta.OrdQ
		j.ViaPLB = c.viaPLB
		pr.flight.finish(j, pr.node.Engine.Now())
	}
	pr.live--
	*c = pktCtx{}
	pr.ctxFree = append(pr.ctxFree, c)
}

// egressEvent completes a packet's egress NIC traversal (the last async
// hop of the chain).
func egressEvent(arg any) {
	c := arg.(*pktCtx)
	pr := c.pr
	pr.Tx++
	pr.TxPerTenant[c.flow.VNI]++
	pr.Latency.Record(int64(pr.node.Engine.Now().Sub(c.t0)))
	pr.pipe.exitHere(c)
	pr.putCtx(c)
}

// Inject runs one packet through the pod's full path: the node-level gates
// (uplink state, pod lifecycle), then the staged ingress chain.
func (pr *PodRuntime) Inject(f workload.Flow, bytes int) {
	n := pr.node

	// BGP uplink state: while the link is down but the route still
	// advertised (the BFD detection window), the switch forwards into a
	// dead link. After withdrawal, traffic rides the proxy path if one is
	// armed, otherwise it is blackholed until re-advertisement.
	if n.uplink != nil {
		if !n.uplink.LinkUp() && n.uplink.RouteUp() {
			n.Blackholed++
			return
		}
		if !n.uplink.RouteUp() {
			if !n.uplinkProxy {
				n.Blackholed++
				return
			}
			n.Proxied++
		}
	}

	// Lifecycle: draining/crashed pods hand their tenants to the sibling.
	if pr.state != podActive {
		if pr.redirect != nil && pr.redirect.state == podActive {
			pr.Redirected++
			pr.redirect.Inject(f, bytes)
			return
		}
		pr.CrashDrops++
		return
	}

	pr.Rx++

	ctx := pr.getCtx()
	ctx.pr = pr
	ctx.flow = f
	ctx.bytes = bytes
	ctx.t0 = n.Engine.Now()
	if j := pr.flight.sample(); j != nil {
		j.Flow = f
		j.Bytes = bytes
		j.T0 = ctx.t0
		j.Core = -1
		ctx.trace = j
	}

	pr.pipe.run(pr, ctx, stageClassify)
}

// serviceCost computes the packet's CPU demand and drop verdict. The tuple
// hash is computed once per packet and cached on the context (the burst
// path's warm pass fills it even earlier).
func (pr *PodRuntime) serviceCost(ctx *pktCtx) (sim.Duration, bool) {
	if !ctx.fhOK {
		ctx.fh = ctx.flow.Tuple.Hash()
		ctx.fhOK = true
	}
	res := pr.Svc.ProcessHash(ctx.flow.Tuple, ctx.flow.VNI, ctx.fh)
	cost := float64(res.Cost)
	if pr.cfg.JitterSigma > 0 {
		cost *= math.Exp(pr.rng.Norm(0, pr.cfg.JitterSigma))
	}
	if pr.cfg.SlowPathProb > 0 && pr.rng.Float64() < pr.cfg.SlowPathProb {
		cost += float64(pr.cfg.SlowPathCost)
	}
	return sim.Duration(cost), res.Drop
}

// onCPUDone is invoked in virtual time when a core finishes a packet; it
// completes the chain's cpu stage.
func (pr *PodRuntime) onCPUDone(item any) {
	ctx := item.(*pktCtx)
	now := pr.node.Engine.Now()
	pr.CPULatency.Record(int64(now.Sub(ctx.queueAt)))

	if ctx.drop {
		// Service verdict: the CPU drops the packet. PLB-dispatched drops
		// release their reorder FIFO entry via the active drop flag (unless
		// the Fig. 12 ablation disables it, leaking the entry until its
		// timeout).
		pr.ServiceDrop++
		pr.pipe.dropHere(ctx)
		if ctx.viaPLB {
			if ctx.split {
				// Release the parked payload with the packet.
				pr.payload.Take(ctx.payID)
			}
			if pr.cfg.DropFlagDisabled {
				// Silent drop: reorder resources leak until timeout.
				pr.putCtx(ctx)
				return
			}
			meta := ctx.meta
			meta.Flags |= packet.MetaFlagDrop
			pr.putCtx(ctx)
			pr.PLB.Return(nil, meta)
			return
		}
		pr.putCtx(ctx)
		return
	}
	pr.pipe.resumeNext(pr, ctx)
}

// onEmission handles packets leaving plb_reorder: it completes the chain's
// reorder stage.
func (pr *PodRuntime) onEmission(em plb.Emission) {
	ctx, ok := em.Item.(*pktCtx)
	if !ok || ctx == nil {
		return
	}
	if pr.burst > 1 {
		pr.burstEmission(ctx, em)
		return
	}
	if !em.InOrder && ctx.trace != nil {
		// The reorder engine gave up waiting and released this packet
		// best-effort — flag its journey for the flight recorder.
		ctx.trace.timeout = true
	}
	if ctx.split {
		// Egress reassembly: rejoin the parked payload. The PLB engine only
		// emits header-only packets whose payload is retained; a missing
		// payload here means the buffer evicted it between the legal check
		// and emission — drop the header.
		if !pr.payload.Take(ctx.payID) {
			pr.HeaderDrops++
			pr.pipe.dropHere(ctx)
			pr.putCtx(ctx)
			return
		}
	}
	pr.pipe.resumeNext(pr, ctx)
}

// UtilSamplers returns one utilization sampler per data core.
func (pr *PodRuntime) UtilSamplers() []*cpu.UtilSampler {
	out := make([]*cpu.UtilSampler, len(pr.Cores))
	for i, c := range pr.Cores {
		out[i] = cpu.NewUtilSampler(c)
	}
	return out
}

// DisorderRate returns the pod's PLB disorder rate (0 for RSS pods).
func (pr *PodRuntime) DisorderRate() float64 {
	if pr.PLB == nil {
		return 0
	}
	s := pr.PLB.Stats()
	return s.DisorderRate()
}

// MeanServiceCost probes the pod's service with nProbes random known flows
// and returns the mean per-packet CPU cost (used for analytic saturation
// throughput, Tab. 3/Fig. 4).
func (pr *PodRuntime) MeanServiceCost(flows []service.Flow, nProbes int) sim.Duration {
	if len(flows) == 0 || nProbes <= 0 {
		return 0
	}
	r := sim.NewRand(pr.node.cfg.Seed ^ 0xBEEF)
	var total sim.Duration
	for i := 0; i < nProbes; i++ {
		f := flows[r.Intn(len(flows))]
		res := pr.Svc.Process(f.Tuple, f.VNI)
		total += res.Cost
	}
	return total / sim.Duration(nProbes)
}

// SaturationMpps estimates the pod's maximum packet rate in Mpps from the
// measured mean service cost: cores / mean-cost.
func (pr *PodRuntime) SaturationMpps(flows []service.Flow, nProbes int) float64 {
	mean := pr.MeanServiceCost(flows, nProbes)
	if mean <= 0 {
		return 0
	}
	perCore := float64(sim.Second) / float64(mean) // pps per core
	return perCore * float64(len(pr.Cores)) / 1e6
}

// String summarizes the pod.
func (pr *PodRuntime) String() string {
	return fmt.Sprintf("pod %q [%v %s, %d cores, %d ordq]",
		pr.Pod.Spec.Name, pr.Pod.Spec.Service, pr.Pod.Spec.Mode,
		len(pr.Cores), pr.Pod.ReorderQueues)
}
