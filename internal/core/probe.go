package core

import (
	"albatross/internal/gop"
	"albatross/internal/nicsim"
	"albatross/internal/sim"
	"albatross/internal/workload"
)

// ProbeResult is the per-stage latency breakdown a telemetry probe packet
// collects on its way through the pod — the Zoonet-style proactive
// measurement the paper's pkt_dir handles as an RSS-class special (probes
// must not be PLB-sprayed, §3.2).
type ProbeResult struct {
	// NICIngress is wire-to-dispatch time (basic pipeline + DMA).
	NICIngress sim.Duration
	// QueueWait is RX-queue time before the core started the packet.
	QueueWait sim.Duration
	// Service is the gateway service processing time.
	Service sim.Duration
	// NICEgress is CPU-return-to-wire time.
	NICEgress sim.Duration
	// Total is end-to-end.
	Total sim.Duration
	// Dropped reports a probe discarded by the dataplane.
	Dropped bool
}

// probeState accumulates the stamps while the probe is in flight.
type probeState struct {
	t0         sim.Time
	dispatchAt sim.Time
	startAt    sim.Time
	cpuDoneAt  sim.Time
	done       func(ProbeResult)
}

// InjectProbe sends one telemetry probe through the pod's RSS path and
// invokes done (in virtual time) with the latency breakdown. Probes use
// flow affinity like all stateful specials, so repeated probes of one flow
// measure one core's queue.
func (pr *PodRuntime) InjectProbe(f workload.Flow, done func(ProbeResult)) {
	n := pr.node
	now := n.Engine.Now()
	pr.Rx++

	if n.Limiter != nil {
		if n.Limiter.Process(f.VNI, now) == gop.VerdictDrop {
			pr.NICDrops++
			done(ProbeResult{Dropped: true})
			return
		}
	}
	ctx := &pktCtx{
		flow: f, bytes: 128, t0: now, class: nicsim.ClassRSS,
		probe: &probeState{t0: now, done: done},
	}
	n.Engine.After(n.cfg.NIC.IngressLatency(nicsim.ClassRSS), func() { pr.probeDispatch(ctx) })
}

func (pr *PodRuntime) probeDispatch(ctx *pktCtx) {
	now := pr.node.Engine.Now()
	ctx.probe.dispatchAt = now
	ctx.queueAt = now
	cost, drop := pr.serviceCost(ctx)
	ctx.drop = drop

	var q int
	if pr.RSS != nil {
		q = pr.RSS.Queue(ctx.flow.Tuple)
	} else {
		q = int(ctx.flow.Tuple.Hash() % uint32(len(pr.Cores)))
	}
	core := pr.Cores[q]
	// Stamp the service start by subtracting the known cost at completion;
	// queue wait = (doneAt - cost) - dispatchAt.
	ctx.probe.startAt = 0 // computed at completion
	probeCost := cost
	if !core.Enqueue(ctx, cost, func(item any) {
		c := item.(*pktCtx)
		nowDone := pr.node.Engine.Now()
		c.probe.cpuDoneAt = nowDone
		c.probe.startAt = nowDone.Add(-probeCost)
		pr.probeEgress(c)
	}) {
		pr.QueueDrops++
		ctx.probe.done(ProbeResult{Dropped: true})
	}
}

func (pr *PodRuntime) probeEgress(ctx *pktCtx) {
	n := pr.node
	if ctx.drop {
		pr.ServiceDrop++
		ctx.probe.done(ProbeResult{Dropped: true})
		return
	}
	n.Engine.After(n.cfg.NIC.EgressLatency(nicsim.ClassRSS), func() {
		now := n.Engine.Now()
		pr.Tx++
		pr.TxPerTenant[ctx.flow.VNI]++
		pr.Latency.Record(int64(now.Sub(ctx.t0)))
		st := ctx.probe
		st.done(ProbeResult{
			NICIngress: st.dispatchAt.Sub(st.t0),
			QueueWait:  st.startAt.Sub(st.dispatchAt),
			Service:    st.cpuDoneAt.Sub(st.startAt),
			NICEgress:  now.Sub(st.cpuDoneAt),
			Total:      now.Sub(st.t0),
		})
	})
}
