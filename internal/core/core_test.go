package core

import (
	"testing"

	"albatross/internal/cachesim"
	"albatross/internal/gop"
	"albatross/internal/packet"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/workload"
)

func smallNode(t testing.TB, limiter *gop.Config) *Node {
	t.Helper()
	n, err := NewNode(NodeConfig{
		Seed:    1,
		Cache:   cachesim.Config{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64},
		Limiter: limiter,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func addPod(t testing.TB, n *Node, mode pod.Mode, cores int, flows []service.Flow, mutate func(*PodConfig)) *PodRuntime {
	t.Helper()
	cfg := PodConfig{
		Spec: pod.Spec{
			Name: "gw", Service: service.VPCVPC,
			DataCores: cores, CtrlCores: 2, Mode: mode,
		},
		Flows: flows,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	pr, err := n.AddPod(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func wflows(n int, seed uint64) ([]workload.Flow, []service.Flow) {
	wf := workload.GenerateFlows(n, 100, seed)
	return wf, workload.ServiceFlows(wf, 0)
}

func TestEndToEndPLB(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(2000, 1)
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)

	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e6), Seed: 2, Sink: pr.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(50 * sim.Millisecond)
	src.Stop()
	n.RunFor(5 * sim.Millisecond) // drain

	if pr.Rx == 0 {
		t.Fatal("no packets received")
	}
	if pr.Tx != pr.Rx {
		t.Fatalf("tx=%d rx=%d (drops: nic=%d q=%d plb=%d svc=%d)",
			pr.Tx, pr.Rx, pr.NICDrops, pr.QueueDrops, pr.PLBDrops, pr.ServiceDrop)
	}
	// Latency must include the ~8µs NIC round trip plus service time.
	if mean := pr.Latency.Mean(); mean < 8000 || mean > 100000 {
		t.Fatalf("mean latency = %.0fns, implausible", mean)
	}
	// At 1Mpps over 4 cores (~25% load) disordering must be negligible.
	if dr := pr.DisorderRate(); dr > 1e-3 {
		t.Fatalf("disorder rate = %v at low load", dr)
	}
	s := pr.PLB.Stats()
	if s.EmittedInOrder == 0 {
		t.Fatal("no in-order emissions")
	}
}

func TestEndToEndRSS(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(2000, 3)
	pr := addPod(t, n, pod.ModeRSS, 4, sf, nil)
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e6), Seed: 4, Sink: pr.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(50 * sim.Millisecond)
	src.Stop()
	n.RunFor(5 * sim.Millisecond)
	if pr.Tx != pr.Rx {
		t.Fatalf("tx=%d rx=%d", pr.Tx, pr.Rx)
	}
	if pr.PLB != nil {
		t.Fatal("RSS pod has a PLB engine")
	}
	if pr.DisorderRate() != 0 {
		t.Fatal("RSS pods cannot disorder")
	}
}

func TestPriorityPacketsBypassDataPath(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(100, 5)
	pr := addPod(t, n, pod.ModePLB, 2, sf, nil)

	// Saturate the cores with data traffic.
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(10e6), Seed: 6, Sink: pr.Sink()}
	src.Start(n.Engine)

	// Inject BGP packets mid-saturation.
	bgpFlow := workload.Flow{Tuple: packet.FiveTuple{
		Src: packet.IPv4Addr{10, 0, 0, 1}, Dst: packet.IPv4Addr{10, 0, 0, 2},
		Proto: packet.IPProtocolTCP, SPort: 30000, DPort: 179,
	}}
	for i := 0; i < 10; i++ {
		at := sim.Time(i+1) * sim.Time(sim.Millisecond)
		n.Engine.At(at, func() { pr.Inject(bgpFlow, 64) })
	}
	n.RunFor(20 * sim.Millisecond)
	src.Stop()
	if pr.PriorityRx != 10 || pr.PriorityTx != 10 {
		t.Fatalf("priority rx/tx = %d/%d", pr.PriorityRx, pr.PriorityTx)
	}
}

func TestTenantRateLimiting(t *testing.T) {
	lcfg := gop.DefaultConfig()
	lcfg.Stage1Rate = 0.5e6
	lcfg.Stage2Rate = 0.1e6
	lcfg.SampleOneIn = 0
	n := smallNode(t, &lcfg)
	wf, sf := wflows(500, 7)
	// All flows same tenant.
	for i := range wf {
		wf[i].VNI = 9
		sf[i].VNI = 9
	}
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(2e6), Seed: 8, Sink: pr.Sink()}
	src.Start(n.Engine)
	n.RunFor(100 * sim.Millisecond)
	src.Stop()
	n.RunFor(5 * sim.Millisecond)
	if pr.NICDrops == 0 {
		t.Fatal("over-rate tenant never limited")
	}
	// Passed rate ~0.6Mpps of 2Mpps offered.
	passFrac := float64(pr.Tx) / float64(pr.Rx)
	if passFrac < 0.2 || passFrac > 0.5 {
		t.Fatalf("pass fraction = %v, want ~0.3", passFrac)
	}
}

func TestACLDropWithDropFlag(t *testing.T) {
	n := smallNode(t, nil)
	wf := workload.GenerateFlows(1000, 10, 9)
	sf := workload.ServiceFlows(wf, 0.2) // 20% denied
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)
	pr.Pod.Spec.Service = service.VPCVPC

	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e6), Seed: 10, Sink: pr.Sink()}
	src.Start(n.Engine)
	n.RunFor(50 * sim.Millisecond)
	src.Stop()
	n.RunFor(5 * sim.Millisecond)

	if pr.ServiceDrop == 0 {
		t.Fatal("no ACL drops")
	}
	s := pr.PLB.Stats()
	if s.DropFlagReleases != pr.ServiceDrop {
		t.Fatalf("drop flag releases %d != service drops %d", s.DropFlagReleases, pr.ServiceDrop)
	}
	// With the drop flag, no timeout releases should occur.
	if s.TimeoutReleases != 0 {
		t.Fatalf("timeout releases = %d with drop flag enabled", s.TimeoutReleases)
	}
	if pr.Tx+pr.ServiceDrop != pr.Rx {
		t.Fatalf("conservation: tx=%d + svcdrop=%d != rx=%d", pr.Tx, pr.ServiceDrop, pr.Rx)
	}
}

func TestACLDropWithoutDropFlagCausesHOL(t *testing.T) {
	n := smallNode(t, nil)
	wf := workload.GenerateFlows(1000, 10, 9)
	sf := workload.ServiceFlows(wf, 0.2)
	pr := addPod(t, n, pod.ModePLB, 4, sf, func(c *PodConfig) { c.DropFlagDisabled = true })

	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e6), Seed: 10, Sink: pr.Sink()}
	src.Start(n.Engine)
	n.RunFor(50 * sim.Millisecond)
	src.Stop()
	n.RunFor(sim.Duration(sim.Millisecond))

	s := pr.PLB.Stats()
	if s.TimeoutReleases == 0 {
		t.Fatal("silent drops must HOL-block until timeout")
	}
	if s.HOLEvents == 0 {
		t.Fatal("no HOL events recorded")
	}
	// Mean latency suffers badly vs the drop-flag run.
	if pr.Latency.Quantile(0.99) < int64(50*sim.Microsecond) {
		t.Fatalf("p99 = %dns; HOL should push the tail towards the 100µs timeout",
			pr.Latency.Quantile(0.99))
	}
}

func TestHeavyHitterRSSOverloadsPLBSpreads(t *testing.T) {
	// Miniature Fig. 8: 3 cores, background flows + one heavy hitter above
	// a single core's capacity.
	run := func(mode pod.Mode) (drops uint64, tx uint64) {
		n := smallNode(t, nil)
		wf, sf := wflows(500, 11)
		pr := addPod(t, n, mode, 3, sf, func(c *PodConfig) {
			c.QueueDepth = 64
			c.JitterSigma = 0.05
		})
		// Background: 0.3 Mpps over many flows.
		bg := &workload.Source{Flows: wf, Rate: workload.ConstantRate(0.3e6), Seed: 12, Sink: pr.Sink()}
		bg.Start(n.Engine)
		// Heavy hitter: one flow at ~1.5x single-core capacity (a core
		// handles ~1.9Mpps of VPC-VPC at this reduced test scale, where the
		// small flow count keeps the cache warm).
		hh := &workload.Source{Flows: wf[:1], Rate: workload.ConstantRate(3e6), Seed: 13, Sink: pr.Sink()}
		hh.Start(n.Engine)
		n.RunFor(100 * sim.Millisecond)
		bg.Stop()
		hh.Stop()
		n.RunFor(5 * sim.Millisecond)
		return pr.QueueDrops + pr.PLBDrops, pr.Tx
	}
	rssDrops, _ := run(pod.ModeRSS)
	plbDrops, plbTx := run(pod.ModePLB)
	if rssDrops == 0 {
		t.Fatal("RSS should overload the heavy hitter's core")
	}
	if plbDrops > rssDrops/10 {
		t.Fatalf("PLB drops %d vs RSS %d: spray should absorb the heavy hitter", plbDrops, rssDrops)
	}
	if plbTx == 0 {
		t.Fatal("PLB forwarded nothing")
	}
}

func TestSaturationOrdering(t *testing.T) {
	n := smallNode(t, nil)
	wf, _ := wflows(20000, 14)
	mk := func(typ service.Type, name string) float64 {
		sf := workload.ServiceFlows(wf, 0)
		pr, err := n.AddPod(PodConfig{
			Spec:  pod.Spec{Name: name, Service: typ, DataCores: 4, CtrlCores: 2},
			Flows: sf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pr.SaturationMpps(sf, 20000)
	}
	vpc := mk(service.VPCVPC, "a")
	inet := mk(service.VPCInternet, "b")
	if inet >= vpc {
		t.Fatalf("VPC-Internet %.2f Mpps >= VPC-VPC %.2f Mpps", inet, vpc)
	}
	if vpc <= 0 || inet <= 0 {
		t.Fatal("non-positive throughput")
	}
}

func TestCrossNUMAPenalty(t *testing.T) {
	wf, sf := wflows(20000, 15)
	_ = wf
	cost := func(cross bool) float64 {
		n := smallNode(t, nil)
		pr := addPod(t, n, pod.ModePLB, 4, sf, func(c *PodConfig) { c.CrossNUMA = cross })
		return float64(pr.MeanServiceCost(sf, 10000))
	}
	intra := cost(false)
	cross := cost(true)
	degradation := (cross - intra) / cross
	// Fig. 16: VPC-VPC degrades ~14% cross-NUMA.
	if degradation < 0.05 || degradation > 0.30 {
		t.Fatalf("cross-NUMA degradation = %.1f%%, want ~14%%", degradation*100)
	}
}

func TestNodeDeterminism(t *testing.T) {
	run := func() (uint64, int64) {
		n := smallNode(t, nil)
		wf, sf := wflows(1000, 16)
		pr := addPod(t, n, pod.ModePLB, 4, sf, nil)
		src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(2e6), Seed: 17, Sink: pr.Sink()}
		src.Start(n.Engine)
		n.RunFor(20 * sim.Millisecond)
		return pr.Tx, pr.Latency.Sum()
	}
	tx1, lat1 := run()
	tx2, lat2 := run()
	if tx1 != tx2 || lat1 != lat2 {
		t.Fatalf("node not deterministic: tx %d/%d latency %d/%d", tx1, tx2, lat1, lat2)
	}
}

func TestPodString(t *testing.T) {
	n := smallNode(t, nil)
	_, sf := wflows(10, 18)
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)
	if pr.String() == "" {
		t.Fatal("empty string")
	}
}

func TestHeaderSplitReducesPCIe(t *testing.T) {
	run := func(split bool) (*PodRuntime, uint64) {
		n := smallNode(t, nil)
		wf, sf := wflows(2000, 21)
		pr := addPod(t, n, pod.ModePLB, 4, sf, func(c *PodConfig) { c.HeaderSplit = split })
		src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(0.5e6),
			PacketBytes: 1500, Seed: 22, Sink: pr.Sink()}
		if err := src.Start(n.Engine); err != nil {
			t.Fatal(err)
		}
		n.RunFor(40 * sim.Millisecond)
		src.Stop()
		n.RunFor(sim.Duration(sim.Millisecond))
		return pr, pr.PCIeRxBytes
	}
	full, fullBytes := run(false)
	splitPr, splitBytes := run(true)
	if full.Tx != full.Rx || splitPr.Tx != splitPr.Rx {
		t.Fatalf("delivery broken: full %d/%d split %d/%d",
			full.Tx, full.Rx, splitPr.Tx, splitPr.Rx)
	}
	// 1500B packets, ~126B over PCIe in split mode: ~90% savings.
	ratio := float64(splitBytes) / float64(fullBytes)
	if ratio > 0.15 {
		t.Fatalf("split PCIe bytes ratio = %.2f, want < 0.15 for 1500B packets", ratio)
	}
	if splitPr.HeaderDrops != 0 {
		t.Fatalf("header drops = %d with an ample payload buffer", splitPr.HeaderDrops)
	}
}

func TestHeaderSplitSmallBufferDropsHeaders(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(2000, 23)
	pr := addPod(t, n, pod.ModePLB, 2, sf, func(c *PodConfig) {
		c.HeaderSplit = true
		c.PayloadBufferBytes = 64 << 10 // 64KB: ~45 jumbo payloads
		c.JitterSigma = 0.8             // heavy jitter => some late returns
		c.SlowPathProb = 0.01
		c.SlowPathCost = 300 * sim.Microsecond
	})
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1.5e6),
		PacketBytes: 8500, Seed: 24, Sink: pr.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(60 * sim.Millisecond)
	if pr.payload.Evictions == 0 {
		t.Fatal("tiny payload buffer never evicted")
	}
	// Evicted payloads surface as header drops (either at the PLB legal
	// check or at egress reassembly).
	if pr.HeaderDrops+pr.PLB.Stats().HeaderDrops == 0 {
		t.Fatal("no header drops despite payload evictions")
	}
}

func TestFallbackToRSS(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(2000, 25)
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)
	if pr.Mode() != pod.ModePLB {
		t.Fatal("initial mode")
	}
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e6), Seed: 26, Sink: pr.Sink()}
	src.Start(n.Engine)
	n.RunFor(20 * sim.Millisecond)
	inOrderBefore := pr.PLB.Stats().EmittedInOrder
	if inOrderBefore == 0 {
		t.Fatal("no PLB traffic before fallback")
	}

	if err := pr.FallbackToRSS(); err != nil {
		t.Fatal(err)
	}
	if pr.Mode() != pod.ModeRSS || pr.Fallbacks != 1 {
		t.Fatalf("mode=%v fallbacks=%d", pr.Mode(), pr.Fallbacks)
	}
	n.RunFor(20 * sim.Millisecond)
	src.Stop()
	n.RunFor(sim.Duration(sim.Millisecond))

	// After the drain window, PLB emissions must have stopped growing by
	// more than the in-flight residue, while total TX kept going.
	inOrderAfter := pr.PLB.Stats().EmittedInOrder
	if inOrderAfter-inOrderBefore > 100 {
		t.Fatalf("PLB still active after fallback: %d -> %d", inOrderBefore, inOrderAfter)
	}
	if pr.Tx != pr.Rx {
		t.Fatalf("loss across fallback: tx=%d rx=%d", pr.Tx, pr.Rx)
	}
	// Idempotent.
	if err := pr.FallbackToRSS(); err != nil || pr.Fallbacks != 1 {
		t.Fatal("fallback not idempotent")
	}
}

func TestInjectProbe(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(1000, 40)
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)

	// Background load so queue wait is nonzero sometimes.
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(2e6), Seed: 41, Sink: pr.Sink()}
	src.Start(n.Engine)

	var results []ProbeResult
	for i := 0; i < 10; i++ {
		f := wf[i]
		at := sim.Time(i+1) * sim.Time(sim.Millisecond)
		n.Engine.At(at, func() {
			pr.InjectProbe(f, func(r ProbeResult) { results = append(results, r) })
		})
	}
	n.RunFor(20 * sim.Millisecond)
	src.Stop()
	if len(results) != 10 {
		t.Fatalf("got %d probe results", len(results))
	}
	nic := n.Engine
	_ = nic
	for i, r := range results {
		if r.Dropped {
			t.Fatalf("probe %d dropped", i)
		}
		if r.NICIngress <= 0 || r.Service <= 0 || r.NICEgress <= 0 {
			t.Fatalf("probe %d stages: %+v", i, r)
		}
		if r.QueueWait < 0 {
			t.Fatalf("probe %d negative queue wait: %+v", i, r)
		}
		sum := r.NICIngress + r.QueueWait + r.Service + r.NICEgress
		if sum != r.Total {
			t.Fatalf("probe %d stages %v != total %v", i, sum, r.Total)
		}
	}
}

func TestProbeDroppedByLimiter(t *testing.T) {
	lcfg := gop.DefaultConfig()
	lcfg.Stage1Rate = 1 // ~everything dropped
	lcfg.Stage2Rate = 1
	lcfg.Burst = 1
	lcfg.SampleOneIn = 0
	n := smallNode(t, &lcfg)
	wf, sf := wflows(10, 42)
	pr := addPod(t, n, pod.ModePLB, 2, sf, nil)
	dropped := 0
	// Burst of probes: the first consumes the single token, the rest drop.
	for i := 0; i < 5; i++ {
		pr.InjectProbe(wf[0], func(r ProbeResult) {
			if r.Dropped {
				dropped++
			}
		})
	}
	n.RunFor(sim.Duration(sim.Millisecond))
	if dropped == 0 {
		t.Fatal("rate-limited probes not reported dropped")
	}
}

func TestNodeReport(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(500, 43)
	pr := addPod(t, n, pod.ModePLB, 2, sf, nil)
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(0.5e6), Seed: 44, Sink: pr.Sink()}
	src.Start(n.Engine)
	n.RunFor(10 * sim.Millisecond)
	rep := n.Report()
	for _, want := range []string{"albatross node", "VPC-VPC", "plb[gw]", "L3[numa0]"} {
		if !containsStr(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
