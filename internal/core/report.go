package core

import (
	"fmt"
	"strings"

	"albatross/internal/stats"
)

// Report renders an operator-facing snapshot of the node: per-pod traffic
// counters, latency percentiles, PLB health and cache state — the numbers
// an Albatross operator dashboards.
func (n *Node) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "albatross node @ %v virtual, %d pods\n", n.Engine.Now(), len(n.pods))

	t := stats.NewTable("Pod", "Svc", "Mode", "Cores", "Rx", "Tx",
		"Drops(nic/q/plb/acl)", "p50µs", "p99µs", "Disorder")
	for _, pr := range n.pods {
		t.AddRow(
			pr.Pod.Spec.Name,
			pr.Pod.Spec.Service.String(),
			pr.Mode().String(),
			len(pr.Cores),
			pr.Rx, pr.Tx,
			fmt.Sprintf("%d/%d/%d/%d", pr.NICDrops, pr.QueueDrops, pr.PLBDrops, pr.ServiceDrop),
			float64(pr.Latency.Quantile(0.50))/1000,
			float64(pr.Latency.Quantile(0.99))/1000,
			fmt.Sprintf("%.1e", pr.DisorderRate()),
		)
	}
	b.WriteString(t.String())

	for _, pr := range n.pods {
		st := stats.NewTable("Stage", "In", "Out", "Drops", "InFlight", "p50µs", "p99µs")
		resid := pr.StageResidency()
		for i, c := range pr.Stages() {
			h := resid[i]
			st.AddRow(c.Name, c.In, c.Out, c.Drops, c.InFlight(),
				float64(h.Quantile(0.5))/1000, float64(h.Quantile(0.99))/1000)
		}
		fmt.Fprintf(&b, "stages[%s]:\n%s", pr.Pod.Spec.Name, st.String())
	}

	for i, c := range n.caches {
		fmt.Fprintf(&b, "L3[numa%d]: %v\n", i, c)
	}
	if n.Limiter != nil {
		s := n.Limiter.Stats()
		fmt.Fprintf(&b, "gop: stage1=%d stage2=%d drops=%d pre=%d installs=%d\n",
			s.Stage1Conform, s.Stage2Conform, s.Stage2Drops, s.PreMetered, s.HeavyInstalls)
	}
	for _, pr := range n.pods {
		if pr.PLB == nil {
			continue
		}
		s := pr.PLB.Stats()
		fmt.Fprintf(&b, "plb[%s]: inorder=%d besteffort=%d hol=%d timeout=%d dropflag=%d headwait(mean=%v max=%v)\n",
			pr.Pod.Spec.Name, s.EmittedInOrder, s.EmittedBestEffort,
			s.HOLEvents, s.TimeoutReleases, s.DropFlagReleases,
			pr.PLB.HeadWaitMean(), pr.PLB.HeadWaitMax())
	}
	return b.String()
}
