package core

import (
	"fmt"
	"strings"

	"albatross/internal/sim"
	"albatross/internal/workload"
)

// The packet flight recorder: a bounded, pooled, sampled trace ring per
// pod. Every TraceSampleEvery-th injected data packet carries a Journey
// that the stage chain fills with its per-stage timeline (enter/leave
// virtual time, verdict, dispatch core, PLB PSN/order queue). When the
// packet ends, journeys of interest — drops anywhere in the chain, and
// packets the reorder engine released out of order after a timeout — are
// committed into a fixed-size ring; the rest recycle silently. Sampling is
// counter-based (every Nth packet, never randomized), so a fixed seed
// replays the exact same journeys.
//
// The recorder is built for the hot path: live traces come from a free
// list, steps live in a fixed-size array (the chain has 7 slots), and a
// commit is a single struct copy into the preallocated ring. Steady-state
// cost is one counter increment per packet plus a nil check per stage.

// StepVerdict is how a traced packet left a stage.
type StepVerdict uint8

// Step verdicts.
const (
	// StepNext: the stage passed the packet on (synchronously or after an
	// async hop).
	StepNext StepVerdict = iota
	// StepExit: the packet completed the pipeline at this stage (priority
	// shortcut or egress completion).
	StepExit
	// StepDrop: the packet died in this stage.
	StepDrop
	// StepOpen: the packet is still inside the stage (an in-flight trace).
	StepOpen
)

func (v StepVerdict) String() string {
	switch v {
	case StepNext:
		return "next"
	case StepExit:
		return "exit"
	case StepDrop:
		return "drop"
	case StepOpen:
		return "open"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// JourneyReason classifies why a journey was committed to the ring.
type JourneyReason uint8

// Journey reasons.
const (
	// JourneyDropped: the packet died before egress.
	JourneyDropped JourneyReason = iota
	// JourneyTimeoutRelease: the packet completed, but the reorder engine
	// emitted it best-effort (its order queue gave up waiting — a reorder
	// timeout or stale-PSN release).
	JourneyTimeoutRelease
	// JourneyLatencyTrigger: the packet completed normally but its
	// end-to-end latency exceeded the operator's TriggerLatencyOver bound.
	JourneyLatencyTrigger
	// JourneyFaultWindow: the packet completed normally but its flight
	// overlapped an armed fault window (TriggerFaultWindow).
	JourneyFaultWindow
	// JourneyVNIWatch: the packet completed normally and its tenant VNI is
	// on the TriggerVNI watch list.
	JourneyVNIWatch
)

func (r JourneyReason) String() string {
	switch r {
	case JourneyTimeoutRelease:
		return "timeout-release"
	case JourneyLatencyTrigger:
		return "latency-over"
	case JourneyFaultWindow:
		return "fault-window"
	case JourneyVNIWatch:
		return "vni-watch"
	default:
		return "dropped"
	}
}

// maxTraceSteps bounds a journey's timeline: one step per chain slot.
const maxTraceSteps = numStages + 1

// TraceStep is one stage visit of a traced packet.
type TraceStep struct {
	Stage   int8 // chain slot index (StageNames order)
	Verdict StepVerdict
	Enter   sim.Time
	Leave   sim.Time
}

// Journey is one sampled packet's recorded flight. While the packet is in
// flight it doubles as the mutable trace attached to its pktCtx; committed
// copies in the ring are immutable.
type Journey struct {
	Flow  workload.Flow
	Bytes int
	T0    sim.Time // injection time
	End   sim.Time // time the journey closed (drop or egress completion)

	Reason JourneyReason
	// Core is the CPU core the dispatch stage chose (-1 before dispatch).
	Core int32
	// PSN and OrdQ are the PLB meta trailer (PLB-dispatched packets only).
	PSN  uint16
	OrdQ uint8
	// ViaPLB reports whether the packet took the PLB spray path.
	ViaPLB bool

	Steps  [maxTraceSteps]TraceStep
	NSteps uint8

	// builder state (not meaningful in committed copies)
	completed bool // reached exitHere (priority or egress completion)
	timeout   bool // reorder engine emitted it best-effort
}

// enter opens a step for stage i at time now.
func (j *Journey) enter(stage int8, now sim.Time) {
	if int(j.NSteps) >= maxTraceSteps {
		return
	}
	j.Steps[j.NSteps] = TraceStep{Stage: stage, Verdict: StepOpen, Enter: now, Leave: now}
	j.NSteps++
}

// leave closes the most recent step.
func (j *Journey) leave(now sim.Time, v StepVerdict) {
	if j.NSteps == 0 {
		return
	}
	s := &j.Steps[j.NSteps-1]
	s.Leave = now
	s.Verdict = v
}

// String renders the journey as a readable timeline.
func (j *Journey) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pkt vni=%d %s %dB t0=%v %s", j.Flow.VNI, j.Flow.Tuple, j.Bytes, j.T0, j.Reason)
	if j.ViaPLB {
		fmt.Fprintf(&b, " (core=%d psn=%d ordq=%d)", j.Core, j.PSN, j.OrdQ)
	}
	for _, s := range j.Steps[:j.NSteps] {
		fmt.Fprintf(&b, "\n  %-11s +%-8v %v", stageNames[s.Stage], s.Enter.Sub(j.T0), s.Verdict)
		if d := s.Leave.Sub(s.Enter); d > 0 {
			fmt.Fprintf(&b, " after %v", d)
		}
	}
	return b.String()
}

// stageNames maps chain slot indices to the stable stage labels (the
// dispatch slot keeps one name across PLB/RSS mode switches).
var stageNames = [numStages]string{
	"classify", "gop", "nic-ingress", "dispatch", "cpu", "reorder", "nic-egress",
}

// StageNames returns the pipeline's stage labels in chain order.
func StageNames() []string { return stageNames[:] }

// FlightRecorder samples packet journeys for one pod.
type FlightRecorder struct {
	every uint64 // sample every Nth injected packet; 0 disables
	seen  uint64 // injected data packets observed

	pool []*Journey // free journeys for in-flight traces
	ring []Journey  // committed journeys, oldest overwritten first
	next int        // ring write cursor
	wrap bool       // ring has wrapped at least once

	// Operator-defined commit triggers. Zero values disable each trigger,
	// keeping the default finish path identical to the built-in
	// drop/timeout classification.
	latencyOver  sim.Duration  // commit completed journeys slower than this
	vniWatch     []uint32      // commit completed journeys of these tenants
	watchFaults  bool          // commit journeys overlapping a fault window
	faultWindows []faultWindow // active/past fault windows, time-ordered

	// Counters.
	Sampled   uint64 // journeys attached to packets
	Drops     uint64 // committed: packet died in the chain
	Timeouts  uint64 // committed: reorder released it best-effort
	Triggered uint64 // committed: an operator trigger matched
	Discarded uint64 // sampled journeys that ended uneventfully
}

// faultWindow is one [From, To) interval during which a fault was active.
type faultWindow struct {
	From, To sim.Time
}

// newFlightRecorder builds a recorder sampling every `every` packets with a
// ring of `ringSize` committed journeys.
func newFlightRecorder(every int, ringSize int) *FlightRecorder {
	if ringSize <= 0 {
		ringSize = defaultTraceRing
	}
	f := &FlightRecorder{ring: make([]Journey, ringSize)}
	if every > 0 {
		f.every = uint64(every)
	}
	return f
}

// sample decides (deterministically) whether the next injected packet is
// traced, and if so returns its journey builder.
func (f *FlightRecorder) sample() *Journey {
	if f.every == 0 {
		return nil
	}
	f.seen++
	if f.seen%f.every != 0 {
		return nil
	}
	f.Sampled++
	var j *Journey
	if n := len(f.pool); n > 0 {
		j = f.pool[n-1]
		f.pool[n-1] = nil
		f.pool = f.pool[:n-1]
	} else {
		j = &Journey{}
	}
	return j
}

// TriggerLatencyOver arms a commit trigger: completed journeys whose
// end-to-end latency meets or exceeds d are committed (reason
// JourneyLatencyTrigger). d <= 0 disarms.
func (f *FlightRecorder) TriggerLatencyOver(d sim.Duration) { f.latencyOver = d }

// TriggerVNI adds tenant v to the watch list: completed journeys carrying
// its VNI are committed (reason JourneyVNIWatch).
func (f *FlightRecorder) TriggerVNI(v uint32) { f.vniWatch = append(f.vniWatch, v) }

// TriggerFaultWindow arms fault-window capture: completed journeys whose
// flight overlaps any fault activation window on this pod are committed
// (reason JourneyFaultWindow). The windows themselves are recorded by the
// fault-injection ops whether or not the trigger is armed.
func (f *FlightRecorder) TriggerFaultWindow() { f.watchFaults = true }

// noteFaultWindow records a fault activation interval [from, to). Abutting
// or overlapping windows merge so the list stays bounded by the number of
// disjoint fault episodes.
func (f *FlightRecorder) noteFaultWindow(from, to sim.Time) {
	if to < from {
		from, to = to, from
	}
	if n := len(f.faultWindows); n > 0 && from <= f.faultWindows[n-1].To {
		if to > f.faultWindows[n-1].To {
			f.faultWindows[n-1].To = to
		}
		return
	}
	f.faultWindows = append(f.faultWindows, faultWindow{From: from, To: to})
}

// triggered classifies a *completed, in-order* journey against the armed
// operator triggers. Precedence: latency, fault window, VNI watch.
func (f *FlightRecorder) triggered(j *Journey, now sim.Time) (JourneyReason, bool) {
	if f.latencyOver > 0 && now.Sub(j.T0) >= f.latencyOver {
		return JourneyLatencyTrigger, true
	}
	if f.watchFaults {
		for i := range f.faultWindows {
			w := &f.faultWindows[i]
			if j.T0 < w.To && now >= w.From {
				return JourneyFaultWindow, true
			}
		}
	}
	for _, v := range f.vniWatch {
		if j.Flow.VNI == v {
			return JourneyVNIWatch, true
		}
	}
	return 0, false
}

// finish closes a journey at the end of its packet's life: drops and
// timeout-released packets commit into the ring (built-in reasons take
// precedence), then the operator triggers get a look; everything else
// recycles silently.
func (f *FlightRecorder) finish(j *Journey, now sim.Time) {
	j.End = now
	switch {
	case !j.completed:
		j.Reason = JourneyDropped
		j.leave(now, StepDrop)
		f.Drops++
		f.commit(j)
	case j.timeout:
		j.Reason = JourneyTimeoutRelease
		f.Timeouts++
		f.commit(j)
	default:
		if reason, ok := f.triggered(j, now); ok {
			j.Reason = reason
			f.Triggered++
			f.commit(j)
		} else {
			f.Discarded++
		}
	}
	*j = Journey{}
	f.pool = append(f.pool, j)
}

// commit copies the journey into the ring (no allocation).
func (f *FlightRecorder) commit(j *Journey) {
	f.ring[f.next] = *j
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.wrap = true
	}
}

// Committed returns the number of journeys committed to the ring over the
// recorder's lifetime (drops, timeout releases, and trigger matches).
func (f *FlightRecorder) Committed() uint64 { return f.Drops + f.Timeouts + f.Triggered }

// Journeys returns the retained journeys, oldest first. The ring bounds
// retention to its size; Committed() counts everything ever recorded.
func (f *FlightRecorder) Journeys() []Journey {
	if !f.wrap {
		out := make([]Journey, f.next)
		copy(out, f.ring[:f.next])
		return out
	}
	out := make([]Journey, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// Flight returns the pod's packet flight recorder.
func (pr *PodRuntime) Flight() *FlightRecorder { return pr.flight }
