package core

import (
	"albatross/internal/nicsim"
	"albatross/internal/packet"
	"albatross/internal/plb"
	"albatross/internal/pod"
	"albatross/internal/sim"
)

// Burst-batched dispatch: when NodeConfig.Burst > 1 the pod replaces the
// per-packet NIC-ingress event with a burst accumulator. Packets injected
// back-to-back at the same virtual instant (and same traffic class) share ONE
// arrival event; the CPU stage admits them arithmetically (cpu.Core.Admit
// computes start/finish times in place of per-packet queue/service events)
// and ONE per-pod drain event retires everything whose computed finish time
// has passed.
//
// Every observable — counters, histograms, PLB return times, end-to-end
// latency — is a pure function of the computed times, never of the engine
// clock at processing, so outcomes are invariant in the burst size: B=2 and
// B=32 produce byte-identical metrics for the same packet sequence. Burst <= 1
// leaves the legacy per-packet path untouched (that is the byte-identity
// anchor against the unbatched build).
//
// Member state is struct-of-arrays per core (corePend): a core serializes its
// admissions, so each core's finish times are already sorted and the drain is
// a K-way merge over core heads — no sort, no allocation on the hot path.
//
// Known modeling caveat (documented in DESIGN.md §13): completions are
// deferred from their logical finish time to the drain event, so a PLB
// reorder timeout whose deadline lands inside that deferral window fires in
// burst mode where the unbatched path would have seen the return first. None
// of the committed workloads cross that boundary; burst-size invariance is
// validated by test, not claimed as a theorem. The flight recorder is forced
// off in burst mode (per-packet journeys assume per-packet events).

// burst accumulates same-instant, same-class injections into one arrival.
type burst struct {
	pr      *PodRuntime
	class   nicsim.Class
	t0      sim.Time
	mark    uint64 // engine SchedSeq right after the arrival was scheduled
	members []*pktCtx
}

// burstIngressStage replaces ingressStage when Burst > 1: identical PCIe
// accounting, but the NIC-DMA hop is one shared event per burst.
type burstIngressStage struct{}

func (burstIngressStage) Name() string { return "nic-ingress" }

func (burstIngressStage) Process(pr *PodRuntime, ctx *pktCtx) StageVerdict {
	n := pr.node
	if pr.payload != nil && ctx.class == nicsim.ClassPLB && ctx.bytes > headerSplitBytes {
		ctx.split = true
		pr.nextPay++
		ctx.payID = pr.nextPay
		pr.PCIeRxBytes += headerSplitBytes
	} else {
		pr.PCIeRxBytes += uint64(ctx.bytes) + packet.MetaLen
	}
	now := n.Engine.Now()
	b := pr.openBurst[ctx.class]
	// Join the open burst only when nothing else was scheduled since it was
	// opened (SchedSeq unchanged): a source that schedules its next injection
	// between packets breaks the run, so scenario traffic degrades to
	// singleton bursts and keeps its exact legacy event interleaving.
	if b != nil && b.t0 == now && len(b.members) < pr.burst &&
		n.Engine.SchedSeq() == b.mark {
		b.members = append(b.members, ctx)
		return StageConsumed
	}
	b = pr.getBurst()
	b.class = ctx.class
	b.t0 = now
	b.members = append(b.members, ctx)
	n.Engine.AfterArg(n.cfg.NIC.IngressLatency(ctx.class), burstArrivalEvent, b)
	b.mark = n.Engine.SchedSeq()
	pr.openBurst[ctx.class] = b
	return StageConsumed
}

// getBurst takes a burst accumulator from the pod's pool.
func (pr *PodRuntime) getBurst() *burst {
	if n := len(pr.burstFree); n > 0 {
		b := pr.burstFree[n-1]
		pr.burstFree[n-1] = nil
		pr.burstFree = pr.burstFree[:n-1]
		return b
	}
	return &burst{pr: pr, members: make([]*pktCtx, 0, pr.burst)}
}

// burstArrivalEvent fires when the burst's shared NIC-DMA hop completes: the
// whole burst lands in host memory at once and runs dispatch + arithmetic
// CPU admission member by member, in injection order.
func burstArrivalEvent(arg any) {
	b := arg.(*burst)
	pr := b.pr
	if pr.openBurst[b.class] == b {
		pr.openBurst[b.class] = nil
	}
	now := pr.node.Engine.Now()
	n := uint64(len(b.members))

	// Complete the ingress stage for the whole burst: every member entered at
	// b.t0 and shares the same residency. The dispatch stage's In count and
	// zero residency are also per-member-invariant (every verdict records
	// zero), so they batch here; Out/Drops stay per member.
	pr.pipe.counters[stageIngress].Out += n
	pr.pipe.resid[stageIngress].RecordN(int64(now.Sub(b.t0)), n)
	pr.pipe.counters[stageDispatch].In += n
	pr.pipe.resid[stageDispatch].RecordN(0, n)

	// Software-pipelined dispatch: hash + probe-head loads issue two members
	// ahead, the dependent entry/LPM set warm one ahead, so each member's
	// host cache misses resolve while its predecessor computes — the batching
	// win the per-packet path structurally cannot have. Warm passes touch no
	// model state; outcomes are bit-identical with or without them.
	members := b.members
	svc := pr.Svc
	for i, ctx := range members {
		if svc != nil {
			if j := i + 2; j < len(members) {
				c := members[j]
				c.fh = c.flow.Tuple.Hash()
				c.fhOK = true
				svc.WarmProbes(c.fh)
			}
			if j := i + 1; j < len(members) {
				c := members[j]
				if !c.fhOK {
					c.fh = c.flow.Tuple.Hash()
					c.fhOK = true
				}
				svc.Warm(c.flow.Tuple, c.fh)
			}
		}
		b.members[i] = nil
		pr.burstDispatch(ctx, now)
	}
	b.members = b.members[:0]
	pr.burstFree = append(pr.burstFree, b)
}

// burstDispatch runs one burst member through the dispatch stage and the
// arithmetic CPU admission, mirroring the legacy chain's accounting exactly
// (the dispatch In/residency were batched by the arrival event).
func (pr *PodRuntime) burstDispatch(ctx *pktCtx, now sim.Time) {
	pipe := &pr.pipe
	ctx.stage = stageDispatch
	ctx.enterAt = now
	var v StageVerdict
	if pr.mode == pod.ModePLB {
		// Devirtualized common case; fallback pods go through the chain slot.
		v = plbDispatchStage{}.Process(pr, ctx)
	} else {
		v = pipe.stages[stageDispatch].Process(pr, ctx)
	}
	switch v {
	case StageDrop:
		pipe.counters[stageDispatch].Drops++
		return
	case StageNext:
		pipe.counters[stageDispatch].Out++
	case StageConsumed:
		return // dispatch stages never consume; defensive
	}

	ctx.stage = stageCPU
	ctx.enterAt = now
	pipe.counters[stageCPU].In++
	c := pr.Cores[ctx.core]
	start, finish, ok := c.Admit(ctx.cost)
	if !ok {
		// RX queue overflow (or failed core), same as cpuStage: the PLB FIFO
		// entry stays behind until its timeout.
		pr.QueueDrops++
		pipe.counters[stageCPU].Drops++
		pipe.resid[stageCPU].RecordZero()
		pr.putCtx(ctx)
		return
	}
	// The CPU-return latency is a computed quantity; record it at admission.
	pr.CPULatency.Record(int64(finish.Sub(ctx.queueAt)))

	cp := &pr.pend[ctx.core]
	cp.ctx = append(cp.ctx, ctx)
	cp.start = append(cp.start, start)
	cp.finish = append(cp.finish, finish)
	cp.seq = append(cp.seq, pr.admitSeq)
	if len(cp.finish)-cp.head == 1 {
		// The core was idle: this member is its new merge head. (A non-empty
		// core never changes heads on admit — finishes append in order.)
		pr.headF[ctx.core] = finish
		pr.headSeq[ctx.core] = pr.admitSeq
	}
	pr.admitSeq++
	pr.pending++
	if !pr.drainArmed {
		pr.drainArmed = true
		pr.node.Engine.AfterArg(finish.Sub(now), podDrainEvent, pr)
	}
}

// podDrainEvent retires every pending member whose computed finish time has
// passed, in (finish, admission) order — the order the unbatched path's
// completion events would have fired — then re-arms at the latest remaining
// finish so a wave of admissions costs O(1) drain events.
func podDrainEvent(arg any) {
	pr := arg.(*PodRuntime)
	pr.drainPendingThrough(pr.node.Engine.Now(), true)
}

// drainPendingThrough completes members with finish <= now in global
// (finish, admission-seq) order — a K-way merge over the per-core queues,
// whose finish times each core's serial admission keeps sorted. rearm
// re-arms the drain event for the remainder; the fault paths pass false and
// let the already-scheduled event handle what is left.
func (pr *PodRuntime) drainPendingThrough(now sim.Time, rearm bool) {
	if rearm {
		pr.drainArmed = false
	}
	heads := pr.headF
	for pr.pending > 0 {
		// Pick the earliest (finish, seq) head from the compact head cache —
		// one cache line for 8 cores, no pointer chase into the queues.
		best := 0
		bestF := heads[0]
		for c := 1; c < len(heads); c++ {
			if f := heads[c]; f < bestF ||
				(f == bestF && pr.headSeq[c] < pr.headSeq[best]) {
				best, bestF = c, f
			}
		}
		if bestF > now { // sim.TimeMax when every core is idle
			break
		}
		cp := &pr.pend[best]
		h := cp.head
		ctx, start := cp.ctx[h], cp.start[h]
		cp.ctx[h] = nil
		cp.head = h + 1
		if cp.head == len(cp.finish) {
			cp.ctx = cp.ctx[:0]
			cp.start = cp.start[:0]
			cp.finish = cp.finish[:0]
			cp.seq = cp.seq[:0]
			cp.head = 0
			heads[best] = sim.TimeMax
		} else {
			heads[best] = cp.finish[cp.head]
			pr.headSeq[best] = cp.seq[cp.head]
		}
		pr.pending--
		pr.completeMember(ctx, start, bestF)
	}
	if pr.pending == 0 || !rearm || pr.drainArmed {
		return
	}
	// Re-arm at the latest remaining finish (each core's tail is its max) so
	// a wave of admissions costs O(1) drain events.
	var maxF sim.Time
	for c := range pr.pend {
		cp := &pr.pend[c]
		if n := len(cp.finish); n > cp.head && cp.finish[n-1] > maxF {
			maxF = cp.finish[n-1]
		}
	}
	pr.drainArmed = true
	pr.node.Engine.AfterArg(maxF.Sub(now), podDrainEvent, pr)
}

// completeMember is the burst equivalent of onCPUDone + the reorder/egress
// continuation, with every timestamp taken from the computed finish time.
func (pr *PodRuntime) completeMember(ctx *pktCtx, start, finish sim.Time) {
	pipe := &pr.pipe
	c := pr.Cores[ctx.core]
	if c.FailedWindow(ctx.queueAt, finish) {
		// The core failed while this member was queued or in service: the
		// unbatched path would have discarded it via Fail's queue sweep.
		pr.FaultLost++
		c.ArithLost(start, finish)
		pipe.counters[stageCPU].Drops++
		pipe.resid[stageCPU].Record(int64(c.LastFailAt().Sub(ctx.enterAt)))
		if ctx.split {
			pr.payload.Take(ctx.payID)
		}
		pr.putCtx(ctx)
		return
	}
	if ctx.drop {
		pr.ServiceDrop++
		pipe.counters[stageCPU].Drops++
		pipe.resid[stageCPU].Record(int64(finish.Sub(ctx.enterAt)))
		if ctx.viaPLB {
			if ctx.split {
				pr.payload.Take(ctx.payID)
			}
			if pr.cfg.DropFlagDisabled {
				pr.putCtx(ctx)
				return
			}
			meta := ctx.meta
			meta.Flags |= packet.MetaFlagDrop
			pr.putCtx(ctx)
			pr.PLB.ReturnAt(nil, meta, finish)
			return
		}
		pr.putCtx(ctx)
		return
	}
	pipe.counters[stageCPU].Out++
	pipe.resid[stageCPU].Record(int64(finish.Sub(ctx.enterAt)))
	c.ArithDone()

	ctx.stage = stageReorder
	ctx.enterAt = finish
	pipe.counters[stageReorder].In++
	if ctx.viaPLB {
		pr.PLB.ReturnAt(ctx, ctx.meta, finish)
		return
	}
	pipe.counters[stageReorder].Out++
	pipe.resid[stageReorder].RecordZero()
	pr.burstEgress(ctx, finish)
}

// burstEmission completes the reorder stage for a PLB member using the
// emission's logical time (the engine clock sits at the drain event, which
// may be later).
func (pr *PodRuntime) burstEmission(ctx *pktCtx, em plb.Emission) {
	pipe := &pr.pipe
	if ctx.split {
		if !pr.payload.Take(ctx.payID) {
			pr.HeaderDrops++
			pipe.counters[stageReorder].Drops++
			pipe.resid[stageReorder].Record(int64(em.Time.Sub(ctx.enterAt)))
			pr.putCtx(ctx)
			return
		}
	}
	pipe.counters[stageReorder].Out++
	pipe.resid[stageReorder].Record(int64(em.Time.Sub(ctx.enterAt)))
	pr.burstEgress(ctx, em.Time)
}

// burstEgress retires a member through the egress stage arithmetically: PCIe
// TX accounting at `at`, completion at `at + egress latency`.
func (pr *PodRuntime) burstEgress(ctx *pktCtx, at sim.Time) {
	pipe := &pr.pipe
	ctx.stage = stageEgress
	ctx.enterAt = at
	pipe.counters[stageEgress].In++
	class := nicsim.ClassRSS
	if ctx.viaPLB {
		class = nicsim.ClassPLB
	}
	if ctx.split {
		pr.PCIeTxBytes += headerSplitBytes
	} else {
		pr.PCIeTxBytes += uint64(ctx.bytes) + packet.MetaLen
	}
	lat := pr.node.cfg.NIC.EgressLatency(class)
	pr.Tx++
	pr.TxPerTenant[ctx.flow.VNI]++
	pr.Latency.Record(int64(at.Add(lat).Sub(ctx.t0)))
	pipe.counters[stageEgress].Out++
	pipe.resid[stageEgress].Record(int64(lat))
	pr.putCtx(ctx)
}

// corePend is one core's struct-of-arrays queue of arithmetically admitted
// members. A core serializes its service, so finish (and seq) are appended
// in increasing order; head marks the next member to retire.
type corePend struct {
	ctx    []*pktCtx
	start  []sim.Time
	finish []sim.Time
	seq    []uint64
	head   int
}
