package core

import (
	"strconv"

	"albatross/internal/metrics"
	"albatross/internal/pod"
)

// Metric registration: every pod's counters, latency histograms, per-stage
// residency histograms, and flight-recorder tallies become named series in
// a metrics.Registry. The registry reads the simulator's own state at
// snapshot time — nothing is double-counted and registration is free on
// the hot path.

// RegisterMetrics registers the node's metric series into reg. base labels
// (e.g. node="0" in a cluster) are attached to every series. Each pod's
// series carry pod=<name> and slot=<deploy index> labels; the slot keeps
// series unique when pods share a name.
func (n *Node) RegisterMetrics(reg *metrics.Registry, base ...metrics.Label) {
	reg.Counter("albatross_node_blackholed_packets_total",
		"Packets lost at the ToR while the uplink was down.",
		func() uint64 { return n.Blackholed }, base...)
	reg.Counter("albatross_node_proxied_packets_total",
		"Packets carried by the sibling proxy path during an uplink outage.",
		func() uint64 { return n.Proxied }, base...)
	if n.backend != nil {
		be := with(base, "backend", n.backend.Name())
		for _, ev := range []struct {
			event string
			fn    func() uint64
		}{
			{"lookup", func() uint64 { return n.backend.Stats().Lookups }},
			{"hit", func() uint64 { return n.backend.Stats().Hits }},
			{"insert", func() uint64 { return n.backend.Stats().Inserts }},
			{"eviction", func() uint64 { return n.backend.Stats().Evictions }},
			{"moved", func() uint64 { return n.backend.Stats().Moved }},
			{"rebuild", func() uint64 { return n.backend.Stats().Rebuilds }},
		} {
			reg.Counter("albatross_backend_ops_total",
				"Flow-table backend operations, by event.", ev.fn, with(be, "event", ev.event)...)
		}
	}
	for i, pr := range n.pods {
		pr.registerMetrics(reg, append([]metrics.Label{
			metrics.L("pod", pr.Pod.Spec.Name),
			metrics.L("slot", strconv.Itoa(i)),
		}, base...)...)
	}
}

// Metrics builds a fresh registry over the node and snapshots it.
func (n *Node) Metrics() *metrics.Snapshot {
	reg := metrics.New()
	n.RegisterMetrics(reg)
	return reg.Snapshot()
}

// with returns the pod's label set extended by one pair.
func with(labels []metrics.Label, key, value string) []metrics.Label {
	return append(append([]metrics.Label(nil), labels...), metrics.L(key, value))
}

func (pr *PodRuntime) registerMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	reg.Counter("albatross_pod_rx_packets_total", "Packets entering the pod.",
		func() uint64 { return pr.Rx }, labels...)
	reg.Counter("albatross_pod_tx_packets_total", "Packets completing egress.",
		func() uint64 { return pr.Tx }, labels...)

	const dropHelp = "Packets dropped, by reason."
	for _, d := range []struct {
		reason string
		fn     func() uint64
	}{
		{"nic_overload", func() uint64 { return pr.NICDrops }},
		{"queue", func() uint64 { return pr.QueueDrops }},
		{"plb_fifo", func() uint64 { return pr.PLBDrops }},
		{"service", func() uint64 { return pr.ServiceDrop }},
		{"header", func() uint64 { return pr.HeaderDrops }},
		{"rx_loss", func() uint64 { return pr.RxLost }},
		{"fault", func() uint64 { return pr.FaultLost }},
		{"crash", func() uint64 { return pr.CrashDrops }},
	} {
		reg.Counter("albatross_pod_drops_total", dropHelp, d.fn, with(labels, "reason", d.reason)...)
	}

	reg.Counter("albatross_pod_priority_packets_total", "Priority-path packets, by direction.",
		func() uint64 { return pr.PriorityRx }, with(labels, "dir", "rx")...)
	reg.Counter("albatross_pod_priority_packets_total", "Priority-path packets, by direction.",
		func() uint64 { return pr.PriorityTx }, with(labels, "dir", "tx")...)
	reg.Counter("albatross_pod_pcie_bytes_total", "Bytes DMA'd across PCIe, by direction.",
		func() uint64 { return pr.PCIeRxBytes }, with(labels, "dir", "rx")...)
	reg.Counter("albatross_pod_pcie_bytes_total", "Bytes DMA'd across PCIe, by direction.",
		func() uint64 { return pr.PCIeTxBytes }, with(labels, "dir", "tx")...)
	reg.Counter("albatross_pod_fallbacks_total", "PLB-to-RSS mode switches.",
		func() uint64 { return pr.Fallbacks }, labels...)
	reg.Counter("albatross_pod_redirected_packets_total", "Packets redirected to the sibling pod.",
		func() uint64 { return pr.Redirected }, labels...)
	reg.Counter("albatross_pod_restarts_total", "Crash restarts and gray upgrades completed.",
		func() uint64 { return pr.Restarts }, labels...)

	reg.Gauge("albatross_pod_live_contexts", "Data-path contexts in flight.",
		func() float64 { return float64(pr.live) }, labels...)
	reg.Gauge("albatross_pod_mode_rss", "1 while the pod hashes by RSS, 0 in PLB mode.",
		func() float64 {
			if pr.mode == pod.ModeRSS {
				return 1
			}
			return 0
		}, labels...)

	reg.Histogram("albatross_pod_latency_ns", "End-to-end (wire to wire) packet latency.",
		pr.Latency, labels...)
	reg.Histogram("albatross_pod_cpu_latency_ns", "Dispatch-to-CPU-return latency.",
		pr.CPULatency, labels...)

	resid := pr.StageResidency()
	for i, name := range StageNames() {
		stage := with(labels, "stage", name)
		reg.Histogram("albatross_stage_residency_ns",
			"Virtual time spent inside each pipeline stage.", resid[i], stage...)
		c := &pr.pipe.counters[i]
		reg.Counter("albatross_stage_packets_total", "Per-stage packet flow, by event.",
			func() uint64 { return c.In }, with(stage, "event", "in")...)
		reg.Counter("albatross_stage_packets_total", "Per-stage packet flow, by event.",
			func() uint64 { return c.Out }, with(stage, "event", "out")...)
		reg.Counter("albatross_stage_packets_total", "Per-stage packet flow, by event.",
			func() uint64 { return c.Drops }, with(stage, "event", "drop")...)
	}

	fr := pr.flight
	for _, tj := range []struct {
		event string
		fn    func() uint64
	}{
		{"sampled", func() uint64 { return fr.Sampled }},
		{"dropped", func() uint64 { return fr.Drops }},
		{"timeout_release", func() uint64 { return fr.Timeouts }},
		{"discarded", func() uint64 { return fr.Discarded }},
	} {
		reg.Counter("albatross_trace_journeys_total",
			"Flight-recorder journeys, by outcome.", tj.fn, with(labels, "event", tj.event)...)
	}

	if pr.PLB != nil {
		reg.Counter("albatross_plb_timeout_releases_total",
			"Reorder FIFO heads released by the timeout bound.",
			func() uint64 { return pr.PLB.Stats().TimeoutReleases }, labels...)
		reg.Counter("albatross_plb_hol_events_total",
			"Head-of-line waits exceeding the HOL threshold.",
			func() uint64 { return pr.PLB.Stats().HOLEvents }, labels...)
		reg.Gauge("albatross_plb_disorder_ratio", "Disordered emissions over all emissions.",
			func() float64 { s := pr.PLB.Stats(); return s.DisorderRate() }, labels...)
	}
}
