package core

import (
	"testing"

	"albatross/internal/cachesim"
	"albatross/internal/faults"
	"albatross/internal/pod"
	"albatross/internal/sim"
	"albatross/internal/stats"
	"albatross/internal/workload"
)

// drainPod stops the source and advances time until no data-path contexts
// remain in flight.
func drainPod(t *testing.T, n *Node, pr *PodRuntime, src *workload.Source) {
	t.Helper()
	src.Stop()
	for i := 0; i < 100 && pr.Live() > 0; i++ {
		n.RunFor(sim.Millisecond)
	}
	if pr.Live() != 0 {
		t.Fatalf("pipeline did not drain: %d contexts live", pr.Live())
	}
}

// assertStageConservation checks the drained-pipeline invariants: every
// stage balanced (In == Out + Drops), and adjacent stages consistent
// (stage i's Out feeds stage i+1's In, modulo the priority early exit at
// classify).
func assertStageConservation(t *testing.T, pr *PodRuntime) {
	t.Helper()
	st := pr.Stages()
	if bad, ok := stats.StageBalance(st); !ok {
		t.Fatalf("unbalanced stage after drain: %s", bad)
	}
	if st[0].In != pr.Rx {
		t.Fatalf("classify in %d != pod Rx %d", st[0].In, pr.Rx)
	}
	// classify's Out splits between the priority shortcut and the gop stage.
	if st[0].Out != st[1].In+pr.PriorityTx {
		t.Fatalf("classify out %d != gop in %d + priority tx %d", st[0].Out, st[1].In, pr.PriorityTx)
	}
	for i := 1; i+1 < len(st); i++ {
		if st[i].Out != st[i+1].In {
			t.Fatalf("stage %q out %d != stage %q in %d", st[i].Name, st[i].Out, st[i+1].Name, st[i+1].In)
		}
	}
	last := &st[len(st)-1]
	if last.Out != pr.Tx {
		t.Fatalf("egress out %d != pod Tx %d", last.Out, pr.Tx)
	}
}

func runStageTraffic(t *testing.T, n *Node, pr *PodRuntime, wf []workload.Flow, d sim.Duration) {
	t.Helper()
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(2e6), Seed: 2, Sink: pr.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(d)
	drainPod(t, n, pr, src)
}

func TestStageConservationPLB(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(2000, 1)
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)
	runStageTraffic(t, n, pr, wf, 50*sim.Millisecond)
	if pr.Tx == 0 {
		t.Fatal("no traffic flowed")
	}
	assertStageConservation(t, pr)
}

func TestStageConservationRSS(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(2000, 1)
	pr := addPod(t, n, pod.ModeRSS, 4, sf, nil)
	runStageTraffic(t, n, pr, wf, 50*sim.Millisecond)
	if pr.Tx == 0 {
		t.Fatal("no traffic flowed")
	}
	assertStageConservation(t, pr)
}

// TestStageConservationUnderFaults drives the faultcore shape (a stall
// then a core failure) plus service drops and asserts the counters still
// balance: packets lost inside async stages are charged to the stage that
// held them.
func TestStageConservationUnderFaults(t *testing.T) {
	plan := (&faults.Plan{}).
		CoreStall(10*sim.Millisecond, 0, 2, 100, 5*sim.Millisecond).
		CoreFail(11*sim.Millisecond, 0, 2, 10*sim.Millisecond)
	n, err := NewNode(NodeConfig{
		Seed:   1,
		Cache:  cachesim.Config{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64},
		Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	wf := workload.GenerateFlows(2000, 100, 1)
	sf := workload.ServiceFlows(wf, 0.02) // some ACL denials → cpu-stage drops
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)
	runStageTraffic(t, n, pr, wf, 40*sim.Millisecond)

	if pr.FaultLost == 0 {
		t.Fatal("core failure lost no packets; fault did not engage")
	}
	if pr.ServiceDrop == 0 {
		t.Fatal("no service drops; ACL denials did not engage")
	}
	assertStageConservation(t, pr)
	// The CPU stage carries both the service drops and the core-failure
	// losses of queued packets.
	st := pr.Stages()
	cpu := st[stageCPU]
	if cpu.Drops < pr.ServiceDrop {
		t.Fatalf("cpu stage drops %d < service drops %d", cpu.Drops, pr.ServiceDrop)
	}
}

// TestStageConservationAcrossFallback switches PLB→RSS mid-run with
// packets in flight: the fixed chain shape must keep every in-flight
// packet's stage index valid and the counters balanced.
func TestStageConservationAcrossFallback(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(2000, 1)
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(2e6), Seed: 2, Sink: pr.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(10 * sim.Millisecond)
	if err := pr.FallbackToRSS(); err != nil {
		t.Fatal(err)
	}
	n.RunFor(10 * sim.Millisecond)
	drainPod(t, n, pr, src)
	if pr.Mode() != pod.ModeRSS {
		t.Fatal("fallback did not switch mode")
	}
	assertStageConservation(t, pr)
	// The dispatch slot keeps its stable counter name across the swap.
	if name := pr.Stages()[stageDispatch].Name; name != "dispatch" {
		t.Fatalf("dispatch stage renamed to %q across fallback", name)
	}
}
