package core

import (
	"testing"

	"albatross/internal/pod"
	"albatross/internal/sim"
	"albatross/internal/workload"
)

// triggerPod builds a drop-free PLB pod tracing every packet into a ring
// large enough to retain everything the triggers commit.
func triggerPod(t *testing.T, n *Node) (*PodRuntime, []workload.Flow) {
	t.Helper()
	wf, sf := wflows(1000, 5)
	pr := addPod(t, n, pod.ModePLB, 4, sf, func(c *PodConfig) {
		c.TraceSampleEvery = 1
		c.TraceRing = 1 << 14
	})
	return pr, wf
}

func TestTriggerLatencyOverCommitsAllCompleted(t *testing.T) {
	n := smallNode(t, nil)
	pr, wf := triggerPod(t, n)
	fr := pr.Flight()
	// 1ns is under any end-to-end latency: every completed in-order journey
	// must commit. The VNI watch is armed too — latency takes precedence,
	// so vni-watch must never appear as a reason.
	fr.TriggerLatencyOver(1)
	fr.TriggerVNI(wf[0].VNI)
	runStageTraffic(t, n, pr, wf, 20*sim.Millisecond)

	completed := fr.Sampled - fr.Drops - fr.Timeouts
	if fr.Triggered == 0 || fr.Triggered != completed {
		t.Fatalf("triggered %d, want every completed journey (%d)", fr.Triggered, completed)
	}
	if fr.Discarded != 0 {
		t.Fatalf("discarded %d journeys with an always-on trigger", fr.Discarded)
	}
	for _, j := range fr.Journeys() {
		if j.Reason == JourneyVNIWatch {
			t.Fatal("vni-watch committed a journey despite latency-trigger precedence")
		}
		if j.Reason == JourneyLatencyTrigger && j.End.Sub(j.T0) < 1 {
			t.Fatalf("latency-triggered journey flew in %v", j.End.Sub(j.T0))
		}
	}
}

func TestTriggerLatencyOverBoundRespected(t *testing.T) {
	n := smallNode(t, nil)
	pr, wf := triggerPod(t, n)
	fr := pr.Flight()
	fr.TriggerLatencyOver(sim.Second) // far above any simulated latency
	runStageTraffic(t, n, pr, wf, 20*sim.Millisecond)

	if fr.Triggered != 0 {
		t.Fatalf("triggered %d journeys under an unreachable bound", fr.Triggered)
	}
	if completed := fr.Sampled - fr.Drops - fr.Timeouts; fr.Discarded != completed {
		t.Fatalf("discarded %d, want all %d completed journeys", fr.Discarded, completed)
	}
}

func TestTriggerVNICommitsOnlyWatchedTenant(t *testing.T) {
	n := smallNode(t, nil)
	pr, wf := triggerPod(t, n)
	fr := pr.Flight()
	watched := wf[0].VNI
	fr.TriggerVNI(watched)
	runStageTraffic(t, n, pr, wf, 20*sim.Millisecond)

	if fr.Triggered == 0 {
		t.Fatal("the watched tenant sent traffic but no journey committed")
	}
	seen := false
	for _, j := range fr.Journeys() {
		if j.Reason != JourneyVNIWatch {
			continue
		}
		seen = true
		if j.Flow.VNI != watched {
			t.Fatalf("vni-watch committed tenant %d, watching %d", j.Flow.VNI, watched)
		}
	}
	if !seen {
		t.Fatal("no vni-watch journey retained in the ring")
	}
}

func TestTriggerFaultWindowCommitsOverlappingFlights(t *testing.T) {
	n := smallNode(t, nil)
	pr, wf := triggerPod(t, n)
	fr := pr.Flight()
	fr.TriggerFaultWindow()

	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(2e6), Seed: 2, Sink: pr.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(10 * sim.Millisecond)
	windowFrom := n.Engine.Now()
	const windowLen = 5 * sim.Millisecond
	if err := n.InjectCoreStall(0, 1, 4, windowLen); err != nil {
		t.Fatal(err)
	}
	windowTo := windowFrom.Add(windowLen)
	n.RunFor(10 * sim.Millisecond)
	drainPod(t, n, pr, src)

	if fr.Triggered == 0 {
		t.Fatal("traffic flew through the stall window but nothing committed")
	}
	if fr.Discarded == 0 {
		t.Fatal("journeys outside the window should discard, not commit")
	}
	for _, j := range fr.Journeys() {
		if j.Reason != JourneyFaultWindow {
			continue
		}
		if !(j.T0 < windowTo && j.End >= windowFrom) {
			t.Fatalf("fault-window journey [%v,%v] does not overlap [%v,%v)",
				j.T0, j.End, windowFrom, windowTo)
		}
	}
}

func TestNoteFaultWindowMergesOverlaps(t *testing.T) {
	fr := &FlightRecorder{}
	fr.noteFaultWindow(10, 20)
	fr.noteFaultWindow(15, 30) // overlaps: extends the first
	fr.noteFaultWindow(30, 35) // abuts: still merges
	fr.noteFaultWindow(50, 60) // disjoint: new window
	fr.noteFaultWindow(58, 55) // reversed bounds normalize, merge with last
	want := []faultWindow{{From: 10, To: 35}, {From: 50, To: 60}}
	if len(fr.faultWindows) != len(want) {
		t.Fatalf("windows = %v, want %v", fr.faultWindows, want)
	}
	for i, w := range want {
		if fr.faultWindows[i] != w {
			t.Fatalf("window %d = %v, want %v", i, fr.faultWindows[i], w)
		}
	}
}
