package core

import (
	"errors"
	"fmt"

	"albatross/internal/bgp"
	"albatross/internal/errs"
	"albatross/internal/faults"
	"albatross/internal/packet"
	"albatross/internal/pod"
	"albatross/internal/sim"
)

// This file implements the node's side of the fault-injection contract
// (faults.Target), the graceful-degradation responses, and the pod/node
// lifecycle.
//
// Pod lifecycle state machine:
//
//	          InjectPodCrash(graceful=false)
//	  Active ─────────────────────────────────▶ Crashed
//	    │  ▲                                      │
//	    │  └───────── restart (Duration) ─────────┘
//	    │
//	    │     InjectPodCrash(graceful=true)
//	    ├────────────────────────────────────▶ Draining ──▶ Active
//	    │                                         │   (upgrade done)
//	    └──────────────── Stop() ◀────────────────┘
//	                        │
//	                        ▼
//	                     Stopped (terminal; server capacity released)
//
// While Draining or Crashed, Inject redirects the pod's tenants to a
// sibling pod (the first other Active pod) or counts CrashDrops when none
// exists. Stop is the operator path: it drains in virtual time, discards
// stragglers, and frees cores/VFs/reorder queues so AddPod can reuse them.
// Stopped is terminal — a stopped pod never processes traffic again.

// podState is a PodRuntime's lifecycle state.
type podState uint8

const (
	podActive   podState = iota // processing traffic (zero value)
	podDraining                 // gray upgrade or Stop: redirecting, in-flight draining
	podCrashed                  // abrupt crash: awaiting restart
	podStopped                  // terminal: resources released
)

func (s podState) String() string {
	switch s {
	case podActive:
		return "active"
	case podDraining:
		return "draining"
	case podCrashed:
		return "crashed"
	case podStopped:
		return "stopped"
	default:
		return "invalid"
	}
}

// State returns the pod's lifecycle state name.
func (pr *PodRuntime) State() string { return pr.state.String() }

// Stopped reports whether the pod reached the terminal Stopped state.
func (pr *PodRuntime) Stopped() bool { return pr.state == podStopped }

// Live returns the number of data-path packet contexts currently in flight
// through the pod (NIC, queues, cores, reorder).
func (pr *PodRuntime) Live() int { return pr.live }

// podAt resolves a fault plan's pod index.
func (n *Node) podAt(i int) (*PodRuntime, error) {
	if i < 0 || i >= len(n.pods) {
		return nil, fmt.Errorf("core: pod index %d out of range [0,%d): %w", i, len(n.pods), errs.BadConfig)
	}
	return n.pods[i], nil
}

// siblingOf returns the first other Active pod, the redirect target for a
// crashed or draining pod's tenants.
func (n *Node) siblingOf(pr *PodRuntime) *PodRuntime {
	for _, other := range n.pods {
		if other != pr && other.state == podActive {
			return other
		}
	}
	return nil
}

// onLost reclaims a packet context discarded by a core failure or crash:
// probes complete as dropped, split payloads are released, data-path
// contexts return to the pool. The packet's reorder FIFO entry (if any) is
// handled separately by PLB.EvictCore/Flush.
func (pr *PodRuntime) onLost(item any) {
	ctx, ok := item.(*pktCtx)
	if !ok || ctx == nil {
		return
	}
	if ctx.probe != nil {
		ctx.probe.done(ProbeResult{Dropped: true})
		return
	}
	if ctx.split {
		pr.payload.Take(ctx.payID)
	}
	// Charge the loss to whichever async stage held the packet (probes never
	// enter the chain, so only data-path contexts reach here).
	pr.pipe.dropHere(ctx)
	pr.putCtx(ctx)
}

// onFlush adapts onLost to the PLB.Flush callback shape.
func (pr *PodRuntime) onFlush(item any, _ packet.Meta) { pr.onLost(item) }

// rxLossHit reports whether an injected RX-loss window eats the packet
// dispatched to core.
func (pr *PodRuntime) rxLossHit(core int) bool {
	if pr.rxLossUntil == nil || pr.node.Engine.Now() >= pr.rxLossUntil[core] {
		return false
	}
	return pr.rng.Float64() < pr.rxLossProb[core]
}

// noteFaultWindow records a fault activation window [now, now+d) on the
// pod's flight recorder so the TriggerFaultWindow commit trigger can match
// journeys that flew through it. d <= 0 (permanent faults) records an
// effectively unbounded window.
func (pr *PodRuntime) noteFaultWindow(d sim.Duration) {
	now := pr.node.Engine.Now()
	if d <= 0 {
		d = sim.Duration(1) << 60
	}
	pr.flight.noteFaultWindow(now, now.Add(d))
}

// InjectCoreStall makes pod/core process factor× slower for d (the sick
// core's service-time blowup). Implements faults.Target.
func (n *Node) InjectCoreStall(podIdx, core int, factor float64, d sim.Duration) error {
	pr, err := n.podAt(podIdx)
	if err != nil {
		return err
	}
	if core < 0 || core >= len(pr.Cores) {
		return fmt.Errorf("core: core index %d out of range [0,%d): %w", core, len(pr.Cores), errs.BadConfig)
	}
	if factor <= 0 || d <= 0 {
		return fmt.Errorf("core: stall needs positive factor and duration: %w", errs.BadConfig)
	}
	pr.noteFaultWindow(d)
	c := pr.Cores[core]
	c.SetSlowFactor(factor)
	n.Engine.After(d, func() {
		// A later overlapping stall with a different factor wins.
		if c.SlowFactor() == factor {
			c.SetSlowFactor(1)
		}
	})
	return nil
}

// InjectCoreFail takes pod/core offline, losing its queued and in-service
// packets (bounded by RX queue depth + 1) and immediately evicting it from
// the PLB spray mask so its in-flight reorder entries release without
// timeout storms. The core recovers and rejoins the mask after d (d <= 0:
// permanent). Implements faults.Target.
func (n *Node) InjectCoreFail(podIdx, core int, d sim.Duration) error {
	pr, err := n.podAt(podIdx)
	if err != nil {
		return err
	}
	if core < 0 || core >= len(pr.Cores) {
		return fmt.Errorf("core: core index %d out of range [0,%d): %w", core, len(pr.Cores), errs.BadConfig)
	}
	c := pr.Cores[core]
	if c.Failed() {
		return nil
	}
	pr.noteFaultWindow(d)
	// Burst mode: members whose computed finish precedes the failure already
	// completed logically; retire them before the queue sweep so the fail
	// only claims what the unbatched path would have lost.
	pr.drainPendingThrough(n.Engine.Now(), false)
	pr.FaultLost += uint64(c.Fail(pr.onLost))
	if pr.PLB != nil {
		pr.PLB.EvictCore(core)
	}
	if d > 0 {
		n.Engine.After(d, func() {
			if pr.state == podStopped {
				return
			}
			c.Recover()
			if pr.PLB != nil {
				pr.PLB.RestoreCore(core)
			}
		})
	}
	return nil
}

// InjectPodCrash takes a pod down. graceful=false is the abrupt crash: all
// cores fail (in-flight packets lost), reorder state flushes, and tenants
// redirect to a sibling pod until the container restarts restartAfter
// later (default pod.StartupTime). graceful=true is the gray-upgrade
// drain: tenants redirect immediately, in-flight packets complete
// normally (zero loss), and the replacement takes over after restartAfter.
// Implements faults.Target.
func (n *Node) InjectPodCrash(podIdx int, graceful bool, restartAfter sim.Duration) error {
	pr, err := n.podAt(podIdx)
	if err != nil {
		return err
	}
	if pr.state != podActive {
		return fmt.Errorf("core: pod %q is %v, not active: %w", pr.Pod.Spec.Name, pr.state, errs.BadState)
	}
	if restartAfter <= 0 {
		restartAfter = pod.StartupTime
	}
	pr.noteFaultWindow(restartAfter)
	pr.redirect = n.siblingOf(pr)
	if graceful {
		pr.state = podDraining
	} else {
		pr.state = podCrashed
		// Burst mode: retire members that logically completed before the
		// crash so the core sweep + reorder flush see legacy-identical state.
		pr.drainPendingThrough(n.Engine.Now(), false)
		for _, c := range pr.Cores {
			pr.FaultLost += uint64(c.Fail(pr.onLost))
		}
		if pr.PLB != nil {
			pr.PLB.Flush(pr.onFlush)
		}
	}
	n.Engine.After(restartAfter, pr.completeRestart)
	n.refreshBackendPool()
	return nil
}

// completeRestart returns a crashed or draining pod to Active.
func (pr *PodRuntime) completeRestart() {
	if pr.state != podCrashed && pr.state != podDraining {
		return
	}
	for i, c := range pr.Cores {
		c.Recover()
		if pr.PLB != nil {
			pr.PLB.RestoreCore(i)
		}
	}
	pr.state = podActive
	pr.redirect = nil
	pr.Restarts++
	pr.node.refreshBackendPool()
}

// InjectReorderStress stresses one of the pod's PLB order queues for d:
// holdHeads forces every FIFO head to wait out the reorder timeout
// (forced HOL / timeout storm); depthClamp shrinks the FIFO's effective
// capacity (overflow drops). Implements faults.Target.
func (n *Node) InjectReorderStress(podIdx, queue int, d sim.Duration, holdHeads bool, depthClamp int) error {
	pr, err := n.podAt(podIdx)
	if err != nil {
		return err
	}
	if pr.PLB == nil {
		return fmt.Errorf("core: pod %q has no PLB engine: %w", pr.Pod.Spec.Name, errs.BadState)
	}
	if err := pr.PLB.StressQueue(queue, d, holdHeads, depthClamp); err != nil {
		return err
	}
	pr.noteFaultWindow(d)
	return nil
}

// InjectRxLoss drops packets dispatched to pod/core with probability prob
// until d elapses. The PLB FIFO entries of lost packets stay behind and
// release only by timeout — the degenerate HOL case the reorder engine's
// 100µs bound exists for. Implements faults.Target.
func (n *Node) InjectRxLoss(podIdx, core int, prob float64, d sim.Duration) error {
	pr, err := n.podAt(podIdx)
	if err != nil {
		return err
	}
	if core < 0 || core >= len(pr.Cores) {
		return fmt.Errorf("core: core index %d out of range [0,%d): %w", core, len(pr.Cores), errs.BadConfig)
	}
	if prob <= 0 || prob > 1 || d <= 0 {
		return fmt.Errorf("core: rx loss needs prob in (0,1] and positive duration: %w", errs.BadConfig)
	}
	if pr.rxLossUntil == nil {
		pr.rxLossUntil = make([]sim.Time, len(pr.Cores))
		pr.rxLossProb = make([]float64, len(pr.Cores))
	}
	if until := n.Engine.Now().Add(d); until > pr.rxLossUntil[core] {
		pr.rxLossUntil[core] = until
	}
	pr.rxLossProb[core] = prob
	pr.noteFaultWindow(d)
	return nil
}

// InjectBGPFlap takes the node's BGP uplink down for d. The uplink model
// (with proxy re-advertisement) is armed on first use. Implements
// faults.Target.
func (n *Node) InjectBGPFlap(d sim.Duration) error {
	if d <= 0 {
		return fmt.Errorf("core: flap needs a positive duration: %w", errs.BadConfig)
	}
	if n.uplink == nil {
		if _, err := n.EnableUplink(true); err != nil {
			return err
		}
	}
	n.uplink.InjectFlap(d)
	// The outage is node-scoped: every pod's journeys through it are
	// fault-window candidates.
	for _, pr := range n.pods {
		pr.noteFaultWindow(d)
	}
	return nil
}

// EnableUplink arms the node's modeled BGP uplink session (default BFD
// timing: 50ms probes, DetectMult 3, 1s re-establishment). withProxy
// enables the sibling-node proxy re-advertisement: after BFD withdraws the
// route, traffic detours via the proxy instead of blackholing. Calling it
// again only updates the proxy setting.
func (n *Node) EnableUplink(withProxy bool) (*bgp.SimSession, error) {
	n.uplinkProxy = withProxy
	if n.uplink != nil {
		if s, ok := n.uplink.(*bgp.SimSession); ok {
			return s, nil
		}
		return nil, fmt.Errorf("core: a %T uplink is already installed: %w", n.uplink, errs.BadState)
	}
	s, err := bgp.NewSimSession(n.Engine, bgp.SimSessionConfig{})
	if err != nil {
		return nil, err
	}
	n.uplink = s
	return s, nil
}

// InstallUplink installs an externally constructed uplink model — the
// cluster layer uses it to wire a bgp.ProxiedSession (real proxy-pod eBGP
// fabric) in place of the default SimSession. Fails if an uplink already
// exists: the model owns armed timers that cannot be transplanted.
func (n *Node) InstallUplink(u bgp.Uplink, withProxy bool) error {
	if u == nil {
		return fmt.Errorf("core: nil uplink: %w", errs.BadConfig)
	}
	if n.uplink != nil {
		return fmt.Errorf("core: a %T uplink is already installed: %w", n.uplink, errs.BadState)
	}
	n.uplink = u
	n.uplinkProxy = withProxy
	return nil
}

// Uplink returns the node's BGP uplink model (nil until enabled).
func (n *Node) Uplink() bgp.Uplink { return n.uplink }

// FaultLog returns the fired-fault log of the node's injector (nil when no
// fault plan was armed).
func (n *Node) FaultLog() []faults.Event {
	if n.injector == nil {
		return nil
	}
	return n.injector.Log()
}

// EnableAutoFallback arms the reorder-loss watchdog: every interval it
// samples the pod's PLB counters and, when timeout releases (reorder loss)
// reach frac of that window's dispatches, triggers FallbackToRSS — the
// paper's last-resort HOL remediation, now automatic. Zero arguments take
// the defaults (1ms window, 5%). The watchdog disarms after firing or when
// the pod leaves PLB mode.
func (pr *PodRuntime) EnableAutoFallback(interval sim.Duration, frac float64) {
	if pr.PLB == nil {
		return
	}
	if interval <= 0 {
		interval = 1 * sim.Millisecond
	}
	if frac <= 0 {
		frac = 0.05
	}
	s := pr.PLB.Stats()
	lastTO, lastDisp := s.TimeoutReleases, s.Dispatched
	var tick func()
	tick = func() {
		if pr.mode != pod.ModePLB || pr.state == podStopped {
			return
		}
		s := pr.PLB.Stats()
		dTO := s.TimeoutReleases - lastTO
		dDisp := s.Dispatched - lastDisp
		lastTO, lastDisp = s.TimeoutReleases, s.Dispatched
		// Require a handful of releases so an idle pod never trips.
		if dTO >= 8 && float64(dTO) >= frac*float64(dDisp+dTO) {
			_ = pr.FallbackToRSS()
			return
		}
		pr.node.Engine.After(interval, tick)
	}
	pr.node.Engine.After(interval, tick)
}

// stopDrainCap bounds how much virtual time Stop will spend draining
// before discarding stragglers.
const stopDrainCap = 100 * sim.Millisecond

// Stop drains the pod and releases its server resources (cores, VFs,
// reorder queues), after which AddPod can reuse the freed capacity. It
// advances virtual time until in-flight packets complete (capped at
// 100ms), then discards any stragglers. Stop is terminal: the pod never
// processes traffic again, and a second Stop returns ErrClosed. The
// runtime stays in Node.Pods() (stopped) so pod indices remain stable.
func (pr *PodRuntime) Stop() error {
	if pr.state == podStopped {
		return fmt.Errorf("core: pod %q already stopped: %w", pr.Pod.Spec.Name, errs.Closed)
	}
	n := pr.node
	pr.state = podDraining
	pr.redirect = n.siblingOf(pr)
	n.refreshBackendPool()
	deadline := n.Engine.Now().Add(stopDrainCap)
	for pr.live > 0 && n.Engine.Now() < deadline {
		n.Engine.RunFor(100 * sim.Microsecond)
	}
	// Burst mode: retire what logically completed inside the drain window
	// before stragglers are swept.
	pr.drainPendingThrough(n.Engine.Now(), false)
	for _, c := range pr.Cores {
		if !c.Failed() {
			pr.FaultLost += uint64(c.Fail(pr.onLost))
		}
	}
	if pr.PLB != nil {
		pr.PLB.Flush(pr.onFlush)
	}
	pr.state = podStopped
	pr.redirect = nil
	return n.Server.Remove(pr.Pod)
}

// Close stops every pod (draining each) and closes the node: AddPod and a
// second Close return ErrClosed. The engine remains usable for reading
// state, but no new work should be scheduled.
func (n *Node) Close() error {
	if n.closed {
		return fmt.Errorf("core: node: %w", errs.Closed)
	}
	n.closed = true
	var errAll error
	for _, pr := range n.pods {
		if pr.state != podStopped {
			errAll = errors.Join(errAll, pr.Stop())
		}
	}
	return errAll
}
