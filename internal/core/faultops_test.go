package core

import (
	"errors"
	"testing"

	"albatross/internal/cachesim"
	"albatross/internal/errs"
	"albatross/internal/faults"
	"albatross/internal/plb"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/workload"
)

// windowDisorder computes the disorder rate between two stats snapshots.
func windowDisorder(a, b plb.Stats) float64 {
	in := b.EmittedInOrder - a.EmittedInOrder
	be := b.EmittedBestEffort - a.EmittedBestEffort
	if in+be == 0 {
		return 0
	}
	return float64(be) / float64(in+be)
}

// TestCoreFailBoundedLoss is the core-eviction acceptance test: failing a
// core mid-run loses at most QueueDepth+1 packets, produces no timeout
// storm (evicted entries release immediately), and the disorder rate
// returns to the healthy baseline after recovery.
func TestCoreFailBoundedLoss(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(2000, 1)
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)

	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e6), Seed: 2, Sink: pr.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}

	// Healthy baseline window.
	n.RunFor(20 * sim.Millisecond)

	// A sick core first (100× service blowup builds an RX backlog), then
	// dead: the realistic stall-then-fail sequence, and it guarantees the
	// core holds packets at failure time.
	if err := n.InjectCoreStall(0, 2, 100, 5*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	n.RunFor(1 * sim.Millisecond)
	if err := n.InjectCoreFail(0, 2, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if pr.PLB.CoreUp(2) || pr.PLB.UpCores() != 3 {
		t.Fatalf("core 2 not evicted from spray mask (up=%d)", pr.PLB.UpCores())
	}
	s0 := pr.PLB.Stats()           // right after eviction
	n.RunFor(19 * sim.Millisecond) // fault + recovery
	if !pr.PLB.CoreUp(2) {
		t.Fatal("core 2 not restored to spray mask after recovery")
	}
	s1 := pr.PLB.Stats()

	// Post-recovery window.
	n.RunFor(20 * sim.Millisecond)
	src.Stop()
	n.RunFor(5 * sim.Millisecond) // drain
	s2 := pr.PLB.Stats()

	// Bounded loss: at most the core's RX queue depth + the in-service
	// packet (plus nothing else).
	bound := uint64(pr.cfg.QueueDepth + 1)
	if pr.FaultLost == 0 || pr.FaultLost > bound {
		t.Fatalf("FaultLost = %d, want in [1, %d]", pr.FaultLost, bound)
	}
	// Eviction released the dead core's un-returned reorder entries (those
	// not already timeout-released during the stall), and the post-fail
	// window saw no timeout storm.
	if s2.EvictedReleases == 0 || s2.EvictedReleases > pr.FaultLost {
		t.Fatalf("EvictedReleases = %d, want in [1, FaultLost=%d]", s2.EvictedReleases, pr.FaultLost)
	}
	if dTO := s1.TimeoutReleases - s0.TimeoutReleases; dTO > 0 {
		t.Fatalf("post-fail window caused %d timeout releases; eviction should prevent them", dTO)
	}
	// Conservation: every received packet is accounted for.
	accounted := pr.Tx + pr.NICDrops + pr.QueueDrops + pr.PLBDrops + pr.ServiceDrop + pr.FaultLost
	if pr.Rx != accounted {
		t.Fatalf("rx=%d but accounted=%d (lost track of packets)", pr.Rx, accounted)
	}
	if pr.Live() != 0 {
		t.Fatalf("%d contexts still live after drain", pr.Live())
	}

	// Disorder rate back at baseline after recovery. The healthy run's
	// disorder at this load is ~0; allow the same slack as TestEndToEndPLB.
	if dr := windowDisorder(s1, s2); dr > 1e-3 {
		t.Fatalf("post-recovery disorder = %v, did not return to baseline", dr)
	}
}

func TestCoreStallSlowsService(t *testing.T) {
	n := smallNode(t, nil)
	_, sf := wflows(100, 1)
	pr := addPod(t, n, pod.ModePLB, 2, sf, nil)
	if err := n.InjectCoreStall(0, 1, 50, 5*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := pr.Cores[1].SlowFactor(); got != 50 {
		t.Fatalf("slow factor = %v, want 50", got)
	}
	n.RunFor(6 * sim.Millisecond)
	if got := pr.Cores[1].SlowFactor(); got != 1 {
		t.Fatalf("slow factor = %v after window, want 1", got)
	}
}

func TestPodCrashRedirectsAndRestarts(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(1000, 1)
	p0 := addPod(t, n, pod.ModePLB, 4, sf, func(c *PodConfig) { c.Spec.Name = "gw0" })
	p1 := addPod(t, n, pod.ModePLB, 4, sf, func(c *PodConfig) { c.Spec.Name = "gw1" })

	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e6), Seed: 2, Sink: p0.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(10 * sim.Millisecond)

	if err := n.InjectPodCrash(0, false, 20*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if p0.State() != "crashed" {
		t.Fatalf("state = %s, want crashed", p0.State())
	}
	// Crashing a non-active pod is rejected.
	if err := n.InjectPodCrash(0, false, 0); !errors.Is(err, errs.BadState) {
		t.Fatalf("second crash error = %v, want errs.BadState", err)
	}
	n.RunFor(10 * sim.Millisecond)
	if p0.Redirected == 0 || p1.Rx == 0 {
		t.Fatalf("no redirection: p0.Redirected=%d p1.Rx=%d", p0.Redirected, p1.Rx)
	}
	if p0.CrashDrops != 0 {
		t.Fatalf("CrashDrops = %d with a live sibling", p0.CrashDrops)
	}

	n.RunFor(15 * sim.Millisecond) // past restart
	if p0.State() != "active" || p0.Restarts != 1 {
		t.Fatalf("state = %s restarts = %d after restart window", p0.State(), p0.Restarts)
	}
	rxAtRestart := p0.Rx
	n.RunFor(10 * sim.Millisecond)
	src.Stop()
	n.RunFor(5 * sim.Millisecond)
	if p0.Rx <= rxAtRestart {
		t.Fatal("pod not processing traffic after restart")
	}
}

func TestGracefulDrainLosesNothing(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(1000, 1)
	p0 := addPod(t, n, pod.ModePLB, 4, sf, func(c *PodConfig) { c.Spec.Name = "gw0" })
	p1 := addPod(t, n, pod.ModePLB, 4, sf, func(c *PodConfig) { c.Spec.Name = "gw1" })

	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e6), Seed: 2, Sink: p0.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(10 * sim.Millisecond)
	if err := n.InjectPodCrash(0, true, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if p0.State() != "draining" {
		t.Fatalf("state = %s, want draining", p0.State())
	}
	n.RunFor(30 * sim.Millisecond)
	src.Stop()
	n.RunFor(5 * sim.Millisecond)

	if p0.FaultLost != 0 {
		t.Fatalf("gray upgrade lost %d packets, want 0", p0.FaultLost)
	}
	if p0.Redirected == 0 || p1.Tx == 0 {
		t.Fatalf("drain did not redirect (redirected=%d, sibling tx=%d)", p0.Redirected, p1.Tx)
	}
	if p0.State() != "active" {
		t.Fatalf("state = %s after upgrade, want active", p0.State())
	}
	// All of p0's own in-flight packets completed.
	if p0.Rx != p0.Tx+p0.NICDrops+p0.QueueDrops+p0.PLBDrops+p0.ServiceDrop {
		t.Fatalf("drain lost packets: rx=%d tx=%d", p0.Rx, p0.Tx)
	}
}

func TestAutoFallbackOnReorderStress(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(1000, 1)
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)
	pr.EnableAutoFallback(0, 0) // defaults: 1ms window, 5%

	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e6), Seed: 2, Sink: pr.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(5 * sim.Millisecond)
	if pr.Mode() != pod.ModePLB {
		t.Fatal("healthy pod fell back prematurely")
	}
	// Force every head to wait out the timeout on all order queues.
	nq := pr.PLB.Config().NumOrderQueues
	for q := 0; q < nq; q++ {
		if err := n.InjectReorderStress(0, q, 20*sim.Millisecond, true, 0); err != nil {
			t.Fatal(err)
		}
	}
	n.RunFor(20 * sim.Millisecond)
	if pr.Mode() != pod.ModeRSS || pr.Fallbacks != 1 {
		t.Fatalf("watchdog did not fall back (mode=%v fallbacks=%d)", pr.Mode(), pr.Fallbacks)
	}
	toAtFallback := pr.PLB.Stats().TimeoutReleases
	n.RunFor(20 * sim.Millisecond)
	src.Stop()
	n.RunFor(5 * sim.Millisecond)
	// After fallback, new packets bypass the reorder engine entirely.
	if to := pr.PLB.Stats().TimeoutReleases; to < toAtFallback {
		t.Fatalf("timeout releases went backwards: %d -> %d", toAtFallback, to)
	}
	if pr.Tx == 0 {
		t.Fatal("no traffic after fallback")
	}
}

func TestRxLossLeavesHOLEntries(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(1000, 1)
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)

	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e6), Seed: 2, Sink: pr.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(5 * sim.Millisecond)
	s0 := pr.PLB.Stats()
	if err := n.InjectRxLoss(0, 1, 0.5, 10*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	n.RunFor(15 * sim.Millisecond)
	src.Stop()
	n.RunFor(5 * sim.Millisecond)
	s1 := pr.PLB.Stats()

	if pr.RxLost == 0 {
		t.Fatal("no RX loss recorded")
	}
	// Lost packets' FIFO entries can only leave by timeout.
	if dTO := s1.TimeoutReleases - s0.TimeoutReleases; dTO < pr.RxLost {
		t.Fatalf("timeout releases %d < rx losses %d", dTO, pr.RxLost)
	}
	if pr.Rx != pr.Tx+pr.NICDrops+pr.QueueDrops+pr.PLBDrops+pr.ServiceDrop+pr.RxLost {
		t.Fatal("rx-loss accounting leak")
	}
	if pr.Live() != 0 {
		t.Fatalf("%d contexts leaked", pr.Live())
	}
}

func TestBGPFlapBlackholeAndProxy(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(500, 1)
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)
	if _, err := n.EnableUplink(true); err != nil {
		t.Fatal(err)
	}

	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e5), Seed: 2, Sink: pr.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(100 * sim.Millisecond)
	if n.Blackholed != 0 || n.Proxied != 0 {
		t.Fatal("healthy uplink dropped traffic")
	}

	if err := n.InjectBGPFlap(500 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	n.RunFor(2 * sim.Second)
	src.Stop()
	n.RunFor(5 * sim.Millisecond)

	st := n.Uplink().Stats()
	if st.Detections != 1 || st.Recoveries != 1 {
		t.Fatalf("detections=%d recoveries=%d, want 1/1", st.Detections, st.Recoveries)
	}
	// BFD detection: 3 missed 50ms probes, quantized to the probe grid.
	if st.LastDetectNS < 150*sim.Millisecond || st.LastDetectNS > 200*sim.Millisecond {
		t.Fatalf("detection latency = %v, want [150ms, 200ms]", st.LastDetectNS)
	}
	// Blackholed during detection, proxied after withdrawal.
	if n.Blackholed == 0 || n.Proxied == 0 {
		t.Fatalf("blackholed=%d proxied=%d, want both positive", n.Blackholed, n.Proxied)
	}
	if !n.Uplink().RouteUp() {
		t.Fatal("route not re-advertised after flap")
	}

	// A flap shorter than the detection window is absorbed.
	before := n.Uplink().Stats().Detections
	if err := n.InjectBGPFlap(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	n.RunFor(1 * sim.Second)
	after := n.Uplink().Stats()
	if after.Detections != before || after.Absorbed != 1 {
		t.Fatalf("short flap not absorbed: detections=%d absorbed=%d", after.Detections, after.Absorbed)
	}
}

func TestStopAndCloseLifecycle(t *testing.T) {
	n := smallNode(t, nil)
	wf, sf := wflows(500, 1)
	pr := addPod(t, n, pod.ModePLB, 4, sf, nil)

	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e6), Seed: 2, Sink: pr.Sink()}
	if err := src.Start(n.Engine); err != nil {
		t.Fatal(err)
	}
	n.RunFor(5 * sim.Millisecond)
	src.Stop()

	if err := pr.Stop(); err != nil {
		t.Fatal(err)
	}
	if !pr.Stopped() || pr.Live() != 0 {
		t.Fatalf("state=%s live=%d after Stop", pr.State(), pr.Live())
	}
	if err := pr.Stop(); !errors.Is(err, errs.Closed) {
		t.Fatalf("second Stop = %v, want errs.Closed", err)
	}
	// Stopped pod drops (no sibling).
	pr.Inject(wf[0], 100)
	if pr.CrashDrops != 1 {
		t.Fatalf("CrashDrops = %d after injecting into stopped pod", pr.CrashDrops)
	}

	// The freed capacity is reusable.
	pr2 := addPod(t, n, pod.ModePLB, 4, sf, func(c *PodConfig) { c.Spec.Name = "gw2" })
	if pr2.Stopped() {
		t.Fatal("fresh pod not active")
	}

	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if !pr2.Stopped() {
		t.Fatal("Close did not stop remaining pods")
	}
	if err := n.Close(); !errors.Is(err, errs.Closed) {
		t.Fatalf("second Close = %v, want errs.Closed", err)
	}
	if _, err := n.AddPod(PodConfig{}); !errors.Is(err, errs.Closed) {
		t.Fatalf("AddPod after Close = %v, want errs.Closed", err)
	}
}

// TestFaultPlanDeterminism runs the same fault-laden scenario twice and
// requires identical counters — the byte-identical contract extended to
// fault runs.
func TestFaultPlanDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64, uint64, int) {
		plan := (&faults.Plan{}).
			CoreFail(5*sim.Millisecond, 0, 1, 10*sim.Millisecond).
			ReorderStress(20*sim.Millisecond, 0, 0, 5*sim.Millisecond, true, 0).
			RxLoss(30*sim.Millisecond, 0, 2, 0.3, 5*sim.Millisecond).
			BGPFlap(40*sim.Millisecond, 300*sim.Millisecond)
		n, err := NewNode(NodeConfig{
			Seed:   7,
			Cache:  cachesim.Config{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64},
			Faults: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.EnableUplink(true); err != nil {
			t.Fatal(err)
		}
		wf, sf := wflows(1000, 3)
		pr, err := n.AddPod(PodConfig{
			Spec: pod.Spec{Name: "gw", Service: service.VPCVPC,
				DataCores: 4, CtrlCores: 2, Mode: pod.ModePLB},
			Flows: sf,
		})
		if err != nil {
			t.Fatal(err)
		}
		src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e6), Seed: 2, Sink: pr.Sink()}
		if err := src.Start(n.Engine); err != nil {
			t.Fatal(err)
		}
		n.RunFor(500 * sim.Millisecond)
		src.Stop()
		n.RunFor(5 * sim.Millisecond)
		return pr.Tx, pr.FaultLost, pr.RxLost, n.Blackholed, len(n.FaultLog())
	}
	tx1, fl1, rx1, bh1, ev1 := run()
	tx2, fl2, rx2, bh2, ev2 := run()
	if tx1 != tx2 || fl1 != fl2 || rx1 != rx2 || bh1 != bh2 || ev1 != ev2 {
		t.Fatalf("fault run not deterministic: (%d,%d,%d,%d,%d) vs (%d,%d,%d,%d,%d)",
			tx1, fl1, rx1, bh1, ev1, tx2, fl2, rx2, bh2, ev2)
	}
	if ev1 != 4 {
		t.Fatalf("fault log has %d events, want 4", ev1)
	}
}
