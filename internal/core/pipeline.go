package core

import (
	"albatross/internal/gop"
	"albatross/internal/nicsim"
	"albatross/internal/packet"
	"albatross/internal/pod"
	"albatross/internal/stats"
)

// This file is the staged ingress pipeline: the pod's packet path
// (classify → GOP → dispatch → CPU → reorder → egress, mirroring Fig. 1)
// expressed as a chain of composable Stages instead of one monolithic
// dispatch function. Each chain slot carries a stats.StageCounter, so
// per-stage conservation (In == Out + Drops once drained) is observable
// and testable; the PLB-vs-RSS branching lives in which dispatch Stage
// occupies the chain slot, not in hardcoded switches.
//
// Stages are stateless singletons — all per-packet state rides the pooled
// pktCtx and all per-pod state lives on the PodRuntime — so the chain adds
// no allocations to the hot path. Asynchronous hops (NIC DMA latency, CPU
// service time, reorder parking) return StageConsumed; the event that
// completes the hop re-enters the chain via resumeNext, which credits the
// stage's Out counter so conservation accounting survives the async
// boundary. A packet lost while parked inside an async stage is charged to
// that stage by dropHere (see onLost in faultops.go).

// StageVerdict is a Stage's disposition of one packet.
type StageVerdict uint8

const (
	// StageNext passes the packet to the next stage synchronously.
	StageNext StageVerdict = iota
	// StageConsumed means the stage took ownership: the packet continues
	// (or terminates) later via resumeNext / dropHere / an exit event.
	StageConsumed
	// StageDrop terminates the packet; the stage already did its drop
	// bookkeeping (counter + context release).
	StageDrop
)

// Stage is one slot of the ingress pipeline.
type Stage interface {
	// Name is the stage's counter label.
	Name() string
	// Process runs the packet through the stage.
	Process(pr *PodRuntime, ctx *pktCtx) StageVerdict
}

// Chain slot indices. The chain has a fixed shape for both load-balancing
// modes (the reorder stage passes RSS packets through untouched) so that
// in-flight packets keep valid stage indices when FallbackToRSS swaps the
// dispatch slot mid-run.
const (
	stageClassify = iota
	stageGOP
	stageIngress
	stageDispatch
	stageCPU
	stageReorder
	stageEgress
	numStages
)

// stageHistSubBits is the precision of the per-stage residency histograms:
// 64 sub-buckets per magnitude, relative error <= 1/64 (~1.6%), 32KB per
// stage. Stage residencies span ns to ms, so log-linear bucketing fits.
const stageHistSubBits = 6

// Pipeline is a pod's stage chain plus per-stage conservation counters and
// residency-time histograms.
type Pipeline struct {
	stages   [numStages]Stage
	counters [numStages]stats.StageCounter
	// resid[i] holds stage i's residency (enter -> leave virtual time) for
	// every packet that completed the stage, by any verdict. Synchronous
	// stages record zero (their modeled FPGA latency rides the async NIC
	// events); async stages (NIC DMA, CPU queue+service, reorder parking)
	// record the real parked time, so the histograms partition the pod's
	// end-to-end latency exactly: sum over stages of resid[i].Sum() equals
	// Latency's sum when nothing drops.
	resid [numStages]*stats.Histogram
}

// newPipeline builds the chain for the pod's initial mode.
func newPipeline(mode pod.Mode) Pipeline {
	p := Pipeline{stages: [numStages]Stage{
		classifyStage{}, gopStage{}, ingressStage{},
		plbDispatchStage{}, cpuStage{}, reorderStage{}, egressStage{},
	}}
	if mode == pod.ModeRSS {
		p.stages[stageDispatch] = rssDispatchStage{}
	}
	for i := range p.counters {
		p.counters[i].Name = p.stages[i].Name()
		p.resid[i] = stats.NewHistogram(stageHistSubBits)
	}
	// The dispatch slot is mode-dependent; give its counter a stable name
	// so FallbackToRSS does not rename mid-run counters.
	p.counters[stageDispatch].Name = "dispatch"
	return p
}

// run advances ctx through the chain starting at stage `from`. Stages that
// complete synchronously occupy zero virtual time — their residency records
// through the RecordZero fast path; async stages stamp ctx.enterAt and
// record the parked time when their completion event re-enters the chain.
func (p *Pipeline) run(pr *PodRuntime, ctx *pktCtx, from int) {
	now := pr.node.Engine.Now()
	for i := from; i < numStages; i++ {
		ctx.stage = int8(i)
		ctx.enterAt = now
		if ctx.trace != nil {
			ctx.trace.enter(int8(i), now)
		}
		p.counters[i].In++
		switch p.stages[i].Process(pr, ctx) {
		case StageNext:
			p.counters[i].Out++
			p.resid[i].RecordZero()
			if ctx.trace != nil {
				ctx.trace.leave(now, StepNext)
			}
		case StageConsumed:
			return
		case StageDrop:
			// The stage already released ctx (putCtx committed any trace
			// with a drop verdict); only the aggregate accounting runs here.
			p.counters[i].Drops++
			p.resid[i].RecordZero()
			return
		}
	}
}

// resumeNext completes the async stage ctx is parked in (crediting its Out
// and recording the parked residency) and continues the chain at the
// following stage.
func (p *Pipeline) resumeNext(pr *PodRuntime, ctx *pktCtx) {
	i := int(ctx.stage)
	now := pr.node.Engine.Now()
	p.counters[i].Out++
	p.resid[i].Record(int64(now.Sub(ctx.enterAt)))
	if ctx.trace != nil {
		ctx.trace.leave(now, StepNext)
	}
	p.run(pr, ctx, i+1)
}

// exitHere completes the pipeline early at ctx's current stage (the
// priority shortcut and the egress completion): the packet finished, it was
// not dropped.
func (p *Pipeline) exitHere(ctx *pktCtx) {
	i := ctx.stage
	now := ctx.pr.node.Engine.Now()
	p.counters[i].Out++
	p.resid[i].Record(int64(now.Sub(ctx.enterAt)))
	if ctx.trace != nil {
		ctx.trace.leave(now, StepExit)
		ctx.trace.completed = true
	}
}

// dropHere charges a drop to the async stage ctx is parked in, including
// its residency up to the moment of death. The trace (if any) commits when
// the context returns to the pool.
func (p *Pipeline) dropHere(ctx *pktCtx) {
	i := ctx.stage
	p.counters[i].Drops++
	p.resid[i].Record(int64(ctx.pr.node.Engine.Now().Sub(ctx.enterAt)))
}

// Stages returns the per-stage conservation counters in chain order.
func (pr *PodRuntime) Stages() []stats.StageCounter { return pr.pipe.counters[:] }

// StageResidency returns the per-stage residency histograms in chain order
// (index with the same positions as Stages; labels via StageNames).
func (pr *PodRuntime) StageResidency() []*stats.Histogram { return pr.pipe.resid[:] }

// classifyStage runs pkt_dir classification. Priority packets (BFD, BGP,
// probes' control plane) exit here: they skip overload protection and the
// data path, riding the priority queues to the ctrl cores.
type classifyStage struct{}

func (classifyStage) Name() string { return "classify" }

func (classifyStage) Process(pr *PodRuntime, ctx *pktCtx) StageVerdict {
	class, _ := pr.Classifier.ClassifyFlow(ctx.flow.Tuple)
	ctx.class = class
	if class == nicsim.ClassPriority {
		pr.PriorityRx++
		n := pr.node
		n.Engine.AfterArg(n.cfg.NIC.RoundTrip(nicsim.ClassPriority), priorityDoneEvent, ctx)
		return StageConsumed
	}
	return StageNext
}

// priorityDoneEvent completes a priority packet's NIC round trip.
func priorityDoneEvent(arg any) {
	ctx := arg.(*pktCtx)
	pr := ctx.pr
	pr.PriorityTx++
	pr.Latency.Record(int64(pr.node.Engine.Now().Sub(ctx.t0)))
	pr.pipe.exitHere(ctx)
	pr.putCtx(ctx)
}

// gopStage is gateway overload protection in the NIC pipeline: the
// two-stage tenant meter hierarchy drops overloading tenants' excess.
type gopStage struct{}

func (gopStage) Name() string { return "gop" }

func (gopStage) Process(pr *PodRuntime, ctx *pktCtx) StageVerdict {
	n := pr.node
	if n.Limiter != nil {
		if n.Limiter.Process(ctx.flow.VNI, n.Engine.Now()) == gop.VerdictDrop {
			pr.NICDrops++
			pr.putCtx(ctx)
			return StageDrop
		}
	}
	return StageNext
}

// ingressStage models the NIC ingress pipeline + PCIe DMA: header-payload
// split accounting and the class-dependent ingress latency.
type ingressStage struct{}

func (ingressStage) Name() string { return "nic-ingress" }

func (ingressStage) Process(pr *PodRuntime, ctx *pktCtx) StageVerdict {
	n := pr.node
	if pr.payload != nil && ctx.class == nicsim.ClassPLB && ctx.bytes > headerSplitBytes {
		ctx.split = true
		pr.nextPay++
		ctx.payID = pr.nextPay // provisional; rekeyed to meta at dispatch
		pr.PCIeRxBytes += headerSplitBytes
	} else {
		pr.PCIeRxBytes += uint64(ctx.bytes) + packet.MetaLen
	}
	n.Engine.AfterArg(n.cfg.NIC.IngressLatency(ctx.class), ingressDoneEvent, ctx)
	return StageConsumed
}

// ingressDoneEvent fires when the packet lands in host memory.
func ingressDoneEvent(arg any) {
	ctx := arg.(*pktCtx)
	ctx.pr.pipe.resumeNext(ctx.pr, ctx)
}

// plbDispatchStage is plb_dispatch: compute the service cost and verdict,
// spray the packet to the least-loaded core, stamp the PLB meta trailer.
type plbDispatchStage struct{}

func (plbDispatchStage) Name() string { return "plb-dispatch" }

func (plbDispatchStage) Process(pr *PodRuntime, ctx *pktCtx) StageVerdict {
	cost, drop := pr.serviceCost(ctx)
	ctx.cost = cost
	ctx.drop = drop
	ctx.queueAt = pr.node.Engine.Now()

	core, meta, ok := pr.PLB.Dispatch(ctx.fh)
	if !ok {
		pr.PLBDrops++
		pr.putCtx(ctx)
		return StageDrop
	}
	if pr.rxLossHit(core) {
		// RX DMA loss after dispatch: the FIFO entry stays behind and
		// must wait out the reorder timeout (a real HOL source).
		pr.RxLost++
		pr.putCtx(ctx)
		return StageDrop
	}
	if ctx.split {
		meta.Flags |= packet.MetaFlagHeaderOnly
		ctx.payID = payloadID(meta)
		pr.payload.Store(ctx.payID, ctx.bytes-headerSplitBytes)
	}
	ctx.meta = meta
	ctx.viaPLB = true
	ctx.core = int32(core)
	return StageNext
}

// rssDispatchStage is the 1st-gen baseline: hash the flow to a core.
type rssDispatchStage struct{}

func (rssDispatchStage) Name() string { return "rss-dispatch" }

func (rssDispatchStage) Process(pr *PodRuntime, ctx *pktCtx) StageVerdict {
	cost, drop := pr.serviceCost(ctx)
	ctx.cost = cost
	ctx.drop = drop
	ctx.queueAt = pr.node.Engine.Now()

	q := pr.RSS.Queue(ctx.flow.Tuple)
	if pr.rxLossHit(q) {
		pr.RxLost++
		pr.putCtx(ctx)
		return StageDrop
	}
	ctx.core = int32(q)
	return StageNext
}

// cpuStage enqueues the packet on its core's RX queue; the core's service
// completion resumes the chain.
type cpuStage struct{}

func (cpuStage) Name() string { return "cpu" }

func (cpuStage) Process(pr *PodRuntime, ctx *pktCtx) StageVerdict {
	if !pr.Cores[ctx.core].Enqueue(ctx, ctx.cost, pr.cpuDoneFn) {
		// RX queue overflow: the CPU never sees the packet; its FIFO
		// entry (if PLB-dispatched) stays until the 100µs timeout — a
		// real HOL source.
		pr.QueueDrops++
		pr.putCtx(ctx)
		return StageDrop
	}
	return StageConsumed
}

// reorderStage is plb_reorder: PLB-sprayed packets park until their order
// queue restores per-flow order; RSS packets need no reordering and pass
// through.
type reorderStage struct{}

func (reorderStage) Name() string { return "reorder" }

func (reorderStage) Process(pr *PodRuntime, ctx *pktCtx) StageVerdict {
	if !ctx.viaPLB {
		return StageNext
	}
	pr.PLB.Return(ctx, ctx.meta)
	return StageConsumed
}

// egressStage models the egress NIC pipeline: PCIe TX DMA (headers only in
// split mode) and the class-dependent egress latency.
type egressStage struct{}

func (egressStage) Name() string { return "nic-egress" }

func (egressStage) Process(pr *PodRuntime, ctx *pktCtx) StageVerdict {
	n := pr.node
	class := nicsim.ClassRSS
	if ctx.viaPLB {
		class = nicsim.ClassPLB
	}
	if ctx.split {
		pr.PCIeTxBytes += headerSplitBytes
	} else {
		pr.PCIeTxBytes += uint64(ctx.bytes) + packet.MetaLen
	}
	n.Engine.AfterArg(n.cfg.NIC.EgressLatency(class), egressEvent, ctx)
	return StageConsumed
}
