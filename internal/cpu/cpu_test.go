package cpu

import (
	"math"
	"testing"

	"albatross/internal/sim"
)

func TestCoreProcessesFIFO(t *testing.T) {
	e := sim.NewEngine()
	c := NewCore(e, 0, 16)
	var done []int
	for i := 0; i < 5; i++ {
		i := i
		if !c.Enqueue(i, 1000, func(any) { done = append(done, i) }) {
			t.Fatal("enqueue failed")
		}
	}
	e.Run()
	if len(done) != 5 {
		t.Fatalf("processed %d", len(done))
	}
	for i, v := range done {
		if v != i {
			t.Fatalf("order broken: %v", done)
		}
	}
	if e.Now() != 5000 {
		t.Fatalf("finish time = %v, want 5000 (serialized)", e.Now())
	}
	if c.Processed != 5 {
		t.Fatalf("processed counter = %d", c.Processed)
	}
}

func TestCoreQueueOverflowDrops(t *testing.T) {
	e := sim.NewEngine()
	c := NewCore(e, 0, 2)
	ok1 := c.Enqueue("a", 1000, nil) // in service
	ok2 := c.Enqueue("b", 1000, nil) // queued
	ok3 := c.Enqueue("c", 1000, nil) // queued
	ok4 := c.Enqueue("d", 1000, nil) // dropped
	if !ok1 || !ok2 || !ok3 || ok4 {
		t.Fatalf("admission = %v %v %v %v", ok1, ok2, ok3, ok4)
	}
	if c.Drops != 1 {
		t.Fatalf("drops = %d", c.Drops)
	}
	if c.QueueLen() != 2 || !c.Busy() {
		t.Fatalf("queue=%d busy=%v", c.QueueLen(), c.Busy())
	}
	e.Run()
	if c.Processed != 3 {
		t.Fatalf("processed = %d", c.Processed)
	}
}

func TestCoreDefaultQueueDepth(t *testing.T) {
	c := NewCore(sim.NewEngine(), 0, 0)
	if c.QueueDepth() != 1024 {
		t.Fatalf("default depth = %d", c.QueueDepth())
	}
}

func TestCoreZeroServiceTime(t *testing.T) {
	e := sim.NewEngine()
	c := NewCore(e, 0, 4)
	n := 0
	c.Enqueue(nil, 0, func(any) { n++ })
	c.Enqueue(nil, -5, func(any) { n++ })
	e.Run()
	if n != 2 {
		t.Fatalf("processed %d", n)
	}
	if e.Now() != 0 {
		t.Fatalf("time advanced to %v for zero-cost work", e.Now())
	}
}

func TestCoreBusyTime(t *testing.T) {
	e := sim.NewEngine()
	c := NewCore(e, 0, 16)
	c.Enqueue(nil, 3000, nil)
	c.Enqueue(nil, 2000, nil)
	e.Run()
	if c.BusyTime() != 5000 {
		t.Fatalf("busy = %v", c.BusyTime())
	}
}

func TestCoreStallExtendsInService(t *testing.T) {
	e := sim.NewEngine()
	c := NewCore(e, 0, 16)
	var finished sim.Time
	c.Enqueue(nil, 1000, func(any) { finished = e.Now() })
	e.At(500, func() { c.Stall(2000) })
	e.Run()
	if finished != 3000 {
		t.Fatalf("finished at %v, want 3000 (1000 + 2000 stall)", finished)
	}
	if c.Stalls != 1 {
		t.Fatalf("stalls = %d", c.Stalls)
	}
}

func TestCoreStallWhileIdleDelaysNextWork(t *testing.T) {
	e := sim.NewEngine()
	c := NewCore(e, 0, 16)
	e.At(100, func() { c.Stall(1000) })
	var finished sim.Time
	e.At(200, func() {
		c.Enqueue(nil, 500, func(any) { finished = e.Now() })
	})
	e.Run()
	if finished != 1600 {
		t.Fatalf("finished at %v, want 1600 (wait till 1100, then 500)", finished)
	}
}

func TestCoreStallNoopOnNonPositive(t *testing.T) {
	e := sim.NewEngine()
	c := NewCore(e, 0, 16)
	c.Stall(0)
	c.Stall(-5)
	if c.Stalls != 0 {
		t.Fatal("non-positive stalls counted")
	}
}

func TestUtilSampler(t *testing.T) {
	e := sim.NewEngine()
	c := NewCore(e, 0, 1024)
	s := NewUtilSampler(c)
	// 50% duty cycle: 1µs work every 2µs.
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 2000
		e.At(at, func() { c.Enqueue(nil, 1000, nil) })
	}
	e.RunUntil(200_000)
	util := s.Sample()
	if math.Abs(util-0.5) > 0.02 {
		t.Fatalf("utilization = %v, want ~0.5", util)
	}
	// Idle window: zero.
	e.RunUntil(300_000)
	if u := s.Sample(); u != 0 {
		t.Fatalf("idle utilization = %v", u)
	}
	// Degenerate zero-width window.
	if u := s.Sample(); u != 0 {
		t.Fatalf("zero-window utilization = %v", u)
	}
}

func TestTopology(t *testing.T) {
	top := DefaultTopology()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.TotalCores() != 96 {
		t.Fatalf("total = %d", top.TotalCores())
	}
	if top.NodeOf(0) != 0 || top.NodeOf(47) != 0 || top.NodeOf(48) != 1 || top.NodeOf(95) != 1 {
		t.Fatal("NodeOf mapping wrong")
	}
	bad := Topology{Nodes: 0, CoresPerNode: 4}
	if bad.Validate() == nil {
		t.Fatal("invalid topology accepted")
	}
	if (Topology{}).NodeOf(5) != 0 {
		t.Fatal("degenerate NodeOf should be 0")
	}
}

func TestDefaultPenalties(t *testing.T) {
	p := DefaultPenalties()
	if p.CrossMemory <= 1 || p.CrossCompute <= 1 {
		t.Fatalf("penalties must exceed 1: %+v", p)
	}
}

func TestBalancerStallsLoadedCores(t *testing.T) {
	e := sim.NewEngine()
	core := NewCore(e, 0, 1<<16)
	// Saturate the core: service 1µs, arrivals every 1µs for 1 virtual s.
	var feed func()
	n := 0
	feed = func() {
		if n >= 20000 {
			return
		}
		n++
		core.Enqueue(nil, 10*sim.Microsecond, nil)
		e.After(10*sim.Microsecond, feed)
	}
	feed()
	b := NewBalancer(e, []*Core{core}, 7)
	b.Interval = 2 * sim.Millisecond
	b.Start()
	e.RunUntil(sim.Time(150 * sim.Millisecond))
	if core.Stalls == 0 {
		t.Fatal("balancer never stalled a saturated core")
	}
	stallsAt := core.Stalls
	b.Stop()
	e.RunUntil(sim.Time(400 * sim.Millisecond))
	if core.Stalls != stallsAt {
		t.Fatal("balancer stalled after Stop")
	}
}

func TestBalancerSparesIdleCores(t *testing.T) {
	e := sim.NewEngine()
	core := NewCore(e, 0, 1024)
	// ~5% load.
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * sim.Time(sim.Millisecond)
		e.At(at, func() { core.Enqueue(nil, 50*sim.Microsecond, nil) })
	}
	b := NewBalancer(e, []*Core{core}, 7)
	b.Interval = 5 * sim.Millisecond
	b.Start()
	e.RunUntil(sim.Time(100 * sim.Millisecond))
	b.Stop()
	if core.Stalls != 0 {
		t.Fatalf("idle core stalled %d times", core.Stalls)
	}
}

func BenchmarkCoreEnqueueProcess(b *testing.B) {
	e := sim.NewEngine()
	c := NewCore(e, 0, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Enqueue(nil, 1000, nil)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}
