// Package cpu models the server side of an Albatross node: CPU cores with
// bounded RX queues serving packets under virtual time, per-core
// utilization tracking, the dual-NUMA topology, and the numa_balancing
// perturbation behind the paper's Fig. 17 latency bursts.
//
// Cores are single servers: one packet in service at a time, FIFO queue in
// front, drops on queue overflow. Service times are supplied by the caller
// (the gateway service cost model); the core adds queueing delay and
// occasional stalls.
package cpu

import (
	"fmt"

	"albatross/internal/sim"
)

// work is one queued packet.
type work struct {
	item    any
	service sim.Duration
	done    func(item any)
}

// Core is a simulated CPU core with a bounded FIFO RX queue.
type Core struct {
	ID     int
	engine *sim.Engine

	queue      []work
	queueDepth int
	busy       bool
	current    work
	completion sim.Timer
	finishAt   sim.Time

	stallUntil sim.Time
	failed     bool
	// lastFailAt/everFailed record the most recent Fail so the burst drain
	// can detect members whose service window a core failure crossed.
	lastFailAt sim.Time
	everFailed bool

	// Arithmetic admission state (burst mode): instead of a completion event
	// per packet, Admit computes start/finish times in place. arithFree is
	// when the arithmetically-admitted backlog ends; arithRing holds the
	// start times of admitted-but-not-yet-started packets (the virtual RX
	// queue) so the depth bound still applies.
	arithFree sim.Time
	arithRing []sim.Time
	arithHead int
	arithLen  int
	// slow multiplies service demands while > 0 and != 1 (the fault layer's
	// service-time blowup). It applies to packets started after it is set;
	// an in-service packet keeps its original completion.
	slow float64

	// busyNS accumulates time spent serving (including stall extensions).
	busyNS sim.Duration

	// Stats
	Processed uint64
	Drops     uint64
	Stalls    uint64
	// Lost counts packets discarded by Fail (queued or in service).
	Lost uint64
}

// NewCore creates a core with the given RX queue depth (packets waiting,
// excluding the one in service).
func NewCore(engine *sim.Engine, id, queueDepth int) *Core {
	if queueDepth <= 0 {
		queueDepth = 1024
	}
	return &Core{ID: id, engine: engine, queueDepth: queueDepth}
}

// QueueLen returns the number of packets waiting (excluding in-service).
// With arithmetic admission this includes virtually-queued packets as of
// their admission times (pruning happens on the next Admit).
func (c *Core) QueueLen() int { return len(c.queue) + c.arithLen }

// QueueDepth returns the configured capacity.
func (c *Core) QueueDepth() int { return c.queueDepth }

// Busy reports whether a packet is in service.
func (c *Core) Busy() bool { return c.busy }

// BusyTime returns cumulative service time.
func (c *Core) BusyTime() sim.Duration { return c.busyNS }

// Enqueue admits a packet with the given service demand; done is invoked
// when processing completes. It returns false (and counts a drop) when the
// RX queue is full.
func (c *Core) Enqueue(item any, service sim.Duration, done func(any)) bool {
	if c.failed {
		c.Drops++
		return false
	}
	if service < 0 {
		service = 0
	}
	w := work{item: item, service: service, done: done}
	if c.busy || c.engine.Now() < c.stallUntil {
		if len(c.queue) >= c.queueDepth {
			c.Drops++
			return false
		}
		c.queue = append(c.queue, w)
		if !c.busy {
			// Core idle but stalled: ensure a wake-up is scheduled.
			c.scheduleWake()
		}
		return true
	}
	c.start(w)
	return true
}

// Admit is the burst-mode counterpart of Enqueue: it applies the same
// admission rules (offline refusal, stall, bounded queue, slow factor) but
// computes the packet's start and finish times arithmetically instead of
// scheduling a completion event. The caller records the finish time and
// settles the packet later with ArithDone or ArithLost.
//
// Fidelity caveats vs Enqueue, by construction: the slow factor and stall
// state are sampled at admission (a SetSlowFactor/Stall landing inside the
// already-computed window does not stretch it), and Processed/busyNS move at
// admission/settle time rather than at the exact service instants.
func (c *Core) Admit(service sim.Duration) (start, finish sim.Time, ok bool) {
	if c.failed {
		c.Drops++
		return 0, 0, false
	}
	if service < 0 {
		service = 0
	}
	if c.slow > 0 && c.slow != 1 {
		service = sim.Duration(float64(service) * c.slow)
	}
	now := c.engine.Now()
	for c.arithLen > 0 && c.arithRing[c.arithHead] <= now {
		c.arithHead++
		if c.arithHead == len(c.arithRing) {
			c.arithHead = 0
		}
		c.arithLen--
	}
	if c.arithFree > now || now < c.stallUntil {
		if c.arithLen >= c.queueDepth {
			c.Drops++
			return 0, 0, false
		}
	}
	start = now
	if c.arithFree > start {
		start = c.arithFree
	}
	if c.stallUntil > start {
		start = c.stallUntil
	}
	finish = start.Add(service)
	c.arithFree = finish
	c.busyNS += service
	if start > now {
		if c.arithRing == nil {
			c.arithRing = make([]sim.Time, c.queueDepth+1)
		}
		tail := c.arithHead + c.arithLen
		if tail >= len(c.arithRing) {
			tail -= len(c.arithRing)
		}
		c.arithRing[tail] = start
		c.arithLen++
	}
	return start, finish, true
}

// ArithDone settles a successfully drained arithmetic admission.
func (c *Core) ArithDone() { c.Processed++ }

// ArithLost settles an arithmetic admission whose window a core failure
// crossed: the un-served part of its busy time is refunded (all of it if the
// packet had not started when the core failed) and it counts as Lost, the
// same accounting Fail applies to evented packets.
func (c *Core) ArithLost(start, finish sim.Time) {
	refund := finish.Sub(start)
	if c.lastFailAt > start {
		refund = finish.Sub(c.lastFailAt)
	}
	if refund > 0 {
		c.busyNS -= refund
	}
	c.Lost++
}

// FailedWindow reports whether the core's most recent failure landed inside
// [admitAt, finish) — the burst drain's lost-member test.
func (c *Core) FailedWindow(admitAt, finish sim.Time) bool {
	return c.everFailed && c.lastFailAt >= admitAt && c.lastFailAt < finish
}

// LastFailAt returns the virtual time of the most recent Fail (zero when the
// core never failed; check FailedWindow or Failed first).
func (c *Core) LastFailAt() sim.Time { return c.lastFailAt }

// coreWake and coreFinish are the engine callbacks in arg form, so
// scheduling them reuses pooled events without a per-call closure.
func coreWake(arg any) {
	c := arg.(*Core)
	if !c.busy && c.engine.Now() >= c.stallUntil {
		c.next()
	}
}

func coreFinish(arg any) { arg.(*Core).finish() }

// scheduleWake arms a timer to begin work when the stall ends.
func (c *Core) scheduleWake() {
	c.engine.AtArg(c.stallUntil, coreWake, c)
}

func (c *Core) start(w work) {
	if c.slow > 0 && c.slow != 1 {
		w.service = sim.Duration(float64(w.service) * c.slow)
	}
	c.busy = true
	c.current = w
	c.busyNS += w.service
	c.finishAt = c.engine.Now().Add(w.service)
	c.completion = c.engine.AtArg(c.finishAt, coreFinish, c)
}

func (c *Core) finish() {
	c.completion = sim.Timer{}
	c.busy = false
	c.Processed++
	w := c.current
	c.current = work{}
	if w.done != nil {
		w.done(w.item)
	}
	c.next()
}

func (c *Core) next() {
	if c.busy || c.failed || len(c.queue) == 0 {
		return
	}
	if now := c.engine.Now(); now < c.stallUntil {
		c.scheduleWake()
		return
	}
	w := c.queue[0]
	// Shift without retaining references.
	copy(c.queue, c.queue[1:])
	c.queue[len(c.queue)-1] = work{}
	c.queue = c.queue[:len(c.queue)-1]
	c.start(w)
}

// Stall freezes the core for d (e.g. a numa_balancing task migration). If a
// packet is in service, its completion is postponed by d; queued packets
// wait correspondingly.
func (c *Core) Stall(d sim.Duration) {
	if d <= 0 {
		return
	}
	c.Stalls++
	now := c.engine.Now()
	end := now.Add(d)
	if end > c.stallUntil {
		c.stallUntil = end
	}
	if c.busy {
		// Extend the in-flight completion.
		c.completion.Stop()
		c.finishAt = c.finishAt.Add(d)
		c.busyNS += d
		c.completion = c.engine.AtArg(c.finishAt, coreFinish, c)
	} else if len(c.queue) > 0 {
		c.scheduleWake()
	}
}

// Fail takes the core offline immediately: the in-service packet and every
// queued packet are discarded (onLost is invoked for each, so callers can
// reclaim per-packet state), Enqueue refuses new work, and the completion
// timer is cancelled. It returns the number of packets lost, which is
// bounded by QueueDepth+1. Fail on an already-failed core is a no-op.
func (c *Core) Fail(onLost func(item any)) int {
	if c.failed {
		return 0
	}
	c.failed = true
	c.lastFailAt = c.engine.Now()
	c.everFailed = true
	// Arithmetic admissions are settled by their owner at drain time (via
	// FailedWindow/ArithLost); here we just stop treating them as backlog.
	c.arithFree = c.lastFailAt
	c.arithHead, c.arithLen = 0, 0
	lost := 0
	if c.busy {
		c.completion.Stop()
		c.completion = sim.Timer{}
		c.busy = false
		// Un-account the service time the packet will never finish.
		c.busyNS -= c.finishAt.Sub(c.engine.Now())
		if onLost != nil {
			onLost(c.current.item)
		}
		c.current = work{}
		lost++
	}
	for i := range c.queue {
		if onLost != nil {
			onLost(c.queue[i].item)
		}
		c.queue[i] = work{}
		lost++
	}
	c.queue = c.queue[:0]
	c.Lost += uint64(lost)
	return lost
}

// Recover brings a failed core back online with an empty queue. It also
// clears any pending stall so the core is immediately schedulable.
func (c *Core) Recover() {
	if !c.failed {
		return
	}
	c.failed = false
	c.stallUntil = 0
}

// Failed reports whether the core is offline.
func (c *Core) Failed() bool { return c.failed }

// SetSlowFactor scales the service time of packets started from now on
// (the fault layer's service-time blowup). factor <= 0 or 1 restores
// normal speed. The in-service packet keeps its original completion time.
func (c *Core) SetSlowFactor(factor float64) {
	if factor <= 0 {
		factor = 1
	}
	c.slow = factor
}

// SlowFactor returns the active service-time multiplier (1 = healthy).
func (c *Core) SlowFactor() float64 {
	if c.slow <= 0 {
		return 1
	}
	return c.slow
}

// UtilSampler converts a core's cumulative busy time into windowed
// utilization samples.
type UtilSampler struct {
	core     *Core
	lastBusy sim.Duration
	lastTime sim.Time
}

// NewUtilSampler starts sampling core from the current virtual time.
func NewUtilSampler(core *Core) *UtilSampler {
	return &UtilSampler{core: core, lastBusy: core.BusyTime(), lastTime: core.engine.Now()}
}

// Sample returns the core's utilization (0..1+) since the previous Sample
// call. Values slightly above 1 can occur when service completions
// straddle window edges.
func (u *UtilSampler) Sample() float64 {
	now := u.core.engine.Now()
	window := now.Sub(u.lastTime)
	if window <= 0 {
		return 0
	}
	busy := u.core.BusyTime() - u.lastBusy
	u.lastBusy = u.core.BusyTime()
	u.lastTime = now
	util := float64(busy) / float64(window)
	if util < 0 {
		util = 0
	}
	return util
}

// Topology is the server's NUMA layout. Albatross production servers are
// dual-NUMA with 48 cores per node (paper §3.2).
type Topology struct {
	Nodes        int
	CoresPerNode int
}

// DefaultTopology returns the paper's dual-NUMA, 48-cores-per-node server.
func DefaultTopology() Topology { return Topology{Nodes: 2, CoresPerNode: 48} }

// TotalCores returns the core count across nodes.
func (t Topology) TotalCores() int { return t.Nodes * t.CoresPerNode }

// NodeOf returns the NUMA node that owns a core ID.
func (t Topology) NodeOf(core int) int {
	if t.CoresPerNode <= 0 {
		return 0
	}
	return core / t.CoresPerNode % t.Nodes
}

// Validate checks the topology.
func (t Topology) Validate() error {
	if t.Nodes <= 0 || t.CoresPerNode <= 0 {
		return fmt.Errorf("cpu: invalid topology %+v", t)
	}
	return nil
}

// Penalties model NUMA placement costs, calibrated to the paper's Fig. 16:
// cross-NUMA degrades VPC-VPC (memory-heavy) by ~14% and an empty service
// by ~3%.
type Penalties struct {
	// CrossMemory multiplies memory-access latency for remote allocations.
	CrossMemory float64
	// CrossCompute multiplies instruction-path time (scheduling, coherence).
	CrossCompute float64
}

// DefaultPenalties returns penalties matching the paper's observations.
func DefaultPenalties() Penalties {
	return Penalties{CrossMemory: 1.30, CrossCompute: 1.03}
}

// Balancer models the kernel's automatic NUMA balancing (Fig. 17): under
// high load it migrates tasks/pages, stalling cores at random intervals.
// Disabling it (the paper's fix) removes the stalls.
type Balancer struct {
	engine  *sim.Engine
	cores   []*Core
	rng     *sim.Rand
	enabled bool

	// Interval is the mean time between migration attempts per core.
	Interval sim.Duration
	// StallMin/StallMax bound each migration stall.
	StallMin, StallMax sim.Duration
	// LoadThreshold: only cores above this utilization are disturbed
	// (balancing triggers on busy tasks).
	LoadThreshold float64

	samplers []*UtilSampler
}

// NewBalancer creates a balancer over the given cores. Call Start to arm it.
func NewBalancer(engine *sim.Engine, cores []*Core, seed uint64) *Balancer {
	b := &Balancer{
		engine:        engine,
		cores:         cores,
		rng:           sim.NewRand(seed),
		Interval:      50 * sim.Millisecond,
		StallMin:      200 * sim.Microsecond,
		StallMax:      2 * sim.Millisecond,
		LoadThreshold: 0.8,
	}
	for _, c := range cores {
		b.samplers = append(b.samplers, NewUtilSampler(c))
	}
	return b
}

// Start enables balancing and schedules the first disturbance.
func (b *Balancer) Start() {
	b.enabled = true
	b.scheduleNext()
}

// Stop disables future disturbances (echoing `numa_balancing=0`).
func (b *Balancer) Stop() { b.enabled = false }

func (b *Balancer) scheduleNext() {
	if !b.enabled {
		return
	}
	delay := b.rng.Exp(b.Interval)
	b.engine.After(delay, func() {
		if !b.enabled {
			return
		}
		i := b.rng.Intn(len(b.cores))
		util := b.samplers[i].Sample()
		if util >= b.LoadThreshold {
			span := float64(b.StallMax - b.StallMin)
			stall := b.StallMin + sim.Duration(b.rng.Float64()*span)
			b.cores[i].Stall(stall)
		}
		b.scheduleNext()
	})
}
