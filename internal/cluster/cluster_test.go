package cluster

import (
	"errors"
	"testing"

	"albatross/internal/core"
	"albatross/internal/errs"
	"albatross/internal/faults"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/workload"
)

const testSeed = 42

func testCluster(t *testing.T, nodes int, plan *faults.Plan) (*Cluster, []workload.Flow) {
	t.Helper()
	c, err := New(Config{Nodes: nodes, Seed: testSeed, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	wf := workload.GenerateFlows(2000, 100, testSeed)
	if err := c.AddPod(core.PodConfig{
		Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: pod.ModePLB},
		Flows: workload.ServiceFlows(wf, 0),
	}); err != nil {
		t.Fatal(err)
	}
	return c, wf
}

// ownersOf snapshots the current ECMP owner per flow.
func ownersOf(c *Cluster, flows []workload.Flow) []int {
	owners := make([]int, len(flows))
	for i, f := range flows {
		_, owners[i] = c.Route(f)
	}
	return owners
}

func TestRouteAffinityAndSpread(t *testing.T) {
	c, wf := testCluster(t, 3, nil)
	perNode := make([]int, 3)
	for _, f := range wf {
		home, owner := c.Route(f)
		if home != owner {
			t.Fatalf("healthy cluster remapped flow: home %d owner %d", home, owner)
		}
		h2, o2 := c.Route(f)
		if h2 != home || o2 != owner {
			t.Fatal("routing is not flow-affine")
		}
		perNode[owner]++
	}
	for i, n := range perNode {
		frac := float64(n) / float64(len(wf))
		if frac < 0.20 || frac > 0.47 {
			t.Fatalf("node %d owns %.2f of flows; want roughly 1/3", i, frac)
		}
	}
}

func TestNodeCrashRemapBoundAndRecovery(t *testing.T) {
	c, wf := testCluster(t, 3, nil)
	before := ownersOf(c, wf)

	if err := c.InjectNodeCrash(1, 500*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Past the BFD detection window: the route is withdrawn.
	c.RunFor(300 * sim.Millisecond)
	if c.eligible(1) {
		t.Fatal("crashed node still ECMP-eligible after BFD detection")
	}

	after := ownersOf(c, wf)
	remapped := 0
	for i := range wf {
		if after[i] == before[i] {
			continue
		}
		remapped++
		if before[i] != 1 {
			t.Fatalf("flow %d moved from surviving node %d to %d", i, before[i], after[i])
		}
		if after[i] == 1 {
			t.Fatalf("flow %d mapped onto the dead node", i)
		}
	}
	frac := float64(remapped) / float64(len(wf))
	if frac == 0 {
		t.Fatal("no flows remapped off the dead node")
	}
	if frac > 2.0/3 {
		t.Fatalf("remapped fraction %.3f exceeds the 2/N=%.3f consistent-hash bound", frac, 2.0/3)
	}

	// Recovery: link back at 500ms, BFD recovers, route re-advertises 1s
	// later; the ring is untouched so the exact assignment is restored.
	c.RunFor(1500 * sim.Millisecond)
	if !c.eligible(1) {
		t.Fatal("recovered node not re-eligible")
	}
	restored := ownersOf(c, wf)
	for i := range wf {
		if restored[i] != before[i] {
			t.Fatalf("flow %d not restored to pre-crash owner: %d vs %d", i, restored[i], before[i])
		}
	}
}

func TestNodeCrashBoundedLoss(t *testing.T) {
	plan := (&faults.Plan{}).NodeCrash(30*sim.Millisecond, 1, 500*sim.Millisecond)
	c, wf := testCluster(t, 3, plan)
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(3e5), Seed: testSeed + 1, Sink: c.Sink()}
	if err := src.Start(c.Engine); err != nil {
		t.Fatal(err)
	}
	c.RunFor(400 * sim.Millisecond)
	src.Stop()
	c.RunFor(5 * sim.Millisecond)

	if c.Blackholed() == 0 {
		t.Fatal("no detection-window loss recorded for an abrupt crash")
	}
	// Loss is bounded by the detection window (~200ms grid-quantized) times
	// the dead node's traffic share (~1/3 of 300kpps): generously, 2×.
	bound := uint64(2 * 0.2 * 3e5 / 3)
	if c.Blackholed() > bound {
		t.Fatalf("blackholed %d exceeds detection-window bound %d", c.Blackholed(), bound)
	}
	if c.Remapped == 0 {
		t.Fatal("no packets remapped to survivors after withdrawal")
	}
	if len(c.FaultLog()) != 1 {
		t.Fatalf("fault log has %d events, want 1", len(c.FaultLog()))
	}
	// Surviving nodes keep per-flow order: their PLB reorder engines see no
	// best-effort (out-of-order) emissions caused by the failover.
	for _, m := range c.Members() {
		if m.Index == 1 {
			continue
		}
		pr := m.Node.Pods()[0]
		if pr.DisorderRate() != 0 {
			t.Fatalf("survivor %d disorder rate %g, want 0", m.Index, pr.DisorderRate())
		}
	}
}

func TestNodeDrainZeroLoss(t *testing.T) {
	plan := (&faults.Plan{}).NodeDrain(30*sim.Millisecond, 1, 100*sim.Millisecond)
	c, wf := testCluster(t, 3, plan)
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(3e5), Seed: testSeed + 1, Sink: c.Sink()}
	if err := src.Start(c.Engine); err != nil {
		t.Fatal(err)
	}
	c.RunFor(200 * sim.Millisecond)
	src.Stop()
	c.RunFor(10 * sim.Millisecond)

	m := c.Members()[1]
	if m.Drains != 1 {
		t.Fatalf("drains = %d, want 1", m.Drains)
	}
	if c.Blackholed() != 0 || c.Drops != 0 {
		t.Fatalf("drain lost packets: blackholed=%d switch-drops=%d", c.Blackholed(), c.Drops)
	}
	var tx, crashDrops uint64
	for _, m := range c.Members() {
		for _, pr := range m.Node.Pods() {
			tx += pr.Tx
			crashDrops += pr.CrashDrops
		}
	}
	if crashDrops != 0 {
		t.Fatalf("drain dropped %d packets at crashed pods", crashDrops)
	}
	if tx != c.Sprayed {
		t.Fatalf("tx %d != sprayed %d: make-before-break lost packets", tx, c.Sprayed)
	}
	if !c.eligible(1) {
		t.Fatal("drained node did not rejoin after upgrade")
	}
	if m.Node.Pods()[0].Restarts != 1 {
		t.Fatalf("pod restarts = %d, want 1 (gray upgrade)", m.Node.Pods()[0].Restarts)
	}
}

func TestUplinkWithdraw(t *testing.T) {
	c, wf := testCluster(t, 3, nil)
	if err := c.InjectUplinkWithdraw(0, 50*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if c.eligible(0) {
		t.Fatal("withdrawn node still eligible")
	}
	for _, f := range wf {
		if _, owner := c.Route(f); owner == 0 {
			t.Fatal("flow routed to withdrawn node")
		}
	}
	c.RunFor(51 * sim.Millisecond)
	if !c.eligible(0) {
		t.Fatal("node not restored after withdraw expiry")
	}
}

func TestAddNodeBoundedRemap(t *testing.T) {
	c, wf := testCluster(t, 3, nil)
	before := ownersOf(c, wf)
	idx, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 {
		t.Fatalf("new member index = %d, want 3", idx)
	}
	if got := len(c.Members()[3].Node.Pods()); got != 1 {
		t.Fatalf("new member has %d pods, want 1 (replayed)", got)
	}
	after := ownersOf(c, wf)
	moved := 0
	for i := range wf {
		if after[i] != before[i] {
			moved++
			if after[i] != 3 {
				t.Fatalf("flow %d moved between old members (%d->%d) on add", i, before[i], after[i])
			}
		}
	}
	frac := float64(moved) / float64(len(wf))
	if frac == 0 || frac > 2.0/4 {
		t.Fatalf("add-node remap fraction %.3f outside (0, 2/(N+1)=%.3f]", frac, 2.0/4)
	}
}

func TestAllNodesDownDropsAtSwitch(t *testing.T) {
	c, wf := testCluster(t, 2, nil)
	for i := range c.Members() {
		if err := c.InjectUplinkWithdraw(i, 10*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	c.Inject(wf[0], 256)
	if c.Drops != 1 {
		t.Fatalf("switch drops = %d, want 1 with no eligible member", c.Drops)
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() string {
		plan := (&faults.Plan{}).NodeCrash(30*sim.Millisecond, 1, 500*sim.Millisecond)
		c, wf := testCluster(t, 3, plan)
		src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(2e5), Seed: testSeed + 1, Sink: c.Sink()}
		if err := src.Start(c.Engine); err != nil {
			t.Fatal(err)
		}
		c.RunFor(300 * sim.Millisecond)
		src.Stop()
		c.RunFor(5 * sim.Millisecond)
		return c.Report()
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("cluster runs with identical seed and plan diverged")
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); !errors.Is(err, errs.BadConfig) {
		t.Fatalf("Nodes=0 accepted: %v", err)
	}
	c, _ := testCluster(t, 2, nil)
	if _, err := c.NodeAt(5); !errors.Is(err, errs.BadConfig) {
		t.Fatalf("NodeAt(5) = %v, want BadConfig", err)
	}
	if err := c.InjectNodeDrain(0, 0); !errors.Is(err, errs.BadConfig) {
		t.Fatalf("zero-duration drain = %v, want BadConfig", err)
	}
	if err := c.InjectNodeCrash(0, sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectNodeCrash(0, sim.Second); !errors.Is(err, errs.BadState) {
		t.Fatalf("double crash = %v, want BadState", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
