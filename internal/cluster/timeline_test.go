package cluster

import (
	"strings"
	"testing"

	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/workload"
)

// runTimeline drives a 4-node cluster under a NodeCrash with 10ms sampling
// and returns the cluster (timeline armed and populated).
func runTimeline(t *testing.T, shards int) *Cluster {
	t.Helper()
	plan := (&faults.Plan{}).NodeCrash(40*sim.Millisecond, 1, 200*sim.Millisecond)
	c, err := New(Config{
		Nodes: 4, Seed: testSeed, Faults: plan, Shards: shards,
		SnapshotEvery: 10 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wf := workload.GenerateFlows(2000, 100, testSeed)
	if err := c.AddPod(core.PodConfig{
		Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: pod.ModePLB},
		Flows: workload.ServiceFlows(wf, 0),
	}); err != nil {
		t.Fatal(err)
	}
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(2e5), Seed: testSeed + 1, Sink: c.Sink()}
	if err := src.Start(c.Engine); err != nil {
		t.Fatal(err)
	}
	c.RunFor(150 * sim.Millisecond)
	src.Stop()
	c.RunFor(50 * sim.Millisecond)
	return c
}

func TestTimelineRecordsCrashTrajectory(t *testing.T) {
	c := runTimeline(t, 1)
	tl := c.Timeline()
	if tl == nil {
		t.Fatal("timeline nil with SnapshotEvery set")
	}
	// 200ms of run at 10ms per tick, ticks continuing across RunFor calls.
	if tl.Len() != 20 {
		t.Fatalf("ticks = %d, want 20", tl.Len())
	}

	avail, ok := tl.Values("availability")
	if !ok {
		t.Fatal("availability column missing")
	}
	elig, _ := tl.Values("albatross_cluster_eligible_members")
	// Crash at 40ms, BFD detection window 200ms... bounded by route
	// withdrawal: before the crash every member is eligible and
	// availability is ~1.
	if elig[2] != 4 {
		t.Fatalf("eligible members before crash = %v, want 4", elig[2])
	}
	if avail[2] < 0.95 {
		t.Fatalf("pre-crash availability = %v, want ~1", avail[2])
	}
	// The blackhole window must dent at least one tick's availability.
	dip := false
	for _, v := range avail {
		if v < 0.9 {
			dip = true
		}
	}
	if !dip {
		t.Fatalf("no availability dip recorded across ticks: %v", avail)
	}
	// After BFD withdraws the route the survivors absorb the flows: the
	// final ticks converge back to ~1 with 3 eligible members.
	last := tl.Len() - 1
	if elig[last] != 3 {
		t.Fatalf("eligible members at end = %v, want 3 (node still down)", elig[last])
	}
	if avail[last] < 0.99 {
		t.Fatalf("availability did not converge: final tick %v", avail[last])
	}

	// Blackholed deltas are nonzero only inside the detection window.
	bh, _ := tl.Values("albatross_cluster_blackholed_packets_total")
	var preCrash, total float64
	for i, v := range bh {
		total += v
		if i < 3 { // ticks at 10/20/30ms precede the 40ms crash
			preCrash += v
		}
	}
	if preCrash != 0 {
		t.Fatalf("blackholed packets before the crash: %v", bh)
	}
	if total == 0 {
		t.Fatal("no blackholed packets recorded in any tick despite the crash")
	}

	// The outcome report carries the series fingerprint line.
	if !strings.Contains(c.Outcome(), "series/fnv64a | ") {
		t.Fatal("outcome missing series/fnv64a line with sampling enabled")
	}
}

// TestTimelineShardCountInvariance pins the tentpole determinism claim at
// the cluster layer: the CSV and JSON series exports are byte-identical
// whether the run used the single shared engine or four shard engines.
func TestTimelineShardCountInvariance(t *testing.T) {
	a := runTimeline(t, 1)
	b := runTimeline(t, 4)
	acsv, bcsv := a.Timeline().CSV(), b.Timeline().CSV()
	if acsv != bcsv {
		t.Fatalf("series CSV differs between shards=1 and shards=4:\n--- s1\n%s\n--- s4\n%s", acsv, bcsv)
	}
	aj, err := a.Timeline().JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.Timeline().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatal("series JSON differs between shards=1 and shards=4")
	}
	if a.Outcome() != b.Outcome() {
		t.Fatal("outcome (with series fingerprint) differs between shard counts")
	}
}

// TestTimelineSlicingIsFree verifies the slicing argument directly: a run
// with sampling produces the same final outcome counters as the same run
// without sampling — only the series line differs.
func TestTimelineSlicingIsFree(t *testing.T) {
	run := func(every sim.Duration) *Cluster {
		plan := (&faults.Plan{}).NodeCrash(30*sim.Millisecond, 2, 60*sim.Millisecond)
		c, err := New(Config{Nodes: 4, Seed: testSeed, Faults: plan, Shards: 1, SnapshotEvery: every})
		if err != nil {
			t.Fatal(err)
		}
		wf := workload.GenerateFlows(1000, 50, testSeed)
		if err := c.AddPod(core.PodConfig{
			Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: pod.ModePLB},
			Flows: workload.ServiceFlows(wf, 0),
		}); err != nil {
			t.Fatal(err)
		}
		src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e5), Seed: testSeed + 1, Sink: c.Sink()}
		if err := src.Start(c.Engine); err != nil {
			t.Fatal(err)
		}
		c.RunFor(100 * sim.Millisecond)
		src.Stop()
		c.RunFor(10 * sim.Millisecond)
		return c
	}
	plain := run(0)
	sampled := run(7 * sim.Millisecond) // deliberately misaligned with event times
	if plain.Timeline() != nil {
		t.Fatal("timeline armed with SnapshotEvery=0")
	}
	stripped := strings.Join(strings.Split(strings.TrimSuffix(sampled.Outcome(), "\n"), "\n"), "\n")
	var kept []string
	for _, line := range strings.Split(stripped, "\n") {
		if !strings.HasPrefix(line, "series/fnv64a") {
			kept = append(kept, line)
		}
	}
	if strings.Join(kept, "\n")+"\n" != plain.Outcome() {
		t.Fatalf("sampling changed the simulation outcome:\n--- plain\n%s\n--- sampled\n%s",
			plain.Outcome(), sampled.Outcome())
	}
}
