package cluster

import (
	"testing"

	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/workload"
	"albatross/internal/workload/trace"
)

// runBurstCluster builds a 4-node, two-pod cluster with the given dataplane
// config, drives it with a fixed-seed source under the given fault plan, and
// returns the outcome report plus the Prometheus export — the two documents
// burst-batched dispatch promises are byte-identical to the unbatched path.
// sample is PodConfig.TraceSampleEvery: 0 keeps the default flight-recorder
// sampling (valid only at burst <= 1, which leaves the recorder on); -1
// disables it, which is the fair baseline for burst > 1 since the
// arithmetic mode always forces the recorder off.
func runBurstCluster(t *testing.T, shards, burst int, backend string, sample int, plan *faults.Plan) (string, string) {
	t.Helper()
	c, err := New(Config{
		Nodes:  4,
		Seed:   testSeed,
		Faults: plan,
		Shards: shards,
		Node:   core.NodeConfig{Burst: burst, FlowBackend: backend},
	})
	if err != nil {
		t.Fatal(err)
	}
	wf := workload.GenerateFlows(2000, 100, testSeed)
	for _, name := range []string{"gw0", "gw1"} {
		if err := c.AddPod(core.PodConfig{
			Spec:             pod.Spec{Name: name, Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: pod.ModePLB},
			Flows:            workload.ServiceFlows(wf, 0),
			TraceSampleEvery: sample,
		}); err != nil {
			t.Fatal(err)
		}
	}
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e5), Seed: testSeed + 1, Sink: c.Sink()}
	if err := src.Start(c.Engine); err != nil {
		t.Fatal(err)
	}
	c.RunFor(80 * sim.Millisecond)
	src.Stop()
	c.RunFor(5 * sim.Millisecond)
	return c.Outcome(), c.Metrics().Prometheus()
}

// burstFaultScenarios cover every fault kind: burst identity must survive
// mid-burst core failures, pod crashes sweeping queued contexts, rx loss,
// reorder stress, and the node-granularity kinds.
var burstFaultScenarios = []struct {
	name string
	plan func() *faults.Plan
}{
	{"healthy", func() *faults.Plan { return nil }},
	{"core-stall", func() *faults.Plan {
		return &faults.Plan{Faults: []faults.Fault{{
			Kind: faults.KindCoreStall, At: 20 * sim.Millisecond, Node: 2, Pod: 0,
			Core: 1, Factor: 8, Duration: 30 * sim.Millisecond,
		}}}
	}},
	{"core-fail", func() *faults.Plan {
		return &faults.Plan{Faults: []faults.Fault{{
			Kind: faults.KindCoreFail, At: 20 * sim.Millisecond, Node: 1, Pod: 0,
			Core: 2, Duration: 25 * sim.Millisecond,
		}}}
	}},
	{"rx-loss", func() *faults.Plan {
		return &faults.Plan{Faults: []faults.Fault{{
			Kind: faults.KindRxLoss, At: 25 * sim.Millisecond, Node: 0, Pod: 1,
			Core: 0, Factor: 0.5, Duration: 20 * sim.Millisecond,
		}}}
	}},
	{"reorder-stress", func() *faults.Plan {
		return &faults.Plan{Faults: []faults.Fault{{
			Kind: faults.KindReorderStress, At: 20 * sim.Millisecond, Node: 3, Pod: 0,
			Queue: 1, HoldHeads: true, DepthClamp: 8, Duration: 30 * sim.Millisecond,
		}}}
	}},
	{"pod-crash", func() *faults.Plan {
		return &faults.Plan{Faults: []faults.Fault{{
			Kind: faults.KindPodCrash, At: 25 * sim.Millisecond, Node: 0, Pod: 1,
			Duration: 20 * sim.Millisecond,
		}}}
	}},
	{"pod-drain", func() *faults.Plan {
		return &faults.Plan{Faults: []faults.Fault{{
			Kind: faults.KindPodDrain, At: 25 * sim.Millisecond, Node: 2, Pod: 1,
			Duration: 20 * sim.Millisecond,
		}}}
	}},
	{"bgp-flap", func() *faults.Plan {
		return &faults.Plan{Faults: []faults.Fault{{
			Kind: faults.KindBGPFlap, At: 30 * sim.Millisecond, Node: 1,
			Duration: 25 * sim.Millisecond,
		}}}
	}},
	{"node-crash", func() *faults.Plan {
		return (&faults.Plan{}).NodeCrash(30*sim.Millisecond, 3, 40*sim.Millisecond)
	}},
	{"node-drain", func() *faults.Plan {
		return (&faults.Plan{}).NodeDrain(30*sim.Millisecond, 2, 30*sim.Millisecond)
	}},
	{"uplink-withdraw", func() *faults.Plan {
		return (&faults.Plan{}).UplinkWithdraw(30*sim.Millisecond, 0, 25*sim.Millisecond)
	}},
}

// TestBurstByteIdenticalToUnbatched is the burst-dispatch acceptance test,
// run under every fault kind at shards 1 and 4 alike:
//
//   - burst=1 must match the legacy unbatched path byte for byte with the
//     default flight-recorder sampling on (burst <= 1 IS the legacy path);
//   - the arithmetic mode (burst 8 and 32) must match an unbatched run with
//     sampling disabled, since burst > 1 always forces the recorder off.
func TestBurstByteIdenticalToUnbatched(t *testing.T) {
	for _, sc := range burstFaultScenarios {
		t.Run(sc.name, func(t *testing.T) {
			baseOut, baseProm := runBurstCluster(t, 1, 0, "", 0, sc.plan())
			for _, v := range []struct {
				shards, burst int
			}{
				{1, 1}, {4, 1},
			} {
				out, prom := runBurstCluster(t, v.shards, v.burst, "", 0, sc.plan())
				if out != baseOut {
					t.Fatalf("shards=%d burst=%d outcome differs from unbatched:\n%s",
						v.shards, v.burst,
						trace.Diff("unbatched", baseOut, "burst", out).String())
				}
				if prom != baseProm {
					t.Fatalf("shards=%d burst=%d metrics export differs from unbatched",
						v.shards, v.burst)
				}
			}

			quietOut, quietProm := runBurstCluster(t, 1, 0, "", -1, sc.plan())
			for _, v := range []struct {
				shards, burst int
			}{
				{1, 8}, {4, 32},
			} {
				out, prom := runBurstCluster(t, v.shards, v.burst, "", -1, sc.plan())
				if out != quietOut {
					t.Fatalf("shards=%d burst=%d outcome differs from unbatched (sampling off):\n%s",
						v.shards, v.burst,
						trace.Diff("unbatched", quietOut, "burst", out).String())
				}
				if prom != quietProm {
					t.Fatalf("shards=%d burst=%d metrics export differs from unbatched (sampling off)",
						v.shards, v.burst)
				}
			}
		})
	}
}

// TestBurstBackendCombined layers the othello flow-table backend under
// burst dispatch through a pod crash: the backend changes which pod each
// flow enters, so identity is checked against an unbatched run with the
// same backend, again across shard counts and burst sizes.
func TestBurstBackendCombined(t *testing.T) {
	plan := func() *faults.Plan {
		return &faults.Plan{Faults: []faults.Fault{{
			Kind: faults.KindPodCrash, At: 25 * sim.Millisecond, Node: 0, Pod: 1,
			Duration: 20 * sim.Millisecond,
		}}}
	}
	baseOut, baseProm := runBurstCluster(t, 1, 0, "othello", -1, plan())
	for _, v := range []struct {
		shards, burst int
	}{
		{1, 1}, {1, 32}, {4, 8},
	} {
		out, prom := runBurstCluster(t, v.shards, v.burst, "othello", -1, plan())
		if out != baseOut {
			t.Fatalf("shards=%d burst=%d outcome differs from unbatched othello run:\n%s",
				v.shards, v.burst, trace.Diff("unbatched", baseOut, "burst", out).String())
		}
		if prom != baseProm {
			t.Fatalf("shards=%d burst=%d metrics export differs", v.shards, v.burst)
		}
	}

	// The backend must actually have steered: flows land on both pods of
	// node 0, and the crash moved the dead pod's flows.
	c, err := New(Config{Nodes: 4, Seed: testSeed, Faults: plan(),
		Node: core.NodeConfig{FlowBackend: "othello"}})
	if err != nil {
		t.Fatal(err)
	}
	wf := workload.GenerateFlows(2000, 100, testSeed)
	for _, name := range []string{"gw0", "gw1"} {
		if err := c.AddPod(core.PodConfig{
			Spec:  pod.Spec{Name: name, Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: pod.ModePLB},
			Flows: workload.ServiceFlows(wf, 0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e5), Seed: testSeed + 1, Sink: c.Sink()}
	if err := src.Start(c.Engine); err != nil {
		t.Fatal(err)
	}
	c.RunFor(80 * sim.Millisecond)
	src.Stop()
	c.RunFor(5 * sim.Millisecond)
	n0 := c.Members()[0].Node
	pods := n0.Pods()
	if pods[0].Rx == 0 || pods[1].Rx == 0 {
		t.Fatalf("backend did not spread flows across pods: rx=[%d %d]", pods[0].Rx, pods[1].Rx)
	}
	if n0.BackendMoved == 0 {
		t.Fatal("pod crash moved no backend flows (pool update not wired)")
	}
	if n0.Backend() == nil || len(n0.Backend().Pool()) != 2 {
		t.Fatalf("backend pool did not recover to both pods after restart")
	}
}
