// Package cluster is the multi-node Albatross deployment: N containerized
// gateway servers (core.Node) behind one ToR switch, advancing on one
// shared virtual-time engine. Ingress flows are sprayed across nodes with
// consistent-hash ECMP (flow-affine, bounded remap on membership churn),
// and each node's reachability is governed by its modeled BGP uplink — so
// a node crash is only *observed* by the ECMP layer once BFD misses
// DetectMult probes and the route is withdrawn, exactly the paper's
// bounded-loss failover story, while gray upgrades withdraw
// administratively first (make-before-break, zero loss).
//
// The package implements faults.NodeTarget, extending the deterministic
// fault plans of internal/faults to node granularity — one unified
// InjectNodeFault entry point covering node crash, node drain, and uplink
// withdraw — while still routing pod-level faults to member nodes via
// Fault.Node.
//
// By default every member's uplink runs over the real BGP stack
// (bgp.ProxiedSession): a GW-pod speaker peers iBGP with the member's proxy
// pod, which holds the single eBGP session to one shared switch model —
// the paper's §5 peer-scaling topology at cluster scale. The BFD timing
// model is unchanged (byte-identical outcomes with the legacy path);
// Config.BGP = "sim" opts back into the pure timing stub.
package cluster

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"

	"albatross/internal/bgp"
	"albatross/internal/core"
	"albatross/internal/errs"
	"albatross/internal/faults"
	"albatross/internal/metrics"
	"albatross/internal/sim"
	"albatross/internal/workload"
	"albatross/internal/workload/trace"
)

// Config parameterizes a cluster.
type Config struct {
	// Nodes is the member count (≥ 1).
	Nodes int
	// Seed feeds the per-member node seeds (member i derives a distinct
	// deterministic seed from it).
	Seed uint64
	// Node is the per-member template. Its Seed/Engine/Faults fields are
	// overridden: seeds derive from Config.Seed, all members share one
	// engine, and fault plans are cluster-level (Config.Faults).
	Node core.NodeConfig
	// VNodesPerNode is the consistent-hash vnode count per member
	// (default 64; higher = tighter remap bound, bigger table).
	VNodesPerNode int
	// Faults, when non-nil, arms a deterministic cluster-level fault plan
	// (node- and pod-level kinds; Fault.Node selects the member).
	Faults *faults.Plan
	// Shards partitions the members onto per-shard event engines so a run
	// uses multiple cores: 0 = auto (min(GOMAXPROCS, Nodes)), 1 = the
	// legacy single shared engine, k > 1 = k shard engines driven by a
	// control engine under the conservative exchange protocol (see
	// internal/sim.ShardedEngine). Outcome reports and metrics exports are
	// byte-identical at any shard count.
	Shards int
	// SnapshotEvery, when positive, samples a telemetry timeline every
	// SnapshotEvery of virtual time: RunFor slices its advance at tick
	// boundaries (an epoch barrier under the sharded protocol) and records
	// per-tick deltas of the cluster-level series into Timeline(). Zero
	// disables sampling; the packet path is untouched either way.
	SnapshotEvery sim.Duration
	// BGP selects the uplink implementation: "proxy" (default) runs each
	// member over the real BGP stack — pod speaker → proxy pod → shared
	// switch model, in-memory eBGP sessions — while "sim" keeps the pure
	// SimSession timing stub. Both share the identical BFD timing model, so
	// outcomes are byte-identical across the two.
	BGP string
}

// memberState tracks a member's lifecycle for reporting; ECMP eligibility
// is deliberately *not* derived from it (the switch only sees BGP state).
type memberState uint8

const (
	memberActive memberState = iota
	memberDraining
	memberCrashed
	// memberRemoved is terminal: the slot keeps its index (members are
	// never renumbered) but owns no ring points and cannot be resurrected.
	memberRemoved
)

func (s memberState) String() string {
	switch s {
	case memberActive:
		return "active"
	case memberDraining:
		return "draining"
	case memberCrashed:
		return "crashed"
	case memberRemoved:
		return "removed"
	default:
		return "invalid"
	}
}

// Member is one gateway server in the cluster.
type Member struct {
	// Index is the member's stable position (also its ring identity).
	Index int
	// Node is the underlying server.
	Node *core.Node

	state memberState
	// adminUntil implements administrative withdrawal (drain, uplink
	// withdraw): the member is ineligible while now < adminUntil. Unlike a
	// crash, the switch learns immediately — make-before-break.
	adminUntil sim.Time
	// weight is the member's ECMP weight (1.0 = full vnode share).
	weight float64

	// Rx counts packets ECMP delivered to this member.
	Rx uint64
	// Drains and Crashes count node-level fault activations.
	Drains  uint64
	Crashes uint64

	// shard is the engine shard owning this member (0 on the legacy path).
	shard int
	// proxied is the real-BGP uplink session (nil under Config.BGP "sim").
	proxied *bgp.ProxiedSession
}

// Shard returns the engine shard that owns the member (0 when the cluster
// runs on the legacy single shared engine).
func (m *Member) Shard() int { return m.shard }

// State returns the member's lifecycle state name.
func (m *Member) State() string { return m.state.String() }

// Weight returns the member's ECMP weight.
func (m *Member) Weight() float64 { return m.weight }

// Proxied returns the member's real-BGP uplink session, nil when the
// cluster runs the "sim" uplink stub.
func (m *Member) Proxied() *bgp.ProxiedSession { return m.proxied }

// ActivePods counts the member's pods in the active lifecycle state.
func (m *Member) ActivePods() int {
	n := 0
	for _, pr := range m.Node.Pods() {
		if pr.State() == "active" {
			n++
		}
	}
	return n
}

// Cluster is a set of Albatross nodes behind consistent-hash ECMP.
type Cluster struct {
	// Engine is the clock cluster-coupling state advances on: the shared
	// engine when Shards <= 1, the control engine of the sharded protocol
	// otherwise. Workload sources, fault plans, and trace record/replay all
	// attach here in both modes.
	Engine *sim.Engine

	cfg      Config
	members  []*Member
	ring     *ring
	injector *faults.Injector
	// podCfgs replays deployed pods onto members added later.
	podCfgs []core.PodConfig
	// eligibleFn is the ring's eligibility probe, bound once so Inject
	// stays allocation-free.
	eligibleFn func(int) bool
	// sharded is the multi-shard protocol driver (nil when Shards <= 1);
	// shards is the effective shard count (1 on the legacy path); mail
	// holds the per-shard cross-shard injection mailboxes.
	sharded *sim.ShardedEngine
	shards  int
	mail    []shardMailbox
	// switchModel is the shared uplink switch every member's proxy peers
	// with (nil under Config.BGP "sim").
	switchModel *bgp.Switch
	// controller is the attached control loop, if any (see AttachController).
	controller Controller

	// Sprayed counts ingress packets offered to the ECMP layer; Remapped
	// counts those delivered to a member other than their ring home (the
	// failover spillover); Drops counts packets with no eligible member.
	Sprayed  uint64
	Remapped uint64
	Drops    uint64

	// timeline is the periodic sampler (nil unless Config.SnapshotEvery is
	// set), armed lazily at the first RunFor so pods deployed via AddPod
	// are visible to its probe histogram.
	timeline *metrics.Timeline
}

// foreverDuration stands in for "permanent" when a fault's Duration is 0.
const foreverDuration = sim.Duration(1) << 60

// memberSeed derives member i's node seed from the cluster seed.
func memberSeed(seed uint64, i int) uint64 {
	return mix64(seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
}

// New builds a cluster of cfg.Nodes members on one shared engine. Every
// member gets a modeled BGP uplink (default BFD timing) — reachability is
// what ECMP eligibility is derived from.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d: %w", cfg.Nodes, errs.BadConfig)
	}
	if cfg.VNodesPerNode == 0 {
		cfg.VNodesPerNode = 64
	}
	if cfg.VNodesPerNode < 1 {
		return nil, fmt.Errorf("cluster: VNodesPerNode %d must be positive: %w", cfg.VNodesPerNode, errs.BadConfig)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("cluster: Shards %d must be >= 0: %w", cfg.Shards, errs.BadConfig)
	}
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("cluster: SnapshotEvery %d must be >= 0: %w", cfg.SnapshotEvery, errs.BadConfig)
	}
	switch cfg.BGP {
	case "":
		cfg.BGP = "proxy"
	case "proxy", "sim":
	default:
		return nil, fmt.Errorf("cluster: BGP mode %q not in {proxy, sim}: %w", cfg.BGP, errs.BadConfig)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > cfg.Nodes {
		shards = cfg.Nodes
	}
	c := &Cluster{
		cfg:    cfg,
		ring:   newRing(cfg.VNodesPerNode),
		shards: shards,
	}
	if cfg.BGP == "proxy" {
		c.switchModel = bgp.NewSwitch(65000, 0xFFFF0001)
		c.switchModel.Manual = true
		// One proxy per member is exactly what keeps the peer count at m,
		// but the capacity model still flags over-dense clusters.
		c.switchModel.MaxSafePeers = 64
	}
	if shards > 1 {
		c.sharded = sim.NewShardedEngine(shards)
		c.Engine = c.sharded.Control()
		c.mail = make([]shardMailbox, shards)
		c.sharded.SetAdvance(c.advanceShard)
		c.sharded.SetBoundary(c.nextBoundary)
	} else {
		c.Engine = sim.NewEngine()
	}
	c.eligibleFn = c.eligible
	for i := 0; i < cfg.Nodes; i++ {
		if _, err := c.addMember(); err != nil {
			return nil, err
		}
	}
	if cfg.Faults != nil {
		inj, err := faults.NewInjector(c.Engine, c, cfg.Faults)
		if err != nil {
			return nil, err
		}
		c.injector = inj
	}
	return c, nil
}

// addMember builds, uplinks, and ring-registers the next member.
func (c *Cluster) addMember() (*Member, error) {
	i := len(c.members)
	shard := trace.ShardOfNode(i, c.shards)
	ncfg := c.cfg.Node
	ncfg.Seed = memberSeed(c.cfg.Seed, i)
	ncfg.Engine = c.engineOf(shard)
	ncfg.Faults = nil
	n, err := core.NewNode(ncfg)
	if err != nil {
		return nil, err
	}
	m := &Member{Index: i, Node: n, shard: shard, weight: 1}
	// At cluster scope the failover path is re-ECMP to survivors, not a
	// sibling re-advertisement of the same prefix, so the core-level proxy
	// detour stays off on both uplink implementations.
	if c.switchModel != nil {
		ps, err := bgp.NewProxiedSession(ncfg.Engine, c.switchModel, bgp.ProxiedSessionConfig{Member: i})
		if err != nil {
			return nil, err
		}
		if err := n.InstallUplink(ps, false); err != nil {
			return nil, err
		}
		m.proxied = ps
	} else if _, err := n.EnableUplink(false); err != nil {
		return nil, err
	}
	c.members = append(c.members, m)
	c.ring.add(i)
	return m, nil
}

// AddNode grows the cluster by one member at runtime, replaying every
// deployed pod config onto it. Consistent hashing bounds the disruption:
// only ~1/(N+1) of flows remap onto the new member. Returns the new
// member's index.
func (c *Cluster) AddNode() (int, error) {
	// The new member's uplink (and pods) arm events on its shard's engine,
	// which may lag the control clock mid-run: bring it current first so
	// nothing is scheduled in the shard's past.
	c.syncShards()
	m, err := c.addMember()
	if err != nil {
		return 0, err
	}
	for _, pcfg := range c.podCfgs {
		if _, err := m.Node.AddPod(pcfg); err != nil {
			return 0, err
		}
	}
	return m.Index, nil
}

// AddPod deploys the pod on every member (the homogeneous rack) and
// records it for members added later.
func (c *Cluster) AddPod(cfg core.PodConfig) error {
	for _, m := range c.members {
		if _, err := m.Node.AddPod(cfg); err != nil {
			return fmt.Errorf("cluster: node %d: %w", m.Index, err)
		}
	}
	c.podCfgs = append(c.podCfgs, cfg)
	return nil
}

// Members returns the cluster members in index order.
func (c *Cluster) Members() []*Member { return c.members }

// memberAt resolves a fault plan's node index.
func (c *Cluster) memberAt(i int) (*Member, error) {
	if i < 0 || i >= len(c.members) {
		return nil, fmt.Errorf("cluster: node index %d out of range [0,%d): %w", i, len(c.members), errs.BadConfig)
	}
	return c.members[i], nil
}

// MemberAt returns member i — the typed accessor for callers that need
// member state (weight, lifecycle, uplink), instead of type-asserting the
// opaque faults.Target that NodeAt returns.
func (c *Cluster) MemberAt(i int) (*Member, error) { return c.memberAt(i) }

// NodeAt resolves member i as a pod-level fault target. Implements
// faults.NodeTarget. On a sharded cluster the target is wrapped so every
// pod-level fault synchronizes the shards to the control clock first — the
// fault mutates node state owned by a shard engine.
func (c *Cluster) NodeAt(i int) (faults.Target, error) {
	m, err := c.memberAt(i)
	if err != nil {
		return nil, err
	}
	if c.sharded == nil {
		return m.Node, nil
	}
	return &syncedTarget{c: c, n: m.Node}, nil
}

// SetWeight sets member node's ECMP weight: weight w owns round(w×vnodes)
// ring points (min 1 while positive; 0 removes the member's points without
// retiring the slot). A pure control-plane mutation — the ring is only read
// on the control engine, so no shard synchronization is needed — and the
// canonical canary primitive: shift a member 0.1 → 0.5 → 1.0 while watching
// availability.
func (c *Cluster) SetWeight(node int, w float64) error {
	m, err := c.memberAt(node)
	if err != nil {
		return err
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("cluster: weight %v must be a finite non-negative number: %w", w, errs.BadConfig)
	}
	if m.state == memberRemoved {
		return fmt.Errorf("cluster: node %d is removed: %w", node, errs.BadState)
	}
	m.weight = w
	c.ring.setCount(node, c.ring.weightCount(w))
	return nil
}

// SetNodeAdmin pins member node's administrative state: up=false withdraws
// the route indefinitely (new flows re-ECMP to survivors instantly, pods
// untouched); up=true restores it. Unlike InjectNodeFault's timed
// withdrawals, the state holds until the opposite call — the reconciler's
// drain primitive.
func (c *Cluster) SetNodeAdmin(node int, up bool) error {
	m, err := c.memberAt(node)
	if err != nil {
		return err
	}
	if m.state == memberRemoved {
		return fmt.Errorf("cluster: node %d is removed: %w", node, errs.BadState)
	}
	if up {
		m.adminUntil = c.Engine.Now()
		if m.proxied != nil {
			c.syncShards()
			m.proxied.SetAdmin(true)
		}
		return nil
	}
	m.adminUntil = c.Engine.Now().Add(foreverDuration)
	if m.proxied != nil {
		c.syncShards()
		m.proxied.SetAdmin(false)
	}
	return nil
}

// RemoveNode permanently retires member node: its ring points are removed
// (the consistent-hash bound applies — only its own share of flows remap),
// its route is withdrawn through the fabric, and its pods stop gracefully.
// The slot keeps its index (members are never renumbered) and cannot be
// resurrected; grow again with AddNode. Callers wanting zero loss drain
// first (SetNodeAdmin false, wait a tick) — the reconciler's
// make-before-break removal does exactly that.
func (c *Cluster) RemoveNode(node int) error {
	m, err := c.memberAt(node)
	if err != nil {
		return err
	}
	if m.state == memberRemoved {
		return fmt.Errorf("cluster: node %d already removed: %w", node, errs.BadState)
	}
	// Pod stops arm timers on the owning shard's engine.
	c.syncShards()
	m.state = memberRemoved
	m.adminUntil = c.Engine.Now().Add(foreverDuration)
	if m.proxied != nil {
		m.proxied.SetAdmin(false)
	}
	c.ring.remove(node)
	for pi, pr := range m.Node.Pods() {
		if pr.State() == "active" {
			if err := m.Node.InjectPodCrash(pi, true, foreverDuration); err != nil {
				return err
			}
		}
	}
	return nil
}

// ScalePods drives member node's active pod count to want, deploying
// copies of the first recorded AddPod template (scale-up) or gracefully
// stopping the highest-index active pods (scale-down). Rolling pod updates
// reduce to ScalePods steps under the reconciler's rate limit.
func (c *Cluster) ScalePods(node, want int) error {
	m, err := c.memberAt(node)
	if err != nil {
		return err
	}
	if want < 0 {
		return fmt.Errorf("cluster: pod count %d must be >= 0: %w", want, errs.BadConfig)
	}
	if m.state == memberRemoved {
		return fmt.Errorf("cluster: node %d is removed: %w", node, errs.BadState)
	}
	// Pod deploys and stops mutate shard-owned state.
	c.syncShards()
	for m.ActivePods() < want {
		if len(c.podCfgs) == 0 {
			return fmt.Errorf("cluster: no pod template recorded (AddPod first): %w", errs.BadState)
		}
		tmpl := c.podCfgs[0]
		tmpl.Spec.Name = fmt.Sprintf("%s-s%d", tmpl.Spec.Name, len(m.Node.Pods()))
		if _, err := m.Node.AddPod(tmpl); err != nil {
			return err
		}
	}
	for m.ActivePods() > want {
		pods := m.Node.Pods()
		victim := -1
		for pi := len(pods) - 1; pi >= 0; pi-- {
			if pods[pi].State() == "active" {
				victim = pi
				break
			}
		}
		if victim < 0 {
			break
		}
		if err := m.Node.InjectPodCrash(victim, true, foreverDuration); err != nil {
			return err
		}
	}
	return nil
}

// SetNodeFlowBackend swaps member node's flow-table backend in place (see
// core.Node.SetFlowBackend) — one member of a rolling config update.
func (c *Cluster) SetNodeFlowBackend(node int, name string) error {
	m, err := c.memberAt(node)
	if err != nil {
		return err
	}
	if m.state == memberRemoved {
		return fmt.Errorf("cluster: node %d is removed: %w", node, errs.BadState)
	}
	// The swap rebuilds shard-owned steering state.
	c.syncShards()
	return m.Node.SetFlowBackend(name)
}

// SwitchModel returns the shared uplink switch of the proxied BGP fabric
// (nil under Config.BGP "sim").
func (c *Cluster) SwitchModel() *bgp.Switch { return c.switchModel }

// Controller is an attached control loop (controlplane.Reconciler); the
// cluster only knows enough to surface it in reports and hand it back to
// callers that built the cluster through the facade.
type Controller interface {
	// Summary renders a deterministic one-line state summary.
	Summary() string
}

// AttachController registers the cluster's control loop. One controller at
// a time; attaching replaces the previous one.
func (c *Cluster) AttachController(ctrl Controller) { c.controller = ctrl }

// Controller returns the attached control loop (nil when none).
func (c *Cluster) Controller() Controller { return c.controller }

// eligible reports whether the switch would ECMP traffic to member i: the
// route must be advertised (BGP view) and not administratively withdrawn.
// Crash state deliberately does not factor in — the switch cannot see a
// crash until BFD withdraws the route, which is where the bounded
// detection-window loss comes from.
func (c *Cluster) eligible(i int) bool {
	m := c.members[i]
	if c.Engine.Now() < m.adminUntil {
		return false
	}
	return m.Node.Uplink().RouteUp()
}

// flowHash is the ECMP key: tenant and five-tuple, so a flow is node-affine.
func flowHash(f workload.Flow) uint64 {
	return uint64(f.VNI)<<32 ^ uint64(f.Tuple.Hash())
}

// Route reports where flow f lands without injecting: its ring home and
// the eligible owner that would receive it now (-1 when none).
func (c *Cluster) Route(f workload.Flow) (home, owner int) {
	return c.ring.lookup(flowHash(f), c.eligibleFn)
}

// Inject sprays one packet through ECMP into the owning member's ingress
// pod. Packets with no eligible member are dropped at the switch. On a
// sharded cluster the routing decision and ECMP counters happen here on
// the control clock (eligibility is frozen below the lookahead horizon, so
// the decision is exact), while the pod pipeline work is buffered into the
// owning shard's mailbox and executed by the shard worker.
func (c *Cluster) Inject(f workload.Flow, bytes int) {
	c.Sprayed++
	home, owner := c.ring.lookup(flowHash(f), c.eligibleFn)
	if owner < 0 {
		c.Drops++
		return
	}
	if owner != home {
		c.Remapped++
	}
	m := c.members[owner]
	m.Rx++
	pods := m.Node.Pods()
	if len(pods) == 0 {
		c.Drops++
		return
	}
	if c.sharded != nil {
		c.post(m, f, bytes)
		return
	}
	// Without a flow-table backend, ingress lands on pod 0 (further pods are
	// upgrade/crash siblings reached via the node's redirect machinery); with
	// one, the backend steers each flow to its pinned pod.
	m.Node.Ingress(f, bytes)
}

// Sink adapts the cluster to a workload.Source sink.
func (c *Cluster) Sink() func(workload.Flow, int) {
	return func(f workload.Flow, bytes int) { c.Inject(f, bytes) }
}

// RunFor advances the cluster's virtual clock: the shared engine on the
// legacy path, the full epoch protocol (control plus all shards, in
// parallel) when sharded.
func (c *Cluster) RunFor(d sim.Duration) {
	c.RunUntil(c.Engine.Now().Add(d))
}

// RunUntil advances the cluster to exactly deadline. With SnapshotEvery
// set, the advance is sliced at timeline tick boundaries: every engine is
// driven to quiescence at exactly the tick time (an epoch barrier under
// the sharded protocol — see DESIGN.md §14) before the sampler reads, so
// the recorded series are byte-identical at any shard count and any
// dispatch burst size. Slicing is semantically free: RunUntil(a) then
// RunUntil(b) executes the identical event schedule as RunUntil(b).
func (c *Cluster) RunUntil(deadline sim.Time) {
	if c.cfg.SnapshotEvery > 0 && c.timeline == nil {
		c.armTimeline()
	}
	if c.timeline != nil {
		for c.timeline.Next() <= deadline {
			tick := c.timeline.Next()
			c.runEnginesUntil(tick)
			c.timeline.Sample(tick)
		}
	}
	c.runEnginesUntil(deadline)
}

// runEnginesUntil drives the underlying engine(s) to quiescence at exactly
// deadline.
func (c *Cluster) runEnginesUntil(deadline sim.Time) {
	if c.sharded != nil {
		c.sharded.RunUntil(deadline)
		return
	}
	c.Engine.RunUntil(deadline)
}

// Timeline returns the periodic telemetry sampler, or nil when
// Config.SnapshotEvery is zero or the cluster has not run yet.
func (c *Cluster) Timeline() *metrics.Timeline { return c.timeline }

// armTimeline builds the sampler over a dedicated bounded registry — the
// cluster-level aggregates — rather than the full RegisterMetrics set,
// whose per-node series would make a 1000-node timeline O(nodes) columns
// wide per tick.
//
// Every sampled value is switch-plane (counted at injection time) or
// control-plane (BFD/uplink timer) state. Egress-side state — pod Tx,
// completion latency histograms — is deliberately excluded: burst-batched
// dispatch preserves end-of-run totals bit for bit but may move a
// packet's completion across a tick boundary, so per-tick windows over
// egress counters would break the burst-size half of the byte-identity
// contract. The injection schedule and routing decisions are identical
// under every execution strategy, so these series are not.
func (c *Cluster) armTimeline() {
	reg := metrics.New()
	reg.Counter("albatross_cluster_sprayed_packets_total",
		"Ingress packets offered to the ECMP layer.",
		func() uint64 { return c.Sprayed })
	reg.Counter("albatross_cluster_admitted_packets_total",
		"Packets the ToR forwarded to a live member (sprayed minus switch drops and blackhole loss).",
		func() uint64 { return c.Sprayed - c.Drops - c.Blackholed() })
	reg.Counter("albatross_cluster_remapped_packets_total",
		"Packets delivered away from their ring home (failover spillover).",
		func() uint64 { return c.Remapped })
	reg.Counter("albatross_cluster_switch_drops_total",
		"Packets with no eligible member.",
		func() uint64 { return c.Drops })
	reg.Counter("albatross_cluster_blackholed_packets_total",
		"Packets lost at dead links (BFD detection-window loss).",
		func() uint64 { return c.Blackholed() })
	reg.Gauge("albatross_cluster_eligible_members",
		"Members the switch would currently ECMP traffic to.",
		func() float64 {
			n := 0
			for i := range c.members {
				if c.eligible(i) {
					n++
				}
			}
			return float64(n)
		})
	tl := metrics.NewTimeline(reg, c.cfg.SnapshotEvery)
	// Availability: per-tick admitted/sprayed; an idle tick is fully
	// available (nothing offered, nothing lost).
	tl.AddRatio("availability",
		"albatross_cluster_admitted_packets_total",
		"albatross_cluster_sprayed_packets_total", 1)
	tl.Start(c.Engine.Now())
	c.timeline = tl
}

// Shards returns the effective shard count (1 = legacy shared engine).
func (c *Cluster) Shards() int { return c.shards }

// Pending returns the live scheduled-event count across every engine in
// the cluster. Safe to call from any goroutine mid-run: sharded engines
// expose the count through atomic mirrors.
func (c *Cluster) Pending() int {
	if c.sharded != nil {
		return c.sharded.Pending()
	}
	return c.Engine.Pending()
}

// InjectNodeFault is the unified node-level fault entry point: it fires
// kind (KindNodeCrash, KindNodeDrain, or KindUplinkWithdraw) against member
// node. The reconciler, scenario runner, and fault injector all route
// through here. Implements faults.NodeTarget.
func (c *Cluster) InjectNodeFault(kind faults.Kind, node int, d sim.Duration) error {
	switch kind {
	case faults.KindNodeCrash:
		return c.injectNodeCrash(node, d)
	case faults.KindNodeDrain:
		return c.injectNodeDrain(node, d)
	case faults.KindUplinkWithdraw:
		return c.injectUplinkWithdraw(node, d)
	default:
		return fmt.Errorf("cluster: %v is not a node-level fault kind: %w", kind, errs.BadConfig)
	}
}

// InjectNodeCrash kills member node abruptly.
//
// Deprecated: use InjectNodeFault(faults.KindNodeCrash, node, d).
func (c *Cluster) InjectNodeCrash(node int, d sim.Duration) error {
	return c.InjectNodeFault(faults.KindNodeCrash, node, d)
}

// InjectNodeDrain gray-upgrades member node.
//
// Deprecated: use InjectNodeFault(faults.KindNodeDrain, node, d).
func (c *Cluster) InjectNodeDrain(node int, d sim.Duration) error {
	return c.InjectNodeFault(faults.KindNodeDrain, node, d)
}

// InjectUplinkWithdraw administratively withdraws member node's route.
//
// Deprecated: use InjectNodeFault(faults.KindUplinkWithdraw, node, d).
func (c *Cluster) InjectUplinkWithdraw(node int, d sim.Duration) error {
	return c.InjectNodeFault(faults.KindUplinkWithdraw, node, d)
}

// injectNodeCrash kills member node abruptly: the uplink goes down (BFD
// detects after its probe window; arrivals meanwhile are blackholed at the
// dead link) and every pod crashes. The node recovers after d (0 = never):
// pods restart, BFD comes back, and the route re-advertises, restoring the
// exact pre-crash ECMP assignment. On the proxied uplink, detection and
// re-advertisement flow through real withdraw/announce UPDATEs into the
// switch RIB via the session's own BFD hooks — no admin mirroring needed.
func (c *Cluster) injectNodeCrash(node int, d sim.Duration) error {
	m, err := c.memberAt(node)
	if err != nil {
		return err
	}
	if m.state == memberCrashed || m.state == memberRemoved {
		return fmt.Errorf("cluster: node %d is %v: %w", node, m.state, errs.BadState)
	}
	if d <= 0 {
		d = foreverDuration
	}
	// The crash mutates shard-owned state (the uplink session, pod
	// lifecycles): bring every shard to the control clock first so the
	// mutation interleaves exactly as on the shared engine.
	c.syncShards()
	m.state = memberCrashed
	m.Crashes++
	m.Node.Uplink().InjectFlap(d)
	for pi, pr := range m.Node.Pods() {
		if pr.State() == "active" {
			if err := m.Node.InjectPodCrash(pi, false, d); err != nil {
				return err
			}
		}
	}
	c.Engine.After(d, func() {
		if m.state == memberCrashed {
			m.state = memberActive
		}
	})
	return nil
}

// injectNodeDrain gray-upgrades member node: its route is withdrawn
// administratively *first* (make-before-break — new flows re-ECMP to
// survivors instantly, zero loss), its pods drain in place so in-flight
// packets complete, and the node rejoins the ECMP group after d.
func (c *Cluster) injectNodeDrain(node int, d sim.Duration) error {
	m, err := c.memberAt(node)
	if err != nil {
		return err
	}
	if d <= 0 {
		return fmt.Errorf("cluster: node drain needs a positive duration: %w", errs.BadConfig)
	}
	if m.state != memberActive {
		return fmt.Errorf("cluster: node %d is %v, not active: %w", node, m.state, errs.BadState)
	}
	// Pod drains arm timers on the owning shard's engine.
	c.syncShards()
	m.state = memberDraining
	m.Drains++
	c.adminWithdraw(m, d)
	for pi, pr := range m.Node.Pods() {
		if pr.State() == "active" {
			if err := m.Node.InjectPodCrash(pi, true, d); err != nil {
				return err
			}
		}
	}
	c.Engine.After(d, func() {
		if m.state == memberDraining {
			m.state = memberActive
		}
	})
	return nil
}

// injectUplinkWithdraw administratively withdraws member node's route for d
// without touching its pods (drain-the-uplink). Eligibility only moves
// adminUntil, a control-plane time threshold the ECMP layer evaluates
// exactly at each arrival's own timestamp; on the proxied uplink the
// withdrawal is additionally mirrored through the real fabric (which
// synchronizes the shards — the session's speakers are shard-owned).
func (c *Cluster) injectUplinkWithdraw(node int, d sim.Duration) error {
	m, err := c.memberAt(node)
	if err != nil {
		return err
	}
	if d <= 0 {
		return fmt.Errorf("cluster: uplink withdraw needs a positive duration: %w", errs.BadConfig)
	}
	if m.state == memberRemoved {
		return fmt.Errorf("cluster: node %d is removed: %w", node, errs.BadState)
	}
	c.adminWithdraw(m, d)
	return nil
}

// adminWithdraw extends m's administrative withdrawal to now+d and mirrors
// it through the proxied fabric: the VIP is withdrawn from the switch RIB
// now and re-advertised when the admin window expires. Eligibility itself
// stays the adminUntil threshold (evaluated per arrival timestamp), so the
// mirror never perturbs packet-path decisions — it keeps the observable
// RIB state truthful.
func (c *Cluster) adminWithdraw(m *Member, d sim.Duration) {
	if until := c.Engine.Now().Add(d); until > m.adminUntil {
		m.adminUntil = until
	}
	if m.proxied == nil {
		return
	}
	// The mirror pumps shard-owned speakers: shards must be quiescent at
	// the control clock.
	c.syncShards()
	m.proxied.SetAdmin(false)
	c.Engine.At(m.adminUntil, func() {
		// A later withdrawal may have extended the window (its own timer
		// covers the restore) and a removal is permanent.
		if c.Engine.Now() >= m.adminUntil && m.state != memberRemoved {
			c.syncShards()
			m.proxied.SetAdmin(true)
		}
	})
}

// Blackholed sums packets lost at dead links across members (the BFD
// detection-window loss).
func (c *Cluster) Blackholed() uint64 {
	var total uint64
	for _, m := range c.members {
		total += m.Node.Blackholed
	}
	return total
}

// FaultLog returns the fired-fault log of the cluster's injector (nil when
// no plan was armed).
func (c *Cluster) FaultLog() []faults.Event {
	if c.injector == nil {
		return nil
	}
	return c.injector.Log()
}

// Report renders the cluster-level view followed by each member node's
// report. The output is deterministic for a fixed seed and plan.
func (c *Cluster) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "albatross cluster @ %v virtual, %d nodes: sprayed=%d remapped=%d switch-drops=%d blackholed=%d\n",
		c.Engine.Now(), len(c.members), c.Sprayed, c.Remapped, c.Drops, c.Blackholed())
	for _, m := range c.members {
		fmt.Fprintf(&b, "node %d [%s] rx=%d drains=%d crashes=%d route-up=%v\n",
			m.Index, m.state, m.Rx, m.Drains, m.Crashes, c.eligible(m.Index))
		b.WriteString(m.Node.Report())
	}
	return b.String()
}

// Close closes every member node.
func (c *Cluster) Close() error {
	var errAll error
	for _, m := range c.members {
		if err := m.Node.Close(); err != nil {
			errAll = err
		}
	}
	return errAll
}

// RegisterMetrics registers every member node's metric series into reg,
// each labeled node=<index>, plus the cluster-level ECMP counters.
func (c *Cluster) RegisterMetrics(reg *metrics.Registry) {
	reg.Counter("albatross_cluster_sprayed_packets_total",
		"Ingress packets offered to the ECMP layer.",
		func() uint64 { return c.Sprayed })
	reg.Counter("albatross_cluster_remapped_packets_total",
		"Packets delivered away from their ring home (failover spillover).",
		func() uint64 { return c.Remapped })
	reg.Counter("albatross_cluster_switch_drops_total",
		"Packets with no eligible member.",
		func() uint64 { return c.Drops })
	for _, m := range c.members {
		label := metrics.L("node", strconv.Itoa(m.Index))
		m.Node.RegisterMetrics(reg, label)
		reg.Counter("albatross_cluster_member_rx_packets_total",
			"Packets ECMP delivered to the member.",
			func() uint64 { return m.Rx }, label)
	}
}

// Metrics builds a fresh registry over the cluster and snapshots it.
func (c *Cluster) Metrics() *metrics.Snapshot {
	reg := metrics.New()
	c.RegisterMetrics(reg)
	return reg.Snapshot()
}
