package cluster

import (
	"fmt"
	"hash/fnv"
	"strings"

	"albatross/internal/core"
	"albatross/internal/workload"
	"albatross/internal/workload/trace"
)

// Outcome renders the cluster's per-node outcome summary as a keyed-line
// report — the artifact trace.Diff compares across seeds, node counts, and
// fault plans. Every line is "key | values"; keys are stable across runs
// so the differ matches structurally, and every value is derived from the
// deterministic simulation state (no wall-clock, no map iteration).
//
// The report covers, per node: availability and uplink state, traffic and
// drop counters, flight-recorder tallies, per-stage conservation residuals
// (In − Out − Drops, zero once drained), per-stage residency quantiles,
// and end-to-end latency quantiles; plus cluster-level ECMP counters and a
// checksum of the full metrics export so *any* metric drift is caught even
// if no summarized line moves.
func (c *Cluster) Outcome() string {
	var b strings.Builder
	fmt.Fprintf(&b, "outcome albatross/v1 | nodes=%d t=%v\n", len(c.members), c.Engine.Now())
	fmt.Fprintf(&b, "cluster/traffic | sprayed=%d remapped=%d switch-drops=%d blackholed=%d\n",
		c.Sprayed, c.Remapped, c.Drops, c.Blackholed())

	for _, m := range c.members {
		id := fmt.Sprintf("node%d", m.Index)
		var restarts uint64
		for _, pr := range m.Node.Pods() {
			restarts += pr.Restarts
		}
		fmt.Fprintf(&b, "%s/avail | state=%s crashes=%d drains=%d restarts=%d\n",
			id, m.State(), m.Crashes, m.Drains, restarts)
		us := m.Node.Uplink().Stats()
		fmt.Fprintf(&b, "%s/uplink | route-up=%v flaps=%d detections=%d recoveries=%d downtime=%v\n",
			id, m.Node.Uplink().RouteUp(), us.Flaps, us.Detections, us.Recoveries, us.DownTime)

		agg := aggregatePods(m.Node.Pods())
		fmt.Fprintf(&b, "%s/traffic | ecmp-rx=%d rx=%d tx=%d redirected=%d drops[nic=%d queue=%d plb=%d service=%d header=%d rxloss=%d fault=%d crash=%d] node[blackholed=%d proxied=%d]\n",
			id, m.Rx, agg.rx, agg.tx, agg.redirected,
			agg.nicDrops, agg.queueDrops, agg.plbDrops, agg.serviceDrops, agg.headerDrops,
			agg.rxLost, agg.faultLost, agg.crashDrops, m.Node.Blackholed, m.Node.Proxied)
		fmt.Fprintf(&b, "%s/flight | sampled=%d dropped=%d timeouts=%d triggered=%d discarded=%d\n",
			id, agg.sampled, agg.frDrops, agg.frTimeouts, agg.frTriggered, agg.frDiscarded)

		for si, name := range core.StageNames() {
			st := agg.stages[si]
			fmt.Fprintf(&b, "%s/conserve/%s | residual=%d balanced=%v\n",
				id, name, int64(st.in)-int64(st.out)-int64(st.drops), st.in == st.out+st.drops)
		}
		for si, name := range core.StageNames() {
			fmt.Fprintf(&b, "%s/resid/%s | p50=%dns p99=%dns\n",
				id, name, agg.residP50[si], agg.residP99[si])
		}
		fmt.Fprintf(&b, "%s/latency | p50=%dns p99=%dns p999=%dns\n",
			id, agg.latP50, agg.latP99, agg.latP999)
	}

	prom := c.Metrics().Prometheus()
	sum := fnv.New64a()
	sum.Write([]byte(prom))
	fmt.Fprintf(&b, "metrics/fnv64a | %#016x bytes=%d\n", sum.Sum64(), len(prom))
	// With sampling enabled, fingerprint the timeline CSV too: the
	// byte_identity/replay_identity assertions compare Outcome strings, so
	// this one line extends their coverage to the full series export.
	if tl := c.Timeline(); tl != nil {
		ssum, n := tl.Checksum()
		fmt.Fprintf(&b, "series/fnv64a | %#016x bytes=%d ticks=%d\n", ssum, n, tl.Len())
	}
	return b.String()
}

// podAggregate sums one member's pod-level telemetry; multi-pod members
// (upgrade siblings) report as one node.
type podAggregate struct {
	rx, tx, redirected                           uint64
	nicDrops, queueDrops, plbDrops, serviceDrops uint64
	headerDrops, rxLost, faultLost, crashDrops   uint64
	sampled, frDrops, frTimeouts, frTriggered    uint64
	frDiscarded                                  uint64
	stages                                       [7]struct{ in, out, drops uint64 }
	residP50, residP99                           [7]int64
	latP50, latP99, latP999                      int64
}

func aggregatePods(pods []*core.PodRuntime) podAggregate {
	var a podAggregate
	for _, pr := range pods {
		a.rx += pr.Rx
		a.tx += pr.Tx
		a.redirected += pr.Redirected
		a.nicDrops += pr.NICDrops
		a.queueDrops += pr.QueueDrops
		a.plbDrops += pr.PLBDrops
		a.serviceDrops += pr.ServiceDrop
		a.headerDrops += pr.HeaderDrops
		a.rxLost += pr.RxLost
		a.faultLost += pr.FaultLost
		a.crashDrops += pr.CrashDrops
		fr := pr.Flight()
		a.sampled += fr.Sampled
		a.frDrops += fr.Drops
		a.frTimeouts += fr.Timeouts
		a.frTriggered += fr.Triggered
		a.frDiscarded += fr.Discarded
		for si, st := range pr.Stages() {
			a.stages[si].in += st.In
			a.stages[si].out += st.Out
			a.stages[si].drops += st.Drops
		}
	}
	// Quantiles come from the ingress pod (pod 0): siblings only carry
	// redirected spillover and would blur the node's residency signature.
	if len(pods) > 0 {
		resid := pods[0].StageResidency()
		for si := range resid {
			a.residP50[si] = resid[si].Quantile(0.50)
			a.residP99[si] = resid[si].Quantile(0.99)
		}
		a.latP50 = pods[0].Latency.Quantile(0.50)
		a.latP99 = pods[0].Latency.Quantile(0.99)
		a.latP999 = pods[0].Latency.Quantile(0.999)
	}
	return a
}

// RecordingSink returns an ingress sink that records every injection into
// rec — stamped with the ECMP owner the switch would pick at that instant
// — before spraying it into the cluster. Wrap a workload source's sink
// with it to capture a replayable schedule of a live cluster run.
func (c *Cluster) RecordingSink(rec *trace.Recorder) func(workload.Flow, int) {
	return func(f workload.Flow, bytes int) {
		_, owner := c.Route(f)
		rec.Record(f, bytes, owner, 0)
		c.Inject(f, bytes)
	}
}

// ReplayTrace drives the cluster's ECMP ingress from a saved schedule: the
// trace's events are injected at their recorded virtual-time offsets
// (relative to now) as the engine runs. The recorded node/pod targets are
// deliberately ignored on ingress — routing is re-derived from the ring,
// so the same trace replayed against a different node count or fault plan
// shows how the *deployment* changes the outcome of the *same* traffic.
func (c *Cluster) ReplayTrace(t *trace.Trace) (*trace.Replayer, error) {
	return trace.Replay(c.Engine, t, c.Sink())
}
