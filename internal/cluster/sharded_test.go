package cluster

import (
	"errors"
	"sync"
	"testing"

	"albatross/internal/core"
	"albatross/internal/errs"
	"albatross/internal/faults"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
	"albatross/internal/workload"
	"albatross/internal/workload/trace"
)

// runSharded builds an 8-node cluster at the given shard count, drives it
// with a fixed-seed source under the given fault plan, and returns the
// outcome report plus the Prometheus export — the two documents the
// sharding tentpole promises are byte-identical at any shard count.
func runSharded(t *testing.T, shards int, plan *faults.Plan) (string, string) {
	t.Helper()
	c, err := New(Config{Nodes: 8, Seed: testSeed, Faults: plan, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	wf := workload.GenerateFlows(2000, 100, testSeed)
	if err := c.AddPod(core.PodConfig{
		Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: pod.ModePLB},
		Flows: workload.ServiceFlows(wf, 0),
	}); err != nil {
		t.Fatal(err)
	}
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e5), Seed: testSeed + 1, Sink: c.Sink()}
	if err := src.Start(c.Engine); err != nil {
		t.Fatal(err)
	}
	c.RunFor(200 * sim.Millisecond)
	src.Stop()
	c.RunFor(5 * sim.Millisecond)
	return c.Outcome(), c.Metrics().Prometheus()
}

// shardCountScenarios are the fault plans the byte-identity property must
// hold under: every node-granularity kind, pod-granularity kinds routed
// through the synced target, and a mixed schedule that interleaves them.
var shardCountScenarios = []struct {
	name string
	plan func() *faults.Plan
}{
	{"healthy", func() *faults.Plan { return nil }},
	{"node-crash", func() *faults.Plan {
		return (&faults.Plan{}).NodeCrash(30*sim.Millisecond, 3, 100*sim.Millisecond)
	}},
	{"node-drain", func() *faults.Plan {
		return (&faults.Plan{}).NodeDrain(30*sim.Millisecond, 5, 80*sim.Millisecond)
	}},
	{"uplink-withdraw", func() *faults.Plan {
		return (&faults.Plan{}).UplinkWithdraw(40*sim.Millisecond, 0, 60*sim.Millisecond)
	}},
	{"mixed", func() *faults.Plan {
		p := (&faults.Plan{}).
			NodeCrash(30*sim.Millisecond, 1, 90*sim.Millisecond).
			UplinkWithdraw(50*sim.Millisecond, 6, 50*sim.Millisecond)
		// Pod-granularity faults on specific members: the builders do not
		// take a node index, so set it directly.
		p.Faults = append(p.Faults,
			faults.Fault{Kind: faults.KindBGPFlap, At: 60 * sim.Millisecond, Node: 2,
				Duration: 40 * sim.Millisecond},
			faults.Fault{Kind: faults.KindCoreFail, At: 70 * sim.Millisecond, Node: 4,
				Core: 1, Duration: 30 * sim.Millisecond},
			faults.Fault{Kind: faults.KindPodCrash, At: 80 * sim.Millisecond, Node: 7,
				Duration: 50 * sim.Millisecond},
		)
		return p
	}},
}

// TestShardCountInvariance is the tentpole property test: for every fault
// scenario, shards ∈ {2, 4, 8} produce byte-identical outcome reports and
// metrics exports to the single shared engine, and a repeat run at the same
// shard count is identical to itself.
func TestShardCountInvariance(t *testing.T) {
	for _, sc := range shardCountScenarios {
		t.Run(sc.name, func(t *testing.T) {
			baseOut, baseProm := runSharded(t, 1, sc.plan())
			for _, k := range []int{2, 4, 8} {
				out, prom := runSharded(t, k, sc.plan())
				if out != baseOut {
					t.Fatalf("shards=%d outcome differs from shards=1:\n%s", k,
						trace.Diff("shards=1", baseOut, "sharded", out).String())
				}
				if prom != baseProm {
					t.Fatalf("shards=%d metrics export differs from shards=1", k)
				}
			}
			// Repeat-identity: a second run at shards=4 reproduces the
			// same bytes (the k-loop above already ran shards=4 once).
			out2, prom2 := runSharded(t, 4, sc.plan())
			if out2 != baseOut || prom2 != baseProm {
				t.Fatal("repeat run at shards=4 not byte-identical")
			}
		})
	}
}

// TestShardedRecordReplay runs record/replay across shard counts: a trace
// recorded on the single shared engine replays byte-identically on a
// sharded cluster, and recording itself does not perturb the run.
func TestShardedRecordReplay(t *testing.T) {
	build := func(shards int) (*Cluster, []workload.Flow) {
		c, err := New(Config{Nodes: 8, Seed: testSeed, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		wf := workload.GenerateFlows(1000, 50, testSeed)
		if err := c.AddPod(core.PodConfig{
			Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 4, CtrlCores: 1, Mode: pod.ModePLB},
			Flows: workload.ServiceFlows(wf, 0),
		}); err != nil {
			t.Fatal(err)
		}
		return c, wf
	}

	// Record on shards=1.
	rc, wf := build(1)
	rec := trace.NewRecorder(rc.Engine)
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(1e5), Seed: testSeed + 1,
		Sink: rc.RecordingSink(rec)}
	if err := src.Start(rc.Engine); err != nil {
		t.Fatal(err)
	}
	rc.RunFor(100 * sim.Millisecond)
	src.Stop()
	rc.RunFor(5 * sim.Millisecond)
	recorded := rc.Outcome()

	for _, k := range []int{1, 4, 8} {
		pc, _ := build(k)
		rp, err := pc.ReplayTrace(rec.Trace())
		if err != nil {
			t.Fatal(err)
		}
		pc.RunFor(105 * sim.Millisecond)
		if !rp.Done() {
			t.Fatalf("shards=%d replay injected %d of %d events", k, rp.Injected, len(rec.Trace().Events))
		}
		if out := pc.Outcome(); out != recorded {
			t.Fatalf("shards=%d replay outcome differs from recording:\n%s", k,
				trace.Diff("recorded", recorded, "replayed", out).String())
		}
	}
}

// TestShardAssignment pins the canonical member→shard mapping and the
// Shards accessor, including the auto (0) and clamped (k > nodes) cases.
func TestShardAssignment(t *testing.T) {
	c, err := New(Config{Nodes: 5, Seed: testSeed, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", c.Shards())
	}
	for _, m := range c.Members() {
		if want := trace.ShardOfNode(m.Index, 3); m.Shard() != want {
			t.Fatalf("member %d on shard %d, want %d", m.Index, m.Shard(), want)
		}
	}
	// Shard count never exceeds the node count.
	c2, err := New(Config{Nodes: 2, Seed: testSeed, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Shards() > 2 {
		t.Fatalf("Shards() = %d, want <= nodes", c2.Shards())
	}
	// Auto sizing picks at least one shard.
	c3, err := New(Config{Nodes: 3, Seed: testSeed, Shards: 0})
	if err != nil {
		t.Fatal(err)
	}
	if c3.Shards() < 1 {
		t.Fatalf("auto Shards() = %d", c3.Shards())
	}
	if _, err := New(Config{Nodes: 3, Seed: testSeed, Shards: -1}); !errors.Is(err, errs.BadConfig) {
		t.Fatalf("negative shards accepted: %v", err)
	}
}

// TestShardedPendingConcurrent reads Cluster.Pending from a spectator
// goroutine while a sharded run advances — the satellite-1 contract that
// progress is observable cross-shard without racing (fails under -race if
// the atomic mirrors regress).
func TestShardedPendingConcurrent(t *testing.T) {
	c, err := New(Config{Nodes: 4, Seed: testSeed, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	wf := workload.GenerateFlows(500, 50, testSeed)
	if err := c.AddPod(core.PodConfig{
		Spec:  pod.Spec{Name: "gw", Service: service.VPCVPC, DataCores: 2, CtrlCores: 1, Mode: pod.ModePLB},
		Flows: workload.ServiceFlows(wf, 0),
	}); err != nil {
		t.Fatal(err)
	}
	src := &workload.Source{Flows: wf, Rate: workload.ConstantRate(2e5), Seed: testSeed + 1, Sink: c.Sink()}
	if err := src.Start(c.Engine); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if c.Pending() < 0 {
					t.Error("negative pending count")
					return
				}
			}
		}
	}()
	c.RunFor(100 * sim.Millisecond)
	src.Stop()
	c.RunFor(5 * sim.Millisecond)
	close(stop)
	wg.Wait()
	if c.Pending() == 0 {
		t.Fatal("pending = 0 with BFD probe grids armed")
	}
}
