package cluster

import (
	"strings"
	"testing"

	"albatross/internal/metrics"
	"albatross/internal/sim"
)

func TestClusterMetricsRollup(t *testing.T) {
	c, wf := testCluster(t, 3, nil)
	for i := 0; i < 5000; i++ {
		c.Inject(wf[i%len(wf)], 512)
		if i%256 == 0 {
			c.RunFor(10 * sim.Microsecond)
		}
	}
	c.RunFor(5 * sim.Millisecond)

	snap := c.Metrics()
	if v, ok := snap.Find("albatross_cluster_sprayed_packets_total"); !ok || v.Value != float64(c.Sprayed) {
		t.Fatalf("sprayed metric = %+v ok=%v, want %d", v, ok, c.Sprayed)
	}
	// Every member contributes node-labeled series, and the per-member rx
	// counters sum to the spray total (healthy cluster: no switch drops).
	var rxSum float64
	for _, m := range c.Members() {
		v, ok := snap.Find("albatross_cluster_member_rx_packets_total",
			metrics.L("node", string(rune('0'+m.Index))))
		if !ok {
			t.Fatalf("missing member rx series for node %d", m.Index)
		}
		rxSum += v.Value
		if _, ok := snap.Find("albatross_pod_rx_packets_total",
			metrics.L("node", string(rune('0'+m.Index))),
			metrics.L("pod", "gw")); !ok {
			t.Fatalf("missing pod series for node %d", m.Index)
		}
	}
	if rxSum != float64(c.Sprayed) {
		t.Fatalf("member rx sum %v != sprayed %d", rxSum, c.Sprayed)
	}
	// Exposition includes node labels and renders deterministically.
	p1, p2 := snap.Prometheus(), c.Metrics().Prometheus()
	if p1 != p2 {
		t.Fatal("cluster exposition differs between back-to-back snapshots")
	}
	if !strings.Contains(p1, `node="2"`) {
		t.Fatal("exposition missing node label")
	}
}
