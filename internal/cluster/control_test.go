package cluster

import (
	"errors"
	"testing"

	"albatross/internal/errs"
	"albatross/internal/faults"
	"albatross/internal/sim"
)

func TestWeightedRingCanaryShare(t *testing.T) {
	c, wf := testCluster(t, 3, nil)
	before := ownersOf(c, wf)

	// Canary node 2 at 10% weight: it should draw far less than a full
	// member's 1/3 share.
	if err := c.SetWeight(2, 0.1); err != nil {
		t.Fatal(err)
	}
	share := 0
	for _, f := range wf {
		if _, owner := c.Route(f); owner == 2 {
			share++
		}
	}
	frac := float64(share) / float64(len(wf))
	if frac <= 0 || frac > 0.15 {
		t.Fatalf("canary at weight 0.1 owns %.3f of flows; want small positive share", frac)
	}

	// Full weight restores the exact original assignment: vnode positions
	// depend only on (member, ordinal).
	if err := c.SetWeight(2, 1.0); err != nil {
		t.Fatal(err)
	}
	after := ownersOf(c, wf)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("flow %d moved after weight round-trip: %d → %d", i, before[i], after[i])
		}
	}

	if err := c.SetWeight(0, -1); !errors.Is(err, errs.BadConfig) {
		t.Fatalf("negative weight: %v", err)
	}
	m, err := c.MemberAt(2)
	if err != nil || m.Weight() != 1.0 {
		t.Fatalf("MemberAt/Weight: %v %v", err, m)
	}
}

func TestRemoveNodeRetiresSlot(t *testing.T) {
	c, wf := testCluster(t, 3, nil)
	before := ownersOf(c, wf)

	if err := c.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i, f := range wf {
		_, owner := c.Route(f)
		if owner == 1 {
			t.Fatal("flow routed to a removed member")
		}
		if owner != before[i] {
			moved++
			if before[i] != 1 {
				t.Fatalf("flow %d moved but its owner %d was not removed", i, before[i])
			}
		}
	}
	if moved == 0 {
		t.Fatal("removal moved no flows")
	}
	if m, _ := c.MemberAt(1); m.State() != "removed" {
		t.Fatalf("state = %q, want removed", m.State())
	}
	// Terminal: no resurrection, no further faults.
	if err := c.RemoveNode(1); !errors.Is(err, errs.BadState) {
		t.Fatalf("double remove: %v", err)
	}
	if err := c.InjectNodeFault(faults.KindNodeDrain, 1, sim.Second); !errors.Is(err, errs.BadState) {
		t.Fatalf("drain on removed: %v", err)
	}
	// The rest of the cluster keeps serving.
	c.RunFor(10 * sim.Millisecond)
	for _, f := range wf[:50] {
		c.Inject(f, 100)
	}
	c.RunFor(10 * sim.Millisecond)
	if c.Drops != 0 {
		t.Fatalf("drops after removal: %d", c.Drops)
	}
}

func TestSetNodeAdminHoldsUntilRestored(t *testing.T) {
	c, _ := testCluster(t, 3, nil)
	if err := c.SetNodeAdmin(1, false); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * sim.Second)
	if c.eligible(1) {
		t.Fatal("admin-down member eligible after 5s (should hold indefinitely)")
	}
	if err := c.SetNodeAdmin(1, true); err != nil {
		t.Fatal(err)
	}
	if !c.eligible(1) {
		t.Fatal("admin-up member not eligible")
	}
}

// The proxied fabric must mirror cluster-level admin and crash transitions
// into the shared switch RIB: one prefix per live advertised member.
func TestClusterSwitchRIBMirror(t *testing.T) {
	c, _ := testCluster(t, 3, nil)
	sw := c.SwitchModel()
	if sw == nil {
		t.Fatal("proxy fabric should be the default")
	}
	if got := sw.RIB().Len(); got != 3 {
		t.Fatalf("initial RIB prefixes = %d, want 3", got)
	}
	if got := sw.PeerCount(); got != 3 {
		t.Fatalf("switch peers = %d, want 3 (one proxy per member)", got)
	}

	// Administrative drain: withdrawn now, re-advertised at expiry.
	if err := c.InjectNodeFault(faults.KindUplinkWithdraw, 0, 500*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := sw.RIB().Len(); got != 2 {
		t.Fatalf("RIB prefixes during withdraw = %d, want 2", got)
	}
	c.RunFor(600 * sim.Millisecond)
	if got := sw.RIB().Len(); got != 3 {
		t.Fatalf("RIB prefixes after withdraw expiry = %d, want 3", got)
	}

	// Crash: the withdraw flows through BFD detection, the re-advertise
	// through the 1s re-establish delay.
	if err := c.InjectNodeFault(faults.KindNodeCrash, 2, 400*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	c.RunFor(300 * sim.Millisecond)
	if got := sw.RIB().Len(); got != 2 {
		t.Fatalf("RIB prefixes after BFD detection = %d, want 2", got)
	}
	c.RunFor(2 * sim.Second)
	if got := sw.RIB().Len(); got != 3 {
		t.Fatalf("RIB prefixes after crash recovery = %d, want 3", got)
	}

	for _, m := range c.Members() {
		if m.Proxied().Desyncs != 0 {
			t.Fatalf("member %d fabric desyncs: %d", m.Index, m.Proxied().Desyncs)
		}
	}
}

func TestScalePodsRolling(t *testing.T) {
	c, _ := testCluster(t, 2, nil)
	m, _ := c.MemberAt(0)
	if got := m.ActivePods(); got != 1 {
		t.Fatalf("initial pods = %d", got)
	}
	if err := c.ScalePods(0, 3); err != nil {
		t.Fatal(err)
	}
	if got := m.ActivePods(); got != 3 {
		t.Fatalf("scaled-up pods = %d, want 3", got)
	}
	if err := c.ScalePods(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := m.ActivePods(); got != 1 {
		t.Fatalf("scaled-down pods = %d, want 1", got)
	}
	if err := c.ScalePods(0, -1); !errors.Is(err, errs.BadConfig) {
		t.Fatalf("negative count: %v", err)
	}
}

func TestInjectNodeFaultRejectsPodKinds(t *testing.T) {
	c, _ := testCluster(t, 2, nil)
	if err := c.InjectNodeFault(faults.KindPodCrash, 0, sim.Second); !errors.Is(err, errs.BadConfig) {
		t.Fatalf("pod-level kind through node entry point: %v", err)
	}
	// The deprecated wrappers stay functional.
	if err := c.InjectUplinkWithdraw(0, 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if c.eligible(0) {
		t.Fatal("withdraw wrapper did not take effect")
	}
}
