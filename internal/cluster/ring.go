package cluster

import "sort"

// ring is the consistent-hash ECMP table: every member owns vnodesPerMember
// pseudo-random points on a 64-bit ring, and a flow hash maps to the first
// point clockwise from it. Flow affinity follows directly (the same hash
// always lands on the same point), and membership churn has bounded blast
// radius: removing a member only remaps the hash ranges its own points
// covered — in expectation 1/N of flows, ≤ 2/N with the vnode counts used
// here — instead of reshuffling everything the way modular hashing would.
//
// Failover is handled at lookup time, not by rebuilding the ring: points of
// ineligible members (route withdrawn, crashed, admin down) are walked over
// to the next eligible point. Keeping dead members' points in place means
// recovery restores the exact pre-failure assignment.

// ringPoint is one vnode: a position on the hash ring owned by a member.
type ringPoint struct {
	hash   uint64
	member int32
}

type ring struct {
	points []ringPoint // sorted by hash
	vnodes int
}

// mix64 is a splitmix64-style finalizer used to place vnodes and spread
// flow hashes around the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func newRing(vnodesPerMember int) *ring {
	return &ring{vnodes: vnodesPerMember}
}

// add inserts member's vnodes. Point positions depend only on the member
// index and vnode ordinal, so rings built with the same membership are
// identical regardless of construction order.
func (r *ring) add(member int) {
	for v := 0; v < r.vnodes; v++ {
		h := mix64(uint64(member)<<32 | uint64(v) | 0xec3f<<48)
		r.points = append(r.points, ringPoint{hash: h, member: int32(member)})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
}

// lookup maps flow hash h to (home, owner): home is the member the ring
// assigns with full membership; owner is the first eligible member walking
// clockwise from h (-1 when no member is eligible). home == owner in the
// healthy case; they differ exactly for the flows remapped by a failure.
func (r *ring) lookup(h uint64, eligible func(member int) bool) (home, owner int) {
	n := len(r.points)
	if n == 0 {
		return -1, -1
	}
	h = mix64(h)
	i := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	if i == n {
		i = 0 // wrap
	}
	home = int(r.points[i].member)
	for k := 0; k < n; k++ {
		p := r.points[(i+k)%n]
		if eligible(int(p.member)) {
			return home, int(p.member)
		}
	}
	return home, -1
}
