package cluster

import (
	"math"
	"sort"
)

// ring is the consistent-hash ECMP table: every member owns a number of
// pseudo-random points on a 64-bit ring, and a flow hash maps to the first
// point clockwise from it. Flow affinity follows directly (the same hash
// always lands on the same point), and membership churn has bounded blast
// radius: removing a member only remaps the hash ranges its own points
// covered — in expectation 1/N of flows, ≤ 2/N with the vnode counts used
// here — instead of reshuffling everything the way modular hashing would.
//
// Members are weighted by vnode count: weight w owns round(w×vnodes)
// points (min 1 while w > 0), so a canary at weight 0.1 draws ~10% of a
// full member's share. Point positions depend only on (member, ordinal) —
// a member at count c owns exactly the first c of its full point sequence
// — so shifting a weight moves only the hash ranges of the points added or
// removed, and rings built through any mutation history with the same final
// counts are identical.
//
// Failover is handled at lookup time, not by rebuilding the ring: points of
// ineligible members (route withdrawn, crashed, admin down) are walked over
// to the next eligible point. Keeping dead members' points in place means
// recovery restores the exact pre-failure assignment. Weight changes and
// removal DO rebuild — they are deliberate control-plane reassignments,
// not failures to recover from.

// ringPoint is one vnode: a position on the hash ring owned by a member.
type ringPoint struct {
	hash   uint64
	member int32
}

type ring struct {
	points []ringPoint // sorted by hash
	vnodes int
	// counts[member] is the member's current vnode count (0 = absent).
	counts []int
}

// mix64 is a splitmix64-style finalizer used to place vnodes and spread
// flow hashes around the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func newRing(vnodesPerMember int) *ring {
	return &ring{vnodes: vnodesPerMember}
}

// weightCount converts an ECMP weight to a vnode count: round(w×vnodes),
// at least 1 while the weight is positive, 0 at weight 0.
func (r *ring) weightCount(w float64) int {
	if w <= 0 {
		return 0
	}
	c := int(math.Round(w * float64(r.vnodes)))
	if c < 1 {
		c = 1
	}
	return c
}

// add inserts member at full weight.
func (r *ring) add(member int) { r.setCount(member, r.vnodes) }

// remove deletes every point the member owns.
func (r *ring) remove(member int) { r.setCount(member, 0) }

// setCount pins member's vnode count and rebuilds the table. No-op when
// the count already matches.
func (r *ring) setCount(member, count int) {
	for member >= len(r.counts) {
		r.counts = append(r.counts, 0)
	}
	if r.counts[member] == count {
		return
	}
	r.counts[member] = count
	r.rebuild()
}

// rebuild regenerates the sorted point table from counts. Deterministic:
// point hashes depend only on (member, ordinal) and the sort order is
// total (hash, then member).
func (r *ring) rebuild() {
	r.points = r.points[:0]
	for m, count := range r.counts {
		for v := 0; v < count; v++ {
			h := mix64(uint64(m)<<32 | uint64(v) | 0xec3f<<48)
			r.points = append(r.points, ringPoint{hash: h, member: int32(m)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
}

// lookup maps flow hash h to (home, owner): home is the member the ring
// assigns with full membership; owner is the first eligible member walking
// clockwise from h (-1 when no member is eligible). home == owner in the
// healthy case; they differ exactly for the flows remapped by a failure.
func (r *ring) lookup(h uint64, eligible func(member int) bool) (home, owner int) {
	n := len(r.points)
	if n == 0 {
		return -1, -1
	}
	h = mix64(h)
	i := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	if i == n {
		i = 0 // wrap
	}
	home = int(r.points[i].member)
	for k := 0; k < n; k++ {
		p := r.points[(i+k)%n]
		if eligible(int(p.member)) {
			return home, int(p.member)
		}
	}
	return home, -1
}
