package cluster

// Sharded execution: the cluster's members are partitioned across the
// shard engines of a sim.ShardedEngine (member i on shard i mod k, the
// canonical trace.ShardOfNode assignment), while everything that couples
// members — the workload arrival process, the fault injector, the ECMP
// spray decision — runs on the control engine.
//
// Members interact with the rest of the cluster at exactly two points, and
// both already flow through the control plane:
//
//   - The ECMP ring reads each member's route eligibility (BGP RouteUp
//     plus the administrative adminUntil threshold) when an arrival is
//     sprayed. RouteUp only changes inside shard-local BFD probe and
//     re-advertisement events, and each session exposes a conservative
//     lower bound on its next possible change (bgp.SimSession.
//     NextTransition). The minimum over members is the cluster's lookahead
//     horizon: arrivals strictly below it can be routed on the control
//     engine without advancing any shard, which is what lets thousands of
//     routing decisions amortize one shard barrier.
//   - Packet delivery into the owning member's ingress pod. Deliveries are
//     value-typed mailbox entries (no boxing, no per-packet allocation)
//     consumed by the owning shard's worker in (timestamp, control order)
//     — a deterministic merge, since the control engine is the only
//     producer and it runs single-threaded.
//
// Node-granularity faults mutate shard-owned state (uplink sessions, pod
// lifecycles), so they first bring every shard to the control clock
// (SyncShards) and invalidate the horizon. Everything else — ECMP
// counters, member lifecycle bookkeeping, recovery timers — is
// control-plane state and never races a shard worker: shards are quiescent
// (parked at the epoch barrier) whenever control events run.

import (
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/sim"
	"albatross/internal/workload"
)

// mailEntry is one buffered cross-shard packet delivery.
type mailEntry struct {
	at     sim.Time
	member int32
	bytes  int32
	flow   workload.Flow
}

// shardMailbox buffers control→shard deliveries between epoch barriers.
// The control goroutine appends while the shard worker is parked; the
// worker consumes while the control goroutine waits at the barrier — the
// spawn/join edges of each epoch order the two. The backing array is
// recycled once fully drained.
type shardMailbox struct {
	queue []mailEntry
	next  int
}

// engineOf returns the engine members of the given shard run on.
func (c *Cluster) engineOf(shard int) *sim.Engine {
	if c.sharded == nil {
		return c.Engine
	}
	return c.sharded.Shard(shard)
}

// post buffers a delivery for m's shard at the current control time.
func (c *Cluster) post(m *Member, f workload.Flow, bytes int) {
	mb := &c.mail[m.shard]
	if mb.next > 0 && mb.next == len(mb.queue) {
		mb.queue = mb.queue[:0]
		mb.next = 0
	}
	mb.queue = append(mb.queue, mailEntry{
		at:     c.Engine.Now(),
		member: int32(m.Index),
		bytes:  int32(bytes),
		flow:   f,
	})
}

// advanceShard is the ShardedEngine advance hook: move one shard to target,
// interleaving its mailbox with its event loop. Each delivery lands after
// every shard-local event at or before its timestamp — the legacy engine's
// tie order, where the pipeline and probe timers racing an arrival were
// armed earlier and so carry smaller sequence numbers. Runs on the shard's
// worker goroutine at the epoch barrier (or on the control goroutine
// inside a SyncShards).
func (c *Cluster) advanceShard(shard int, target sim.Time) {
	mb := &c.mail[shard]
	eng := c.sharded.Shard(shard)
	for mb.next < len(mb.queue) {
		e := &mb.queue[mb.next]
		if e.at > target {
			break
		}
		mb.next++
		eng.RunUntil(e.at)
		c.members[e.member].Node.Ingress(e.flow, int(e.bytes))
	}
	eng.RunUntil(target)
}

// nextBoundary is the ShardedEngine lookahead hook: the earliest future
// virtual time at which any member's route eligibility could change.
func (c *Cluster) nextBoundary() sim.Time {
	b := sim.TimeMax
	for _, m := range c.members {
		if t := m.Node.Uplink().NextTransition(); t < b {
			b = t
		}
	}
	return b
}

// syncShards brings every shard to the control clock before a control
// event touches shard-owned state. No-op on the legacy path.
func (c *Cluster) syncShards() {
	if c.sharded != nil {
		c.sharded.SyncShards()
	}
}

// syncedTarget wraps a member node's pod-level fault target so every
// injection synchronizes the shards to the control clock first: the fault
// arms timers on (and mutates state of) the owning shard's engine.
type syncedTarget struct {
	c *Cluster
	n *core.Node
}

var _ faults.Target = (*syncedTarget)(nil)

func (t *syncedTarget) InjectCoreStall(pod, core int, factor float64, d sim.Duration) error {
	t.c.syncShards()
	return t.n.InjectCoreStall(pod, core, factor, d)
}

func (t *syncedTarget) InjectCoreFail(pod, core int, d sim.Duration) error {
	t.c.syncShards()
	return t.n.InjectCoreFail(pod, core, d)
}

func (t *syncedTarget) InjectPodCrash(pod int, graceful bool, restartAfter sim.Duration) error {
	t.c.syncShards()
	return t.n.InjectPodCrash(pod, graceful, restartAfter)
}

func (t *syncedTarget) InjectReorderStress(pod, queue int, d sim.Duration, holdHeads bool, depthClamp int) error {
	t.c.syncShards()
	return t.n.InjectReorderStress(pod, queue, d, holdHeads, depthClamp)
}

func (t *syncedTarget) InjectRxLoss(pod, core int, prob float64, d sim.Duration) error {
	t.c.syncShards()
	return t.n.InjectRxLoss(pod, core, prob, d)
}

func (t *syncedTarget) InjectBGPFlap(d sim.Duration) error {
	t.c.syncShards()
	return t.n.InjectBGPFlap(d)
}
