// Package pod models Albatross's containerized gateway deployment (paper
// §5): GW pods with dedicated data/ctrl cores, NIC resource partitioning
// (reorder queues, VFs, queue pairs), NUMA-aware placement on servers, the
// 10-second elasticity story, and the availability-zone cost model behind
// Fig. 15.
package pod

import (
	"albatross/internal/errs"
	"fmt"

	"albatross/internal/cpu"
	"albatross/internal/service"
	"albatross/internal/sim"
)

// Mode selects the pod's load-balancing mode.
type Mode int

// Load balancing modes.
const (
	// ModePLB sprays packets across cores with FPGA reordering (default).
	ModePLB Mode = iota
	// ModeRSS uses flow-affinity hashing (the fallback, paper §4.1 item 5).
	ModeRSS
)

func (m Mode) String() string {
	if m == ModeRSS {
		return "RSS"
	}
	return "PLB"
}

// Spec describes a GW pod to deploy.
type Spec struct {
	Name      string
	Service   service.Type
	DataCores int
	CtrlCores int
	Mode      Mode
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("pod: empty name: %w", errs.BadConfig)
	}
	if s.DataCores <= 0 {
		return fmt.Errorf("pod %s: DataCores must be positive: %w", s.Name, errs.BadConfig)
	}
	if s.CtrlCores <= 0 {
		return fmt.Errorf("pod %s: CtrlCores must be positive: %w", s.Name, errs.BadConfig)
	}
	return nil
}

// VFsPerPod is the paper's robustness configuration: each pod gets 4 VFs
// across two NICs of its NUMA node, each wired through an independent
// switch path (appendix §B).
const VFsPerPod = 4

// StartupTime is the pod creation latency Albatross achieves via
// containerization (Tab. 6: "10 seconds" vs days for physical clusters).
const StartupTime = 10 * sim.Second

// ReorderQueuesFor returns the number of PLB order-preserving queues a pod
// with the given data cores receives: proportional to core count (one per
// ~10 cores, so a 40-core pod gets twice a 20-core pod's queues, per the
// paper's example), clamped to the paper's 1..8 per-pod range.
func ReorderQueuesFor(dataCores int) int {
	q := (dataCores + 5) / 10
	if q < 1 {
		q = 1
	}
	if q > 8 {
		q = 8
	}
	return q
}

// Pod is a deployed gateway pod.
type Pod struct {
	Spec          Spec
	ID            uint16
	NUMANode      int
	CoreIDs       []int // data core IDs on the host
	CtrlCoreIDs   []int
	ReorderQueues int
	VFs           []VF
	CreatedAt     sim.Time
	ReadyAt       sim.Time
}

// VF is a virtual function assignment: (nic, vf index) plus its RX/TX
// queue-pair count (n = data cores, appendix §B).
type VF struct {
	NIC        int
	Index      int
	QueuePairs int
}

// Ready reports whether the pod has finished starting at time now.
func (p *Pod) Ready(now sim.Time) bool { return now >= p.ReadyAt }

// ServerConfig describes an Albatross server's resources.
type ServerConfig struct {
	Topology cpu.Topology
	// NICs is the number of FPGA SmartNICs (paper: 4 x 2x100G).
	NICs int
	// VFsPerNIC bounds SR-IOV virtual functions per NIC.
	VFsPerNIC int
	// ReorderQueuesPerServer bounds total PLB order queues across pods.
	ReorderQueuesPerServer int
}

// DefaultServerConfig returns the production Albatross server: dual-NUMA
// 2x48 cores, 4 NICs, comfortable VF/queue headroom.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Topology:               cpu.DefaultTopology(),
		NICs:                   4,
		VFsPerNIC:              16,
		ReorderQueuesPerServer: 64,
	}
}

// Server tracks pod placement on one Albatross machine.
type Server struct {
	cfg       ServerConfig
	pods      []*Pod
	nextPodID uint16
	// coreUsed marks allocated host cores.
	coreUsed []bool
	// vfUsed counts VFs allocated per NIC.
	vfUsed []int
	// ordqUsed counts allocated reorder queues.
	ordqUsed int
}

// NewServer creates an empty server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.NICs <= 0 || cfg.VFsPerNIC <= 0 {
		return nil, fmt.Errorf("pod: invalid NIC config %+v: %w", cfg, errs.BadConfig)
	}
	if cfg.ReorderQueuesPerServer <= 0 {
		cfg.ReorderQueuesPerServer = 64
	}
	return &Server{
		cfg:      cfg,
		coreUsed: make([]bool, cfg.Topology.TotalCores()),
		vfUsed:   make([]int, cfg.NICs),
	}, nil
}

// Pods returns the deployed pods.
func (s *Server) Pods() []*Pod { return s.pods }

// FreeCores returns the number of unallocated cores on a NUMA node.
func (s *Server) FreeCores(node int) int {
	n := 0
	for id, used := range s.coreUsed {
		if !used && s.cfg.Topology.NodeOf(id) == node {
			n++
		}
	}
	return n
}

// nicsOfNode returns the NIC indices attached to a NUMA node: the paper's
// server wires half the NICs to each node.
func (s *Server) nicsOfNode(node int) []int {
	perNode := s.cfg.NICs / s.cfg.Topology.Nodes
	if perNode == 0 {
		perNode = s.cfg.NICs
		node = 0
	}
	var out []int
	for i := 0; i < perNode; i++ {
		out = append(out, node*perNode+i)
	}
	return out
}

// planVFs computes the 4-VF assignment for a pod on the given node without
// mutating state, or nil if the node's NICs are out of VFs.
func (s *Server) planVFs(node, dataCores int) []VF {
	nics := s.nicsOfNode(node)
	pending := make(map[int]int) // extra VFs tentatively taken per NIC
	var vfs []VF
	for i := 0; i < VFsPerPod; i++ {
		nic := nics[i%len(nics)]
		if s.vfUsed[nic]+pending[nic] >= s.cfg.VFsPerNIC {
			return nil
		}
		vfs = append(vfs, VF{NIC: nic, Index: s.vfUsed[nic] + pending[nic], QueuePairs: dataCores})
		pending[nic]++
	}
	return vfs
}

// Place deploys a pod, allocating all its cores inside a single NUMA node
// (the paper's §7 NUMA lesson), 4 VFs across the node's NICs, and its
// reorder queue share. now is the creation time; the pod becomes Ready
// after StartupTime.
func (s *Server) Place(spec Spec, now sim.Time) (*Pod, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	need := spec.DataCores + spec.CtrlCores

	ordq := ReorderQueuesFor(spec.DataCores)
	if spec.Mode == ModeRSS {
		ordq = 0
	}
	if s.ordqUsed+ordq > s.cfg.ReorderQueuesPerServer {
		return nil, fmt.Errorf("pod %s: reorder queues exhausted (%d used of %d): %w",
			spec.Name, s.ordqUsed, s.cfg.ReorderQueuesPerServer, errs.Exhausted)
	}

	// First NUMA node that can satisfy both the core and the VF demand.
	node := -1
	var vfs []VF
	for n := 0; n < s.cfg.Topology.Nodes; n++ {
		if s.FreeCores(n) < need {
			continue
		}
		vfs = s.planVFs(n, spec.DataCores)
		if vfs != nil {
			node = n
			break
		}
	}
	if node == -1 {
		return nil, fmt.Errorf("pod %s: no NUMA node with %d free cores and %d free VFs: %w",
			spec.Name, need, VFsPerPod, errs.Exhausted)
	}
	for _, vf := range vfs {
		s.vfUsed[vf.NIC]++
	}

	// Allocate cores.
	var data, ctrl []int
	for id := range s.coreUsed {
		if s.coreUsed[id] || s.cfg.Topology.NodeOf(id) != node {
			continue
		}
		if len(data) < spec.DataCores {
			data = append(data, id)
			s.coreUsed[id] = true
		} else if len(ctrl) < spec.CtrlCores {
			ctrl = append(ctrl, id)
			s.coreUsed[id] = true
		} else {
			break
		}
	}

	s.ordqUsed += ordq
	p := &Pod{
		Spec:          spec,
		ID:            s.nextPodID,
		NUMANode:      node,
		CoreIDs:       data,
		CtrlCoreIDs:   ctrl,
		ReorderQueues: ordq,
		VFs:           vfs,
		CreatedAt:     now,
		ReadyAt:       now.Add(StartupTime),
	}
	s.nextPodID++
	s.pods = append(s.pods, p)
	return p, nil
}

// Remove tears down a pod and frees its resources.
func (s *Server) Remove(p *Pod) error {
	idx := -1
	for i, q := range s.pods {
		if q == p {
			idx = i
			break
		}
	}
	if idx == -1 {
		return fmt.Errorf("pod %s: not on this server: %w", p.Spec.Name, errs.BadState)
	}
	for _, id := range p.CoreIDs {
		s.coreUsed[id] = false
	}
	for _, id := range p.CtrlCoreIDs {
		s.coreUsed[id] = false
	}
	for _, vf := range p.VFs {
		s.vfUsed[vf.NIC]--
	}
	s.ordqUsed -= p.ReorderQueues
	s.pods = append(s.pods[:idx], s.pods[idx+1:]...)
	return nil
}

// CostModel captures Fig. 15's economics: the gateway cluster types per
// availability zone, gateways per cluster, and relative device costs and
// power draws of the three generations.
type CostModel struct {
	ClusterTypes       int // XGW, IGW, VGW, ... (paper: 8)
	GatewaysPerCluster int // paper: 4
	PodsPerServer      int // paper: 4

	// Relative device prices (1st/2nd gen = 1x, Albatross = 2x).
	LegacyPrice    float64
	AlbatrossPrice float64

	// Power draw per device in watts.
	Gen1Power, Gen2Power, Gen3Power float64
	// Gen1Clusters/Gen2Clusters split the legacy deployment (paper: three
	// 1st-gen and five 2nd-gen clusters).
	Gen1Clusters, Gen2Clusters int
}

// DefaultCostModel returns the paper's Fig. 15 numbers.
func DefaultCostModel() CostModel {
	return CostModel{
		ClusterTypes:       8,
		GatewaysPerCluster: 4,
		PodsPerServer:      4,
		LegacyPrice:        1,
		AlbatrossPrice:     2,
		Gen1Power:          500,
		Gen2Power:          300,
		Gen3Power:          900,
		Gen1Clusters:       3,
		Gen2Clusters:       5,
	}
}

// AZComparison summarizes building one availability zone the legacy way vs
// with Albatross.
type AZComparison struct {
	LegacyGateways   int
	AlbatrossServers int
	ServerReduction  float64 // fraction of devices saved
	LegacyCost       float64
	AlbatrossCost    float64
	CostReduction    float64
	LegacyPowerW     float64
	AlbatrossPowerW  float64
	PowerReduction   float64
}

// Compare evaluates the model.
func (m CostModel) Compare() AZComparison {
	legacyGW := m.ClusterTypes * m.GatewaysPerCluster
	servers := (legacyGW + m.PodsPerServer - 1) / m.PodsPerServer

	legacyCost := float64(legacyGW) * m.LegacyPrice
	albCost := float64(servers) * m.AlbatrossPrice

	legacyPower := float64(m.Gen1Clusters*m.GatewaysPerCluster)*m.Gen1Power +
		float64(m.Gen2Clusters*m.GatewaysPerCluster)*m.Gen2Power
	albPower := float64(servers) * m.Gen3Power

	return AZComparison{
		LegacyGateways:   legacyGW,
		AlbatrossServers: servers,
		ServerReduction:  1 - float64(servers)/float64(legacyGW),
		LegacyCost:       legacyCost,
		AlbatrossCost:    albCost,
		CostReduction:    1 - albCost/legacyCost,
		LegacyPowerW:     legacyPower,
		AlbatrossPowerW:  albPower,
		PowerReduction:   1 - albPower/legacyPower,
	}
}
