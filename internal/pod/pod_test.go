package pod

import (
	"math"
	"testing"

	"albatross/internal/service"
	"albatross/internal/sim"
)

func spec(name string, cores int) Spec {
	return Spec{Name: name, Service: service.VPCVPC, DataCores: cores, CtrlCores: 2}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Name: "x", DataCores: 4, CtrlCores: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Name: "", DataCores: 4, CtrlCores: 2},
		{Name: "a", DataCores: 0, CtrlCores: 2},
		{Name: "a", DataCores: 4, CtrlCores: 0},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModePLB.String() != "PLB" || ModeRSS.String() != "RSS" {
		t.Fatal("mode strings wrong")
	}
}

func TestReorderQueueProportionality(t *testing.T) {
	cases := map[int]int{2: 1, 8: 1, 16: 2, 20: 2, 40: 4, 44: 4, 64: 6, 100: 8}
	for cores, want := range cases {
		if got := ReorderQueuesFor(cores); got != want {
			t.Errorf("ReorderQueuesFor(%d) = %d, want %d", cores, got, want)
		}
	}
	// The paper's concrete example: a 40-core pod gets twice the queues of
	// a 20-core pod.
	if ReorderQueuesFor(40) != 2*ReorderQueuesFor(20) {
		t.Error("40-core pod should get 2x queues of 20-core pod")
	}
}

func TestPlaceBasics(t *testing.T) {
	s, err := NewServer(DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Place(spec("gw0", 44), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.CoreIDs) != 44 || len(p.CtrlCoreIDs) != 2 {
		t.Fatalf("cores = %d/%d", len(p.CoreIDs), len(p.CtrlCoreIDs))
	}
	if len(p.VFs) != VFsPerPod {
		t.Fatalf("VFs = %d", len(p.VFs))
	}
	if p.ReorderQueues != 4 {
		t.Fatalf("reorder queues = %d", p.ReorderQueues)
	}
	// All cores on one NUMA node.
	top := DefaultServerConfig().Topology
	for _, id := range append(append([]int{}, p.CoreIDs...), p.CtrlCoreIDs...) {
		if top.NodeOf(id) != p.NUMANode {
			t.Fatalf("core %d off pod's NUMA node %d", id, p.NUMANode)
		}
	}
	// VF queue pairs = data cores.
	for _, vf := range p.VFs {
		if vf.QueuePairs != 44 {
			t.Fatalf("queue pairs = %d", vf.QueuePairs)
		}
	}
}

func TestPlaceTwoPodsTwoNodes(t *testing.T) {
	s, _ := NewServer(DefaultServerConfig())
	p1, err := s.Place(spec("gw0", 44), 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Place(spec("gw1", 44), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1.NUMANode == p2.NUMANode {
		t.Fatal("two 46-core pods cannot share a 48-core node")
	}
	if len(s.Pods()) != 2 {
		t.Fatalf("pods = %d", len(s.Pods()))
	}
	// VFs of each pod live on its node's NICs only.
	for _, vf := range p1.VFs {
		for _, vf2 := range p2.VFs {
			if vf.NIC == vf2.NIC {
				t.Fatal("pods on different nodes share a NIC")
			}
		}
	}
}

func TestPlaceExhaustsCores(t *testing.T) {
	s, _ := NewServer(DefaultServerConfig())
	if _, err := s.Place(spec("gw0", 44), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(spec("gw1", 44), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(spec("gw2", 44), 0); err == nil {
		t.Fatal("third 46-core pod placed on a 96-core server")
	}
}

func TestPlaceFourSmallPods(t *testing.T) {
	// The Fig. 15 deployment shape: 4 pods per server.
	s, _ := NewServer(DefaultServerConfig())
	for i := 0; i < 4; i++ {
		if _, err := s.Place(spec(string(rune('a'+i)), 20), 0); err != nil {
			t.Fatalf("pod %d: %v", i, err)
		}
	}
	if len(s.Pods()) != 4 {
		t.Fatalf("pods = %d", len(s.Pods()))
	}
}

func TestRemoveFreesResources(t *testing.T) {
	s, _ := NewServer(DefaultServerConfig())
	p, _ := s.Place(spec("gw0", 44), 0)
	node := p.NUMANode
	free := s.FreeCores(node)
	if err := s.Remove(p); err != nil {
		t.Fatal(err)
	}
	if s.FreeCores(node) != free+46 {
		t.Fatalf("cores not freed: %d -> %d", free, s.FreeCores(node))
	}
	if err := s.Remove(p); err == nil {
		t.Fatal("double remove succeeded")
	}
	// Can place again.
	if _, err := s.Place(spec("gw0b", 44), 0); err != nil {
		t.Fatal(err)
	}
}

func TestElasticity(t *testing.T) {
	s, _ := NewServer(DefaultServerConfig())
	p, _ := s.Place(spec("gw0", 8), sim.Time(5*sim.Second))
	if p.Ready(sim.Time(5 * sim.Second)) {
		t.Fatal("ready immediately")
	}
	if !p.Ready(sim.Time(15 * sim.Second)) {
		t.Fatal("not ready after 10s startup")
	}
	if p.ReadyAt.Sub(p.CreatedAt) != StartupTime {
		t.Fatalf("startup = %v", p.ReadyAt.Sub(p.CreatedAt))
	}
}

func TestRSSPodNoReorderQueues(t *testing.T) {
	s, _ := NewServer(DefaultServerConfig())
	sp := spec("gw0", 44)
	sp.Mode = ModeRSS
	p, err := s.Place(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.ReorderQueues != 0 {
		t.Fatalf("RSS pod got %d reorder queues", p.ReorderQueues)
	}
}

func TestReorderQueueExhaustion(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.ReorderQueuesPerServer = 4
	s, _ := NewServer(cfg)
	if _, err := s.Place(spec("gw0", 40), 0); err != nil { // needs 5
		t.Fatal(err)
	}
	if _, err := s.Place(spec("gw1", 8), 0); err == nil { // needs 1 more
		t.Fatal("placement over reorder-queue budget succeeded")
	}
}

func TestVFExhaustion(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.VFsPerNIC = 2
	s, _ := NewServer(cfg)
	// Each pod takes 4 VFs over 2 NICs (2 each); second pod on same node
	// would exceed; but it will go to the other node. Third pod fails on
	// cores first; so shrink to hit VF limit: place 2 small pods per node.
	for i := 0; i < 2; i++ {
		if _, err := s.Place(spec(string(rune('a'+i)), 20), 0); err != nil {
			t.Fatalf("pod %d: %v", i, err)
		}
	}
	// Node 0 and node 1 each have one pod now (first-fit puts both on node
	// 0 if cores allow: 2x22=44 < 48, so both on node 0 => VFs exhausted
	// for a third).
	if _, err := s.Place(spec("c", 20), 0); err == nil {
		t.Fatal("VF exhaustion not enforced")
	}
}

func TestNewServerValidation(t *testing.T) {
	bad := DefaultServerConfig()
	bad.NICs = 0
	if _, err := NewServer(bad); err == nil {
		t.Fatal("0 NICs accepted")
	}
}

func TestAZCostModel(t *testing.T) {
	c := DefaultCostModel().Compare()
	if c.LegacyGateways != 32 {
		t.Fatalf("legacy gateways = %d", c.LegacyGateways)
	}
	if c.AlbatrossServers != 8 {
		t.Fatalf("albatross servers = %d", c.AlbatrossServers)
	}
	if math.Abs(c.ServerReduction-0.75) > 1e-9 {
		t.Fatalf("server reduction = %v, want 75%%", c.ServerReduction)
	}
	if math.Abs(c.CostReduction-0.5) > 1e-9 {
		t.Fatalf("cost reduction = %v, want 50%%", c.CostReduction)
	}
	// Power: legacy = 3*4*500 + 5*4*300 = 12000W; albatross = 8*900 = 7200W.
	if c.LegacyPowerW != 12000 || c.AlbatrossPowerW != 7200 {
		t.Fatalf("power = %v / %v", c.LegacyPowerW, c.AlbatrossPowerW)
	}
	if math.Abs(c.PowerReduction-0.4) > 1e-9 {
		t.Fatalf("power reduction = %v, want 40%%", c.PowerReduction)
	}
}
