// Package bgp implements the BGP-4 subset Albatross's containerized
// gateways use to advertise VIP routes to uplink switches, plus the BGP
// proxy (paper §5, Fig. 7) that collapses the m eBGP sessions of m GW pods
// into a single eBGP session per server, and a minimal BFD (RFC 5880)
// async-mode failure detector.
//
// The wire format follows RFC 4271: 19-byte header (16-byte all-ones
// marker, length, type) and OPEN / UPDATE / KEEPALIVE / NOTIFICATION
// messages with the ORIGIN, AS_PATH, NEXT_HOP and LOCAL_PREF path
// attributes. Sessions run over any net.Conn — net.Pipe in tests,
// localhost TCP in the bgp-proxy demo binary.
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"albatross/internal/packet"
)

// Message types (RFC 4271 §4.1).
const (
	MsgOpen         = 1
	MsgUpdate       = 2
	MsgNotification = 3
	MsgKeepalive    = 4
)

// Protocol constants.
const (
	headerLen  = 19
	maxMsgLen  = 4096
	bgpVersion = 4
)

// Errors.
var (
	ErrBadMarker = errors.New("bgp: header marker not all-ones")
	ErrBadLength = errors.New("bgp: message length out of range")
	ErrTruncated = errors.New("bgp: truncated message")
	ErrBadType   = errors.New("bgp: unknown message type")
)

// Prefix is an IPv4 NLRI prefix.
type Prefix struct {
	Addr packet.IPv4Addr
	Len  uint8
}

func (p Prefix) String() string { return fmt.Sprintf("%v/%d", p.Addr, p.Len) }

// Canonical zeroes host bits beyond Len.
func (p Prefix) Canonical() Prefix {
	if p.Len >= 32 {
		p.Len = 32
		return p
	}
	mask := ^uint32(0) << (32 - p.Len)
	if p.Len == 0 {
		mask = 0
	}
	return Prefix{Addr: packet.IPv4FromUint32(p.Addr.Uint32() & mask), Len: p.Len}
}

// Open is a BGP OPEN message.
type Open struct {
	Version  uint8
	AS       uint16
	HoldTime uint16
	RouterID uint32
}

// Update is a BGP UPDATE message.
type Update struct {
	Withdrawn []Prefix
	Attrs     PathAttrs
	NLRI      []Prefix
}

// PathAttrs carries the path attributes this implementation understands.
type PathAttrs struct {
	Origin    uint8 // 0=IGP, 1=EGP, 2=INCOMPLETE
	ASPath    []uint16
	NextHop   packet.IPv4Addr
	LocalPref uint32 // 0 = unset
	HasLP     bool
}

// Notification is a BGP NOTIFICATION message.
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

func (n Notification) Error() string {
	return fmt.Sprintf("bgp: notification code=%d subcode=%d", n.Code, n.Subcode)
}

// Notification error codes (RFC 4271 §4.5).
const (
	NotifMsgHeaderError   = 1
	NotifOpenError        = 2
	NotifUpdateError      = 3
	NotifHoldTimerExpired = 4
	NotifFSMError         = 5
	NotifCease            = 6
)

// Path attribute type codes.
const (
	attrOrigin    = 1
	attrASPath    = 2
	attrNextHop   = 3
	attrLocalPref = 5
)

// Path attribute flags.
const (
	flagTransitive = 0x40
	flagOptional   = 0x80
)

// appendHeader writes the 19-byte header for a body of length bodyLen.
func appendHeader(buf []byte, msgType uint8, bodyLen int) []byte {
	for i := 0; i < 16; i++ {
		buf = append(buf, 0xff)
	}
	total := headerLen + bodyLen
	buf = append(buf, byte(total>>8), byte(total), msgType)
	return buf
}

// EncodeOpen serializes an OPEN message.
func EncodeOpen(o Open) []byte {
	body := make([]byte, 10)
	body[0] = bgpVersion
	binary.BigEndian.PutUint16(body[1:3], o.AS)
	binary.BigEndian.PutUint16(body[3:5], o.HoldTime)
	binary.BigEndian.PutUint32(body[5:9], o.RouterID)
	body[9] = 0 // no optional parameters
	out := appendHeader(nil, MsgOpen, len(body))
	return append(out, body...)
}

// EncodeKeepalive serializes a KEEPALIVE message.
func EncodeKeepalive() []byte {
	return appendHeader(nil, MsgKeepalive, 0)
}

// EncodeNotification serializes a NOTIFICATION message.
func EncodeNotification(n Notification) []byte {
	out := appendHeader(nil, MsgNotification, 2+len(n.Data))
	out = append(out, n.Code, n.Subcode)
	return append(out, n.Data...)
}

// encodePrefixes writes NLRI-style (len, truncated addr) prefix encodings.
func encodePrefixes(buf []byte, prefixes []Prefix) []byte {
	for _, p := range prefixes {
		p = p.Canonical()
		buf = append(buf, p.Len)
		nbytes := int(p.Len+7) / 8
		buf = append(buf, p.Addr[:nbytes]...)
	}
	return buf
}

func decodePrefixes(data []byte) ([]Prefix, error) {
	var out []Prefix
	for len(data) > 0 {
		plen := data[0]
		if plen > 32 {
			return nil, fmt.Errorf("bgp: prefix length %d", plen)
		}
		nbytes := int(plen+7) / 8
		if len(data) < 1+nbytes {
			return nil, ErrTruncated
		}
		var addr packet.IPv4Addr
		copy(addr[:], data[1:1+nbytes])
		out = append(out, Prefix{Addr: addr, Len: plen})
		data = data[1+nbytes:]
	}
	return out, nil
}

// EncodeUpdate serializes an UPDATE message.
func EncodeUpdate(u Update) []byte {
	withdrawn := encodePrefixes(nil, u.Withdrawn)

	var attrs []byte
	if len(u.NLRI) > 0 {
		// ORIGIN
		attrs = append(attrs, flagTransitive, attrOrigin, 1, u.Attrs.Origin)
		// AS_PATH: one AS_SEQUENCE segment.
		seg := []byte{2, byte(len(u.Attrs.ASPath))}
		for _, as := range u.Attrs.ASPath {
			seg = append(seg, byte(as>>8), byte(as))
		}
		if len(u.Attrs.ASPath) == 0 {
			seg = nil // empty AS_PATH attribute has zero-length value
		}
		attrs = append(attrs, flagTransitive, attrASPath, byte(len(seg)))
		attrs = append(attrs, seg...)
		// NEXT_HOP
		attrs = append(attrs, flagTransitive, attrNextHop, 4)
		attrs = append(attrs, u.Attrs.NextHop[:]...)
		// LOCAL_PREF (iBGP)
		if u.Attrs.HasLP {
			lp := make([]byte, 4)
			binary.BigEndian.PutUint32(lp, u.Attrs.LocalPref)
			attrs = append(attrs, flagTransitive, attrLocalPref, 4)
			attrs = append(attrs, lp...)
		}
	}

	nlri := encodePrefixes(nil, u.NLRI)

	bodyLen := 2 + len(withdrawn) + 2 + len(attrs) + len(nlri)
	out := appendHeader(nil, MsgUpdate, bodyLen)
	out = append(out, byte(len(withdrawn)>>8), byte(len(withdrawn)))
	out = append(out, withdrawn...)
	out = append(out, byte(len(attrs)>>8), byte(len(attrs)))
	out = append(out, attrs...)
	out = append(out, nlri...)
	return out
}

// DecodeHeader parses and validates a message header, returning the total
// message length and type.
func DecodeHeader(hdr []byte) (length int, msgType uint8, err error) {
	if len(hdr) < headerLen {
		return 0, 0, ErrTruncated
	}
	for i := 0; i < 16; i++ {
		if hdr[i] != 0xff {
			return 0, 0, ErrBadMarker
		}
	}
	length = int(binary.BigEndian.Uint16(hdr[16:18]))
	msgType = hdr[18]
	if length < headerLen || length > maxMsgLen {
		return 0, 0, ErrBadLength
	}
	if msgType < MsgOpen || msgType > MsgKeepalive {
		return 0, 0, ErrBadType
	}
	return length, msgType, nil
}

// DecodeOpen parses an OPEN body (after the header).
func DecodeOpen(body []byte) (Open, error) {
	if len(body) < 10 {
		return Open{}, ErrTruncated
	}
	o := Open{
		Version:  body[0],
		AS:       binary.BigEndian.Uint16(body[1:3]),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		RouterID: binary.BigEndian.Uint32(body[5:9]),
	}
	if o.Version != bgpVersion {
		return o, fmt.Errorf("bgp: unsupported version %d", o.Version)
	}
	return o, nil
}

// DecodeUpdate parses an UPDATE body (after the header).
func DecodeUpdate(body []byte) (Update, error) {
	var u Update
	if len(body) < 2 {
		return u, ErrTruncated
	}
	wlen := int(binary.BigEndian.Uint16(body[0:2]))
	body = body[2:]
	if len(body) < wlen {
		return u, ErrTruncated
	}
	var err error
	u.Withdrawn, err = decodePrefixes(body[:wlen])
	if err != nil {
		return u, err
	}
	body = body[wlen:]

	if len(body) < 2 {
		return u, ErrTruncated
	}
	alen := int(binary.BigEndian.Uint16(body[0:2]))
	body = body[2:]
	if len(body) < alen {
		return u, ErrTruncated
	}
	attrs := body[:alen]
	body = body[alen:]

	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return u, ErrTruncated
		}
		flags := attrs[0]
		code := attrs[1]
		var vlen int
		var voff int
		if flags&0x10 != 0 { // extended length
			if len(attrs) < 4 {
				return u, ErrTruncated
			}
			vlen = int(binary.BigEndian.Uint16(attrs[2:4]))
			voff = 4
		} else {
			vlen = int(attrs[2])
			voff = 3
		}
		if len(attrs) < voff+vlen {
			return u, ErrTruncated
		}
		val := attrs[voff : voff+vlen]
		switch code {
		case attrOrigin:
			if vlen >= 1 {
				u.Attrs.Origin = val[0]
			}
		case attrASPath:
			// One or more segments; we flatten AS_SEQUENCEs.
			for len(val) >= 2 {
				segLen := int(val[1])
				if len(val) < 2+2*segLen {
					return u, ErrTruncated
				}
				for i := 0; i < segLen; i++ {
					u.Attrs.ASPath = append(u.Attrs.ASPath,
						binary.BigEndian.Uint16(val[2+2*i:4+2*i]))
				}
				val = val[2+2*segLen:]
			}
		case attrNextHop:
			if vlen == 4 {
				copy(u.Attrs.NextHop[:], val)
			}
		case attrLocalPref:
			if vlen == 4 {
				u.Attrs.LocalPref = binary.BigEndian.Uint32(val)
				u.Attrs.HasLP = true
			}
		}
		attrs = attrs[voff+vlen:]
	}

	u.NLRI, err = decodePrefixes(body)
	return u, err
}

// DecodeNotification parses a NOTIFICATION body.
func DecodeNotification(body []byte) (Notification, error) {
	if len(body) < 2 {
		return Notification{}, ErrTruncated
	}
	return Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
}
