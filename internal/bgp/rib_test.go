package bgp

import (
	"testing"

	"albatross/internal/packet"
)

func route(p Prefix, peer uint32, aspath []uint16, lp uint32) Route {
	attrs := PathAttrs{ASPath: aspath, NextHop: packet.IPv4Addr{1, 1, 1, 1}}
	if lp > 0 {
		attrs.LocalPref = lp
		attrs.HasLP = true
	}
	return Route{Prefix: p, Attrs: attrs, PeerID: peer}
}

func TestRIBUpdateBest(t *testing.T) {
	r := NewRIB()
	p := pfx(10, 0, 0, 0, 24)
	if changed := r.Update(route(p, 1, []uint16{65001}, 0)); !changed {
		t.Fatal("first route should change best")
	}
	if r.Len() != 1 || r.PathCount(p) != 1 {
		t.Fatalf("len=%d paths=%d", r.Len(), r.PathCount(p))
	}
	// Shorter AS path wins.
	if changed := r.Update(route(p, 2, nil, 0)); !changed {
		t.Fatal("better route should change best")
	}
	best, ok := r.Best(p)
	if !ok || best.PeerID != 2 {
		t.Fatalf("best = %+v", best)
	}
	// Worse route does not change best.
	if changed := r.Update(route(p, 3, []uint16{1, 2, 3}, 0)); changed {
		t.Fatal("worse route changed best")
	}
	if r.PathCount(p) != 3 {
		t.Fatalf("paths = %d", r.PathCount(p))
	}
}

func TestRIBLocalPrefDominates(t *testing.T) {
	r := NewRIB()
	p := pfx(10, 0, 0, 0, 24)
	r.Update(route(p, 1, nil, 0))                    // LP default 100, empty path
	r.Update(route(p, 2, []uint16{1, 2, 3, 4}, 200)) // LP 200, long path
	best, _ := r.Best(p)
	if best.PeerID != 2 {
		t.Fatalf("best = peer %d, want LP-200 route", best.PeerID)
	}
}

func TestRIBTieBreakPeerID(t *testing.T) {
	r := NewRIB()
	p := pfx(10, 0, 0, 0, 24)
	r.Update(route(p, 7, []uint16{1}, 0))
	r.Update(route(p, 3, []uint16{2}, 0))
	best, _ := r.Best(p)
	if best.PeerID != 3 {
		t.Fatalf("tie break chose peer %d, want 3 (lowest)", best.PeerID)
	}
}

func TestRIBWithdraw(t *testing.T) {
	r := NewRIB()
	p := pfx(10, 0, 0, 0, 24)
	r.Update(route(p, 1, nil, 0))
	r.Update(route(p, 2, []uint16{9}, 0))
	// Withdrawing the non-best path: best unchanged.
	if changed := r.Withdraw(p, 2); changed {
		t.Fatal("withdrawing non-best changed best")
	}
	// Withdrawing the best path: changed, prefix gone.
	if changed := r.Withdraw(p, 1); !changed {
		t.Fatal("withdrawing best did not report change")
	}
	if _, ok := r.Best(p); ok {
		t.Fatal("prefix still resolvable")
	}
	if r.Withdraw(p, 1) {
		t.Fatal("double withdraw changed")
	}
	if r.Withdraw(pfx(99, 0, 0, 0, 8), 1) {
		t.Fatal("withdraw of unknown prefix changed")
	}
}

func TestRIBWithdrawPeer(t *testing.T) {
	r := NewRIB()
	p1, p2, p3 := pfx(10, 0, 0, 0, 24), pfx(10, 0, 1, 0, 24), pfx(10, 0, 2, 0, 24)
	r.Update(route(p1, 1, nil, 0))
	r.Update(route(p2, 1, nil, 0))
	r.Update(route(p2, 2, []uint16{9}, 0))
	r.Update(route(p3, 2, nil, 0))
	changed := r.WithdrawPeer(1)
	// p1 disappears (changed), p2 falls over to peer 2 (changed), p3
	// untouched.
	if len(changed) != 2 {
		t.Fatalf("changed = %v", changed)
	}
	if _, ok := r.Best(p1); ok {
		t.Fatal("p1 survives")
	}
	if best, ok := r.Best(p2); !ok || best.PeerID != 2 {
		t.Fatal("p2 failover broken")
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRIBPrefixesSorted(t *testing.T) {
	r := NewRIB()
	r.Update(route(pfx(10, 0, 2, 0, 24), 1, nil, 0))
	r.Update(route(pfx(10, 0, 1, 0, 24), 1, nil, 0))
	r.Update(route(pfx(10, 0, 1, 0, 25), 1, nil, 0))
	got := r.Prefixes()
	if len(got) != 3 {
		t.Fatalf("prefixes = %v", got)
	}
	if got[0] != pfx(10, 0, 1, 0, 24) || got[1] != pfx(10, 0, 1, 0, 25) || got[2] != pfx(10, 0, 2, 0, 24) {
		t.Fatalf("order = %v", got)
	}
}

func TestRIBCanonicalizesPrefixes(t *testing.T) {
	r := NewRIB()
	// Same prefix written with host bits set must collapse to one entry.
	r.Update(route(Prefix{Addr: packet.IPv4Addr{10, 0, 0, 5}, Len: 24}, 1, nil, 0))
	r.Update(route(Prefix{Addr: packet.IPv4Addr{10, 0, 0, 9}, Len: 24}, 2, nil, 0))
	if r.Len() != 1 {
		t.Fatalf("len = %d, want canonical collapse", r.Len())
	}
	if r.PathCount(pfx(10, 0, 0, 0, 24)) != 2 {
		t.Fatal("paths not merged")
	}
}
