package bgp

import (
	"bytes"
	"testing"
	"testing/quick"

	"albatross/internal/packet"
)

func TestOpenRoundTrip(t *testing.T) {
	o := Open{Version: 4, AS: 65001, HoldTime: 90, RouterID: 0x0a000001}
	enc := EncodeOpen(o)
	length, msgType, err := DecodeHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgOpen || length != len(enc) {
		t.Fatalf("header: type=%d len=%d", msgType, length)
	}
	got, err := DecodeOpen(enc[headerLen:])
	if err != nil {
		t.Fatal(err)
	}
	got.Version = 4 // DecodeOpen validates version; field set from wire
	if got.AS != 65001 || got.HoldTime != 90 || got.RouterID != 0x0a000001 {
		t.Fatalf("open = %+v", got)
	}
}

func TestOpenBadVersion(t *testing.T) {
	enc := EncodeOpen(Open{AS: 1, HoldTime: 3, RouterID: 1})
	enc[headerLen] = 3 // version 3
	if _, err := DecodeOpen(enc[headerLen:]); err == nil {
		t.Fatal("version 3 accepted")
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	enc := EncodeKeepalive()
	length, msgType, err := DecodeHeader(enc)
	if err != nil || msgType != MsgKeepalive || length != headerLen {
		t.Fatalf("keepalive: len=%d type=%d err=%v", length, msgType, err)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := Notification{Code: NotifCease, Subcode: 2, Data: []byte{1, 2, 3}}
	enc := EncodeNotification(n)
	_, msgType, err := DecodeHeader(enc)
	if err != nil || msgType != MsgNotification {
		t.Fatal("header")
	}
	got, err := DecodeNotification(enc[headerLen:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != NotifCease || got.Subcode != 2 || !bytes.Equal(got.Data, []byte{1, 2, 3}) {
		t.Fatalf("notification = %+v", got)
	}
	if got.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestHeaderValidation(t *testing.T) {
	enc := EncodeKeepalive()

	short := enc[:10]
	if _, _, err := DecodeHeader(short); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}

	badMarker := append([]byte(nil), enc...)
	badMarker[3] = 0
	if _, _, err := DecodeHeader(badMarker); err != ErrBadMarker {
		t.Fatalf("marker: %v", err)
	}

	badLen := append([]byte(nil), enc...)
	badLen[16], badLen[17] = 0xff, 0xff
	if _, _, err := DecodeHeader(badLen); err != ErrBadLength {
		t.Fatalf("length: %v", err)
	}

	badType := append([]byte(nil), enc...)
	badType[18] = 9
	if _, _, err := DecodeHeader(badType); err != ErrBadType {
		t.Fatalf("type: %v", err)
	}
}

func pfx(a, b, c, d byte, l uint8) Prefix {
	return Prefix{Addr: packet.IPv4Addr{a, b, c, d}, Len: l}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := Update{
		Withdrawn: []Prefix{pfx(10, 1, 0, 0, 16)},
		Attrs: PathAttrs{
			Origin:    0,
			ASPath:    []uint16{65001, 65002},
			NextHop:   packet.IPv4Addr{192, 0, 2, 1},
			LocalPref: 200,
			HasLP:     true,
		},
		NLRI: []Prefix{pfx(203, 0, 113, 0, 24), pfx(198, 51, 100, 64, 26)},
	}
	enc := EncodeUpdate(u)
	length, msgType, err := DecodeHeader(enc)
	if err != nil || msgType != MsgUpdate || length != len(enc) {
		t.Fatalf("header: %v %d %d/%d", err, msgType, length, len(enc))
	}
	got, err := DecodeUpdate(enc[headerLen:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != pfx(10, 1, 0, 0, 16) {
		t.Fatalf("withdrawn = %v", got.Withdrawn)
	}
	if len(got.NLRI) != 2 || got.NLRI[0] != pfx(203, 0, 113, 0, 24) || got.NLRI[1] != pfx(198, 51, 100, 64, 26) {
		t.Fatalf("nlri = %v", got.NLRI)
	}
	if len(got.Attrs.ASPath) != 2 || got.Attrs.ASPath[0] != 65001 || got.Attrs.ASPath[1] != 65002 {
		t.Fatalf("as path = %v", got.Attrs.ASPath)
	}
	if got.Attrs.NextHop != u.Attrs.NextHop {
		t.Fatalf("next hop = %v", got.Attrs.NextHop)
	}
	if !got.Attrs.HasLP || got.Attrs.LocalPref != 200 {
		t.Fatalf("local pref = %v %v", got.Attrs.HasLP, got.Attrs.LocalPref)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	u := Update{Withdrawn: []Prefix{pfx(10, 0, 0, 0, 8)}}
	got, err := DecodeUpdate(EncodeUpdate(u)[headerLen:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Withdrawn) != 1 || len(got.NLRI) != 0 {
		t.Fatalf("got = %+v", got)
	}
}

func TestUpdateEmptyASPath(t *testing.T) {
	u := Update{
		Attrs: PathAttrs{NextHop: packet.IPv4Addr{1, 1, 1, 1}},
		NLRI:  []Prefix{pfx(10, 0, 0, 0, 8)},
	}
	got, err := DecodeUpdate(EncodeUpdate(u)[headerLen:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Attrs.ASPath) != 0 {
		t.Fatalf("as path = %v", got.Attrs.ASPath)
	}
}

func TestPrefixEncodingLengths(t *testing.T) {
	// Prefix encoding truncates to ceil(len/8) bytes: exercise every
	// byte-boundary class.
	cases := []Prefix{
		pfx(0, 0, 0, 0, 0),
		pfx(128, 0, 0, 0, 1),
		pfx(10, 0, 0, 0, 8),
		pfx(10, 128, 0, 0, 9),
		pfx(10, 1, 0, 0, 16),
		pfx(10, 1, 128, 0, 17),
		pfx(10, 1, 2, 0, 24),
		pfx(10, 1, 2, 3, 32),
	}
	enc := encodePrefixes(nil, cases)
	got, err := decodePrefixes(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cases) {
		t.Fatalf("decoded %d prefixes", len(got))
	}
	for i := range cases {
		if got[i] != cases[i].Canonical() {
			t.Fatalf("prefix %d: %v != %v", i, got[i], cases[i])
		}
	}
}

func TestPrefixCanonical(t *testing.T) {
	p := Prefix{Addr: packet.IPv4Addr{10, 1, 2, 3}, Len: 16}
	if c := p.Canonical(); c.Addr != (packet.IPv4Addr{10, 1, 0, 0}) {
		t.Fatalf("canonical = %v", c)
	}
	over := Prefix{Addr: packet.IPv4Addr{1, 2, 3, 4}, Len: 40}
	if c := over.Canonical(); c.Len != 32 {
		t.Fatalf("over-length = %+v", c)
	}
	zero := Prefix{Addr: packet.IPv4Addr{9, 9, 9, 9}, Len: 0}
	if c := zero.Canonical(); c.Addr != (packet.IPv4Addr{}) {
		t.Fatalf("default = %v", c)
	}
	if p.String() != "10.1.2.3/16" {
		t.Fatalf("string = %q", p.String())
	}
}

func TestDecodeBadPrefixes(t *testing.T) {
	if _, err := decodePrefixes([]byte{33, 1, 2, 3, 4, 5}); err == nil {
		t.Fatal("prefix length 33 accepted")
	}
	if _, err := decodePrefixes([]byte{24, 1}); err != ErrTruncated {
		t.Fatal("truncated prefix accepted")
	}
}

func TestDecodeUpdateTruncations(t *testing.T) {
	u := Update{
		Attrs: PathAttrs{ASPath: []uint16{1}, NextHop: packet.IPv4Addr{1, 1, 1, 1}},
		NLRI:  []Prefix{pfx(10, 0, 0, 0, 8)},
	}
	enc := EncodeUpdate(u)
	body := enc[headerLen:]
	for cut := 0; cut < len(body); cut++ {
		// Must never panic; errors allowed.
		_, _ = DecodeUpdate(body[:cut])
	}
}

func TestUpdateRoundTripProperty(t *testing.T) {
	f := func(addrs [][4]byte, lens []uint8, asPath []uint16) bool {
		var nlri []Prefix
		for i, a := range addrs {
			if i >= 20 {
				break
			}
			l := uint8(24)
			if i < len(lens) {
				l = lens[i] % 33
			}
			nlri = append(nlri, Prefix{Addr: packet.IPv4Addr(a), Len: l}.Canonical())
		}
		if len(asPath) > 100 {
			asPath = asPath[:100]
		}
		u := Update{
			Attrs: PathAttrs{ASPath: asPath, NextHop: packet.IPv4Addr{9, 9, 9, 9}},
			NLRI:  nlri,
		}
		got, err := DecodeUpdate(EncodeUpdate(u)[headerLen:])
		if err != nil {
			return false
		}
		if len(got.NLRI) != len(nlri) {
			return false
		}
		for i := range nlri {
			if got.NLRI[i] != nlri[i] {
				return false
			}
		}
		if len(nlri) > 0 {
			if len(got.Attrs.ASPath) != len(asPath) {
				return false
			}
			for i := range asPath {
				if got.Attrs.ASPath[i] != asPath[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeUpdate(b *testing.B) {
	u := Update{
		Attrs: PathAttrs{ASPath: []uint16{65001}, NextHop: packet.IPv4Addr{1, 2, 3, 4}},
		NLRI:  []Prefix{pfx(10, 0, 0, 0, 24), pfx(10, 0, 1, 0, 24)},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeUpdate(u)
	}
}

func BenchmarkDecodeUpdate(b *testing.B) {
	enc := EncodeUpdate(Update{
		Attrs: PathAttrs{ASPath: []uint16{65001}, NextHop: packet.IPv4Addr{1, 2, 3, 4}},
		NLRI:  []Prefix{pfx(10, 0, 0, 0, 24), pfx(10, 0, 1, 0, 24)},
	})
	body := enc[headerLen:]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeUpdate(body); err != nil {
			b.Fatal(err)
		}
	}
}

// Decoders must never panic on arbitrary bytes (they face the network).
func TestDecodersRobustOnRandomBytes(t *testing.T) {
	r := newRand(99)
	for i := 0; i < 20000; i++ {
		n := int(r.Uint32() % 64)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(r.Uint32())
		}
		_, _, _ = DecodeHeader(buf)
		_, _ = DecodeOpen(buf)
		_, _ = DecodeUpdate(buf)
		_, _ = DecodeNotification(buf)
		_, _ = DecodeBFD(buf)
		_, _ = decodePrefixes(buf)
	}
}

// newRand is a tiny local generator to avoid importing internal/sim here.
type xorshift struct{ s uint64 }

func newRand(seed uint64) *xorshift { return &xorshift{s: seed*2685821657736338717 + 1} }
func (x *xorshift) Uint32() uint32 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return uint32(x.s)
}
