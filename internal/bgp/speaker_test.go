package bgp

import (
	"net"
	"sync"
	"testing"
	"time"

	"albatross/internal/packet"
)

// startPair establishes a session between two speakers over a buffered
// in-memory conn and returns both established speakers.
func startPair(t *testing.T, a, b SpeakerConfig) (*Speaker, *Speaker) {
	t.Helper()
	ca, cb := newBufConnPair()
	sa := NewSpeaker(ca, a)
	sb := NewSpeaker(cb, b)
	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = sa.Start() }()
	go func() { defer wg.Done(); errB = sb.Start() }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("handshake: %v / %v", errA, errB)
	}
	t.Cleanup(func() {
		sa.Close()
		sb.Close()
	})
	return sa, sb
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestHandshakeEstablishes(t *testing.T) {
	established := make(chan struct{}, 2)
	sa, sb := startPair(t,
		SpeakerConfig{AS: 65001, RouterID: 1, OnEstablished: func() { established <- struct{}{} }},
		SpeakerConfig{AS: 65002, RouterID: 2, OnEstablished: func() { established <- struct{}{} }},
	)
	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Fatalf("states: %v / %v", sa.State(), sb.State())
	}
	if sa.PeerAS() != 65002 || sb.PeerAS() != 65001 {
		t.Fatalf("peer AS: %d / %d", sa.PeerAS(), sb.PeerAS())
	}
	if sa.PeerRouterID() != 2 || sb.PeerRouterID() != 1 {
		t.Fatal("peer router IDs wrong")
	}
	if sa.IsIBGP() || sb.IsIBGP() {
		t.Fatal("different-AS session classified iBGP")
	}
	<-established
	<-established
}

func TestIBGPDetection(t *testing.T) {
	sa, sb := startPair(t,
		SpeakerConfig{AS: 65001, RouterID: 1},
		SpeakerConfig{AS: 65001, RouterID: 2},
	)
	if !sa.IsIBGP() || !sb.IsIBGP() {
		t.Fatal("same-AS session not iBGP")
	}
}

func TestPeerASEnforcement(t *testing.T) {
	ca, cb := newBufConnPair()
	sa := NewSpeaker(ca, SpeakerConfig{AS: 65001, RouterID: 1, PeerAS: 65099})
	sb := NewSpeaker(cb, SpeakerConfig{AS: 65002, RouterID: 2})
	var wg sync.WaitGroup
	var errA error
	wg.Add(2)
	go func() { defer wg.Done(); errA = sa.Start() }()
	go func() { defer wg.Done(); _ = sb.Start() }()
	wg.Wait()
	if errA == nil {
		t.Fatal("wrong peer AS accepted")
	}
	sa.Close()
	sb.Close()
}

func TestAnnounceAndLearn(t *testing.T) {
	type routeEvent struct {
		p         Prefix
		withdrawn bool
	}
	var mu sync.Mutex
	var events []routeEvent
	sa, sb := startPair(t,
		SpeakerConfig{AS: 65001, RouterID: 1, NextHop: packet.IPv4Addr{10, 0, 0, 1}},
		SpeakerConfig{AS: 65002, RouterID: 2, OnRoute: func(p Prefix, a PathAttrs, w bool) {
			mu.Lock()
			events = append(events, routeEvent{p, w})
			mu.Unlock()
		}},
	)
	vip := pfx(203, 0, 113, 0, 24)
	if err := sa.Announce([]Prefix{vip}, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "route learned", func() bool { return sb.AdjIn().Len() == 1 })

	rt, ok := sb.AdjIn().Best(vip)
	if !ok {
		t.Fatal("route missing from adj-rib-in")
	}
	// eBGP: AS prepended, next-hop-self.
	if len(rt.Attrs.ASPath) != 1 || rt.Attrs.ASPath[0] != 65001 {
		t.Fatalf("as path = %v", rt.Attrs.ASPath)
	}
	if rt.Attrs.NextHop != (packet.IPv4Addr{10, 0, 0, 1}) {
		t.Fatalf("next hop = %v", rt.Attrs.NextHop)
	}
	if rt.PeerID != 1 {
		t.Fatalf("peer ID = %d", rt.PeerID)
	}

	// Withdraw.
	if err := sa.Withdraw([]Prefix{vip}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "route withdrawn", func() bool { return sb.AdjIn().Len() == 0 })

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 || events[0].withdrawn || !events[1].withdrawn {
		t.Fatalf("events = %+v", events)
	}
}

func TestIBGPAnnounceCarriesLocalPref(t *testing.T) {
	sa, sb := startPair(t,
		SpeakerConfig{AS: 65001, RouterID: 1},
		SpeakerConfig{AS: 65001, RouterID: 2},
	)
	vip := pfx(198, 51, 100, 0, 24)
	if err := sa.Announce([]Prefix{vip}, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "ibgp route", func() bool { return sb.AdjIn().Len() == 1 })
	rt, _ := sb.AdjIn().Best(vip)
	if !rt.Attrs.HasLP || rt.Attrs.LocalPref != 100 {
		t.Fatalf("local pref = %+v", rt.Attrs)
	}
	// iBGP must not prepend own AS.
	if len(rt.Attrs.ASPath) != 0 {
		t.Fatalf("as path = %v", rt.Attrs.ASPath)
	}
}

func TestAnnounceViaPathPropagates(t *testing.T) {
	sa, sb := startPair(t,
		SpeakerConfig{AS: 65001, RouterID: 1},
		SpeakerConfig{AS: 65002, RouterID: 2},
	)
	vip := pfx(192, 0, 2, 0, 24)
	if err := sa.Announce([]Prefix{vip}, []uint16{65100, 65200}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "route", func() bool { return sb.AdjIn().Len() == 1 })
	rt, _ := sb.AdjIn().Best(vip)
	want := []uint16{65001, 65100, 65200}
	if len(rt.Attrs.ASPath) != 3 {
		t.Fatalf("as path = %v", rt.Attrs.ASPath)
	}
	for i, as := range want {
		if rt.Attrs.ASPath[i] != as {
			t.Fatalf("as path = %v, want %v", rt.Attrs.ASPath, want)
		}
	}
}

func TestAnnounceBeforeEstablishedFails(t *testing.T) {
	ca, _ := newBufConnPair()
	s := NewSpeaker(ca, SpeakerConfig{AS: 1, RouterID: 1})
	if err := s.Announce([]Prefix{pfx(10, 0, 0, 0, 8)}, nil); err == nil {
		t.Fatal("announce in idle state succeeded")
	}
	if err := s.Withdraw([]Prefix{pfx(10, 0, 0, 0, 8)}); err == nil {
		t.Fatal("withdraw in idle state succeeded")
	}
}

func TestGracefulCloseNotifiesPeer(t *testing.T) {
	downErr := make(chan error, 1)
	sa, sb := startPair(t,
		SpeakerConfig{AS: 65001, RouterID: 1},
		SpeakerConfig{AS: 65002, RouterID: 2, OnDown: func(err error) { downErr <- err }},
	)
	sa.Close()
	select {
	case err := <-downErr:
		if n, ok := err.(Notification); !ok || n.Code != NotifCease {
			t.Fatalf("peer down reason = %v, want CEASE notification", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never saw the session go down")
	}
	waitFor(t, "peer closed", func() bool { return sb.State() == StateClosed })
}

func TestKeepalivesMaintainSession(t *testing.T) {
	// Very short hold time: the session must survive well beyond it thanks
	// to keepalives.
	sa, sb := startPair(t,
		SpeakerConfig{AS: 65001, RouterID: 1, HoldTime: 150 * time.Millisecond},
		SpeakerConfig{AS: 65002, RouterID: 2, HoldTime: 150 * time.Millisecond},
	)
	time.Sleep(500 * time.Millisecond)
	if sa.State() != StateEstablished || sb.State() != StateEstablished {
		t.Fatalf("session died despite keepalives: %v/%v err=%v/%v",
			sa.State(), sb.State(), sa.Err(), sb.Err())
	}
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{
		StateIdle: "idle", StateOpenSent: "open-sent", StateOpenConfirm: "open-confirm",
		StateEstablished: "established", StateClosed: "closed", State(99): "invalid",
	} {
		if st.String() != want {
			t.Errorf("%d = %q", st, st.String())
		}
	}
}

func TestHoldTimeNegotiation(t *testing.T) {
	sa, sb := startPair(t,
		SpeakerConfig{AS: 65001, RouterID: 1, HoldTime: 90 * time.Second},
		SpeakerConfig{AS: 65002, RouterID: 2, HoldTime: 30 * time.Second},
	)
	// RFC 4271: both sides use min(ours, peer's).
	if sa.HoldTime() != 30*time.Second || sb.HoldTime() != 30*time.Second {
		t.Fatalf("negotiated hold = %v / %v, want 30s", sa.HoldTime(), sb.HoldTime())
	}
}

func TestServeOverTCP(t *testing.T) {
	// Full live stack over loopback TCP: switch.Serve + proxy.Serve.
	swLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback networking:", err)
	}
	defer swLn.Close()
	sw := NewSwitch(65000, 1)
	go sw.Serve(swLn)
	defer sw.Close()

	upConn, err := net.Dial("tcp", swLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewProxy(upConn, 64512, 65000, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	podLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer podLn.Close()
	go proxy.Serve(podLn)

	conn, err := net.Dial("tcp", podLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	podSp := NewSpeaker(conn, SpeakerConfig{AS: 64512, RouterID: 100, PeerAS: 64512})
	if err := podSp.Start(); err != nil {
		t.Fatal(err)
	}
	defer podSp.Close()

	vip := pfx(203, 0, 113, 0, 24)
	if err := podSp.Announce([]Prefix{vip}, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "route at switch over TCP", func() bool { return sw.RIB().Len() == 1 })
	if sw.PeerCount() != 1 {
		t.Fatalf("switch peers = %d", sw.PeerCount())
	}
}
