package bgp

import (
	"sync"
	"testing"
	"time"
)

// buildProxySetup wires switch <-eBGP-> proxy <-iBGP-> n pod speakers.
func buildProxySetup(t *testing.T, pods int) (*Switch, *Proxy, []*Speaker) {
	t.Helper()
	sw := NewSwitch(65000, 0xffff0001)

	upA, upB := newBufConnPair()
	var proxy *Proxy
	var perr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		proxy, perr = NewProxy(upA, 64512, 65000, 0xaa000001)
	}()
	go func() {
		defer wg.Done()
		if _, err := sw.AcceptPeer(upB); err != nil {
			t.Errorf("switch accept: %v", err)
		}
	}()
	wg.Wait()
	if perr != nil {
		t.Fatal(perr)
	}

	var podSpeakers []*Speaker
	for i := 0; i < pods; i++ {
		pa, pb := newBufConnPair()
		podSp := NewSpeaker(pa, SpeakerConfig{AS: 64512, RouterID: uint32(100 + i), PeerAS: 64512})
		var wg2 sync.WaitGroup
		wg2.Add(2)
		var podErr, proxyErr error
		go func() { defer wg2.Done(); podErr = podSp.Start() }()
		go func() { defer wg2.Done(); _, proxyErr = proxy.ServePod(pb) }()
		wg2.Wait()
		if podErr != nil || proxyErr != nil {
			t.Fatalf("pod %d session: %v / %v", i, podErr, proxyErr)
		}
		podSpeakers = append(podSpeakers, podSp)
	}
	t.Cleanup(func() {
		proxy.Close()
		sw.Close()
	})
	return sw, proxy, podSpeakers
}

func TestProxySinglePeerUpstream(t *testing.T) {
	sw, proxy, _ := buildProxySetup(t, 4)
	// The whole point: 4 pods, but the switch sees ONE peer.
	if sw.PeerCount() != 1 {
		t.Fatalf("switch peers = %d, want 1", sw.PeerCount())
	}
	if proxy.PodCount() != 4 {
		t.Fatalf("pod sessions = %d", proxy.PodCount())
	}
}

func TestProxyAggregatesAdvertisements(t *testing.T) {
	sw, proxy, pods := buildProxySetup(t, 3)
	vip := pfx(203, 0, 113, 0, 24)

	// All three pods advertise the same VIP: the switch must receive
	// exactly one upstream route.
	for _, p := range pods {
		if err := p.Announce([]Prefix{vip}, nil); err != nil {
			t.Fatal(err)
		}
	}
	waitForT(t, "switch learns VIP", func() bool { return sw.RIB().Len() == 1 })
	if proxy.AdvertisedCount() != 1 {
		t.Fatalf("advertised = %d", proxy.AdvertisedCount())
	}
	rt, ok := sw.RIB().Best(vip)
	if !ok {
		t.Fatal("VIP missing at switch")
	}
	// eBGP from proxy: AS path = [proxy AS].
	if len(rt.Attrs.ASPath) != 1 || rt.Attrs.ASPath[0] != 64512 {
		t.Fatalf("as path = %v", rt.Attrs.ASPath)
	}

	// First two pods withdraw: still advertised.
	pods[0].Withdraw([]Prefix{vip})
	pods[1].Withdraw([]Prefix{vip})
	time.Sleep(50 * time.Millisecond)
	if sw.RIB().Len() != 1 {
		t.Fatal("VIP withdrawn while a pod still advertises")
	}

	// Last pod withdraws: gone.
	pods[2].Withdraw([]Prefix{vip})
	waitForT(t, "switch withdraws VIP", func() bool { return sw.RIB().Len() == 0 })
}

func TestProxyPodDeathWithdraws(t *testing.T) {
	sw, _, pods := buildProxySetup(t, 2)
	vipShared := pfx(203, 0, 113, 0, 24)
	vipSolo := pfx(198, 51, 100, 0, 24)
	pods[0].Announce([]Prefix{vipShared, vipSolo}, nil)
	pods[1].Announce([]Prefix{vipShared}, nil)
	waitForT(t, "both VIPs at switch", func() bool { return sw.RIB().Len() == 2 })

	// Pod 0 dies without withdrawing. Its solo VIP must disappear; the
	// shared VIP survives via pod 1.
	pods[0].Close()
	waitForT(t, "solo VIP withdrawn", func() bool { return sw.RIB().Len() == 1 })
	if _, ok := sw.RIB().Best(vipShared); !ok {
		t.Fatal("shared VIP lost on pod death")
	}
}

func TestProxyRejectsIBGPUpstream(t *testing.T) {
	upA, _ := newBufConnPair()
	if _, err := NewProxy(upA, 65000, 65000, 1); err == nil {
		t.Fatal("iBGP upstream accepted")
	}
}

func TestSwitchRejectsIBGPPeer(t *testing.T) {
	sw := NewSwitch(65000, 1)
	ca, cb := newBufConnPair()
	peer := NewSpeaker(ca, SpeakerConfig{AS: 65000, RouterID: 2}) // same AS as switch
	var wg sync.WaitGroup
	var swErr error
	wg.Add(2)
	go func() { defer wg.Done(); _ = peer.Start() }()
	go func() { defer wg.Done(); _, swErr = sw.AcceptPeer(cb) }()
	wg.Wait()
	if swErr == nil {
		t.Fatal("switch accepted iBGP peer")
	}
	peer.Close()
}

func TestSwitchPeerTracking(t *testing.T) {
	sw, _, _ := buildProxySetup(t, 1)
	if sw.OverSafeThreshold() {
		t.Fatal("1 peer over threshold")
	}
	sw.MaxSafePeers = 0
	if !sw.OverSafeThreshold() {
		t.Fatal("threshold not enforced")
	}
}

func TestPeerMathFig7(t *testing.T) {
	// The paper's deployment: 32 servers per switch, 4 pods each, dual
	// proxies.
	m := PeerMath{Servers: 32, PodsPerServer: 4, ProxiesPerSrv: 2}
	if m.SwitchPeersDirect() != 128 {
		t.Fatalf("direct = %d", m.SwitchPeersDirect())
	}
	if m.SwitchPeersProxied() != 64 {
		t.Fatalf("proxied = %d", m.SwitchPeersProxied())
	}
	// Direct peering busts the 64-peer safe threshold; proxied fits.
	sw := NewSwitch(65000, 1)
	if m.SwitchPeersDirect() <= sw.MaxSafePeers {
		t.Fatal("direct should exceed threshold")
	}
	if m.SwitchPeersProxied() > sw.MaxSafePeers {
		t.Fatal("proxied should fit threshold")
	}
	// Default proxies.
	if (PeerMath{Servers: 4, PodsPerServer: 4}).SwitchPeersProxied() != 4 {
		t.Fatal("default 1 proxy per server")
	}
}

func TestConvergenceModel(t *testing.T) {
	m := DefaultConvergenceModel()
	if m.Converge(0) != 0 {
		t.Fatal("zero peers should converge instantly")
	}
	within := m.Converge(64)
	if within > 10*time.Second {
		t.Fatalf("64 peers converge in %v, want seconds", within)
	}
	over := m.Converge(128)
	if over < 10*time.Minute {
		t.Fatalf("128 peers converge in %v, paper says tens of minutes", over)
	}
	if m.Converge(65) <= within {
		t.Fatal("convergence must be monotone")
	}
}

func waitForT(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
