package bgp

import (
	"testing"

	"albatross/internal/sim"
)

func newTestFabric(t *testing.T, member int) (*sim.Engine, *Switch, *ProxiedSession) {
	t.Helper()
	eng := sim.NewEngine()
	sw := NewSwitch(65000, 0xFFFF0001)
	sw.Manual = true
	ps, err := NewProxiedSession(eng, sw, ProxiedSessionConfig{Member: member})
	if err != nil {
		t.Fatalf("NewProxiedSession: %v", err)
	}
	return eng, sw, ps
}

// The proxied path must reproduce the SimSession timing model exactly:
// identical flap schedules yield identical stats, detection latencies, and
// externally visible state at every sample point.
func TestProxiedSessionMatchesSimSessionTiming(t *testing.T) {
	engSim := sim.NewEngine()
	ref, err := NewSimSession(engSim, SimSessionConfig{})
	if err != nil {
		t.Fatalf("NewSimSession: %v", err)
	}
	engProx, _, ps := newTestFabric(t, 0)

	// An absorbed blip, a detected outage, overlapping flaps.
	schedule := []struct {
		at sim.Duration
		d  sim.Duration
	}{
		{100 * sim.Millisecond, 80 * sim.Millisecond}, // absorbed
		{1 * sim.Second, 400 * sim.Millisecond},       // detected
		{4 * sim.Second, 200 * sim.Millisecond},
		{4100 * sim.Millisecond, 300 * sim.Millisecond}, // overlap extends
	}
	for _, f := range schedule {
		f := f
		engSim.At(sim.Time(f.at), func() { ref.InjectFlap(f.d) })
		engProx.At(sim.Time(f.at), func() { ps.InjectFlap(f.d) })
	}

	for at := sim.Time(0); at <= sim.Time(8*sim.Second); at = at.Add(25 * sim.Millisecond) {
		engSim.RunUntil(at)
		engProx.RunUntil(at)
		if ref.RouteUp() != ps.RouteUp() || ref.BFDUp() != ps.BFDUp() || ref.LinkUp() != ps.LinkUp() {
			t.Fatalf("state diverged at %v: ref(route=%v bfd=%v link=%v) proxied(route=%v bfd=%v link=%v)",
				at, ref.RouteUp(), ref.BFDUp(), ref.LinkUp(), ps.RouteUp(), ps.BFDUp(), ps.LinkUp())
		}
		if ref.NextTransition() != ps.NextTransition() {
			t.Fatalf("lookahead diverged at %v: ref=%v proxied=%v", at, ref.NextTransition(), ps.NextTransition())
		}
	}
	if ref.Stats() != ps.Stats() {
		t.Fatalf("stats diverged:\n  ref     %+v\n  proxied %+v", ref.Stats(), ps.Stats())
	}
	if ps.Desyncs != 0 {
		t.Fatalf("fabric desyncs: %d", ps.Desyncs)
	}
}

// Detection latency through the proxied path must respect SimSession's
// bounds: at least DetectMult probe intervals, at most the detection window
// (one extra interval of grid quantization).
func TestProxiedSessionDetectionWindowBounds(t *testing.T) {
	eng, sw, ps := newTestFabric(t, 3)

	// Well under the window: absorbed, never leaves the RIB. (Off-grid
	// start so grid quantization can't stretch it into a detection.)
	eng.At(sim.Time(110*sim.Millisecond), func() { ps.InjectFlap(80 * sim.Millisecond) })
	eng.RunUntil(sim.Time(500 * sim.Millisecond))
	if st := ps.Stats(); st.Absorbed != 1 || st.Detections != 0 {
		t.Fatalf("short flap: %+v", st)
	}
	if sw.RIB().PathCount(ps.Prefix()) != 1 {
		t.Fatalf("short flap disturbed the RIB")
	}

	// Longer than the window: detected within bounds. Missed-probe counting
	// runs from the last received probe, which can precede the flap by up
	// to one interval — so latency from flap start spans
	// [(DetectMult−1)×Tx, (DetectMult+1)×Tx].
	eng.At(sim.Time(1010*sim.Millisecond), func() { ps.InjectFlap(400 * sim.Millisecond) })
	eng.RunUntil(sim.Time(3 * sim.Second))
	st := ps.Stats()
	if st.Detections != 1 {
		t.Fatalf("long flap not detected: %+v", st)
	}
	lo := sim.Duration(2) * 50 * sim.Millisecond
	if st.LastDetectNS < lo || st.LastDetectNS > ps.DetectionWindow() {
		t.Fatalf("detection latency %v outside [%v, %v]", st.LastDetectNS, lo, ps.DetectionWindow())
	}
}

// Every BFD transition must be mirrored into the switch RIB via real UPDATE
// messages, and admin drains must withdraw through the fabric while leaving
// the BFD eligibility view untouched.
func TestProxiedSessionMirrorsSwitchRIB(t *testing.T) {
	eng, sw, ps := newTestFabric(t, 1)
	pfx := ps.Prefix()
	if sw.RIB().PathCount(pfx) != 1 {
		t.Fatalf("initial advertisement missing from RIB")
	}
	if got := sw.PeerCount(); got != 1 {
		t.Fatalf("switch peers = %d, want 1 (proxied)", got)
	}

	ps.InjectFlap(400 * sim.Millisecond)
	eng.RunUntil(sim.Time(300 * sim.Millisecond)) // past the 200ms detection window
	if ps.RouteUp() || sw.RIB().PathCount(pfx) != 0 {
		t.Fatalf("detection not mirrored: routeUp=%v paths=%d", ps.RouteUp(), sw.RIB().PathCount(pfx))
	}
	eng.RunUntil(sim.Time(2 * sim.Second)) // link back + 1s re-establish delay
	if !ps.RouteUp() || sw.RIB().PathCount(pfx) != 1 {
		t.Fatalf("recovery not mirrored: routeUp=%v paths=%d", ps.RouteUp(), sw.RIB().PathCount(pfx))
	}

	ps.SetAdmin(false)
	if sw.RIB().PathCount(pfx) != 0 {
		t.Fatalf("admin drain not withdrawn from RIB")
	}
	if !ps.RouteUp() {
		t.Fatalf("admin drain must not touch the BFD eligibility view")
	}
	if !ps.BFDUp() {
		t.Fatalf("admin drain must not touch BFD")
	}
	ps.SetAdmin(true)
	if sw.RIB().PathCount(pfx) != 1 {
		t.Fatalf("admin restore not re-advertised")
	}
	if ps.AdminWithdraws != 1 || ps.AdminRestores != 1 || ps.Desyncs != 0 {
		t.Fatalf("counters: %+v %+v %+v", ps.AdminWithdraws, ps.AdminRestores, ps.Desyncs)
	}

	// Keepalives flow on the virtual clock without disturbing anything.
	eng.RunUntil(sim.Time(120 * sim.Second))
	if sw.RIB().PathCount(pfx) != 1 || ps.Desyncs != 0 {
		t.Fatalf("keepalive cadence disturbed state: paths=%d desyncs=%d",
			sw.RIB().PathCount(pfx), ps.Desyncs)
	}
}

// The proxy refcounts multi-pod advertisements of the same VIP: the
// upstream withdraw happens only when the last pod withdraws (paper §5).
func TestProxiedSessionMultiPodRefcount(t *testing.T) {
	_, sw, ps := newTestFabric(t, 2)
	pfx := ps.Prefix()

	// A second GW pod peers with the same proxy and announces the same VIP.
	c1, c2 := NewMemPipe()
	ch := make(chan sessionResult, 1)
	go func() {
		sp, err := ps.Proxy().ServePod(c1)
		ch <- sessionResult{sp, err}
	}()
	pod2 := NewSpeaker(c2, SpeakerConfig{AS: 64512, RouterID: 0x90000002, PeerAS: 64512, Manual: true})
	if err := pod2.Start(); err != nil {
		t.Fatalf("pod2 start: %v", err)
	}
	res := <-ch
	if res.err != nil {
		t.Fatalf("ServePod: %v", res.err)
	}
	if err := pod2.Announce([]Prefix{pfx}, nil); err != nil {
		t.Fatalf("pod2 announce: %v", err)
	}
	_ = res.sp.Pump()
	ps.Pump()

	before := ps.Proxy().Withdrawn
	// Primary pod withdraws: refcount drops 2→1, upstream must NOT withdraw.
	if err := ps.PodSpeaker().Withdraw([]Prefix{pfx}); err != nil {
		t.Fatalf("withdraw: %v", err)
	}
	ps.Pump()
	if sw.RIB().PathCount(pfx) != 1 {
		t.Fatalf("upstream withdrew with a pod still advertising")
	}
	if ps.Proxy().Withdrawn != before {
		t.Fatalf("upstream withdraw count moved: %d → %d", before, ps.Proxy().Withdrawn)
	}

	// Last pod withdraws: now the upstream withdraw goes out.
	if err := pod2.Withdraw([]Prefix{pfx}); err != nil {
		t.Fatalf("pod2 withdraw: %v", err)
	}
	_ = res.sp.Pump()
	ps.Pump()
	if sw.RIB().PathCount(pfx) != 0 {
		t.Fatalf("last-pod withdraw not propagated")
	}
	if ps.Proxy().Withdrawn != before+1 {
		t.Fatalf("upstream withdraws = %d, want %d", ps.Proxy().Withdrawn, before+1)
	}
}
