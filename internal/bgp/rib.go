package bgp

import (
	"sort"
	"sync"
)

// Route is one path to a prefix learned from a peer.
type Route struct {
	Prefix Prefix
	Attrs  PathAttrs
	PeerID uint32 // router ID of the advertising peer
}

// RIB is a routing information base with best-path selection. It is safe
// for concurrent use (speakers update it from their read loops).
type RIB struct {
	mu     sync.RWMutex
	routes map[Prefix]map[uint32]Route // prefix -> peerID -> route
}

// NewRIB returns an empty RIB.
func NewRIB() *RIB {
	return &RIB{routes: make(map[Prefix]map[uint32]Route)}
}

// Update installs or replaces a peer's route. It reports whether the best
// path for the prefix changed.
func (r *RIB) Update(rt Route) bool {
	rt.Prefix = rt.Prefix.Canonical()
	r.mu.Lock()
	defer r.mu.Unlock()
	before, _ := r.bestLocked(rt.Prefix)
	m := r.routes[rt.Prefix]
	if m == nil {
		m = make(map[uint32]Route)
		r.routes[rt.Prefix] = m
	}
	m[rt.PeerID] = rt
	after, _ := r.bestLocked(rt.Prefix)
	return !routeEqual(before, after)
}

// routeEqual compares routes field-wise (Route holds a slice, so == is
// unavailable).
func routeEqual(a, b Route) bool {
	if a.Prefix != b.Prefix || a.PeerID != b.PeerID {
		return false
	}
	if a.Attrs.Origin != b.Attrs.Origin || a.Attrs.NextHop != b.Attrs.NextHop ||
		a.Attrs.HasLP != b.Attrs.HasLP || a.Attrs.LocalPref != b.Attrs.LocalPref {
		return false
	}
	if len(a.Attrs.ASPath) != len(b.Attrs.ASPath) {
		return false
	}
	for i := range a.Attrs.ASPath {
		if a.Attrs.ASPath[i] != b.Attrs.ASPath[i] {
			return false
		}
	}
	return true
}

// Withdraw removes a peer's route for a prefix. It reports whether the
// best path changed (including disappearing).
func (r *RIB) Withdraw(p Prefix, peerID uint32) bool {
	p = p.Canonical()
	r.mu.Lock()
	defer r.mu.Unlock()
	before, hadBefore := r.bestLocked(p)
	m := r.routes[p]
	if m == nil {
		return false
	}
	if _, ok := m[peerID]; !ok {
		return false
	}
	delete(m, peerID)
	if len(m) == 0 {
		delete(r.routes, p)
	}
	after, hasAfter := r.bestLocked(p)
	return hadBefore != hasAfter || !routeEqual(before, after)
}

// WithdrawPeer removes every route learned from a peer (session death) and
// returns the prefixes whose best path changed.
func (r *RIB) WithdrawPeer(peerID uint32) []Prefix {
	r.mu.Lock()
	defer r.mu.Unlock()
	var changed []Prefix
	for p, m := range r.routes {
		if _, ok := m[peerID]; !ok {
			continue
		}
		before, _ := r.bestLocked(p)
		delete(m, peerID)
		if len(m) == 0 {
			delete(r.routes, p)
			changed = append(changed, p)
			continue
		}
		after, _ := r.bestLocked(p)
		if !routeEqual(before, after) {
			changed = append(changed, p)
		}
	}
	return changed
}

// better reports whether a beats b under the (simplified) BGP decision
// process: higher LOCAL_PREF, then shorter AS_PATH, then lower peer ID.
func better(a, b Route) bool {
	lpa, lpb := uint32(100), uint32(100)
	if a.Attrs.HasLP {
		lpa = a.Attrs.LocalPref
	}
	if b.Attrs.HasLP {
		lpb = b.Attrs.LocalPref
	}
	if lpa != lpb {
		return lpa > lpb
	}
	if len(a.Attrs.ASPath) != len(b.Attrs.ASPath) {
		return len(a.Attrs.ASPath) < len(b.Attrs.ASPath)
	}
	return a.PeerID < b.PeerID
}

func (r *RIB) bestLocked(p Prefix) (Route, bool) {
	m := r.routes[p]
	if len(m) == 0 {
		return Route{}, false
	}
	var best Route
	first := true
	for _, rt := range m {
		if first || better(rt, best) {
			best = rt
			first = false
		}
	}
	return best, true
}

// Best returns the best path for a prefix.
func (r *RIB) Best(p Prefix) (Route, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.bestLocked(p.Canonical())
}

// Len returns the number of prefixes with at least one path.
func (r *RIB) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.routes)
}

// Prefixes returns all prefixes in deterministic order.
func (r *RIB) Prefixes() []Prefix {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Prefix, 0, len(r.routes))
	for p := range r.routes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Addr.Uint32(), out[j].Addr.Uint32()
		if ai != aj {
			return ai < aj
		}
		return out[i].Len < out[j].Len
	})
	return out
}

// PathCount returns the number of paths stored for a prefix.
func (r *RIB) PathCount(p Prefix) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.routes[p.Canonical()])
}
