package bgp

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Switch models the uplink switch: a real passive eBGP endpoint (it
// accepts peer sessions and accumulates routes in a RIB) combined with the
// control-plane capacity model behind the paper's container-density
// constraint — beyond ~64 peers, route convergence after failures degrades
// to tens of minutes.
type Switch struct {
	AS       uint16
	RouterID uint32
	// MaxSafePeers is the operational threshold (paper: 64).
	MaxSafePeers int
	// Manual propagates to every accepted peer session: no background
	// goroutines; the owner pumps and emits keepalives on its own clock.
	// Must be set before AcceptPeer. See SpeakerConfig.Manual.
	Manual bool

	mu    sync.Mutex
	peers map[*Speaker]bool
	rib   *RIB
}

// NewSwitch creates a switch endpoint.
func NewSwitch(as uint16, routerID uint32) *Switch {
	return &Switch{
		AS:           as,
		RouterID:     routerID,
		MaxSafePeers: 64,
		peers:        make(map[*Speaker]bool),
		rib:          NewRIB(),
	}
}

// RIB returns the switch's route table.
func (sw *Switch) RIB() *RIB { return sw.rib }

// PeerCount returns the number of live sessions.
func (sw *Switch) PeerCount() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return len(sw.peers)
}

// OverSafeThreshold reports whether the switch is beyond its safe peer
// count.
func (sw *Switch) OverSafeThreshold() bool {
	return sw.PeerCount() > sw.MaxSafePeers
}

// AcceptPeer serves one eBGP session (from a gateway pod or a BGP proxy).
// The session is established before returning.
func (sw *Switch) AcceptPeer(conn net.Conn) (*Speaker, error) {
	var sp *Speaker
	sp = NewSpeaker(conn, SpeakerConfig{
		AS:       sw.AS,
		RouterID: sw.RouterID,
		Manual:   sw.Manual,
		// PeerAS 0: the switch accepts any external AS.
		OnRoute: func(prefix Prefix, attrs PathAttrs, withdrawn bool) {
			if withdrawn {
				sw.rib.Withdraw(prefix, sp.PeerRouterID())
			} else {
				sw.rib.Update(Route{Prefix: prefix, Attrs: attrs, PeerID: sp.PeerRouterID()})
			}
		},
		OnDown: func(error) {
			sw.mu.Lock()
			delete(sw.peers, sp)
			sw.mu.Unlock()
			sw.rib.WithdrawPeer(sp.PeerRouterID())
		},
	})
	if err := sp.Start(); err != nil {
		return nil, fmt.Errorf("bgp: switch peer: %w", err)
	}
	if sp.PeerAS() == sw.AS {
		sp.Close()
		return nil, fmt.Errorf("bgp: switch requires eBGP peers (got AS %d)", sp.PeerAS())
	}
	sw.mu.Lock()
	sw.peers[sp] = true
	sw.mu.Unlock()
	return sp, nil
}

// Serve accepts eBGP peers from a listener until it is closed. Sessions
// that fail the handshake (or attempt iBGP) are simply dropped; Serve only
// returns on listener errors.
func (sw *Switch) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			_, _ = sw.AcceptPeer(c)
		}(conn)
	}
}

// Close tears down all peer sessions.
func (sw *Switch) Close() {
	sw.mu.Lock()
	peers := make([]*Speaker, 0, len(sw.peers))
	for sp := range sw.peers {
		peers = append(peers, sp)
	}
	sw.mu.Unlock()
	for _, sp := range peers {
		sp.Close()
	}
}

// ConvergenceModel estimates route convergence time after a control-plane
// event (switch restart, power loss) as a function of peer count. Within
// the safe threshold convergence is linear (per-peer session re-sync);
// beyond it the control-plane CPU saturates and convergence degrades
// quadratically, reaching the paper's "tens of minutes".
type ConvergenceModel struct {
	PerPeer     time.Duration // linear cost per peer
	SafePeers   int
	OverPenalty time.Duration // quadratic coefficient beyond the threshold
}

// DefaultConvergenceModel matches the paper's anecdotes: 64 peers converge
// in seconds; ~128 peers can take tens of minutes after abnormal events.
func DefaultConvergenceModel() ConvergenceModel {
	return ConvergenceModel{
		PerPeer:     50 * time.Millisecond,
		SafePeers:   64,
		OverPenalty: 500 * time.Millisecond,
	}
}

// Converge returns the modelled convergence time for n peers.
func (m ConvergenceModel) Converge(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	d := time.Duration(n) * m.PerPeer
	if n > m.SafePeers {
		over := n - m.SafePeers
		d += time.Duration(over*over) * m.OverPenalty
	}
	return d
}
