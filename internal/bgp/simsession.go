package bgp

import (
	"fmt"

	"albatross/internal/errs"
	"albatross/internal/sim"
)

// SimSession is a deterministic, virtual-time model of one gateway↔switch
// BGP session guarded by BFD, for fault-injection runs. The goroutine-based
// BFDSession/Speaker stack above runs on wall-clock sockets and therefore
// cannot take part in byte-identical simulations; SimSession reproduces the
// same timing contract (probe grid, DetectMult detection, three-way
// handshake, delayed re-advertisement) on the event engine.
//
// The model: BFD probes arrive on a fixed grid every TxInterval. A link
// flap (InjectFlap) suppresses probes for its duration. The session
// declares down at the first probe tick where DetectMult consecutive
// probes have been missed — so detection latency is DetectMult×TxInterval
// quantized up to the probe grid, the paper's "losing three consecutive
// BFD probe packets". Flaps shorter than the detection window are absorbed
// entirely (no state change), which is exactly why BFD probes ride the NIC
// priority queues. After the link returns, a three-way handshake (two
// received probes) brings BFD up, and the route is re-advertised
// ReestablishDelay later (BGP reconvergence), make-before-break style: the
// proxy path keeps forwarding until then.
type SimSession struct {
	engine *sim.Engine
	cfg    SimSessionConfig

	linkDownUntil sim.Time // probes are lost while now < linkDownUntil
	flapActive    bool     // a flap is in progress (for absorbed accounting)
	bfdUp         bool
	routeUp       bool
	lastRx        sim.Time // virtual time of last received probe
	goodRx        int      // consecutive received probes since link restore
	downedAt      sim.Time
	// nextProbeAt / readvertiseAt mirror the armed timers so NextTransition
	// can expose a conservative lookahead bound without touching the heap.
	nextProbeAt   sim.Time
	readvertiseAt sim.Time // zero when no re-advertisement is pending

	stats SimSessionStats
}

// SimSessionConfig parameterizes the model. Zero values take the BFD
// defaults used by the socket stack (50ms probes, DetectMult 3).
type SimSessionConfig struct {
	// TxInterval is the BFD probe interval. Default 50ms.
	TxInterval sim.Duration
	// DetectMult consecutive missed probes declare the session down.
	// Default 3.
	DetectMult int
	// ReestablishDelay is the gap between BFD recovering and the route
	// being advertised again (BGP session re-establishment + UPDATE
	// propagation). Default 1s.
	ReestablishDelay sim.Duration
	// OnDown fires when the session is declared down (route withdrawn).
	OnDown func(now sim.Time)
	// OnUp fires when the route is re-advertised.
	OnUp func(now sim.Time)
}

// SimSessionStats are cumulative session counters.
type SimSessionStats struct {
	Flaps        uint64       // InjectFlap calls
	Absorbed     uint64       // flaps that ended before BFD could detect them
	Detections   uint64       // session-down declarations
	Recoveries   uint64       // route re-advertisements
	DownTime     sim.Duration // total route-withdrawn time
	LastDetectNS sim.Duration // flap start → down declaration, last detection
}

// NewSimSession starts a session in the established state (link up, BFD up,
// route advertised) and begins the probe grid at the current virtual time.
func NewSimSession(engine *sim.Engine, cfg SimSessionConfig) (*SimSession, error) {
	if cfg.TxInterval <= 0 {
		cfg.TxInterval = 50 * sim.Millisecond
	}
	if cfg.DetectMult <= 0 {
		cfg.DetectMult = 3
	}
	if cfg.DetectMult > 255 {
		return nil, fmt.Errorf("bgp: DetectMult %d out of [1,255]: %w", cfg.DetectMult, errs.BadConfig)
	}
	if cfg.ReestablishDelay <= 0 {
		cfg.ReestablishDelay = 1 * sim.Second
	}
	s := &SimSession{
		engine:  engine,
		cfg:     cfg,
		bfdUp:   true,
		routeUp: true,
		lastRx:  engine.Now(),
	}
	s.nextProbeAt = engine.Now().Add(cfg.TxInterval)
	engine.AfterArg(cfg.TxInterval, simSessionProbe, s)
	return s, nil
}

// RouteUp reports whether the route is currently advertised.
func (s *SimSession) RouteUp() bool { return s.routeUp }

// LinkUp reports whether the physical link is up (no flap in progress).
func (s *SimSession) LinkUp() bool { return s.engine.Now() >= s.linkDownUntil }

// BFDUp reports whether BFD considers the session alive.
func (s *SimSession) BFDUp() bool { return s.bfdUp }

// Stats returns a snapshot of the counters.
func (s *SimSession) Stats() SimSessionStats { return s.stats }

// NextTransition returns a conservative lower bound on the next virtual
// time at which the session's externally visible state (RouteUp) could
// change: TimeMax while the session is settled (route advertised, link up,
// no flap in progress), else the next probe tick or pending
// re-advertisement, whichever is sooner. Sharded cluster runs use it as the
// lookahead horizon — control-plane work strictly before the bound may
// read RouteUp without advancing this session's engine. The bound is always
// strictly in the future: probe and re-advertisement times are re-armed
// before their handlers return.
func (s *SimSession) NextTransition() sim.Time {
	if s.routeUp && !s.flapActive {
		return sim.TimeMax
	}
	b := s.nextProbeAt
	if s.readvertiseAt != 0 && s.readvertiseAt < b {
		b = s.readvertiseAt
	}
	return b
}

// DetectionWindow returns the worst-case detection latency,
// DetectMult×TxInterval plus up to one probe interval of grid quantization.
func (s *SimSession) DetectionWindow() sim.Duration {
	return sim.Duration(s.cfg.DetectMult+1) * s.cfg.TxInterval
}

// InjectFlap takes the link down for d: probes are lost until now+d. A flap
// shorter than the detection window is absorbed. Overlapping flaps extend
// the outage (the later deadline wins).
func (s *SimSession) InjectFlap(d sim.Duration) {
	if d <= 0 {
		return
	}
	s.stats.Flaps++
	now := s.engine.Now()
	if !s.flapActive {
		s.flapActive = true
		s.downedAt = now
		s.goodRx = 0
	}
	if end := now.Add(d); end > s.linkDownUntil {
		s.linkDownUntil = end
	}
}

// simSessionProbe is the probe-grid tick.
func simSessionProbe(arg any) {
	s := arg.(*SimSession)
	now := s.engine.Now()
	if now >= s.linkDownUntil {
		if s.flapActive {
			s.flapActive = false
			if s.bfdUp {
				// The flap ended before DetectMult probes were missed.
				s.stats.Absorbed++
			}
		}
		s.lastRx = now
		if !s.bfdUp {
			// Three-way handshake: two consecutive received probes.
			s.goodRx++
			if s.goodRx >= 2 {
				s.bfdUp = true
				s.readvertiseAt = now.Add(s.cfg.ReestablishDelay)
				s.engine.AfterArg(s.cfg.ReestablishDelay, simSessionReadvertise, s)
			}
		}
	} else if s.bfdUp &&
		now.Sub(s.lastRx) >= sim.Duration(s.cfg.DetectMult)*s.cfg.TxInterval {
		// DetectMult consecutive probes missed: declare down, withdraw.
		s.bfdUp = false
		s.routeUp = false
		s.stats.Detections++
		s.stats.LastDetectNS = now.Sub(s.downedAt)
		if s.cfg.OnDown != nil {
			s.cfg.OnDown(now)
		}
	}
	s.nextProbeAt = now.Add(s.cfg.TxInterval)
	s.engine.AfterArg(s.cfg.TxInterval, simSessionProbe, s)
}

func simSessionReadvertise(arg any) {
	s := arg.(*SimSession)
	s.readvertiseAt = 0
	if !s.bfdUp || s.routeUp {
		// A new flap won the race, or already advertised.
		return
	}
	now := s.engine.Now()
	s.routeUp = true
	s.stats.Recoveries++
	s.stats.DownTime += now.Sub(s.downedAt)
	if s.cfg.OnUp != nil {
		s.cfg.OnUp(now)
	}
}
