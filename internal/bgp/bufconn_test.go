package bgp

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// bufConn is an in-memory, *buffered* duplex connection for tests.
// net.Pipe is synchronous (a Write blocks until the peer Reads), which
// deadlocks BGP's simultaneous OPEN exchange; real TCP sockets buffer.
type bufConn struct {
	rd *bufHalf
	wr *bufHalf
}

type bufHalf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newBufHalf() *bufHalf {
	h := &bufHalf{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *bufHalf) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, errors.New("bufconn: closed")
	}
	h.buf = append(h.buf, p...)
	h.cond.Broadcast()
	return len(p), nil
}

func (h *bufHalf) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.buf) == 0 && !h.closed {
		h.cond.Wait()
	}
	if len(h.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, h.buf)
	h.buf = h.buf[n:]
	return n, nil
}

func (h *bufHalf) close() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// newBufConnPair returns two connected endpoints.
func newBufConnPair() (net.Conn, net.Conn) {
	a2b := newBufHalf()
	b2a := newBufHalf()
	return &bufConn{rd: b2a, wr: a2b}, &bufConn{rd: a2b, wr: b2a}
}

func (c *bufConn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *bufConn) Write(p []byte) (int, error) { return c.wr.write(p) }
func (c *bufConn) Close() error {
	c.rd.close()
	c.wr.close()
	return nil
}

type bufAddr struct{}

func (bufAddr) Network() string { return "buf" }
func (bufAddr) String() string  { return "buf" }

func (c *bufConn) LocalAddr() net.Addr                { return bufAddr{} }
func (c *bufConn) RemoteAddr() net.Addr               { return bufAddr{} }
func (c *bufConn) SetDeadline(t time.Time) error      { return nil }
func (c *bufConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *bufConn) SetWriteDeadline(t time.Time) error { return nil }
