package bgp

import "net"

// newBufConnPair returns two connected buffered endpoints. Kept as a thin
// alias over the exported MemConn so older tests read naturally.
func newBufConnPair() (net.Conn, net.Conn) {
	a, b := NewMemPipe()
	return a, b
}
