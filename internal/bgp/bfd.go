package bgp

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// BFD (RFC 5880) asynchronous mode: each endpoint transmits control
// packets at a negotiated interval; missing DetectMult consecutive packets
// declares the session down. Albatross runs BFD next to BGP so link
// failures are detected in milliseconds rather than waiting for the BGP
// hold timer — which is also why BFD packets must ride the NIC pipeline's
// priority queues: three lost BFD packets during dataplane overload would
// take the whole link down (paper §4.3).

// BFDState is a session state.
type BFDState uint8

// BFD states (RFC 5880 §4.1 State field values).
const (
	BFDAdminDown BFDState = 0
	BFDDown      BFDState = 1
	BFDInit      BFDState = 2
	BFDUp        BFDState = 3
)

func (s BFDState) String() string {
	switch s {
	case BFDAdminDown:
		return "admin-down"
	case BFDDown:
		return "down"
	case BFDInit:
		return "init"
	case BFDUp:
		return "up"
	default:
		return "invalid"
	}
}

// bfdPacketLen is the mandatory section length (no auth).
const bfdPacketLen = 24

// BFDPacket is a BFD control packet's decoded fields.
type BFDPacket struct {
	Version    uint8
	Diag       uint8
	State      BFDState
	DetectMult uint8
	MyDisc     uint32
	YourDisc   uint32
	DesiredTx  uint32 // microseconds
	RequiredRx uint32 // microseconds
}

// ErrBFDTruncated reports a short BFD packet.
var ErrBFDTruncated = errors.New("bgp: truncated BFD packet")

// EncodeBFD serializes a control packet.
func EncodeBFD(p BFDPacket) []byte {
	b := make([]byte, bfdPacketLen)
	b[0] = 1<<5 | p.Diag&0x1f // version 1
	b[1] = uint8(p.State) << 6
	b[2] = p.DetectMult
	b[3] = bfdPacketLen
	binary.BigEndian.PutUint32(b[4:8], p.MyDisc)
	binary.BigEndian.PutUint32(b[8:12], p.YourDisc)
	binary.BigEndian.PutUint32(b[12:16], p.DesiredTx)
	binary.BigEndian.PutUint32(b[16:20], p.RequiredRx)
	// Required min echo RX = 0 (no echo mode).
	return b
}

// DecodeBFD parses a control packet.
func DecodeBFD(b []byte) (BFDPacket, error) {
	if len(b) < bfdPacketLen {
		return BFDPacket{}, ErrBFDTruncated
	}
	return BFDPacket{
		Version:    b[0] >> 5,
		Diag:       b[0] & 0x1f,
		State:      BFDState(b[1] >> 6),
		DetectMult: b[2],
		MyDisc:     binary.BigEndian.Uint32(b[4:8]),
		YourDisc:   binary.BigEndian.Uint32(b[8:12]),
		DesiredTx:  binary.BigEndian.Uint32(b[12:16]),
		RequiredRx: binary.BigEndian.Uint32(b[16:20]),
	}, nil
}

// BFDConfig configures a session endpoint.
type BFDConfig struct {
	LocalDisc uint32
	// TxInterval between control packets. Default 50ms.
	TxInterval time.Duration
	// DetectMult consecutive missed intervals declare failure. Default 3
	// (the paper's "losing three consecutive BFD probe packets").
	DetectMult int
	// OnStateChange fires on every state transition.
	OnStateChange func(BFDState)
}

// BFDSession runs BFD over a net.Conn (a UDP socket pair or net.Pipe).
type BFDSession struct {
	cfg  BFDConfig
	conn net.Conn

	mu         sync.Mutex
	state      BFDState
	remoteDisc uint32
	lastRecv   time.Time
	closed     bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewBFDSession creates a session in the Down state. Call Start.
func NewBFDSession(conn net.Conn, cfg BFDConfig) *BFDSession {
	if cfg.TxInterval <= 0 {
		cfg.TxInterval = 50 * time.Millisecond
	}
	if cfg.DetectMult <= 0 {
		cfg.DetectMult = 3
	}
	return &BFDSession{cfg: cfg, conn: conn, state: BFDDown, stop: make(chan struct{})}
}

// State returns the current session state.
func (s *BFDSession) State() BFDState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

func (s *BFDSession) setState(st BFDState) {
	s.mu.Lock()
	if s.state == st {
		s.mu.Unlock()
		return
	}
	s.state = st
	cb := s.cfg.OnStateChange
	s.mu.Unlock()
	if cb != nil {
		cb(st)
	}
}

// Start launches the transmit and receive loops.
func (s *BFDSession) Start() {
	s.wg.Add(2)
	go s.txLoop()
	go s.rxLoop()
}

func (s *BFDSession) txLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.TxInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			st := s.state
			rd := s.remoteDisc
			last := s.lastRecv
			s.mu.Unlock()

			// Detection timer: no packet within DetectMult*interval.
			if st == BFDUp && !last.IsZero() &&
				time.Since(last) > time.Duration(s.cfg.DetectMult)*s.cfg.TxInterval {
				s.setState(BFDDown)
			}
			pkt := BFDPacket{
				Version:    1,
				State:      s.State(),
				DetectMult: uint8(s.cfg.DetectMult),
				MyDisc:     s.cfg.LocalDisc,
				YourDisc:   rd,
				DesiredTx:  uint32(s.cfg.TxInterval / time.Microsecond),
				RequiredRx: uint32(s.cfg.TxInterval / time.Microsecond),
			}
			if _, err := s.conn.Write(EncodeBFD(pkt)); err != nil {
				s.setState(BFDDown)
				return
			}
		}
	}
}

func (s *BFDSession) rxLoop() {
	defer s.wg.Done()
	buf := make([]byte, bfdPacketLen)
	for {
		if _, err := io.ReadFull(s.conn, buf); err != nil {
			select {
			case <-s.stop:
			default:
				s.setState(BFDDown)
			}
			return
		}
		pkt, err := DecodeBFD(buf)
		if err != nil {
			continue
		}
		s.mu.Lock()
		s.remoteDisc = pkt.MyDisc
		s.lastRecv = time.Now()
		st := s.state
		s.mu.Unlock()

		// RFC 5880 §6.2 three-way handshake (simplified).
		switch st {
		case BFDDown:
			switch pkt.State {
			case BFDDown:
				s.setState(BFDInit)
			case BFDInit:
				s.setState(BFDUp)
			}
		case BFDInit:
			if pkt.State == BFDInit || pkt.State == BFDUp {
				s.setState(BFDUp)
			}
		case BFDUp:
			if pkt.State == BFDDown || pkt.State == BFDAdminDown {
				s.setState(BFDDown)
			}
		}
	}
}

// Close stops the session.
func (s *BFDSession) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	_ = s.conn.Close()
	s.wg.Wait()
}
