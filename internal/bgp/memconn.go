package bgp

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// MemConn is an in-memory, buffered, duplex net.Conn — the transport the
// virtual-time BGP fabric runs real sessions over. net.Pipe is synchronous
// (a Write blocks until the peer Reads), which deadlocks BGP's simultaneous
// OPEN exchange; real TCP sockets buffer, and so does MemConn: writes append
// to the peer's buffer and never block, reads block only when the buffer is
// empty.
//
// Speakers in Manual mode additionally rely on ReadAvailable to drain
// exactly the bytes already written (see Speaker.Pump): because a Speaker
// writes each encoded message atomically, the buffered byte stream is always
// a whole number of messages.
type MemConn struct {
	rd *memHalf
	wr *memHalf
}

type memHalf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newMemHalf() *memHalf {
	h := &memHalf{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *memHalf) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, errors.New("memconn: closed")
	}
	h.buf = append(h.buf, p...)
	h.cond.Broadcast()
	return len(p), nil
}

func (h *memHalf) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.buf) == 0 && !h.closed {
		h.cond.Wait()
	}
	if len(h.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, h.buf)
	h.buf = h.buf[n:]
	return n, nil
}

func (h *memHalf) available() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.buf)
}

func (h *memHalf) close() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// NewMemPipe returns two connected in-memory endpoints.
func NewMemPipe() (*MemConn, *MemConn) {
	a2b := newMemHalf()
	b2a := newMemHalf()
	return &MemConn{rd: b2a, wr: a2b}, &MemConn{rd: a2b, wr: b2a}
}

func (c *MemConn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *MemConn) Write(p []byte) (int, error) { return c.wr.write(p) }

// ReadAvailable returns the number of bytes buffered for reading without
// blocking.
func (c *MemConn) ReadAvailable() int { return c.rd.available() }

// Close closes both directions; blocked reads return EOF once drained.
func (c *MemConn) Close() error {
	c.rd.close()
	c.wr.close()
	return nil
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

func (c *MemConn) LocalAddr() net.Addr                { return memAddr{} }
func (c *MemConn) RemoteAddr() net.Addr               { return memAddr{} }
func (c *MemConn) SetDeadline(t time.Time) error      { return nil }
func (c *MemConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *MemConn) SetWriteDeadline(t time.Time) error { return nil }
