package bgp

import (
	"fmt"

	"albatross/internal/packet"
	"albatross/internal/sim"
)

// Uplink is the per-member gateway↔switch session surface the dataplane and
// fault layers consult. SimSession is the pure timing model; ProxiedSession
// keeps the same timing model but mirrors every transition through a real
// proxy-pod eBGP session into the switch RIB.
type Uplink interface {
	// RouteUp reports whether the member's VIP route is advertised — the
	// packet-path eligibility signal.
	RouteUp() bool
	// LinkUp reports whether the physical link is up.
	LinkUp() bool
	// BFDUp reports whether BFD considers the session alive.
	BFDUp() bool
	// Stats returns the cumulative session counters.
	Stats() SimSessionStats
	// NextTransition returns the lookahead bound for sharded runs (see
	// SimSession.NextTransition).
	NextTransition() sim.Time
	// DetectionWindow returns the worst-case BFD detection latency.
	DetectionWindow() sim.Duration
	// InjectFlap takes the link down for d.
	InjectFlap(d sim.Duration)
}

var (
	_ Uplink = (*SimSession)(nil)
	_ Uplink = (*ProxiedSession)(nil)
)

// MemberPrefix returns the canonical VIP prefix member i advertises:
// 10.(i>>8).(i&255).0/24. Disjoint per member, so concurrent RIB updates
// from different members commute.
func MemberPrefix(i int) Prefix {
	return Prefix{Addr: packet.IPv4FromUint32(0x0a000000 | uint32(i)<<8), Len: 24}
}

// ProxiedSessionConfig parameterizes one member's real-session uplink.
type ProxiedSessionConfig struct {
	// Session carries the BFD timing model (probe interval, DetectMult,
	// re-establish delay). Its OnDown/OnUp hooks are chained: the proxied
	// session mirrors the transition into the BGP fabric first, then calls
	// the user hook.
	Session SimSessionConfig
	// Prefix is the VIP the member's pod advertises. Zero value uses
	// MemberPrefix(Member).
	Prefix Prefix
	// Member is the cluster member index; it seeds Prefix and RouterID
	// defaults.
	Member int
	// LocalAS is the server-side AS shared by pod and proxy (iBGP).
	// Default 64512.
	LocalAS uint16
	// RouterID identifies the proxy's upstream session. Zero value derives
	// from Member (1-based, so member 0 is valid). The pod-session router
	// ID is RouterID|0x80000000.
	RouterID uint32
	// KeepaliveEvery is the virtual-time KEEPALIVE cadence on all four
	// speakers. Default 30s. Keepalives never change externally visible
	// state, so they do not factor into NextTransition.
	KeepaliveEvery sim.Duration
}

// ProxiedSession is one member's uplink run over the real BGP stack: a GW
// pod speaker peers iBGP with a Proxy (paper §5: one proxy pod per server),
// and the proxy holds the single eBGP session to the shared switch model —
// all over in-memory conns, pumped synchronously inside virtual-time
// events so byte-identical determinism is preserved.
//
// The inner SimSession stays the timing engine: BFD probe grid, detection,
// and re-advertisement delays are computed exactly as before, which is what
// keeps outcomes byte-identical with the legacy path and gives sharded runs
// the same lookahead bound. On every inner transition (and admin change)
// the session mirrors the new state through the fabric: the pod speaker
// announces or withdraws the VIP, the proxy refcounts and forwards it
// upstream, and the switch RIB updates — real OPEN/UPDATE/KEEPALIVE bytes
// end to end.
//
// Eligibility (RouteUp) deliberately reads the BFD view, not the RIB: the
// RIB is observable shadow state, asserted against the BFD view by the
// Desyncs counter and pinned in tests. Deriving eligibility from the RIB
// would tie packet-path behavior to message-pump ordering rather than the
// timing model.
type ProxiedSession struct {
	inner  *SimSession
	engine *sim.Engine

	sw     *Switch
	proxy  *Proxy
	prefix Prefix

	pod    *Speaker // our end of the pod↔proxy iBGP session
	podSrv *Speaker // proxy's end of the pod session
	swPeer *Speaker // switch's end of the upstream eBGP session

	adminUp    bool
	advertised bool

	keepaliveEvery sim.Duration

	// AdminWithdraws / AdminRestores count SetAdmin transitions; Desyncs
	// counts refreshes where the switch RIB disagreed with the wanted state
	// after pumping (always 0 unless the fabric breaks).
	AdminWithdraws uint64
	AdminRestores  uint64
	Desyncs        uint64
}

type sessionResult struct {
	sp  *Speaker
	err error
}

// NewProxiedSession wires pod↔proxy↔switch sessions for one member and
// starts the BFD timing model on the member's engine. The switch must be in
// Manual mode; all sessions are established before returning and the VIP is
// advertised (and visible in the switch RIB).
func NewProxiedSession(engine *sim.Engine, sw *Switch, cfg ProxiedSessionConfig) (*ProxiedSession, error) {
	if !sw.Manual {
		return nil, fmt.Errorf("bgp: proxied session requires a Manual switch")
	}
	if cfg.LocalAS == 0 {
		cfg.LocalAS = 64512
	}
	if cfg.RouterID == 0 {
		cfg.RouterID = uint32(cfg.Member) + 1
	}
	if cfg.Prefix == (Prefix{}) {
		cfg.Prefix = MemberPrefix(cfg.Member)
	}
	if cfg.KeepaliveEvery <= 0 {
		cfg.KeepaliveEvery = 30 * sim.Second
	}
	s := &ProxiedSession{
		engine:         engine,
		sw:             sw,
		prefix:         cfg.Prefix.Canonical(),
		adminUp:        true,
		keepaliveEvery: cfg.KeepaliveEvery,
	}

	// Switch ↔ proxy eBGP. The handshake needs both ends concurrent: each
	// side sends its OPEN first, then reads.
	up1, up2 := NewMemPipe()
	swCh := make(chan sessionResult, 1)
	go func() {
		sp, err := sw.AcceptPeer(up1)
		swCh <- sessionResult{sp, err}
	}()
	proxy, err := NewProxyConfig(up2, ProxyConfig{
		LocalAS:  cfg.LocalAS,
		SwitchAS: sw.AS,
		RouterID: cfg.RouterID,
		Manual:   true,
	})
	swRes := <-swCh
	if err != nil {
		return nil, err
	}
	if swRes.err != nil {
		return nil, fmt.Errorf("bgp: switch side: %w", swRes.err)
	}
	s.proxy = proxy
	s.swPeer = swRes.sp

	// Pod ↔ proxy iBGP.
	pd1, pd2 := NewMemPipe()
	podCh := make(chan sessionResult, 1)
	go func() {
		sp, err := proxy.ServePod(pd1)
		podCh <- sessionResult{sp, err}
	}()
	pod := NewSpeaker(pd2, SpeakerConfig{
		AS:       cfg.LocalAS,
		RouterID: cfg.RouterID | 0x80000000,
		PeerAS:   cfg.LocalAS,
		Manual:   true,
	})
	podErr := pod.Start()
	podRes := <-podCh
	if podErr != nil {
		return nil, fmt.Errorf("bgp: pod session: %w", podErr)
	}
	if podRes.err != nil {
		return nil, fmt.Errorf("bgp: proxy pod side: %w", podRes.err)
	}
	s.pod = pod
	s.podSrv = podRes.sp

	userDown, userUp := cfg.Session.OnDown, cfg.Session.OnUp
	cfg.Session.OnDown = func(now sim.Time) {
		s.refresh()
		if userDown != nil {
			userDown(now)
		}
	}
	cfg.Session.OnUp = func(now sim.Time) {
		s.refresh()
		if userUp != nil {
			userUp(now)
		}
	}
	inner, err := NewSimSession(engine, cfg.Session)
	if err != nil {
		return nil, err
	}
	s.inner = inner

	// Initial advertisement: the session starts established with the route
	// up, exactly like SimSession.
	s.refresh()
	engine.AfterArg(s.keepaliveEvery, proxiedKeepalive, s)
	return s, nil
}

// refresh reconciles the fabric with the wanted advertisement state
// (admin-up AND BFD route-up), pumping all four speakers so the switch RIB
// reflects the change before the event returns.
func (s *ProxiedSession) refresh() {
	want := s.adminUp && s.inner.RouteUp()
	if want == s.advertised {
		return
	}
	if want {
		_ = s.pod.Announce([]Prefix{s.prefix}, nil)
	} else {
		_ = s.pod.Withdraw([]Prefix{s.prefix})
	}
	s.pump()
	s.advertised = want
	if got := s.sw.RIB().PathCount(s.prefix) > 0; got != want {
		s.Desyncs++
	}
}

// pump drains every buffered message along the pod→proxy→switch chain (and
// the reverse keepalive direction). Safe inside a virtual-time event: all
// conns are MemConns and Manual speakers never block.
func (s *ProxiedSession) pump() {
	_ = s.podSrv.Pump() // pod announce/withdraw → proxy refcount → upstream UPDATE
	_ = s.swPeer.Pump() // upstream UPDATE → switch RIB
	_ = s.proxy.Upstream().Pump()
	_ = s.pod.Pump()
}

func proxiedKeepalive(arg any) {
	s := arg.(*ProxiedSession)
	for _, sp := range [...]*Speaker{s.pod, s.podSrv, s.proxy.Upstream(), s.swPeer} {
		_ = sp.SendKeepalive()
	}
	s.pump()
	s.engine.AfterArg(s.keepaliveEvery, proxiedKeepalive, s)
}

// SetAdmin drives administrative advertisement: SetAdmin(false) withdraws
// the VIP through the fabric (a drain) regardless of BFD state;
// SetAdmin(true) restores it. Must be called from control context (after
// shard synchronization in sharded runs).
func (s *ProxiedSession) SetAdmin(up bool) {
	if s.adminUp == up {
		return
	}
	s.adminUp = up
	if up {
		s.AdminRestores++
	} else {
		s.AdminWithdraws++
	}
	s.refresh()
}

// AdminUp reports the administrative state.
func (s *ProxiedSession) AdminUp() bool { return s.adminUp }

// Advertised reports whether the VIP is currently advertised through the
// fabric.
func (s *ProxiedSession) Advertised() bool { return s.advertised }

// Prefix returns the member's VIP prefix.
func (s *ProxiedSession) Prefix() Prefix { return s.prefix }

// Proxy returns the member's proxy pod.
func (s *ProxiedSession) Proxy() *Proxy { return s.proxy }

// PodSpeaker returns the GW-pod end of the iBGP session (for tests that
// drive extra pod advertisements).
func (s *ProxiedSession) PodSpeaker() *Speaker { return s.pod }

// Pump drains all four speakers; exposed for tests and auxiliary sessions.
func (s *ProxiedSession) Pump() { s.pump() }

// RouteUp reports packet-path eligibility. It reads the BFD timing model
// only — not the switch RIB and not the admin mirror. The cluster's
// adminUntil clock-comparison stays the authority for administrative
// drains (exactly as on the legacy path), so a packet arriving at the
// drain-expiry instant sees the same eligibility regardless of whether the
// admin-restore event has run yet; the fabric mirror is observable shadow
// state.
func (s *ProxiedSession) RouteUp() bool { return s.inner.RouteUp() }

// LinkUp reports whether the physical link is up.
func (s *ProxiedSession) LinkUp() bool { return s.inner.LinkUp() }

// BFDUp reports whether BFD considers the session alive.
func (s *ProxiedSession) BFDUp() bool { return s.inner.BFDUp() }

// Stats returns the inner timing model's counters.
func (s *ProxiedSession) Stats() SimSessionStats { return s.inner.Stats() }

// NextTransition delegates to the timing model (admin changes come from
// control context, which synchronizes shards itself).
func (s *ProxiedSession) NextTransition() sim.Time { return s.inner.NextTransition() }

// DetectionWindow returns the worst-case BFD detection latency.
func (s *ProxiedSession) DetectionWindow() sim.Duration { return s.inner.DetectionWindow() }

// InjectFlap takes the link down for d.
func (s *ProxiedSession) InjectFlap(d sim.Duration) { s.inner.InjectFlap(d) }
