package bgp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"albatross/internal/packet"
)

// State is a BGP session state. The Connect/Active states of the full FSM
// are collapsed: speakers are constructed over an already-connected
// net.Conn.
type State int

// Session states.
const (
	StateIdle State = iota
	StateOpenSent
	StateOpenConfirm
	StateEstablished
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateOpenSent:
		return "open-sent"
	case StateOpenConfirm:
		return "open-confirm"
	case StateEstablished:
		return "established"
	case StateClosed:
		return "closed"
	default:
		return "invalid"
	}
}

// SpeakerConfig configures one side of a BGP session.
type SpeakerConfig struct {
	AS       uint16
	RouterID uint32
	// HoldTime; keepalives are sent every HoldTime/3. Default 90s.
	HoldTime time.Duration
	// PeerAS, when nonzero, is enforced against the peer's OPEN.
	PeerAS uint16
	// NextHop is the address written into advertised routes (next-hop-self
	// for eBGP). Zero value uses 10.ID-derived address.
	NextHop packet.IPv4Addr

	// OnRoute is invoked from the read loop for every learned or withdrawn
	// route after the RIB is updated. withdrawn=true means removal.
	OnRoute func(p Prefix, attrs PathAttrs, withdrawn bool)
	// OnEstablished fires when the session reaches Established.
	OnEstablished func()
	// OnDown fires when the session leaves Established (error or close).
	OnDown func(err error)

	// Manual disables the background read and keepalive goroutines: Start
	// performs only the handshake, and the owner drives the session
	// synchronously — Pump drains buffered inbound messages, SendKeepalive
	// emits keepalives on whatever clock the owner runs (the virtual-time
	// fabric uses the event engine). Manual sessions have no wall-clock hold
	// timer; liveness is the owner's responsibility. Pump requires a
	// transport that reports buffered bytes (MemConn).
	Manual bool
}

// Speaker is one endpoint of a BGP session.
type Speaker struct {
	cfg  SpeakerConfig
	conn net.Conn
	br   *bufio.Reader

	mu       sync.Mutex
	state    State
	peerOpen Open
	// effHold is the negotiated hold time: min(ours, peer's), per RFC 4271
	// §4.2. Zero disables keepalives and the hold timer.
	effHold  time.Duration
	lastRecv time.Time
	closed   bool
	adjIn    *RIB
	downErr  error

	writeMu sync.Mutex

	wg   sync.WaitGroup
	stop chan struct{}
}

// NewSpeaker wraps a connected net.Conn. Call Start (or Handshake) next.
func NewSpeaker(conn net.Conn, cfg SpeakerConfig) *Speaker {
	if cfg.HoldTime <= 0 {
		cfg.HoldTime = 90 * time.Second
	}
	if cfg.NextHop == (packet.IPv4Addr{}) {
		cfg.NextHop = packet.IPv4FromUint32(0x0a000000 | cfg.RouterID&0xffffff)
	}
	// In-memory transports carry a handful of small control messages per
	// session; at cluster scale (four speakers per member, thousands of
	// members) a 64 KB reader per speaker is pure waste.
	bufSize := 1 << 16
	if _, ok := conn.(*MemConn); ok {
		bufSize = 1 << 12
	}
	return &Speaker{
		cfg:   cfg,
		conn:  conn,
		br:    bufio.NewReaderSize(conn, bufSize),
		state: StateIdle,
		adjIn: NewRIB(),
		stop:  make(chan struct{}),
	}
}

// State returns the session state.
func (s *Speaker) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Err returns the error that took the session down, if any.
func (s *Speaker) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.downErr
}

// PeerAS returns the AS learned from the peer's OPEN (0 before handshake).
func (s *Speaker) PeerAS() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerOpen.AS
}

// PeerRouterID returns the peer's router ID (0 before handshake).
func (s *Speaker) PeerRouterID() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerOpen.RouterID
}

// IsIBGP reports whether the session is internal (same AS both sides).
// Valid after the handshake.
func (s *Speaker) IsIBGP() bool { return s.PeerAS() == s.cfg.AS }

// AdjIn returns the Adj-RIB-In (routes learned from this peer).
func (s *Speaker) AdjIn() *RIB { return s.adjIn }

func (s *Speaker) setState(st State) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

func (s *Speaker) send(msg []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	_, err := s.conn.Write(msg)
	return err
}

// readMessage reads one full message, returning its type and body.
func (s *Speaker) readMessage() (uint8, []byte, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(s.br, hdr); err != nil {
		return 0, nil, err
	}
	length, msgType, err := DecodeHeader(hdr)
	if err != nil {
		return 0, nil, err
	}
	body := make([]byte, length-headerLen)
	if _, err := io.ReadFull(s.br, body); err != nil {
		return 0, nil, err
	}
	s.mu.Lock()
	s.lastRecv = time.Now()
	s.mu.Unlock()
	return msgType, body, nil
}

// Handshake performs the OPEN/KEEPALIVE exchange synchronously. Both ends
// must call it concurrently (each side sends first, then reads).
func (s *Speaker) Handshake() error {
	open := Open{Version: bgpVersion, AS: s.cfg.AS,
		HoldTime: uint16(s.cfg.HoldTime / time.Second), RouterID: s.cfg.RouterID}
	if err := s.send(EncodeOpen(open)); err != nil {
		return fmt.Errorf("bgp: send open: %w", err)
	}
	s.setState(StateOpenSent)

	msgType, body, err := s.readMessage()
	if err != nil {
		return fmt.Errorf("bgp: read open: %w", err)
	}
	if msgType != MsgOpen {
		return fmt.Errorf("bgp: expected OPEN, got type %d", msgType)
	}
	peer, err := DecodeOpen(body)
	if err != nil {
		return err
	}
	if s.cfg.PeerAS != 0 && peer.AS != s.cfg.PeerAS {
		notif := Notification{Code: NotifOpenError, Subcode: 2} // bad peer AS
		_ = s.send(EncodeNotification(notif))
		return fmt.Errorf("bgp: peer AS %d, want %d", peer.AS, s.cfg.PeerAS)
	}
	s.mu.Lock()
	s.peerOpen = peer
	s.effHold = s.cfg.HoldTime
	if peerHold := time.Duration(peer.HoldTime) * time.Second; peerHold < s.effHold {
		s.effHold = peerHold
	}
	s.mu.Unlock()

	if err := s.send(EncodeKeepalive()); err != nil {
		return err
	}
	s.setState(StateOpenConfirm)

	msgType, _, err = s.readMessage()
	if err != nil {
		return fmt.Errorf("bgp: read keepalive: %w", err)
	}
	if msgType != MsgKeepalive {
		return fmt.Errorf("bgp: expected KEEPALIVE, got type %d", msgType)
	}
	s.setState(StateEstablished)
	if s.cfg.OnEstablished != nil {
		s.cfg.OnEstablished()
	}
	return nil
}

// Start runs the handshake and then — unless the speaker is Manual — the
// read/keepalive loops in the background. It returns once the session is
// Established (or failed).
func (s *Speaker) Start() error {
	if err := s.Handshake(); err != nil {
		s.teardown(err)
		return err
	}
	if s.cfg.Manual {
		return nil
	}
	s.wg.Add(2)
	go s.readLoop()
	go s.keepaliveLoop()
	return nil
}

// dispatch handles one received message in the established state. It
// returns a non-nil error (after tearing the session down) when the message
// ends the session.
func (s *Speaker) dispatch(msgType uint8, body []byte) error {
	switch msgType {
	case MsgKeepalive:
		// lastRecv already refreshed.
	case MsgUpdate:
		u, err := DecodeUpdate(body)
		if err != nil {
			s.teardown(err)
			return err
		}
		s.applyUpdate(u)
	case MsgNotification:
		n, _ := DecodeNotification(body)
		s.teardown(n)
		return n
	case MsgOpen:
		err := fmt.Errorf("bgp: unexpected OPEN in established state")
		s.teardown(err)
		return err
	}
	return nil
}

func (s *Speaker) readLoop() {
	defer s.wg.Done()
	for {
		msgType, body, err := s.readMessage()
		if err != nil {
			s.teardown(err)
			return
		}
		if s.dispatch(msgType, body) != nil {
			return
		}
	}
}

// Pump synchronously drains every complete message buffered on the
// transport and dispatches it exactly as the background read loop would.
// Only Manual speakers over a buffered in-memory transport may be pumped:
// because the peer writes each encoded message atomically, the buffered
// stream is always a whole number of messages and Pump never blocks.
// Dispatch errors (a NOTIFICATION, a decode failure) tear the session down
// and are returned; a drained session returns nil.
func (s *Speaker) Pump() error {
	ra, ok := s.conn.(interface{ ReadAvailable() int })
	if !ok {
		return fmt.Errorf("bgp: Pump needs a transport with ReadAvailable (MemConn)")
	}
	for {
		if s.State() != StateEstablished {
			return nil
		}
		if s.br.Buffered() == 0 && ra.ReadAvailable() == 0 {
			return nil
		}
		msgType, body, err := s.readMessage()
		if err != nil {
			s.teardown(err)
			return err
		}
		if err := s.dispatch(msgType, body); err != nil {
			return err
		}
	}
}

// SendKeepalive emits one KEEPALIVE. Manual-mode owners call it on their
// own clock in place of the background keepalive loop.
func (s *Speaker) SendKeepalive() error {
	if s.State() != StateEstablished {
		return fmt.Errorf("bgp: keepalive in state %v", s.State())
	}
	return s.send(EncodeKeepalive())
}

func (s *Speaker) applyUpdate(u Update) {
	peerID := s.PeerRouterID()
	for _, p := range u.Withdrawn {
		s.adjIn.Withdraw(p, peerID)
		if s.cfg.OnRoute != nil {
			s.cfg.OnRoute(p.Canonical(), PathAttrs{}, true)
		}
	}
	for _, p := range u.NLRI {
		s.adjIn.Update(Route{Prefix: p, Attrs: u.Attrs, PeerID: peerID})
		if s.cfg.OnRoute != nil {
			s.cfg.OnRoute(p.Canonical(), u.Attrs, false)
		}
	}
}

// HoldTime returns the negotiated hold time (valid after the handshake).
func (s *Speaker) HoldTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.effHold
}

func (s *Speaker) keepaliveLoop() {
	defer s.wg.Done()
	hold := s.HoldTime()
	if hold == 0 {
		// Negotiated hold time 0: no keepalives, no hold timer (RFC 4271).
		return
	}
	interval := hold / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			// Hold timer check.
			s.mu.Lock()
			last := s.lastRecv
			s.mu.Unlock()
			if !last.IsZero() && time.Since(last) > hold {
				_ = s.send(EncodeNotification(Notification{Code: NotifHoldTimerExpired}))
				s.teardown(fmt.Errorf("bgp: hold timer expired"))
				return
			}
			if err := s.send(EncodeKeepalive()); err != nil {
				s.teardown(err)
				return
			}
		}
	}
}

// Announce advertises prefixes. For eBGP sessions the speaker prepends its
// own AS and sets next-hop-self; for iBGP it attaches LOCAL_PREF.
func (s *Speaker) Announce(prefixes []Prefix, viaPath []uint16) error {
	if s.State() != StateEstablished {
		return fmt.Errorf("bgp: announce in state %v", s.State())
	}
	attrs := PathAttrs{Origin: 0, NextHop: s.cfg.NextHop}
	if s.IsIBGP() {
		attrs.ASPath = append(attrs.ASPath, viaPath...)
		attrs.LocalPref = 100
		attrs.HasLP = true
	} else {
		attrs.ASPath = append([]uint16{s.cfg.AS}, viaPath...)
	}
	return s.send(EncodeUpdate(Update{NLRI: prefixes, Attrs: attrs}))
}

// Withdraw retracts prefixes.
func (s *Speaker) Withdraw(prefixes []Prefix) error {
	if s.State() != StateEstablished {
		return fmt.Errorf("bgp: withdraw in state %v", s.State())
	}
	return s.send(EncodeUpdate(Update{Withdrawn: prefixes}))
}

func (s *Speaker) teardown(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	wasEstablished := s.state == StateEstablished
	s.state = StateClosed
	s.downErr = err
	s.mu.Unlock()

	close(s.stop)
	_ = s.conn.Close()
	if wasEstablished && s.cfg.OnDown != nil {
		s.cfg.OnDown(err)
	}
}

// Close gracefully ends the session with a CEASE notification.
func (s *Speaker) Close() {
	_ = s.send(EncodeNotification(Notification{Code: NotifCease}))
	s.teardown(nil)
	s.wg.Wait()
}

// Wait blocks until the background loops exit.
func (s *Speaker) Wait() { s.wg.Wait() }
