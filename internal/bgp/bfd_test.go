package bgp

import (
	"testing"
	"time"
)

func TestBFDPacketRoundTrip(t *testing.T) {
	p := BFDPacket{
		Version: 1, Diag: 3, State: BFDUp, DetectMult: 3,
		MyDisc: 0x11223344, YourDisc: 0x55667788,
		DesiredTx: 50000, RequiredRx: 50000,
	}
	enc := EncodeBFD(p)
	if len(enc) != bfdPacketLen {
		t.Fatalf("len = %d", len(enc))
	}
	got, err := DecodeBFD(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip: %+v != %+v", got, p)
	}
	if _, err := DecodeBFD(enc[:10]); err != ErrBFDTruncated {
		t.Fatal("truncated packet accepted")
	}
}

func TestBFDStateStrings(t *testing.T) {
	for st, want := range map[BFDState]string{
		BFDAdminDown: "admin-down", BFDDown: "down", BFDInit: "init", BFDUp: "up",
		BFDState(9): "invalid",
	} {
		if st.String() != want {
			t.Errorf("%d = %q", st, st.String())
		}
	}
}

func TestBFDSessionComesUp(t *testing.T) {
	ca, cb := newBufConnPair()
	upA := make(chan BFDState, 16)
	upB := make(chan BFDState, 16)
	a := NewBFDSession(ca, BFDConfig{LocalDisc: 1, TxInterval: 10 * time.Millisecond,
		OnStateChange: func(s BFDState) { upA <- s }})
	b := NewBFDSession(cb, BFDConfig{LocalDisc: 2, TxInterval: 10 * time.Millisecond,
		OnStateChange: func(s BFDState) { upB <- s }})
	a.Start()
	b.Start()
	defer a.Close()
	defer b.Close()

	deadline := time.After(3 * time.Second)
	for a.State() != BFDUp || b.State() != BFDUp {
		select {
		case <-deadline:
			t.Fatalf("sessions never came up: %v / %v", a.State(), b.State())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestBFDDetectsFailureInThreeIntervals(t *testing.T) {
	ca, cb := newBufConnPair()
	downAt := make(chan time.Time, 4)
	a := NewBFDSession(ca, BFDConfig{LocalDisc: 1, TxInterval: 20 * time.Millisecond, DetectMult: 3,
		OnStateChange: func(s BFDState) {
			if s == BFDDown {
				downAt <- time.Now()
			}
		}})
	b := NewBFDSession(cb, BFDConfig{LocalDisc: 2, TxInterval: 20 * time.Millisecond, DetectMult: 3})
	a.Start()
	b.Start()
	defer a.Close()

	// Wait for Up.
	deadline := time.After(3 * time.Second)
	for a.State() != BFDUp {
		select {
		case <-deadline:
			t.Fatal("never up")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Kill the peer: stop its transmissions (simulates a dead link whose
	// BFD packets are lost).
	killed := time.Now()
	b.Close()

	select {
	case at := <-downAt:
		elapsed := at.Sub(killed)
		// DetectMult(3) x 20ms = 60ms budget; allow generous scheduling
		// slack but require detection well under a second.
		if elapsed > 800*time.Millisecond {
			t.Fatalf("failure detected after %v, want ~60ms", elapsed)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("failure never detected")
	}
}

func TestBFDDefaults(t *testing.T) {
	ca, _ := newBufConnPair()
	s := NewBFDSession(ca, BFDConfig{LocalDisc: 9})
	if s.cfg.TxInterval != 50*time.Millisecond || s.cfg.DetectMult != 3 {
		t.Fatalf("defaults = %+v", s.cfg)
	}
	if s.State() != BFDDown {
		t.Fatal("initial state not down")
	}
	s.Close()
	s.Close() // idempotent
}
