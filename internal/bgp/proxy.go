package bgp

import (
	"fmt"
	"net"
	"sync"
)

// Proxy is the BGP proxy pod of paper §5 (Fig. 7 right): GW pods on a
// server peer with the proxy over iBGP, and the proxy maintains the single
// eBGP session to the uplink switch, reducing the switch's peer count from
// m (pods per server) to 1.
//
// The proxy reference-counts pod advertisements per prefix: the first pod
// announcing a VIP triggers an upstream announcement, and the upstream
// withdrawal happens only when the last pod withdraws (or dies).
type Proxy struct {
	as       uint16
	routerID uint32
	manual   bool
	upstream *Speaker

	mu   sync.Mutex
	refs map[Prefix]int
	pods map[*Speaker]bool

	// Announced counts upstream announcements; Withdrawn upstream
	// withdrawals (for tests and metrics).
	Announced uint64
	Withdrawn uint64
}

// ProxyConfig parameterizes a proxy pod.
type ProxyConfig struct {
	LocalAS  uint16
	SwitchAS uint16
	RouterID uint32
	// Manual propagates to every session the proxy owns (upstream and pod
	// sessions): no background goroutines; the owner pumps and emits
	// keepalives on its own clock. See SpeakerConfig.Manual.
	Manual bool
}

// NewProxy creates a proxy speaking iBGP to pods as AS `localAS` and eBGP
// to the switch over upstreamConn (whose peer must be `switchAS`). The
// upstream session is established before returning.
func NewProxy(upstreamConn net.Conn, localAS, switchAS uint16, routerID uint32) (*Proxy, error) {
	return NewProxyConfig(upstreamConn, ProxyConfig{LocalAS: localAS, SwitchAS: switchAS, RouterID: routerID})
}

// NewProxyConfig is NewProxy with the full configuration surface.
func NewProxyConfig(upstreamConn net.Conn, cfg ProxyConfig) (*Proxy, error) {
	if cfg.LocalAS == cfg.SwitchAS {
		return nil, fmt.Errorf("bgp: proxy-switch session must be eBGP (AS %d == %d)", cfg.LocalAS, cfg.SwitchAS)
	}
	p := &Proxy{
		as:       cfg.LocalAS,
		routerID: cfg.RouterID,
		manual:   cfg.Manual,
		refs:     make(map[Prefix]int),
		pods:     make(map[*Speaker]bool),
	}
	p.upstream = NewSpeaker(upstreamConn, SpeakerConfig{
		AS:       cfg.LocalAS,
		RouterID: cfg.RouterID,
		PeerAS:   cfg.SwitchAS,
		Manual:   cfg.Manual,
	})
	if err := p.upstream.Start(); err != nil {
		return nil, fmt.Errorf("bgp: proxy upstream session: %w", err)
	}
	return p, nil
}

// Upstream returns the eBGP session to the switch.
func (p *Proxy) Upstream() *Speaker { return p.upstream }

// PodCount returns the number of live pod sessions.
func (p *Proxy) PodCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pods)
}

// AdvertisedCount returns the number of prefixes currently advertised
// upstream.
func (p *Proxy) AdvertisedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.refs {
		if c > 0 {
			n++
		}
	}
	return n
}

// ServePod accepts one GW pod's iBGP session. The session is established
// before returning; route changes flow to the upstream automatically.
func (p *Proxy) ServePod(conn net.Conn) (*Speaker, error) {
	var sp *Speaker
	sp = NewSpeaker(conn, SpeakerConfig{
		AS:       p.as,
		RouterID: p.routerID,
		PeerAS:   p.as, // iBGP
		Manual:   p.manual,
		OnRoute: func(prefix Prefix, attrs PathAttrs, withdrawn bool) {
			if withdrawn {
				p.release(prefix)
			} else {
				p.acquire(prefix)
			}
		},
		OnDown: func(error) {
			p.podDown(sp)
		},
	})
	if err := sp.Start(); err != nil {
		return nil, fmt.Errorf("bgp: pod session: %w", err)
	}
	p.mu.Lock()
	p.pods[sp] = true
	p.mu.Unlock()
	return sp, nil
}

func (p *Proxy) acquire(prefix Prefix) {
	p.mu.Lock()
	p.refs[prefix]++
	first := p.refs[prefix] == 1
	p.mu.Unlock()
	if first {
		if err := p.upstream.Announce([]Prefix{prefix}, nil); err == nil {
			p.mu.Lock()
			p.Announced++
			p.mu.Unlock()
		}
	}
}

func (p *Proxy) release(prefix Prefix) {
	p.mu.Lock()
	if p.refs[prefix] == 0 {
		p.mu.Unlock()
		return
	}
	p.refs[prefix]--
	last := p.refs[prefix] == 0
	if last {
		delete(p.refs, prefix)
	}
	p.mu.Unlock()
	if last {
		if err := p.upstream.Withdraw([]Prefix{prefix}); err == nil {
			p.mu.Lock()
			p.Withdrawn++
			p.mu.Unlock()
		}
	}
}

// podDown withdraws everything a dead pod had advertised.
func (p *Proxy) podDown(sp *Speaker) {
	p.mu.Lock()
	if !p.pods[sp] {
		p.mu.Unlock()
		return
	}
	delete(p.pods, sp)
	p.mu.Unlock()
	for _, prefix := range sp.AdjIn().Prefixes() {
		p.release(prefix)
	}
}

// Serve accepts pod iBGP sessions from a listener until it is closed.
func (p *Proxy) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			_, _ = p.ServePod(c)
		}(conn)
	}
}

// Close tears down all sessions.
func (p *Proxy) Close() {
	p.mu.Lock()
	pods := make([]*Speaker, 0, len(p.pods))
	for sp := range p.pods {
		pods = append(pods, sp)
	}
	p.mu.Unlock()
	for _, sp := range pods {
		sp.Close()
	}
	p.upstream.Close()
}

// PeerMath captures Fig. 7's arithmetic: how many BGP peers the uplink
// switch must maintain with and without the proxy.
type PeerMath struct {
	Servers       int
	PodsPerServer int
	ProxiesPerSrv int // dual-proxy deployment uses 2
}

// SwitchPeersDirect returns the peer count with per-pod eBGP sessions.
func (m PeerMath) SwitchPeersDirect() int { return m.Servers * m.PodsPerServer }

// SwitchPeersProxied returns the peer count with the BGP proxy.
func (m PeerMath) SwitchPeersProxied() int {
	p := m.ProxiesPerSrv
	if p <= 0 {
		p = 1
	}
	return m.Servers * p
}
