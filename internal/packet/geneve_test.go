package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGeneveRoundTrip(t *testing.T) {
	g := Geneve{OAM: true, Critical: true, Protocol: EtherTypeIPv4, VNI: 0xABCDE}
	buf := make([]byte, GeneveMinLen)
	n, err := g.SerializeTo(buf)
	if err != nil || n != GeneveMinLen {
		t.Fatalf("serialize: n=%d err=%v", n, err)
	}
	var d Geneve
	n, err = d.DecodeFromBytes(buf)
	if err != nil || n != GeneveMinLen {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if d.VNI != 0xABCDE || !d.OAM || !d.Critical || d.Protocol != EtherTypeIPv4 {
		t.Fatalf("mismatch: %+v", d)
	}
}

func TestGeneveWithOptions(t *testing.T) {
	opts, err := AppendGeneveOption(nil, GeneveOption{Class: 0x0102, Type: 3, Data: []byte{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	opts, err = AppendGeneveOption(opts, GeneveOption{Class: 0x0AAA, Type: 9, Data: nil})
	if err != nil {
		t.Fatal(err)
	}
	g := Geneve{Protocol: EtherTypeIPv4, VNI: 7, Options: opts}
	buf := make([]byte, GeneveMinLen+len(opts))
	if _, err := g.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	var d Geneve
	n, err := d.DecodeFromBytes(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	parsed, err := ParseGeneveOptions(d.Options)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 {
		t.Fatalf("options = %d", len(parsed))
	}
	if parsed[0].Class != 0x0102 || parsed[0].Type != 3 || !bytes.Equal(parsed[0].Data, []byte{1, 2, 3, 4}) {
		t.Fatalf("option 0 = %+v", parsed[0])
	}
	if parsed[1].Class != 0x0AAA || len(parsed[1].Data) != 0 {
		t.Fatalf("option 1 = %+v", parsed[1])
	}
}

func TestGeneveBadInputs(t *testing.T) {
	var d Geneve
	if _, err := d.DecodeFromBytes(make([]byte, 7)); err != ErrTooShort {
		t.Fatalf("short: %v", err)
	}
	bad := make([]byte, 8)
	bad[0] = 0x40 // version 1
	if _, err := d.DecodeFromBytes(bad); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	// Declared options longer than the buffer.
	bad2 := make([]byte, 8)
	bad2[0] = 2 // 8 bytes of options, absent
	if _, err := d.DecodeFromBytes(bad2); err != ErrTooShort {
		t.Fatalf("truncated options: %v", err)
	}
	// Serialize with unaligned options.
	g := Geneve{Options: []byte{1, 2, 3}}
	if _, err := g.SerializeTo(make([]byte, 64)); err != ErrBadLength {
		t.Fatalf("odd options: %v", err)
	}
	// Option data too long / unaligned.
	if _, err := AppendGeneveOption(nil, GeneveOption{Data: make([]byte, 3)}); err != ErrBadLength {
		t.Fatal("unaligned option accepted")
	}
	if _, err := AppendGeneveOption(nil, GeneveOption{Data: make([]byte, 128)}); err != ErrBadLength {
		t.Fatal("oversized option accepted")
	}
	if _, err := ParseGeneveOptions([]byte{1, 2}); err != ErrTooShort {
		t.Fatal("short TLV accepted")
	}
	if _, err := ParseGeneveOptions([]byte{0, 1, 2, 1}); err != ErrTooShort {
		t.Fatal("truncated TLV body accepted")
	}
}

func TestGeneveVNI24Bit(t *testing.T) {
	g := Geneve{VNI: 0x1FFFFFF}
	buf := make([]byte, GeneveMinLen)
	g.SerializeTo(buf)
	var d Geneve
	d.DecodeFromBytes(buf)
	if d.VNI != 0xFFFFFF {
		t.Fatalf("VNI = %#x", d.VNI)
	}
}

func TestGeneveRoundTripProperty(t *testing.T) {
	f := func(vni uint32, oam, crit bool, nOpts uint8) bool {
		var opts []byte
		for i := 0; i < int(nOpts%4); i++ {
			var err error
			opts, err = AppendGeneveOption(opts, GeneveOption{
				Class: uint16(i), Type: uint8(i), Data: make([]byte, (i%3)*4),
			})
			if err != nil {
				return false
			}
		}
		g := Geneve{OAM: oam, Critical: crit, Protocol: EtherTypeIPv4, VNI: vni & 0xffffff, Options: opts}
		buf := make([]byte, GeneveMinLen+len(opts))
		if _, err := g.SerializeTo(buf); err != nil {
			return false
		}
		var d Geneve
		if _, err := d.DecodeFromBytes(buf); err != nil {
			return false
		}
		return d.VNI == vni&0xffffff && d.OAM == oam && d.Critical == crit &&
			bytes.Equal(d.Options, opts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNSHRoundTrip(t *testing.T) {
	n := NSH{
		OAM: true, TTL: 63, NextProto: NSHNextEthernet,
		ServicePath: 0xABCDE, ServiceIdx: 255,
		Context: [4]uint32{1, 2, 3, 0xdeadbeef},
	}
	buf := make([]byte, NSHMD1Len)
	ln, err := n.SerializeTo(buf)
	if err != nil || ln != NSHMD1Len {
		t.Fatalf("serialize: %d %v", ln, err)
	}
	var d NSH
	ln, err = d.DecodeFromBytes(buf)
	if err != nil || ln != NSHMD1Len {
		t.Fatalf("decode: %d %v", ln, err)
	}
	if d.MDType != 1 {
		t.Fatalf("md type = %d", d.MDType)
	}
	d.MDType = 0 // normalize for comparison (encoder always writes 1)
	n.MDType = 0
	if d != n {
		t.Fatalf("mismatch: %+v != %+v", d, n)
	}
}

func TestNSHTTL6Bits(t *testing.T) {
	n := NSH{TTL: 0xFF, ServicePath: 1, ServiceIdx: 1}
	buf := make([]byte, NSHMD1Len)
	n.SerializeTo(buf)
	var d NSH
	d.DecodeFromBytes(buf)
	if d.TTL != 0x3F {
		t.Fatalf("TTL = %#x, want 6-bit truncation", d.TTL)
	}
}

func TestNSHBadInputs(t *testing.T) {
	var d NSH
	if _, err := d.DecodeFromBytes(make([]byte, 7)); err != ErrTooShort {
		t.Fatalf("short: %v", err)
	}
	bad := make([]byte, NSHMD1Len)
	bad[0] = 0x40 // version 1
	if _, err := d.DecodeFromBytes(bad); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	// MD type 2 unsupported.
	md2 := make([]byte, NSHMD1Len)
	md2[1] = NSHMD1Len / 4
	md2[2] = 2
	if _, err := d.DecodeFromBytes(md2); err != ErrUnsupported {
		t.Fatalf("md2: %v", err)
	}
	// Wrong length for MD1.
	badLen := make([]byte, NSHMD1Len)
	badLen[1] = 2 // 8 bytes
	badLen[2] = 1
	if _, err := d.DecodeFromBytes(badLen); err != ErrBadLength {
		t.Fatalf("length: %v", err)
	}
}

func TestNSHDecrement(t *testing.T) {
	n := NSH{ServiceIdx: 2}
	if !n.Decrement() || n.ServiceIdx != 1 {
		t.Fatalf("first decrement: %+v", n)
	}
	if n.Decrement() {
		t.Fatal("decrement to 0 should report drop")
	}
	if n.Decrement() {
		t.Fatal("underflow should report drop")
	}
}

func BenchmarkGeneveDecode(b *testing.B) {
	g := Geneve{Protocol: EtherTypeIPv4, VNI: 1234}
	buf := make([]byte, GeneveMinLen)
	g.SerializeTo(buf)
	var d Geneve
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.DecodeFromBytes(buf)
	}
}

func TestParseGeneveStack(t *testing.T) {
	// Ethernet/IPv4/UDP(6081)/Geneve(IPv4)/innerIPv4/innerTCP.
	b := NewBuilder(512)
	b.AddEthernet(&Ethernet{EtherType: EtherTypeIPv4})
	innerPayload := []byte("geneve-data")
	innerLen := IPv4MinLen + TCPMinLen + len(innerPayload)
	outerIP := IPv4{TTL: 64, Protocol: IPProtocolUDP,
		Src: IPv4Addr{100, 64, 1, 1}, Dst: IPv4Addr{100, 64, 1, 2}}
	b.AddIPv4(&outerIP, UDPLen+GeneveMinLen+innerLen)
	b.AddUDPHeader(&UDP{SrcPort: 55555, DstPort: GenevePort}, GeneveMinLen+innerLen)
	gnv := Geneve{Protocol: EtherTypeIPv4, VNI: 0x7777}
	gbuf := make([]byte, GeneveMinLen)
	gnv.SerializeTo(gbuf)
	b.AddBytes(gbuf)
	innerIP := IPv4{TTL: 64, Protocol: IPProtocolTCP,
		Src: IPv4Addr{192, 168, 9, 1}, Dst: IPv4Addr{10, 9, 9, 9}}
	b.AddIPv4(&innerIP, TCPMinLen+len(innerPayload))
	b.AddTCP(&TCP{SrcPort: 1234, DstPort: 80, Flags: TCPAck}, innerIP.Src, innerIP.Dst, innerPayload)

	var p Parsed
	if err := Parse(b.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	want := LayerEthernet | LayerIPv4 | LayerUDP | LayerGeneve | LayerInnerIPv4 | LayerInnerTCP
	if p.Decoded != want {
		t.Fatalf("decoded = %b, want %b", p.Decoded, want)
	}
	if p.VNI() != 0x7777 {
		t.Fatalf("VNI = %#x", p.VNI())
	}
	f := p.InnerFlow()
	if f.SPort != 1234 || f.DPort != 80 || f.Src != innerIP.Src {
		t.Fatalf("inner flow = %v", f)
	}
	if string(p.Payload) != "geneve-data" {
		t.Fatalf("payload = %q", p.Payload)
	}
}

func TestParseGeneveEthernetBridging(t *testing.T) {
	// Geneve with protocol 0x6558 carries a full inner Ethernet frame.
	b := NewBuilder(512)
	b.AddEthernet(&Ethernet{EtherType: EtherTypeIPv4})
	innerLen := EthernetLen + IPv4MinLen + UDPLen
	outerIP := IPv4{TTL: 64, Protocol: IPProtocolUDP,
		Src: IPv4Addr{1, 1, 1, 1}, Dst: IPv4Addr{2, 2, 2, 2}}
	b.AddIPv4(&outerIP, UDPLen+GeneveMinLen+innerLen)
	b.AddUDPHeader(&UDP{SrcPort: 1, DstPort: GenevePort}, GeneveMinLen+innerLen)
	gbuf := make([]byte, GeneveMinLen)
	(&Geneve{Protocol: 0x6558, VNI: 9}).SerializeTo(gbuf)
	b.AddBytes(gbuf)
	b.AddEthernet(&Ethernet{EtherType: EtherTypeIPv4})
	innerIP := IPv4{TTL: 9, Protocol: IPProtocolUDP, Src: IPv4Addr{3, 3, 3, 3}, Dst: IPv4Addr{4, 4, 4, 4}}
	b.AddIPv4(&innerIP, UDPLen)
	b.AddUDP(&UDP{SrcPort: 10, DstPort: 20}, innerIP.Src, innerIP.Dst, nil)

	var p Parsed
	if err := Parse(b.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Decoded&LayerInnerEthernet == 0 || p.Decoded&LayerInnerUDP == 0 {
		t.Fatalf("decoded = %b", p.Decoded)
	}
	if p.VNI() != 9 {
		t.Fatalf("VNI = %d", p.VNI())
	}
}
