// Package packet implements wire-format packet decoding and encoding for the
// protocols Albatross's gateway dataplane handles: Ethernet, 802.1Q VLAN,
// IPv4, UDP, TCP, ICMPv4 and VXLAN, plus the PLB meta trailer the FPGA NIC
// pipeline appends to every packet it sprays to the CPU.
//
// The API follows the gopacket DecodingLayer style: each header type decodes
// from a byte slice into a preallocated struct and serializes back without
// allocating, so the hot paths in the NIC pipeline and gateway services stay
// allocation-free. A Parser decodes a full known stack (outer Ethernet/VLAN/
// IPv4/UDP/VXLAN and the inner frame) in one pass.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// Supported EtherTypes.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeVLAN EtherType = 0x8100
)

// IPProtocol identifies the payload protocol of an IPv4 packet.
type IPProtocol uint8

// Supported IP protocol numbers.
const (
	IPProtocolICMP IPProtocol = 1
	IPProtocolTCP  IPProtocol = 6
	IPProtocolUDP  IPProtocol = 17
)

// VXLANPort is the IANA-assigned UDP destination port for VXLAN.
const VXLANPort = 4789

// Errors returned by decoders.
var (
	ErrTooShort   = errors.New("packet: buffer too short")
	ErrBadVersion = errors.New("packet: unexpected IP version")
	ErrBadLength  = errors.New("packet: header length field invalid")
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4Addr is an IPv4 address in host-independent 4-byte form.
type IPv4Addr [4]byte

func (a IPv4Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Uint32 returns the address as a big-endian uint32 (for LPM keys).
func (a IPv4Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// IPv4FromUint32 converts a big-endian uint32 to an address.
func IPv4FromUint32(v uint32) IPv4Addr {
	var a IPv4Addr
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType EtherType
}

// EthernetLen is the encoded size of an Ethernet header.
const EthernetLen = 14

// DecodeFromBytes parses an Ethernet header from data.
func (e *Ethernet) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < EthernetLen {
		return 0, ErrTooShort
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = EtherType(binary.BigEndian.Uint16(data[12:14]))
	return EthernetLen, nil
}

// SerializeTo writes the header into b, which must have >= EthernetLen bytes.
func (e *Ethernet) SerializeTo(b []byte) (int, error) {
	if len(b) < EthernetLen {
		return 0, ErrTooShort
	}
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], uint16(e.EtherType))
	return EthernetLen, nil
}

// VLAN is an 802.1Q tag. Albatross uses VLAN tags to demultiplex SR-IOV
// virtual functions: the uplink switch applies the tag, and the basic
// pipeline strips it at ingress and restores it at egress.
type VLAN struct {
	Priority  uint8 // PCP, 3 bits
	DropElig  bool  // DEI
	ID        uint16
	EtherType EtherType // encapsulated type
}

// VLANLen is the encoded size of an 802.1Q tag.
const VLANLen = 4

// DecodeFromBytes parses a VLAN tag from data.
func (v *VLAN) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < VLANLen {
		return 0, ErrTooShort
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	v.Priority = uint8(tci >> 13)
	v.DropElig = tci&0x1000 != 0
	v.ID = tci & 0x0fff
	v.EtherType = EtherType(binary.BigEndian.Uint16(data[2:4]))
	return VLANLen, nil
}

// SerializeTo writes the tag into b.
func (v *VLAN) SerializeTo(b []byte) (int, error) {
	if len(b) < VLANLen {
		return 0, ErrTooShort
	}
	tci := uint16(v.Priority&0x7)<<13 | v.ID&0x0fff
	if v.DropElig {
		tci |= 0x1000
	}
	binary.BigEndian.PutUint16(b[0:2], tci)
	binary.BigEndian.PutUint16(b[2:4], uint16(v.EtherType))
	return VLANLen, nil
}

// IPv4 is an IPv4 header (options preserved opaquely).
type IPv4 struct {
	Version  uint8
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	Length   uint16 // total length
	ID       uint16
	Flags    uint8  // 3 bits
	FragOff  uint16 // 13 bits
	TTL      uint8
	Protocol IPProtocol
	Checksum uint16
	Src      IPv4Addr
	Dst      IPv4Addr
	Options  []byte
}

// IPv4MinLen is the encoded size of an option-less IPv4 header.
const IPv4MinLen = 20

// DecodeFromBytes parses an IPv4 header from data.
func (ip *IPv4) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < IPv4MinLen {
		return 0, ErrTooShort
	}
	ip.Version = data[0] >> 4
	if ip.Version != 4 {
		return 0, ErrBadVersion
	}
	ip.IHL = data[0] & 0x0f
	hdrLen := int(ip.IHL) * 4
	if hdrLen < IPv4MinLen {
		return 0, ErrBadLength
	}
	if len(data) < hdrLen {
		return 0, ErrTooShort
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.Src[:], data[12:16])
	copy(ip.Dst[:], data[16:20])
	if hdrLen > IPv4MinLen {
		ip.Options = data[IPv4MinLen:hdrLen]
	} else {
		ip.Options = nil
	}
	return hdrLen, nil
}

// HeaderLen returns the encoded header size implied by IHL (or the minimum
// if IHL is unset).
func (ip *IPv4) HeaderLen() int {
	if ip.IHL == 0 {
		return IPv4MinLen + len(ip.Options)
	}
	return int(ip.IHL) * 4
}

// SerializeTo writes the header into b and computes the checksum.
func (ip *IPv4) SerializeTo(b []byte) (int, error) {
	hdrLen := IPv4MinLen + len(ip.Options)
	if hdrLen%4 != 0 {
		return 0, ErrBadLength
	}
	if len(b) < hdrLen {
		return 0, ErrTooShort
	}
	ip.Version = 4
	ip.IHL = uint8(hdrLen / 4)
	b[0] = ip.Version<<4 | ip.IHL
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], ip.Length)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b[8] = ip.TTL
	b[9] = uint8(ip.Protocol)
	b[10], b[11] = 0, 0
	copy(b[12:16], ip.Src[:])
	copy(b[16:20], ip.Dst[:])
	copy(b[IPv4MinLen:hdrLen], ip.Options)
	ip.Checksum = Checksum(b[:hdrLen])
	binary.BigEndian.PutUint16(b[10:12], ip.Checksum)
	return hdrLen, nil
}

// Checksum computes the RFC 1071 Internet checksum of data.
func Checksum(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the IPv4 pseudo-header partial sum used by the
// TCP and UDP checksums.
func pseudoHeaderSum(src, dst IPv4Addr, proto IPProtocol, length uint16) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// checksumWithInitial computes the Internet checksum of data with an initial
// partial sum (for pseudo headers).
func checksumWithInitial(initial uint32, data []byte) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// UDP is a UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// UDPLen is the encoded size of a UDP header.
const UDPLen = 8

// DecodeFromBytes parses a UDP header from data.
func (u *UDP) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < UDPLen {
		return 0, ErrTooShort
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	return UDPLen, nil
}

// SerializeTo writes the header into b. If payload and addresses are given
// via SerializeWithChecksum, the checksum is computed; this variant writes
// the stored checksum verbatim.
func (u *UDP) SerializeTo(b []byte) (int, error) {
	if len(b) < UDPLen {
		return 0, ErrTooShort
	}
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	binary.BigEndian.PutUint16(b[6:8], u.Checksum)
	return UDPLen, nil
}

// SerializeWithChecksum writes the header into b and computes the checksum
// over the pseudo-header and payload. b must contain the payload directly
// after the header (i.e. b[UDPLen:UDPLen+len(payload)] == payload region).
func (u *UDP) SerializeWithChecksum(b []byte, src, dst IPv4Addr, payload []byte) (int, error) {
	u.Length = uint16(UDPLen + len(payload))
	u.Checksum = 0
	if _, err := u.SerializeTo(b); err != nil {
		return 0, err
	}
	if len(b) < UDPLen+len(payload) {
		return 0, ErrTooShort
	}
	copy(b[UDPLen:], payload)
	sum := pseudoHeaderSum(src, dst, IPProtocolUDP, u.Length)
	u.Checksum = checksumWithInitial(sum, b[:UDPLen+len(payload)])
	if u.Checksum == 0 {
		u.Checksum = 0xffff // RFC 768: zero means "no checksum"
	}
	binary.BigEndian.PutUint16(b[6:8], u.Checksum)
	return UDPLen + len(payload), nil
}

// TCP is a TCP header (options preserved opaquely).
type TCP struct {
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	DataOffset uint8 // header length in 32-bit words
	Flags      TCPFlags
	Window     uint16
	Checksum   uint16
	Urgent     uint16
	Options    []byte
}

// TCPFlags is the TCP flag byte.
type TCPFlags uint8

// TCP flags.
const (
	TCPFin TCPFlags = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCPMinLen is the encoded size of an option-less TCP header.
const TCPMinLen = 20

// DecodeFromBytes parses a TCP header from data.
func (t *TCP) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < TCPMinLen {
		return 0, ErrTooShort
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	hdrLen := int(t.DataOffset) * 4
	if hdrLen < TCPMinLen {
		return 0, ErrBadLength
	}
	if len(data) < hdrLen {
		return 0, ErrTooShort
	}
	t.Flags = TCPFlags(data[13])
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	if hdrLen > TCPMinLen {
		t.Options = data[TCPMinLen:hdrLen]
	} else {
		t.Options = nil
	}
	return hdrLen, nil
}

// HeaderLen returns the encoded header size.
func (t *TCP) HeaderLen() int { return TCPMinLen + len(t.Options) }

// SerializeTo writes the header into b with the stored checksum.
func (t *TCP) SerializeTo(b []byte) (int, error) {
	hdrLen := t.HeaderLen()
	if hdrLen%4 != 0 {
		return 0, ErrBadLength
	}
	if len(b) < hdrLen {
		return 0, ErrTooShort
	}
	t.DataOffset = uint8(hdrLen / 4)
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = t.DataOffset << 4
	b[13] = uint8(t.Flags)
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	binary.BigEndian.PutUint16(b[16:18], t.Checksum)
	binary.BigEndian.PutUint16(b[18:20], t.Urgent)
	copy(b[TCPMinLen:hdrLen], t.Options)
	return hdrLen, nil
}

// SerializeWithChecksum writes header+payload into b and computes the
// checksum over the pseudo-header, header and payload.
func (t *TCP) SerializeWithChecksum(b []byte, src, dst IPv4Addr, payload []byte) (int, error) {
	hdrLen := t.HeaderLen()
	t.Checksum = 0
	if _, err := t.SerializeTo(b); err != nil {
		return 0, err
	}
	if len(b) < hdrLen+len(payload) {
		return 0, ErrTooShort
	}
	copy(b[hdrLen:], payload)
	total := uint16(hdrLen + len(payload))
	sum := pseudoHeaderSum(src, dst, IPProtocolTCP, total)
	t.Checksum = checksumWithInitial(sum, b[:int(total)])
	binary.BigEndian.PutUint16(b[16:18], t.Checksum)
	return int(total), nil
}

// ICMPv4 is an ICMPv4 header.
type ICMPv4 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID       uint16
	Seq      uint16
}

// ICMPv4Len is the encoded size of an ICMPv4 echo header.
const ICMPv4Len = 8

// ICMP types used by gateway health checks.
const (
	ICMPv4EchoReply   = 0
	ICMPv4EchoRequest = 8
)

// DecodeFromBytes parses an ICMPv4 header from data.
func (ic *ICMPv4) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < ICMPv4Len {
		return 0, ErrTooShort
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	ic.ID = binary.BigEndian.Uint16(data[4:6])
	ic.Seq = binary.BigEndian.Uint16(data[6:8])
	return ICMPv4Len, nil
}

// SerializeTo writes the header into b and computes the checksum assuming
// payload follows in b.
func (ic *ICMPv4) SerializeTo(b []byte, payloadLen int) (int, error) {
	if len(b) < ICMPv4Len+payloadLen {
		return 0, ErrTooShort
	}
	b[0] = ic.Type
	b[1] = ic.Code
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:6], ic.ID)
	binary.BigEndian.PutUint16(b[6:8], ic.Seq)
	ic.Checksum = Checksum(b[:ICMPv4Len+payloadLen])
	binary.BigEndian.PutUint16(b[2:4], ic.Checksum)
	return ICMPv4Len + payloadLen, nil
}

// VXLAN is a VXLAN header (RFC 7348). The VNI identifies the tenant network;
// Albatross's overload-protection tables are keyed by VNI.
type VXLAN struct {
	Flags uint8 // bit 3 (0x08) = VNI valid
	VNI   uint32
}

// VXLANLen is the encoded size of a VXLAN header.
const VXLANLen = 8

// VXLANFlagVNIValid marks the VNI field as valid.
const VXLANFlagVNIValid = 0x08

// DecodeFromBytes parses a VXLAN header from data.
func (v *VXLAN) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < VXLANLen {
		return 0, ErrTooShort
	}
	v.Flags = data[0]
	v.VNI = uint32(data[4])<<16 | uint32(data[5])<<8 | uint32(data[6])
	return VXLANLen, nil
}

// SerializeTo writes the header into b.
func (v *VXLAN) SerializeTo(b []byte) (int, error) {
	if len(b) < VXLANLen {
		return 0, ErrTooShort
	}
	b[0] = v.Flags | VXLANFlagVNIValid
	b[1], b[2], b[3] = 0, 0, 0
	b[4] = byte(v.VNI >> 16)
	b[5] = byte(v.VNI >> 8)
	b[6] = byte(v.VNI)
	b[7] = 0
	return VXLANLen, nil
}
