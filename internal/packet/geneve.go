package packet

import "encoding/binary"

// This file implements the two encapsulations §2.1 of the paper calls out
// as *impossible to add* on the Tofino-based Sailfish gateway (97% PHV
// utilization): Geneve (RFC 8926) and NSH (RFC 8300). On Albatross the
// parser runs in software, so adding them is a code change — which is
// precisely the platform's extensibility argument.

// GenevePort is the IANA-assigned UDP destination port for Geneve.
const GenevePort = 6081

// Geneve is a Geneve header (RFC 8926).
type Geneve struct {
	Version  uint8 // 2 bits
	OAM      bool  // O: control packet
	Critical bool  // C: critical options present
	Protocol EtherType
	VNI      uint32 // 24 bits
	// Options holds the raw variable-length options (multiple of 4 bytes).
	Options []byte
}

// GeneveMinLen is the encoded size of an option-less Geneve header.
const GeneveMinLen = 8

// DecodeFromBytes parses a Geneve header from data.
func (g *Geneve) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < GeneveMinLen {
		return 0, ErrTooShort
	}
	g.Version = data[0] >> 6
	if g.Version != 0 {
		return 0, ErrBadVersion
	}
	optLen := int(data[0]&0x3f) * 4
	g.OAM = data[1]&0x80 != 0
	g.Critical = data[1]&0x40 != 0
	g.Protocol = EtherType(binary.BigEndian.Uint16(data[2:4]))
	g.VNI = uint32(data[4])<<16 | uint32(data[5])<<8 | uint32(data[6])
	total := GeneveMinLen + optLen
	if len(data) < total {
		return 0, ErrTooShort
	}
	if optLen > 0 {
		g.Options = data[GeneveMinLen:total]
	} else {
		g.Options = nil
	}
	return total, nil
}

// SerializeTo writes the header into b.
func (g *Geneve) SerializeTo(b []byte) (int, error) {
	if len(g.Options)%4 != 0 {
		return 0, ErrBadLength
	}
	total := GeneveMinLen + len(g.Options)
	if len(b) < total {
		return 0, ErrTooShort
	}
	b[0] = byte(len(g.Options) / 4) // version 0
	b[1] = 0
	if g.OAM {
		b[1] |= 0x80
	}
	if g.Critical {
		b[1] |= 0x40
	}
	binary.BigEndian.PutUint16(b[2:4], uint16(g.Protocol))
	b[4] = byte(g.VNI >> 16)
	b[5] = byte(g.VNI >> 8)
	b[6] = byte(g.VNI)
	b[7] = 0
	copy(b[GeneveMinLen:], g.Options)
	return total, nil
}

// GeneveOption is one TLV option.
type GeneveOption struct {
	Class uint16
	Type  uint8
	Data  []byte // length must be a multiple of 4
}

// AppendGeneveOption encodes an option TLV onto opts.
func AppendGeneveOption(opts []byte, o GeneveOption) ([]byte, error) {
	if len(o.Data)%4 != 0 || len(o.Data) > 124 {
		return nil, ErrBadLength
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], o.Class)
	hdr[2] = o.Type
	hdr[3] = byte(len(o.Data) / 4)
	opts = append(opts, hdr[:]...)
	return append(opts, o.Data...), nil
}

// ParseGeneveOptions decodes all TLVs from an options region.
func ParseGeneveOptions(opts []byte) ([]GeneveOption, error) {
	var out []GeneveOption
	for len(opts) > 0 {
		if len(opts) < 4 {
			return nil, ErrTooShort
		}
		length := int(opts[3]&0x1f) * 4
		if len(opts) < 4+length {
			return nil, ErrTooShort
		}
		out = append(out, GeneveOption{
			Class: binary.BigEndian.Uint16(opts[0:2]),
			Type:  opts[2],
			Data:  opts[4 : 4+length],
		})
		opts = opts[4+length:]
	}
	return out, nil
}

// NSH is a Network Service Header (RFC 8300) with MD type 1 (four fixed
// 32-bit context headers).
type NSH struct {
	OAM         bool
	TTL         uint8 // 6 bits
	MDType      uint8
	NextProto   uint8 // 1=IPv4, 3=Ethernet, ...
	ServicePath uint32
	ServiceIdx  uint8
	Context     [4]uint32 // MD type 1 mandatory context
}

// NSH next-protocol values.
const (
	NSHNextIPv4     = 0x01
	NSHNextEthernet = 0x03
)

// NSHMD1Len is the encoded size of an MD-type-1 NSH.
const NSHMD1Len = 8 + 16

// DecodeFromBytes parses an NSH from data. Only MD type 1 is supported;
// MD type 2 returns ErrUnsupported.
func (n *NSH) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < 8 {
		return 0, ErrTooShort
	}
	ver := data[0] >> 6
	if ver != 0 {
		return 0, ErrBadVersion
	}
	n.OAM = data[0]&0x20 != 0
	// TTL spans the low 4 bits of byte 0 and the high 2 bits of byte 1.
	n.TTL = data[0]&0x0f<<2 | data[1]>>6
	length := int(data[1]&0x3f) * 4
	n.MDType = data[2] & 0x0f
	n.NextProto = data[3]
	spsi := binary.BigEndian.Uint32(data[4:8])
	n.ServicePath = spsi >> 8
	n.ServiceIdx = uint8(spsi)
	if n.MDType != 1 {
		return 0, ErrUnsupported
	}
	if length != NSHMD1Len || len(data) < NSHMD1Len {
		return 0, ErrBadLength
	}
	for i := 0; i < 4; i++ {
		n.Context[i] = binary.BigEndian.Uint32(data[8+4*i : 12+4*i])
	}
	return NSHMD1Len, nil
}

// SerializeTo writes an MD-type-1 NSH into b.
func (n *NSH) SerializeTo(b []byte) (int, error) {
	if len(b) < NSHMD1Len {
		return 0, ErrTooShort
	}
	ttl := n.TTL & 0x3f
	b[0] = ttl >> 2
	if n.OAM {
		b[0] |= 0x20
	}
	b[1] = ttl<<6 | byte(NSHMD1Len/4)
	b[2] = 1 // MD type 1
	b[3] = n.NextProto
	binary.BigEndian.PutUint32(b[4:8], n.ServicePath<<8|uint32(n.ServiceIdx))
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint32(b[8+4*i:12+4*i], n.Context[i])
	}
	return NSHMD1Len, nil
}

// Decrement implements the NSH forwarding step: decrementing the service
// index. It reports false when the index would underflow (packet must be
// dropped, RFC 8300 §4.3).
func (n *NSH) Decrement() bool {
	if n.ServiceIdx == 0 {
		return false
	}
	n.ServiceIdx--
	return n.ServiceIdx != 0
}
