package packet

import (
	"encoding/binary"
	"errors"
)

// Meta is the PLB meta header the FPGA NIC pipeline attaches to every data
// packet before DMA-ing it to a CPU core, and which the GW pod returns with
// the packet so plb_reorder can restore order and release resources.
//
// Per §7 of the paper ("Performance optimization with PLB meta header"),
// the meta rides at the *packet tail*: gateway code never touches packet
// tails, so tail placement avoids both the encap/decap headroom conflicts
// and the 33.6% copy overhead of stashing the meta in driver private space.
//
// Wire layout (16 bytes, big-endian):
//
//	0:2   magic 0xA1BA ("ALBAtross")
//	2:4   PSN (16-bit packet sequence number; legal check uses low 12 bits)
//	4:5   order-preserving queue index
//	5:6   flags (drop, header-only, priority)
//	6:8   pod ID
//	8:16  ingress timestamp (virtual ns) for timeout determination
type Meta struct {
	PSN       uint16
	OrdQ      uint8
	Flags     MetaFlags
	PodID     uint16
	IngressNS int64
}

// MetaFlags is the PLB meta flag byte.
type MetaFlags uint8

// Meta flags.
const (
	// MetaFlagDrop is set by the GW pod when rate limiting or ACL rules
	// dropped the packet: plb_reorder must release the FIFO/BUF/BITMAP
	// resources instead of waiting for the 100 µs timeout (HOL avoidance).
	MetaFlagDrop MetaFlags = 1 << iota
	// MetaFlagHeaderOnly marks header-payload-split delivery: only the
	// header crossed PCIe; the payload is parked in the NIC payload buffer.
	MetaFlagHeaderOnly
	// MetaFlagPriority marks protocol packets (BGP/BFD) that ride the
	// dedicated priority queues.
	MetaFlagPriority
)

// MetaLen is the encoded size of the meta trailer.
const MetaLen = 16

// metaMagic guards against stripping a trailer from a packet that has none.
const metaMagic = 0xA1BA

// ErrNoMeta reports that a packet does not end in a valid meta trailer.
var ErrNoMeta = errors.New("packet: no PLB meta trailer")

// AppendMeta appends the encoded meta trailer to pkt and returns the
// extended slice (may reallocate, like append).
func AppendMeta(pkt []byte, m *Meta) []byte {
	var b [MetaLen]byte
	binary.BigEndian.PutUint16(b[0:2], metaMagic)
	binary.BigEndian.PutUint16(b[2:4], m.PSN)
	b[4] = m.OrdQ
	b[5] = uint8(m.Flags)
	binary.BigEndian.PutUint16(b[6:8], m.PodID)
	binary.BigEndian.PutUint64(b[8:16], uint64(m.IngressNS))
	return append(pkt, b[:]...)
}

// StripMeta decodes and removes the meta trailer from pkt, returning the
// packet body. It fails if the trailer is missing or corrupt.
func StripMeta(pkt []byte, m *Meta) ([]byte, error) {
	if len(pkt) < MetaLen {
		return nil, ErrNoMeta
	}
	tail := pkt[len(pkt)-MetaLen:]
	if binary.BigEndian.Uint16(tail[0:2]) != metaMagic {
		return nil, ErrNoMeta
	}
	m.PSN = binary.BigEndian.Uint16(tail[2:4])
	m.OrdQ = tail[4]
	m.Flags = MetaFlags(tail[5])
	m.PodID = binary.BigEndian.Uint16(tail[6:8])
	m.IngressNS = int64(binary.BigEndian.Uint64(tail[8:16]))
	return pkt[:len(pkt)-MetaLen], nil
}

// PeekMeta decodes the trailer without removing it.
func PeekMeta(pkt []byte, m *Meta) error {
	_, err := StripMeta(pkt, m)
	return err
}

// HasMeta reports whether pkt ends in a valid meta trailer.
func HasMeta(pkt []byte) bool {
	var m Meta
	return PeekMeta(pkt, &m) == nil
}

// UpdateMetaFlags rewrites the flag byte of an in-place trailer. The GW pod
// uses this to set the drop flag without copying the packet.
func UpdateMetaFlags(pkt []byte, flags MetaFlags) error {
	if len(pkt) < MetaLen {
		return ErrNoMeta
	}
	tail := pkt[len(pkt)-MetaLen:]
	if binary.BigEndian.Uint16(tail[0:2]) != metaMagic {
		return ErrNoMeta
	}
	tail[5] = uint8(flags)
	return nil
}

// PSNWindow is the size of the legal-check window: plb_reorder validates
// returned packets by checking meta.psn[11:0] against the FIFO head/tail
// pointers, so the window is 2^12 entries (the 4K FIFO length).
const PSNWindow = 1 << 12

// PSNLow12 returns the low 12 bits of a PSN, the part the legal check uses.
func PSNLow12(psn uint16) uint16 { return psn & (PSNWindow - 1) }

// PSNInWindow reports whether psn's low 12 bits fall inside the half-open
// window [head, tail) in modulo-4K arithmetic. head == tail means an empty
// window. This mirrors the FPGA legal check exactly, including the aliasing
// it permits: a stale PSN whose low 12 bits alias into the window passes
// here and is caught later by the reorder check (paper §4.1, case 3).
func PSNInWindow(psn, head, tail uint16) bool {
	p := PSNLow12(psn)
	h := PSNLow12(head)
	t := PSNLow12(tail)
	if h == t {
		return false
	}
	if h < t {
		return p >= h && p < t
	}
	return p >= h || p < t
}
