package packet

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       MAC{0x02, 0x11, 0x22, 0x33, 0x44, 0x55},
		Src:       MAC{0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee},
		EtherType: EtherTypeIPv4,
	}
	buf := make([]byte, EthernetLen)
	n, err := e.SerializeTo(buf)
	if err != nil || n != EthernetLen {
		t.Fatalf("serialize: n=%d err=%v", n, err)
	}
	var d Ethernet
	n, err = d.DecodeFromBytes(buf)
	if err != nil || n != EthernetLen {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if d != e {
		t.Fatalf("round trip mismatch: %+v != %+v", d, e)
	}
}

func TestEthernetTooShort(t *testing.T) {
	var e Ethernet
	if _, err := e.DecodeFromBytes(make([]byte, 13)); err != ErrTooShort {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
	if _, err := e.SerializeTo(make([]byte, 13)); err != ErrTooShort {
		t.Fatalf("serialize err = %v, want ErrTooShort", err)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x00, 0x5e, 0x10, 0x00, 0x01}
	if got := m.String(); got != "02:00:5e:10:00:01" {
		t.Fatalf("MAC string = %q", got)
	}
}

func TestVLANRoundTrip(t *testing.T) {
	v := VLAN{Priority: 5, DropElig: true, ID: 1234, EtherType: EtherTypeIPv4}
	buf := make([]byte, VLANLen)
	if _, err := v.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	var d VLAN
	if _, err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d != v {
		t.Fatalf("round trip mismatch: %+v != %+v", d, v)
	}
}

func TestVLANFieldMasking(t *testing.T) {
	v := VLAN{Priority: 0xFF, ID: 0xFFFF, EtherType: EtherTypeIPv4}
	buf := make([]byte, VLANLen)
	v.SerializeTo(buf)
	var d VLAN
	d.DecodeFromBytes(buf)
	if d.Priority != 7 || d.ID != 0x0fff {
		t.Fatalf("fields not masked: pri=%d id=%d", d.Priority, d.ID)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{
		TOS:      0x10,
		Length:   120,
		ID:       0xbeef,
		Flags:    2, // DF
		FragOff:  0,
		TTL:      63,
		Protocol: IPProtocolUDP,
		Src:      IPv4Addr{10, 0, 0, 1},
		Dst:      IPv4Addr{192, 168, 1, 200},
	}
	buf := make([]byte, IPv4MinLen)
	n, err := ip.SerializeTo(buf)
	if err != nil || n != IPv4MinLen {
		t.Fatalf("serialize: n=%d err=%v", n, err)
	}
	if !VerifyIPv4Checksum(buf) {
		t.Fatal("checksum invalid after serialize")
	}
	var d IPv4
	n, err = d.DecodeFromBytes(buf)
	if err != nil || n != IPv4MinLen {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if d.Src != ip.Src || d.Dst != ip.Dst || d.Protocol != ip.Protocol ||
		d.TTL != ip.TTL || d.Length != ip.Length || d.ID != ip.ID ||
		d.Flags != ip.Flags || d.TOS != ip.TOS {
		t.Fatalf("round trip mismatch: %+v != %+v", d, ip)
	}
}

func TestIPv4KnownChecksum(t *testing.T) {
	// Canonical example from RFC 1071 discussions: header with checksum
	// 0xb861 (widely used test vector).
	hdr := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	if got := Checksum(hdr); got != 0xb861 {
		t.Fatalf("checksum = %#04x, want 0xb861", got)
	}
	binary.BigEndian.PutUint16(hdr[10:12], 0xb861)
	if !VerifyIPv4Checksum(hdr) {
		t.Fatal("verify failed on known-good header")
	}
	hdr[8] ^= 0xff
	if VerifyIPv4Checksum(hdr) {
		t.Fatal("verify passed on corrupted header")
	}
}

func TestIPv4Options(t *testing.T) {
	ip := IPv4{
		TTL: 64, Protocol: IPProtocolTCP,
		Src:     IPv4Addr{1, 2, 3, 4},
		Dst:     IPv4Addr{5, 6, 7, 8},
		Options: []byte{0x01, 0x01, 0x01, 0x01}, // 4 bytes NOP padding
	}
	buf := make([]byte, 24)
	n, err := ip.SerializeTo(buf)
	if err != nil || n != 24 {
		t.Fatalf("serialize with options: n=%d err=%v", n, err)
	}
	var d IPv4
	n, err = d.DecodeFromBytes(buf)
	if err != nil || n != 24 {
		t.Fatalf("decode with options: n=%d err=%v", n, err)
	}
	if d.IHL != 6 || !bytes.Equal(d.Options, ip.Options) {
		t.Fatalf("options mismatch: ihl=%d opts=%x", d.IHL, d.Options)
	}
}

func TestIPv4BadInputs(t *testing.T) {
	var d IPv4
	if _, err := d.DecodeFromBytes(make([]byte, 19)); err != ErrTooShort {
		t.Fatalf("short: %v", err)
	}
	bad := make([]byte, 20)
	bad[0] = 0x60 // version 6
	if _, err := d.DecodeFromBytes(bad); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	bad[0] = 0x42 // version 4, IHL 2 (< 5)
	if _, err := d.DecodeFromBytes(bad); err != ErrBadLength {
		t.Fatalf("ihl: %v", err)
	}
	bad[0] = 0x4f // IHL 15 => 60 bytes, buffer only 20
	if _, err := d.DecodeFromBytes(bad); err != ErrTooShort {
		t.Fatalf("truncated options: %v", err)
	}
	ipBadOpts := IPv4{Options: []byte{1, 2, 3}} // not multiple of 4
	if _, err := ipBadOpts.SerializeTo(make([]byte, 64)); err != ErrBadLength {
		t.Fatalf("odd options: %v", err)
	}
}

func TestIPv4AddrHelpers(t *testing.T) {
	a := IPv4Addr{10, 20, 30, 40}
	if a.String() != "10.20.30.40" {
		t.Fatalf("string = %q", a.String())
	}
	if IPv4FromUint32(a.Uint32()) != a {
		t.Fatal("uint32 round trip failed")
	}
	if a.Uint32() != 0x0a141e28 {
		t.Fatalf("uint32 = %#x", a.Uint32())
	}
}

func TestUDPChecksum(t *testing.T) {
	src := IPv4Addr{10, 0, 0, 1}
	dst := IPv4Addr{10, 0, 0, 2}
	payload := []byte("hello gateway")
	u := UDP{SrcPort: 5353, DstPort: 4789}
	buf := make([]byte, UDPLen+len(payload))
	n, err := u.SerializeWithChecksum(buf, src, dst, payload)
	if err != nil || n != UDPLen+len(payload) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if u.Checksum == 0 {
		t.Fatal("checksum not computed")
	}
	// Verifying: checksum over pseudo-header + segment must be 0 (or 0xffff).
	sum := pseudoHeaderSum(src, dst, IPProtocolUDP, u.Length)
	if got := checksumWithInitial(sum, buf); got != 0 && got != 0xffff {
		t.Fatalf("verification sum = %#04x", got)
	}
	var d UDP
	if _, err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 5353 || d.DstPort != 4789 || d.Length != uint16(n) {
		t.Fatalf("decode mismatch: %+v", d)
	}
}

func TestTCPRoundTripWithOptions(t *testing.T) {
	src := IPv4Addr{172, 16, 0, 1}
	dst := IPv4Addr{172, 16, 0, 2}
	tc := TCP{
		SrcPort: 443, DstPort: 61234,
		Seq: 0x12345678, Ack: 0x9abcdef0,
		Flags: TCPSyn | TCPAck, Window: 29200,
		Options: []byte{2, 4, 5, 0xb4}, // MSS 1460
	}
	payload := []byte{0xde, 0xad}
	buf := make([]byte, tc.HeaderLen()+len(payload))
	n, err := tc.SerializeWithChecksum(buf, src, dst, payload)
	if err != nil || n != 26 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	sum := pseudoHeaderSum(src, dst, IPProtocolTCP, uint16(n))
	if got := checksumWithInitial(sum, buf[:n]); got != 0 {
		t.Fatalf("verification sum = %#04x", got)
	}
	var d TCP
	hn, err := d.DecodeFromBytes(buf)
	if err != nil || hn != 24 {
		t.Fatalf("decode: n=%d err=%v", hn, err)
	}
	if d.SrcPort != tc.SrcPort || d.Seq != tc.Seq || d.Ack != tc.Ack ||
		d.Flags != tc.Flags || !bytes.Equal(d.Options, tc.Options) {
		t.Fatalf("mismatch: %+v", d)
	}
}

func TestTCPBadInputs(t *testing.T) {
	var d TCP
	if _, err := d.DecodeFromBytes(make([]byte, 19)); err != ErrTooShort {
		t.Fatalf("short: %v", err)
	}
	bad := make([]byte, 20)
	bad[12] = 0x40 // data offset 4 < 5
	if _, err := d.DecodeFromBytes(bad); err != ErrBadLength {
		t.Fatalf("offset: %v", err)
	}
}

func TestICMPv4RoundTrip(t *testing.T) {
	ic := ICMPv4{Type: ICMPv4EchoRequest, Code: 0, ID: 99, Seq: 7}
	buf := make([]byte, ICMPv4Len+4)
	copy(buf[ICMPv4Len:], []byte{1, 2, 3, 4})
	n, err := ic.SerializeTo(buf, 4)
	if err != nil || n != 12 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if got := Checksum(buf[:n]); got != 0 {
		t.Fatalf("icmp checksum verify = %#04x", got)
	}
	var d ICMPv4
	if _, err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.Type != ic.Type || d.ID != 99 || d.Seq != 7 {
		t.Fatalf("mismatch: %+v", d)
	}
}

func TestVXLANRoundTrip(t *testing.T) {
	v := VXLAN{VNI: 0xABCDE}
	buf := make([]byte, VXLANLen)
	if _, err := v.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	if buf[0]&VXLANFlagVNIValid == 0 {
		t.Fatal("VNI-valid flag not set")
	}
	var d VXLAN
	if _, err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.VNI != 0xABCDE {
		t.Fatalf("VNI = %#x", d.VNI)
	}
}

func TestVXLANVNI24Bits(t *testing.T) {
	v := VXLAN{VNI: 0x1FFFFFF} // 25 bits; top bit must be dropped
	buf := make([]byte, VXLANLen)
	v.SerializeTo(buf)
	var d VXLAN
	d.DecodeFromBytes(buf)
	if d.VNI != 0xFFFFFF {
		t.Fatalf("VNI = %#x, want 24-bit truncation", d.VNI)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length data exercises the trailing-byte path.
	data := []byte{0x01, 0x02, 0x03}
	got := Checksum(data)
	// Manual: 0x0102 + 0x0300 = 0x0402 -> ^0x0402 = 0xfbfd
	if got != 0xfbfd {
		t.Fatalf("checksum = %#04x, want 0xfbfd", got)
	}
}

func TestChecksumPropertyVerifiesToZero(t *testing.T) {
	// Inserting the computed checksum at any 2-byte-aligned zeroed slot
	// makes the total sum verify (0). Mirrors IPv4 header behaviour.
	f := func(raw []byte) bool {
		data := make([]byte, len(raw)+2)
		copy(data, raw[:len(raw)/2*2]) // even split
		copy(data[len(raw)/2*2+2:], raw[len(raw)/2*2:])
		c := Checksum(data)
		binary.BigEndian.PutUint16(data[len(raw)/2*2:], c)
		v := Checksum(data)
		return v == 0 || v == 0xffff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
