package packet

import (
	"testing"
	"testing/quick"
)

func sampleSpec() *VXLANSpec {
	return &VXLANSpec{
		OuterSrcMAC:  MAC{0x02, 0, 0, 0, 0, 0x01},
		OuterDstMAC:  MAC{0x02, 0, 0, 0, 0, 0x02},
		OuterSrc:     IPv4Addr{100, 64, 0, 1},
		OuterDst:     IPv4Addr{100, 64, 0, 2},
		OuterSrcPort: 40000,
		VNI:          12345,
		InnerSrcMAC:  MAC{0x02, 0, 0, 0, 1, 0x01},
		InnerDstMAC:  MAC{0x02, 0, 0, 0, 1, 0x02},
		InnerSrc:     IPv4Addr{192, 168, 0, 10},
		InnerDst:     IPv4Addr{8, 8, 8, 8},
		InnerProto:   IPProtocolTCP,
		InnerSPort:   51000,
		InnerDPort:   443,
		PayloadLen:   64,
		PayloadByte:  0x5a,
	}
}

func TestParseVXLANStack(t *testing.T) {
	b := NewBuilder(512)
	pkt := BuildVXLANPacket(b, sampleSpec())

	var p Parsed
	if err := Parse(pkt, &p); err != nil {
		t.Fatal(err)
	}
	want := LayerEthernet | LayerIPv4 | LayerUDP | LayerVXLAN |
		LayerInnerEthernet | LayerInnerIPv4 | LayerInnerTCP
	if p.Decoded != want {
		t.Fatalf("decoded = %b, want %b", p.Decoded, want)
	}
	if p.VNI() != 12345 {
		t.Fatalf("VNI = %d", p.VNI())
	}
	if p.IP.Src != (IPv4Addr{100, 64, 0, 1}) {
		t.Fatalf("outer src = %v", p.IP.Src)
	}
	if p.InIP.Dst != (IPv4Addr{8, 8, 8, 8}) {
		t.Fatalf("inner dst = %v", p.InIP.Dst)
	}
	if p.InTCP.DstPort != 443 {
		t.Fatalf("inner dport = %d", p.InTCP.DstPort)
	}
	if len(p.Payload) != 64 || p.Payload[0] != 0x5a {
		t.Fatalf("payload len=%d first=%#x", len(p.Payload), p.Payload)
	}
	if p.HeaderLen != len(pkt)-64 {
		t.Fatalf("header len = %d, want %d", p.HeaderLen, len(pkt)-64)
	}
	// Outer IPv4 length field covers everything after Ethernet.
	if int(p.IP.Length) != len(pkt)-EthernetLen {
		t.Fatalf("outer IP length = %d, want %d", p.IP.Length, len(pkt)-EthernetLen)
	}
	if !VerifyIPv4Checksum(pkt[EthernetLen : EthernetLen+IPv4MinLen]) {
		t.Fatal("outer IP checksum invalid")
	}
}

func TestParseInnerUDP(t *testing.T) {
	spec := sampleSpec()
	spec.InnerProto = IPProtocolUDP
	b := NewBuilder(512)
	pkt := BuildVXLANPacket(b, spec)
	var p Parsed
	if err := Parse(pkt, &p); err != nil {
		t.Fatal(err)
	}
	if p.Decoded&LayerInnerUDP == 0 {
		t.Fatal("inner UDP not decoded")
	}
	f := p.InnerFlow()
	if f.Proto != IPProtocolUDP || f.SPort != 51000 || f.DPort != 443 {
		t.Fatalf("inner flow = %v", f)
	}
}

func TestParsePlainTCP(t *testing.T) {
	// Non-encapsulated packet: Ethernet/IPv4/TCP.
	b := NewBuilder(256)
	ip := IPv4{TTL: 64, Protocol: IPProtocolTCP, Src: IPv4Addr{1, 1, 1, 1}, Dst: IPv4Addr{2, 2, 2, 2}}
	b.AddEthernet(&Ethernet{EtherType: EtherTypeIPv4})
	payload := []byte("data")
	b.AddIPv4(&ip, TCPMinLen+len(payload))
	b.AddTCP(&TCP{SrcPort: 1000, DstPort: 2000, Flags: TCPAck}, ip.Src, ip.Dst, payload)

	var p Parsed
	if err := Parse(b.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Decoded != LayerEthernet|LayerIPv4|LayerTCP {
		t.Fatalf("decoded = %b", p.Decoded)
	}
	if p.VNI() != 0 {
		t.Fatalf("VNI = %d for non-VXLAN", p.VNI())
	}
	of := p.OuterFlow()
	if of.SPort != 1000 || of.DPort != 2000 || of.Proto != IPProtocolTCP {
		t.Fatalf("outer flow = %v", of)
	}
	// InnerFlow falls back to outer for plain packets.
	if p.InnerFlow() != of {
		t.Fatal("InnerFlow should equal OuterFlow for plain packets")
	}
	if string(p.Payload) != "data" {
		t.Fatalf("payload = %q", p.Payload)
	}
}

func TestParseVLANTagged(t *testing.T) {
	b := NewBuilder(256)
	b.AddEthernet(&Ethernet{EtherType: EtherTypeVLAN})
	b.AddVLAN(&VLAN{ID: 77, EtherType: EtherTypeIPv4})
	ip := IPv4{TTL: 64, Protocol: IPProtocolICMP, Src: IPv4Addr{1, 0, 0, 1}, Dst: IPv4Addr{1, 0, 0, 2}}
	b.AddIPv4(&ip, ICMPv4Len)
	icmpBuf := make([]byte, ICMPv4Len)
	ic := ICMPv4{Type: ICMPv4EchoRequest, ID: 1, Seq: 1}
	ic.SerializeTo(icmpBuf, 0)
	b.AddBytes(icmpBuf)

	var p Parsed
	if err := Parse(b.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Decoded&LayerVLAN == 0 || p.VLAN.ID != 77 {
		t.Fatalf("VLAN not decoded: %b id=%d", p.Decoded, p.VLAN.ID)
	}
	if p.Decoded&LayerICMPv4 == 0 || p.ICMP.Type != ICMPv4EchoRequest {
		t.Fatal("ICMP not decoded")
	}
}

func TestParseUnknownEtherType(t *testing.T) {
	b := NewBuilder(64)
	b.AddEthernet(&Ethernet{EtherType: EtherTypeARP})
	b.AddBytes([]byte{1, 2, 3, 4})
	var p Parsed
	if err := Parse(b.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Decoded != LayerEthernet {
		t.Fatalf("decoded = %b", p.Decoded)
	}
	if len(p.Payload) != 4 {
		t.Fatalf("payload = %v", p.Payload)
	}
}

func TestParseTruncated(t *testing.T) {
	b := NewBuilder(512)
	pkt := BuildVXLANPacket(b, sampleSpec())
	// Every truncation point up to the full header stack must either parse
	// a shallower stack or return ErrTooShort — never panic.
	var p Parsed
	full := len(pkt)
	for cut := 0; cut < full; cut++ {
		err := Parse(pkt[:cut], &p)
		if err != nil && err != ErrTooShort && err != ErrBadLength && err != ErrBadVersion {
			t.Fatalf("cut=%d: unexpected error %v", cut, err)
		}
	}
}

func TestParseReuseOverwrites(t *testing.T) {
	b := NewBuilder(512)
	vxlan := BuildVXLANPacket(b, sampleSpec())
	var p Parsed
	if err := Parse(vxlan, &p); err != nil {
		t.Fatal(err)
	}
	// Now parse a plain packet into the same struct: stale VXLAN layers
	// must not leak through Decoded.
	b2 := NewBuilder(128)
	b2.AddEthernet(&Ethernet{EtherType: EtherTypeIPv4})
	ip := IPv4{TTL: 1, Protocol: IPProtocolUDP, Src: IPv4Addr{9, 9, 9, 9}, Dst: IPv4Addr{8, 8, 8, 8}}
	b2.AddIPv4(&ip, UDPLen)
	b2.AddUDP(&UDP{SrcPort: 1, DstPort: 53}, ip.Src, ip.Dst, nil)
	if err := Parse(b2.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Decoded&LayerVXLAN != 0 || p.VNI() != 0 {
		t.Fatal("stale VXLAN layer leaked on reuse")
	}
}

func TestFiveTupleHashStability(t *testing.T) {
	f := FiveTuple{Src: IPv4Addr{1, 2, 3, 4}, Dst: IPv4Addr{5, 6, 7, 8}, Proto: IPProtocolTCP, SPort: 80, DPort: 8080}
	h1, h2 := f.Hash(), f.Hash()
	if h1 != h2 {
		t.Fatal("hash not deterministic")
	}
	g := f
	g.SPort = 81
	if g.Hash() == h1 {
		t.Fatal("port change did not alter hash")
	}
}

func TestFiveTupleReverse(t *testing.T) {
	f := FiveTuple{Src: IPv4Addr{1, 1, 1, 1}, Dst: IPv4Addr{2, 2, 2, 2}, Proto: IPProtocolUDP, SPort: 10, DPort: 20}
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src || r.SPort != f.DPort || r.DPort != f.SPort {
		t.Fatalf("reverse = %v", r)
	}
	if r.Reverse() != f {
		t.Fatal("double reverse != identity")
	}
}

func TestFiveTupleHashDistribution(t *testing.T) {
	// Hash must spread sequential flows across buckets reasonably evenly.
	const flows, buckets = 100000, 64
	counts := make([]int, buckets)
	for i := 0; i < flows; i++ {
		f := FiveTuple{
			Src:   IPv4FromUint32(0x0a000000 + uint32(i)),
			Dst:   IPv4Addr{10, 1, 0, 1},
			Proto: IPProtocolTCP,
			SPort: uint16(1024 + i%50000),
			DPort: 443,
		}
		counts[f.Hash()%buckets]++
	}
	want := flows / buckets
	for i, c := range counts {
		if c < want*7/10 || c > want*13/10 {
			t.Fatalf("bucket %d has %d flows, want %d±30%%", i, c, want)
		}
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder(64)
	b.AddBytes([]byte{1, 2, 3})
	if len(b.Bytes()) != 3 {
		t.Fatalf("len = %d", len(b.Bytes()))
	}
	b.Reset()
	if len(b.Bytes()) != 0 {
		t.Fatal("reset did not clear")
	}
	b.AddBytes(make([]byte, 1000)) // force growth past initial capacity
	if len(b.Bytes()) != 1000 {
		t.Fatalf("grow failed: %d", len(b.Bytes()))
	}
}

func TestMetaRoundTrip(t *testing.T) {
	pkt := []byte{1, 2, 3, 4, 5}
	m := Meta{PSN: 0x8123, OrdQ: 3, Flags: MetaFlagDrop | MetaFlagHeaderOnly, PodID: 42, IngressNS: 123456789}
	tagged := AppendMeta(pkt, &m)
	if len(tagged) != len(pkt)+MetaLen {
		t.Fatalf("tagged len = %d", len(tagged))
	}
	if !HasMeta(tagged) {
		t.Fatal("HasMeta false")
	}
	var got Meta
	body, err := StripMeta(tagged, &got)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("meta mismatch: %+v != %+v", got, m)
	}
	if len(body) != 5 || body[0] != 1 {
		t.Fatalf("body = %v", body)
	}
}

func TestMetaMissing(t *testing.T) {
	var m Meta
	if _, err := StripMeta([]byte{1, 2, 3}, &m); err != ErrNoMeta {
		t.Fatalf("short err = %v", err)
	}
	junk := make([]byte, 32)
	if _, err := StripMeta(junk, &m); err != ErrNoMeta {
		t.Fatalf("bad magic err = %v", err)
	}
	if HasMeta(junk) {
		t.Fatal("HasMeta true on junk")
	}
}

func TestUpdateMetaFlags(t *testing.T) {
	tagged := AppendMeta([]byte{9}, &Meta{PSN: 7})
	if err := UpdateMetaFlags(tagged, MetaFlagDrop); err != nil {
		t.Fatal(err)
	}
	var m Meta
	if err := PeekMeta(tagged, &m); err != nil {
		t.Fatal(err)
	}
	if m.Flags != MetaFlagDrop || m.PSN != 7 {
		t.Fatalf("meta after update = %+v", m)
	}
	if err := UpdateMetaFlags([]byte{1, 2}, MetaFlagDrop); err != ErrNoMeta {
		t.Fatalf("short update err = %v", err)
	}
}

func TestPSNWindow(t *testing.T) {
	cases := []struct {
		psn, head, tail uint16
		want            bool
	}{
		{psn: 5, head: 0, tail: 10, want: true},
		{psn: 10, head: 0, tail: 10, want: false},      // tail exclusive
		{psn: 0, head: 0, tail: 10, want: true},        // head inclusive
		{psn: 5, head: 5, tail: 5, want: false},        // empty window
		{psn: 4090, head: 4000, tail: 100, want: true}, // wrapped window
		{psn: 50, head: 4000, tail: 100, want: true},   // wrapped window low side
		{psn: 200, head: 4000, tail: 100, want: false}, // outside wrapped
		{psn: 0x1005, head: 0, tail: 10, want: true},   // aliasing: low 12 bits in window
	}
	for i, c := range cases {
		if got := PSNInWindow(c.psn, c.head, c.tail); got != c.want {
			t.Errorf("case %d: PSNInWindow(%d,%d,%d) = %v, want %v", i, c.psn, c.head, c.tail, got, c.want)
		}
	}
}

func TestPSNWindowProperty(t *testing.T) {
	// For any non-empty window of size < 4096, a PSN equal to head+k for
	// k < size must be inside; head+size must be outside.
	f := func(headRaw, sizeRaw uint16) bool {
		head := headRaw % 4096
		size := sizeRaw%4095 + 1
		tail := (head + size) % 4096
		for _, k := range []uint16{0, size / 2, size - 1} {
			if !PSNInWindow((head+k)%4096, head, tail) {
				return false
			}
		}
		return !PSNInWindow(tail, head, tail)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendMetaDoesNotAlias(t *testing.T) {
	// Append must behave like append: capacity-limited base slice stays
	// intact.
	base := make([]byte, 4, 4)
	tagged := AppendMeta(base, &Meta{PSN: 1})
	tagged[0] = 0xFF
	if base[0] == 0xFF {
		t.Skip("append reused capacity (allowed, mirrors stdlib append)")
	}
}

func BenchmarkParseVXLAN(b *testing.B) {
	bld := NewBuilder(512)
	pkt := BuildVXLANPacket(bld, sampleSpec())
	var p Parsed
	b.ReportAllocs()
	b.SetBytes(int64(len(pkt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Parse(pkt, &p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFiveTupleHash(b *testing.B) {
	f := FiveTuple{Src: IPv4Addr{1, 2, 3, 4}, Dst: IPv4Addr{5, 6, 7, 8}, Proto: IPProtocolTCP, SPort: 80, DPort: 8080}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Hash()
	}
}

func BenchmarkBuildVXLANPacket(b *testing.B) {
	bld := NewBuilder(512)
	spec := sampleSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = BuildVXLANPacket(bld, spec)
	}
}

func BenchmarkMetaAppendStrip(b *testing.B) {
	pkt := make([]byte, 256, 256+MetaLen)
	m := Meta{PSN: 100, OrdQ: 1, PodID: 2, IngressNS: 42}
	var out Meta
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tagged := AppendMeta(pkt, &m)
		if _, err := StripMeta(tagged, &out); err != nil {
			b.Fatal(err)
		}
	}
}
