package packet

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf, 0)

	b := NewBuilder(512)
	frames := [][]byte{
		append([]byte(nil), BuildVXLANPacket(b, sampleSpec())...),
	}
	b2 := NewBuilder(128)
	b2.AddEthernet(&Ethernet{EtherType: EtherTypeARP})
	b2.AddBytes([]byte{1, 2, 3, 4})
	frames = append(frames, append([]byte(nil), b2.Bytes()...))

	for i, f := range frames {
		ts := time.Duration(i+1) * 1500 * time.Nanosecond
		if err := w.WritePacket(ts, f); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 2 {
		t.Fatalf("count = %d", w.Count())
	}

	r, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d packets", len(got))
	}
	for i := range frames {
		if !bytes.Equal(got[i].Data, frames[i]) {
			t.Fatalf("frame %d corrupted", i)
		}
		if got[i].TS != time.Duration(i+1)*1500*time.Nanosecond {
			t.Fatalf("frame %d ts = %v", i, got[i].TS)
		}
		if got[i].OrigLen != len(frames[i]) {
			t.Fatalf("frame %d origlen = %d", i, got[i].OrigLen)
		}
	}
	// Re-parse the first frame: it must still be a valid VXLAN packet.
	var p Parsed
	if err := Parse(got[0].Data, &p); err != nil {
		t.Fatal(err)
	}
	if p.VNI() != 12345 {
		t.Fatalf("VNI after pcap round trip = %d", p.VNI())
	}
}

func TestPcapSnaplenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf, 32)
	frame := make([]byte, 100)
	for i := range frame {
		frame[i] = byte(i)
	}
	if err := w.WritePacket(time.Second, frame); err != nil {
		t.Fatal(err)
	}
	r, _ := NewPcapReader(&buf)
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 32 || p.OrigLen != 100 {
		t.Fatalf("caplen=%d origlen=%d", len(p.Data), p.OrigLen)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestPcapEmptyWriterProducesNothing(t *testing.T) {
	var buf bytes.Buffer
	NewPcapWriter(&buf, 0)
	if buf.Len() != 0 {
		t.Fatal("header written before first packet")
	}
}

func TestPcapReaderRejectsJunk(t *testing.T) {
	if _, err := NewPcapReader(bytes.NewReader(make([]byte, 10))); err == nil {
		t.Fatal("short header accepted")
	}
	junk := make([]byte, 24)
	if _, err := NewPcapReader(bytes.NewReader(junk)); err != ErrBadPcap {
		t.Fatalf("bad magic: %v", err)
	}
	// Valid header but wrong link type.
	var buf bytes.Buffer
	w := NewPcapWriter(&buf, 0)
	w.WritePacket(0, []byte{1})
	raw := buf.Bytes()
	binary.LittleEndian.PutUint32(raw[20:24], 101) // DLT_RAW
	if _, err := NewPcapReader(bytes.NewReader(raw)); err == nil {
		t.Fatal("wrong link type accepted")
	}
}

func TestPcapTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf, 0)
	w.WritePacket(0, make([]byte, 64))
	raw := buf.Bytes()
	// Cut mid-record.
	r, err := NewPcapReader(bytes.NewReader(raw[:len(raw)-10]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != ErrBadPcap {
		t.Fatalf("truncated record: %v", err)
	}
}

func TestPcapMicrosecondVariant(t *testing.T) {
	// Hand-build a microsecond-magic capture.
	var buf bytes.Buffer
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 0xa1b2c3d4)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], 1)   // 1s
	binary.LittleEndian.PutUint32(rec[4:8], 500) // 500µs
	binary.LittleEndian.PutUint32(rec[8:12], 2)
	binary.LittleEndian.PutUint32(rec[12:16], 2)
	buf.Write(rec[:])
	buf.Write([]byte{0xaa, 0xbb})

	r, err := NewPcapReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := time.Second + 500*time.Microsecond
	if p.TS != want {
		t.Fatalf("ts = %v, want %v", p.TS, want)
	}
}
