package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// pcap support: the workload generators build real wire bytes, so traces
// of simulated traffic can be captured and inspected with standard tools
// (tcpdump -r, Wireshark). The format is classic libpcap (not pcapng):
// a 24-byte global header followed by 16-byte per-packet records.

const (
	pcapMagic      = 0xa1b2c3d4 // microsecond timestamps, native order
	pcapMagicNanos = 0xa1b23c4d // nanosecond timestamps
	pcapVersionMaj = 2
	pcapVersionMin = 4
	// LinkTypeEthernet is the DLT for Ethernet frames.
	LinkTypeEthernet = 1
)

// ErrBadPcap reports a malformed capture file.
var ErrBadPcap = errors.New("packet: malformed pcap")

// PcapWriter writes a libpcap capture with nanosecond timestamps.
type PcapWriter struct {
	w       io.Writer
	snaplen uint32
	wrote   bool
	n       int
}

// NewPcapWriter creates a writer; the header is emitted lazily on the
// first packet. snaplen <= 0 defaults to 65535.
func NewPcapWriter(w io.Writer, snaplen int) *PcapWriter {
	if snaplen <= 0 {
		snaplen = 65535
	}
	return &PcapWriter{w: w, snaplen: uint32(snaplen)}
}

func (pw *PcapWriter) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicNanos)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMaj)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMin)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:20], pw.snaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	_, err := pw.w.Write(hdr[:])
	return err
}

// WritePacket appends one frame captured at ts (virtual or wall time).
func (pw *PcapWriter) WritePacket(ts time.Duration, frame []byte) error {
	if !pw.wrote {
		if err := pw.writeHeader(); err != nil {
			return err
		}
		pw.wrote = true
	}
	capLen := uint32(len(frame))
	if capLen > pw.snaplen {
		capLen = pw.snaplen
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts/time.Second))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts%time.Second))
	binary.LittleEndian.PutUint32(rec[8:12], capLen)
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(frame[:capLen])
	if err == nil {
		pw.n++
	}
	return err
}

// Count returns the number of packets written.
func (pw *PcapWriter) Count() int { return pw.n }

// PcapPacket is one record read back from a capture.
type PcapPacket struct {
	TS      time.Duration
	Data    []byte
	OrigLen int
}

// PcapReader reads classic libpcap files (micro- or nanosecond variants,
// either byte order).
type PcapReader struct {
	r     io.Reader
	order binary.ByteOrder
	nanos bool
}

// NewPcapReader parses the global header.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("packet: pcap header: %w", err)
	}
	pr := &PcapReader{r: r}
	switch magic := binary.LittleEndian.Uint32(hdr[0:4]); magic {
	case pcapMagic:
		pr.order = binary.LittleEndian
	case pcapMagicNanos:
		pr.order = binary.LittleEndian
		pr.nanos = true
	default:
		switch binary.BigEndian.Uint32(hdr[0:4]) {
		case pcapMagic:
			pr.order = binary.BigEndian
		case pcapMagicNanos:
			pr.order = binary.BigEndian
			pr.nanos = true
		default:
			return nil, ErrBadPcap
		}
	}
	if pr.order.Uint32(hdr[20:24]) != LinkTypeEthernet {
		return nil, fmt.Errorf("packet: pcap link type %d unsupported", pr.order.Uint32(hdr[20:24]))
	}
	return pr, nil
}

// Next reads one packet; io.EOF at the end of the capture.
func (pr *PcapReader) Next() (PcapPacket, error) {
	var rec [16]byte
	if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return PcapPacket{}, ErrBadPcap
		}
		return PcapPacket{}, err
	}
	sec := pr.order.Uint32(rec[0:4])
	frac := pr.order.Uint32(rec[4:8])
	capLen := pr.order.Uint32(rec[8:12])
	origLen := pr.order.Uint32(rec[12:16])
	if capLen > 1<<24 {
		return PcapPacket{}, ErrBadPcap
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return PcapPacket{}, ErrBadPcap
	}
	ts := time.Duration(sec) * time.Second
	if pr.nanos {
		ts += time.Duration(frac)
	} else {
		ts += time.Duration(frac) * time.Microsecond
	}
	return PcapPacket{TS: ts, Data: data, OrigLen: int(origLen)}, nil
}

// ReadAll drains the capture.
func (pr *PcapReader) ReadAll() ([]PcapPacket, error) {
	var out []PcapPacket
	for {
		p, err := pr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
