package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// FiveTuple identifies a flow by (src, dst, proto, sport, dport). For
// non-TCP/UDP protocols the ports are zero.
type FiveTuple struct {
	Src, Dst     IPv4Addr
	Proto        IPProtocol
	SPort, DPort uint16
}

func (f FiveTuple) String() string {
	return fmt.Sprintf("%v:%d->%v:%d/%d", f.Src, f.SPort, f.Dst, f.DPort, f.Proto)
}

// Hash returns a 32-bit hash of the tuple (FNV-1a over the canonical
// 13-byte encoding). Both PLB order-queue selection and RSS indirection use
// this when Toeplitz hashing is not configured.
func (f FiveTuple) Hash() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime32
	}
	for _, b := range f.Src {
		mix(b)
	}
	for _, b := range f.Dst {
		mix(b)
	}
	mix(byte(f.Proto))
	mix(byte(f.SPort >> 8))
	mix(byte(f.SPort))
	mix(byte(f.DPort >> 8))
	mix(byte(f.DPort))
	// Murmur3-style finalizer: FNV-1a alone avalanches poorly in the low
	// bits for correlated inputs (sequential tenant addresses), which would
	// skew queue/bucket selection.
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// Reverse returns the tuple of the opposite direction.
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Src: f.Dst, Dst: f.Src, Proto: f.Proto, SPort: f.DPort, DPort: f.SPort}
}

// Layers records which headers a Parse call decoded, in order.
type Layers uint16

// Layer bits.
const (
	LayerEthernet Layers = 1 << iota
	LayerVLAN
	LayerIPv4
	LayerUDP
	LayerTCP
	LayerICMPv4
	LayerVXLAN
	LayerGeneve
	LayerInnerEthernet
	LayerInnerIPv4
	LayerInnerUDP
	LayerInnerTCP
)

// Parsed is the zero-alloc decode target for a full gateway packet stack:
// outer Ethernet [VLAN] IPv4 UDP VXLAN inner-Ethernet inner-IPv4 inner-L4,
// or a plain (non-encapsulated) stack. Reuse one Parsed per worker; Parse
// overwrites all fields it decodes and sets Decoded accordingly.
type Parsed struct {
	Decoded Layers

	Eth     Ethernet
	VLAN    VLAN
	IP      IPv4
	UDP     UDP
	TCP     TCP
	ICMP    ICMPv4
	VXLAN   VXLAN
	Geneve  Geneve
	InEth   Ethernet
	InIP    IPv4
	InUDP   UDP
	InTCP   TCP
	Payload []byte // innermost payload (sub-slice of input; do not retain)

	// HeaderLen is the number of bytes of the input consumed by all decoded
	// headers (i.e. offset of Payload). The header-payload split mode of the
	// basic pipeline cuts the packet here.
	HeaderLen int
}

// ErrUnsupported reports a protocol the gateway parser does not handle.
var ErrUnsupported = errors.New("packet: unsupported protocol")

// Parse decodes data into p. It decodes as deep as it recognizes the stack
// and returns an error only for truncated or malformed headers; unknown
// protocols simply terminate decoding with the remainder as Payload.
func Parse(data []byte, p *Parsed) error {
	p.Decoded = 0
	p.Payload = nil
	off := 0

	n, err := p.Eth.DecodeFromBytes(data)
	if err != nil {
		return err
	}
	off += n
	p.Decoded |= LayerEthernet
	et := p.Eth.EtherType

	if et == EtherTypeVLAN {
		n, err = p.VLAN.DecodeFromBytes(data[off:])
		if err != nil {
			return err
		}
		off += n
		p.Decoded |= LayerVLAN
		et = p.VLAN.EtherType
	}

	if et != EtherTypeIPv4 {
		p.Payload = data[off:]
		p.HeaderLen = off
		return nil
	}
	n, err = p.IP.DecodeFromBytes(data[off:])
	if err != nil {
		return err
	}
	off += n
	p.Decoded |= LayerIPv4

	switch p.IP.Protocol {
	case IPProtocolUDP:
		n, err = p.UDP.DecodeFromBytes(data[off:])
		if err != nil {
			return err
		}
		off += n
		p.Decoded |= LayerUDP
		if p.UDP.DstPort == VXLANPort {
			return p.parseVXLAN(data, off)
		}
		if p.UDP.DstPort == GenevePort {
			return p.parseGeneve(data, off)
		}
	case IPProtocolTCP:
		n, err = p.TCP.DecodeFromBytes(data[off:])
		if err != nil {
			return err
		}
		off += n
		p.Decoded |= LayerTCP
	case IPProtocolICMP:
		n, err = p.ICMP.DecodeFromBytes(data[off:])
		if err != nil {
			return err
		}
		off += n
		p.Decoded |= LayerICMPv4
	}
	p.Payload = data[off:]
	p.HeaderLen = off
	return nil
}

func (p *Parsed) parseVXLAN(data []byte, off int) error {
	n, err := p.VXLAN.DecodeFromBytes(data[off:])
	if err != nil {
		return err
	}
	off += n
	p.Decoded |= LayerVXLAN

	n, err = p.InEth.DecodeFromBytes(data[off:])
	if err != nil {
		return err
	}
	off += n
	p.Decoded |= LayerInnerEthernet

	if p.InEth.EtherType != EtherTypeIPv4 {
		p.Payload = data[off:]
		p.HeaderLen = off
		return nil
	}
	n, err = p.InIP.DecodeFromBytes(data[off:])
	if err != nil {
		return err
	}
	off += n
	p.Decoded |= LayerInnerIPv4

	switch p.InIP.Protocol {
	case IPProtocolUDP:
		n, err = p.InUDP.DecodeFromBytes(data[off:])
		if err != nil {
			return err
		}
		off += n
		p.Decoded |= LayerInnerUDP
	case IPProtocolTCP:
		n, err = p.InTCP.DecodeFromBytes(data[off:])
		if err != nil {
			return err
		}
		off += n
		p.Decoded |= LayerInnerTCP
	}
	p.Payload = data[off:]
	p.HeaderLen = off
	return nil
}

// parseGeneve decodes a Geneve header and its inner frame. Geneve may
// carry Ethernet or bare IPv4 depending on the protocol field.
func (p *Parsed) parseGeneve(data []byte, off int) error {
	n, err := p.Geneve.DecodeFromBytes(data[off:])
	if err != nil {
		return err
	}
	off += n
	p.Decoded |= LayerGeneve

	switch p.Geneve.Protocol {
	case EtherTypeIPv4:
		return p.parseInnerIPv4(data, off)
	case 0x6558: // transparent Ethernet bridging
		n, err = p.InEth.DecodeFromBytes(data[off:])
		if err != nil {
			return err
		}
		off += n
		p.Decoded |= LayerInnerEthernet
		if p.InEth.EtherType != EtherTypeIPv4 {
			p.Payload = data[off:]
			p.HeaderLen = off
			return nil
		}
		return p.parseInnerIPv4(data, off)
	default:
		p.Payload = data[off:]
		p.HeaderLen = off
		return nil
	}
}

// parseInnerIPv4 decodes the inner IPv4 header and L4.
func (p *Parsed) parseInnerIPv4(data []byte, off int) error {
	n, err := p.InIP.DecodeFromBytes(data[off:])
	if err != nil {
		return err
	}
	off += n
	p.Decoded |= LayerInnerIPv4
	switch p.InIP.Protocol {
	case IPProtocolUDP:
		n, err = p.InUDP.DecodeFromBytes(data[off:])
		if err != nil {
			return err
		}
		off += n
		p.Decoded |= LayerInnerUDP
	case IPProtocolTCP:
		n, err = p.InTCP.DecodeFromBytes(data[off:])
		if err != nil {
			return err
		}
		off += n
		p.Decoded |= LayerInnerTCP
	}
	p.Payload = data[off:]
	p.HeaderLen = off
	return nil
}

// OuterFlow returns the outer five-tuple of a parsed packet.
func (p *Parsed) OuterFlow() FiveTuple {
	f := FiveTuple{Src: p.IP.Src, Dst: p.IP.Dst, Proto: p.IP.Protocol}
	switch {
	case p.Decoded&LayerUDP != 0:
		f.SPort, f.DPort = p.UDP.SrcPort, p.UDP.DstPort
	case p.Decoded&LayerTCP != 0:
		f.SPort, f.DPort = p.TCP.SrcPort, p.TCP.DstPort
	}
	return f
}

// InnerFlow returns the inner (tenant) five-tuple of a VXLAN packet, or the
// outer flow for non-encapsulated packets.
func (p *Parsed) InnerFlow() FiveTuple {
	if p.Decoded&LayerInnerIPv4 == 0 {
		return p.OuterFlow()
	}
	f := FiveTuple{Src: p.InIP.Src, Dst: p.InIP.Dst, Proto: p.InIP.Protocol}
	switch {
	case p.Decoded&LayerInnerUDP != 0:
		f.SPort, f.DPort = p.InUDP.SrcPort, p.InUDP.DstPort
	case p.Decoded&LayerInnerTCP != 0:
		f.SPort, f.DPort = p.InTCP.SrcPort, p.InTCP.DstPort
	}
	return f
}

// VNI returns the tenant VNI from either encapsulation, or 0 for plain
// packets.
func (p *Parsed) VNI() uint32 {
	if p.Decoded&LayerVXLAN != 0 {
		return p.VXLAN.VNI
	}
	if p.Decoded&LayerGeneve != 0 {
		return p.Geneve.VNI
	}
	return 0
}

// Builder assembles packets back-to-front-free: headers are written in
// order into a reusable buffer, modeling the FPGA deparser. Grow-only; safe
// to reuse across packets via Reset.
type Builder struct {
	buf []byte
	off int
}

// NewBuilder returns a builder with the given initial capacity.
func NewBuilder(capacity int) *Builder {
	return &Builder{buf: make([]byte, 0, capacity)}
}

// Reset clears the builder for reuse.
func (b *Builder) Reset() {
	b.buf = b.buf[:0]
	b.off = 0
}

// Bytes returns the assembled packet. The slice is valid until Reset.
func (b *Builder) Bytes() []byte { return b.buf }

// grow extends the buffer by n bytes and returns the writable region.
func (b *Builder) grow(n int) []byte {
	start := len(b.buf)
	for cap(b.buf) < start+n {
		b.buf = append(b.buf[:cap(b.buf)], 0)
	}
	b.buf = b.buf[:start+n]
	return b.buf[start:]
}

// AddEthernet appends an Ethernet header.
func (b *Builder) AddEthernet(e *Ethernet) {
	region := b.grow(EthernetLen)
	e.SerializeTo(region)
}

// AddVLAN appends an 802.1Q tag.
func (b *Builder) AddVLAN(v *VLAN) {
	region := b.grow(VLANLen)
	v.SerializeTo(region)
}

// AddIPv4 appends an IPv4 header whose Length covers payloadLen bytes of
// subsequent content.
func (b *Builder) AddIPv4(ip *IPv4, payloadLen int) {
	hdrLen := IPv4MinLen + len(ip.Options)
	ip.Length = uint16(hdrLen + payloadLen)
	region := b.grow(hdrLen)
	ip.SerializeTo(region)
}

// AddUDP appends a UDP header and payload with a computed checksum.
func (b *Builder) AddUDP(u *UDP, src, dst IPv4Addr, payload []byte) {
	region := b.grow(UDPLen + len(payload))
	u.SerializeWithChecksum(region, src, dst, payload)
}

// AddUDPHeader appends only a UDP header (no checksum; payload appended
// separately, e.g. VXLAN inner frames).
func (b *Builder) AddUDPHeader(u *UDP, totalPayloadLen int) {
	u.Length = uint16(UDPLen + totalPayloadLen)
	u.Checksum = 0 // RFC 7348 recommends zero UDP checksum for VXLAN
	region := b.grow(UDPLen)
	u.SerializeTo(region)
}

// AddTCP appends a TCP header and payload with a computed checksum.
func (b *Builder) AddTCP(t *TCP, src, dst IPv4Addr, payload []byte) {
	region := b.grow(t.HeaderLen() + len(payload))
	t.SerializeWithChecksum(region, src, dst, payload)
}

// AddVXLAN appends a VXLAN header.
func (b *Builder) AddVXLAN(v *VXLAN) {
	region := b.grow(VXLANLen)
	v.SerializeTo(region)
}

// AddBytes appends raw bytes (e.g. an opaque payload).
func (b *Builder) AddBytes(p []byte) {
	region := b.grow(len(p))
	copy(region, p)
}

// BuildVXLANPacket assembles a complete gateway-style packet:
// Ethernet/IPv4/UDP(VXLAN)/VXLAN/innerEthernet/innerIPv4/innerL4/payload.
// It is the reference constructor used by workload generators and tests.
func BuildVXLANPacket(b *Builder, spec *VXLANSpec) []byte {
	b.Reset()

	// Inner frame first (sizes needed for outer lengths).
	inner := innerFrame(spec)

	outerUDP := UDP{SrcPort: spec.OuterSrcPort, DstPort: VXLANPort}
	ip := IPv4{
		TTL:      64,
		Protocol: IPProtocolUDP,
		Src:      spec.OuterSrc,
		Dst:      spec.OuterDst,
	}
	b.AddEthernet(&Ethernet{Dst: spec.OuterDstMAC, Src: spec.OuterSrcMAC, EtherType: EtherTypeIPv4})
	b.AddIPv4(&ip, UDPLen+VXLANLen+len(inner))
	b.AddUDPHeader(&outerUDP, VXLANLen+len(inner))
	b.AddVXLAN(&VXLAN{VNI: spec.VNI})
	b.AddBytes(inner)
	return b.Bytes()
}

// VXLANSpec describes a VXLAN-encapsulated tenant packet.
type VXLANSpec struct {
	OuterSrcMAC, OuterDstMAC MAC
	OuterSrc, OuterDst       IPv4Addr
	OuterSrcPort             uint16
	VNI                      uint32

	InnerSrcMAC, InnerDstMAC MAC
	InnerSrc, InnerDst       IPv4Addr
	InnerProto               IPProtocol
	InnerSPort, InnerDPort   uint16
	PayloadLen               int
	PayloadByte              byte
}

func innerFrame(spec *VXLANSpec) []byte {
	ib := NewBuilder(EthernetLen + IPv4MinLen + TCPMinLen + spec.PayloadLen)
	payload := make([]byte, spec.PayloadLen)
	for i := range payload {
		payload[i] = spec.PayloadByte
	}
	ib.AddEthernet(&Ethernet{Dst: spec.InnerDstMAC, Src: spec.InnerSrcMAC, EtherType: EtherTypeIPv4})
	switch spec.InnerProto {
	case IPProtocolUDP:
		ip := IPv4{TTL: 64, Protocol: IPProtocolUDP, Src: spec.InnerSrc, Dst: spec.InnerDst}
		ib.AddIPv4(&ip, UDPLen+len(payload))
		ib.AddUDP(&UDP{SrcPort: spec.InnerSPort, DstPort: spec.InnerDPort}, spec.InnerSrc, spec.InnerDst, payload)
	case IPProtocolTCP:
		ip := IPv4{TTL: 64, Protocol: IPProtocolTCP, Src: spec.InnerSrc, Dst: spec.InnerDst}
		ib.AddIPv4(&ip, TCPMinLen+len(payload))
		ib.AddTCP(&TCP{SrcPort: spec.InnerSPort, DstPort: spec.InnerDPort, Flags: TCPAck, Window: 65535}, spec.InnerSrc, spec.InnerDst, payload)
	default:
		ip := IPv4{TTL: 64, Protocol: spec.InnerProto, Src: spec.InnerSrc, Dst: spec.InnerDst}
		ib.AddIPv4(&ip, len(payload))
		ib.AddBytes(payload)
	}
	return ib.Bytes()
}

// VerifyIPv4Checksum reports whether the IPv4 header bytes carry a valid
// checksum.
func VerifyIPv4Checksum(hdr []byte) bool {
	if len(hdr) < IPv4MinLen {
		return false
	}
	return Checksum(hdr) == 0
}

// Uint32ToBytes is a helper for table keys.
func Uint32ToBytes(v uint32) [4]byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b
}

// ExtractFlow parses a wire frame and returns its tenant flow: the inner
// five-tuple and VNI for VXLAN/Geneve frames, the outer tuple (VNI 0) for
// plain IPv4. ok is false when the frame does not decode to an IPv4 packet
// at all — the shared gate the pcap replay and trace-import paths use to
// decide whether a captured frame is simulation input.
func ExtractFlow(frame []byte, p *Parsed) (tuple FiveTuple, vni uint32, ok bool) {
	if err := Parse(frame, p); err != nil || p.Decoded&LayerIPv4 == 0 {
		return FiveTuple{}, 0, false
	}
	return p.InnerFlow(), p.VNI(), true
}
