// Package errs holds the sentinel errors shared across the Albatross
// packages and re-exported by the public facade. Internal constructors wrap
// these with %w so callers can classify failures with errors.Is without
// string-matching, and so the facade's documented error contract
// (ErrBadConfig, ErrPodExhausted, ...) holds no matter which internal layer
// detected the problem.
package errs

import "errors"

var (
	// BadConfig reports an invalid configuration value passed to a
	// constructor. No constructor panics on bad input; it returns an error
	// wrapping this sentinel.
	BadConfig = errors.New("invalid configuration")

	// Exhausted reports that a resource pool (cores, VFs, reorder queues,
	// NAT bindings, ...) cannot satisfy an allocation.
	Exhausted = errors.New("resources exhausted")

	// Closed reports an operation on a node or pod whose lifecycle has
	// ended (Node.Close / PodRuntime.Stop).
	Closed = errors.New("closed")

	// BadState reports an operation that is not legal in the component's
	// current lifecycle state (e.g. restarting a pod that never crashed).
	BadState = errors.New("invalid state for operation")
)
