package metrics

import (
	"encoding/json"
	"strings"
	"testing"

	"albatross/internal/sim"
	"albatross/internal/stats"
)

// buildTimelineFixture registers one counter, one gauge, and one labeled
// histogram over mutable state, then builds a 10ms timeline over them.
func buildTimelineFixture() (tl *Timeline, count *uint64, level *float64, h *stats.Histogram) {
	reg := New()
	count = new(uint64)
	level = new(float64)
	h = stats.NewHistogram(5)
	c := count
	g := level
	reg.Counter("pkts_total", "packets", func() uint64 { return *c })
	reg.Gauge("queue_depth", "depth", func() float64 { return *g })
	reg.Histogram("lat_ns", "latency", h, L("node", "gw-0"))
	tl = NewTimeline(reg, 10*sim.Millisecond)
	return tl, count, level, h
}

func TestTimelineColumnsAndSampling(t *testing.T) {
	tl, count, level, h := buildTimelineFixture()
	wantKeys := []string{
		"lat_ns{node=\"gw-0\"}:count",
		"lat_ns{node=\"gw-0\"}:p50",
		"lat_ns{node=\"gw-0\"}:p99",
		"pkts_total",
		"queue_depth",
	}
	keys := tl.Keys()
	if len(keys) != len(wantKeys) {
		t.Fatalf("keys = %v, want %v", keys, wantKeys)
	}
	for i := range keys {
		if keys[i] != wantKeys[i] {
			t.Fatalf("keys[%d] = %q, want %q", i, keys[i], wantKeys[i])
		}
	}

	// Pre-Start activity becomes the baseline, not the first tick's delta.
	*count = 100
	h.Record(500)
	tl.Start(0)
	if got := tl.Next(); got != sim.Time(10*sim.Millisecond) {
		t.Fatalf("Next = %d, want 10ms", got)
	}

	*count = 130
	*level = 2.5
	h.Record(1000)
	h.Record(2000)
	tl.Sample(tl.Next())

	*count = 130 // idle tick
	*level = 0
	tl.Sample(tl.Next())

	if tl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tl.Len())
	}
	check := func(key string, want ...float64) {
		t.Helper()
		vals, ok := tl.Values(key)
		if !ok {
			t.Fatalf("missing column %q", key)
		}
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("%s[%d] = %v, want %v", key, i, vals[i], want[i])
			}
		}
	}
	check("pkts_total", 30, 0)   // deltas, baseline 100 excluded
	check("queue_depth", 2.5, 0) // point values
	check("lat_ns{node=\"gw-0\"}:count", 2, 0)
	if p50, _ := tl.Values("lat_ns{node=\"gw-0\"}:p50"); p50[0] < 900 || p50[0] > 1100 {
		t.Fatalf("tick p50 = %v, want ~1000 (baseline sample must not leak)", p50[0])
	}
	if _, ok := tl.Values("nope"); ok {
		t.Fatal("Values on unknown key reported ok")
	}
}

func TestTimelineRatioColumn(t *testing.T) {
	reg := New()
	var sprayed, delivered uint64
	reg.Counter("sprayed", "s", func() uint64 { return sprayed })
	reg.Counter("delivered", "d", func() uint64 { return delivered })
	tl := NewTimeline(reg, sim.Millisecond)
	tl.AddRatio("availability", "delivered", "sprayed", 1)
	tl.Start(0)

	sprayed, delivered = 100, 80
	tl.Sample(tl.Next())
	tl.Sample(tl.Next()) // idle: zero denominator

	av, _ := tl.Values("availability")
	if av[0] != 0.8 {
		t.Fatalf("availability[0] = %v, want 0.8", av[0])
	}
	if av[1] != 1 {
		t.Fatalf("idle-tick availability = %v, want fallback 1", av[1])
	}
}

func TestTimelineCSVAndJSON(t *testing.T) {
	tl, count, _, h := buildTimelineFixture()
	tl.Start(0)
	*count = 7
	h.Record(100)
	tl.Sample(tl.Next())

	csv := tl.CSV()
	lines := strings.Split(strings.TrimSuffix(csv, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 tick:\n%s", len(lines), csv)
	}
	// Label signatures contain quotes and commas: header cells must be
	// RFC 4180-quoted so a CSV reader recovers the exact key.
	if !strings.Contains(lines[0], `"lat_ns{node=""gw-0""}:count"`) {
		t.Fatalf("histogram column header not CSV-quoted: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10,") {
		t.Fatalf("tick row should start at t_ms=10: %s", lines[1])
	}
	if !strings.Contains(lines[1], ",7,") && !strings.HasSuffix(lines[1], ",7") {
		t.Fatalf("counter delta 7 missing from row: %s", lines[1])
	}

	blob, err := tl.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded struct {
		EveryMS float64   `json:"every_ms"`
		TicksMS []float64 `json:"ticks_ms"`
		Series  []struct {
			Key    string    `json:"key"`
			Values []float64 `json:"values"`
		} `json:"series"`
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if decoded.EveryMS != 10 || len(decoded.TicksMS) != 1 || decoded.TicksMS[0] != 10 {
		t.Fatalf("JSON axis wrong: every=%v ticks=%v", decoded.EveryMS, decoded.TicksMS)
	}
	if len(decoded.Series) != len(tl.Keys()) {
		t.Fatalf("JSON series count %d != %d", len(decoded.Series), len(tl.Keys()))
	}

	sum1, n1 := tl.Checksum()
	sum2, n2 := tl.Checksum()
	if sum1 != sum2 || n1 != n2 || n1 != len(csv) {
		t.Fatalf("Checksum not stable: (%x,%d) vs (%x,%d), csv len %d", sum1, n1, sum2, n2, len(csv))
	}
}

func TestTimelineMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	reg := New()
	reg.Counter("c", "c", func() uint64 { return 0 })

	expectPanic("zero period", func() { NewTimeline(reg, 0) })

	tl := NewTimeline(reg, sim.Millisecond)
	expectPanic("Next before Start", func() { tl.Next() })
	expectPanic("Sample before Start", func() { tl.Sample(0) })
	expectPanic("unknown ratio operand", func() { tl.AddRatio("r", "c", "nope", 0) })
	expectPanic("duplicate column", func() { tl.AddRatio("c", "c", "c", 0) })

	tl.Start(0)
	expectPanic("double Start", func() { tl.Start(0) })
	expectPanic("AddRatio after Start", func() { tl.AddRatio("r2", "c", "c", 0) })
	expectPanic("off-tick Sample", func() { tl.Sample(sim.Time(1)) })
}
