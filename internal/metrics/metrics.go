// Package metrics is Albatross's metrics registry: named counters, gauges,
// and histograms registered per pod and rolled up across nodes and
// clusters, exported as Prometheus text exposition or JSON snapshots.
//
// The registry is closure-backed: a metric registration binds a name, help
// text, and label set to a read function over the simulator's own state
// (pod counters, stage histograms, PLB stats). Nothing is double-counted —
// the simulation's counters stay the single source of truth and the
// registry reads them at snapshot time.
//
// Determinism contract: Snapshot output is fully ordered — series sort by
// (name, label signature), labels render sorted by key — so two snapshots
// of identical simulator state serialize byte-identically, at any host
// parallelism. This is what `make metrics-check` enforces.
package metrics

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"albatross/internal/stats"
)

// Kind is a metric family's type.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// promKind maps to the Prometheus TYPE line. Histograms export as
// summaries (precomputed quantiles), the natural fit for log-linear
// histograms read at snapshot time.
func (k Kind) promKind() string {
	if k == KindHistogram {
		return "summary"
	}
	return k.String()
}

// Label is one name=value pair attached to a series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// series is one registered time series.
type series struct {
	labels []Label
	sig    string // canonical label signature, for ordering and dedup

	// Exactly one of these is set, per the family's kind.
	counter func() uint64
	gauge   func() float64
	hist    *stats.Histogram
}

// family groups series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	series []*series
}

// Registry holds metric families. The zero value is not usable; call New.
// Registration panics on invalid names, kind/help conflicts, and duplicate
// label sets — these are programming errors, caught at wiring time.
type Registry struct {
	families map[string]*family
}

// New creates an empty registry.
func New() *Registry { return &Registry{families: make(map[string]*family)} }

// signature renders labels canonically (sorted by key) for ordering.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// sortLabels returns a sorted copy of the label set.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (r *Registry) register(name, help string, kind Kind, s *series) {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range s.labels {
		if !nameRe.MatchString(l.Key) {
			panic(fmt.Sprintf("metrics: invalid label key %q on %q", l.Key, name))
		}
	}
	s.labels = sortLabels(s.labels)
	s.sig = signature(s.labels)
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %q registered as both %v and %v", name, f.kind, kind))
		}
		if f.help != help {
			panic(fmt.Sprintf("metrics: %q registered with conflicting help", name))
		}
	}
	for _, prev := range f.series {
		if prev.sig == s.sig {
			panic(fmt.Sprintf("metrics: duplicate series %s{%s}", name, s.sig))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers a monotonically increasing series read from fn.
func (r *Registry) Counter(name, help string, fn func() uint64, labels ...Label) {
	if fn == nil {
		panic(fmt.Sprintf("metrics: nil read function for counter %q", name))
	}
	r.register(name, help, KindCounter, &series{labels: labels, counter: fn})
}

// Gauge registers a point-in-time series read from fn.
func (r *Registry) Gauge(name, help string, fn func() float64, labels ...Label) {
	if fn == nil {
		panic(fmt.Sprintf("metrics: nil read function for gauge %q", name))
	}
	r.register(name, help, KindGauge, &series{labels: labels, gauge: fn})
}

// Histogram registers a distribution series backed by a stats.Histogram.
// The histogram is read (not copied) at snapshot time.
func (r *Registry) Histogram(name, help string, h *stats.Histogram, labels ...Label) {
	if h == nil {
		panic(fmt.Sprintf("metrics: nil histogram for %q", name))
	}
	r.register(name, help, KindHistogram, &series{labels: labels, hist: h})
}

// Families returns the number of registered metric families.
func (r *Registry) Families() int { return len(r.families) }
