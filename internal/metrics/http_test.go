package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerServesPrometheusText pins the /metrics surface: GET returns
// the registry's deterministic text exposition with the v0.0.4 content
// type, HEAD returns headers only, and writes are rejected.
func TestHandlerServesPrometheusText(t *testing.T) {
	reg := New()
	var hits uint64 = 41
	reg.Counter("albatross_test_hits_total", "Test counter.", func() uint64 { return hits })

	h := Handler(reg.Snapshot)
	hits = 42 // the handler must snapshot at request time, not at build time

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("content type %q, want %q", ct, PrometheusContentType)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "albatross_test_hits_total 42") {
		t.Fatalf("body missing live counter value:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE albatross_test_hits_total counter") {
		t.Fatalf("body missing TYPE line:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("HEAD", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("HEAD /metrics: status %d, body %d bytes", rec.Code, rec.Body.Len())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics: status %d, want 405", rec.Code)
	}
}

// TestJSONHandler pins /metrics.json: the snapshot JSON form with an
// explicit JSON content type and the same method gate as /metrics.
func TestJSONHandler(t *testing.T) {
	reg := New()
	reg.Gauge("albatross_test_depth", "Test gauge.", func() float64 { return 3.5 })
	h := JSONHandler(reg.Snapshot)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics.json: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != JSONContentType {
		t.Fatalf("content type %q, want %q", ct, JSONContentType)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"albatross_test_depth"`) || !strings.Contains(body, "3.5") {
		t.Fatalf("JSON body missing gauge:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("PUT", "/metrics.json", nil))
	if rec.Code != 405 {
		t.Fatalf("PUT /metrics.json: status %d, want 405", rec.Code)
	}
}

// TestSeriesHandlers pins /series and /series.json: CSV and JSON timeline
// exports with explicit content types, and 404 when sampling is off.
func TestSeriesHandlers(t *testing.T) {
	reg := New()
	var pkts uint64
	reg.Counter("albatross_test_pkts_total", "Test counter.", func() uint64 { return pkts })
	tl := NewTimeline(reg, 10_000_000) // 10ms in ns
	tl.Start(0)
	pkts = 5
	tl.Sample(tl.Next())

	csvH := SeriesHandler(func() *Timeline { return tl })
	rec := httptest.NewRecorder()
	csvH.ServeHTTP(rec, httptest.NewRequest("GET", "/series", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /series: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != CSVContentType {
		t.Fatalf("content type %q, want %q", ct, CSVContentType)
	}
	if got := rec.Body.String(); got != tl.CSV() {
		t.Fatalf("/series body != Timeline.CSV():\n%s", got)
	}

	jsonH := SeriesJSONHandler(func() *Timeline { return tl })
	rec = httptest.NewRecorder()
	jsonH.ServeHTTP(rec, httptest.NewRequest("GET", "/series.json", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /series.json: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != JSONContentType {
		t.Fatalf("content type %q, want %q", ct, JSONContentType)
	}
	if !strings.Contains(rec.Body.String(), `"albatross_test_pkts_total"`) {
		t.Fatalf("/series.json missing column key:\n%s", rec.Body.String())
	}

	// Sampling disabled: 404, not an empty document.
	rec = httptest.NewRecorder()
	SeriesHandler(func() *Timeline { return nil }).
		ServeHTTP(rec, httptest.NewRequest("GET", "/series", nil))
	if rec.Code != 404 {
		t.Fatalf("GET /series with sampling off: status %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	SeriesJSONHandler(func() *Timeline { return nil }).
		ServeHTTP(rec, httptest.NewRequest("GET", "/series.json", nil))
	if rec.Code != 404 {
		t.Fatalf("GET /series.json with sampling off: status %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	csvH.ServeHTTP(rec, httptest.NewRequest("POST", "/series", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /series: status %d, want 405", rec.Code)
	}
}
