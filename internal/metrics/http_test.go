package metrics

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerServesPrometheusText pins the /metrics surface: GET returns
// the registry's deterministic text exposition with the v0.0.4 content
// type, HEAD returns headers only, and writes are rejected.
func TestHandlerServesPrometheusText(t *testing.T) {
	reg := New()
	var hits uint64 = 41
	reg.Counter("albatross_test_hits_total", "Test counter.", func() uint64 { return hits })

	h := Handler(reg.Snapshot)
	hits = 42 // the handler must snapshot at request time, not at build time

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("content type %q, want %q", ct, PrometheusContentType)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "albatross_test_hits_total 42") {
		t.Fatalf("body missing live counter value:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE albatross_test_hits_total counter") {
		t.Fatalf("body missing TYPE line:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("HEAD", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("HEAD /metrics: status %d, body %d bytes", rec.Code, rec.Body.Len())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics: status %d, want 405", rec.Code)
	}
}
