package metrics

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"albatross/internal/sim"
)

// Timeline samples a Registry at a fixed virtual-time period into a
// columnar store: one row per tick, one column per registered series
// (histograms contribute count/p50/p99 columns; see NewTimeline). Counters
// record per-tick deltas — the rate shape — while gauges record points.
//
// Determinism contract: the caller must invoke Sample only when the
// simulation is quiescent at exactly the tick time (the cluster layer
// slices RunUntil at tick boundaries, which under ShardedEngine forces an
// epoch barrier at every tick). Under that discipline two runs of the same
// seed produce byte-identical CSV/JSON exports at any shard count and any
// dispatch burst size, which `make series-check` enforces.
type Timeline struct {
	every    sim.Duration
	started  bool
	next     sim.Time
	ticks    []sim.Time
	cols     []*column
	byKey    map[string]*column
	samplers []sampler
	ratios   []ratioSampler
}

// column is one series' value per tick, columnar for cheap CSV export.
type column struct {
	key  string
	vals []float64
}

// sampler appends one tick's value(s) to its column(s). start() records
// the pre-run baseline so the first tick's deltas are correct.
type sampler interface {
	start()
	sample()
}

type counterSampler struct {
	col  *column
	read func() uint64
	prev uint64
}

func (s *counterSampler) start() { s.prev = s.read() }
func (s *counterSampler) sample() {
	cur := s.read()
	s.col.vals = append(s.col.vals, float64(cur-s.prev))
	s.prev = cur
}

type gaugeSampler struct {
	col  *column
	read func() float64
}

func (s *gaugeSampler) start() {}
func (s *gaugeSampler) sample() {
	s.col.vals = append(s.col.vals, s.read())
}

// histSampler tracks one histogram with a single prev-bucket buffer,
// emitting per-tick sample count and per-tick p50/p99 (quantiles over only
// the samples recorded during the tick, via the bucket-delta walk).
type histSampler struct {
	count, p50, p99 *column
	hist            histReader
	prev            []uint64
}

// histReader is the slice of stats.Histogram the sampler needs; an
// interface so tests can stub it.
type histReader interface {
	BucketSnapshot(dst []uint64) []uint64
	DeltaCount(prev []uint64) uint64
	DeltaQuantile(q float64, prev []uint64) int64
}

func (s *histSampler) start() { s.prev = s.hist.BucketSnapshot(s.prev) }
func (s *histSampler) sample() {
	s.count.vals = append(s.count.vals, float64(s.hist.DeltaCount(s.prev)))
	s.p50.vals = append(s.p50.vals, float64(s.hist.DeltaQuantile(0.5, s.prev)))
	s.p99.vals = append(s.p99.vals, float64(s.hist.DeltaQuantile(0.99, s.prev)))
	s.prev = s.hist.BucketSnapshot(s.prev)
}

// ratioSampler derives num/den per tick after the base samplers run.
// A zero-denominator tick records fallback (e.g. availability 1 when no
// packets were sprayed: nothing offered, nothing lost).
type ratioSampler struct {
	col      *column
	num, den *column
	fallback float64
}

func (s *ratioSampler) sample() {
	i := len(s.col.vals)
	d := s.den.vals[i]
	if d == 0 {
		s.col.vals = append(s.col.vals, s.fallback)
		return
	}
	s.col.vals = append(s.col.vals, s.num.vals[i]/d)
}

// NewTimeline builds a timeline over every series currently registered in
// reg. Column keys are the metric name, suffixed with {label-signature}
// when the series has labels, and :count/:p50/:p99 for histogram columns.
// Columns are ordered by (family name, label signature) — the Snapshot
// order — so exports are deterministic. every must be positive.
func NewTimeline(reg *Registry, every sim.Duration) *Timeline {
	if every <= 0 {
		panic(fmt.Sprintf("metrics: timeline period %d must be positive", every))
	}
	tl := &Timeline{every: every, byKey: make(map[string]*column)}
	names := make([]string, 0, len(reg.families))
	for name := range reg.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := reg.families[name]
		ordered := append([]*series(nil), f.series...)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].sig < ordered[j].sig })
		for _, s := range ordered {
			key := name
			if s.sig != "" {
				key = name + "{" + s.sig + "}"
			}
			switch f.kind {
			case KindCounter:
				tl.samplers = append(tl.samplers,
					&counterSampler{col: tl.addColumn(key), read: s.counter})
			case KindGauge:
				tl.samplers = append(tl.samplers,
					&gaugeSampler{col: tl.addColumn(key), read: s.gauge})
			case KindHistogram:
				tl.samplers = append(tl.samplers, &histSampler{
					count: tl.addColumn(key + ":count"),
					p50:   tl.addColumn(key + ":p50"),
					p99:   tl.addColumn(key + ":p99"),
					hist:  s.hist,
				})
			}
		}
	}
	return tl
}

func (tl *Timeline) addColumn(key string) *column {
	if tl.byKey[key] != nil {
		panic(fmt.Sprintf("metrics: duplicate timeline column %q", key))
	}
	c := &column{key: key}
	tl.cols = append(tl.cols, c)
	tl.byKey[key] = c
	return c
}

// AddRatio appends a derived column key = num/den computed per tick, with
// fallback recorded on zero-denominator ticks. Both operands must already
// be columns (derived columns may chain onto earlier derived columns).
// Must be called before Start.
func (tl *Timeline) AddRatio(key, numKey, denKey string, fallback float64) {
	if tl.started {
		panic("metrics: AddRatio after Start")
	}
	num, den := tl.byKey[numKey], tl.byKey[denKey]
	if num == nil || den == nil {
		panic(fmt.Sprintf("metrics: ratio %q references unknown column (%q/%q)", key, numKey, denKey))
	}
	tl.ratios = append(tl.ratios, ratioSampler{col: tl.addColumn(key), num: num, den: den, fallback: fallback})
}

// Start freezes the column set, records counter/histogram baselines at the
// current virtual time, and arms the first tick at now+every.
func (tl *Timeline) Start(now sim.Time) {
	if tl.started {
		panic("metrics: timeline started twice")
	}
	tl.started = true
	tl.next = now.Add(tl.every)
	for _, s := range tl.samplers {
		s.start()
	}
}

// Next returns the virtual time of the next pending tick. Only valid after
// Start.
func (tl *Timeline) Next() sim.Time {
	if !tl.started {
		panic("metrics: Next before Start")
	}
	return tl.next
}

// Sample records one tick. now must equal Next(): the cluster layer
// advances the engines to exactly the tick boundary before calling — any
// drift would silently skew every series, so it is a panic, not a skip.
func (tl *Timeline) Sample(now sim.Time) {
	if !tl.started {
		panic("metrics: Sample before Start")
	}
	if now != tl.next {
		panic(fmt.Sprintf("metrics: Sample at t=%d, expected tick t=%d", now, tl.next))
	}
	tl.ticks = append(tl.ticks, now)
	for _, s := range tl.samplers {
		s.sample()
	}
	for i := range tl.ratios {
		tl.ratios[i].sample()
	}
	tl.next = tl.next.Add(tl.every)
}

// Every returns the sampling period.
func (tl *Timeline) Every() sim.Duration { return tl.every }

// Len returns the number of recorded ticks.
func (tl *Timeline) Len() int { return len(tl.ticks) }

// Ticks returns the recorded tick times (shared slice; do not mutate).
func (tl *Timeline) Ticks() []sim.Time { return tl.ticks }

// Keys returns the column keys in export order.
func (tl *Timeline) Keys() []string {
	out := make([]string, len(tl.cols))
	for i, c := range tl.cols {
		out[i] = c.key
	}
	return out
}

// Values returns the per-tick values of one column and whether the key
// exists (shared slice; do not mutate).
func (tl *Timeline) Values(key string) ([]float64, bool) {
	c := tl.byKey[key]
	if c == nil {
		return nil, false
	}
	return c.vals, true
}

// csvQuote quotes a header cell per RFC 4180 when it contains a comma,
// quote, or newline — label signatures contain both commas and quotes.
func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// CSV renders the timeline as one header row (t_ms then column keys) and
// one row per tick. Times are virtual milliseconds; values render with the
// same platform-stable float formatting as the other exporters.
func (tl *Timeline) CSV() string {
	var b strings.Builder
	b.WriteString("t_ms")
	for _, c := range tl.cols {
		b.WriteByte(',')
		b.WriteString(csvQuote(c.key))
	}
	b.WriteByte('\n')
	for i, t := range tl.ticks {
		b.WriteString(formatFloat(float64(t) / 1e6))
		for _, c := range tl.cols {
			b.WriteByte(',')
			b.WriteString(formatFloat(c.vals[i]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// timelineJSON is the JSON export shape.
type timelineJSON struct {
	EveryMS float64              `json:"every_ms"`
	TicksMS []float64            `json:"ticks_ms"`
	Series  []timelineSeriesJSON `json:"series"`
}

type timelineSeriesJSON struct {
	Key    string    `json:"key"`
	Values []float64 `json:"values"`
}

// JSON renders the timeline as indented JSON: the tick axis in virtual
// milliseconds plus every column in export order.
func (tl *Timeline) JSON() ([]byte, error) {
	out := timelineJSON{
		EveryMS: float64(tl.every) / 1e6,
		TicksMS: make([]float64, len(tl.ticks)),
		Series:  make([]timelineSeriesJSON, len(tl.cols)),
	}
	for i, t := range tl.ticks {
		out.TicksMS[i] = float64(t) / 1e6
	}
	for i, c := range tl.cols {
		vals := c.vals
		if vals == nil {
			vals = []float64{}
		}
		out.Series[i] = timelineSeriesJSON{Key: c.key, Values: vals}
	}
	return json.MarshalIndent(out, "", "  ")
}

// Checksum returns the FNV-1a hash and length of the CSV export — the
// series identity fingerprint embedded in Cluster.Outcome(), which the
// byte_identity and replay_identity assertions compare across runs.
func (tl *Timeline) Checksum() (uint64, int) {
	csv := tl.CSV()
	h := fnv.New64a()
	h.Write([]byte(csv))
	return h.Sum64(), len(csv)
}
