package metrics

import (
	"encoding/json"
	"strings"
	"testing"

	"albatross/internal/stats"
)

func TestRegistryCounterGaugeSnapshot(t *testing.T) {
	r := New()
	var rx uint64 = 41
	r.Counter("albatross_pod_rx_total", "Packets received.", func() uint64 { return rx },
		L("pod", "gw"))
	r.Gauge("albatross_pod_live", "Contexts in flight.", func() float64 { return 3 },
		L("pod", "gw"))
	rx++
	s := r.Snapshot()
	if len(s.Families) != 2 {
		t.Fatalf("families = %d", len(s.Families))
	}
	// Closure-backed: snapshot sees the post-registration increment.
	v, ok := s.Find("albatross_pod_rx_total", L("pod", "gw"))
	if !ok || v.Value != 42 {
		t.Fatalf("rx series = %+v ok=%v", v, ok)
	}
	if v, ok := s.Find("albatross_pod_live"); !ok || v.Value != 3 {
		t.Fatalf("live series = %+v ok=%v", v, ok)
	}
}

func TestRegistryHistogramSnapshot(t *testing.T) {
	r := New()
	h := stats.NewHistogram(8)
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	r.Histogram("albatross_latency_ns", "End-to-end latency.", h, L("pod", "gw"))
	v, ok := r.Snapshot().Find("albatross_latency_ns")
	if !ok || v.Hist == nil {
		t.Fatalf("histogram series missing: %+v", v)
	}
	if v.Hist.Count != 100 || v.Hist.Min != 1000 || v.Hist.Max != 100000 {
		t.Fatalf("hist value %+v", *v.Hist)
	}
	if v.Hist.P50 < 40000 || v.Hist.P50 > 60000 {
		t.Fatalf("p50 = %d", v.Hist.P50)
	}
}

func TestRegistryPanicsOnAbuse(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	c := func() uint64 { return 0 }
	expectPanic("invalid name", func() { New().Counter("bad name!", "", c) })
	expectPanic("invalid label key", func() { New().Counter("ok", "", c, L("bad key", "v")) })
	expectPanic("nil counter fn", func() { New().Counter("ok", "", nil) })
	expectPanic("nil histogram", func() { New().Histogram("ok", "", nil) })
	expectPanic("kind conflict", func() {
		r := New()
		r.Counter("m", "h", c)
		r.Gauge("m", "h", func() float64 { return 0 })
	})
	expectPanic("help conflict", func() {
		r := New()
		r.Counter("m", "one", c, L("pod", "a"))
		r.Counter("m", "two", c, L("pod", "b"))
	})
	expectPanic("duplicate labelset", func() {
		r := New()
		r.Counter("m", "h", c, L("pod", "a"))
		r.Counter("m", "h", c, L("pod", "a"))
	})
}

func buildRegistry() *Registry {
	r := New()
	h := stats.NewHistogram(6)
	h.Record(100)
	h.Record(10000)
	// Registration order deliberately unsorted: export must sort.
	r.Counter("zeta_total", "Last family.", func() uint64 { return 7 })
	r.Gauge("alpha_ratio", "First family.", func() float64 { return 0.25 }, L("pod", "b"))
	r.Gauge("alpha_ratio", "First family.", func() float64 { return 0.75 }, L("pod", "a"))
	r.Histogram("mid_latency_ns", "A histogram.", h, L("z", "1"), L("a", "2"))
	return r
}

func TestPrometheusExposition(t *testing.T) {
	out := buildRegistry().Snapshot().Prometheus()
	wantLines := []string{
		`# TYPE alpha_ratio gauge`,
		`alpha_ratio{pod="a"} 0.75`,
		`alpha_ratio{pod="b"} 0.25`,
		`# TYPE mid_latency_ns summary`,
		`mid_latency_ns{a="2",z="1",quantile="0.5"} `,
		`mid_latency_ns_sum{a="2",z="1"} 10100`,
		`mid_latency_ns_count{a="2",z="1"} 2`,
		`# TYPE zeta_total counter`,
		`zeta_total 7`,
	}
	pos := -1
	for _, w := range wantLines {
		i := strings.Index(out, w)
		if i < 0 {
			t.Fatalf("missing %q in exposition:\n%s", w, out)
		}
		if i < pos {
			t.Fatalf("line %q out of order (families must sort by name):\n%s", w, out)
		}
		pos = i
	}
}

func TestJSONRoundTripsAndSorts(t *testing.T) {
	raw, err := buildRegistry().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Families []struct {
			Name   string `json:"name"`
			Kind   string `json:"kind"`
			Series []struct {
				Labels []map[string]string `json:"labels"`
			} `json:"series"`
		} `json:"families"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, raw)
	}
	var names []string
	for _, f := range decoded.Families {
		names = append(names, f.Name)
	}
	if strings.Join(names, ",") != "alpha_ratio,mid_latency_ns,zeta_total" {
		t.Fatalf("families out of order: %v", names)
	}
	// Histogram labels sort by key: "a" before "z".
	hist := decoded.Families[1]
	if hist.Series[0].Labels[0]["key"] != "a" {
		t.Fatalf("labels not sorted: %v", hist.Series[0].Labels)
	}
}

func TestExportDeterministic(t *testing.T) {
	// Two registries built identically must export byte-identically (the
	// registry uses maps internally; export must not leak their order).
	for i := 0; i < 10; i++ {
		a, b := buildRegistry().Snapshot(), buildRegistry().Snapshot()
		if a.Prometheus() != b.Prometheus() {
			t.Fatal("Prometheus output differs between identical registries")
		}
		aj, _ := a.JSON()
		bj, _ := b.JSON()
		if string(aj) != string(bj) {
			t.Fatal("JSON output differs between identical registries")
		}
	}
}

func TestFindRejectsAmbiguity(t *testing.T) {
	s := buildRegistry().Snapshot()
	// Two alpha_ratio series match the empty label filter.
	if _, ok := s.Find("alpha_ratio"); ok {
		t.Fatal("ambiguous Find returned ok")
	}
	if _, ok := s.Find("nope"); ok {
		t.Fatal("missing family returned ok")
	}
}

func TestPromLabelsEscaping(t *testing.T) {
	cases := []struct {
		name   string
		labels []Label
		extraK string
		extraV string
		want   string
	}{
		{"empty", nil, "", "", ""},
		{"plain", []Label{L("a", "x")}, "", "", `{a="x"}`},
		{"quote", []Label{L("a", `va"l`)}, "", "", `{a="va\"l"}`},
		{"backslash", []Label{L("a", `c:\tmp`)}, "", "", `{a="c:\\tmp"}`},
		{"newline", []Label{L("a", "line1\nline2")}, "", "", `{a="line1\nline2"}`},
		{"all-three", []Label{L("a", "\"\\\n")}, "", "", `{a="\"\\\n"}`},
		{"extra-only", nil, "quantile", "0.99", `{quantile="0.99"}`},
		{"labels-plus-extra", []Label{L("a", "x")}, "quantile", "0.5", `{a="x",quantile="0.5"}`},
		{"extra-escaped", nil, "q", "v\"w", `{q="v\"w"}`},
	}
	for _, tc := range cases {
		if got := promLabels(tc.labels, tc.extraK, tc.extraV); got != tc.want {
			t.Errorf("%s: promLabels = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestPromLabelsEscapingInExposition(t *testing.T) {
	// End to end: a hostile label value must survive the full Prometheus
	// render without breaking the line structure.
	r := New()
	r.Counter("evil_total", "evil", func() uint64 { return 1 }, L("path", "a\\b\"c\nd"))
	out := r.Snapshot().Prometheus()
	want := `evil_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing escaped series line %q:\n%s", want, out)
	}
	if strings.Count(out, "\n") != 3 { // HELP, TYPE, series
		t.Fatalf("raw newline leaked into exposition:\n%q", out)
	}
}

func TestFindEdges(t *testing.T) {
	r := New()
	r.Counter("multi_total", "m", func() uint64 { return 1 }, L("pod", "a"), L("zone", "east"))
	r.Counter("multi_total", "m", func() uint64 { return 2 }, L("pod", "b"), L("zone", "east"))
	r.Gauge("single", "s", func() float64 { return 9 })
	s := r.Snapshot()

	// A filter matching several series of one family must not pick one.
	if _, ok := s.Find("multi_total", L("zone", "east")); ok {
		t.Fatal("multi-match Find returned ok")
	}
	// Narrowing to a unique series succeeds, including with a subset filter.
	if v, ok := s.Find("multi_total", L("pod", "b")); !ok || v.Value != 2 {
		t.Fatalf("unique subset Find = (%v, %v), want (2, true)", v.Value, ok)
	}
	// Right family, no label match.
	if _, ok := s.Find("multi_total", L("pod", "zzz")); ok {
		t.Fatal("no-match labels returned ok")
	}
	// Label value exists but under another key.
	if _, ok := s.Find("multi_total", L("zone", "a")); ok {
		t.Fatal("key/value crosswired Find returned ok")
	}
	// More filter labels than the series carries.
	if _, ok := s.Find("single", L("pod", "a")); ok {
		t.Fatal("over-constrained Find returned ok")
	}
	// Empty filter on a single-series family still works.
	if v, ok := s.Find("single"); !ok || v.Value != 9 {
		t.Fatalf("empty-filter Find = (%v, %v), want (9, true)", v.Value, ok)
	}
}
