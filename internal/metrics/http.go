package metrics

import "net/http"

// PrometheusContentType is the text exposition format version the handler
// advertises.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an HTTP handler serving the Prometheus text exposition
// of whatever snapshot snap returns — typically Registry.Snapshot bound to
// a live registry, or a closure over a frozen post-run snapshot. The
// handler runs entirely off the simulation hot path: snapshotting reads
// the counters through their closures at request time, and the simulator
// never blocks on a scrape.
func Handler(snap func() *Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", PrometheusContentType)
		if r.Method == http.MethodHead {
			return
		}
		w.Write([]byte(snap().Prometheus()))
	})
}
