package metrics

import "net/http"

// Content types advertised by the HTTP handlers.
const (
	// PrometheusContentType is the text exposition format version the
	// /metrics handler advertises.
	PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"
	// JSONContentType is served by /metrics.json and /series.json.
	JSONContentType = "application/json; charset=utf-8"
	// CSVContentType is served by /series.
	CSVContentType = "text/csv; charset=utf-8"
)

// readOnly wraps a handler body with the shared method gate and content
// type: GET serves the body, HEAD serves headers only, anything else is
// rejected. All handlers run entirely off the simulation hot path — state
// is read through closures at request time and the simulator never blocks
// on a scrape.
func readOnly(contentType string, body func(w http.ResponseWriter)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", contentType)
		if r.Method == http.MethodHead {
			return
		}
		body(w)
	})
}

// Handler returns an HTTP handler serving the Prometheus text exposition
// of whatever snapshot snap returns — typically Registry.Snapshot bound to
// a live registry, or a closure over a frozen post-run snapshot.
func Handler(snap func() *Snapshot) http.Handler {
	return readOnly(PrometheusContentType, func(w http.ResponseWriter) {
		w.Write([]byte(snap().Prometheus()))
	})
}

// JSONHandler serves the same snapshot as Handler in the indented JSON
// form, for /metrics.json.
func JSONHandler(snap func() *Snapshot) http.Handler {
	return readOnly(JSONContentType, func(w http.ResponseWriter) {
		blob, err := snap().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(blob)
	})
}

// SeriesHandler serves the timeline returned by tl as CSV, for /series.
// tl may return nil (sampling not enabled), which maps to 404 so scrapers
// can distinguish "off" from "empty".
func SeriesHandler(tl func() *Timeline) http.Handler {
	return readOnly(CSVContentType, func(w http.ResponseWriter) {
		t := tl()
		if t == nil {
			http.Error(w, "timeline sampling not enabled", http.StatusNotFound)
			return
		}
		w.Write([]byte(t.CSV()))
	})
}

// SeriesJSONHandler serves the timeline as JSON, for /series.json, with
// the same nil-means-404 contract as SeriesHandler.
func SeriesJSONHandler(tl func() *Timeline) http.Handler {
	return readOnly(JSONContentType, func(w http.ResponseWriter) {
		t := tl()
		if t == nil {
			http.Error(w, "timeline sampling not enabled", http.StatusNotFound)
			return
		}
		blob, err := t.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(blob)
	})
}
