package metrics

import (
	"encoding/json"
	"sort"
	"strconv"
	"strings"

	"albatross/internal/stats"
)

// quantiles exported for every histogram series.
var quantiles = []float64{0.5, 0.9, 0.99, 0.999}

// HistValue is a histogram series' exported summary.
type HistValue struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Mean  float64 `json:"mean"`
}

func histValue(h *stats.Histogram) HistValue {
	return HistValue{
		Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
		P50: h.Quantile(0.5), P90: h.Quantile(0.9),
		P99: h.Quantile(0.99), P999: h.Quantile(0.999),
		Mean: h.Mean(),
	}
}

func (v HistValue) quantile(q float64) int64 {
	switch q {
	case 0.5:
		return v.P50
	case 0.9:
		return v.P90
	case 0.99:
		return v.P99
	default:
		return v.P999
	}
}

// SeriesValue is one series' frozen state.
type SeriesValue struct {
	Labels []Label    `json:"labels,omitempty"`
	Value  float64    `json:"value,omitempty"`
	Hist   *HistValue `json:"hist,omitempty"`

	sig string
}

// FamilyValue is one metric family's frozen state.
type FamilyValue struct {
	Name   string        `json:"name"`
	Help   string        `json:"help"`
	Kind   string        `json:"kind"`
	Series []SeriesValue `json:"series"`
}

// Snapshot is a registry frozen at one instant, fully ordered.
type Snapshot struct {
	Families []FamilyValue `json:"families"`
}

// Snapshot reads every registered series and returns a frozen, ordered
// copy. Reading is cheap (counters and gauges are closure calls; histogram
// quantiles scan buckets) and never mutates simulator state.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{Families: make([]FamilyValue, 0, len(r.families))}
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		fv := FamilyValue{Name: f.name, Help: f.help, Kind: f.kind.String(),
			Series: make([]SeriesValue, 0, len(f.series))}
		for _, s := range f.series {
			sv := SeriesValue{Labels: s.labels, sig: s.sig}
			switch f.kind {
			case KindCounter:
				sv.Value = float64(s.counter())
			case KindGauge:
				sv.Value = s.gauge()
			case KindHistogram:
				h := histValue(s.hist)
				sv.Hist = &h
			}
			fv.Series = append(fv.Series, sv)
		}
		sort.Slice(fv.Series, func(i, j int) bool { return fv.Series[i].sig < fv.Series[j].sig })
		snap.Families = append(snap.Families, fv)
	}
	return snap
}

// formatFloat renders a float the same way on every platform.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promLabels renders a sorted label set (plus an optional extra pair) in
// exposition syntax: {a="x",b="y"} or the empty string.
func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// Prometheus renders the snapshot in Prometheus text exposition format.
// Histograms export as summaries: precomputed quantiles plus _sum/_count.
func (s *Snapshot) Prometheus() string {
	var b strings.Builder
	for _, f := range s.Families {
		b.WriteString("# HELP ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Help)
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		if f.Kind == KindHistogram.String() {
			b.WriteString(KindHistogram.promKind())
		} else {
			b.WriteString(f.Kind)
		}
		b.WriteByte('\n')
		for _, sv := range f.Series {
			if sv.Hist == nil {
				b.WriteString(f.Name)
				b.WriteString(promLabels(sv.Labels, "", ""))
				b.WriteByte(' ')
				b.WriteString(formatFloat(sv.Value))
				b.WriteByte('\n')
				continue
			}
			for _, q := range quantiles {
				b.WriteString(f.Name)
				b.WriteString(promLabels(sv.Labels, "quantile", formatFloat(q)))
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(sv.Hist.quantile(q), 10))
				b.WriteByte('\n')
			}
			b.WriteString(f.Name)
			b.WriteString("_sum")
			b.WriteString(promLabels(sv.Labels, "", ""))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(sv.Hist.Sum, 10))
			b.WriteByte('\n')
			b.WriteString(f.Name)
			b.WriteString("_count")
			b.WriteString(promLabels(sv.Labels, "", ""))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(sv.Hist.Count, 10))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON. Families and series keep
// their snapshot order; label arrays are pre-sorted by key.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Find returns the value of the single series of family name whose labels
// include every given pair, and whether exactly one matched — a test and
// report helper, not a query language.
func (s *Snapshot) Find(name string, labels ...Label) (SeriesValue, bool) {
	var hit SeriesValue
	found := 0
	for _, f := range s.Families {
		if f.Name != name {
			continue
		}
		for _, sv := range f.Series {
			if labelsInclude(sv.Labels, labels) {
				hit = sv
				found++
			}
		}
	}
	return hit, found == 1
}

func labelsInclude(have []Label, want []Label) bool {
	for _, w := range want {
		ok := false
		for _, h := range have {
			if h.Key == w.Key && h.Value == w.Value {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// MarshalJSON renders labels as an ordered {"key":"value"} object (arrays
// stay deterministic because labels are pre-sorted by key).
func (l Label) MarshalJSON() ([]byte, error) {
	type kv struct {
		Key   string `json:"key"`
		Value string `json:"value"`
	}
	return json.Marshal(kv{l.Key, l.Value})
}
