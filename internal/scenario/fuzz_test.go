package scenario

import (
	"errors"
	"testing"

	"albatross/internal/errs"
)

// FuzzLoadScenario throws arbitrary documents at the scenario loader. The
// contract under fuzz: never panic, and reject every malformed document
// with an error wrapping the errs.BadConfig sentinel. Accepted documents
// must re-validate cleanly (Load already validates, so Validate on the
// result is idempotent).
func FuzzLoadScenario(f *testing.F) {
	f.Add([]byte(fullDoc))
	f.Add([]byte("name: x\nduration: 10ms\nworkload:\n  flows: 10\n  rate: 1e5\n"))
	f.Add([]byte(""))
	f.Add([]byte("- a\n- b\n"))
	f.Add([]byte("name: \"quo\\\"ted\"\nduration: 1ms\n"))
	f.Add([]byte("a:\n  b:\n    c: [1, 2]\n"))
	f.Add([]byte("events:\n  - at: 1ms\n    action: inject_failure\n"))
	f.Add([]byte("name: x\n\tduration: 1ms\n"))
	f.Add([]byte("assertions:\n  - type: byte_identity\n    shards: [1, 4]\n"))
	f.Add([]byte("name: x # comment\nduration: 5ms # also\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(data)
		if err != nil {
			if !errors.Is(err, errs.BadConfig) {
				t.Fatalf("rejection %v does not wrap errs.BadConfig", err)
			}
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted scenario fails re-validation: %v", err)
		}
	})
}
