package scenario

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"albatross/internal/errs"
	"albatross/internal/faults"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
)

const fullDoc = `
# A full-vocabulary scenario document.
name: kitchen-sink
description: "every section exercised"
seed: 9
duration: 20ms
drain: 3ms

fleet:
  nodes: 3
  shards: 1
  pods: 2
  cores: 4
  ctrl_cores: 2
  service: vpc-internet
  mode: rss
  cache_mb: 8
  queue_depth: 512
  limiter: true
  auto_fallback: true

workload:
  flows: 2000
  tenants: 50
  rate: 4e5
  zipf: 1.1
  seed: 77
  packet_bytes: 512
  deterministic: false
  acl_denied: 0.1

events:
  - at: 5ms
    action: inject_failure
    fault: core-stall
    node: 1
    pod: 0
    core: 2
    factor: 25
    duration: 4ms
  - at: 6ms
    action: drain
    node: 2
    duration: 8ms
  - at: 7ms
    action: flap
    node: 0
    duration: 2ms
  - at: 10ms
    action: ramp
    rate: 1e5

observability:
  trace_sample: 64
  trace_latency_over: 1ms
  trace_vni: 3
  trace_fault_window: true
  report: false

assertions:
  - type: conservation
  - type: max_loss
    fraction: 0.5
  - type: remap_bound
    factor: 2
  - type: detection_window
    margin: 3
  - type: latency
    quantile: 0.99
    max: 10ms
  - type: min_tx
    count: 100
  - type: byte_identity
    runs: 2
    shards: [1, 2]
`

func TestLoadFullDocument(t *testing.T) {
	s, err := Load([]byte(fullDoc))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if s.Name != "kitchen-sink" || s.Seed != 9 {
		t.Errorf("header: name=%q seed=%d", s.Name, s.Seed)
	}
	if s.Duration != 20*sim.Millisecond || s.Drain != 3*sim.Millisecond {
		t.Errorf("times: duration=%v drain=%v", s.Duration, s.Drain)
	}
	f := s.Fleet
	if f.Nodes != 3 || f.Shards != 1 || f.Pods != 2 || f.Cores != 4 || f.CtrlCores != 2 {
		t.Errorf("fleet shape: %+v", f)
	}
	if f.Service != service.VPCInternet || f.Mode != pod.ModeRSS {
		t.Errorf("fleet service/mode: %+v", f)
	}
	if f.CacheMB != 8 || f.QueueDepth != 512 || !f.Limiter || !f.AutoFallback {
		t.Errorf("fleet extras: %+v", f)
	}
	w := s.Workload
	if w.Flows != 2000 || w.Tenants != 50 || w.Rate != 4e5 || w.Zipf != 1.1 ||
		w.Seed != 77 || w.PacketBytes != 512 || w.Deterministic || w.ACLDenied != 0.1 {
		t.Errorf("workload: %+v", w)
	}
	if len(s.Events) != 4 {
		t.Fatalf("events: got %d", len(s.Events))
	}
	if ev := s.Events[0]; ev.Action != ActionInject || ev.Fault.Kind != faults.KindCoreStall ||
		ev.Fault.Node != 1 || ev.Fault.Core != 2 || ev.Fault.Factor != 25 ||
		ev.Fault.Duration != 4*sim.Millisecond || ev.At != 5*sim.Millisecond {
		t.Errorf("event 0: %+v", ev)
	}
	if ev := s.Events[1]; ev.Action != ActionDrain || ev.Fault.Kind != faults.KindNodeDrain || ev.Fault.Node != 2 {
		t.Errorf("event 1: %+v", ev)
	}
	if ev := s.Events[2]; ev.Action != ActionFlap || ev.Fault.Kind != faults.KindBGPFlap || ev.Fault.Node != 0 {
		t.Errorf("event 2: %+v", ev)
	}
	if ev := s.Events[3]; ev.Action != ActionRamp || ev.Rate != 1e5 {
		t.Errorf("event 3: %+v", ev)
	}
	o := s.Observability
	if o.TraceSample != 64 || o.TraceLatencyOver != sim.Millisecond || o.TraceVNI != 3 || !o.TraceFaultWindow {
		t.Errorf("observability: %+v", o)
	}
	if len(s.Assertions) != 7 {
		t.Fatalf("assertions: got %d", len(s.Assertions))
	}
	if a := s.Assertions[6]; a.Type != "byte_identity" || a.Runs != 2 || len(a.Shards) != 2 || a.Shards[1] != 2 {
		t.Errorf("byte_identity: %+v", a)
	}
	if plan := s.FaultPlan(); plan == nil || len(plan.Faults) != 3 {
		t.Errorf("fault plan: %+v", s.FaultPlan())
	}
}

// loadErr asserts that a document fails to load with ErrBadConfig and a
// message containing want.
func loadErr(t *testing.T, doc, want string) {
	t.Helper()
	_, err := Load([]byte(doc))
	if err == nil {
		t.Fatalf("Load succeeded, want error containing %q", want)
	}
	if !errors.Is(err, errs.BadConfig) {
		t.Errorf("error does not wrap ErrBadConfig: %v", err)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}

func TestLoadRejects(t *testing.T) {
	valid := "name: x\nduration: 10ms\nworkload:\n  flows: 10\n  rate: 1e5\n"
	cases := []struct {
		name, doc, want string
	}{
		{"unknown top key", valid + "bogus: 1\n", `unknown key "bogus"`},
		{"unknown fleet key", valid + "fleet:\n  cpus: 4\n", `unknown key "cpus" in fleet`},
		{"unknown workload key", valid + "workload2:\n  x: 1\n", `unknown key "workload2"`},
		{"duplicate key", "name: x\nname: y\nduration: 1ms\n", `duplicate key "name"`},
		{"tab indent", "name: x\n\tduration: 1ms\n", "tab in indentation"},
		{"bad duration", "name: x\nduration: fast\n", "not a duration"},
		{"missing duration", "name: x\nworkload:\n  flows: 5\n  rate: 1\n", "duration must be positive"},
		{"missing name", "duration: 1ms\nworkload:\n  flows: 5\n  rate: 1\n", "missing name"},
		{"no flows", "name: x\nduration: 1ms\nworkload:\n  rate: 1\n", "workload.flows"},
		{"bad service", valid + "fleet:\n  service: vpc-moon\n", `unknown service "vpc-moon"`},
		{"bad mode", valid + "fleet:\n  mode: fpga\n", `unknown mode "fpga"`},
		{"unknown action", valid + "events:\n  - at: 1ms\n    action: explode\n", `unknown action "explode"`},
		{"unknown fault", valid + "events:\n  - at: 1ms\n    action: inject_failure\n    fault: gamma-ray\n", `unknown fault kind "gamma-ray"`},
		{"missing at", valid + "events:\n  - action: ramp\n    rate: 1\n", `missing "at"`},
		{"ramp without rate", valid + "events:\n  - at: 1ms\n    action: ramp\n", `ramp needs a "rate"`},
		{"fault param on wrong kind", valid + "events:\n  - at: 1ms\n    action: inject_failure\n    fault: node-crash\n    core: 2\n", `unknown key "core"`},
		{"node out of range", valid + "events:\n  - at: 1ms\n    action: drain\n    node: 5\n", "node 5 out of range"},
		{"unknown assertion", valid + "assertions:\n  - type: vibes\n", `unknown type "vibes"`},
		{"assertion missing param", valid + "assertions:\n  - type: max_loss\n", `max_loss needs a "fraction"`},
		{"latency without max", valid + "assertions:\n  - type: latency\n", `latency needs a "max"`},
		{"bad fraction", valid + "assertions:\n  - type: max_loss\n    fraction: 1.5\n", "fraction must be in (0,1]"},
		{"assertion param typo", valid + "assertions:\n  - type: conservation\n    margin: 2\n", `unknown key "margin"`},
		{"empty doc", "", "empty document"},
		{"top-level sequence", "- a\n- b\n", "top level must be a mapping"},
		{"reorder stress no effect", valid + "events:\n  - at: 1ms\n    action: inject_failure\n    fault: reorder-stress\n    hold_heads: false\n", "selects no effect"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { loadErr(t, tc.doc, tc.want) })
	}
}

func TestLoadErrorsNameLine(t *testing.T) {
	doc := "name: x\nduration: 1ms\nworkload:\n  flows: 5\n  rate: 1\n  glorp: 2\n"
	_, err := Load([]byte(doc))
	if err == nil || !strings.Contains(err.Error(), "line 6") {
		t.Fatalf("want line 6 in error, got %v", err)
	}
}

// TestRunHealthy runs a small healthy scenario end to end and expects
// every assertion to pass and the report to be repeat-identical.
func TestRunHealthy(t *testing.T) {
	doc := `
name: healthy
duration: 10ms
fleet:
  nodes: 2
  shards: 1
workload:
  flows: 1000
  tenants: 20
  rate: 2e5
assertions:
  - type: conservation
  - type: zero_loss
  - type: min_tx
    count: 100
  - type: latency
    max: 5ms
  - type: remap_bound
`
	s, err := Load([]byte(doc))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.OK() {
		t.Fatalf("healthy scenario failed:\n%s", res.Report)
	}
	res2, err := s.Run()
	if err != nil {
		t.Fatalf("Run 2: %v", err)
	}
	if res.Report != res2.Report {
		t.Errorf("report not repeat-identical")
	}
	if res.Outcome != res2.Outcome {
		t.Errorf("outcome not repeat-identical")
	}
}

// TestRunNodeCrash drives the full failover story declaratively and
// cross-checks the scenario-level assertions against the cluster facts.
func TestRunNodeCrash(t *testing.T) {
	doc := `
name: crash-drill
duration: 30ms
drain: 2ms
fleet:
  nodes: 3
  shards: 1
workload:
  flows: 2000
  tenants: 40
  rate: 5e5
events:
  - at: 10ms
    action: inject_failure
    fault: node-crash
    node: 1
    duration: 200ms
assertions:
  - type: conservation
  - type: remap_bound
  - type: detection_window
    margin: 2
  - type: max_loss
    fraction: 0.4
  - type: replay_identity
`
	s, err := Load([]byte(doc))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.OK() {
		t.Fatalf("crash drill failed:\n%s", res.Report)
	}
	if !strings.Contains(res.Report, "inject node-crash node=1") {
		t.Errorf("fault log missing from report:\n%s", res.Report)
	}
}

// TestByteIdentityAcrossShards asserts the scenario runner preserves the
// cluster layer's shard-count invariance.
func TestByteIdentityAcrossShards(t *testing.T) {
	s := &Scenario{
		Name:     "shard-invariance",
		Seed:     5,
		Duration: 8 * sim.Millisecond,
		Drain:    2 * sim.Millisecond,
		Fleet:    Fleet{Nodes: 4, Shards: 1, Pods: 1, Cores: 2, CtrlCores: 1},
		Workload: Workload{Flows: 500, Tenants: 10, Rate: 2e5},
		Events: []Event{{
			At: 3 * sim.Millisecond, Action: ActionInject,
			Fault: faults.Fault{Kind: faults.KindNodeCrash, At: 3 * sim.Millisecond, Node: 2, Duration: 100 * sim.Millisecond},
		}},
		Assertions: []Assertion{{Type: "byte_identity", Runs: 2, Shards: []int{2, 4}}},
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.OK() {
		t.Fatalf("shard identity failed:\n%s", res.Report)
	}
}

// TestRampChangesRate checks that a ramp event actually reduces the
// offered load after its fire time.
func TestRampChangesRate(t *testing.T) {
	base := &Scenario{
		Name:     "ramp",
		Seed:     3,
		Duration: 10 * sim.Millisecond,
		Drain:    sim.Millisecond,
		Fleet:    Fleet{Nodes: 1, Shards: 1, Pods: 1, Cores: 2, CtrlCores: 1},
		Workload: Workload{Flows: 200, Tenants: 5, Rate: 2e5},
	}
	flat, err := base.Run()
	if err != nil {
		t.Fatalf("Run flat: %v", err)
	}
	ramped := *base
	ramped.Events = []Event{{At: 5 * sim.Millisecond, Action: ActionRamp, Rate: 1e4}}
	down, err := ramped.Run()
	if err != nil {
		t.Fatalf("Run ramped: %v", err)
	}
	nFlat := extractSprayed(t, flat.Report)
	nDown := extractSprayed(t, down.Report)
	if nDown >= nFlat {
		t.Errorf("ramp-down did not reduce traffic: flat=%d ramped=%d", nFlat, nDown)
	}
	if nDown < nFlat/4 {
		t.Errorf("ramp-down too aggressive (applied from t=0?): flat=%d ramped=%d", nFlat, nDown)
	}
}

func extractSprayed(t *testing.T, report string) uint64 {
	t.Helper()
	for _, line := range strings.Split(report, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "traffic") {
			var sprayed, delivered, remapped, swd, bh uint64
			if _, err := fmt.Sscanf(line, "traffic     sprayed=%d delivered=%d remapped=%d switch-drops=%d blackholed=%d",
				&sprayed, &delivered, &remapped, &swd, &bh); err == nil {
				return sprayed
			}
		}
	}
	t.Fatalf("no traffic line in report:\n%s", report)
	return 0
}
