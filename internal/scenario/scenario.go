package scenario

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"albatross/internal/controlplane"
	"albatross/internal/errs"
	"albatross/internal/faults"
	"albatross/internal/flowtable"
	"albatross/internal/pod"
	"albatross/internal/service"
	"albatross/internal/sim"
)

// Scenario is one declarative gameday drill: what to deploy, what traffic
// to offer, what to break and when, what to observe, and what must hold
// at the end. Load builds one from YAML; the fields are exported so
// library users can construct scenarios programmatically and run them
// through the same Execute path as the CLI.
type Scenario struct {
	// Name identifies the scenario in reports. Required.
	Name string
	// Description is free-form documentation.
	Description string
	// Seed is the master simulation seed (default 1).
	Seed uint64
	// Duration is the virtual time the workload runs for. Required.
	Duration sim.Duration
	// Drain is the extra virtual time after the workload stops, letting
	// in-flight packets and reorder timeouts resolve (default 2ms).
	Drain sim.Duration

	Fleet    Fleet
	Workload Workload
	// Spec is the optional desired-state block: when present, a
	// control-plane reconciler drives the fleet toward it over real eBGP
	// proxy sessions, and spec_update events steer it mid-run.
	Spec *ReconcileSpec
	// Events is the timed script: fault injections, workload ramps, and
	// desired-state updates.
	Events []Event
	// Observability configures the telemetry taps of the run.
	Observability Observability
	// Assertions is the declarative postcondition block.
	Assertions []Assertion
}

// Fleet describes the deployment: how many servers, how they are sharded
// across engines, and the shape of the gateway pods on each.
type Fleet struct {
	// Nodes is the gateway server count (default 1). Every fleet runs as
	// a cluster behind consistent-hash ECMP, so outcome reports and
	// assertions apply uniformly from 1 node to regionscale.
	Nodes int
	// Shards partitions the cluster across engine shards (0 = auto,
	// 1 = single shared engine). Purely an execution strategy: outputs
	// are byte-identical at any value.
	Shards int
	// Pods deploys this many identical pods per node (default 1; crash /
	// drain drills want ≥ 2 so tenants have a redirect sibling).
	Pods int
	// Cores / CtrlCores size each pod (defaults 4 / 2).
	Cores     int
	CtrlCores int
	// Service selects the gateway service (default vpc-vpc).
	Service service.Type
	// Mode selects packet-level (plb, default) or flow-hash (rss) load
	// balancing.
	Mode pod.Mode
	// CacheMB shrinks the per-NUMA L3 model (0 = model default 100 MiB;
	// regionscale fleets use 1).
	CacheMB int
	// Limiter arms the two-stage tenant overload limiter.
	Limiter bool
	// AutoFallback arms the reorder-timeout watchdog (PLB→RSS fallback).
	AutoFallback bool
	// QueueDepth overrides the per-core RX queue depth (0 = default 1024).
	QueueDepth int
	// Backend selects the node-level flow-table backend steering ingress
	// flows to pods ("" = legacy first-pod injection; "session" or
	// "othello").
	Backend string
	// Burst batches same-instant packet arrivals through one NIC event per
	// burst (0 or 1 = legacy per-packet path). Burst > 1 disables the
	// flight recorder, so it rejects trace-sampling observability.
	Burst int
}

// Workload describes the offered traffic: either a synthetic flow mix or
// a recorded trace replay.
type Workload struct {
	// Flows is the concurrent flow count. Required unless Replay is set.
	Flows int
	// Tenants spreads flows over this many VNIs (default 1000).
	Tenants int
	// Rate is the offered rate in packets/second. Required unless Replay
	// is set. Ramp events rescale it mid-run.
	Rate float64
	// Zipf skews flow popularity (0 = uniform).
	Zipf float64
	// Seed seeds the source's private RNG (0 = scenario seed + 1).
	Seed uint64
	// PacketBytes is the generated wire size (0 = 256).
	PacketBytes int
	// Deterministic spaces arrivals exactly 1/rate apart.
	Deterministic bool
	// ACLDenied marks this fraction of flows ACL-denied.
	ACLDenied float64
	// Replay plays a recorded trace file instead of generating traffic.
	Replay string
}

// Action is an event-script verb.
type Action uint8

const (
	// ActionInject injects one fault (any of the 10 kinds).
	ActionInject Action = iota
	// ActionDrain gray-upgrades a node (sugar for fault: node-drain).
	ActionDrain
	// ActionFlap flaps a node's BGP uplink (sugar for fault: bgp-flap).
	ActionFlap
	// ActionRamp switches the workload's offered rate.
	ActionRamp
	// ActionSpecUpdate replaces one member's desired-state entry in the
	// reconciler's spec (requires a top-level spec block).
	ActionSpecUpdate
)

func (a Action) String() string {
	switch a {
	case ActionInject:
		return "inject_failure"
	case ActionDrain:
		return "drain"
	case ActionFlap:
		return "flap"
	case ActionRamp:
		return "ramp"
	case ActionSpecUpdate:
		return "spec_update"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Event is one step of the timed script.
type Event struct {
	// At is the virtual fire time, relative to scenario start.
	At sim.Duration
	// Action selects the verb.
	Action Action
	// Fault is the compiled fault for inject_failure / drain / flap.
	Fault faults.Fault
	// Rate is the new offered rate for ramp.
	Rate float64
	// Member is the member slot a spec_update rewrites.
	Member int
	// Entry is the member's new desired-state entry for spec_update —
	// the full entry, not a delta: omitted keys take their defaults
	// (weight 1.0, pods unmanaged, admin up).
	Entry controlplane.MemberSpec
	// Line is the source line (0 for programmatic scenarios).
	Line int
}

// Observability configures the run's telemetry taps. Output paths are
// normally supplied as CLI overrides rather than committed in scenario
// files.
type Observability struct {
	// TraceSample flight-records every Nth packet (0 = off unless a
	// trigger below defaults it to 64).
	TraceSample int
	// TraceLatencyOver commits journeys slower than this end to end.
	TraceLatencyOver sim.Duration
	// TraceVNI commits journeys of one tenant (-1 = off).
	TraceVNI int
	// TraceFaultWindow commits journeys overlapping fault activations.
	TraceFaultWindow bool
	// Report appends the full cluster report to the run output.
	Report bool
	// MetricsOut writes PREFIX.prom and PREFIX.json metrics snapshots.
	MetricsOut string
	// OutcomeOut writes the per-node outcome report (the replay-diff
	// artifact).
	OutcomeOut string
	// Record writes the injection schedule to this trace file.
	Record string
	// TraceDump writes committed flight-recorder journeys to
	// PREFIX.journeys.json.
	TraceDump string
	// SnapshotEvery samples the telemetry timeline every this much virtual
	// time (0 = sampling off). Ticks align to epoch boundaries under the
	// sharded engine, so the series are byte-identical at any shard count.
	SnapshotEvery sim.Duration
	// SeriesOut writes the sampled timeline to PREFIX.csv and PREFIX.json
	// (requires snapshot_every).
	SeriesOut string
}

// Assertion is one declarative postcondition, checked after the run.
type Assertion struct {
	// Type selects the check: conservation, zero_loss, max_loss,
	// remap_bound, detection_window, latency, min_tx, expected_table,
	// byte_identity, replay_identity, converge, window_max, reconciled.
	Type string
	// Fraction is the loss ceiling for max_loss (of sprayed packets).
	Fraction float64
	// Factor is remap_bound's numerator: remapped ≤ Factor/Nodes of
	// sprayed (default 2 — the consistent-hash bound).
	Factor float64
	// Margin scales detection_window's loss bound (default 2).
	Margin float64
	// Quantile selects the latency quantile (default 0.99).
	Quantile float64
	// Max is the latency ceiling.
	Max sim.Duration
	// Count is min_tx's delivery floor.
	Count uint64
	// Runs is byte_identity's repeat count (default 2).
	Runs int
	// Shards lists extra shard counts byte_identity re-executes at.
	Shards []int
	// Pods is expected_table's required per-node backend pool size
	// (-1 = don't check the pool size).
	Pods int
	// MaxMoved is expected_table's per-cluster ceiling on flows the
	// backend remapped across pool updates (-1 = no ceiling).
	MaxMoved int
	// Series names the timeline column converge/window_max read (e.g.
	// "availability" or "albatross_cluster_eligible_members").
	Series string
	// Within is converge's deadline: the series must return to its
	// pre-fault baseline within this much virtual time of the last event.
	Within sim.Duration
	// Tolerance is converge's acceptance band around the baseline
	// (absolute; default 0.05).
	Tolerance float64
	// From and To bound window_max's virtual-time window (To 0 = run end).
	From sim.Duration
	To   sim.Duration
	// MaxValue is window_max's ceiling on the series over the window.
	MaxValue float64
	// Line is the source line (0 for programmatic scenarios).
	Line int
}

// serviceNames maps scenario service names to types.
var serviceNames = map[string]service.Type{
	"vpc-vpc":          service.VPCVPC,
	"vpc-internet":     service.VPCInternet,
	"vpc-idc":          service.VPCIDC,
	"vpc-cloudservice": service.VPCCloudService,
}

// ServiceName returns the scenario-file name of a service type.
func ServiceName(t service.Type) string {
	for name, st := range serviceNames {
		if st == t {
			return name
		}
	}
	return fmt.Sprintf("service(%d)", uint8(t))
}

// faultNames maps canonical and compact fault-kind spellings to kinds.
var faultNames = func() map[string]faults.Kind {
	m := map[string]faults.Kind{}
	for k := faults.KindCoreStall; k <= faults.KindUplinkWithdraw; k++ {
		name := k.String()
		m[name] = k
		m[strings.ReplaceAll(name, "-", "")] = k
	}
	return m
}()

// LoadFile loads, decodes, and validates a scenario file.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Load(data)
}

// Load decodes and validates a scenario document. Unknown keys, malformed
// values, and semantic violations are all errors wrapping errs.BadConfig.
func Load(data []byte) (*Scenario, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	s, err := decodeScenario(root)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// dec is a strict mapping decoder: typed getters consume keys, and
// finish() errors on anything left over.
type dec struct {
	n       *ynode
	section string
	used    map[string]bool
	err     error
}

func newDec(n *ynode, section string) *dec {
	return &dec{n: n, section: section, used: map[string]bool{}}
}

func (d *dec) fail(line int, format string, args ...any) {
	if d.err == nil {
		d.err = yamlErr(line, format, args...)
	}
}

// take consumes and returns the key's node, or nil.
func (d *dec) take(key string) *ynode {
	d.used[key] = true
	return d.n.get(key)
}

func (d *dec) scalar(key string) (string, *ynode, bool) {
	v := d.take(key)
	if v == nil || d.err != nil {
		return "", nil, false
	}
	if v.kind != kindScalar {
		d.fail(v.line, "%s.%s: expected a scalar value", d.section, key)
		return "", nil, false
	}
	return v.scalar, v, true
}

func (d *dec) str(key string, into *string) {
	if s, _, ok := d.scalar(key); ok {
		*into = s
	}
}

func (d *dec) integer(key string, into *int) {
	if s, v, ok := d.scalar(key); ok {
		n, err := strconv.Atoi(s)
		if err != nil {
			d.fail(v.line, "%s.%s: %q is not an integer", d.section, key, s)
			return
		}
		*into = n
	}
}

func (d *dec) u64(key string, into *uint64) {
	if s, v, ok := d.scalar(key); ok {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			d.fail(v.line, "%s.%s: %q is not an unsigned integer", d.section, key, s)
			return
		}
		*into = n
	}
}

func (d *dec) float(key string, into *float64) {
	if s, v, ok := d.scalar(key); ok {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			d.fail(v.line, "%s.%s: %q is not a number", d.section, key, s)
			return
		}
		*into = f
	}
}

func (d *dec) boolean(key string, into *bool) {
	if s, v, ok := d.scalar(key); ok {
		switch s {
		case "true":
			*into = true
		case "false":
			*into = false
		default:
			d.fail(v.line, "%s.%s: %q is not a boolean (true|false)", d.section, key, s)
		}
	}
}

func (d *dec) dur(key string, into *sim.Duration) {
	if s, v, ok := d.scalar(key); ok {
		t, err := time.ParseDuration(s)
		if err != nil {
			d.fail(v.line, "%s.%s: %q is not a duration (e.g. 30ms, 1.5s)", d.section, key, s)
			return
		}
		if t < 0 {
			d.fail(v.line, "%s.%s: negative duration %q", d.section, key, s)
			return
		}
		*into = sim.Duration(t.Nanoseconds())
	}
}

// finish errors on unconsumed keys, listing the section's vocabulary.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	for i, k := range d.n.keys {
		if !d.used[k] {
			allowed := make([]string, 0, len(d.used))
			for u := range d.used {
				allowed = append(allowed, u)
			}
			sort.Strings(allowed)
			return yamlErr(d.n.vals[i].line, "unknown key %q in %s (want %s)",
				k, d.section, strings.Join(allowed, "|"))
		}
	}
	return nil
}

func decodeScenario(root *ynode) (*Scenario, error) {
	s := &Scenario{
		Seed:  1,
		Drain: 2 * sim.Millisecond,
		Fleet: Fleet{Nodes: 1, Pods: 1, Cores: 4, CtrlCores: 2},
		Workload: Workload{
			Tenants: 1000,
		},
		Observability: Observability{TraceVNI: -1},
	}
	d := newDec(root, "scenario")
	d.str("name", &s.Name)
	d.str("description", &s.Description)
	d.u64("seed", &s.Seed)
	d.dur("duration", &s.Duration)
	d.dur("drain", &s.Drain)

	if v := d.take("fleet"); v != nil && d.err == nil {
		if v.kind != kindMap {
			return nil, yamlErr(v.line, "fleet: expected a mapping")
		}
		if err := decodeFleet(v, &s.Fleet); err != nil {
			return nil, err
		}
	}
	if v := d.take("workload"); v != nil && d.err == nil {
		if v.kind != kindMap {
			return nil, yamlErr(v.line, "workload: expected a mapping")
		}
		if err := decodeWorkload(v, &s.Workload); err != nil {
			return nil, err
		}
	}
	if v := d.take("spec"); v != nil && d.err == nil {
		if v.kind != kindMap {
			return nil, yamlErr(v.line, "spec: expected a mapping")
		}
		spec, err := decodeSpecBlock(v, "spec")
		if err != nil {
			return nil, err
		}
		s.Spec = spec
	}
	if v := d.take("events"); v != nil && d.err == nil {
		if v.kind != kindSeq {
			return nil, yamlErr(v.line, "events: expected a sequence")
		}
		for _, item := range v.items {
			ev, err := decodeEvent(item)
			if err != nil {
				return nil, err
			}
			s.Events = append(s.Events, ev)
		}
	}
	if v := d.take("observability"); v != nil && d.err == nil {
		if v.kind != kindMap {
			return nil, yamlErr(v.line, "observability: expected a mapping")
		}
		if err := decodeObservability(v, &s.Observability); err != nil {
			return nil, err
		}
	}
	if v := d.take("assertions"); v != nil && d.err == nil {
		if v.kind != kindSeq {
			return nil, yamlErr(v.line, "assertions: expected a sequence")
		}
		for _, item := range v.items {
			a, err := decodeAssertion(item)
			if err != nil {
				return nil, err
			}
			s.Assertions = append(s.Assertions, a)
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return s, nil
}

func decodeFleet(n *ynode, f *Fleet) error {
	d := newDec(n, "fleet")
	d.integer("nodes", &f.Nodes)
	d.integer("shards", &f.Shards)
	d.integer("pods", &f.Pods)
	d.integer("cores", &f.Cores)
	d.integer("ctrl_cores", &f.CtrlCores)
	d.integer("cache_mb", &f.CacheMB)
	d.integer("queue_depth", &f.QueueDepth)
	d.integer("burst", &f.Burst)
	d.boolean("limiter", &f.Limiter)
	d.boolean("auto_fallback", &f.AutoFallback)
	var svc, mode string
	d.str("service", &svc)
	d.str("mode", &mode)
	d.str("backend", &f.Backend)
	if err := d.finish(); err != nil {
		return err
	}
	if f.Backend != "" {
		ok := false
		for _, name := range flowtable.BackendNames() {
			if f.Backend == name {
				ok = true
				break
			}
		}
		if !ok {
			return yamlErr(n.get("backend").line,
				"fleet.backend: unknown backend %q (want %s)",
				f.Backend, strings.Join(flowtable.BackendNames(), "|"))
		}
	}
	if svc != "" {
		st, ok := serviceNames[svc]
		if !ok {
			return yamlErr(n.get("service").line,
				"fleet.service: unknown service %q (want vpc-vpc|vpc-internet|vpc-idc|vpc-cloudservice)", svc)
		}
		f.Service = st
	}
	switch mode {
	case "", "plb":
		f.Mode = pod.ModePLB
	case "rss":
		f.Mode = pod.ModeRSS
	default:
		return yamlErr(n.get("mode").line, "fleet.mode: unknown mode %q (want plb|rss)", mode)
	}
	return nil
}

func decodeWorkload(n *ynode, w *Workload) error {
	d := newDec(n, "workload")
	d.integer("flows", &w.Flows)
	d.integer("tenants", &w.Tenants)
	d.float("rate", &w.Rate)
	d.float("zipf", &w.Zipf)
	d.u64("seed", &w.Seed)
	d.integer("packet_bytes", &w.PacketBytes)
	d.boolean("deterministic", &w.Deterministic)
	d.float("acl_denied", &w.ACLDenied)
	d.str("replay", &w.Replay)
	return d.finish()
}

func decodeObservability(n *ynode, o *Observability) error {
	d := newDec(n, "observability")
	d.integer("trace_sample", &o.TraceSample)
	d.dur("trace_latency_over", &o.TraceLatencyOver)
	d.integer("trace_vni", &o.TraceVNI)
	d.boolean("trace_fault_window", &o.TraceFaultWindow)
	d.boolean("report", &o.Report)
	d.str("metrics_out", &o.MetricsOut)
	d.str("outcome_out", &o.OutcomeOut)
	d.str("record", &o.Record)
	d.str("trace_dump", &o.TraceDump)
	d.dur("snapshot_every", &o.SnapshotEvery)
	d.str("series_out", &o.SeriesOut)
	return d.finish()
}

func decodeEvent(n *ynode) (Event, error) {
	if n.kind != kindMap {
		return Event{}, yamlErr(n.line, "events: each event must be a mapping")
	}
	d := newDec(n, "event")
	var ev Event
	ev.Line = n.line
	var action string
	d.dur("at", &ev.At)
	d.str("action", &action)
	if d.err != nil {
		return Event{}, d.err
	}
	if n.get("at") == nil {
		return Event{}, yamlErr(n.line, "event: missing \"at\" time")
	}
	switch action {
	case "inject_failure":
		ev.Action = ActionInject
		var kindName string
		d.str("fault", &kindName)
		if d.err == nil && n.get("fault") == nil {
			return Event{}, yamlErr(n.line, "event: inject_failure needs a \"fault\" kind")
		}
		kind, ok := faultNames[kindName]
		if d.err == nil && !ok {
			return Event{}, yamlErr(n.get("fault").line,
				"event: unknown fault kind %q (want core-stall|core-fail|pod-crash|pod-drain|reorder-stress|rx-loss|bgp-flap|node-crash|node-drain|uplink-withdraw)", kindName)
		}
		if err := decodeFaultParams(d, n, kind, &ev); err != nil {
			return Event{}, err
		}
	case "drain":
		ev.Action = ActionDrain
		ev.Fault = faults.Fault{Kind: faults.KindNodeDrain, At: ev.At, Duration: 100 * sim.Millisecond}
		d.integer("node", &ev.Fault.Node)
		d.dur("duration", &ev.Fault.Duration)
	case "flap":
		ev.Action = ActionFlap
		ev.Fault = faults.Fault{Kind: faults.KindBGPFlap, At: ev.At, Duration: 500 * sim.Millisecond}
		d.integer("node", &ev.Fault.Node)
		d.dur("duration", &ev.Fault.Duration)
	case "ramp":
		ev.Action = ActionRamp
		d.float("rate", &ev.Rate)
		if d.err == nil && n.get("rate") == nil {
			return Event{}, yamlErr(n.line, "event: ramp needs a \"rate\"")
		}
	case "spec_update":
		ev.Action = ActionSpecUpdate
		ev.Member = -1
		d.integer("member", &ev.Member)
		if d.err == nil && n.get("member") == nil {
			return Event{}, yamlErr(n.line, "event: spec_update needs a \"member\" slot")
		}
		d.float("weight", &ev.Entry.Weight)
		d.integer("pods", &ev.Entry.Pods)
		d.str("admin", &ev.Entry.Admin)
		d.str("backend", &ev.Entry.Backend)
	case "":
		return Event{}, yamlErr(n.line, "event: missing \"action\"")
	default:
		return Event{}, yamlErr(n.get("action").line,
			"event: unknown action %q (want inject_failure|drain|flap|ramp|spec_update)", action)
	}
	if err := d.finish(); err != nil {
		return Event{}, err
	}
	return ev, nil
}

// decodeFaultParams decodes the kind-specific parameters of an
// inject_failure event. Each kind accepts only its own vocabulary, so a
// misplaced parameter (say, "core" on a node-crash) is an error rather
// than silently ignored.
func decodeFaultParams(d *dec, n *ynode, kind faults.Kind, ev *Event) error {
	f := &ev.Fault
	f.Kind = kind
	f.At = ev.At
	d.integer("node", &f.Node)
	switch kind {
	case faults.KindCoreStall:
		f.Factor = 10
		f.Duration = 5 * sim.Millisecond
		d.integer("pod", &f.Pod)
		d.integer("core", &f.Core)
		d.float("factor", &f.Factor)
		d.dur("duration", &f.Duration)
	case faults.KindCoreFail:
		f.Duration = 10 * sim.Millisecond
		d.integer("pod", &f.Pod)
		d.integer("core", &f.Core)
		d.dur("duration", &f.Duration)
	case faults.KindPodCrash, faults.KindPodDrain:
		d.integer("pod", &f.Pod)
		d.dur("restart", &f.Duration)
	case faults.KindReorderStress:
		f.HoldHeads = true
		f.Duration = 5 * sim.Millisecond
		d.integer("pod", &f.Pod)
		d.integer("queue", &f.Queue)
		d.dur("duration", &f.Duration)
		d.boolean("hold_heads", &f.HoldHeads)
		d.integer("depth_clamp", &f.DepthClamp)
	case faults.KindRxLoss:
		f.Factor = 0.5
		f.Duration = 5 * sim.Millisecond
		d.integer("pod", &f.Pod)
		d.integer("core", &f.Core)
		d.float("prob", &f.Factor)
		d.dur("duration", &f.Duration)
	case faults.KindBGPFlap:
		f.Duration = 500 * sim.Millisecond
		d.dur("duration", &f.Duration)
	case faults.KindNodeCrash:
		d.dur("duration", &f.Duration)
	case faults.KindNodeDrain, faults.KindUplinkWithdraw:
		f.Duration = 100 * sim.Millisecond
		d.dur("duration", &f.Duration)
	}
	return nil
}

func decodeAssertion(n *ynode) (Assertion, error) {
	if n.kind != kindMap {
		return Assertion{}, yamlErr(n.line, "assertions: each assertion must be a mapping")
	}
	d := newDec(n, "assertion")
	a := Assertion{Line: n.line}
	d.str("type", &a.Type)
	if d.err == nil && n.get("type") == nil {
		return Assertion{}, yamlErr(n.line, "assertion: missing \"type\"")
	}
	switch a.Type {
	case "conservation", "zero_loss", "replay_identity", "reconciled":
		// No parameters.
	case "max_loss":
		d.float("fraction", &a.Fraction)
		if d.err == nil && n.get("fraction") == nil {
			return Assertion{}, yamlErr(n.line, "assertion: max_loss needs a \"fraction\"")
		}
	case "remap_bound":
		a.Factor = 2
		d.float("factor", &a.Factor)
	case "detection_window":
		a.Margin = 2
		d.float("margin", &a.Margin)
	case "latency":
		a.Quantile = 0.99
		d.float("quantile", &a.Quantile)
		d.dur("max", &a.Max)
		if d.err == nil && n.get("max") == nil {
			return Assertion{}, yamlErr(n.line, "assertion: latency needs a \"max\" ceiling")
		}
	case "min_tx":
		d.u64("count", &a.Count)
		if d.err == nil && n.get("count") == nil {
			return Assertion{}, yamlErr(n.line, "assertion: min_tx needs a \"count\"")
		}
	case "expected_table":
		a.Pods = -1
		a.MaxMoved = -1
		d.integer("pods", &a.Pods)
		d.integer("max_moved", &a.MaxMoved)
		if d.err == nil && n.get("pods") == nil && n.get("max_moved") == nil {
			return Assertion{}, yamlErr(n.line,
				"assertion: expected_table needs \"pods\" and/or \"max_moved\"")
		}
	case "byte_identity":
		a.Runs = 2
		d.integer("runs", &a.Runs)
		if v := d.take("shards"); v != nil && d.err == nil {
			if v.kind != kindSeq {
				return Assertion{}, yamlErr(v.line, "assertion: byte_identity \"shards\" must be a sequence (e.g. [1, 4])")
			}
			for _, item := range v.items {
				if item.kind != kindScalar {
					return Assertion{}, yamlErr(item.line, "assertion: byte_identity shard counts must be integers")
				}
				k, err := strconv.Atoi(item.scalar)
				if err != nil {
					return Assertion{}, yamlErr(item.line, "assertion: byte_identity shard count %q is not an integer", item.scalar)
				}
				a.Shards = append(a.Shards, k)
			}
		}
	case "converge":
		a.Tolerance = 0.05
		d.str("series", &a.Series)
		d.dur("within", &a.Within)
		d.float("tolerance", &a.Tolerance)
		if d.err == nil && n.get("series") == nil {
			return Assertion{}, yamlErr(n.line, "assertion: converge needs a \"series\" column key")
		}
		if d.err == nil && n.get("within") == nil {
			return Assertion{}, yamlErr(n.line, "assertion: converge needs a \"within\" deadline")
		}
	case "window_max":
		d.str("series", &a.Series)
		d.dur("from", &a.From)
		d.dur("to", &a.To)
		d.float("max_value", &a.MaxValue)
		if d.err == nil && n.get("series") == nil {
			return Assertion{}, yamlErr(n.line, "assertion: window_max needs a \"series\" column key")
		}
		if d.err == nil && n.get("max_value") == nil {
			return Assertion{}, yamlErr(n.line, "assertion: window_max needs a \"max_value\" ceiling")
		}
	default:
		return Assertion{}, yamlErr(n.get("type").line,
			"assertion: unknown type %q (want conservation|zero_loss|max_loss|remap_bound|detection_window|latency|min_tx|expected_table|byte_identity|replay_identity|converge|window_max|reconciled)", a.Type)
	}
	if err := d.finish(); err != nil {
		return Assertion{}, err
	}
	return a, nil
}

// Validate checks a scenario's semantic shape: required fields, index
// ranges, event and assertion parameters, and the compiled fault plan.
// Every violation wraps errs.BadConfig.
func (s *Scenario) Validate() error {
	bad := func(line int, format string, args ...any) error {
		if line > 0 {
			return yamlErr(line, format, args...)
		}
		return fmt.Errorf("scenario: %s: %w", fmt.Sprintf(format, args...), errs.BadConfig)
	}
	if s.Name == "" {
		return bad(0, "missing name")
	}
	if s.Duration <= 0 {
		return bad(0, "%s: duration must be positive", s.Name)
	}
	f := &s.Fleet
	if f.Nodes < 1 {
		return bad(0, "%s: fleet.nodes must be >= 1", s.Name)
	}
	if f.Shards < 0 {
		return bad(0, "%s: fleet.shards must be >= 0", s.Name)
	}
	if f.Pods < 1 {
		return bad(0, "%s: fleet.pods must be >= 1", s.Name)
	}
	if f.Cores < 1 || f.CtrlCores < 1 {
		return bad(0, "%s: fleet.cores and fleet.ctrl_cores must be >= 1", s.Name)
	}
	if f.CacheMB < 0 {
		return bad(0, "%s: fleet.cache_mb must be >= 0", s.Name)
	}
	if f.Burst < 0 {
		return bad(0, "%s: fleet.burst must be >= 0", s.Name)
	}
	if f.Burst > 1 {
		o := &s.Observability
		if o.TraceSample > 0 || o.TraceDump != "" || o.TraceLatencyOver > 0 ||
			o.TraceVNI >= 0 || o.TraceFaultWindow {
			return bad(0, "%s: fleet.burst > 1 disables the flight recorder; remove the trace observability keys", s.Name)
		}
	}
	w := &s.Workload
	if w.Replay == "" {
		if w.Flows < 1 {
			return bad(0, "%s: workload.flows must be >= 1 (or set workload.replay)", s.Name)
		}
		if w.Rate <= 0 {
			return bad(0, "%s: workload.rate must be positive (or set workload.replay)", s.Name)
		}
	}
	if w.Zipf < 0 {
		return bad(0, "%s: workload.zipf must be >= 0", s.Name)
	}
	if s.Observability.SnapshotEvery < 0 {
		return bad(0, "%s: observability.snapshot_every must be >= 0", s.Name)
	}
	if s.Observability.SeriesOut != "" && s.Observability.SnapshotEvery <= 0 {
		return bad(0, "%s: observability.series_out requires snapshot_every", s.Name)
	}
	if w.ACLDenied < 0 || w.ACLDenied > 1 {
		return bad(0, "%s: workload.acl_denied must be in [0,1]", s.Name)
	}
	if s.Spec != nil {
		if err := s.Spec.validate(f.Nodes); err != nil {
			return err
		}
	}
	for i, ev := range s.Events {
		if ev.Action == ActionSpecUpdate {
			if s.Spec == nil {
				return bad(ev.Line, "%s: event %d: spec_update requires a top-level spec block", s.Name, i)
			}
			if ev.Member < 0 {
				return bad(ev.Line, "%s: event %d: spec_update member must be >= 0", s.Name, i)
			}
			probe := controlplane.ClusterSpec{Members: []controlplane.MemberSpec{ev.Entry}}
			if err := probe.Validate(); err != nil {
				return bad(ev.Line, "%s: event %d: %v", s.Name, i, err)
			}
			continue
		}
		if ev.Action == ActionRamp {
			if ev.Rate < 0 {
				return bad(ev.Line, "%s: event %d: ramp rate must be >= 0", s.Name, i)
			}
			if w.Replay != "" {
				return bad(ev.Line, "%s: event %d: ramp has no effect on a trace replay", s.Name, i)
			}
			continue
		}
		if ev.Fault.Node >= f.Nodes {
			return bad(ev.Line, "%s: event %d: node %d out of range [0,%d)", s.Name, i, ev.Fault.Node, f.Nodes)
		}
		if ev.Fault.Pod >= f.Pods {
			return bad(ev.Line, "%s: event %d: pod %d out of range [0,%d)", s.Name, i, ev.Fault.Pod, f.Pods)
		}
		if ev.Fault.Core >= f.Cores {
			return bad(ev.Line, "%s: event %d: core %d out of range [0,%d)", s.Name, i, ev.Fault.Core, f.Cores)
		}
	}
	if plan := s.FaultPlan(); plan != nil {
		if err := plan.Validate(); err != nil {
			return err
		}
	}
	for i, a := range s.Assertions {
		switch a.Type {
		case "max_loss":
			if a.Fraction <= 0 || a.Fraction > 1 {
				return bad(a.Line, "%s: assertion %d: max_loss fraction must be in (0,1]", s.Name, i)
			}
		case "remap_bound":
			if a.Factor <= 0 {
				return bad(a.Line, "%s: assertion %d: remap_bound factor must be positive", s.Name, i)
			}
		case "detection_window":
			if a.Margin <= 0 {
				return bad(a.Line, "%s: assertion %d: detection_window margin must be positive", s.Name, i)
			}
		case "latency":
			if a.Quantile <= 0 || a.Quantile >= 1 {
				return bad(a.Line, "%s: assertion %d: latency quantile must be in (0,1)", s.Name, i)
			}
			if a.Max <= 0 {
				return bad(a.Line, "%s: assertion %d: latency max must be positive", s.Name, i)
			}
		case "min_tx":
			if a.Count < 1 {
				return bad(a.Line, "%s: assertion %d: min_tx count must be >= 1", s.Name, i)
			}
		case "expected_table":
			if s.Fleet.Backend == "" {
				return bad(a.Line, "%s: assertion %d: expected_table requires fleet.backend", s.Name, i)
			}
			if a.Pods < 0 && a.MaxMoved < 0 {
				return bad(a.Line, "%s: assertion %d: expected_table needs pods >= 0 and/or max_moved >= 0", s.Name, i)
			}
		case "byte_identity":
			if a.Runs < 1 {
				return bad(a.Line, "%s: assertion %d: byte_identity runs must be >= 1", s.Name, i)
			}
			for _, k := range a.Shards {
				if k < 0 {
					return bad(a.Line, "%s: assertion %d: byte_identity shard counts must be >= 0", s.Name, i)
				}
			}
		case "converge":
			if s.Observability.SnapshotEvery <= 0 {
				return bad(a.Line, "%s: assertion %d: converge requires observability.snapshot_every", s.Name, i)
			}
			if a.Series == "" {
				return bad(a.Line, "%s: assertion %d: converge series must be non-empty", s.Name, i)
			}
			if a.Within <= 0 {
				return bad(a.Line, "%s: assertion %d: converge within must be positive", s.Name, i)
			}
			if a.Tolerance <= 0 {
				return bad(a.Line, "%s: assertion %d: converge tolerance must be positive", s.Name, i)
			}
			if len(s.Events) == 0 {
				return bad(a.Line, "%s: assertion %d: converge needs at least one event to recover from", s.Name, i)
			}
		case "window_max":
			if s.Observability.SnapshotEvery <= 0 {
				return bad(a.Line, "%s: assertion %d: window_max requires observability.snapshot_every", s.Name, i)
			}
			if a.Series == "" {
				return bad(a.Line, "%s: assertion %d: window_max series must be non-empty", s.Name, i)
			}
			if a.From < 0 || (a.To != 0 && a.To <= a.From) {
				return bad(a.Line, "%s: assertion %d: window_max window [from,to] is empty", s.Name, i)
			}
		case "reconciled":
			if s.Spec == nil {
				return bad(a.Line, "%s: assertion %d: reconciled requires a top-level spec block", s.Name, i)
			}
		case "conservation", "zero_loss", "replay_identity":
			// No parameters to validate.
		case "":
			return bad(a.Line, "%s: assertion %d: missing type", s.Name, i)
		default:
			return bad(a.Line, "%s: assertion %d: unknown type %q", s.Name, i, a.Type)
		}
	}
	return nil
}

// FaultPlan compiles the event script's fault events into a deterministic
// fault plan (nil when the script injects nothing).
func (s *Scenario) FaultPlan() *faults.Plan {
	var plan faults.Plan
	for _, ev := range s.Events {
		if ev.Action == ActionRamp || ev.Action == ActionSpecUpdate {
			continue
		}
		plan.Faults = append(plan.Faults, ev.Fault)
	}
	if len(plan.Faults) == 0 {
		return nil
	}
	return &plan
}
