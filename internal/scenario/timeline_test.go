package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"albatross/internal/errs"
	"albatross/internal/sim"
)

// crashDrillDoc is a NodeCrash drill with timeline sampling; the converge
// window is generous: BFD withdraws the route within its 200ms detection
// window, after which the survivors restore availability.
const crashDrillDoc = `
name: converge-drill
seed: 1
duration: 300ms
drain: 5ms
fleet:
  nodes: 3
  shards: 1
workload:
  flows: 2000
  tenants: 40
  rate: 3e5
events:
  - at: 20ms
    action: inject_failure
    fault: node-crash
    node: 1
    duration: 400ms
observability:
  snapshot_every: 10ms
assertions:
  - type: converge
    series: availability
    within: 250ms
    tolerance: 0.05
  - type: window_max
    series: albatross_cluster_switch_drops_total
    max_value: 0
`

func TestConvergeAssertionPasses(t *testing.T) {
	s, err := Load([]byte(crashDrillDoc))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if s.Observability.SnapshotEvery != 10*sim.Millisecond {
		t.Fatalf("snapshot_every = %v", s.Observability.SnapshotEvery)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.OK() {
		t.Fatalf("converge drill failed:\n%s", res.Report)
	}
	if !strings.Contains(res.Report, "series      every=10ms ticks=") {
		t.Fatalf("report missing series fingerprint line:\n%s", res.Report)
	}
	if !strings.Contains(res.Outcome, "series/fnv64a | ") {
		t.Fatalf("outcome missing series checksum line:\n%s", res.Outcome)
	}
}

// TestConvergeAssertionFailsOnTightWindow is the acceptance-criterion
// proof: the same drill must FAIL when the declared window is shorter than
// the BFD detection time, so a gameday drill really does gate on recovery
// trajectory, not just end state.
func TestConvergeAssertionFailsOnTightWindow(t *testing.T) {
	s, err := Load([]byte(crashDrillDoc))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	s.Assertions = []Assertion{{
		Type: "converge", Series: "availability",
		Within:    10 * sim.Millisecond, // far inside the 200ms BFD window
		Tolerance: 0.05,
	}}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.OK() {
		t.Fatalf("impossibly tight converge window passed:\n%s", res.Report)
	}
	if res.Failed != 1 {
		t.Fatalf("failed = %d, want 1:\n%s", res.Failed, res.Report)
	}
}

func TestWindowMaxFailsOnExceededCeiling(t *testing.T) {
	s, err := Load([]byte(crashDrillDoc))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Blackholed packets definitely appear during the detection window:
	// a zero ceiling over that window must fail.
	s.Assertions = []Assertion{{
		Type: "window_max", Series: "albatross_cluster_blackholed_packets_total",
		From: 20 * sim.Millisecond, To: 250 * sim.Millisecond, MaxValue: 0,
	}}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.OK() {
		t.Fatalf("window_max with zero ceiling over the blackhole window passed:\n%s", res.Report)
	}
}

func TestSeriesOutWritesExports(t *testing.T) {
	s, err := Load([]byte(crashDrillDoc))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	dir := t.TempDir()
	prefix := filepath.Join(dir, "series")
	s.Observability.SeriesOut = prefix
	if _, err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	csv, err := os.ReadFile(prefix + ".csv")
	if err != nil {
		t.Fatalf("series CSV not written: %v", err)
	}
	if !strings.HasPrefix(string(csv), "t_ms,") || !strings.Contains(string(csv), "availability") {
		t.Fatalf("series CSV malformed:\n%s", string(csv)[:120])
	}
	if _, err := os.ReadFile(prefix + ".json"); err != nil {
		t.Fatalf("series JSON not written: %v", err)
	}

	// Repeat run: the exported files are byte-identical.
	prefix2 := filepath.Join(dir, "series2")
	s.Observability.SeriesOut = prefix2
	if _, err := s.Run(); err != nil {
		t.Fatalf("Run 2: %v", err)
	}
	csv2, err := os.ReadFile(prefix2 + ".csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(csv) != string(csv2) {
		t.Fatal("series CSV differs across repeat runs")
	}
}

func TestTimelineDecodeAndValidateRejects(t *testing.T) {
	base := `
name: x
duration: 10ms
fleet:
  nodes: 2
workload:
  flows: 100
  tenants: 5
  rate: 1e5
`
	cases := []struct {
		name, doc, want string
	}{
		{"converge without snapshot_every", base + `
events:
  - at: 2ms
    action: drain
    node: 0
assertions:
  - type: converge
    series: availability
    within: 5ms
`, "requires observability.snapshot_every"},
		{"converge without events", base + `
observability:
  snapshot_every: 1ms
assertions:
  - type: converge
    series: availability
    within: 5ms
`, "at least one event"},
		{"converge missing series", base + `
observability:
  snapshot_every: 1ms
assertions:
  - type: converge
    within: 5ms
`, "needs a \"series\""},
		{"converge missing within", base + `
observability:
  snapshot_every: 1ms
assertions:
  - type: converge
    series: availability
`, "needs a \"within\""},
		{"window_max missing max_value", base + `
observability:
  snapshot_every: 1ms
assertions:
  - type: window_max
    series: availability
`, "needs a \"max_value\""},
		{"window_max empty window", base + `
observability:
  snapshot_every: 1ms
assertions:
  - type: window_max
    series: availability
    from: 5ms
    to: 2ms
    max_value: 1
`, "window [from,to] is empty"},
		{"series_out without snapshot_every", base + `
observability:
  series_out: /tmp/x
`, "series_out requires snapshot_every"},
		{"negative snapshot_every", base + `
observability:
  snapshot_every: -1ms
`, "negative duration"},
	}
	for _, tc := range cases {
		_, err := Load([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: Load accepted the document", tc.name)
			continue
		}
		if !errors.Is(err, errs.BadConfig) {
			t.Errorf("%s: error does not wrap BadConfig: %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestUnknownSeriesFailsDeterministically pins the miss path: a converge
// assertion naming a nonexistent column fails (not errors) with the
// available keys listed.
func TestUnknownSeriesFailsDeterministically(t *testing.T) {
	s, err := Load([]byte(crashDrillDoc))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	s.Assertions = []Assertion{{
		Type: "converge", Series: "nope", Within: 100 * sim.Millisecond, Tolerance: 0.05,
	}}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.OK() {
		t.Fatal("unknown series passed")
	}
	if !strings.Contains(res.Checks[0].Detail, `unknown series "nope"`) ||
		!strings.Contains(res.Checks[0].Detail, "availability") {
		t.Fatalf("detail not helpful: %s", res.Checks[0].Detail)
	}
}
