package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"albatross/internal/cluster"
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/sim"
	"albatross/internal/stats"
)

// measurement is the post-run telemetry the assertion layer reads: every
// counter is summed across members and pods, and per-stage balance is the
// conjunction over every drained pipeline.
type measurement struct {
	tx, redirected                               uint64
	nicDrops, queueDrops, plbDrops, serviceDrops uint64
	headerDrops, rxLost, faultLost, crashDrops   uint64
	stagesBalanced                               bool
	latP50, latP99, latP999                      int64
	// latWorst holds the worst (highest) per-node latency at the three
	// standard quantiles; latQ evaluates arbitrary quantiles on demand.
	cl *cluster.Cluster
}

func measure(cl *cluster.Cluster) measurement {
	m := measurement{stagesBalanced: true, cl: cl}
	for _, mem := range cl.Members() {
		for _, pr := range mem.Node.Pods() {
			m.tx += pr.Tx
			m.redirected += pr.Redirected
			m.nicDrops += pr.NICDrops
			m.queueDrops += pr.QueueDrops
			m.plbDrops += pr.PLBDrops
			m.serviceDrops += pr.ServiceDrop
			m.headerDrops += pr.HeaderDrops
			m.rxLost += pr.RxLost
			m.faultLost += pr.FaultLost
			m.crashDrops += pr.CrashDrops
			if _, ok := stats.StageBalance(pr.Stages()); !ok {
				m.stagesBalanced = false
			}
		}
		pr := mem.Node.Pods()[0]
		if q := pr.Latency.Quantile(0.50); q > m.latP50 {
			m.latP50 = q
		}
		if q := pr.Latency.Quantile(0.99); q > m.latP99 {
			m.latP99 = q
		}
		if q := pr.Latency.Quantile(0.999); q > m.latP999 {
			m.latP999 = q
		}
	}
	return m
}

// latQ returns the worst per-node ingress-pod latency at quantile q.
func (m *measurement) latQ(q float64) int64 {
	var worst int64
	for _, mem := range m.cl.Members() {
		if v := mem.Node.Pods()[0].Latency.Quantile(q); v > worst {
			worst = v
		}
	}
	return worst
}

// podDrops sums every in-pipeline drop category.
func (m *measurement) podDrops() uint64 {
	return m.nicDrops + m.queueDrops + m.plbDrops + m.serviceDrops +
		m.headerDrops + m.rxLost + m.faultLost + m.crashDrops
}

// evaluate runs the scenario's assertion block against a completed run.
// Identity assertions re-execute the scenario (fresh clusters, same
// seed), so their cost is opt-in per scenario.
func (s *Scenario) evaluate(st *runState, outcome string) []Check {
	cl := st.cl
	m := measure(cl)
	delivered := m.tx
	loss := cl.Sprayed - delivered
	checks := make([]Check, 0, len(s.Assertions))
	for _, a := range s.Assertions {
		c := Check{Assertion: a}
		switch a.Type {
		case "conservation":
			accounted := delivered + m.podDrops() + cl.Blackholed() + cl.Drops
			c.OK = m.stagesBalanced && cl.Sprayed == accounted
			c.Detail = fmt.Sprintf("sprayed %d = delivered %d + pod-drops %d + blackholed %d + switch-drops %d (stages balanced: %v)",
				cl.Sprayed, delivered, m.podDrops(), cl.Blackholed(), cl.Drops, m.stagesBalanced)
		case "zero_loss":
			c.OK = loss == 0
			c.Detail = fmt.Sprintf("lost %d of %d sprayed", loss, cl.Sprayed)
		case "max_loss":
			bound := uint64(a.Fraction * float64(cl.Sprayed))
			c.OK = loss <= bound
			c.Detail = fmt.Sprintf("lost %d of %d sprayed, bound %d (fraction %g)",
				loss, cl.Sprayed, bound, a.Fraction)
		case "remap_bound":
			bound := uint64(a.Factor / float64(s.Fleet.Nodes) * float64(cl.Sprayed))
			c.OK = cl.Remapped <= bound
			c.Detail = fmt.Sprintf("remapped %d of %d sprayed, bound %d (%g/N, N=%d)",
				cl.Remapped, cl.Sprayed, bound, a.Factor, s.Fleet.Nodes)
		case "detection_window":
			bound := s.detectionBound(st, a.Margin)
			c.OK = cl.Blackholed() <= bound
			c.Detail = fmt.Sprintf("blackholed %d, bound %d (margin %g over the BFD window)",
				cl.Blackholed(), bound, a.Margin)
		case "latency":
			got := m.latQ(a.Quantile)
			c.OK = got <= int64(a.Max)
			c.Detail = fmt.Sprintf("worst-node p%g = %.1fµs, ceiling %.1fµs",
				a.Quantile*100, float64(got)/1000, float64(a.Max)/1000)
		case "min_tx":
			c.OK = delivered >= a.Count
			c.Detail = fmt.Sprintf("delivered %d, floor %d", delivered, a.Count)
		case "expected_table":
			c.OK, c.Detail = s.checkExpectedTable(st, a)
		case "converge":
			c.OK, c.Detail = s.checkConverge(st, a)
		case "window_max":
			c.OK, c.Detail = s.checkWindowMax(st, a)
		case "byte_identity":
			c.OK, c.Detail = s.checkByteIdentity(a, st)
		case "replay_identity":
			c.OK, c.Detail = s.checkReplayIdentity(st)
		case "reconciled":
			c.OK, c.Detail = checkReconciled(st)
		}
		checks = append(checks, c)
	}
	return checks
}

// detectionBound computes the packet budget for blackholed loss: for each
// scripted crash or flap, arrivals that can hit the dead link before BFD
// withdraws the route — the member's traffic share times the smaller of
// the fault length and the detection window — scaled by the margin. A
// scenario with no crash/flap events gets a zero bound: any blackholed
// packet fails the assertion.
func (s *Scenario) detectionBound(st *runState, margin float64) uint64 {
	members := st.cl.Members()
	if len(members) == 0 {
		return 0
	}
	window := members[0].Node.Uplink().DetectionWindow()
	rate := s.maxRate(st)
	var bound float64
	for _, ev := range s.Events {
		k := ev.Fault.Kind
		if k != faults.KindNodeCrash && k != faults.KindBGPFlap {
			continue
		}
		exposure := window
		if ev.Fault.Duration > 0 && ev.Fault.Duration < exposure {
			exposure = ev.Fault.Duration
		}
		bound += rate * (float64(exposure) / float64(sim.Second)) / float64(s.Fleet.Nodes)
	}
	return uint64(margin * bound)
}

// checkExpectedTable inspects every member's flow-table backend after the
// run: the pod pool must have converged to the expected size (pods, -1 to
// skip), and the cumulative flows moved by pool updates — the Concury
// disruption metric — must not exceed max_moved (-1 for no ceiling). The
// worst member decides the verdict; the detail reports per-member values in
// member order so it stays deterministic.
func (s *Scenario) checkExpectedTable(st *runState, a Assertion) (bool, string) {
	ok := true
	var pools, moved []string
	for _, mem := range st.cl.Members() {
		be := mem.Node.Backend()
		if be == nil {
			return false, "node has no flow-table backend (internal error: validation requires fleet.backend)"
		}
		p := len(be.Pool())
		mv := be.Stats().Moved
		if a.Pods >= 0 && p != a.Pods {
			ok = false
		}
		if a.MaxMoved >= 0 && mv > uint64(a.MaxMoved) {
			ok = false
		}
		pools = append(pools, fmt.Sprintf("%d", p))
		moved = append(moved, fmt.Sprintf("%d", mv))
	}
	detail := fmt.Sprintf("%s pool=[%s]", s.Fleet.Backend, strings.Join(pools, " "))
	if a.Pods >= 0 {
		detail += fmt.Sprintf(" want %d", a.Pods)
	}
	detail += fmt.Sprintf(", moved=[%s]", strings.Join(moved, " "))
	if a.MaxMoved >= 0 {
		detail += fmt.Sprintf(" ceiling %d", a.MaxMoved)
	}
	return ok, detail
}

// timelineSeries resolves one named column of the run's timeline, with a
// deterministic failure detail when sampling is off or the key is unknown.
func timelineSeries(st *runState, key string) ([]sim.Time, []float64, string) {
	tl := st.cl.Timeline()
	if tl == nil {
		return nil, nil, "timeline not sampled (internal error: validation requires snapshot_every)"
	}
	vals, ok := tl.Values(key)
	if !ok {
		return nil, nil, fmt.Sprintf("unknown series %q (columns: %s)", key, strings.Join(tl.Keys(), ", "))
	}
	return tl.Ticks(), vals, ""
}

// checkConverge verifies a recovery trajectory: the named series must
// return to — and stay within tolerance of — its pre-event baseline (the
// mean over ticks before the first scripted event) no later than `within`
// after the last scripted event fires.
func (s *Scenario) checkConverge(st *runState, a Assertion) (bool, string) {
	ticks, vals, detail := timelineSeries(st, a.Series)
	if detail != "" {
		return false, detail
	}
	firstAt, lastAt := s.Events[0].At, s.Events[0].At
	for _, ev := range s.Events[1:] {
		if ev.At < firstAt {
			firstAt = ev.At
		}
		if ev.At > lastAt {
			lastAt = ev.At
		}
	}
	var baseline float64
	n := 0
	for i, t := range ticks {
		if sim.Duration(t) < firstAt {
			baseline += vals[i]
			n++
		}
	}
	if n == 0 {
		return false, fmt.Sprintf("no ticks before the first event at t=%v (shrink snapshot_every below it)", firstAt)
	}
	baseline /= float64(n)
	// Walk backwards: conv is the earliest tick at/after the last event
	// from which the series never leaves the tolerance band again.
	conv := -1
	for i := len(ticks) - 1; i >= 0; i-- {
		v := vals[i] - baseline
		if v < -a.Tolerance || v > a.Tolerance {
			break
		}
		if sim.Duration(ticks[i]) >= lastAt {
			conv = i
		}
	}
	if conv < 0 {
		return false, fmt.Sprintf("series %q never re-entered baseline %.6g ±%g after the last event (t=%v)",
			a.Series, baseline, a.Tolerance, lastAt)
	}
	took := sim.Duration(ticks[conv]) - lastAt
	ok := took <= a.Within
	return ok, fmt.Sprintf("series %q back to baseline %.6g ±%g in %v after the last event (t=%v), deadline %v",
		a.Series, baseline, a.Tolerance, took, lastAt, a.Within)
}

// checkWindowMax verifies a ceiling on the named series over the virtual
// window [from, to] (to=0 runs to the end of the recording).
func (s *Scenario) checkWindowMax(st *runState, a Assertion) (bool, string) {
	ticks, vals, detail := timelineSeries(st, a.Series)
	if detail != "" {
		return false, detail
	}
	to := a.To
	if to == 0 && len(ticks) > 0 {
		to = sim.Duration(ticks[len(ticks)-1])
	}
	worst, n := 0.0, 0
	for i, t := range ticks {
		if sim.Duration(t) < a.From || sim.Duration(t) > to {
			continue
		}
		if n == 0 || vals[i] > worst {
			worst = vals[i]
		}
		n++
	}
	if n == 0 {
		return false, fmt.Sprintf("series %q has no ticks in [%v, %v] (snapshot_every too coarse?)",
			a.Series, a.From, to)
	}
	ok := worst <= a.MaxValue
	return ok, fmt.Sprintf("series %q max %.6g over [%v, %v] (%d ticks), ceiling %g",
		a.Series, worst, a.From, to, n, a.MaxValue)
}

// checkByteIdentity re-executes the scenario (fresh deployments, same
// seed) a.Runs-1 extra times and once per extra shard count, requiring
// every identity document — outcome report plus reconciler step log — to
// match the first byte for byte.
func (s *Scenario) checkByteIdentity(a Assertion, st *runState) (bool, string) {
	doc := st.identityDoc()
	for run := 1; run < a.Runs; run++ {
		st2, err := s.exec(s.Fleet.Shards, false, nil)
		if err != nil {
			return false, fmt.Sprintf("repeat run %d failed: %v", run, err)
		}
		if got := st2.identityDoc(); got != doc {
			return false, fmt.Sprintf("repeat run %d outcome diverged (%d vs %d bytes)",
				run, len(got), len(doc))
		}
	}
	for _, k := range a.Shards {
		st2, err := s.exec(k, false, nil)
		if err != nil {
			return false, fmt.Sprintf("shards=%d run failed: %v", k, err)
		}
		if got := st2.identityDoc(); got != doc {
			return false, fmt.Sprintf("shards=%d outcome diverged (%d vs %d bytes)",
				k, len(got), len(doc))
		}
	}
	return true, fmt.Sprintf("%d run(s) and shard counts %v byte-identical (outcome %d bytes)",
		a.Runs, a.Shards, len(doc))
}

// checkReplayIdentity replays the run's recorded injection schedule into
// a fresh deployment and requires the identity document — outcome plus
// reconciler step log — to match the live run.
func (s *Scenario) checkReplayIdentity(st *runState) (bool, string) {
	if st.rec == nil {
		return false, "no recorded trace (internal error)"
	}
	doc := st.identityDoc()
	tr := st.rec.Trace()
	rerun, err := s.exec(s.Fleet.Shards, false, tr)
	if err != nil {
		return false, fmt.Sprintf("replay run failed: %v", err)
	}
	if rerun.replayed != len(tr.Events) {
		return false, fmt.Sprintf("replay injected %d of %d recorded events (raise duration)",
			rerun.replayed, len(tr.Events))
	}
	if got := rerun.identityDoc(); got != doc {
		return false, fmt.Sprintf("replayed outcome diverged from live run (%d vs %d bytes)",
			len(got), len(doc))
	}
	return true, fmt.Sprintf("replayed %d recorded events, outcome byte-identical (%d bytes)",
		len(tr.Events), len(doc))
}

// checkReconciled verifies the control plane finished its job: the
// reconciler converged to the final spec, applied every step cleanly, and
// every spec_update was accepted.
func checkReconciled(st *runState) (bool, string) {
	if st.recon == nil {
		return false, "no reconciler ran (internal error: validation requires a spec block)"
	}
	errSteps := 0
	for _, step := range st.recon.Steps() {
		if step.Err != nil {
			errSteps++
		}
	}
	ok := st.recon.Converged() && errSteps == 0 && len(st.specErrs) == 0
	return ok, fmt.Sprintf("%s; %d errored step(s), %d rejected spec_update(s)",
		st.recon.Summary(), errSteps, len(st.specErrs))
}

// journeyJSON is the on-disk form of one committed packet journey
// (matching the albatross-sim -trace-dump format).
type journeyJSON struct {
	Pod    string            `json:"pod"`
	VNI    uint32            `json:"vni"`
	Flow   string            `json:"flow"`
	Bytes  int               `json:"bytes"`
	T0NS   int64             `json:"t0_ns"`
	EndNS  int64             `json:"end_ns"`
	Reason string            `json:"reason"`
	Core   int32             `json:"core"`
	ViaPLB bool              `json:"via_plb"`
	PSN    uint16            `json:"psn,omitempty"`
	OrdQ   uint8             `json:"ordq,omitempty"`
	Steps  []journeyStepJSON `json:"steps"`
}

type journeyStepJSON struct {
	Stage   string `json:"stage"`
	Verdict string `json:"verdict"`
	EnterNS int64  `json:"enter_ns"`
	LeaveNS int64  `json:"leave_ns"`
}

// dumpJourneys writes every committed flight-recorder journey to
// prefix.journeys.json in node/pod order then commit order — stable
// across repeat runs at a fixed seed.
func dumpJourneys(prefix string, cl *cluster.Cluster) error {
	names := core.StageNames()
	out := []journeyJSON{}
	for _, m := range cl.Members() {
		for pi, pr := range m.Node.Pods() {
			label := fmt.Sprintf("node%d/gw%d", m.Index, pi)
			for _, j := range pr.Flight().Journeys() {
				jj := journeyJSON{
					Pod:    label,
					VNI:    j.Flow.VNI,
					Flow:   j.Flow.Tuple.String(),
					Bytes:  j.Bytes,
					T0NS:   int64(j.T0),
					EndNS:  int64(j.End),
					Reason: j.Reason.String(),
					Core:   j.Core,
					ViaPLB: j.ViaPLB,
				}
				if j.ViaPLB {
					jj.PSN, jj.OrdQ = j.PSN, j.OrdQ
				}
				for _, st := range j.Steps[:j.NSteps] {
					jj.Steps = append(jj.Steps, journeyStepJSON{
						Stage:   names[st.Stage],
						Verdict: st.Verdict.String(),
						EnterNS: int64(st.Enter),
						LeaveNS: int64(st.Leave),
					})
				}
				out = append(out, jj)
			}
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(prefix+".journeys.json", append(data, '\n'), 0o644)
}
