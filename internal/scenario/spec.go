package scenario

import (
	"fmt"
	"os"

	"albatross/internal/controlplane"
	"albatross/internal/errs"
	"albatross/internal/sim"
)

// ReconcileSpec is a scenario's desired-state block: the ClusterSpec the
// control-plane reconciler drives the fleet toward, plus the reconcile
// loop's tuning. In a scenario file it is the top-level `spec:` mapping;
// it also loads standalone via LoadSpec / LoadSpecFile for programmatic
// use and for `albatross-sim reconcile -spec`.
type ReconcileSpec struct {
	// Interval is the reconcile tick period (0 = 5ms).
	Interval sim.Duration
	// StepsPerTick rate-limits convergence (0 = 1 step per tick).
	StepsPerTick int
	// Members is the desired per-member state, indexed by member slot.
	// Longer than fleet.nodes means the reconciler grows the cluster.
	Members []controlplane.MemberSpec
}

// ClusterSpec converts the block to the control plane's desired-state
// type.
func (r *ReconcileSpec) ClusterSpec() controlplane.ClusterSpec {
	return controlplane.ClusterSpec{Members: append([]controlplane.MemberSpec(nil), r.Members...)}
}

// Config converts the block's tuning to a reconciler config.
func (r *ReconcileSpec) Config() controlplane.Config {
	return controlplane.Config{Interval: r.Interval, StepsPerTick: r.StepsPerTick}
}

// LoadSpecFile loads, decodes, and validates a standalone desired-state
// document.
func LoadSpecFile(path string) (*ReconcileSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return LoadSpec(data)
}

// LoadSpec decodes and validates a standalone desired-state document —
// the same strict YAML dialect as scenario files, holding just the
// `spec:` block's keys at top level:
//
//	interval: 5ms
//	steps_per_tick: 1
//	members:
//	  - weight: 1.0
//	    pods: 2
//	  - admin: drained
//	  - default
//
// Unknown keys, malformed values, and semantic violations are errors
// wrapping errs.BadConfig, with source line numbers.
func LoadSpec(data []byte) (*ReconcileSpec, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	r, err := decodeSpecBlock(root, "spec")
	if err != nil {
		return nil, err
	}
	if err := r.validate(0); err != nil {
		return nil, err
	}
	return r, nil
}

// decodeSpecBlock decodes a `spec:` mapping (or a standalone spec
// document, which has the same shape).
func decodeSpecBlock(n *ynode, section string) (*ReconcileSpec, error) {
	r := &ReconcileSpec{}
	d := newDec(n, section)
	d.dur("interval", &r.Interval)
	d.integer("steps_per_tick", &r.StepsPerTick)
	if v := d.take("members"); v != nil && d.err == nil {
		if v.kind != kindSeq {
			return nil, yamlErr(v.line, "%s.members: expected a sequence", section)
		}
		for i, item := range v.items {
			m, err := decodeMemberSpec(item, fmt.Sprintf("%s.members[%d]", section, i))
			if err != nil {
				return nil, err
			}
			r.Members = append(r.Members, m)
		}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	if len(r.Members) == 0 {
		return nil, yamlErr(n.line, "%s: needs a non-empty \"members\" sequence", section)
	}
	return r, nil
}

// decodeMemberSpec decodes one desired member entry. The scalar
// `default` is a valid entry: a full-weight serving member with an
// unmanaged pod count.
func decodeMemberSpec(n *ynode, section string) (controlplane.MemberSpec, error) {
	var m controlplane.MemberSpec
	if n.kind == kindScalar && n.scalar == "default" {
		return m, nil
	}
	if n.kind != kindMap {
		return m, yamlErr(n.line, "%s: each member must be a mapping (or the scalar \"default\")", section)
	}
	d := newDec(n, section)
	d.float("weight", &m.Weight)
	d.integer("pods", &m.Pods)
	d.str("admin", &m.Admin)
	d.str("backend", &m.Backend)
	return m, d.finish()
}

// validate applies the control plane's own spec validation plus the
// scenario-level fleet-coverage rule (when nodes > 0).
func (r *ReconcileSpec) validate(nodes int) error {
	if r.Interval < 0 {
		return fmt.Errorf("spec: interval must be >= 0: %w", errs.BadConfig)
	}
	if r.StepsPerTick < 0 {
		return fmt.Errorf("spec: steps_per_tick must be >= 0: %w", errs.BadConfig)
	}
	if err := r.ClusterSpec().Validate(); err != nil {
		return err
	}
	if nodes > 0 && len(r.Members) < nodes {
		return fmt.Errorf("spec: %d members but fleet.nodes is %d — the spec must cover every member: %w",
			len(r.Members), nodes, errs.BadConfig)
	}
	return nil
}
