package scenario

import (
	"fmt"
	"os"
	"strings"

	"albatross/internal/cachesim"
	"albatross/internal/cluster"
	"albatross/internal/controlplane"
	"albatross/internal/core"
	"albatross/internal/faults"
	"albatross/internal/gop"
	"albatross/internal/pod"
	"albatross/internal/sim"
	"albatross/internal/workload"
	"albatross/internal/workload/trace"
)

// Overrides layers CLI flags over a loaded scenario: a nil field keeps
// the scenario's value. This is how every legacy albatross-sim flag maps
// onto the declarative format without editing the file.
type Overrides struct {
	Seed       *uint64
	Nodes      *int
	Shards     *int
	Flows      *int
	Rate       *float64
	Duration   *sim.Duration
	CacheMB    *int
	Backend    *string
	Burst      *int
	Report     *bool
	MetricsOut *string
	OutcomeOut *string
	Record     *string
	TraceDump  *string
	Replay     *string

	SnapshotEvery *sim.Duration
	SeriesOut     *string
}

// Apply returns a copy of s with the overrides layered on top.
func (s *Scenario) Apply(ov Overrides) *Scenario {
	out := *s
	out.Events = append([]Event(nil), s.Events...)
	out.Assertions = append([]Assertion(nil), s.Assertions...)
	if ov.Seed != nil {
		out.Seed = *ov.Seed
	}
	if ov.Nodes != nil {
		out.Fleet.Nodes = *ov.Nodes
	}
	if ov.Shards != nil {
		out.Fleet.Shards = *ov.Shards
	}
	if ov.Flows != nil {
		out.Workload.Flows = *ov.Flows
	}
	if ov.Rate != nil {
		out.Workload.Rate = *ov.Rate
	}
	if ov.Duration != nil {
		out.Duration = *ov.Duration
	}
	if ov.CacheMB != nil {
		out.Fleet.CacheMB = *ov.CacheMB
	}
	if ov.Backend != nil {
		out.Fleet.Backend = *ov.Backend
	}
	if ov.Burst != nil {
		out.Fleet.Burst = *ov.Burst
	}
	if ov.Report != nil {
		out.Observability.Report = *ov.Report
	}
	if ov.MetricsOut != nil {
		out.Observability.MetricsOut = *ov.MetricsOut
	}
	if ov.OutcomeOut != nil {
		out.Observability.OutcomeOut = *ov.OutcomeOut
	}
	if ov.Record != nil {
		out.Observability.Record = *ov.Record
	}
	if ov.TraceDump != nil {
		out.Observability.TraceDump = *ov.TraceDump
	}
	if ov.Replay != nil {
		out.Workload.Replay = *ov.Replay
	}
	if ov.SnapshotEvery != nil {
		out.Observability.SnapshotEvery = *ov.SnapshotEvery
	}
	if ov.SeriesOut != nil {
		out.Observability.SeriesOut = *ov.SeriesOut
	}
	return &out
}

// Check is one evaluated assertion.
type Check struct {
	Assertion Assertion
	OK        bool
	// Detail is a deterministic one-line explanation with the measured
	// values and the bound they were held to.
	Detail string
}

// Result is one executed scenario: the deterministic report text (safe
// for byte-identity gating on stdout), the outcome artifact, and the
// assertion verdicts.
type Result struct {
	Scenario *Scenario
	// Report is the full run report. Byte-identical across repeat runs
	// and across shard counts for a fixed scenario.
	Report string
	// Outcome is the cluster's keyed-line outcome report (the replay-diff
	// artifact).
	Outcome string
	Checks  []Check
	Passed  int
	Failed  int
}

// OK reports whether every assertion held.
func (r *Result) OK() bool { return r.Failed == 0 }

// runState is one completed execution of a scenario's simulation.
type runState struct {
	cl        *cluster.Cluster
	generated uint64
	replayed  int
	replayOf  int
	rec       *trace.Recorder
	// recon is the control-plane reconciler (nil without a spec block).
	recon *controlplane.Reconciler
	// specErrs records failed spec_update applications, in fire order.
	specErrs []string
}

// identityDoc is the byte-identity comparand: the cluster outcome plus,
// when a reconciler ran, its timed step log — so identity assertions also
// gate the control plane's exact convergence trajectory.
func (st *runState) identityDoc() string {
	doc := st.cl.Outcome()
	if st.recon != nil {
		doc += "== reconcile ==\n" + st.recon.StepLog()
		for _, e := range st.specErrs {
			doc += "spec_update ERR " + e + "\n"
		}
	}
	return doc
}

// Run validates and executes the scenario, evaluates its assertions
// (possibly re-executing for identity checks), writes any configured
// observability artifacts, and returns the deterministic result.
func (s *Scenario) Run() (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	needRecord := s.Observability.Record != ""
	for _, a := range s.Assertions {
		if a.Type == "replay_identity" {
			needRecord = true
		}
	}
	st, err := s.exec(s.Fleet.Shards, needRecord, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Scenario: s, Outcome: st.cl.Outcome()}
	checks := s.evaluate(st, res.Outcome)
	res.Checks = checks
	for _, c := range checks {
		if c.OK {
			res.Passed++
		} else {
			res.Failed++
		}
	}
	res.Report = s.renderReport(st, res)
	if err := s.writeArtifacts(st); err != nil {
		return nil, err
	}
	return res, nil
}

// exec builds a fresh cluster for the scenario and runs it once. shards
// overrides the fleet's shard count (identity checks re-execute at other
// values); record captures the injection schedule; replayOf, when
// non-nil, replays a recorded trace instead of generating traffic.
func (s *Scenario) exec(shards int, record bool, replayOf *trace.Trace) (*runState, error) {
	f := &s.Fleet
	ncfg := core.NodeConfig{}
	if f.CacheMB > 0 {
		ncfg.Cache = cachesim.Config{SizeBytes: f.CacheMB << 20, Ways: 16, LineBytes: 64}
	}
	if f.Limiter {
		lc := gop.DefaultConfig()
		ncfg.Limiter = &lc
	}
	ncfg.FlowBackend = f.Backend
	ncfg.Burst = f.Burst
	cl, err := cluster.New(cluster.Config{
		Nodes:         f.Nodes,
		Seed:          s.Seed,
		Node:          ncfg,
		Faults:        s.FaultPlan(),
		Shards:        shards,
		SnapshotEvery: s.Observability.SnapshotEvery,
	})
	if err != nil {
		return nil, err
	}

	w := &s.Workload
	wf := workload.GenerateFlows(w.Flows, w.Tenants, s.Seed)
	sample := s.Observability.TraceSample
	if sample == 0 && (s.Observability.TraceDump != "" || s.Observability.TraceLatencyOver > 0 ||
		s.Observability.TraceVNI >= 0 || s.Observability.TraceFaultWindow) {
		sample = 64
	}
	for p := 0; p < f.Pods; p++ {
		if err := cl.AddPod(core.PodConfig{
			Spec: pod.Spec{
				Name:      fmt.Sprintf("gw%d", p),
				Service:   f.Service,
				DataCores: f.Cores,
				CtrlCores: f.CtrlCores,
				Mode:      f.Mode,
			},
			Flows:            workload.ServiceFlows(wf, w.ACLDenied),
			QueueDepth:       f.QueueDepth,
			TraceSampleEvery: sample,
		}); err != nil {
			return nil, err
		}
	}
	for _, m := range cl.Members() {
		for _, pr := range m.Node.Pods() {
			if f.AutoFallback {
				pr.EnableAutoFallback(0, 0)
			}
			fr := pr.Flight()
			if s.Observability.TraceLatencyOver > 0 {
				fr.TriggerLatencyOver(s.Observability.TraceLatencyOver)
			}
			if s.Observability.TraceVNI >= 0 {
				fr.TriggerVNI(uint32(s.Observability.TraceVNI))
			}
			if s.Observability.TraceFaultWindow {
				fr.TriggerFaultWindow()
			}
		}
	}

	st := &runState{cl: cl}
	if s.Spec != nil {
		st.recon, err = controlplane.NewReconciler(cl, s.Spec.ClusterSpec(), s.Spec.Config())
		if err != nil {
			return nil, err
		}
		// Arm the timed spec updates. Each rewrites one member slot of the
		// current desired state (growing it when the slot is new) and
		// resubmits; a rejected update is recorded, not fatal — the run
		// completes and the reconciled assertion or report surfaces it.
		for _, ev := range s.Events {
			if ev.Action != ActionSpecUpdate {
				continue
			}
			ev := ev
			cl.Engine.At(sim.Time(ev.At), func() {
				spec := st.recon.Spec()
				for len(spec.Members) <= ev.Member {
					spec.Members = append(spec.Members, controlplane.MemberSpec{})
				}
				spec.Members[ev.Member] = ev.Entry
				if err := st.recon.SetSpec(spec); err != nil {
					st.specErrs = append(st.specErrs, fmt.Sprintf("t=%v member=%d: %v", ev.At, ev.Member, err))
				}
			})
		}
	}
	sink := cl.Sink()
	if record {
		st.rec = trace.NewRecorder(cl.Engine)
		st.rec.SetMeta(s.Seed, f.Nodes, "scenario "+s.Name)
		sink = cl.RecordingSink(st.rec)
	}

	switch {
	case replayOf != nil:
		rp, err := cl.ReplayTrace(replayOf)
		if err != nil {
			return nil, err
		}
		cl.RunFor(s.Duration)
		cl.RunFor(s.Drain)
		st.replayed, st.replayOf = int(rp.Injected), len(replayOf.Events)
	case w.Replay != "":
		tr, err := trace.ReadFile(w.Replay)
		if err != nil {
			return nil, err
		}
		rp, err := cl.ReplayTrace(tr)
		if err != nil {
			return nil, err
		}
		cl.RunFor(s.Duration)
		cl.RunFor(s.Drain)
		st.replayed, st.replayOf = int(rp.Injected), len(tr.Events)
	default:
		seed := w.Seed
		if seed == 0 {
			seed = s.Seed + 1
		}
		opts := []workload.Option{
			workload.WithFlows(wf),
			workload.WithRate(s.rateFn()),
			workload.WithSeed(seed),
			workload.WithSink(sink),
		}
		if w.PacketBytes > 0 {
			opts = append(opts, workload.WithPacketBytes(w.PacketBytes))
		}
		if w.Zipf > 0 {
			opts = append(opts, workload.WithZipf(w.Zipf))
		}
		if w.Deterministic {
			opts = append(opts, workload.WithDeterministic())
		}
		src, err := workload.New(opts...)
		if err != nil {
			return nil, err
		}
		if err := src.Start(cl.Engine); err != nil {
			return nil, err
		}
		cl.RunFor(s.Duration)
		src.Stop()
		cl.RunFor(s.Drain)
		st.generated = src.Generated
	}
	return st, nil
}

// rateFn compiles the base rate plus ramp events into a piecewise-
// constant offered-rate function.
func (s *Scenario) rateFn() workload.RateFn {
	type point struct {
		at   sim.Time
		rate float64
	}
	var pts []point
	for _, ev := range s.Events {
		if ev.Action == ActionRamp {
			pts = append(pts, point{at: sim.Time(ev.At), rate: ev.Rate})
		}
	}
	// Stable insertion sort by time: equal-time ramps apply in script
	// order, last one winning.
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j-1].at > pts[j].at; j-- {
			pts[j-1], pts[j] = pts[j], pts[j-1]
		}
	}
	base := s.Workload.Rate
	if len(pts) == 0 {
		return workload.ConstantRate(base)
	}
	return func(t sim.Time) float64 {
		r := base
		for _, p := range pts {
			if t < p.at {
				break
			}
			r = p.rate
		}
		return r
	}
}

// maxRate returns the highest offered rate the script ever sets — the
// conservative input to detection-window loss bounds.
func (s *Scenario) maxRate(st *runState) float64 {
	if s.Workload.Replay != "" {
		// Replay: derive the average offered rate from the run itself.
		return float64(st.cl.Sprayed) / (float64(s.Duration) / float64(sim.Second))
	}
	r := s.Workload.Rate
	for _, ev := range s.Events {
		if ev.Action == ActionRamp && ev.Rate > r {
			r = ev.Rate
		}
	}
	return r
}

// describe renders one scripted event deterministically for the report.
func (ev Event) describe() string {
	if ev.Action == ActionRamp {
		return fmt.Sprintf("t=%v ramp rate to %g pps", ev.At, ev.Rate)
	}
	if ev.Action == ActionSpecUpdate {
		e := ev.Entry
		out := fmt.Sprintf("t=%v spec_update member=%d", ev.At, ev.Member)
		if e.NormAdmin() == controlplane.AdminRemoved {
			return out + " removed"
		}
		out += fmt.Sprintf(" w=%g", e.NormWeight())
		if e.Pods > 0 {
			out += fmt.Sprintf(" pods=%d", e.Pods)
		}
		if e.NormAdmin() == controlplane.AdminDrained {
			out += " drained"
		}
		if e.Backend != "" {
			out += " backend=" + e.Backend
		}
		return out
	}
	f := ev.Fault
	var b strings.Builder
	fmt.Fprintf(&b, "t=%v %s %s node=%d", ev.At, ev.Action, f.Kind, f.Node)
	switch f.Kind {
	case faults.KindCoreStall:
		fmt.Fprintf(&b, " pod=%d core=%d factor=%g", f.Pod, f.Core, f.Factor)
	case faults.KindCoreFail:
		fmt.Fprintf(&b, " pod=%d core=%d", f.Pod, f.Core)
	case faults.KindRxLoss:
		fmt.Fprintf(&b, " pod=%d core=%d prob=%g", f.Pod, f.Core, f.Factor)
	case faults.KindPodCrash, faults.KindPodDrain:
		fmt.Fprintf(&b, " pod=%d", f.Pod)
	case faults.KindReorderStress:
		fmt.Fprintf(&b, " pod=%d queue=%d hold=%v clamp=%d", f.Pod, f.Queue, f.HoldHeads, f.DepthClamp)
	}
	if f.Duration > 0 {
		fmt.Fprintf(&b, " for %v", f.Duration)
	}
	return b.String()
}

// renderReport builds the deterministic run report: configuration echo,
// scripted events, fired-fault log, traffic and latency summary, and one
// line per assertion. Wall-clock never appears here.
func (s *Scenario) renderReport(st *runState, res *Result) string {
	var b strings.Builder
	f, w := &s.Fleet, &s.Workload
	fmt.Fprintf(&b, "scenario %s: %d node(s), %v %s, %d pod(s) x %d cores, seed %d\n",
		s.Name, f.Nodes, f.Mode, ServiceName(f.Service), f.Pods, f.Cores, s.Seed)
	if f.Backend != "" || f.Burst > 1 {
		be := f.Backend
		if be == "" {
			be = "legacy"
		}
		burst := f.Burst
		if burst < 1 {
			burst = 1
		}
		fmt.Fprintf(&b, "  dataplane   backend=%s burst=%d\n", be, burst)
	}
	if w.Replay != "" {
		fmt.Fprintf(&b, "  workload    replay %s: %d/%d events injected over %v (+%v drain)\n",
			w.Replay, st.replayed, st.replayOf, s.Duration, s.Drain)
	} else {
		fmt.Fprintf(&b, "  workload    %d flows over %d tenants @ %g pps for %v (+%v drain), generated %d\n",
			w.Flows, w.Tenants, w.Rate, s.Duration, s.Drain, st.generated)
	}
	if len(s.Events) > 0 {
		fmt.Fprintf(&b, "  script      %d event(s)\n", len(s.Events))
		for _, ev := range s.Events {
			fmt.Fprintf(&b, "    %s\n", ev.describe())
		}
	}
	if log := st.cl.FaultLog(); len(log) > 0 {
		fmt.Fprintf(&b, "  faults\n")
		for _, e := range log {
			fmt.Fprintf(&b, "    %s\n", e)
		}
	}
	if st.recon != nil {
		fmt.Fprintf(&b, "  reconcile   interval=%v: %s\n", st.recon.Interval(), st.recon.Summary())
		for _, step := range st.recon.Steps() {
			fmt.Fprintf(&b, "    %s\n", step)
		}
		for _, e := range st.specErrs {
			fmt.Fprintf(&b, "    spec_update ERR %s\n", e)
		}
	}
	m := measure(st.cl)
	fmt.Fprintf(&b, "  traffic     sprayed=%d delivered=%d remapped=%d switch-drops=%d blackholed=%d\n",
		st.cl.Sprayed, m.tx, st.cl.Remapped, st.cl.Drops, st.cl.Blackholed())
	fmt.Fprintf(&b, "  drops       nic=%d queue=%d plb=%d acl=%d header=%d rxloss=%d fault=%d crash=%d redirected=%d\n",
		m.nicDrops, m.queueDrops, m.plbDrops, m.serviceDrops, m.headerDrops,
		m.rxLost, m.faultLost, m.crashDrops, m.redirected)
	fmt.Fprintf(&b, "  latency     worst-node p50=%.1fµs p99=%.1fµs\n",
		float64(m.latP50)/1000, float64(m.latP99)/1000)
	// The series fingerprint in the report puts the full timeline under
	// the gameday stdout repeat-cmp: any sampling nondeterminism fails the
	// gate even in scenarios without an identity assertion.
	if tl := st.cl.Timeline(); tl != nil {
		sum, n := tl.Checksum()
		fmt.Fprintf(&b, "  series      every=%v ticks=%d fnv64a=%#016x bytes=%d\n",
			tl.Every(), tl.Len(), sum, n)
	}
	for _, c := range res.Checks {
		verdict := "PASS"
		if !c.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "  assert %s %s: %s\n", verdict, c.Assertion.Type, c.Detail)
	}
	overall := "PASS"
	if res.Failed > 0 {
		overall = "FAIL"
	}
	fmt.Fprintf(&b, "scenario %s: %s (%d/%d assertions)\n",
		s.Name, overall, res.Passed, res.Passed+res.Failed)
	if s.Observability.Report {
		b.WriteString("\n")
		b.WriteString(st.cl.Report())
	}
	return b.String()
}

// writeArtifacts writes the configured observability outputs.
func (s *Scenario) writeArtifacts(st *runState) error {
	o := &s.Observability
	if o.MetricsOut != "" {
		snap := st.cl.Metrics()
		if err := os.WriteFile(o.MetricsOut+".prom", []byte(snap.Prometheus()), 0o644); err != nil {
			return err
		}
		j, err := snap.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.MetricsOut+".json", j, 0o644); err != nil {
			return err
		}
	}
	if o.OutcomeOut != "" {
		if err := os.WriteFile(o.OutcomeOut, []byte(st.cl.Outcome()), 0o644); err != nil {
			return err
		}
	}
	if o.Record != "" && st.rec != nil {
		if err := st.rec.Trace().WriteFile(o.Record); err != nil {
			return err
		}
	}
	if o.TraceDump != "" {
		if err := dumpJourneys(o.TraceDump, st.cl); err != nil {
			return err
		}
	}
	if o.SeriesOut != "" {
		tl := st.cl.Timeline()
		if tl == nil {
			return fmt.Errorf("scenario %s: series_out set but no timeline was sampled", s.Name)
		}
		if err := os.WriteFile(o.SeriesOut+".csv", []byte(tl.CSV()), 0o644); err != nil {
			return err
		}
		j, err := tl.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.SeriesOut+".json", j, 0o644); err != nil {
			return err
		}
	}
	return nil
}
