// Package scenario is Albatross's declarative gameday layer: a YAML
// scenario format that describes a whole drill — fleet shape, offered
// workload, a timed event script, observability taps, and a block of
// declarative assertions — and compiles it onto the existing cluster,
// fault-plan, and workload machinery. One scenario run is deterministic
// and byte-identical across repeats and at any shard count, so committed
// scenario files double as regression oracles (`make gameday`).
//
// The format is a strict subset of YAML, parsed by this file without any
// external dependency: block mappings and sequences nested by indentation,
// plain/quoted scalars, `[a, b]` flow sequences of scalars, and `#`
// comments. Unknown keys, duplicate keys, tabs in indentation, and
// malformed structure are all hard errors wrapping errs.BadConfig — a
// scenario that loads is a scenario whose every field is understood.
package scenario

import (
	"fmt"
	"strings"

	"albatross/internal/errs"
)

// nodeKind discriminates parsed YAML values.
type nodeKind uint8

const (
	kindScalar nodeKind = iota
	kindMap
	kindSeq
)

// ynode is one parsed YAML value. Mappings keep their keys in file order
// (decode errors and golden files stay deterministic), and every node
// remembers its source line for error messages.
type ynode struct {
	kind   nodeKind
	line   int
	scalar string // kindScalar: the raw (unquoted) text; "" may mean empty
	quoted bool   // scalar came from a quoted literal (never reinterpreted)
	keys   []string
	vals   []*ynode
	items  []*ynode
}

// get returns the value for key in a mapping node, or nil.
func (n *ynode) get(key string) *ynode {
	for i, k := range n.keys {
		if k == key {
			return n.vals[i]
		}
	}
	return nil
}

// yline is one significant source line after comment stripping.
type yline struct {
	num    int
	indent int
	text   string // content without indentation or trailing comment
}

// yamlParser is an index-based recursive-descent parser over the lexed
// lines. Sequence items with inline content ("- key: v") are handled by
// substituting the current line with its remainder at a deeper indent.
type yamlParser struct {
	lines []yline
	pos   int
}

func yamlErr(line int, format string, args ...any) error {
	return fmt.Errorf("scenario: line %d: %s: %w", line, fmt.Sprintf(format, args...), errs.BadConfig)
}

// parseYAML parses data as a strict YAML-subset document rooted at a
// mapping.
func parseYAML(data []byte) (*ynode, error) {
	lines, err := lexYAML(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("scenario: empty document: %w", errs.BadConfig)
	}
	p := &yamlParser{lines: lines}
	if lines[0].indent != 0 {
		return nil, yamlErr(lines[0].num, "top-level content must start in column 1")
	}
	root, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, yamlErr(p.lines[p.pos].num, "unexpected content after document (bad indentation?)")
	}
	if root.kind != kindMap {
		return nil, yamlErr(lines[0].num, "top level must be a mapping")
	}
	return root, nil
}

// lexYAML splits data into significant lines: comments stripped (quote-
// aware), blanks dropped, tabs in indentation rejected.
func lexYAML(data []byte) ([]yline, error) {
	var out []yline
	for num, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, yamlErr(num+1, "tab in indentation (use spaces)")
		}
		text := stripComment(line[indent:])
		text = strings.TrimRight(text, " ")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "---") {
			continue // document marker: tolerated, ignored
		}
		out = append(out, yline{num: num + 1, indent: indent, text: text})
	}
	return out, nil
}

// stripComment removes a trailing "# ..." comment, honoring quotes. A '#'
// only starts a comment at the start of the content or after whitespace
// (YAML rule), so "rate#x" stays intact.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if quote == '"' && c == '\\' {
				i++ // skip escaped char
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return strings.TrimRight(s[:i], " ")
		}
	}
	return s
}

// parseBlock parses the run of lines indented at least minIndent, taking
// the first line's indentation as the block's level.
func (p *yamlParser) parseBlock(minIndent int) (*ynode, error) {
	ln := p.lines[p.pos]
	if ln.indent < minIndent {
		return nil, yamlErr(ln.num, "expected indented block")
	}
	if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
		return p.parseSeq(ln.indent)
	}
	return p.parseMap(ln.indent)
}

// parseMap parses a block mapping at exactly the given indent.
func (p *yamlParser) parseMap(indent int) (*ynode, error) {
	m := &ynode{kind: kindMap, line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, yamlErr(ln.num, "unexpected indentation (no open mapping key at column %d)", ln.indent+1)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			break // sequence at this indent belongs to the parent key
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, err
		}
		if m.get(key) != nil {
			return nil, yamlErr(ln.num, "duplicate key %q", key)
		}
		p.pos++
		var val *ynode
		if rest != "" {
			val, err = parseScalarValue(rest, ln.num)
			if err != nil {
				return nil, err
			}
		} else {
			val, err = p.parseKeyBody(indent, ln.num)
			if err != nil {
				return nil, err
			}
		}
		m.keys = append(m.keys, key)
		m.vals = append(m.vals, val)
	}
	return m, nil
}

// parseKeyBody parses what follows a "key:" line with no inline value:
// a nested block (deeper indent), a sequence at the same indent, or
// nothing (an empty scalar).
func (p *yamlParser) parseKeyBody(indent, keyLine int) (*ynode, error) {
	if p.pos >= len(p.lines) {
		return &ynode{kind: kindScalar, line: keyLine}, nil
	}
	next := p.lines[p.pos]
	switch {
	case next.indent > indent:
		return p.parseBlock(next.indent)
	case next.indent == indent && (strings.HasPrefix(next.text, "- ") || next.text == "-"):
		return p.parseSeq(indent)
	default:
		return &ynode{kind: kindScalar, line: keyLine}, nil
	}
}

// parseSeq parses a block sequence at exactly the given indent.
func (p *yamlParser) parseSeq(indent int) (*ynode, error) {
	seq := &ynode{kind: kindSeq, line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent || !(strings.HasPrefix(ln.text, "- ") || ln.text == "-") {
			if ln.indent > indent {
				return nil, yamlErr(ln.num, "unexpected indentation inside sequence")
			}
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			// "-" alone: the item is the following deeper block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, yamlErr(ln.num, "empty sequence item")
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			seq.items = append(seq.items, item)
			continue
		}
		if isMapEntry(rest) {
			// Compact form: "- key: v" starts a mapping whose further keys
			// sit at the remainder's column. Substitute the remainder for
			// the current line and parse a mapping there.
			eff := ln.indent + (len(ln.text) - len(rest))
			p.lines[p.pos] = yline{num: ln.num, indent: eff, text: rest}
			item, err := p.parseMap(eff)
			if err != nil {
				return nil, err
			}
			seq.items = append(seq.items, item)
			continue
		}
		p.pos++
		item, err := parseScalarValue(rest, ln.num)
		if err != nil {
			return nil, err
		}
		seq.items = append(seq.items, item)
	}
	return seq, nil
}

// isMapEntry reports whether a sequence item's inline text is "key: ..."
// (a compact mapping) rather than a plain scalar.
func isMapEntry(s string) bool {
	if _, _, err := splitKey(yline{text: s}); err != nil {
		return false
	}
	return true
}

// splitKey splits "key: value" / "key:" into key and remainder.
func splitKey(ln yline) (key, rest string, err error) {
	s := ln.text
	if len(s) > 0 && (s[0] == '"' || s[0] == '\'') {
		end := closingQuote(s)
		if end < 0 || end+1 >= len(s) || s[end+1] != ':' {
			return "", "", yamlErr(ln.num, "malformed quoted key")
		}
		key, err = unquote(s[:end+1], ln.num)
		if err != nil {
			return "", "", err
		}
		rest = strings.TrimLeft(s[end+2:], " ")
		if rest != "" && s[end+2] != ' ' {
			return "", "", yamlErr(ln.num, "missing space after ':'")
		}
		return key, rest, nil
	}
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			if i+1 < len(s) && s[i+1] != ' ' {
				return "", "", yamlErr(ln.num, "missing space after ':' (or stray colon in unquoted scalar)")
			}
			key = strings.TrimRight(s[:i], " ")
			if key == "" {
				return "", "", yamlErr(ln.num, "empty mapping key")
			}
			return key, strings.TrimLeft(s[i+1:], " "), nil
		}
		if s[i] == '#' || s[i] == '[' || s[i] == ']' {
			break
		}
	}
	return "", "", yamlErr(ln.num, "expected \"key: value\"")
}

// closingQuote returns the index of the closing quote of a string literal
// starting at s[0], or -1.
func closingQuote(s string) int {
	q := s[0]
	for i := 1; i < len(s); i++ {
		if q == '"' && s[i] == '\\' {
			i++
			continue
		}
		if s[i] == q {
			if q == '\'' && i+1 < len(s) && s[i+1] == '\'' {
				i++ // '' escape
				continue
			}
			return i
		}
	}
	return -1
}

// parseScalarValue parses an inline value: a quoted or plain scalar, or a
// flow sequence "[a, b, c]" of scalars.
func parseScalarValue(s string, line int) (*ynode, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, yamlErr(line, "unterminated flow sequence %q", s)
		}
		seq := &ynode{kind: kindSeq, line: line}
		body := strings.TrimSpace(s[1 : len(s)-1])
		if body == "" {
			return seq, nil
		}
		for _, part := range strings.Split(body, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				return nil, yamlErr(line, "empty element in flow sequence %q", s)
			}
			if strings.ContainsAny(part, "[]{}") {
				return nil, yamlErr(line, "nested flow collections are not supported")
			}
			item, err := parseScalarValue(part, line)
			if err != nil {
				return nil, err
			}
			seq.items = append(seq.items, item)
		}
		return seq, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, yamlErr(line, "flow mappings are not supported (use block form)")
	}
	if len(s) > 0 && (s[0] == '"' || s[0] == '\'') {
		end := closingQuote(s)
		if end != len(s)-1 {
			return nil, yamlErr(line, "malformed quoted scalar %q", s)
		}
		v, err := unquote(s, line)
		if err != nil {
			return nil, err
		}
		return &ynode{kind: kindScalar, line: line, scalar: v, quoted: true}, nil
	}
	return &ynode{kind: kindScalar, line: line, scalar: s}, nil
}

// unquote interprets a single- or double-quoted string literal.
func unquote(s string, line int) (string, error) {
	q := s[0]
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if q == '"' && c == '\\' {
			i++
			if i >= len(body) {
				return "", yamlErr(line, "dangling escape in %q", s)
			}
			switch body[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(body[i])
			default:
				return "", yamlErr(line, "unsupported escape \\%c", body[i])
			}
			continue
		}
		if q == '\'' && c == '\'' {
			i++ // '' collapses to '
		}
		b.WriteByte(c)
	}
	return b.String(), nil
}
