package scenario

import (
	"errors"
	"strings"
	"testing"

	"albatross/internal/controlplane"
	"albatross/internal/errs"
	"albatross/internal/sim"
)

// TestLoadSpecRoundTrip checks the standalone desired-state loader: every
// member form (mapping, scalar default), tuning keys, and the converters
// to the control plane's types.
func TestLoadSpecRoundTrip(t *testing.T) {
	doc := `
interval: 2ms
steps_per_tick: 3
members:
  - weight: 0.25
    pods: 2
    backend: othello
  - default
  - admin: drained
  - admin: removed
`
	r, err := LoadSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if r.Interval != 2*sim.Millisecond || r.StepsPerTick != 3 {
		t.Errorf("tuning = (%v, %d), want (2ms, 3)", r.Interval, r.StepsPerTick)
	}
	if len(r.Members) != 4 {
		t.Fatalf("got %d members, want 4", len(r.Members))
	}
	m0 := r.Members[0]
	if m0.Weight != 0.25 || m0.Pods != 2 || m0.Backend != "othello" {
		t.Errorf("member 0 = %+v", m0)
	}
	if m1 := r.Members[1]; m1 != (controlplane.MemberSpec{}) {
		t.Errorf("scalar default should decode to the zero MemberSpec, got %+v", m1)
	}
	if got := r.Members[2].NormAdmin(); got != controlplane.AdminDrained {
		t.Errorf("member 2 admin = %q", got)
	}
	cs := r.ClusterSpec()
	if err := cs.Validate(); err != nil {
		t.Errorf("converted ClusterSpec invalid: %v", err)
	}
	if got := cs.String(); got != "spec[4]{0: w=0.25 pods=2 backend=othello; 1: w=1; 2: w=1 drained; 3: removed}" {
		t.Errorf("ClusterSpec.String() = %q", got)
	}
	cfg := r.Config()
	if cfg.Interval != 2*sim.Millisecond || cfg.StepsPerTick != 3 {
		t.Errorf("Config() = %+v", cfg)
	}
}

// TestLoadSpecRejects pins the loader's strictness: every malformed
// document fails with an error wrapping errs.BadConfig that names the
// offending line.
func TestLoadSpecRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantSub string
	}{
		{"empty members", "interval: 1ms\n", `needs a non-empty "members"`},
		{"unknown key", "members:\n  - default\nstepz: 1\n", "line 3"},
		{"unknown member key", "members:\n  - wieght: 2\n", "line 2"},
		{"scalar member", "members:\n  - fast\n", `the scalar "default"`},
		{"negative weight", "members:\n  - weight: -1\n", "weight"},
		{"negative interval", "interval: -1ms\nmembers:\n  - default\n", "interval"},
		{"removed pins pods", "members:\n  - admin: removed\n    pods: 2\n", "removed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadSpec([]byte(tc.doc))
			if err == nil {
				t.Fatalf("LoadSpec accepted %q", tc.doc)
			}
			if !errors.Is(err, errs.BadConfig) {
				t.Errorf("error does not wrap BadConfig: %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestScenarioSpecBlock checks the spec: block and timed spec_update
// events decode into the scenario, with full-entry replacement semantics
// (the event carries a complete MemberSpec, defaults for omitted keys).
func TestScenarioSpecBlock(t *testing.T) {
	doc := `
name: drill
duration: 20ms
fleet:
  nodes: 2
workload:
  flows: 100
  rate: 1e5
spec:
  interval: 5ms
  members:
    - default
    - default
events:
  - at: 10ms
    action: spec_update
    member: 2
    weight: 0.5
    pods: 1
assertions:
  - type: reconciled
`
	s, err := Load([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Spec == nil || len(s.Spec.Members) != 2 || s.Spec.Interval != 5*sim.Millisecond {
		t.Fatalf("spec block = %+v", s.Spec)
	}
	if len(s.Events) != 1 {
		t.Fatalf("got %d events", len(s.Events))
	}
	ev := s.Events[0]
	if ev.Action != ActionSpecUpdate || ev.Member != 2 {
		t.Errorf("event = %+v", ev)
	}
	if ev.Entry.Weight != 0.5 || ev.Entry.Pods != 1 || ev.Entry.Admin != "" {
		t.Errorf("entry = %+v", ev.Entry)
	}
	// spec_update events are control-plane intents, not faults.
	if plan := s.FaultPlan(); plan != nil && len(plan.Faults) != 0 {
		t.Errorf("spec_update leaked into the fault plan: %+v", plan.Faults)
	}
}

// TestScenarioSpecUpdateRejects covers event-level validation: negative
// member index and an entry the control plane rejects.
func TestScenarioSpecUpdateRejects(t *testing.T) {
	base := `
name: drill
duration: 20ms
workload:
  flows: 100
  rate: 1e5
spec:
  members:
    - default
events:
  - at: 10ms
    action: spec_update
`
	for _, tc := range []struct{ name, extra, wantSub string }{
		{"negative member", "    member: -1\n", "member"},
		{"bad entry", "    member: 0\n    weight: -2\n", "weight"},
		{"missing member", "    weight: 1\n", `"member"`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load([]byte(base + tc.extra))
			if err == nil {
				t.Fatal("accepted invalid spec_update")
			}
			if !errors.Is(err, errs.BadConfig) || !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %v, want BadConfig mentioning %q", err, tc.wantSub)
			}
		})
	}
}

// TestReconciledScenarioRuns executes a tiny spec-driven drill end to end
// and checks the reconciled assertion plus the report's reconcile section.
func TestReconciledScenarioRuns(t *testing.T) {
	doc := `
name: mini-reconcile
duration: 40ms
fleet:
  nodes: 2
workload:
  flows: 200
  tenants: 10
  rate: 1e5
spec:
  interval: 2ms
  members:
    - default
    - default
events:
  - at: 10ms
    action: spec_update
    member: 1
    weight: 0.5
assertions:
  - type: conservation
  - type: zero_loss
  - type: reconciled
`
	s, err := Load([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("drill failed:\n%s", res.Report)
	}
	if !strings.Contains(res.Report, "reconcile") || !strings.Contains(res.Report, "weight 1 -> 0.5") {
		t.Errorf("report lacks the reconcile step log:\n%s", res.Report)
	}
}
