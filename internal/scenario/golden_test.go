package scenario

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"albatross/internal/errs"
)

var update = flag.Bool("update", false, "rewrite golden .want files from current loader errors")

// TestValidateErrorGoldens pins the exact error text the loader produces
// for each malformed document in testdata/invalid. Error messages are
// operator UI — a wording change must be a deliberate diff, not drift.
// Regenerate with: go test ./internal/scenario/ -run Golden -update
func TestValidateErrorGoldens(t *testing.T) {
	docs, err := filepath.Glob("testdata/invalid/*.yaml")
	if err != nil || len(docs) == 0 {
		t.Fatalf("no invalid corpus: %v", err)
	}
	for _, doc := range docs {
		t.Run(filepath.Base(doc), func(t *testing.T) {
			_, lerr := LoadFile(doc)
			if lerr == nil {
				t.Fatalf("%s loaded successfully, want an error", doc)
			}
			if !errors.Is(lerr, errs.BadConfig) {
				t.Errorf("%s: error does not wrap errs.BadConfig: %v", doc, lerr)
			}
			want := strings.TrimSuffix(doc, ".yaml") + ".want"
			if *update {
				if err := os.WriteFile(want, []byte(lerr.Error()+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			golden, err := os.ReadFile(want)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got := lerr.Error() + "\n"; got != string(golden) {
				t.Errorf("error text drifted from golden %s:\n got: %s\nwant: %s", want, got, golden)
			}
		})
	}
}
