// Package cachesim models the shared last-level (L3) cache of an Albatross
// server as a set-associative LRU cache over synthetic memory addresses.
//
// The paper's Fig. 4/5 result — PLB and RSS deliver near-identical per-core
// throughput because multi-GB forwarding tables thrash the ~200MB L3 either
// way — is reproduced by running real table lookups through this model and
// charging per-lookup hit/miss latencies. The cache is shared across all
// simulated cores, exactly as a physical L3 is shared across a NUMA node.
package cachesim

import "fmt"

// Cache is a set-associative LRU cache. Not safe for concurrent use (the
// event engine is single-threaded).
type Cache struct {
	lineBytes int
	ways      int
	sets      int
	setMask   uint64

	// slots interleaves tag and LRU clock per way so one set scan walks a
	// single contiguous 16B-stride run instead of two arrays a cache apart —
	// the packet path spends a third of its time in this loop.
	slots []slot // sets*ways entries; tag 0 = empty (tag stores line|1)
	clock uint64

	hits   uint64
	misses uint64

	prefetch   bool
	Prefetches uint64

	// warmSink absorbs the reads issued by Warm so the compiler cannot
	// elide them; it is never read back.
	warmSink uint64
}

// Config describes a cache geometry.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // cache line size
	// NextLinePrefetch models the LLC hardware prefetcher (§4.2 lists it
	// among the tuned knobs): every demand miss also pulls in the next
	// line. Helps sequential walks, does nothing for random lookups.
	NextLinePrefetch bool
}

// DefaultL3 approximates the paper's Albatross CPU: a ~100MB L3 per NUMA
// node (the paper says ~200MB total across the dual-socket server).
func DefaultL3() Config {
	return Config{SizeBytes: 100 << 20, Ways: 16, LineBytes: 64}
}

// New creates a cache. Sets are forced to a power of two (rounding capacity
// down), which mirrors real hardware indexing.
func New(cfg Config) *Cache {
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 64
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 16
	}
	if cfg.SizeBytes < cfg.Ways*cfg.LineBytes {
		cfg.SizeBytes = cfg.Ways * cfg.LineBytes
	}
	sets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	// Round down to a power of two.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	c := &Cache{
		lineBytes: cfg.LineBytes,
		ways:      cfg.Ways,
		sets:      sets,
		setMask:   uint64(sets - 1),
		slots:     make([]slot, sets*cfg.Ways),
		prefetch:  cfg.NextLinePrefetch,
	}
	return c
}

// SizeBytes returns the effective capacity after rounding.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * c.lineBytes }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// mix scrambles the line address before set indexing. Synthetic table
// addresses are highly regular (base + i*entrySize); real L3s hash the
// address too, and without this the model aliases whole tables onto a few
// sets.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// slot is one cache way: the stored tag and its LRU clock, interleaved so a
// set scan is one linear walk.
type slot struct {
	tag  uint64
	last uint64
}

// touchLine accesses one line address, returning true on hit.
func (c *Cache) touchLine(line uint64) bool {
	c.clock++
	h := mix(line)
	base := int(h&c.setMask) * c.ways
	set := c.slots[base : base+c.ways]
	tag := line | 1 // bit 0 marks occupancy (line addrs are shifted, so safe)

	victim := 0
	oldest := ^uint64(0)
	for i := range set {
		s := &set[i]
		if s.tag == tag {
			s.last = c.clock
			c.hits++
			return true
		}
		if s.tag == 0 {
			// Empty slot: prefer it as victim and stop aging scan.
			victim = i
			oldest = 0
			continue
		}
		if s.last < oldest {
			oldest = s.last
			victim = i
		}
	}
	set[victim].tag = tag
	set[victim].last = c.clock
	c.misses++
	return false
}

// Access touches size bytes starting at addr and returns the number of
// line hits and misses.
func (c *Cache) Access(addr uint64, size int) (hits, misses int) {
	if size <= 0 {
		size = 1
	}
	first := addr / uint64(c.lineBytes)
	last := (addr + uint64(size) - 1) / uint64(c.lineBytes)
	for line := first; line <= last; line++ {
		// Shift left so bit 0 is free for the occupancy mark.
		if c.touchLine(line << 1) {
			hits++
		} else {
			misses++
			if c.prefetch {
				// Pull the next line in without charging a demand access.
				c.insertLine((line + 1) << 1)
				c.Prefetches++
			}
		}
	}
	return hits, misses
}

// Warm reads the tag sets an Access(addr, size) would scan WITHOUT touching
// any model state — no clock tick, no LRU update, no counters. It exists so
// burst-batched callers can pull the host cache lines backing an upcoming
// packet's sets into the host cache while an earlier packet computes (the
// classic software-pipelined burst loop); model outcomes are bit-identical
// with or without it.
func (c *Cache) Warm(addr uint64, size int) {
	if size <= 0 {
		size = 1
	}
	first := addr / uint64(c.lineBytes)
	last := (addr + uint64(size) - 1) / uint64(c.lineBytes)
	var sink uint64
	for line := first; line <= last; line++ {
		base := int(mix(line<<1)&c.setMask) * c.ways
		set := c.slots[base : base+c.ways]
		// One read per 64B host line of the set (4 interleaved 16B slots).
		for i := 0; i < len(set); i += 4 {
			sink += set[i].tag
		}
	}
	c.warmSink += sink
}

// insertLine places a line into the cache without touching the demand
// hit/miss counters (the prefetch path).
func (c *Cache) insertLine(line uint64) {
	c.clock++
	h := mix(line)
	base := int(h&c.setMask) * c.ways
	set := c.slots[base : base+c.ways]
	tag := line | 1
	victim := 0
	oldest := ^uint64(0)
	for i := range set {
		s := &set[i]
		if s.tag == tag {
			return // already resident
		}
		if s.tag == 0 {
			victim = i
			oldest = 0
			continue
		}
		if s.last < oldest {
			oldest = s.last
			victim = i
		}
	}
	set[victim].tag = tag
	// Prefetched lines enter at LRU-ish age (half the clock) so useless
	// prefetches are evicted before hot demand lines.
	set[victim].last = c.clock - c.clock/2
}

// Hits returns the cumulative hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the cumulative miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// ResetStats clears counters but keeps cache contents (for warm-up phases).
func (c *Cache) ResetStats() {
	c.hits, c.misses = 0, 0
}

// Flush empties the cache and clears counters.
func (c *Cache) Flush() {
	for i := range c.slots {
		c.slots[i] = slot{}
	}
	c.clock = 0
	c.ResetStats()
}

func (c *Cache) String() string {
	return fmt.Sprintf("cache{%dMB %d-way %dB lines, hit=%.1f%%}",
		c.SizeBytes()>>20, c.ways, c.lineBytes, c.HitRate()*100)
}

// MemLatency holds the memory hierarchy latencies used to convert cache
// behaviour into per-lookup time. Values approximate a 2023 server CPU
// (Sapphire Rapids class): L3 hit ~33ns, DRAM ~95ns at 4800MHz.
type MemLatency struct {
	L3HitNS float64
	DRAMNS  float64
}

// DefaultLatency returns latencies for DDR5-4800.
func DefaultLatency() MemLatency { return MemLatency{L3HitNS: 33, DRAMNS: 95} }

// WithDRAMFrequency scales DRAM latency for a different memory frequency
// (the paper's §4.2: 4800→5600MHz improved gateway performance ~8%).
func (m MemLatency) WithDRAMFrequency(mhz float64) MemLatency {
	scaled := m
	scaled.DRAMNS = m.DRAMNS * 4800 / mhz
	return scaled
}

// Cost converts hit/miss counts into nanoseconds.
func (m MemLatency) Cost(hits, misses int) float64 {
	return float64(hits)*m.L3HitNS + float64(misses)*m.DRAMNS
}
