package cachesim

import (
	"math"
	"testing"
	"testing/quick"

	"albatross/internal/sim"
)

func small() *Cache {
	// 64 sets * 4 ways * 64B = 16KB
	return New(Config{SizeBytes: 16 << 10, Ways: 4, LineBytes: 64})
}

func TestGeometry(t *testing.T) {
	c := small()
	if c.Sets() != 64 || c.Ways() != 4 || c.LineBytes() != 64 {
		t.Fatalf("geometry: sets=%d ways=%d line=%d", c.Sets(), c.Ways(), c.LineBytes())
	}
	if c.SizeBytes() != 16<<10 {
		t.Fatalf("size = %d", c.SizeBytes())
	}
}

func TestGeometryRounding(t *testing.T) {
	// 100 sets rounds down to 64.
	c := New(Config{SizeBytes: 100 * 4 * 64, Ways: 4, LineBytes: 64})
	if c.Sets() != 64 {
		t.Fatalf("sets = %d, want 64", c.Sets())
	}
	// Degenerate configs get sane defaults.
	c2 := New(Config{})
	if c2.Sets() < 1 || c2.Ways() != 16 || c2.LineBytes() != 64 {
		t.Fatalf("defaults: %v", c2)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := small()
	h, m := c.Access(0x1000, 8)
	if h != 0 || m != 1 {
		t.Fatalf("first access: h=%d m=%d", h, m)
	}
	h, m = c.Access(0x1000, 8)
	if h != 1 || m != 0 {
		t.Fatalf("second access: h=%d m=%d", h, m)
	}
	if c.Hits() != 1 || c.Misses() != 1 || c.HitRate() != 0.5 {
		t.Fatalf("counters: h=%d m=%d rate=%v", c.Hits(), c.Misses(), c.HitRate())
	}
}

func TestMultiLineAccess(t *testing.T) {
	c := small()
	// 200 bytes starting mid-line spans 4 lines (offset 32: 32+200 = 232 -> lines 0..3).
	h, m := c.Access(32, 200)
	if h != 0 || m != 4 {
		t.Fatalf("spanning access: h=%d m=%d", h, m)
	}
	h, m = c.Access(0, 64*4)
	if h != 4 || m != 0 {
		t.Fatalf("re-read: h=%d m=%d", h, m)
	}
}

func TestZeroSizeAccess(t *testing.T) {
	c := small()
	h, m := c.Access(0x40, 0)
	if h+m != 1 {
		t.Fatalf("zero-size access touched %d lines", h+m)
	}
}

func TestWorkingSetFitsHighHitRate(t *testing.T) {
	c := small() // 16KB = 256 line slots
	// A 4KB (64-line) working set in a 16KB cache: after warm-up nearly
	// everything hits. Hashed set indexing means a handful of conflict
	// misses are possible (as on real hardware), so assert >= 95%.
	for pass := 0; pass < 4; pass++ {
		if pass == 1 {
			c.ResetStats()
		}
		for off := uint64(0); off < 4<<10; off += 64 {
			c.Access(off, 1)
		}
	}
	if c.HitRate() < 0.95 {
		t.Fatalf("hit rate = %v after warm-up on fitting working set", c.HitRate())
	}
}

func TestWorkingSetExceedsLowHitRate(t *testing.T) {
	c := small() // 16KB
	r := sim.NewRand(5)
	// 1MB working set, random access: hit rate ≈ 16KB/1MB ≈ 1.6%.
	for i := 0; i < 200000; i++ {
		addr := uint64(r.Intn(1 << 20))
		c.Access(addr, 1)
	}
	if c.HitRate() > 0.1 {
		t.Fatalf("hit rate = %v, want < 0.1 for thrashing working set", c.HitRate())
	}
}

func TestLRUWithinSet(t *testing.T) {
	// Direct test of LRU: use a 1-set cache (ways=4, sets=1).
	c := New(Config{SizeBytes: 4 * 64, Ways: 4, LineBytes: 64})
	if c.Sets() != 1 {
		t.Fatalf("sets = %d", c.Sets())
	}
	// Fill 4 ways with distinct lines.
	lines := []uint64{0, 1 << 12, 2 << 12, 3 << 12}
	for _, a := range lines {
		c.Access(a, 1)
	}
	// Touch line 0 making line at 1<<12 the LRU victim.
	c.Access(lines[0], 1)
	// Insert a 5th line, evicting lines[1].
	c.Access(4<<12, 1)
	c.ResetStats()
	c.Access(lines[0], 1)
	if c.Misses() != 0 {
		t.Fatal("recently used line was evicted")
	}
	c.Access(lines[1], 1)
	if c.Misses() != 1 {
		t.Fatal("LRU line was not evicted")
	}
}

func TestFlush(t *testing.T) {
	c := small()
	c.Access(0, 1)
	c.Access(0, 1)
	c.Flush()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("flush did not clear counters")
	}
	_, m := c.Access(0, 1)
	if m != 1 {
		t.Fatal("flush did not clear contents")
	}
}

func TestHitRateEmptyCache(t *testing.T) {
	if small().HitRate() != 0 {
		t.Fatal("empty cache hit rate != 0")
	}
}

func TestSetDistribution(t *testing.T) {
	// Sequential table entries (regular stride) should spread across sets
	// thanks to address mixing, not alias onto a few sets.
	c := New(Config{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64}) // 2048 sets, 16384 lines
	r := sim.NewRand(3)
	// 10k regular-stride 256B entries (40k lines) accessed in *random*
	// order: steady-state hit rate should approach capacity/working-set
	// (16384/40000 ≈ 0.4). Without address mixing, the regular stride
	// aliases onto a fraction of the sets and the rate collapses.
	for i := 0; i < 100000; i++ {
		e := uint64(r.Intn(10000))
		c.Access(1<<40+e*256, 256)
	}
	c.ResetStats()
	for i := 0; i < 100000; i++ {
		e := uint64(r.Intn(10000))
		c.Access(1<<40+e*256, 256)
	}
	rate := c.HitRate()
	if rate < 0.25 || rate > 0.6 {
		t.Fatalf("regular-stride hit rate = %v, want mid-range (good set mixing)", rate)
	}
}

func TestAccessDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		c := small()
		r := sim.NewRand(9)
		for i := 0; i < 10000; i++ {
			c.Access(uint64(r.Intn(1<<18)), 1+r.Intn(300))
		}
		return c.Hits(), c.Misses()
	}
	h1, m1 := run()
	h2, m2 := run()
	if h1 != h2 || m1 != m2 {
		t.Fatal("cache simulation not deterministic")
	}
}

func TestCountersConsistentProperty(t *testing.T) {
	f := func(addrs []uint32, sizes []uint8) bool {
		c := small()
		var localH, localM uint64
		for i, a := range addrs {
			size := 1
			if i < len(sizes) {
				size = int(sizes[i])
			}
			h, m := c.Access(uint64(a), size)
			if h < 0 || m < 0 || h+m == 0 {
				return false
			}
			localH += uint64(h)
			localM += uint64(m)
		}
		return localH == c.Hits() && localM == c.Misses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemLatency(t *testing.T) {
	m := DefaultLatency()
	if m.Cost(1, 0) != m.L3HitNS || m.Cost(0, 1) != m.DRAMNS {
		t.Fatal("cost basics wrong")
	}
	if m.Cost(2, 3) != 2*m.L3HitNS+3*m.DRAMNS {
		t.Fatal("cost sum wrong")
	}
	faster := m.WithDRAMFrequency(5600)
	if faster.DRAMNS >= m.DRAMNS {
		t.Fatal("higher frequency should lower DRAM latency")
	}
	want := m.DRAMNS * 4800 / 5600
	if math.Abs(faster.DRAMNS-want) > 1e-9 {
		t.Fatalf("scaled latency = %v, want %v", faster.DRAMNS, want)
	}
	if faster.L3HitNS != m.L3HitNS {
		t.Fatal("frequency scaling should not touch L3 latency")
	}
}

func TestDefaultL3Geometry(t *testing.T) {
	c := New(DefaultL3())
	if c.SizeBytes() < 50<<20 {
		t.Fatalf("default L3 too small: %d", c.SizeBytes())
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New(DefaultL3())
	r := sim.NewRand(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 30))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095], 256)
	}
}

func TestPrefetchHelpsSequentialScan(t *testing.T) {
	run := func(prefetch bool) float64 {
		c := New(Config{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, NextLinePrefetch: prefetch})
		// Sequential walk over a 1MB region, twice the cache: every line is
		// cold on a plain cache; the prefetcher has the next line ready.
		for pass := 0; pass < 2; pass++ {
			for addr := uint64(0); addr < 1<<20; addr += 64 {
				c.Access(addr, 1)
			}
		}
		return c.HitRate()
	}
	plain := run(false)
	pf := run(true)
	if pf < plain+0.3 {
		t.Fatalf("prefetch hit rate %.2f vs plain %.2f: sequential scan should benefit heavily", pf, plain)
	}
}

func TestPrefetchNeutralOnRandomAccess(t *testing.T) {
	run := func(prefetch bool) float64 {
		c := New(Config{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, NextLinePrefetch: prefetch})
		r := sim.NewRand(3)
		for i := 0; i < 200000; i++ {
			c.Access(uint64(r.Intn(1<<22)), 1)
		}
		return c.HitRate()
	}
	plain := run(false)
	pf := run(true)
	if pf > plain+0.05 {
		t.Fatalf("prefetch should not help random access: %.3f vs %.3f", pf, plain)
	}
	// Useless prefetches must not *hurt* much either (they age out fast).
	if pf < plain-0.05 {
		t.Fatalf("prefetch pollution too strong: %.3f vs %.3f", pf, plain)
	}
}

func TestPrefetchCounter(t *testing.T) {
	c := New(Config{SizeBytes: 16 << 10, Ways: 4, LineBytes: 64, NextLinePrefetch: true})
	c.Access(0, 1)
	if c.Prefetches != 1 {
		t.Fatalf("prefetches = %d", c.Prefetches)
	}
	// The prefetched line hits on demand.
	if h, m := c.Access(64, 1); h != 1 || m != 0 {
		t.Fatalf("prefetched line: h=%d m=%d", h, m)
	}
}
